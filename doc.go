// Package dpfsm is a Go reproduction of "Data-Parallel Finite-State
// Machines" (Mytkowicz, Musuvathi, Schulte — ASPLOS 2014), exposed as
// a stable v1 library surface.
//
// The paper's idea: run a DFA from every state at once. The vector of
// "where does each state end up" is updated per input symbol with one
// gather, which breaks the loop-carried dependence that serializes
// ordinary FSM execution and unlocks both instruction-level
// parallelism and an embarrassingly parallel multicore split. In
// practice the state vector converges to a handful of live states
// within a few hundred symbols, so the enumerative overhead is small.
//
// # Quickstart
//
//	d, _ := dpfsm.Compile(`UNION\s+SELECT`, dpfsm.CompileOptions{})
//	r, _ := dpfsm.NewRunner(d)
//	matched := r.Accepts(input)
//
// Compile builds a DFA from a regular expression (NewDFA constructs
// one directly); NewRunner wraps it with an execution strategy —
// Auto by default, or pin one of Sequential, Base, BaseILP,
// Convergence, RangeCoalesced, RangeConvergence via WithStrategy.
// Runner also offers FirstAccepting for scan-until-match, NewStream
// for incremental io.Writer-style feeding, and FinalCtx/AcceptsCtx
// for deadline- and cancellation-aware runs.
//
// # Batch execution
//
// Engine (NewEngine) serves many (machine, input) jobs from a bounded
// worker pool with pooled per-worker scratch, backpressure, per-job
// timeouts, and an adaptive dispatch policy: small inputs run
// single-core — the batch itself is the parallelism — while inputs
// past WithLargeInput take the paper's Figure 5 multicore phase
// split. Register machines once, then RunBatch (ordered results) or
// Submit (streaming completion order).
//
//	e := dpfsm.NewEngine()
//	defer e.Close()
//	e.Register("sqli", d)
//	results, stats := e.RunBatch(ctx, jobs)
//
// # Observability
//
// A Metrics sink (WithTelemetry, WithEngineTelemetry) counts runs,
// symbols, gather/shuffle kernel invocations, convergence wins,
// multicore phase times, and engine dispatch decisions; it exports
// expvar and Prometheus text formats. cmd/fsmserve serves machines
// over HTTP (/v1/run, /v1/batch) with live /v1/metrics, and
// cmd/fsmbench regenerates the paper's evaluation figures (see
// DESIGN.md and EXPERIMENTS.md).
//
// The implementation lives under internal/ — the enumerative runner
// in internal/core, gather/factor primitives in internal/gather, the
// machine substrate in internal/fsm, the batch engine in
// internal/engine, and the three case studies in internal/regex,
// internal/huffman, internal/htmltok — and this package re-exports
// the supported subset.
package dpfsm
