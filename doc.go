// Package dpfsm is a Go reproduction of "Data-Parallel Finite-State
// Machines" (Mytkowicz, Musuvathi, Schulte — ASPLOS 2014).
//
// The library lives under internal/: the enumerative parallel runner in
// internal/core, the gather/factor primitives in internal/gather, the
// machine substrate in internal/fsm, and the three case studies in
// internal/regex, internal/huffman and internal/htmltok. The cmd/
// binaries and examples/ programs exercise the public surface; the
// benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for paper-vs-measured results).
package dpfsm
