// streamscan: incremental scanning with the streaming API — a rule set
// compiled once, then fed an unbounded log stream in small writes
// (here simulated with generated HTTP traffic), reporting which rules
// have fired after every megabyte. Demonstrates core.Stream and
// regex.RuleSet together: O(block) memory regardless of stream length.
package main

import (
	"bytes"
	"fmt"

	"dpfsm/internal/core"
	"dpfsm/internal/regex"
	"dpfsm/internal/workload"
)

var rules = []regex.Rule{
	{Name: "sqli", Pattern: `union\s+select`, Options: regex.Options{CaseInsensitive: true}},
	{Name: "traversal", Pattern: `\.\./\.\./`},
	{Name: "scanner-agent", Pattern: `(nikto|sqlmap|nmap)`, Options: regex.Options{CaseInsensitive: true}},
	{Name: "wp-probe", Pattern: `wp-login\.php`},
}

func main() {
	// One stream per rule; each keeps only its machine state between
	// writes.
	streams := make([]*core.Stream, len(rules))
	for i, rl := range rules {
		d, err := regex.Compile(rl.Pattern, rl.Options)
		if err != nil {
			panic(err)
		}
		r, err := core.New(d)
		if err != nil {
			panic(err)
		}
		streams[i] = r.NewStream(nil, 64<<10)
	}

	// Simulate 8 MiB of traffic arriving in 4 KiB reads, with attacks
	// spliced into the 3rd and 6th megabytes.
	traffic := workload.HTTPTraffic(99, 8<<20)
	copy(traffic[3<<20:], []byte("GET /wp-login.php?u=../../etc/passwd HTTP/1.1"))
	copy(traffic[6<<20:], []byte("User-Agent: sqlmap/1.5"))

	reader := bytes.NewReader(traffic)
	buf := make([]byte, 4096)
	consumed := 0
	nextReport := 1 << 20
	for {
		n, err := reader.Read(buf)
		if n > 0 {
			for _, s := range streams {
				s.Write(buf[:n])
			}
			consumed += n
			for consumed >= nextReport {
				fmt.Printf("after %2d MiB:", nextReport>>20)
				for i, s := range streams {
					if s.Accepting() {
						fmt.Printf(" %s!", rules[i].Name)
					}
				}
				fmt.Println()
				nextReport += 1 << 20
			}
		}
		if err != nil {
			break
		}
	}

	fmt.Println("\nfinal verdicts:")
	for i, s := range streams {
		fmt.Printf("  %-14s fired=%v (scanned %d bytes)\n", rules[i].Name, s.Accepting(), s.Consumed())
	}
}
