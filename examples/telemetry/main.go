// telemetry: attach the runtime observability sink to a runner and
// watch the paper's quantities come out of a live scan — shuffles per
// symbol (§6.1's "one or two" claim), the convergence trajectory
// (Figure 7: active states collapse from n toward 1), and the three
// multicore phase times (Figure 5). The same counters feed
// cmd/fsmserve's /metrics endpoint; this example uses the in-process
// Snapshot API directly.
package main

import (
	"fmt"
	"os"

	"dpfsm/internal/core"
	"dpfsm/internal/regex"
	"dpfsm/internal/telemetry"
	"dpfsm/internal/workload"
)

func main() {
	// One machine per strategy, all feeding the same sink: the
	// strategy_runs labels show what executed, and the shuffle counters
	// show what each choice cost.
	traffic := workload.HTTPTraffic(11, 4<<20)
	copy(traffic[1<<20:], []byte("GET /cgi-bin/probe.pl HTTP/1.1"))

	d, err := regex.Compile(`/cgi-bin/.*\.(pl|sh)`, regex.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	met := new(telemetry.Metrics)
	fmt.Printf("machine: %d states, max range %d\n\n", d.NumStates(), d.MaxRangeSize())
	fmt.Printf("%-12s %-7s %10s %10s %10s\n",
		"strategy", "match", "shuf/sym", "highwater", "final")
	for _, strat := range []core.Strategy{core.Base, core.Convergence, core.RangeCoalesced} {
		per := new(telemetry.Metrics) // per-strategy sink for the table row
		r, err := core.New(d, core.WithStrategy(strat), core.WithProcs(1), core.WithTelemetry(per))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		matched := r.Accepts(traffic)
		s := per.Snapshot()
		fmt.Printf("%-12v %-7v %10.2f %10d %10.0f\n",
			strat, matched, s.ShufflesPerSymbol, s.ActiveHighWater, s.ActiveFinalMean)
	}

	// Multicore run against the shared sink: phase timings + chunking.
	// WithProcs(4) forces four chunks even on a small host; the phase
	// structure is the same either way.
	r, err := core.New(d, core.WithProcs(4), core.WithTelemetry(met))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r.Accepts(traffic)
	snap := met.Snapshot()
	fmt.Printf("\nmulticore run (strategy %v, %d chunks):\n", r.Strategy(), snap.Chunks)
	fmt.Printf("  phase 1 (enumerative chunks): %d spans, mean %.0f ns\n",
		snap.Phase1.Count, snap.Phase1.MeanNs)
	fmt.Printf("  phase 2 (combine):            %d spans, mean %.0f ns\n",
		snap.Phase2.Count, snap.Phase2.MeanNs)
	fmt.Printf("  phase 3 skipped %d times (accept-only query needs no replay)\n",
		snap.Phase3Skips)

	// The whole snapshot is JSON — what /snapshot and /debug/vars serve.
	fmt.Printf("\nfull snapshot:\n%s\n", met.String())
}
