// Quickstart: the paper's running example (Figure 1) — a four-state
// machine that recognizes C-style /* ... */ comments — executed with
// the sequential baseline and every data-parallel strategy, plus a
// Mealy φ callback that reports when comments open and close.
package main

import (
	"fmt"
	"strings"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
)

// States a..d of Figure 1(a).
const (
	outside      = fsm.State(0) // a: outside any comment
	slashSeen    = fsm.State(1) // b: '/' seen
	commentBody  = fsm.State(2) // c: inside /* ...
	starInside   = fsm.State(3) // d: '*' seen inside a comment
	numStates    = 4
	symSlash     = 0
	symStar      = 1
	symOther     = 2
	alphabetSize = 3
)

// commentFSM builds the transition table of Figure 1(b).
func commentFSM() *fsm.DFA {
	d := fsm.MustNew(numStates, alphabetSize)
	set := func(sym byte, targets ...fsm.State) {
		for q, r := range targets {
			d.SetTransition(fsm.State(q), sym, r)
		}
	}
	//              a            b            c            d
	set(symSlash, slashSeen, slashSeen, commentBody, outside)
	set(symStar, outside, commentBody, starInside, starInside)
	set(symOther, outside, outside, commentBody, commentBody)
	d.SetStart(outside)
	d.SetAccepting(outside, true) // accepted = all comments closed
	return d
}

// encode maps source bytes onto the three-symbol alphabet.
func encode(src string) []byte {
	out := make([]byte, len(src))
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '/':
			out[i] = symSlash
		case '*':
			out[i] = symStar
		default:
			out[i] = symOther
		}
	}
	return out
}

func main() {
	d := commentFSM()
	src := `int x = 1; /* set x */ int y = 2; /* and y */`
	input := encode(src)

	fmt.Printf("machine: %v (max transition range %d)\n\n", d, d.MaxRangeSize())

	// Every strategy computes the same final state.
	for _, strat := range []core.Strategy{
		core.Sequential, core.Base, core.BaseILP, core.Convergence, core.RangeCoalesced,
	} {
		r, err := core.New(d, core.WithStrategy(strat))
		if err != nil {
			fmt.Println(strat, "→ error:", err)
			continue
		}
		fmt.Printf("%-12v final state = %d, accepts = %v\n",
			strat, r.Final(input, d.Start()), r.Accepts(input))
	}

	// Mealy outputs: watch comments open and close via φ. The runner
	// may call φ out of order when multicore; single-core order is
	// sequential.
	fmt.Println("\nφ trace:")
	r, _ := core.New(d, core.WithStrategy(core.Convergence))
	prev := d.Start()
	r.Run(input, d.Start(), func(pos int, sym byte, q fsm.State) {
		switch {
		case prev != commentBody && prev != starInside && q == commentBody:
			fmt.Printf("  comment opens after byte %2d %q\n", pos, src[:pos+1])
		case prev == starInside && q == outside:
			fmt.Printf("  comment closes at byte   %2d %q\n", pos, src[strings.LastIndex(src[:pos+1], "/*"):pos+1])
		}
		prev = q
	})

	// A multicore run over a large synthetic input.
	big := encode(strings.Repeat(src+"\n", 100_000))
	mc, _ := core.New(d, core.WithProcs(0))
	fmt.Printf("\nmulticore accepts %d MB: %v (strategy %v, %d procs)\n",
		len(big)>>20, mc.Accepts(big), mc.Strategy(), mc.Procs())
}
