// clusterscan: the paper's concluding claim made concrete — the
// enumerative decomposition running on a simulated MapReduce-style
// cluster (message-passing worker nodes, machine shipped serialized,
// one composition vector returned per chunk). Prints the wire-traffic
// accounting that makes the approach cluster-friendly: result traffic
// is per-chunk, not per-byte.
package main

import (
	"fmt"

	"dpfsm/internal/cluster"
	"dpfsm/internal/regex"
	"dpfsm/internal/workload"
)

func main() {
	d, err := regex.Compile(`UNION\s+SELECT`, regex.Options{CaseInsensitive: true})
	if err != nil {
		panic(err)
	}
	traffic := workload.HTTPTraffic(21, 32<<20)
	copy(traffic[20<<20:], []byte("q=1 UNION SELECT pass FROM users"))

	fmt.Printf("machine: %v; input: %d MiB\n\n", d, len(traffic)>>20)
	fmt.Printf("%-10s %-8s %-10s %-14s %-14s %-10s\n",
		"chunk", "tasks", "match", "to-workers", "to-coord", "overhead")

	for _, chunkMB := range []int{1, 4, 16} {
		c, err := cluster.New(d, cluster.SimConfig{Workers: 4, ChunkBytes: chunkMB << 20})
		if err != nil {
			panic(err)
		}
		matched, stats := c.Accepts(d, traffic)
		c.Close()
		fmt.Printf("%-10s %-8d %-10v %-14s %-14s %.4f%%\n",
			fmt.Sprintf("%dMiB", chunkMB), stats.Tasks, matched,
			fmt.Sprintf("%d B", stats.BytesToWorkers),
			fmt.Sprintf("%d B", stats.BytesToCoordinator),
			100*float64(stats.BytesToCoordinator)/float64(stats.BytesToWorkers))
	}
	fmt.Println("\nresult traffic is one composition vector per chunk — independent of chunk bytes,")
	fmt.Println("which is why §3.4's decomposition suits clusters where communication dominates.")
}
