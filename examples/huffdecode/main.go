// huffdecode: the §6.2 case study end to end — build a Huffman code
// from a book's character statistics, compress a payload, and decode it
// with all four decoders (bit-walking baseline, byte-unrolled FSM,
// range-coalesced walk, and the data-parallel decoder), verifying they
// agree and reporting throughput.
package main

import (
	"bytes"
	"fmt"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/huffman"
	"dpfsm/internal/workload"
)

func main() {
	book := workload.Book(42, 4<<20)

	codec, err := huffman.FromSample(book)
	if err != nil {
		panic(err)
	}
	dec, err := codec.DecoderFSM()
	if err != nil {
		panic(err)
	}
	enc, err := codec.Encode(book)
	if err != nil {
		panic(err)
	}

	fmt.Printf("book: %d bytes, %d distinct symbols\n", len(book), codec.NumSymbols())
	fmt.Printf("compressed: %d bytes (%.1f%%)\n", len(enc.Data), 100*float64(len(enc.Data))/float64(len(book)))
	fmt.Printf("decoder FSM: %d states, max range %d (byte-unrolled, §6.2)\n\n",
		dec.ByteMachine.NumStates(), dec.ByteMachine.MaxRangeSize())

	run := func(name string, f func() []byte) {
		start := time.Now()
		out := f()
		dur := time.Since(start)
		ok := bytes.Equal(out, book)
		fmt.Printf("%-16s %8.1f MB/s  roundtrip=%v\n",
			name, float64(len(out))/dur.Seconds()/1e6, ok)
	}

	// The bit-walker is very slow; give it a slice and let the others
	// decode everything.
	smallText := book[:1<<18]
	smallEnc, _ := codec.Encode(smallText)
	start := time.Now()
	smallOut := codec.DecodeBitwalk(smallEnc)
	fmt.Printf("%-16s %8.1f MB/s  roundtrip=%v   (on a %d KiB slice)\n",
		"bitwalk", float64(len(smallOut))/time.Since(start).Seconds()/1e6,
		bytes.Equal(smallOut, smallText), len(smallText)>>10)

	run("fsm sequential", func() []byte { return dec.DecodeSequential(enc) })
	cd := dec.NewCoalescedDecoder()
	run("coalesced", func() []byte { return cd.Decode(enc) })
	run("parallel", func() []byte {
		out, err := dec.DecodeParallel(enc, core.WithProcs(0))
		if err != nil {
			panic(err)
		}
		return out
	})
}
