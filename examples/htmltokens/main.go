// htmltokens: the §6.3 case study — tokenize an HTML page with the
// switch-encoded baseline and the data-parallel tokenizer, verify they
// produce identical tokens (the paper's drop-in-replacement check
// against bing's tokenizer), and print a throughput comparison plus a
// sample of the token stream.
package main

import (
	"fmt"
	"reflect"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/htmltok"
	"dpfsm/internal/workload"
)

func main() {
	page := workload.HTMLPage(11, 6<<20) // the paper's 6 MB dump

	base := htmltok.TokenizeSwitch(page)
	fmt.Printf("page: %d MiB, %d tokens from the switch baseline\n\n", len(page)>>20, len(base))

	fmt.Println("first tokens:")
	for _, t := range base[:10] {
		text := string(page[t.Start:t.End])
		if len(text) > 28 {
			text = text[:25] + "..."
		}
		fmt.Printf("  %-10s %q\n", t.Type, text)
	}

	tk, err := htmltok.NewTokenizer(core.WithStrategy(core.Convergence), core.WithProcs(0))
	if err != nil {
		panic(err)
	}
	par := tk.Tokenize(page)
	if !reflect.DeepEqual(base, par) {
		panic("parallel tokenizer diverged from the baseline — drop-in check failed")
	}
	fmt.Println("\ndrop-in check: parallel tokens identical to the switch baseline ✓")

	measure := func(name string, f func() []htmltok.Token) {
		var toks []htmltok.Token
		start := time.Now()
		const reps = 3
		for i := 0; i < reps; i++ {
			toks = f()
		}
		dur := time.Since(start) / reps
		fmt.Printf("%-16s %8.1f MB/s  (%d tokens)\n",
			name, float64(len(page))/dur.Seconds()/1e6, len(toks))
	}
	fmt.Println()
	measure("switch", func() []htmltok.Token { return htmltok.TokenizeSwitch(page) })
	measure("table", func() []htmltok.Token { return tk.TokenizeTable(page) })
	measure("parallel", func() []htmltok.Token { return tk.Tokenize(page) })
}
