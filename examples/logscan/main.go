// logscan: the Snort-style use case (§6.1) — compile a handful of
// intrusion-detection signatures to DFAs and scan a web-server-like
// byte stream with the data-parallel runner, one independent machine
// per rule (the paper notes that matching many rules is embarrassingly
// parallel across rules; each rule's scan is data-parallel within the
// input).
package main

import (
	"fmt"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/regex"
	"dpfsm/internal/workload"
)

type rule struct {
	name        string
	pattern     string
	insensitive bool
}

var rules = []rule{
	{"directory traversal", `\.\./\.\./`, false},
	{"sql injection", `UNION\s+SELECT`, true},
	{"shellcode nop sled", `\x90\x90\x90\x90`, false},
	{"cgi-bin probe", `/cgi-bin/.*\.(pl|sh)`, false},
	{"cmd.exe invocation", `cmd\.exe`, true},
	{"oversized header", `^Host\x3a[^\n]{200,}`, false},
}

func main() {
	// Synthesize ~4 MiB of HTTP-shaped traffic and splice in two
	// attack payloads so some rules fire.
	traffic := workload.HTTPTraffic(7, 4<<20)
	copy(traffic[1<<20:], []byte("GET /cgi-bin/probe.pl HTTP/1.1"))
	copy(traffic[3<<20:], []byte("id=1 union   select password from users"))

	fmt.Printf("scanning %d MiB against %d rules\n\n", len(traffic)>>20, len(rules))
	fmt.Printf("%-22s %-8s %-7s %-9s %-8s %9s\n",
		"rule", "states", "range", "strategy", "match", "MB/s")

	for _, rl := range rules {
		d, err := regex.Compile(rl.pattern, regex.Options{CaseInsensitive: rl.insensitive})
		if err != nil {
			fmt.Printf("%-22s compile error: %v\n", rl.name, err)
			continue
		}
		r, err := core.New(d, core.WithProcs(0)) // Auto strategy, all cores
		if err != nil {
			fmt.Printf("%-22s runner error: %v\n", rl.name, err)
			continue
		}
		start := time.Now()
		matched := r.Accepts(traffic)
		dur := time.Since(start)
		fmt.Printf("%-22s %-8d %-7d %-9v %-8v %9.1f\n",
			rl.name, d.NumStates(), d.MaxRangeSize(), r.Strategy(), matched,
			float64(len(traffic))/dur.Seconds()/1e6)
	}
}
