module dpfsm

go 1.22
