package dpfsm

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestPublicTraceAPI exercises the exported tracing surface end to end:
// engine-owned traces via WithEngineTraceSink land in a TraceRecorder,
// while a caller-owned trace (WithTrace) is instrumented but stays the
// caller's to record.
func TestPublicTraceAPI(t *testing.T) {
	d, err := Compile(`UNION\s+SELECT`, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewTraceRecorder(8)
	eng := NewEngine(
		WithWorkers(2),
		WithEngineProcs(1),
		WithEngineTraceSink(rec),
	)
	defer eng.Close()
	if _, err := eng.Register("sqli", d); err != nil {
		t.Fatal(err)
	}

	// Engine-owned: no trace on the context, so the sink gets one.
	if r := eng.Run(context.Background(), Job{Input: []byte("id=1 UNION  SELECT x")}); r.Err != nil {
		t.Fatal(r.Err)
	}
	if rec.Total() != 1 {
		t.Fatalf("recorder holds %d traces, want 1", rec.Total())
	}
	got := rec.Snapshot()[0]
	if got.ID() == "" || !got.Finished() {
		t.Errorf("recorded trace not finished: id=%q", got.ID())
	}
	data, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"engine.exec", "core.single", `"machine":"sqli"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace JSON missing %q:\n%s", want, data)
		}
	}

	// Caller-owned: the trace rides the context, collects spans, and is
	// NOT delivered to the engine's sink.
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if back := TraceFromContext(ctx); back != tr {
		t.Fatal("TraceFromContext did not round-trip")
	}
	if r := eng.Run(ctx, Job{Input: []byte("clean")}); r.Err != nil {
		t.Fatal(r.Err)
	}
	tr.Finish()
	if len(tr.Spans()) == 0 {
		t.Error("caller-owned trace collected no spans")
	}
	if rec.Total() != 1 {
		t.Errorf("caller-owned trace leaked into the engine sink (total %d)", rec.Total())
	}

	// Traceparent continuation keeps the inbound ID.
	const parent = "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	if id := NewTraceFromParent(parent).ID(); id != "0123456789abcdef0123456789abcdef" {
		t.Errorf("NewTraceFromParent id %q", id)
	}
}
