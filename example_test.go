package dpfsm_test

import (
	"context"
	"fmt"

	"dpfsm"
)

// Example is the package quickstart: compile a pattern, build a
// runner, scan an input.
func Example() {
	d, err := dpfsm.Compile(`UNION\s+SELECT`, dpfsm.CompileOptions{CaseInsensitive: true})
	if err != nil {
		panic(err)
	}
	r, err := dpfsm.NewRunner(d, dpfsm.WithStrategy(dpfsm.Auto))
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Accepts([]byte("id=1 union  select password from users")))
	fmt.Println(r.Accepts([]byte("hello world")))
	// Output:
	// true
	// false
}

// ExampleEngine runs a batch of jobs across two machines on the
// pooled worker engine.
func ExampleEngine() {
	e := dpfsm.NewEngine(dpfsm.WithWorkers(4))
	defer e.Close()
	for name, pat := range map[string]string{
		"sqli":      `UNION\s+SELECT`,
		"traversal": `\.\./\.\./`,
	} {
		if _, err := e.Register(name, dpfsm.MustCompile(pat, dpfsm.CompileOptions{})); err != nil {
			panic(err)
		}
	}

	jobs := []dpfsm.Job{
		{Machine: "sqli", Input: []byte("id=1 UNION  SELECT x")},
		{Machine: "traversal", Input: []byte("GET ../../etc/passwd")},
		{Machine: "sqli", Input: []byte("clean request")},
	}
	results, stats := e.RunBatch(context.Background(), jobs)
	for _, r := range results {
		fmt.Printf("%s %v\n", r.Machine, r.Accepts)
	}
	fmt.Println("ok:", stats.OK)
	// Output:
	// sqli true
	// traversal true
	// sqli false
	// ok: 3
}

// ExampleTransduce marks digit runs with a one-state Mealy machine:
// λ emits 1 on digits, the gap symbol elsewhere, and Transduce folds
// the output tape into maximal spans.
func ExampleTransduce() {
	d, err := dpfsm.NewDFA(1, 256)
	if err != nil {
		panic(err)
	}
	tr, err := dpfsm.NewMealy(d, 2)
	if err != nil {
		panic(err)
	}
	for c := '0'; c <= '9'; c++ {
		tr.SetMealyOutput(0, byte(c), 1)
	}
	p, err := dpfsm.CompileTransducer(tr)
	if err != nil {
		panic(err)
	}
	r, err := dpfsm.NewRunnerFromPlan(p)
	if err != nil {
		panic(err)
	}
	spans, _, err := dpfsm.Transduce(r, []byte("ab12cd345e"), 0)
	if err != nil {
		panic(err)
	}
	for _, s := range spans {
		fmt.Printf("[%d,%d)\n", s.Start, s.End)
	}
	// Output:
	// [2,4)
	// [6,9)
}

// ExampleRunner_FinalCtx bounds a run with a context; a canceled
// context stops the scan at the next block boundary.
func ExampleRunner_FinalCtx() {
	d := dpfsm.MustCompile(`a+b`, dpfsm.CompileOptions{})
	r, err := dpfsm.NewRunner(d)
	if err != nil {
		panic(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = r.FinalCtx(ctx, []byte("aaab"), d.Start())
	fmt.Println(err)
	// Output:
	// context canceled
}
