package regex

// Multi-rule scanning. §6.1's closing discussion: disjoining all Snort
// rules into one machine blows up the state count by orders of
// magnitude and "sequentializes a problem that is originally
// embarrassingly parallel — matching an input against many independent
// regular expressions". RuleSet takes that position literally: one
// compiled machine per rule, scanned concurrently across rules, each
// scan using the enumerative runner internally.

import (
	"fmt"
	"sync"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
)

// Rule is one named pattern in a set.
type Rule struct {
	Name    string
	Pattern string
	Options Options
}

// RuleSet holds compiled machines and their runners.
type RuleSet struct {
	rules   []Rule
	dfas    []*fsm.DFA
	runners []*core.Runner
	// nfaFallback holds simulation matchers for rules whose DFA
	// exceeded the state budget.
	nfaFallback []*NFAMatcher // parallel to rules; nil when the DFA compiled
}

// CompileRuleSet compiles every rule. Rules whose determinization
// exceeds the per-rule state budget fall back to direct NFA simulation
// instead of being dropped. runnerOpts configure each rule's runner
// (strategy, procs).
func CompileRuleSet(rules []Rule, runnerOpts ...core.Option) (*RuleSet, error) {
	rs := &RuleSet{
		rules:       rules,
		dfas:        make([]*fsm.DFA, len(rules)),
		runners:     make([]*core.Runner, len(rules)),
		nfaFallback: make([]*NFAMatcher, len(rules)),
	}
	for i, rl := range rules {
		d, err := Compile(rl.Pattern, rl.Options)
		if err == nil {
			r, rerr := core.New(d, runnerOpts...)
			if rerr != nil {
				return nil, fmt.Errorf("rule %q: %w", rl.Name, rerr)
			}
			rs.dfas[i] = d
			rs.runners[i] = r
			continue
		}
		m, nerr := CompileNFA(rl.Pattern, rl.Options)
		if nerr != nil {
			return nil, fmt.Errorf("rule %q: %w", rl.Name, err)
		}
		rs.nfaFallback[i] = m
	}
	return rs, nil
}

// Len reports the number of rules.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// Machine returns the compiled DFA for rule i, or nil if it runs on
// the NFA fallback.
func (rs *RuleSet) Machine(i int) *fsm.DFA { return rs.dfas[i] }

// Match is one rule's verdict on an input.
type Match struct {
	Rule    string
	Index   int
	Matched bool
}

// Scan runs every rule against input, with up to parallelism rules in
// flight at once (0 means all at once). Each rule's own runner may
// additionally split the input across cores; for rule counts well
// above the core count, prefer per-rule parallelism 1 and let the rule
// fan-out saturate the machine.
func (rs *RuleSet) Scan(input []byte, parallelism int) []Match {
	out := make([]Match, len(rs.rules))
	if parallelism <= 0 || parallelism > len(rs.rules) {
		parallelism = len(rs.rules)
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i := range rs.rules {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var matched bool
			if rs.runners[i] != nil {
				matched = rs.runners[i].Accepts(input)
			} else {
				matched = rs.nfaFallback[i].Match(input)
			}
			out[i] = Match{Rule: rs.rules[i].Name, Index: i, Matched: matched}
		}(i)
	}
	wg.Wait()
	return out
}

// Matched returns just the names of matching rules, in rule order.
func (rs *RuleSet) Matched(input []byte, parallelism int) []string {
	var names []string
	for _, m := range rs.Scan(input, parallelism) {
		if m.Matched {
			names = append(names, m.Rule)
		}
	}
	return names
}
