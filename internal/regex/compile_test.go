package regex

import (
	"math/rand"
	"testing"

	"dpfsm/internal/fsm"
)

func anchored(t *testing.T, pat string) *fsm.DFA {
	t.Helper()
	d, err := Compile(pat, Options{Anchored: true})
	if err != nil {
		t.Fatalf("Compile(%q): %v", pat, err)
	}
	return d
}

func contains(t *testing.T, pat string) *fsm.DFA {
	t.Helper()
	d, err := Compile(pat, Options{})
	if err != nil {
		t.Fatalf("Compile(%q): %v", pat, err)
	}
	return d
}

func TestAnchoredBasics(t *testing.T) {
	cases := []struct {
		pat string
		yes []string
		no  []string
	}{
		{"abc", []string{"abc"}, []string{"", "ab", "abcd", "xabc"}},
		{"a*", []string{"", "a", "aaaa"}, []string{"b", "ab"}},
		{"a+b", []string{"ab", "aaab"}, []string{"b", "a", "aba"}},
		{"a|bc", []string{"a", "bc"}, []string{"", "b", "abc"}},
		{"(ab)+", []string{"ab", "abab"}, []string{"", "a", "aba"}},
		{"a?b?", []string{"", "a", "b", "ab"}, []string{"ba", "aa"}},
		{"[0-9]{2,3}", []string{"12", "123"}, []string{"1", "1234", "ab"}},
		{".", []string{"x", "\n", "\x00"}, []string{"", "xy"}},
		{"a.c", []string{"abc", "a/c"}, []string{"ac", "abbc"}},
		{`\d+\.\d+`, []string{"3.14", "10.0"}, []string{"3.", ".5", "3,14"}},
		{"(a|b)*abb", []string{"abb", "aabb", "babb", "abababb"}, []string{"ab", "abba"}},
	}
	for _, c := range cases {
		d := anchored(t, c.pat)
		for _, s := range c.yes {
			if !d.Accepts([]byte(s)) {
				t.Errorf("%q should accept %q", c.pat, s)
			}
		}
		for _, s := range c.no {
			if d.Accepts([]byte(s)) {
				t.Errorf("%q should reject %q", c.pat, s)
			}
		}
	}
}

func TestContainsBasics(t *testing.T) {
	cases := []struct {
		pat string
		yes []string
		no  []string
	}{
		{"abc", []string{"abc", "xxabcxx", "abcabc"}, []string{"", "ab", "axbxc"}},
		{"a+b", []string{"zzaab", "ab!"}, []string{"ba", "aaa"}},
		{"cat|dog", []string{"the cat sat", "hotdog"}, []string{"cow", "ca t"}},
	}
	for _, c := range cases {
		d := contains(t, c.pat)
		for _, s := range c.yes {
			if !d.Accepts([]byte(s)) {
				t.Errorf("%q should be found in %q", c.pat, s)
			}
		}
		for _, s := range c.no {
			if d.Accepts([]byte(s)) {
				t.Errorf("%q should not be found in %q", c.pat, s)
			}
		}
	}
}

func TestContainsStickyAccept(t *testing.T) {
	// Once a match is seen, the machine must stay accepting forever.
	d := contains(t, "ab")
	q := d.Run([]byte("xxabyyyyyyzzz"), d.Start())
	if !d.Accepting(q) {
		t.Error("match followed by junk should remain accepting")
	}
	// And accepting states must be absorbing.
	for _, a := range d.AcceptingStates() {
		for b := 0; b < 256; b++ {
			if d.Next(a, byte(b)) != a {
				t.Fatalf("accepting state %d not absorbing on %d", a, b)
			}
		}
	}
}

func TestStartAnchor(t *testing.T) {
	d := contains(t, "^ab") // anchored at start, free at end
	if !d.Accepts([]byte("abxx")) {
		t.Error("^ab should match prefix ab")
	}
	if d.Accepts([]byte("xab")) {
		t.Error("^ab should not match mid-string")
	}
}

func TestEndAnchor(t *testing.T) {
	d := contains(t, "ab$")
	if !d.Accepts([]byte("xxab")) {
		t.Error("ab$ should match suffix")
	}
	if d.Accepts([]byte("abxx")) {
		t.Error("ab$ should not match mid-string")
	}
}

func TestCaseInsensitive(t *testing.T) {
	d, err := Compile("select", Options{CaseInsensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"SELECT", "Select", "sElEcT * from"} {
		if !d.Accepts([]byte(s)) {
			t.Errorf("/i should match %q", s)
		}
	}
}

func TestCompiledMachinesAreMinimalAndValid(t *testing.T) {
	pats := []string{"abc", "(a|b)*abb", `\d{3}-\d{4}`, "x[yz]+w?", "GET|POST|HEAD"}
	for _, pat := range pats {
		d := contains(t, pat)
		if err := d.Validate(); err != nil {
			t.Errorf("%q: invalid machine: %v", pat, err)
		}
		m := d.Minimize()
		if m.NumStates() != d.NumStates() {
			t.Errorf("%q: Compile output not minimal (%d vs %d)", pat, d.NumStates(), m.NumStates())
		}
	}
}

func TestMaxStatesEnforced(t *testing.T) {
	// (a|b)*a(a|b){12} needs 2^12 DFA states pre-minimization.
	if _, err := Compile("(a|b)*a(a|b){12}", Options{Anchored: true, MaxStates: 100}); err == nil {
		t.Error("expected state-limit error")
	}
	if _, err := Compile("(a|b)*a(a|b){12}", Options{Anchored: true}); err != nil {
		t.Errorf("default limit should admit 2^13 states: %v", err)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile on bad pattern should panic")
		}
	}()
	MustCompile("(", Options{})
}

// randomPattern generates a small random pattern from a restricted
// grammar for differential testing against the AST oracle.
func randomPattern(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		lits := []string{"a", "b", "c", "[ab]", "[bc]", "."}
		return lits[rng.Intn(len(lits))]
	}
	switch rng.Intn(6) {
	case 0:
		return randomPattern(rng, depth-1) + randomPattern(rng, depth-1)
	case 1:
		return "(" + randomPattern(rng, depth-1) + "|" + randomPattern(rng, depth-1) + ")"
	case 2:
		return "(" + randomPattern(rng, depth-1) + ")*"
	case 3:
		return "(" + randomPattern(rng, depth-1) + ")?"
	case 4:
		return "(" + randomPattern(rng, depth-1) + ")+"
	default:
		return randomPattern(rng, 0)
	}
}

// TestDifferentialAnchored cross-checks the compiled DFA against the
// naive AST matcher on all short strings over {a,b,c}.
func TestDifferentialAnchored(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	alphabet := []byte("abc")
	var inputs [][]byte
	var gen func(prefix []byte, n int)
	gen = func(prefix []byte, n int) {
		inputs = append(inputs, append([]byte(nil), prefix...))
		if n == 0 {
			return
		}
		for _, b := range alphabet {
			gen(append(prefix, b), n-1)
		}
	}
	gen(nil, 4) // all strings up to length 4: 121 inputs

	for iter := 0; iter < 60; iter++ {
		pat := randomPattern(rng, 3)
		parsed, err := Parse(pat, false)
		if err != nil {
			t.Fatalf("generated pattern %q failed to parse: %v", pat, err)
		}
		d, err := Compile(pat, Options{Anchored: true})
		if err != nil {
			t.Fatalf("Compile(%q): %v", pat, err)
		}
		for _, in := range inputs {
			want := MatchAST(parsed.Root, in)
			if got := d.Accepts(in); got != want {
				t.Fatalf("pattern %q input %q: DFA=%v oracle=%v", pat, in, got, want)
			}
		}
	}
}

// TestDifferentialContains cross-checks default (substring) semantics.
func TestDifferentialContains(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 40; iter++ {
		pat := randomPattern(rng, 2)
		parsed, err := Parse(pat, false)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Compile(pat, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			n := rng.Intn(8)
			in := make([]byte, n)
			for i := range in {
				in[i] = "abc"[rng.Intn(3)]
			}
			want := MatchContains(parsed.Root, in)
			if got := d.Accepts(in); got != want {
				t.Fatalf("pattern %q input %q: DFA=%v oracle=%v", pat, in, got, want)
			}
		}
	}
}

// The compiled machines must behave identically under the parallel
// runners — the actual integration the case study depends on.
func TestCompiledMachineUnderParallelRunners(t *testing.T) {
	d := contains(t, `(GET|POST) /[a-z]+ HTTP/1\.[01]`)
	input := []byte("junk junk GET /index HTTP/1.1 more junk")
	if !d.Accepts(input) {
		t.Fatal("sequential accept failed")
	}
	// core import would be a cycle in tests? No: regex doesn't import
	// core. But keeping the integration test in core-free terms: the
	// composition of per-symbol columns must agree with Run.
	st := d.Start()
	q := st
	for _, b := range input {
		q = d.Column(b)[q]
	}
	if q != d.Run(input, st) {
		t.Error("column composition disagrees with Run")
	}
}
