package regex

// Thompson construction: AST → NFA with ε-transitions and class-labeled
// edges. The construction is the textbook one (Hopcroft & Ullman),
// producing one start and one accept state per fragment.

type nfaEdge struct {
	set Class
	to  int
}

type nfaState struct {
	eps   []int
	edges []nfaEdge
}

type nfa struct {
	states []nfaState
	start  int
	accept int
}

func (n *nfa) newState() int {
	n.states = append(n.states, nfaState{})
	return len(n.states) - 1
}

func (n *nfa) addEps(from, to int) {
	n.states[from].eps = append(n.states[from].eps, to)
}

func (n *nfa) addEdge(from int, set Class, to int) {
	n.states[from].edges = append(n.states[from].edges, nfaEdge{set: set, to: to})
}

// frag is an NFA fragment with unique entry and exit states.
type frag struct{ in, out int }

// build recursively translates the AST into fragments.
func (n *nfa) build(node Node) frag {
	switch t := node.(type) {
	case *Empty, *endAnchor:
		s := n.newState()
		e := n.newState()
		n.addEps(s, e)
		return frag{s, e}
	case *Leaf:
		s := n.newState()
		e := n.newState()
		n.addEdge(s, t.Set, e)
		return frag{s, e}
	case *Concat:
		cur := n.build(t.Subs[0])
		for _, sub := range t.Subs[1:] {
			next := n.build(sub)
			n.addEps(cur.out, next.in)
			cur = frag{cur.in, next.out}
		}
		return cur
	case *Alt:
		s := n.newState()
		e := n.newState()
		for _, sub := range t.Subs {
			f := n.build(sub)
			n.addEps(s, f.in)
			n.addEps(f.out, e)
		}
		return frag{s, e}
	case *Repeat:
		return n.buildRepeat(t)
	default:
		panic("regex: unknown AST node")
	}
}

// buildRepeat expands {min,max} into min required copies followed by
// either a Kleene star (max < 0) or max-min optional copies. The parser
// bounds the expansion with maxCounterExpansion.
func (n *nfa) buildRepeat(r *Repeat) frag {
	star := func(sub Node) frag {
		s := n.newState()
		e := n.newState()
		f := n.build(sub)
		n.addEps(s, f.in)
		n.addEps(s, e)
		n.addEps(f.out, f.in)
		n.addEps(f.out, e)
		return frag{s, e}
	}
	if r.Min == 0 && r.Max < 0 {
		return star(r.Sub)
	}

	var pieces []frag
	for i := 0; i < r.Min; i++ {
		pieces = append(pieces, n.build(r.Sub))
	}
	switch {
	case r.Max < 0:
		pieces = append(pieces, star(r.Sub))
	default:
		for i := r.Min; i < r.Max; i++ {
			// Optional copy: sub | ε.
			f := n.build(r.Sub)
			s := n.newState()
			e := n.newState()
			n.addEps(s, f.in)
			n.addEps(f.out, e)
			n.addEps(s, e)
			pieces = append(pieces, frag{s, e})
		}
	}
	if len(pieces) == 0 {
		// {0} or {0,0}: empty match.
		s := n.newState()
		e := n.newState()
		n.addEps(s, e)
		return frag{s, e}
	}
	cur := pieces[0]
	for _, f := range pieces[1:] {
		n.addEps(cur.out, f.in)
		cur = frag{cur.in, f.out}
	}
	return cur
}

// fromAST builds a complete NFA. If unanchoredStart, a Σ-self-loop
// start is prepended (Σ* prefix), implementing "match anywhere"
// semantics.
func fromAST(root Node, unanchoredStart bool) *nfa {
	n := &nfa{}
	f := n.build(root)
	start := f.in
	if unanchoredStart {
		s := n.newState()
		n.addEdge(s, anyByte(), s)
		n.addEps(s, f.in)
		start = s
	}
	n.start = start
	n.accept = f.out
	return n
}

// epsClosure expands set (a sorted list of NFA state ids) in place to
// its ε-closure, using mark as scratch (len == |states|, cleared on
// return is the caller's job via the returned list).
func (n *nfa) epsClosure(set []int, mark []bool) []int {
	stack := append([]int(nil), set...)
	for _, s := range set {
		mark[s] = true
	}
	out := set
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.states[s].eps {
			if !mark[e] {
				mark[e] = true
				out = append(out, e)
				stack = append(stack, e)
			}
		}
	}
	return out
}
