package regex

import (
	"testing"

	"dpfsm/internal/core"
)

func testRules() []Rule {
	return []Rule{
		{Name: "traversal", Pattern: `\.\./`},
		{Name: "sqli", Pattern: `union\s+select`, Options: Options{CaseInsensitive: true}},
		{Name: "cmd", Pattern: `cmd\.exe`},
		{Name: "window", Pattern: `a[ab]{18}b`}, // forces the NFA fallback
	}
}

func TestCompileRuleSetWithFallback(t *testing.T) {
	rs, err := CompileRuleSet(testRules(), core.WithStrategy(core.Convergence))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 4 {
		t.Fatalf("Len = %d", rs.Len())
	}
	if rs.Machine(0) == nil || rs.Machine(1) == nil || rs.Machine(2) == nil {
		t.Error("small rules should compile to DFAs")
	}
	if rs.Machine(3) != nil {
		t.Error("the window rule should have fallen back to NFA simulation")
	}
}

func TestRuleSetScan(t *testing.T) {
	rs, err := CompileRuleSet(testRules())
	if err != nil {
		t.Fatal(err)
	}
	input := []byte(`GET /../../etc/passwd — UNION   SELECT pw`)
	for _, par := range []int{0, 1, 2, 16} {
		ms := rs.Scan(input, par)
		if len(ms) != 4 {
			t.Fatalf("par %d: %d matches", par, len(ms))
		}
		want := map[string]bool{"traversal": true, "sqli": true, "cmd": false, "window": false}
		for _, m := range ms {
			if m.Matched != want[m.Rule] {
				t.Errorf("par %d: rule %s matched=%v want %v", par, m.Rule, m.Matched, want[m.Rule])
			}
		}
	}
}

func TestRuleSetMatched(t *testing.T) {
	rs, err := CompileRuleSet(testRules())
	if err != nil {
		t.Fatal(err)
	}
	names := rs.Matched([]byte("run cmd.exe now"), 0)
	if len(names) != 1 || names[0] != "cmd" {
		t.Errorf("Matched = %v", names)
	}
	if got := rs.Matched([]byte("benign"), 0); got != nil {
		t.Errorf("expected no matches, got %v", got)
	}
}

func TestRuleSetNFAFallbackMatches(t *testing.T) {
	rs, err := CompileRuleSet(testRules())
	if err != nil {
		t.Fatal(err)
	}
	// Build an input matching the exponential window rule.
	in := append([]byte("a"), []byte("abababababababababab")...) // wait: 20 sym window? pattern is a[ab]{18}b
	in = append(in[:19], 'b')
	in = append([]byte("xx"), append(in, []byte("yy")...)...)
	found := false
	for _, m := range rs.Scan(in, 0) {
		if m.Rule == "window" && m.Matched {
			found = true
		}
	}
	if !found {
		// Construct a guaranteed witness: 'a' + 18 a's + 'b'.
		witness := append([]byte{'a'}, make([]byte, 0)...)
		for i := 0; i < 18; i++ {
			witness = append(witness, 'a')
		}
		witness = append(witness, 'b')
		for _, m := range rs.Scan(witness, 0) {
			if m.Rule == "window" && m.Matched {
				found = true
			}
		}
	}
	if !found {
		t.Error("NFA-fallback rule never matched a valid witness")
	}
}

func TestRuleSetBadRule(t *testing.T) {
	if _, err := CompileRuleSet([]Rule{{Name: "bad", Pattern: "("}}); err == nil {
		t.Error("unparseable rule should fail the whole set")
	}
}
