package regex

import (
	"math/rand"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
)

// Edge cases of the finder surface: empty-width (nullable) patterns,
// anchors, overlapping alternatives, and match spans straddling chunk
// boundaries in the parallel transduce path.

func TestFinderRejectsEmptyWidthPatterns(t *testing.T) {
	// A pattern that matches the empty string would make every
	// position a "match"; the finder refuses it up front.
	for _, pat := range []string{"a*", "(ab)?", "a|", "()", "(a|b)*"} {
		if _, err := NewFinder(pat, Options{}); err == nil {
			t.Errorf("NewFinder(%q): want empty-width rejection, got nil error", pat)
		}
	}
	// The non-nullable cousins compile fine.
	for _, pat := range []string{"a+", "(ab)+", "a|b"} {
		if _, err := NewFinder(pat, Options{}); err != nil {
			t.Errorf("NewFinder(%q): %v", pat, err)
		}
	}
}

func TestFinderRejectsAnchoredPatterns(t *testing.T) {
	if _, err := NewFinder("abc", Options{Anchored: true}); err == nil {
		t.Error("NewFinder with Options.Anchored: want error")
	}
	for _, pat := range []string{"^abc", "abc$", "^abc$"} {
		if _, err := NewFinder(pat, Options{}); err == nil {
			t.Errorf("NewFinder(%q): want anchor rejection", pat)
		}
	}
}

// Overlapping alternatives: alternates that share prefixes/suffixes
// must resolve identically in Find (scalar) and FindAllParallel.
func TestFinderOverlappingAlternatives(t *testing.T) {
	cases := []struct {
		pat, in string
	}{
		{"ab|aba", "xabax abab aba"},
		{"a|ba", "cba ba a"},
		{"abc|bcd", "xabcdx abcd"},
		{"aa|aaa", "aaaaaa"},
		{"foo|foobar", "a foobar foo"},
	}
	for _, c := range cases {
		f, err := NewFinder(c.pat, Options{}, core.WithProcs(4), core.WithMinChunk(2))
		if err != nil {
			t.Fatalf("NewFinder(%q): %v", c.pat, err)
		}
		want := f.FindAll([]byte(c.in), -1)
		got, err := f.FindAllParallel([]byte(c.in), -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q on %q: parallel %v want %v", c.pat, c.in, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%q on %q: parallel[%d] %v want %v", c.pat, c.in, i, got[i], want[i])
			}
		}
	}
}

// A long match forced across every chunk boundary: with tiny chunks
// the span [2, 66) straddles many of them and must come back whole.
func TestFinderSpanStraddlesChunkBoundary(t *testing.T) {
	f, err := NewFinder("a+", Options{}, core.WithProcs(8), core.WithMinChunk(4))
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("xx")
	run := make([]byte, 64)
	for i := range run {
		run[i] = 'a'
	}
	in = append(in, run...)
	in = append(in, "yy"...)
	got, err := f.FindAllParallel(in, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != [2]int{2, 66} {
		t.Fatalf("got %v, want [[2 66]]", got)
	}
}

// Differential soak: FindAllParallel must equal FindAll on random
// inputs across patterns, chunkings, and limits.
func TestFindAllParallelMatchesFindAll(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pats := []string{"a+", "ab", "ab|aba", `\d+`, "(ab|ba)+", "a.c"}
	for _, pat := range pats {
		for _, procs := range []int{1, 3, 8} {
			f, err := NewFinder(pat, Options{}, core.WithProcs(procs), core.WithMinChunk(8))
			if err != nil {
				t.Fatalf("NewFinder(%q): %v", pat, err)
			}
			for trial := 0; trial < 20; trial++ {
				n := rng.Intn(400)
				in := make([]byte, n)
				for i := range in {
					in[i] = "ab1c d"[rng.Intn(6)]
				}
				for _, limit := range []int{-1, 1, 3} {
					want := f.FindAll(in, limit)
					got, err := f.FindAllParallel(in, limit)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("%q procs=%d limit=%d on %q: %v want %v", pat, procs, limit, in, got, want)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%q procs=%d limit=%d on %q: [%d] %v want %v", pat, procs, limit, in, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// The finder's transducer is a plan-shaped artifact: it must survive
// the wire round trip and keep marking the same ends.
func TestFinderTransducerPlanShape(t *testing.T) {
	f, err := NewFinder("ab+", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := f.Transducer()
	if tr.Kind() != fsm.KindMealy {
		t.Fatalf("finder transducer kind %v, want mealy", tr.Kind())
	}
	p, err := core.CompileTransducer(tr)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.UnmarshalPlan(blob)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := core.NewFromPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.NewFromPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("xabbbx ab abb")
	t1, _, err1 := r1.TransduceOutputs(in, tr.DFA().Start())
	t2, _, err2 := r2.TransduceOutputs(in, q.Outputs().DFA().Start())
	if err1 != nil || err2 != nil {
		t.Fatalf("err1=%v err2=%v", err1, err2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("round-tripped finder plan diverges at %d", i)
		}
	}
}
