package regex

import (
	"fmt"
	"strconv"
)

// Parser for the PCRE subset the Snort-shaped corpus uses: literals,
// escapes (\d \D \w \W \s \S, control escapes, \xHH, punctuation),
// character classes with ranges and negation, '.', grouping (capturing
// groups are treated as non-capturing — a DFA has no captures),
// alternation, and the quantifiers * + ? {m} {m,} {m,n} with their
// non-greedy variants (greediness is language-irrelevant for a DFA and
// is dropped). '^' at the very start and '$' at the very end set the
// anchoring flags; anywhere else they are an error, as automaton
// acceptance cannot express mid-pattern anchors.

// maxCounterExpansion bounds how many copies a bounded repeat may
// expand to in the NFA, preventing pathological {100000} counters from
// exhausting memory. The bound admits the long run-length counters that
// produce the Snort corpus's multi-thousand-state tail (Figure 12).
const maxCounterExpansion = 3000

// Parsed is the result of parsing a pattern.
type Parsed struct {
	Root        Node
	AnchorStart bool // pattern began with ^
	AnchorEnd   bool // pattern ended with $
}

type parser struct {
	src      string
	pos      int
	foldCase bool
}

// Parse parses pattern into an AST. If foldCase is set, literal letters
// and class letters match both cases (the PCRE /i flag).
func Parse(pattern string, foldCase bool) (*Parsed, error) {
	p := &parser{src: pattern, foldCase: foldCase}
	out := &Parsed{}
	if p.peekByte('^') {
		p.pos++
		out.AnchorStart = true
	}
	n, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.src) {
		return nil, p.errorf("unexpected %q", p.src[p.pos])
	}
	// A trailing $ is consumed by parseAtom as an anchor marker; detect
	// it via the sentinel.
	n, out.AnchorEnd = stripEndAnchor(n)
	out.Root = n
	return out, nil
}

// endAnchor is a private sentinel node representing a trailing '$'.
type endAnchor struct{ Empty }

// stripEndAnchor removes a single endAnchor at the very end of the
// expression. It only looks along the right spine of concatenations;
// Parse rejects anchors elsewhere.
func stripEndAnchor(n Node) (Node, bool) {
	switch t := n.(type) {
	case *endAnchor:
		return &Empty{}, true
	case *Concat:
		if len(t.Subs) > 0 {
			if _, ok := t.Subs[len(t.Subs)-1].(*endAnchor); ok {
				t.Subs = t.Subs[:len(t.Subs)-1]
				if len(t.Subs) == 0 {
					return &Empty{}, true
				}
				return t, true
			}
		}
	}
	return n, false
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("regex: pos %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) peekByte(b byte) bool {
	return p.pos < len(p.src) && p.src[p.pos] == b
}

func (p *parser) parseAlt() (Node, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	if !p.peekByte('|') {
		return first, nil
	}
	alt := &Alt{Subs: []Node{first}}
	for p.peekByte('|') {
		p.pos++
		n, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alt.Subs = append(alt.Subs, n)
	}
	return alt, nil
}

func (p *parser) parseConcat() (Node, error) {
	var subs []Node
	for p.pos < len(p.src) {
		if c := p.src[p.pos]; c == '|' || c == ')' {
			break
		}
		n, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	switch len(subs) {
	case 0:
		return &Empty{}, nil
	case 1:
		return subs[0], nil
	default:
		return &Concat{Subs: subs}, nil
	}
}

func (p *parser) parseRepeat() (Node, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.pos < len(p.src) {
		var min, max int
		switch p.src[p.pos] {
		case '*':
			min, max = 0, -1
			p.pos++
		case '+':
			min, max = 1, -1
			p.pos++
		case '?':
			min, max = 0, 1
			p.pos++
		case '{':
			var ok bool
			min, max, ok, err = p.tryParseCounter()
			if err != nil {
				return nil, err
			}
			if !ok {
				return atom, nil // literal '{'
			}
		default:
			return atom, nil
		}
		// Drop a non-greedy/possessive modifier: same language.
		if p.pos < len(p.src) && (p.src[p.pos] == '?' || p.src[p.pos] == '+') {
			p.pos++
		}
		if _, isAnchor := atom.(*endAnchor); isAnchor {
			return nil, p.errorf("quantifier applied to $")
		}
		atom = &Repeat{Sub: atom, Min: min, Max: max}
	}
	return atom, nil
}

// tryParseCounter parses {m}, {m,}, {m,n} at '{'. Returns ok=false
// (without consuming) when the braces are not a valid counter — PCRE
// treats such a '{' as a literal.
func (p *parser) tryParseCounter() (min, max int, ok bool, err error) {
	start := p.pos
	p.pos++ // '{'
	digits := func() (int, bool) {
		s := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		if p.pos == s {
			return 0, false
		}
		v, convErr := strconv.Atoi(p.src[s:p.pos])
		if convErr != nil {
			return 0, false
		}
		return v, true
	}
	m, mok := digits()
	if !mok {
		p.pos = start
		return 0, 0, false, nil
	}
	min, max = m, m
	if p.peekByte(',') {
		p.pos++
		if n, nok := digits(); nok {
			max = n
		} else {
			max = -1
		}
	}
	if !p.peekByte('}') {
		p.pos = start
		return 0, 0, false, nil
	}
	p.pos++
	if max >= 0 && max < min {
		return 0, 0, false, p.errorf("counter {%d,%d} has max < min", min, max)
	}
	limit := max
	if limit < 0 {
		limit = min
	}
	if limit > maxCounterExpansion {
		return 0, 0, false, p.errorf("counter bound %d exceeds limit %d", limit, maxCounterExpansion)
	}
	return min, max, true, nil
}

func (p *parser) parseAtom() (Node, error) {
	if p.pos >= len(p.src) {
		return nil, p.errorf("unexpected end of pattern")
	}
	c := p.src[p.pos]
	switch c {
	case '(':
		p.pos++
		// Swallow group modifiers we can honor: (?:, (?i: — others error.
		if p.peekByte('?') {
			p.pos++
			if p.pos >= len(p.src) {
				return nil, p.errorf("unterminated group modifier")
			}
			switch {
			case p.peekByte(':'):
				p.pos++
			case p.peekByte('i'):
				p.pos++
				if !p.peekByte(':') {
					return nil, p.errorf("unsupported group flag")
				}
				p.pos++
				// Scoped /i: simplest correct handling is to fold for
				// the group by toggling the parser flag around it.
				saved := p.foldCase
				p.foldCase = true
				n, err := p.parseAlt()
				p.foldCase = saved
				if err != nil {
					return nil, err
				}
				if !p.peekByte(')') {
					return nil, p.errorf("missing )")
				}
				p.pos++
				return n, nil
			default:
				return nil, p.errorf("unsupported (?%c group", p.src[p.pos])
			}
		}
		n, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if !p.peekByte(')') {
			return nil, p.errorf("missing )")
		}
		p.pos++
		return n, nil
	case ')':
		return nil, p.errorf("unmatched )")
	case '[':
		return p.parseClass()
	case '.':
		p.pos++
		return &Leaf{Set: anyByte()}, nil
	case '\\':
		cls, err := p.parseEscape(false)
		if err != nil {
			return nil, err
		}
		return &Leaf{Set: cls}, nil
	case '$':
		p.pos++
		if p.pos != len(p.src) {
			return nil, p.errorf("$ only supported at end of pattern")
		}
		return &endAnchor{}, nil
	case '^':
		return nil, p.errorf("^ only supported at start of pattern")
	case '*', '+', '?':
		return nil, p.errorf("quantifier %q with nothing to repeat", c)
	default:
		p.pos++
		cls := singleton(c)
		if p.foldCase {
			cls.FoldCase()
		}
		return &Leaf{Set: cls}, nil
	}
}

// parseEscape handles a backslash escape; inClass adjusts which escapes
// are legal. The cursor is on the backslash.
func (p *parser) parseEscape(inClass bool) (Class, error) {
	p.pos++ // backslash
	if p.pos >= len(p.src) {
		return Class{}, p.errorf("trailing backslash")
	}
	c := p.src[p.pos]
	p.pos++
	var cls Class
	switch c {
	case 'd':
		cls.AddRange('0', '9')
	case 'D':
		cls.AddRange('0', '9')
		cls.Negate()
	case 'w':
		cls.AddRange('a', 'z')
		cls.AddRange('A', 'Z')
		cls.AddRange('0', '9')
		cls.Add('_')
	case 'W':
		cls.AddRange('a', 'z')
		cls.AddRange('A', 'Z')
		cls.AddRange('0', '9')
		cls.Add('_')
		cls.Negate()
	case 's':
		for _, b := range []byte{' ', '\t', '\n', '\r', '\f', '\v'} {
			cls.Add(b)
		}
	case 'S':
		for _, b := range []byte{' ', '\t', '\n', '\r', '\f', '\v'} {
			cls.Add(b)
		}
		cls.Negate()
	case 'n':
		cls.Add('\n')
	case 'r':
		cls.Add('\r')
	case 't':
		cls.Add('\t')
	case 'f':
		cls.Add('\f')
	case 'v':
		cls.Add('\v')
	case 'a':
		cls.Add(7)
	case 'e':
		cls.Add(27)
	case '0':
		cls.Add(0)
	case 'x':
		if p.pos+2 > len(p.src) {
			return Class{}, p.errorf("truncated \\x escape")
		}
		v, err := strconv.ParseUint(p.src[p.pos:p.pos+2], 16, 8)
		if err != nil {
			return Class{}, p.errorf("bad \\x escape: %v", err)
		}
		p.pos += 2
		cls.Add(byte(v))
	default:
		// Punctuation and metacharacter escapes match themselves.
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			return Class{}, p.errorf("unsupported escape \\%c", c)
		}
		cls.Add(c)
	}
	if p.foldCase && !inClass {
		cls.FoldCase()
	}
	return cls, nil
}

// parseClass parses a [...] character class; the cursor is on '['.
func (p *parser) parseClass() (Node, error) {
	p.pos++ // '['
	var cls Class
	negate := false
	if p.peekByte('^') {
		negate = true
		p.pos++
	}
	first := true
	for {
		if p.pos >= len(p.src) {
			return nil, p.errorf("missing ]")
		}
		c := p.src[p.pos]
		if c == ']' && !first {
			p.pos++
			break
		}
		first = false

		var lo Class
		loByte := byte(0)
		isRangeable := false
		if c == '\\' {
			var err error
			lo, err = p.parseEscape(true)
			if err != nil {
				return nil, err
			}
			if lo.Count() == 1 {
				for b := 0; b < 256; b++ {
					if lo.Has(byte(b)) {
						loByte = byte(b)
						isRangeable = true
					}
				}
			}
		} else {
			p.pos++
			lo = singleton(c)
			loByte = c
			isRangeable = true
		}

		// Range?
		if isRangeable && p.peekByte('-') && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++ // '-'
			hc := p.src[p.pos]
			var hiByte byte
			if hc == '\\' {
				hi, err := p.parseEscape(true)
				if err != nil {
					return nil, err
				}
				if hi.Count() != 1 {
					return nil, p.errorf("class range bound must be a single byte")
				}
				for b := 0; b < 256; b++ {
					if hi.Has(byte(b)) {
						hiByte = byte(b)
					}
				}
			} else {
				p.pos++
				hiByte = hc
			}
			if hiByte < loByte {
				return nil, p.errorf("reversed class range %c-%c", loByte, hiByte)
			}
			var r Class
			r.AddRange(loByte, hiByte)
			cls.Union(r)
			continue
		}
		cls.Union(lo)
	}
	if p.foldCase {
		cls.FoldCase()
	}
	if negate {
		cls.Negate()
	}
	if cls.IsEmpty() {
		return nil, p.errorf("empty character class")
	}
	return &Leaf{Set: cls}, nil
}
