package regex

import (
	"math/rand"
	"testing"
)

func TestNFAMatcherBasics(t *testing.T) {
	cases := []struct {
		pat      string
		anchored bool
		yes, no  []string
	}{
		{"abc", true, []string{"abc"}, []string{"", "ab", "abcd", "xabc"}},
		{"abc", false, []string{"abc", "xxabcyy"}, []string{"", "axbxc"}},
		{"a*b", true, []string{"b", "aab"}, []string{"a", "ba"}},
		{"(a|b)+", true, []string{"a", "ab", "bba"}, []string{"", "c"}},
		{"^ab", false, []string{"abxx"}, []string{"xab"}},
		{"ab$", false, []string{"xxab"}, []string{"abxx"}},
		{"a{2,3}", true, []string{"aa", "aaa"}, []string{"a", "aaaa"}},
	}
	for _, c := range cases {
		m, err := CompileNFA(c.pat, Options{Anchored: c.anchored})
		if err != nil {
			t.Fatalf("CompileNFA(%q): %v", c.pat, err)
		}
		for _, s := range c.yes {
			if !m.Match([]byte(s)) {
				t.Errorf("%q (anchored=%v) should match %q", c.pat, c.anchored, s)
			}
		}
		for _, s := range c.no {
			if m.Match([]byte(s)) {
				t.Errorf("%q (anchored=%v) should not match %q", c.pat, c.anchored, s)
			}
		}
	}
}

func TestNFAMatcherEmptyPattern(t *testing.T) {
	m, err := CompileNFA("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Match(nil) || !m.Match([]byte("anything")) {
		t.Error("empty pattern matches everything in contains mode")
	}
	m, err = CompileNFA("", Options{Anchored: true})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Match(nil) {
		t.Error("empty pattern should match empty input when anchored")
	}
	if m.Match([]byte("x")) {
		t.Error("anchored empty pattern should reject non-empty input")
	}
}

// The NFA simulation and the compiled DFA must agree on everything —
// this is the strongest cross-implementation oracle in the package.
func TestNFAMatcherAgreesWithDFA(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	for iter := 0; iter < 60; iter++ {
		pat := randomPattern(rng, 3)
		anchored := iter%2 == 0
		opts := Options{Anchored: anchored}
		m, err := CompileNFA(pat, opts)
		if err != nil {
			t.Fatalf("CompileNFA(%q): %v", pat, err)
		}
		d, err := Compile(pat, opts)
		if err != nil {
			t.Fatalf("Compile(%q): %v", pat, err)
		}
		for trial := 0; trial < 80; trial++ {
			in := make([]byte, rng.Intn(12))
			for i := range in {
				in[i] = "abc"[rng.Intn(3)]
			}
			if m.Match(in) != d.Accepts(in) {
				t.Fatalf("pattern %q anchored=%v input %q: NFA=%v DFA=%v",
					pat, anchored, in, m.Match(in), d.Accepts(in))
			}
		}
	}
}

// The NFA matcher handles the exponential-determinization patterns the
// DFA compiler must reject — the concrete motivation for keeping it.
func TestNFAMatcherHandlesExponentialPatterns(t *testing.T) {
	pat := "a[ab]{20}b" // 2^20 DFA states in contains mode
	if _, err := Compile(pat, Options{MaxStates: 10000}); err == nil {
		t.Skip("expected the DFA compiler to reject this; generator changed?")
	}
	m, err := CompileNFA(pat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := append([]byte("a"), make([]byte, 20)...)
	for i := 1; i <= 20; i++ {
		in[i] = "ab"[i%2]
	}
	in = append(in, 'b')
	if !m.Match(in) {
		t.Error("NFA should match the window pattern")
	}
	if m.Match([]byte("aaa")) {
		t.Error("NFA should reject a too-short input")
	}
}

func TestNFAMatcherCaseFolding(t *testing.T) {
	m, err := CompileNFA("select", Options{CaseInsensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Match([]byte("... SeLeCt ...")) {
		t.Error("case-insensitive NFA match failed")
	}
}

func TestNFAMatcherStateCount(t *testing.T) {
	m, err := CompileNFA("(a|b)*abb", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() < 5 {
		t.Errorf("implausible NFA size %d", m.NumStates())
	}
}
