package regex

import (
	"math/rand"
	"testing"

	"dpfsm/internal/core"
)

// naiveFind is the oracle for the Finder's documented semantics:
// earliest end, then leftmost start for that end, then longest extent
// from that start — all by brute force with the AST matcher.
func naiveFind(root Node, input []byte) (start, end int, ok bool) {
	for e := 1; e <= len(input); e++ {
		for s := 0; s < e; s++ {
			if MatchAST(root, input[s:e]) {
				best := s
				for s2 := 0; s2 < s; s2++ {
					if MatchAST(root, input[s2:e]) {
						best = s2
						break
					}
				}
				longest := e
				for e2 := len(input); e2 > e; e2-- {
					if MatchAST(root, input[best:e2]) {
						longest = e2
						break
					}
				}
				return best, longest, true
			}
		}
	}
	return 0, 0, false
}

func TestFinderBasics(t *testing.T) {
	cases := []struct {
		pat, in    string
		start, end int
		ok         bool
	}{
		{"abc", "xxabcyy", 2, 5, true},
		{"abc", "abc", 0, 3, true},
		{"abc", "xyz", 0, 0, false},
		{"a+", "bbaaab", 2, 5, true}, // earliest end finds the first 'a', then extends to the full run
		{"a|ba", "cba", 1, 3, true},  // end=3 via "ba"? no: "a" ends at 3 too; leftmost start is 1
		{`\d+`, "abc123", 3, 6, true},
	}
	for _, c := range cases {
		f, err := NewFinder(c.pat, Options{})
		if err != nil {
			t.Fatalf("NewFinder(%q): %v", c.pat, err)
		}
		s, e, ok := f.Find([]byte(c.in))
		if ok != c.ok || (ok && (s != c.start || e != c.end)) {
			t.Errorf("Find(%q, %q) = (%d,%d,%v), want (%d,%d,%v)",
				c.pat, c.in, s, e, ok, c.start, c.end, c.ok)
		}
	}
}

func TestFinderMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(220))
	for iter := 0; iter < 50; iter++ {
		pat := randomPattern(rng, 2)
		parsed, err := Parse(pat, false)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFinder(pat, Options{})
		if err != nil {
			continue // nullable pattern or state blowup: both rejected by design
		}
		for trial := 0; trial < 30; trial++ {
			in := make([]byte, rng.Intn(10))
			for i := range in {
				in[i] = "abc"[rng.Intn(3)]
			}
			ws, we, wok := naiveFind(parsed.Root, in)
			gs, ge, gok := f.Find(in)
			// The oracle skips empty matches like Find does (e ranges
			// from 1 and s < e).
			if gok != wok || (gok && (gs != ws || ge != we)) {
				t.Fatalf("pattern %q input %q: Find=(%d,%d,%v) oracle=(%d,%d,%v)",
					pat, in, gs, ge, gok, ws, we, wok)
			}
		}
	}
}

func TestFinderMulticore(t *testing.T) {
	f, err := NewFinder("needle", Options{}, core.WithProcs(4), core.WithMinChunk(64))
	if err != nil {
		t.Fatal(err)
	}
	in := make([]byte, 10000)
	copy(in[7777:], "needle")
	s, e, ok := f.Find(in)
	if !ok || s != 7777 || e != 7783 {
		t.Fatalf("Find = (%d,%d,%v)", s, e, ok)
	}
}

func TestFinderFindAll(t *testing.T) {
	f, err := NewFinder("ab+", Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("ab abb xx ab")
	spans := f.FindAll(in, -1)
	// "ab" at 0..2, then the full "abb" at 3..6 (longest extension),
	// then "ab" at 10..12.
	want := [][2]int{{0, 2}, {3, 6}, {10, 12}}
	if len(spans) != len(want) {
		t.Fatalf("spans = %v, want %v", spans, want)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("spans = %v, want %v", spans, want)
		}
	}
	if got := f.FindAll(in, 2); len(got) != 2 {
		t.Fatalf("limit 2 returned %d spans", len(got))
	}
}

func TestFinderRejectsAnchors(t *testing.T) {
	if _, err := NewFinder("^a", Options{}); err == nil {
		t.Error("anchored pattern should be rejected")
	}
	if _, err := NewFinder("a$", Options{}); err == nil {
		t.Error("end-anchored pattern should be rejected")
	}
	if _, err := NewFinder("a", Options{Anchored: true}); err == nil {
		t.Error("Anchored option should be rejected")
	}
	if _, err := NewFinder("(", Options{}); err == nil {
		t.Error("bad pattern should be rejected")
	}
	if _, err := NewFinder("a*", Options{}); err == nil {
		t.Error("nullable pattern should be rejected")
	}
}

func TestReverseAST(t *testing.T) {
	parsed, err := Parse("ab(c|de)f{2,3}", false)
	if err != nil {
		t.Fatal(err)
	}
	rev := reverseAST(parsed.Root)
	// Reversal is an involution.
	again := reverseAST(rev)
	if Dump(again) != Dump(parsed.Root) {
		t.Errorf("double reversal changed the AST:\n %s\n %s", Dump(parsed.Root), Dump(again))
	}
	// The reversed language contains reversed witnesses.
	for _, w := range []string{"abcff", "abdeff", "abcfff"} {
		fwd := []byte(w)
		bwd := make([]byte, len(fwd))
		for i := range fwd {
			bwd[len(fwd)-1-i] = fwd[i]
		}
		if !MatchAST(parsed.Root, fwd) {
			t.Fatalf("oracle rejects forward witness %q", w)
		}
		if !MatchAST(rev, bwd) {
			t.Fatalf("reversed AST rejects reversed witness %q", bwd)
		}
	}
}
