// Package regex is the regular-expression substrate for the Snort case
// study (§6.1): a PCRE-subset parser, Thompson NFA construction, subset
// construction to a deterministic machine, and Hopcroft minimization
// via internal/fsm. Compiled machines are ordinary fsm.DFA values over
// the full byte alphabet, ready for the parallel runners in
// internal/core.
package regex

import (
	"fmt"
	"strings"
)

// Class is a set of bytes, stored as a 256-bit set. It is both the AST
// leaf node and the NFA edge label.
type Class struct {
	bits [4]uint64
}

// Add inserts byte b.
func (c *Class) Add(b byte) { c.bits[b>>6] |= 1 << (b & 63) }

// AddRange inserts all bytes in [lo, hi].
func (c *Class) AddRange(lo, hi byte) {
	for b := int(lo); b <= int(hi); b++ {
		c.Add(byte(b))
	}
}

// Has reports membership of b.
func (c Class) Has(b byte) bool { return c.bits[b>>6]&(1<<(b&63)) != 0 }

// Negate complements the set over all 256 bytes.
func (c *Class) Negate() {
	for i := range c.bits {
		c.bits[i] = ^c.bits[i]
	}
}

// Union merges o into c.
func (c *Class) Union(o Class) {
	for i := range c.bits {
		c.bits[i] |= o.bits[i]
	}
}

// IsEmpty reports whether no byte is in the set.
func (c Class) IsEmpty() bool {
	return c.bits[0]|c.bits[1]|c.bits[2]|c.bits[3] == 0
}

// Count returns the number of bytes in the set.
func (c Class) Count() int {
	n := 0
	for b := 0; b < 256; b++ {
		if c.Has(byte(b)) {
			n++
		}
	}
	return n
}

// FoldCase adds the opposite-case twin of every ASCII letter present.
func (c *Class) FoldCase() {
	for b := byte('a'); b <= 'z'; b++ {
		if c.Has(b) {
			c.Add(b - 'a' + 'A')
		}
	}
	for b := byte('A'); b <= 'Z'; b++ {
		if c.Has(b) {
			c.Add(b - 'A' + 'a')
		}
	}
}

// singleton returns the class containing only b.
func singleton(b byte) Class {
	var c Class
	c.Add(b)
	return c
}

// anyByte returns the class of all 256 bytes. The paper's machines run
// over raw network bytes, so '.' matches everything including newline
// (PCRE dotall, which Snort rules typically enable via /s).
func anyByte() Class {
	var c Class
	c.Negate()
	return c
}

// Node is a parsed regular-expression AST node.
type Node interface {
	node()
	// writeTo appends a normalized pattern form, for diagnostics.
	writeTo(sb *strings.Builder)
}

// Leaf matches exactly one byte drawn from Set.
type Leaf struct{ Set Class }

// Concat matches its subexpressions in sequence.
type Concat struct{ Subs []Node }

// Alt matches any one of its subexpressions.
type Alt struct{ Subs []Node }

// Repeat matches Sub between Min and Max times; Max < 0 means
// unbounded. Star is {0,-1}, Plus {1,-1}, Quest {0,1}.
type Repeat struct {
	Sub      Node
	Min, Max int
}

// Empty matches the empty string.
type Empty struct{}

func (*Leaf) node()   {}
func (*Concat) node() {}
func (*Alt) node()    {}
func (*Repeat) node() {}
func (*Empty) node()  {}

func (l *Leaf) writeTo(sb *strings.Builder) {
	switch n := l.Set.Count(); {
	case n == 256:
		sb.WriteByte('.')
	case n == 1:
		for b := 0; b < 256; b++ {
			if l.Set.Has(byte(b)) {
				fmt.Fprintf(sb, "\\x%02x", b)
			}
		}
	default:
		fmt.Fprintf(sb, "[%d bytes]", n)
	}
}

func (c *Concat) writeTo(sb *strings.Builder) {
	for _, s := range c.Subs {
		s.writeTo(sb)
	}
}

func (a *Alt) writeTo(sb *strings.Builder) {
	sb.WriteByte('(')
	for i, s := range a.Subs {
		if i > 0 {
			sb.WriteByte('|')
		}
		s.writeTo(sb)
	}
	sb.WriteByte(')')
}

func (r *Repeat) writeTo(sb *strings.Builder) {
	sb.WriteByte('(')
	r.Sub.writeTo(sb)
	sb.WriteByte(')')
	switch {
	case r.Min == 0 && r.Max < 0:
		sb.WriteByte('*')
	case r.Min == 1 && r.Max < 0:
		sb.WriteByte('+')
	case r.Min == 0 && r.Max == 1:
		sb.WriteByte('?')
	case r.Max < 0:
		fmt.Fprintf(sb, "{%d,}", r.Min)
	default:
		fmt.Fprintf(sb, "{%d,%d}", r.Min, r.Max)
	}
}

func (*Empty) writeTo(sb *strings.Builder) {}

// Dump renders a normalized form of the AST for diagnostics.
func Dump(n Node) string {
	var sb strings.Builder
	n.writeTo(&sb)
	return sb.String()
}
