package regex_test

import (
	"fmt"

	"dpfsm/internal/core"
	"dpfsm/internal/regex"
)

func ExampleCompile() {
	d, err := regex.Compile(`cat|dog`, regex.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(d.Accepts([]byte("hotdog stand")))
	fmt.Println(d.Accepts([]byte("canary")))
	// Output:
	// true
	// false
}

func ExampleCompile_anchored() {
	d, _ := regex.Compile(`\d{4}-\d{2}`, regex.Options{Anchored: true})
	fmt.Println(d.Accepts([]byte("2014-03")))
	fmt.Println(d.Accepts([]byte("x 2014-03")))
	// Output:
	// true
	// false
}

func ExampleCompile_withRunner() {
	d, _ := regex.Compile(`UNION\s+SELECT`, regex.Options{CaseInsensitive: true})
	r, _ := core.New(d, core.WithProcs(2))
	fmt.Println(r.Strategy(), r.Accepts([]byte("id=1 union  select pass")))
	// Output: range true
}

func ExampleCompileNFA() {
	// Patterns whose DFA would blow up still run as NFA simulations.
	m, err := regex.CompileNFA(`a[ab]{20}b`, regex.Options{})
	if err != nil {
		panic(err)
	}
	witness := append([]byte("xx a"), []byte("abababababababababab")...)
	witness = append(witness, 'b')
	fmt.Println(m.Match(witness), m.Match([]byte("aaa")))
	// Output: true false
}

func ExampleNewFinder() {
	f, err := regex.NewFinder(`wget http`, regex.Options{})
	if err != nil {
		panic(err)
	}
	input := []byte("GET /x; wget http://evil; done")
	s, e, ok := f.Find(input)
	fmt.Println(ok, string(input[s:e]))
	// Output: true wget http
}

func ExampleFinder_FindAll() {
	f, _ := regex.NewFinder(`\d+`, regex.Options{})
	input := []byte("a12b345c6")
	for _, span := range f.FindAll(input, -1) {
		fmt.Println(string(input[span[0]:span[1]]))
	}
	// Output:
	// 12
	// 345
	// 6
}

func ExampleCompileRuleSet() {
	rs, err := regex.CompileRuleSet([]regex.Rule{
		{Name: "traversal", Pattern: `\.\./`},
		{Name: "sqli", Pattern: `union\s+select`, Options: regex.Options{CaseInsensitive: true}},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(rs.Matched([]byte("GET /../../etc/passwd"), 0))
	// Output: [traversal]
}
