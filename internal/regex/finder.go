package regex

// Match-position extraction. Acceptance tells a scanner *that* a match
// exists; reporting *where* takes two machines (the classic
// RE2/Thompson technique):
//
//   - the forward "contains" machine finds the earliest position e at
//     which some match ends (core.FirstAccepting does this scan,
//     data-parallel when the runner is multicore); and
//   - a machine for the *reversed* pattern, run backward over
//     input[..e], finds the leftmost start s such that input[s..e]
//     matches — the farthest backward position where the reversed
//     machine accepts.
//
// The result is the leftmost match end and, for that end, the leftmost
// start (leftmost-longest-start for the fixed end).

import (
	"fmt"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
)

// reverseAST returns the AST of the reversed language: concatenations
// flip, everything else recurses.
func reverseAST(n Node) Node {
	switch t := n.(type) {
	case *Concat:
		subs := make([]Node, len(t.Subs))
		for i, s := range t.Subs {
			subs[len(subs)-1-i] = reverseAST(s)
		}
		return &Concat{Subs: subs}
	case *Alt:
		subs := make([]Node, len(t.Subs))
		for i, s := range t.Subs {
			subs[i] = reverseAST(s)
		}
		return &Alt{Subs: subs}
	case *Repeat:
		return &Repeat{Sub: reverseAST(t.Sub), Min: t.Min, Max: t.Max}
	default:
		return n // Leaf, Empty, endAnchor carry no order
	}
}

// MatchEnd is the single non-gap output symbol of a Finder's match-end
// transducer: position i carries MatchEnd exactly when some match ends
// at i+1.
const MatchEnd fsm.Output = 1

// Finder locates matches of an unanchored pattern. The reported span
// is deterministic three-step semantics: the *earliest end* of any
// match (a streaming scanner reports as soon as something completes),
// the *leftmost start* among matches with that end, and then the
// *longest extent* from that start — so `\d+` on "abc123" reports
// "123", not "1".
type Finder struct {
	fwd    *fsm.DFA // contains-semantics machine (sticky accept)
	rev    *fsm.DFA // reversed pattern, "ends here" semantics
	exact  *fsm.DFA // anchored machine, for the longest-extent pass
	dead   []bool   // exact-machine states that can never accept again
	runner *core.Runner

	// ends is the Σ*P machine (unanchored start, no sticky accept):
	// acceptance marks exactly the positions where some match ends.
	// endsT overlays it with the Mealy match-end marker, compiled to
	// the same plan shape as every other machine (CompileTransducer),
	// and endsR transduces it — data-parallel end extraction.
	endsT *fsm.Transducer
	endsR *core.Runner
}

// NewFinder compiles the forward and reversed machines. opts.Anchored
// is rejected — anchored matches need no search. runnerOpts configure
// the forward scan (strategy/procs).
func NewFinder(pattern string, opts Options, runnerOpts ...core.Option) (*Finder, error) {
	if opts.Anchored {
		return nil, fmt.Errorf("regex: Finder is for unanchored search")
	}
	parsed, err := Parse(pattern, opts.CaseInsensitive)
	if err != nil {
		return nil, err
	}
	if parsed.AnchorStart || parsed.AnchorEnd {
		return nil, fmt.Errorf("regex: Finder does not support ^/$ anchors")
	}
	fwd, err := compileParsed(parsed, opts)
	if err != nil {
		return nil, err
	}
	if fwd.Accepting(fwd.Start()) {
		// With Σ*PΣ* semantics the start state accepts iff P matches
		// the empty string, in which case every position "matches" and
		// there is nothing useful to report.
		return nil, fmt.Errorf("regex: pattern matches the empty string; Finder needs a non-nullable pattern")
	}

	// Reversed machine: Σ* prefix (so it can start anywhere when run
	// backward from the match end) but NO sticky accept — acceptance
	// must mark exact reversed-match ends, i.e. forward match starts.
	revAST := reverseAST(parsed.Root)
	n := fromAST(revAST, true)
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	rev, err := determinize(n, maxStates, false)
	if err != nil {
		return nil, err
	}
	rev = rev.Minimize()

	exact, err := compileParsed(parsed, Options{
		CaseInsensitive: opts.CaseInsensitive,
		Anchored:        true,
		MaxStates:       opts.MaxStates,
	})
	if err != nil {
		return nil, err
	}

	runner, err := core.New(fwd, runnerOpts...)
	if err != nil {
		return nil, err
	}

	// "Ends-here" machine and its match-end transducer: Σ*P without
	// sticky accept, so entering an accepting state at position i means
	// a match ends at i+1 — exactly the Mealy emission λ(q, a) =
	// MatchEnd iff δ(q, a) accepts.
	ends, err := determinize(fromAST(parsed.Root, true), maxStates, false)
	if err != nil {
		return nil, err
	}
	ends = ends.Minimize()
	endsT, err := fsm.NewMealy(ends, 2)
	if err != nil {
		return nil, err
	}
	for a := 0; a < ends.NumSymbols(); a++ {
		for q := fsm.State(0); int(q) < ends.NumStates(); q++ {
			if ends.Accepting(ends.Next(q, byte(a))) {
				endsT.SetMealyOutput(q, byte(a), MatchEnd)
			}
		}
	}
	ep, err := core.CompileTransducer(endsT, runnerOpts...)
	if err != nil {
		return nil, err
	}
	endsR, err := core.NewFromPlan(ep, runnerOpts...)
	if err != nil {
		return nil, err
	}
	return &Finder{
		fwd:    fwd,
		rev:    rev,
		exact:  exact,
		dead:   deadStates(exact),
		runner: runner,
		endsT:  endsT,
		endsR:  endsR,
	}, nil
}

// deadStates marks states from which no accepting state is reachable —
// the longest-extent scan stops there.
func deadStates(d *fsm.DFA) []bool {
	n := d.NumStates()
	// Reverse reachability from accepting states.
	rev := make([][]fsm.State, n)
	for q := 0; q < n; q++ {
		for a := 0; a < d.NumSymbols(); a++ {
			r := d.Next(fsm.State(q), byte(a))
			rev[r] = append(rev[r], fsm.State(q))
		}
	}
	alive := make([]bool, n)
	var stack []fsm.State
	for q := 0; q < n; q++ {
		if d.Accepting(fsm.State(q)) {
			alive[q] = true
			stack = append(stack, fsm.State(q))
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !alive[p] {
				alive[p] = true
				stack = append(stack, p)
			}
		}
	}
	dead := make([]bool, n)
	for q := range dead {
		dead[q] = !alive[q]
	}
	return dead
}

// Machine returns the forward machine (for stats/strategy inspection).
func (f *Finder) Machine() *fsm.DFA { return f.fwd }

// Find returns the span [start, end) of a match under the semantics
// documented on Finder. ok is false when input has no match.
func (f *Finder) Find(input []byte) (start, end int, ok bool) {
	e := f.runner.FirstAccepting(input, f.fwd.Start())
	if e < 0 {
		return 0, 0, false
	}
	end = e + 1 // FirstAccepting reports the index of the last byte

	// Backward scan: run the reversed machine over input[end-1 .. 0],
	// remembering the farthest (smallest forward index) accept.
	q := f.rev.Start()
	start = end
	for i := end - 1; i >= 0; i-- {
		q = f.rev.Next(q, input[i])
		if f.rev.Accepting(q) {
			start = i
		}
	}

	// Longest-extent pass: run the anchored machine from start,
	// remembering the last accept; stop early once no accept is
	// reachable.
	qe := f.exact.Start()
	for i := start; i < len(input); i++ {
		qe = f.exact.Next(qe, input[i])
		if f.exact.Accepting(qe) {
			end = i + 1
		}
		if f.dead[qe] {
			break
		}
	}
	return start, end, true
}

// Transducer returns the match-end marking Mealy machine: over the
// "ends-here" DFA, position i emits MatchEnd exactly when some match
// ends at i+1. It compiles to the same plan shape as any transducer
// (core.CompileTransducer), which is how it can be registered with the
// engine and served over /v1/transduce.
func (f *Finder) Transducer() *fsm.Transducer { return f.endsT }

// FindAllParallel is FindAll with the end-position scan replaced by
// one data-parallel transduce pass: the match-end tape over the whole
// input is computed chunk-parallel (Figure 5 replay), then matches are
// recovered left to right — for each candidate end past the resume
// offset, the reversed machine (restricted to the unconsumed region)
// yields the leftmost start, and the anchored machine extends to the
// longest extent. Ends found on the full input are a superset of the
// ends each suffix search would find, and the backward check filters
// exactly the difference, so the result equals FindAll's.
func (f *Finder) FindAllParallel(input []byte, limit int) ([][2]int, error) {
	if limit == 0 {
		return nil, nil
	}
	tape, _, err := f.endsR.TransduceOutputs(input, f.endsT.DFA().Start())
	if err != nil {
		return nil, err
	}
	var out [][2]int
	off := 0
	for i := 0; i < len(tape); i++ {
		if tape[i] != MatchEnd || i < off {
			continue
		}
		e := i + 1
		// Leftmost start ≥ off for a match ending at e; none means this
		// end belongs to a match the resume offset already consumed.
		q := f.rev.Start()
		s := -1
		for j := e - 1; j >= off; j-- {
			q = f.rev.Next(q, input[j])
			if f.rev.Accepting(q) {
				s = j
			}
		}
		if s < 0 {
			continue
		}
		// Longest extent from s, as in Find.
		qe := f.exact.Start()
		end := e
		for j := s; j < len(input); j++ {
			qe = f.exact.Next(qe, input[j])
			if f.exact.Accepting(qe) {
				end = j + 1
			}
			if f.dead[qe] {
				break
			}
		}
		out = append(out, [2]int{s, end})
		off = end
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// FindAll returns all non-overlapping leftmost matches, scanning left
// to right (each search resumes at the previous match end). limit < 0
// means no limit.
func (f *Finder) FindAll(input []byte, limit int) [][2]int {
	var out [][2]int
	off := 0
	for limit < 0 || len(out) < limit {
		s, e, ok := f.Find(input[off:])
		if !ok {
			break
		}
		out = append(out, [2]int{off + s, off + e})
		if e == 0 {
			break // defensive: no progress
		}
		off += e
	}
	return out
}
