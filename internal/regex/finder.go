package regex

// Match-position extraction. Acceptance tells a scanner *that* a match
// exists; reporting *where* takes two machines (the classic
// RE2/Thompson technique):
//
//   - the forward "contains" machine finds the earliest position e at
//     which some match ends (core.FirstAccepting does this scan,
//     data-parallel when the runner is multicore); and
//   - a machine for the *reversed* pattern, run backward over
//     input[..e], finds the leftmost start s such that input[s..e]
//     matches — the farthest backward position where the reversed
//     machine accepts.
//
// The result is the leftmost match end and, for that end, the leftmost
// start (leftmost-longest-start for the fixed end).

import (
	"fmt"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
)

// reverseAST returns the AST of the reversed language: concatenations
// flip, everything else recurses.
func reverseAST(n Node) Node {
	switch t := n.(type) {
	case *Concat:
		subs := make([]Node, len(t.Subs))
		for i, s := range t.Subs {
			subs[len(subs)-1-i] = reverseAST(s)
		}
		return &Concat{Subs: subs}
	case *Alt:
		subs := make([]Node, len(t.Subs))
		for i, s := range t.Subs {
			subs[i] = reverseAST(s)
		}
		return &Alt{Subs: subs}
	case *Repeat:
		return &Repeat{Sub: reverseAST(t.Sub), Min: t.Min, Max: t.Max}
	default:
		return n // Leaf, Empty, endAnchor carry no order
	}
}

// Finder locates matches of an unanchored pattern. The reported span
// is deterministic three-step semantics: the *earliest end* of any
// match (a streaming scanner reports as soon as something completes),
// the *leftmost start* among matches with that end, and then the
// *longest extent* from that start — so `\d+` on "abc123" reports
// "123", not "1".
type Finder struct {
	fwd    *fsm.DFA // contains-semantics machine (sticky accept)
	rev    *fsm.DFA // reversed pattern, "ends here" semantics
	exact  *fsm.DFA // anchored machine, for the longest-extent pass
	dead   []bool   // exact-machine states that can never accept again
	runner *core.Runner
}

// NewFinder compiles the forward and reversed machines. opts.Anchored
// is rejected — anchored matches need no search. runnerOpts configure
// the forward scan (strategy/procs).
func NewFinder(pattern string, opts Options, runnerOpts ...core.Option) (*Finder, error) {
	if opts.Anchored {
		return nil, fmt.Errorf("regex: Finder is for unanchored search")
	}
	parsed, err := Parse(pattern, opts.CaseInsensitive)
	if err != nil {
		return nil, err
	}
	if parsed.AnchorStart || parsed.AnchorEnd {
		return nil, fmt.Errorf("regex: Finder does not support ^/$ anchors")
	}
	fwd, err := compileParsed(parsed, opts)
	if err != nil {
		return nil, err
	}
	if fwd.Accepting(fwd.Start()) {
		// With Σ*PΣ* semantics the start state accepts iff P matches
		// the empty string, in which case every position "matches" and
		// there is nothing useful to report.
		return nil, fmt.Errorf("regex: pattern matches the empty string; Finder needs a non-nullable pattern")
	}

	// Reversed machine: Σ* prefix (so it can start anywhere when run
	// backward from the match end) but NO sticky accept — acceptance
	// must mark exact reversed-match ends, i.e. forward match starts.
	revAST := reverseAST(parsed.Root)
	n := fromAST(revAST, true)
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	rev, err := determinize(n, maxStates, false)
	if err != nil {
		return nil, err
	}
	rev = rev.Minimize()

	exact, err := compileParsed(parsed, Options{
		CaseInsensitive: opts.CaseInsensitive,
		Anchored:        true,
		MaxStates:       opts.MaxStates,
	})
	if err != nil {
		return nil, err
	}

	runner, err := core.New(fwd, runnerOpts...)
	if err != nil {
		return nil, err
	}
	return &Finder{
		fwd:    fwd,
		rev:    rev,
		exact:  exact,
		dead:   deadStates(exact),
		runner: runner,
	}, nil
}

// deadStates marks states from which no accepting state is reachable —
// the longest-extent scan stops there.
func deadStates(d *fsm.DFA) []bool {
	n := d.NumStates()
	// Reverse reachability from accepting states.
	rev := make([][]fsm.State, n)
	for q := 0; q < n; q++ {
		for a := 0; a < d.NumSymbols(); a++ {
			r := d.Next(fsm.State(q), byte(a))
			rev[r] = append(rev[r], fsm.State(q))
		}
	}
	alive := make([]bool, n)
	var stack []fsm.State
	for q := 0; q < n; q++ {
		if d.Accepting(fsm.State(q)) {
			alive[q] = true
			stack = append(stack, fsm.State(q))
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !alive[p] {
				alive[p] = true
				stack = append(stack, p)
			}
		}
	}
	dead := make([]bool, n)
	for q := range dead {
		dead[q] = !alive[q]
	}
	return dead
}

// Machine returns the forward machine (for stats/strategy inspection).
func (f *Finder) Machine() *fsm.DFA { return f.fwd }

// Find returns the span [start, end) of a match under the semantics
// documented on Finder. ok is false when input has no match.
func (f *Finder) Find(input []byte) (start, end int, ok bool) {
	e := f.runner.FirstAccepting(input, f.fwd.Start())
	if e < 0 {
		return 0, 0, false
	}
	end = e + 1 // FirstAccepting reports the index of the last byte

	// Backward scan: run the reversed machine over input[end-1 .. 0],
	// remembering the farthest (smallest forward index) accept.
	q := f.rev.Start()
	start = end
	for i := end - 1; i >= 0; i-- {
		q = f.rev.Next(q, input[i])
		if f.rev.Accepting(q) {
			start = i
		}
	}

	// Longest-extent pass: run the anchored machine from start,
	// remembering the last accept; stop early once no accept is
	// reachable.
	qe := f.exact.Start()
	for i := start; i < len(input); i++ {
		qe = f.exact.Next(qe, input[i])
		if f.exact.Accepting(qe) {
			end = i + 1
		}
		if f.dead[qe] {
			break
		}
	}
	return start, end, true
}

// FindAll returns all non-overlapping leftmost matches, scanning left
// to right (each search resumes at the previous match end). limit < 0
// means no limit.
func (f *Finder) FindAll(input []byte, limit int) [][2]int {
	var out [][2]int
	off := 0
	for limit < 0 || len(out) < limit {
		s, e, ok := f.Find(input[off:])
		if !ok {
			break
		}
		out = append(out, [2]int{off + s, off + e})
		if e == 0 {
			break // defensive: no progress
		}
		off += e
	}
	return out
}
