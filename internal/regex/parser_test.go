package regex

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, pat string, fold bool) *Parsed {
	t.Helper()
	p, err := Parse(pat, fold)
	if err != nil {
		t.Fatalf("Parse(%q): %v", pat, err)
	}
	return p
}

func TestParseLiterals(t *testing.T) {
	p := mustParse(t, "abc", false)
	c, ok := p.Root.(*Concat)
	if !ok || len(c.Subs) != 3 {
		t.Fatalf("want 3-concat, got %T %s", p.Root, Dump(p.Root))
	}
	for i, want := range []byte{'a', 'b', 'c'} {
		l := c.Subs[i].(*Leaf)
		if !l.Set.Has(want) || l.Set.Count() != 1 {
			t.Errorf("sub %d should match only %q", i, want)
		}
	}
}

func TestParseFoldCase(t *testing.T) {
	p := mustParse(t, "a", true)
	l := p.Root.(*Leaf)
	if !l.Set.Has('a') || !l.Set.Has('A') || l.Set.Count() != 2 {
		t.Error("case-folded literal should match both cases")
	}
}

func TestParseQuantifiers(t *testing.T) {
	cases := []struct {
		pat      string
		min, max int
	}{
		{"a*", 0, -1},
		{"a+", 1, -1},
		{"a?", 0, 1},
		{"a{3}", 3, 3},
		{"a{2,}", 2, -1},
		{"a{2,5}", 2, 5},
		{"a*?", 0, -1}, // non-greedy collapses
		{"a+?", 1, -1},
	}
	for _, c := range cases {
		p := mustParse(t, c.pat, false)
		r, ok := p.Root.(*Repeat)
		if !ok {
			t.Fatalf("%q: want Repeat, got %T", c.pat, p.Root)
		}
		if r.Min != c.min || r.Max != c.max {
			t.Errorf("%q: {%d,%d}, want {%d,%d}", c.pat, r.Min, r.Max, c.min, c.max)
		}
	}
}

func TestParseLiteralBrace(t *testing.T) {
	// '{' not followed by a valid counter is a literal.
	p := mustParse(t, "a{x", false)
	c, ok := p.Root.(*Concat)
	if !ok || len(c.Subs) != 3 {
		t.Fatalf("want 3-concat, got %s", Dump(p.Root))
	}
	if l := c.Subs[1].(*Leaf); !l.Set.Has('{') {
		t.Error("middle leaf should be literal {")
	}
}

func TestParseAnchors(t *testing.T) {
	p := mustParse(t, "^abc$", false)
	if !p.AnchorStart || !p.AnchorEnd {
		t.Errorf("anchors: start=%v end=%v", p.AnchorStart, p.AnchorEnd)
	}
	p = mustParse(t, "abc", false)
	if p.AnchorStart || p.AnchorEnd {
		t.Error("unanchored pattern reported anchors")
	}
	if _, err := Parse("a^b", false); err == nil {
		t.Error("mid-pattern ^ should error")
	}
	if _, err := Parse("a$b", false); err == nil {
		t.Error("mid-pattern $ should error")
	}
	if _, err := Parse("a$*", false); err == nil {
		t.Error("quantified $ should error")
	}
}

func TestParseClasses(t *testing.T) {
	p := mustParse(t, "[a-cx]", false)
	l := p.Root.(*Leaf)
	for _, b := range []byte{'a', 'b', 'c', 'x'} {
		if !l.Set.Has(b) {
			t.Errorf("class should contain %q", b)
		}
	}
	if l.Set.Count() != 4 {
		t.Errorf("class size %d, want 4", l.Set.Count())
	}

	p = mustParse(t, "[^0-9]", false)
	l = p.Root.(*Leaf)
	if l.Set.Has('5') || !l.Set.Has('a') || l.Set.Count() != 246 {
		t.Error("negated class wrong")
	}

	p = mustParse(t, `[\d\s]`, false)
	l = p.Root.(*Leaf)
	if !l.Set.Has('7') || !l.Set.Has(' ') || l.Set.Has('a') {
		t.Error("escape union in class wrong")
	}

	// ']' first is literal.
	p = mustParse(t, "[]a]", false)
	l = p.Root.(*Leaf)
	if !l.Set.Has(']') || !l.Set.Has('a') || l.Set.Count() != 2 {
		t.Error("leading ] should be literal")
	}

	// Trailing '-' is literal.
	p = mustParse(t, "[a-]", false)
	l = p.Root.(*Leaf)
	if !l.Set.Has('-') || !l.Set.Has('a') {
		t.Error("trailing - should be literal")
	}
}

func TestParseClassErrors(t *testing.T) {
	for _, pat := range []string{"[", "[z-a]", "[a", `[\q]`} {
		if _, err := Parse(pat, false); err == nil {
			t.Errorf("Parse(%q) should fail", pat)
		}
	}
}

func TestParseEscapes(t *testing.T) {
	cases := []struct {
		pat  string
		has  []byte
		not  []byte
		size int
	}{
		{`\d`, []byte{'0', '9'}, []byte{'a'}, 10},
		{`\D`, []byte{'a', 0}, []byte{'5'}, 246},
		{`\w`, []byte{'a', 'Z', '0', '_'}, []byte{'-'}, 63},
		{`\s`, []byte{' ', '\t', '\n'}, []byte{'a'}, 6},
		{`\n`, []byte{'\n'}, []byte{'n'}, 1},
		{`\x41`, []byte{'A'}, []byte{'a'}, 1},
		{`\.`, []byte{'.'}, []byte{'a'}, 1},
		{`\\`, []byte{'\\'}, nil, 1},
		{`\0`, []byte{0}, nil, 1},
	}
	for _, c := range cases {
		p := mustParse(t, c.pat, false)
		l, ok := p.Root.(*Leaf)
		if !ok {
			t.Fatalf("%q: want Leaf, got %T", c.pat, p.Root)
		}
		for _, b := range c.has {
			if !l.Set.Has(b) {
				t.Errorf("%q should match %q", c.pat, b)
			}
		}
		for _, b := range c.not {
			if l.Set.Has(b) {
				t.Errorf("%q should not match %q", c.pat, b)
			}
		}
		if l.Set.Count() != c.size {
			t.Errorf("%q: size %d, want %d", c.pat, l.Set.Count(), c.size)
		}
	}
}

func TestParseGroups(t *testing.T) {
	mustParse(t, "(ab|cd)+", false)
	mustParse(t, "(?:ab)*", false)
	p := mustParse(t, "a(?i:bc)d", false)
	// The inner group folds case; outside does not.
	conc := p.Root.(*Concat)
	if l := conc.Subs[0].(*Leaf); l.Set.Has('A') {
		t.Error("outer literal should not fold")
	}
	inner := conc.Subs[1].(*Concat)
	if l := inner.Subs[0].(*Leaf); !l.Set.Has('B') || !l.Set.Has('b') {
		t.Error("inner group should fold")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"(",
		")",
		"(a",
		"*a",
		"+",
		"?x)",
		`\`,
		`\q`,
		`\x4`,
		`\xzz`,
		"a{5,2}",
		"a{99999}",
		"(?=a)", // lookahead unsupported
		"(?",    // fuzz regression: truncated group modifier must not panic
		"(?i",
		"(?i:a",
	}
	for _, pat := range bad {
		if _, err := Parse(pat, false); err == nil {
			t.Errorf("Parse(%q) should fail", pat)
		}
	}
}

func TestParseAlternationShape(t *testing.T) {
	p := mustParse(t, "a|b|c", false)
	a, ok := p.Root.(*Alt)
	if !ok || len(a.Subs) != 3 {
		t.Fatalf("want 3-alt, got %s", Dump(p.Root))
	}
	p = mustParse(t, "|a", false)
	a = p.Root.(*Alt)
	if _, ok := a.Subs[0].(*Empty); !ok {
		t.Error("empty branch should parse as Empty")
	}
}

func TestDumpRoundTripish(t *testing.T) {
	// Dump is diagnostic only; just confirm it renders without panic
	// and contains expected fragments.
	p := mustParse(t, "a(b|c)*d{2,3}.", false)
	s := Dump(p.Root)
	for _, frag := range []string{"*", "{2,3}", "."} {
		if !strings.Contains(s, frag) {
			t.Errorf("Dump = %q missing %q", s, frag)
		}
	}
}
