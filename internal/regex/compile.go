package regex

import (
	"fmt"
	"sort"

	"dpfsm/internal/fsm"
)

// Subset construction and the public compile entry points.

// Options configures compilation.
type Options struct {
	// CaseInsensitive applies the PCRE /i flag to the whole pattern.
	CaseInsensitive bool
	// Anchored compiles exact whole-input match semantics (as if the
	// pattern were ^pattern$ regardless of written anchors). The
	// default is Snort-style "contains a match" semantics: the machine
	// accepts any input with a matching substring, and accepting
	// states are absorbing so a scan can stop (or keep scanning) after
	// the first hit.
	Anchored bool
	// MaxStates caps the subset construction before minimization.
	// 0 means DefaultMaxStates.
	MaxStates int
}

// DefaultMaxStates bounds subset construction. The paper's largest
// machine has 4020 minimized states; pre-minimization intermediates can
// be larger.
const DefaultMaxStates = 50000

// Compile parses pattern and produces a minimized DFA over the 256-byte
// alphabet. See Options for the matching semantics.
func Compile(pattern string, opts Options) (*fsm.DFA, error) {
	parsed, err := Parse(pattern, opts.CaseInsensitive)
	if err != nil {
		return nil, err
	}
	return compileParsed(parsed, opts)
}

// MustCompile is Compile but panics on error; for tests and static
// patterns.
func MustCompile(pattern string, opts Options) *fsm.DFA {
	d, err := Compile(pattern, opts)
	if err != nil {
		panic(err)
	}
	return d
}

func compileParsed(parsed *Parsed, opts Options) (*fsm.DFA, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}

	anchorStart := opts.Anchored || parsed.AnchorStart
	anchorEnd := opts.Anchored || parsed.AnchorEnd

	n := fromAST(parsed.Root, !anchorStart)
	d, err := determinize(n, maxStates, !anchorEnd)
	if err != nil {
		return nil, err
	}
	return d.Minimize(), nil
}

// determinize runs subset construction. If stickyAccept, accepting DFA
// states are made absorbing (Σ* suffix: once a match has been seen the
// machine stays accepting), which together with the Σ* prefix loop in
// fromAST yields "input contains a match" semantics.
// byteClasses partitions the 256 input bytes into equivalence classes:
// two bytes are equivalent when every edge class in the NFA either
// contains both or neither, so they can never be distinguished by any
// machine derived from it. Subset construction then computes one
// transition per class representative instead of 256 — most patterns
// have well under 32 classes.
func byteClasses(n *nfa) (classOf [256]int, reps []byte) {
	// Refine the single all-bytes group by each distinct edge set.
	seen := map[Class]bool{}
	for i := range n.states {
		for _, e := range n.states[i].edges {
			if seen[e.set] {
				continue
			}
			seen[e.set] = true
			// Split: bytes in e.set get a distinct sub-id.
			type pair struct {
				old int
				in  bool
			}
			remap := map[pair]int{}
			next := 0
			var nc [256]int
			for b := 0; b < 256; b++ {
				p := pair{classOf[b], e.set.Has(byte(b))}
				id, ok := remap[p]
				if !ok {
					id = next
					next++
					remap[p] = id
				}
				nc[b] = id
			}
			classOf = nc
		}
	}
	found := map[int]bool{}
	for b := 0; b < 256; b++ {
		if !found[classOf[b]] {
			found[classOf[b]] = true
			reps = append(reps, byte(b))
		}
	}
	return classOf, reps
}

func determinize(n *nfa, maxStates int, stickyAccept bool) (*fsm.DFA, error) {
	mark := make([]bool, len(n.states))
	clear := func(set []int) {
		for _, s := range set {
			mark[s] = false
		}
	}

	key := func(set []int) string {
		b := make([]byte, 0, len(set)*3)
		for _, s := range set {
			b = append(b, byte(s), byte(s>>8), byte(s>>16))
		}
		return string(b)
	}

	start := n.epsClosure([]int{n.start}, mark)
	clear(start)
	sort.Ints(start)

	type dstate struct {
		set    []int
		accept bool
	}
	contains := func(set []int, x int) bool {
		i := sort.SearchInts(set, x)
		return i < len(set) && set[i] == x
	}

	ids := map[string]fsm.State{key(start): 0}
	states := []dstate{{set: start, accept: contains(start, n.accept)}}
	// trans[q] = [256]fsm.State rows, built densely then copied.
	var trans [][256]fsm.State

	classOf, reps := byteClasses(n)
	repClass := make(map[int]int, len(reps))
	for ci, rep := range reps {
		repClass[classOf[rep]] = ci
	}

	for qi := 0; qi < len(states); qi++ {
		cur := states[qi]
		var row [256]fsm.State
		if cur.accept && stickyAccept {
			for b := 0; b < 256; b++ {
				row[b] = fsm.State(qi)
			}
			trans = append(trans, row)
			continue
		}
		// One subset move per byte-equivalence class; all bytes in the
		// class share the destination.
		perClass := make([]fsm.State, len(reps))
		for ci, rep := range reps {
			var mv []int
			for _, s := range cur.set {
				for _, e := range n.states[s].edges {
					if e.set.Has(rep) {
						mv = append(mv, e.to)
					}
				}
			}
			sort.Ints(mv)
			mv = dedupSorted(mv)
			mv = n.epsClosure(mv, mark)
			clear(mv)
			sort.Ints(mv)
			k := key(mv)
			id, ok := ids[k]
			if !ok {
				id = fsm.State(len(states))
				if int(id) >= maxStates || int(id) >= fsm.MaxStates {
					return nil, fmt.Errorf("regex: DFA exceeds %d states", maxStates)
				}
				ids[k] = id
				states = append(states, dstate{set: mv, accept: contains(mv, n.accept)})
			}
			perClass[ci] = id
		}
		for b := 0; b < 256; b++ {
			row[b] = perClass[repClass[classOf[b]]]
		}
		trans = append(trans, row)
	}

	d, err := fsm.New(len(states), 256)
	if err != nil {
		return nil, err
	}
	for qi := range states {
		if states[qi].accept {
			d.SetAccepting(fsm.State(qi), true)
		}
		for b := 0; b < 256; b++ {
			d.SetTransition(fsm.State(qi), byte(b), trans[qi][b])
		}
	}
	d.SetStart(0)
	return d, nil
}

func dedupSorted(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// MatchAST is a reference matcher: it reports whether input, in its
// entirety, matches the AST. It is deliberately naive (memoized
// recursive descent over (node, span)) and exists as the oracle the
// compiled machines are differentially tested against.
func MatchAST(root Node, input []byte) bool {
	return matchNode(root, input, 0, len(input), make(map[matchKey]bool))
}

type matchKey struct {
	node Node
	lo   int
	hi   int
}

func matchNode(n Node, in []byte, lo, hi int, memo map[matchKey]bool) bool {
	k := matchKey{n, lo, hi}
	if v, ok := memo[k]; ok {
		return v
	}
	memo[k] = false // cut recursion on cyclic revisits
	var res bool
	switch t := n.(type) {
	case *Empty, *endAnchor:
		res = lo == hi
	case *Leaf:
		res = hi-lo == 1 && t.Set.Has(in[lo])
	case *Alt:
		for _, sub := range t.Subs {
			if matchNode(sub, in, lo, hi, memo) {
				res = true
				break
			}
		}
	case *Concat:
		res = matchSeq(t.Subs, in, lo, hi, memo)
	case *Repeat:
		res = matchRepeat(t, in, lo, hi, memo)
	}
	memo[k] = res
	return res
}

func matchSeq(subs []Node, in []byte, lo, hi int, memo map[matchKey]bool) bool {
	if len(subs) == 0 {
		return lo == hi
	}
	if len(subs) == 1 {
		return matchNode(subs[0], in, lo, hi, memo)
	}
	for mid := lo; mid <= hi; mid++ {
		if matchNode(subs[0], in, lo, mid, memo) && matchSeq(subs[1:], in, mid, hi, memo) {
			return true
		}
	}
	return false
}

func matchRepeat(r *Repeat, in []byte, lo, hi int, memo map[matchKey]bool) bool {
	// k copies of Sub for some Min ≤ k (≤ Max).
	var rec func(count, pos int) bool
	rec = func(count, pos int) bool {
		if count >= r.Min && pos == hi {
			return true
		}
		if r.Max >= 0 && count == r.Max {
			return false
		}
		for mid := pos; mid <= hi; mid++ {
			// Zero-width repeat bodies would loop forever; require
			// progress except for the first empty check.
			if mid == pos && count > 0 && pos == hi {
				break
			}
			if matchNode(r.Sub, in, pos, mid, memo) {
				if mid == pos {
					// Empty body match: only useful to satisfy Min.
					if count+1 >= r.Min && mid == hi {
						return true
					}
					continue
				}
				if rec(count+1, mid) {
					return true
				}
			}
		}
		return false
	}
	return rec(0, lo)
}

// MatchContains reports whether any substring of input matches the AST
// — the oracle for the default unanchored compilation mode.
func MatchContains(root Node, input []byte) bool {
	for lo := 0; lo <= len(input); lo++ {
		for hi := lo; hi <= len(input); hi++ {
			if MatchAST(root, input[lo:hi]) {
				return true
			}
		}
	}
	return false
}
