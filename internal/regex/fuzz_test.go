package regex

import (
	"testing"
)

// FuzzParse throws arbitrary byte strings at the parser: it must never
// panic, and whatever parses must compile (or fail cleanly) in both the
// DFA and NFA backends, which must then agree on a few probe inputs.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"abc", "(a|b)*abb", `\d{2,4}-\d+`, "[^a-z]+", "a{0,3}?",
		"((((x))))", "a|", "|", `\x41[\x00-\xff]`, "^start$", "(?i:MiXeD)",
		"a[bc]{3}d", `\\`, "[]a]", "a{2", "(?:)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	probes := [][]byte{nil, []byte("a"), []byte("ab"), []byte("abb"), []byte("zzz"), []byte("a1-23")}
	f.Fuzz(func(t *testing.T, pattern string) {
		if len(pattern) > 64 {
			return // keep machines small
		}
		parsed, err := Parse(pattern, false)
		if err != nil {
			return
		}
		_ = parsed
		d, derr := Compile(pattern, Options{MaxStates: 2000})
		m, merr := CompileNFA(pattern, Options{})
		if merr != nil {
			t.Fatalf("NFA compile failed after successful parse: %v", merr)
		}
		if derr != nil {
			return // state blowup is a legitimate clean failure
		}
		for _, in := range probes {
			if d.Accepts(in) != m.Match(in) {
				t.Fatalf("pattern %q input %q: DFA=%v NFA=%v", pattern, in, d.Accepts(in), m.Match(in))
			}
		}
	})
}

// FuzzMatchAgainstOracle fuzzes (pattern, input) pairs over a tiny
// alphabet, checking the DFA against the exponential AST oracle.
func FuzzMatchAgainstOracle(f *testing.F) {
	f.Add("(a|b)*", "abab")
	f.Add("a+b?", "aab")
	f.Add("[ab]{2}", "ba")
	f.Fuzz(func(t *testing.T, pattern, input string) {
		if len(pattern) > 16 || len(input) > 8 {
			return
		}
		for _, c := range pattern {
			if c != 'a' && c != 'b' && c != '(' && c != ')' && c != '|' &&
				c != '*' && c != '+' && c != '?' && c != '[' && c != ']' &&
				c != '{' && c != '}' && c != ',' && (c < '0' || c > '9') {
				return
			}
		}
		for _, c := range input {
			if c != 'a' && c != 'b' {
				return
			}
		}
		parsed, err := Parse(pattern, false)
		if err != nil {
			return
		}
		d, err := Compile(pattern, Options{Anchored: true, MaxStates: 2000})
		if err != nil {
			return
		}
		want := MatchAST(parsed.Root, []byte(input))
		if got := d.Accepts([]byte(input)); got != want {
			t.Fatalf("pattern %q input %q: DFA=%v oracle=%v", pattern, input, got, want)
		}
	})
}
