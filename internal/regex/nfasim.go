package regex

// Direct NFA simulation with bitsets. The paper defers parallelizing
// nondeterministic machines to future work (§2.1) — determinization
// can blow up exponentially, and some patterns (unanchored
// literal-gated counters, for instance) are only practical without it.
// This matcher closes that gap for the library: it runs the Thompson
// NFA directly with one bitset of active states, no determinization.
// It also serves as an independent oracle for the compiled DFAs.

import "math/bits"

// NFAMatcher simulates a Thompson NFA over byte input.
type NFAMatcher struct {
	n          *nfa
	anchorEnd  bool
	stickySet  bool
	words      int
	startSet   []uint64
	acceptWord int
	acceptBit  uint64
	// closure[s] is the ε-closure of {s} as a bitset.
	closure [][]uint64
	// edges[s] lists (classIdx → target) moves per state.
	edges [][]nfaEdgeC
}

type nfaEdgeC struct {
	set Class
	to  int
}

// CompileNFA parses pattern and builds a simulation matcher with the
// same semantics Compile gives its DFAs (Options.Anchored versus
// substring search, case folding).
func CompileNFA(pattern string, opts Options) (*NFAMatcher, error) {
	parsed, err := Parse(pattern, opts.CaseInsensitive)
	if err != nil {
		return nil, err
	}
	anchorStart := opts.Anchored || parsed.AnchorStart
	anchorEnd := opts.Anchored || parsed.AnchorEnd
	n := fromAST(parsed.Root, !anchorStart)

	m := &NFAMatcher{
		n:         n,
		anchorEnd: anchorEnd,
		stickySet: !anchorEnd,
		words:     (len(n.states) + 63) / 64,
	}
	m.acceptWord = n.accept / 64
	m.acceptBit = 1 << (uint(n.accept) % 64)

	// Per-state ε-closures.
	mark := make([]bool, len(n.states))
	m.closure = make([][]uint64, len(n.states))
	for s := range n.states {
		set := n.epsClosure([]int{s}, mark)
		bs := make([]uint64, m.words)
		for _, x := range set {
			bs[x/64] |= 1 << (uint(x) % 64)
			mark[x] = false
		}
		m.closure[s] = bs
	}
	m.startSet = append([]uint64(nil), m.closure[n.start]...)

	m.edges = make([][]nfaEdgeC, len(n.states))
	for s := range n.states {
		for _, e := range n.states[s].edges {
			m.edges[s] = append(m.edges[s], nfaEdgeC{set: e.set, to: e.to})
		}
	}
	return m, nil
}

// NumStates reports the NFA state count (for comparison with the
// determinized machine).
func (m *NFAMatcher) NumStates() int { return len(m.n.states) }

// Match reports whether input matches: whole-input match when compiled
// Anchored, "contains a match" otherwise.
func (m *NFAMatcher) Match(input []byte) bool {
	cur := append([]uint64(nil), m.startSet...)
	next := make([]uint64, m.words)
	if !m.anchorEnd && m.accepting(cur) {
		return true // empty match
	}
	for _, b := range input {
		for i := range next {
			next[i] = 0
		}
		any := false
		for w, bitsW := range cur {
			for bitsW != 0 {
				s := w*64 + bits.TrailingZeros64(bitsW)
				bitsW &= bitsW - 1
				for _, e := range m.edges[s] {
					if e.set.Has(b) {
						cl := m.closure[e.to]
						for i := range next {
							next[i] |= cl[i]
						}
						any = true
					}
				}
			}
		}
		cur, next = next, cur
		if m.stickySet && m.accepting(cur) {
			// Unanchored end: a match seen anywhere suffices. (The Σ*
			// prefix loop in fromAST keeps the search armed, so there
			// is nothing to re-seed here.)
			return true
		}
		if !any {
			// Every live path died; no future byte can help. This can
			// only happen for anchored patterns — the Σ* loop state
			// always fires for unanchored ones.
			return false
		}
	}
	return m.accepting(cur)
}

func (m *NFAMatcher) accepting(set []uint64) bool {
	return set[m.acceptWord]&m.acceptBit != 0
}
