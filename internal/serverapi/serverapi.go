// Package serverapi defines the JSON request/response shapes of the
// fsmserve HTTP API, shared between the server (cmd/fsmserve) and any
// Go client, so wire compatibility is a compile-time property instead
// of two hand-maintained struct sets.
//
// The API is versioned under /v1/; see cmd/fsmserve's package comment
// for the route table. Unversioned aliases of the v1 routes remain
// for one deprecation cycle and signal their status with a
// `Deprecation: true` header plus a Link to the successor route.
package serverapi

import (
	"dpfsm/internal/fsm"
)

// Version is the current API version prefix.
const Version = "/v1"

// DeprecationHeader is set to "true" on responses served from an
// unversioned alias route.
const DeprecationHeader = "Deprecation"

// RunResult is the response body of POST /v1/run.
type RunResult struct {
	Machine string    `json:"machine"`
	Bytes   int       `json:"bytes"`
	Final   fsm.State `json:"final_state"`
	Accepts bool      `json:"accepts"`
	// FirstMatch is the earliest accepting position, present only when
	// the request asked for it (?first=1); -1 means no match.
	FirstMatch *int `json:"first_match,omitempty"`
	// Multicore reports which engine lane the job ran on.
	Multicore  bool    `json:"multicore"`
	DurationNs int64   `json:"duration_ns"`
	MBPerS     float64 `json:"mb_per_s"`
}

// MachineInfo is one entry of GET /v1/machines.
type MachineInfo struct {
	Name     string    `json:"name"`
	Pattern  string    `json:"pattern"`
	Strategy string    `json:"strategy"`
	Procs    int       `json:"procs"`
	Stats    fsm.Stats `json:"stats"`
}

// BatchJob is one request line of POST /v1/batch (NDJSON: one JSON
// object per line). Exactly one of Input and InputB64 should be set;
// InputB64 carries binary payloads that are not valid JSON strings.
type BatchJob struct {
	Machine  string `json:"machine,omitempty"`
	Input    string `json:"input,omitempty"`
	InputB64 string `json:"input_b64,omitempty"`
	// Start overrides the machine's start state when non-nil.
	Start *int `json:"start,omitempty"`
	// TimeoutMs bounds this job alone, nested inside the request
	// context.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// BatchResult is one response line of POST /v1/batch. Results stream
// in completion order; Index maps each back to its request line
// (0-based). Error is set when the job failed (bad request line,
// unknown machine, cancellation, ...), in which case the run fields
// are meaningless.
type BatchResult struct {
	Index      int       `json:"index"`
	Machine    string    `json:"machine,omitempty"`
	Final      fsm.State `json:"final_state"`
	Accepts    bool      `json:"accepts"`
	Bytes      int       `json:"bytes"`
	Multicore  bool      `json:"multicore"`
	DurationNs int64     `json:"duration_ns"`
	Error      string    `json:"error,omitempty"`
}

// BatchSummary aggregates one batch; it is the payload of the final
// NDJSON line of a /v1/batch response (wrapped in BatchTrailer).
type BatchSummary struct {
	Jobs       int   `json:"jobs"`
	OK         int   `json:"ok"`
	Errors     int   `json:"errors"`
	Canceled   int   `json:"canceled"`
	SingleCore int   `json:"single_core"`
	Multicore  int   `json:"multicore"`
	Bytes      int64 `json:"bytes"`
	DurationNs int64 `json:"duration_ns"`
}

// BatchTrailer is the last line of a /v1/batch response. Its Summary
// field distinguishes it from BatchResult lines.
type BatchTrailer struct {
	Summary BatchSummary `json:"summary"`
}

// Error is the JSON error body non-2xx responses carry.
type Error struct {
	Error string `json:"error"`
}
