// Package serverapi defines the JSON request/response shapes of the
// fsmserve HTTP API, shared between the server (cmd/fsmserve) and any
// Go client, so wire compatibility is a compile-time property instead
// of two hand-maintained struct sets.
//
// The API is versioned under /v1/; see cmd/fsmserve's package comment
// for the route table. The unversioned alias routes that rode along
// for one deprecation cycle have been removed — clients must use the
// /v1 surface.
//
// Errors: every non-2xx response carries the Error envelope — a
// human-readable message plus a stable machine-readable Code (one of
// the Code* constants below), so clients branch on the code, not on
// message text.
package serverapi

import (
	"dpfsm/internal/cluster"
	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/otlp"
	"dpfsm/internal/perfprofile"
	"dpfsm/internal/telemetry"
	"dpfsm/internal/trace"
)

// Version is the current API version prefix.
const Version = "/v1"

// Stable error codes carried by Error.Code. Clients should branch on
// these, not on HTTP status alone (504 vs 503, say, both collapse to
// "the work did not finish" — the code says why).
const (
	CodeBadRequest       = "bad_request"        // malformed input, bad query param, bad start state
	CodeNotFound         = "not_found"          // unknown machine, trace, or route
	CodeMethodNotAllowed = "method_not_allowed" // wrong HTTP verb for the route
	CodeConflict         = "conflict"           // duplicate machine name on register
	CodeTooLarge         = "too_large"          // body exceeded -maxbody
	CodeQueueFull        = "queue_full"         // engine shed the job (back off and retry)
	CodeTimeout          = "timeout"            // the job's deadline expired
	CodeCanceled         = "canceled"           // the client went away mid-run
	CodeInternal         = "internal"           // anything else
)

// RunResult is the response body of POST /v1/run.
type RunResult struct {
	Machine string    `json:"machine"`
	Bytes   int       `json:"bytes"`
	Final   fsm.State `json:"final_state"`
	Accepts bool      `json:"accepts"`
	// FirstMatch is the earliest accepting position, present only when
	// the request asked for it (?first=1); -1 means no match.
	FirstMatch *int `json:"first_match,omitempty"`
	// Lane is the engine lane the job ran on: "single", "multicore",
	// "speculative", or "cluster". Multicore is the legacy boolean view
	// of the same fact (true only for the multicore lane) and is kept
	// for wire compatibility.
	Lane      string `json:"lane,omitempty"`
	Multicore bool   `json:"multicore"`
	// Degraded is true when a cluster-lane run re-executed one or more
	// chunks locally (peer down, breaker open, retries exhausted). The
	// answer is still exact — degradation costs parallelism, never
	// correctness.
	Degraded bool `json:"degraded,omitempty"`
	// Strategy is the strategy that actually executed — the resolved
	// one, never "auto". SelectionReason is the dispatch policy's
	// stated reason for the lane choice (adaptive selection, static
	// heuristic, or an explicit per-request override).
	Strategy        string  `json:"strategy,omitempty"`
	SelectionReason string  `json:"selection_reason,omitempty"`
	DurationNs      int64   `json:"duration_ns"`
	MBPerS          float64 `json:"mb_per_s"`
	// TraceID is set when the request was traced (?trace=1 or an
	// inbound traceparent header); the full span tree is retained by
	// the flight recorder at GET /v1/traces/{id}.
	TraceID string `json:"trace_id,omitempty"`
	// Explain is the inline execution profile, present on ?trace=1.
	Explain *Explain `json:"explain,omitempty"`
}

// Explain summarizes why one traced run behaved the way it did: the
// dispatch-lane decision, the resolved strategy, and the per-chunk
// convergence profile. Its numbers are the exact values the hot loops
// flushed into the aggregate telemetry for this run — not estimates.
type Explain struct {
	// Lane is "single", "multicore", or "speculative"; LaneReason is
	// the dispatch policy's stated reason.
	Lane       string `json:"lane"`
	LaneReason string `json:"lane_reason,omitempty"`
	Strategy   string `json:"strategy,omitempty"`
	// QueueWaitNs is time spent waiting in the engine queue; absent for
	// the synchronous /v1/run path, which bypasses the queue.
	QueueWaitNs int64 `json:"queue_wait_ns,omitempty"`
	// ChunkCount is 1 on the single-core lane, the Figure 5 fan-out
	// width on the multicore lane.
	ChunkCount int            `json:"chunks"`
	Chunks     []ExplainChunk `json:"chunk_profiles,omitempty"`
}

// ExplainChunk is the convergence profile of one executed extent: the
// whole input on the single-core lane, one phase-1 chunk on the
// multicore lane.
type ExplainChunk struct {
	Index      int   `json:"chunk"`
	Offset     int64 `json:"offset"`
	Bytes      int64 `json:"bytes"`
	DurationNs int64 `json:"duration_ns"`
	// Gathers/Shuffles/FactorCalls/FactorWins mirror the telemetry
	// counters of the same names (section 4.2 cost model).
	Gathers     int64 `json:"gathers"`
	Shuffles    int64 `json:"shuffles"`
	FactorCalls int64 `json:"factor_calls"`
	FactorWins  int64 `json:"factor_wins"`
	WidthStart  int   `json:"width_start"`
	WidthFinal  int   `json:"width_final"`
	// ConvergedAt is the input position at which the enumerative vector
	// entered the register regime (width ≤ 8); -1 means it never did.
	ConvergedAt int `json:"converged_at"`
	// Widths is the "width@pos" factor-win trajectory (Figure 7 shape),
	// empty when no factor check shrank the vector.
	Widths string `json:"widths,omitempty"`
}

// TraceInfo is one entry of GET /v1/traces: enough to pick a trace out
// of the flight recorder without shipping every span tree.
type TraceInfo struct {
	TraceID     string `json:"trace_id"`
	Name        string `json:"name,omitempty"`
	Machine     string `json:"machine,omitempty"`
	Error       string `json:"error,omitempty"`
	StartUnixNs int64  `json:"start_unix_ns"`
	DurationNs  int64  `json:"duration_ns"`
	Spans       int    `json:"spans"`
}

// MachineInfo is one entry of GET /v1/machines. Strategy rides the
// wire as its name via core.Strategy's TextMarshaler, so the JSON
// shape is unchanged from when this field was a hand-converted string.
type MachineInfo struct {
	Name     string        `json:"name"`
	Pattern  string        `json:"pattern"`
	Strategy core.Strategy `json:"strategy"`
	Procs    int           `json:"procs"`
	// Fingerprint is the compiled plan's cache identity:
	// hash(machine encoding, resolved strategy).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Source records how the machine entered the registry: "default",
	// "file" (-patterns-file / SIGHUP reload), "api"
	// (POST /v1/machines), or "builtin" (compiled-in tokenizers).
	Source string `json:"source,omitempty"`
	// Kind classifies the machine: "acceptor", "moore", or "mealy".
	// OutputTableBytes is the λ table's footprint, 0 for acceptors.
	Kind             string    `json:"kind,omitempty"`
	OutputTableBytes int       `json:"output_table_bytes,omitempty"`
	Stats            fsm.Stats `json:"stats"`
}

// RegisterRequest is the body of POST /v1/machines: compile Pattern
// and register it under Name. Strategy is optional (empty = auto).
type RegisterRequest struct {
	Name     string        `json:"name"`
	Pattern  string        `json:"pattern"`
	Strategy core.Strategy `json:"strategy,omitempty"`
}

// RegisterResult is the response of POST /v1/machines: the registered
// machine plus what its compilation cost.
type RegisterResult struct {
	Machine MachineInfo `json:"machine"`
	// PlanCached reports whether registration reused a compiled plan
	// (from the engine's cache or the -plan-cache-dir) instead of
	// building tables.
	PlanCached bool `json:"plan_cached"`
	// CompileNs is the wall time of compile-and-register.
	CompileNs int64 `json:"compile_ns"`
	// TableBytes approximates the compiled plan's table footprint.
	TableBytes int `json:"table_bytes"`
	// AutoReason explains the auto-strategy decision, empty when the
	// request forced a strategy.
	AutoReason string `json:"auto_reason,omitempty"`
}

// BatchJob is one request line of POST /v1/batch (NDJSON: one JSON
// object per line). Exactly one of Input and InputB64 should be set;
// InputB64 carries binary payloads that are not valid JSON strings.
type BatchJob struct {
	Machine  string `json:"machine,omitempty"`
	Input    string `json:"input,omitempty"`
	InputB64 string `json:"input_b64,omitempty"`
	// Start overrides the machine's start state when non-nil.
	Start *int `json:"start,omitempty"`
	// TimeoutMs bounds this job alone, nested inside the request
	// context.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Strategy overrides the machine's strategy for this job alone.
	// Empty or "auto" keeps the machine's own dispatch; a concrete
	// name pins the job to that strategy on the single-core lane.
	Strategy string `json:"strategy,omitempty"`
}

// BatchResult is one response line of POST /v1/batch. Results stream
// in completion order; Index maps each back to its request line
// (0-based). Error is set when the job failed (bad request line,
// unknown machine, cancellation, ...), in which case the run fields
// are meaningless.
type BatchResult struct {
	Index   int       `json:"index"`
	Machine string    `json:"machine,omitempty"`
	Final   fsm.State `json:"final_state"`
	Accepts bool      `json:"accepts"`
	Bytes   int       `json:"bytes"`
	// Lane is the engine lane ("single", "multicore", "speculative");
	// Multicore is its legacy boolean view. Strategy is the resolved
	// strategy that executed.
	Lane      string `json:"lane,omitempty"`
	Multicore bool   `json:"multicore"`
	// Degraded marks cluster-lane jobs that fell back to local
	// execution for some chunks; the answer is still exact.
	Degraded   bool   `json:"degraded,omitempty"`
	Strategy   string `json:"strategy,omitempty"`
	DurationNs int64  `json:"duration_ns"`
	Error      string `json:"error,omitempty"`
}

// BatchSummary aggregates one batch; it is the payload of the final
// NDJSON line of a /v1/batch response (wrapped in BatchTrailer).
type BatchSummary struct {
	Jobs       int `json:"jobs"`
	OK         int `json:"ok"`
	Errors     int `json:"errors"`
	Canceled   int `json:"canceled"`
	SingleCore int `json:"single_core"`
	Multicore  int `json:"multicore"`
	// Speculative counts jobs the adaptive selector routed to the
	// speculative lane; Cluster counts jobs fanned out over the peer
	// set, Degraded those among them that partially fell back to local
	// execution.
	Speculative int   `json:"speculative,omitempty"`
	Cluster     int   `json:"cluster,omitempty"`
	Degraded    int   `json:"degraded,omitempty"`
	Bytes       int64 `json:"bytes"`
	DurationNs  int64 `json:"duration_ns"`
}

// BatchTrailer is the last line of a /v1/batch response. Its Summary
// field distinguishes it from BatchResult lines.
type BatchTrailer struct {
	Summary BatchSummary `json:"summary"`
}

// TransduceHeader is the first NDJSON line of a POST /v1/transduce
// response: the machine that ran and the input size, before any span
// streams. Its Machine field distinguishes it from span lines.
type TransduceHeader struct {
	Machine string `json:"machine"`
	// Kind is "moore" or "mealy" (acceptors reject transduce requests).
	Kind  string `json:"kind"`
	Bytes int    `json:"bytes"`
}

// TransduceSpan is one span line of a /v1/transduce response: input
// [Start, End) all emitted output symbol Out (never the none/gap
// symbol — gaps are simply absent from the stream). Spans stream in
// input order.
type TransduceSpan struct {
	Start int `json:"start"`
	End   int `json:"end"`
	Out   int `json:"out"`
}

// TransduceSummary aggregates one transduce request; it is the payload
// of the final NDJSON line (wrapped in TransduceTrailer).
type TransduceSummary struct {
	Spans int `json:"spans"`
	// OutputBytes is the input bytes covered by emitted spans — the
	// useful-work companion to Bytes.
	OutputBytes int64     `json:"output_bytes"`
	Bytes       int       `json:"bytes"`
	Final       fsm.State `json:"final_state"`
	Accepts     bool      `json:"accepts"`
	// Lane/Strategy/SelectionReason record the dispatch decision, as on
	// /v1/run; Multicore is the legacy boolean view of Lane.
	Lane            string  `json:"lane,omitempty"`
	Multicore       bool    `json:"multicore"`
	Strategy        string  `json:"strategy,omitempty"`
	SelectionReason string  `json:"selection_reason,omitempty"`
	DurationNs      int64   `json:"duration_ns"`
	MBPerS          float64 `json:"mb_per_s"`
	// TraceID is set when the request was traced (?trace=1 or an
	// inbound traceparent header).
	TraceID string `json:"trace_id,omitempty"`
}

// TransduceTrailer is the last line of a /v1/transduce response. Its
// Summary field distinguishes it from header and span lines.
type TransduceTrailer struct {
	Summary TransduceSummary `json:"summary"`
}

// Status is the response body of GET /v1/status: one document a human
// or dashboard reads to answer "how is this server doing, and what do
// its machines look like under the current traffic" — the live
// counterpart of the profiles persisted in the plan-cache directory.
type Status struct {
	Service   string `json:"service"`
	GoVersion string `json:"go_version"`
	// Build is the main module's version from the embedded build info
	// ("(devel)" for an untagged build).
	Build       string `json:"build,omitempty"`
	PID         int    `json:"pid"`
	StartUnixNs int64  `json:"start_unix_ns"`
	UptimeNs    int64  `json:"uptime_ns"`

	// Engine shape and health.
	Workers        int   `json:"workers"`
	Procs          int   `json:"procs"`
	LargeInput     int   `json:"large_input"`
	QueueDepth     int   `json:"queue_depth"`
	QueueCap       int   `json:"queue_cap"`
	QueueHighWater int64 `json:"queue_high_water"`
	// ShedTotal counts jobs refused with 429; ShedRate is
	// shed/(executed+shed), the live load-shedding fraction.
	ShedTotal int64   `json:"shed_total"`
	ShedRate  float64 `json:"shed_rate"`

	// Plan-cache effectiveness.
	PlanCacheHits    int64   `json:"plan_cache_hits"`
	PlanCacheMisses  int64   `json:"plan_cache_misses"`
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`

	// Per-machine observed performance, sorted by machine name.
	Machines int                   `json:"machines"`
	Profiles []perfprofile.Profile `json:"profiles"`

	// Selections is the adaptive dispatcher's current per-machine
	// lane/strategy choice with its stated reason, sorted by machine
	// name — the live answer to "why is this machine running the way
	// it is".
	Selections []MachineSelection `json:"selections,omitempty"`

	// Runtime is the Go runtime's own health (GC pauses, heap,
	// goroutines, scheduler latency).
	Runtime telemetry.RuntimeSnapshot `json:"runtime"`

	// Observability is the export-and-retention side of the server:
	// sampler decisions and OTLP exporter counters. Absent when
	// neither sampling nor export is configured.
	Observability *Observability `json:"observability,omitempty"`

	// Cluster is the distributed-execution view: peer health, breaker
	// states, and protocol counters. Absent when the node runs without
	// -peers.
	Cluster *ClusterStatus `json:"cluster,omitempty"`
}

// ClusterStatus is the /v1/status section describing distributed
// execution: how this node's coordinator sees its peers, and what the
// node has served as a peer itself.
type ClusterStatus struct {
	// Peers is per-peer breaker state and traffic, sorted by peer URL.
	Peers []cluster.PeerHealth `json:"peers"`
	// ChunkBytes is the fan-out granularity; MinBytes the input size at
	// which jobs take the cluster lane.
	ChunkBytes int `json:"chunk_bytes"`
	MinBytes   int `json:"min_bytes"`
	// Served is this node's own peer-side traffic (chunk tasks executed
	// for other coordinators).
	Served cluster.PeerStats `json:"served"`
	// Jobs counts cluster-lane jobs this node coordinated; Degraded
	// those that partially fell back to local execution.
	Jobs     int64 `json:"jobs"`
	Degraded int64 `json:"degraded"`
}

// Observability reports the trace sampler's decisions and the OTLP
// exporter's shipping counters, reusing the stats types those
// subsystems already keep (both are plain JSON-tagged data).
type Observability struct {
	// Sampler decision counters; nil when sampling is disabled (every
	// trace kept).
	Sampler *trace.SamplerStats `json:"sampler,omitempty"`
	// Exporter shipping counters; nil when no -otlp-endpoint was
	// configured.
	Exporter *otlp.Stats `json:"exporter,omitempty"`
}

// Readiness is the response body of GET /readyz. Ready mirrors the
// HTTP status (200 ready / 503 unready); Reasons lists why when
// unready ("starting", "draining", "slo_fast_burn").
type Readiness struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`
}

// MachineSelection is one machine's current adaptive-dispatch choice:
// which lane large inputs take, under which strategy, and why — plus
// the machine's kind, so the /v1/status registry view tells acceptors
// from transducers truthfully.
type MachineSelection struct {
	Machine  string `json:"machine"`
	Lane     string `json:"lane"`
	Strategy string `json:"strategy,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Kind is "acceptor", "moore", or "mealy"; OutputTableBytes is the
	// λ table's footprint (0 for acceptors).
	Kind             string `json:"kind,omitempty"`
	OutputTableBytes int    `json:"output_table_bytes,omitempty"`
}

// MachineProfile is the response body of GET /v1/machines/{name}/profile:
// the machine's static identity joined with its observed performance
// and the adaptive selector's current decision — everything the
// selection loop sees, for one machine.
type MachineProfile struct {
	Machine MachineInfo `json:"machine"`
	// Profile is the accumulated per-lane performance history; absent
	// when the machine has never executed a job.
	Profile *perfprofile.Profile `json:"profile,omitempty"`
	// Selection is the current dispatch decision for large inputs.
	Selection MachineSelection `json:"selection"`
}

// Error is the JSON error body non-2xx responses carry. Code is one
// of the Code* constants; Error is the human-readable message.
type Error struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}
