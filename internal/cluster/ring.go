package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over the peer set, used to place
// machines (by plan fingerprint) and to spread a job's chunks across
// peers starting from the machine's home node. Placement must be a
// pure function of (peer set, key): every coordinator in the cluster —
// and every restart of the same coordinator — derives the same owner
// for the same fingerprint, which is what makes "ship the plan to its
// home peer once" coherent without any membership protocol.
//
// Each peer contributes vnodes points, hashed with FNV-64a over
// "peer#i". FNV is stable across processes and architectures (unlike
// map iteration or hash/maphash), so determinism across restarts is a
// property of the construction, not a test accident. Virtual nodes
// give the movement bound: when a peer joins or leaves an n-peer
// ring, only the keys in the arcs it owned move — about 1/n of them,
// never more than the failed peer held.
type Ring struct {
	points []ringPoint // sorted by hash
	peers  []string    // deduped, sorted
}

type ringPoint struct {
	hash uint64
	peer string
}

// DefaultVnodes is the virtual-node count per peer when NewRing is
// given vnodes <= 0: enough points that arc sizes concentrate near
// 1/(n·vnodes) of the keyspace.
const DefaultVnodes = 64

// NewRing builds a ring over peers (deduped; order-insensitive).
// An empty peer set yields an empty ring whose Owner returns "".
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(peers))
	r := &Ring{}
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		r.peers = append(r.peers, p)
	}
	sort.Strings(r.peers)
	r.points = make([]ringPoint, 0, len(r.peers)*vnodes)
	for _, p := range r.peers {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(p + "#" + strconv.Itoa(i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break by peer name so the
		// ring stays a deterministic function of the peer set.
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Peers returns the deduped, sorted peer set.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Owner returns the peer owning key: the first ring point at or after
// the key's hash, wrapping at the top. "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].peer
}

// search finds the index of key's successor point.
func (r *Ring) search(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Prefs returns key's preference list: every distinct peer in ring
// order starting from the owner. Chunk i of a job keyed by key is
// dispatched to Prefs(key)[i % len], spreading a large input across
// the whole cluster while keeping chunk→peer assignment deterministic.
func (r *Ring) Prefs(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	prefs := make([]string, 0, len(r.peers))
	seen := make(map[string]bool, len(r.peers))
	start := r.search(key)
	for i := 0; i < len(r.points) && len(prefs) < len(r.peers); i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			prefs = append(prefs, p)
		}
	}
	return prefs
}

// OwnerAt returns the i-th peer of key's preference list (mod the
// peer count): the dispatch target for chunk i of a job keyed by key.
func (r *Ring) OwnerAt(key string, i int) string {
	prefs := r.Prefs(key)
	if len(prefs) == 0 {
		return ""
	}
	return prefs[i%len(prefs)]
}
