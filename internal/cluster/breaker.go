package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// peerState is the coordinator's per-peer bookkeeping: the circuit
// breaker, the set of plans known to be installed on the peer, and the
// traffic counters Health reports.
//
// The breaker is the standard three-state machine. Closed passes
// everything. After threshold consecutive failures it opens, and the
// peer's chunks skip straight to local fallback — no point queueing
// work behind a dead socket. After the cooldown one half-open probe is
// let through: success closes the breaker, failure re-opens it for
// another cooldown.
type peerState struct {
	mu       sync.Mutex
	consec   int       // consecutive failures since last success
	open     bool      //
	openedAt time.Time // when the breaker (re)opened
	probing  bool      // a half-open probe is in flight

	// installMu single-flights plan shipping to this peer: when a job's
	// chunks fan out concurrently, exactly one goroutine ships, the rest
	// find the plan installed. Held across the install RPC, so it is a
	// separate lock from mu.
	installMu sync.Mutex
	// plans maps installed fingerprints to the epoch of their install
	// (a per-peer monotonic counter). The epoch lets the 404 path
	// invalidate only the install it actually observed: if another
	// chunk already re-shipped, the invalidation is a no-op instead of
	// un-installing the fresh copy.
	plans     map[string]uint64
	planEpoch uint64

	tasks     atomic.Int64 // remote chunks answered
	retries   atomic.Int64 // re-sent attempts
	failures  atomic.Int64 // failed attempts
	fallbacks atomic.Int64 // chunks degraded to local execution
	shipped   atomic.Int64 // plans shipped
	opens     atomic.Int64 // breaker open transitions
}

// allow reports whether an attempt may go to the peer now. While open
// it admits exactly one probe per cooldown window.
func (ps *peerState) allow(now time.Time, threshold int, cooldown time.Duration) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.open {
		return true
	}
	if now.Sub(ps.openedAt) >= cooldown && !ps.probing {
		ps.probing = true
		return true
	}
	return false
}

// success records a completed attempt: the breaker closes and the
// failure streak resets.
func (ps *peerState) success() {
	ps.mu.Lock()
	ps.open = false
	ps.probing = false
	ps.consec = 0
	ps.mu.Unlock()
}

// failure records a failed attempt; true when this failure newly
// opened the breaker. A failed half-open probe re-arms the open window
// without counting as a new open.
func (ps *peerState) failure(now time.Time, threshold int) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.consec++
	if ps.open {
		if ps.probing {
			ps.probing = false
			ps.openedAt = now
		}
		return false
	}
	if ps.consec >= threshold {
		ps.open = true
		ps.openedAt = now
		ps.opens.Add(1)
		return true
	}
	return false
}

// view renders the breaker for Health.
func (ps *peerState) view(now time.Time, cooldown time.Duration) (state string, consec int) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	switch {
	case !ps.open:
		return BreakerClosed, ps.consec
	case now.Sub(ps.openedAt) >= cooldown:
		return BreakerHalfOpen, ps.consec
	default:
		return BreakerOpen, ps.consec
	}
}

// installedEpoch returns the epoch fingerprint was installed at, 0 if
// not installed. Callers must hold installMu for a stable answer.
func (ps *peerState) installedEpoch(fingerprint string) uint64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.plans[fingerprint]
}

// notePlan marks fingerprint installed at a fresh epoch.
func (ps *peerState) notePlan(fingerprint string) {
	ps.mu.Lock()
	if ps.plans == nil {
		ps.plans = make(map[string]uint64)
	}
	ps.planEpoch++
	ps.plans[fingerprint] = ps.planEpoch
	ps.mu.Unlock()
}

// invalidatePlan drops the installed flag, but only if the install the
// caller observed (seen) is still the current one — the peer answered
// unknown-plan despite it, so that install is stale (peer restarted).
func (ps *peerState) invalidatePlan(fingerprint string, seen uint64) {
	ps.mu.Lock()
	if ps.plans[fingerprint] == seen {
		delete(ps.plans, fingerprint)
	}
	ps.mu.Unlock()
}
