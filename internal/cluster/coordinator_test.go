package cluster

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/plan"
	"dpfsm/internal/telemetry"
)

// nopTransport satisfies Transport for tests that never hit the wire
// (placement-only assertions).
type nopTransport struct{}

func (nopTransport) ExecChunk(context.Context, string, *plan.ClusterTask) (*plan.ClusterVector, error) {
	return nil, errors.New("nop transport")
}
func (nopTransport) InstallPlan(context.Context, string, string, []byte) error { return nil }

// peerBox lets a test "restart" a node: same listener, fresh Peer with
// an empty plan store.
type peerBox struct {
	mu sync.Mutex
	p  *Peer
}

func (b *peerBox) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	b.mu.Lock()
	p := b.p
	b.mu.Unlock()
	p.Handler().ServeHTTP(w, r)
}

func (b *peerBox) peer() *Peer {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.p
}

func (b *peerBox) restart() {
	b.mu.Lock()
	b.p = NewPeer(nil)
	b.mu.Unlock()
}

// testCluster is n real httptest nodes behind a fault-injecting
// round-tripper, plus a coordinator configured for fast tests.
type testCluster struct {
	t      *testing.T
	boxes  []*peerBox
	hosts  []string
	faults *FaultRoundTripper
	tel    *telemetry.Metrics
	coord  *Coordinator
}

func newTestCluster(t *testing.T, n int, cfg Config) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, faults: NewFaultRoundTripper(nil), tel: &telemetry.Metrics{}}
	var peers []string
	for i := 0; i < n; i++ {
		box := &peerBox{p: NewPeer(nil)}
		srv := httptest.NewServer(box)
		t.Cleanup(srv.Close)
		tc.boxes = append(tc.boxes, box)
		peers = append(peers, srv.URL)
		tc.hosts = append(tc.hosts, HostOf(srv.URL))
	}
	cfg.Peers = peers
	cfg.Transport = NewHTTPTransport(&http.Client{Transport: tc.faults})
	cfg.Telemetry = tc.tel
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = time.Millisecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 2 * time.Millisecond
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.coord = coord
	return tc
}

func (tc *testCluster) exec(p *core.Plan, input []byte, start fsm.State) (fsm.State, ExecStats) {
	tc.t.Helper()
	got, stats, err := tc.coord.Exec(context.Background(), p, input, start)
	if err != nil {
		tc.t.Fatal(err)
	}
	return got, stats
}

func TestCoordinatorNoPeers(t *testing.T) {
	if _, err := NewCoordinator(Config{}); !errors.Is(err, ErrNoPeers) {
		t.Fatalf("got %v, want ErrNoPeers", err)
	}
}

func TestCoordinatorEmptyInput(t *testing.T) {
	_, p := testMachine(t, 10)
	tc := newTestCluster(t, 2, Config{ChunkBytes: 512})
	got, stats := tc.exec(p, nil, 3)
	if got != 3 || stats.Chunks != 0 {
		t.Fatalf("empty input: state %d stats %+v, want start echoed with 0 chunks", got, stats)
	}
}

// The distributed answer must equal the scalar oracle, fully remote,
// across chunk-count shapes from sub-chunk to many-chunks-per-peer.
func TestCoordinatorMatchesOracle(t *testing.T) {
	d, p := testMachine(t, 11)
	tc := newTestCluster(t, 3, Config{ChunkBytes: 512})
	rng := rand.New(rand.NewSource(12))
	for _, size := range []int{1, 100, 512, 513, 4096, 20_000} {
		input := d.RandomInput(rng, size)
		got, stats := tc.exec(p, input, d.Start())
		if want := d.Run(input, d.Start()); got != want {
			t.Fatalf("size %d: distributed %d, oracle %d", size, got, want)
		}
		if stats.Degraded || stats.LocalChunks != 0 {
			t.Fatalf("size %d: degraded without faults: %+v", size, stats)
		}
		if wantChunks := (size + 511) / 512; stats.Chunks != wantChunks || stats.RemoteChunks != wantChunks {
			t.Fatalf("size %d: chunk accounting %+v, want %d remote", size, stats, wantChunks)
		}
	}
	if tc.tel.ClusterTasks.Load() == 0 {
		t.Fatal("telemetry saw no remote tasks")
	}
	if tc.tel.ClusterDegraded.Load() != 0 {
		t.Fatal("telemetry counted a degraded job on the clean path")
	}
}

// One injected fault of each kind, after warmup: the retry absorbs it —
// right answer, no degradation, retry observable in stats + telemetry.
func TestCoordinatorRetriesAbsorbInjectedFaults(t *testing.T) {
	cases := []struct {
		name  string
		fault FaultKind
	}{
		{"drop", FaultDrop},
		{"http500", Fault500},
		{"truncate", FaultTruncate},
		{"delay-past-timeout", FaultDelay},
	}
	for _, tcase := range cases {
		t.Run(tcase.name, func(t *testing.T) {
			d, p := testMachine(t, 20)
			tc := newTestCluster(t, 2, Config{ChunkBytes: 256, TaskTimeout: 50 * time.Millisecond})
			tc.faults.Delay = 250 * time.Millisecond
			rng := rand.New(rand.NewSource(21))
			input := d.RandomInput(rng, 2048)

			// Warmup ships the plan so the injected fault lands on an exec
			// exchange (truncate must tear a vector frame, not an install
			// acknowledgement).
			tc.exec(p, input, d.Start())
			for _, host := range tc.hosts {
				tc.faults.Push(host, tcase.fault)
			}
			got, stats := tc.exec(p, input, d.Start())
			if want := d.Run(input, d.Start()); got != want {
				t.Fatalf("under %s: distributed %d, oracle %d", tcase.name, got, want)
			}
			if stats.Degraded {
				t.Fatalf("under %s: a single fault should be absorbed by retry, got %+v", tcase.name, stats)
			}
			if stats.Retries == 0 {
				t.Fatalf("under %s: no retry recorded", tcase.name)
			}
			if tc.tel.ClusterRetries.Load() == 0 || tc.tel.ClusterTaskErrors.Load() == 0 {
				t.Fatalf("under %s: telemetry missed the fault (retries=%d errors=%d)",
					tcase.name, tc.tel.ClusterRetries.Load(), tc.tel.ClusterTaskErrors.Load())
			}
		})
	}
}

// Every peer dead: retries exhaust, every chunk re-executes locally,
// and the job still answers exactly the oracle — degraded, not wrong.
func TestCoordinatorDegradesToLocalWhenAllPeersDown(t *testing.T) {
	d, p := testMachine(t, 30)
	tc := newTestCluster(t, 2, Config{ChunkBytes: 256, MaxRetries: 1})
	for _, host := range tc.hosts {
		tc.faults.SetAlways(host, FaultDrop)
	}
	rng := rand.New(rand.NewSource(31))
	input := d.RandomInput(rng, 3000)
	got, stats := tc.exec(p, input, d.Start())
	if want := d.Run(input, d.Start()); got != want {
		t.Fatalf("all peers down: distributed %d, oracle %d", got, want)
	}
	if !stats.Degraded || stats.LocalChunks != stats.Chunks || stats.RemoteChunks != 0 {
		t.Fatalf("all peers down: stats %+v, want fully local + degraded", stats)
	}
	if tc.tel.ClusterLocalFallbacks.Load() == 0 || tc.tel.ClusterDegraded.Load() == 0 {
		t.Fatal("telemetry missed the degradation")
	}
}

// Exact attempt accounting: MaxRetries+1 HTTP attempts per chunk
// against a dead peer, then local fallback.
func TestCoordinatorRetryBudget(t *testing.T) {
	d, p := testMachine(t, 40)
	tc := newTestCluster(t, 1, Config{ChunkBytes: 1 << 20, MaxRetries: 2})
	tc.faults.SetAlways(tc.hosts[0], FaultDrop)
	input := d.RandomInput(rand.New(rand.NewSource(41)), 100) // one chunk
	_, stats := tc.exec(p, input, d.Start())
	if got := tc.faults.Calls(tc.hosts[0]); got != 3 {
		t.Fatalf("dead peer saw %d requests, want MaxRetries+1 = 3", got)
	}
	if stats.Retries != 2 || !stats.Degraded {
		t.Fatalf("stats %+v, want 2 retries then degradation", stats)
	}
}

// Full breaker lifecycle on one peer: closed → open after threshold
// consecutive failures (open skips the network entirely), half-open
// after the cooldown, failed probe re-arms it, successful probe closes
// it.
func TestCoordinatorBreakerLifecycle(t *testing.T) {
	d, p := testMachine(t, 50)
	tc := newTestCluster(t, 1, Config{
		ChunkBytes:       1 << 20,
		MaxRetries:       1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	host := tc.hosts[0]
	input := d.RandomInput(rand.New(rand.NewSource(51)), 200)
	want := d.Run(input, d.Start())

	// Warmup: plan installed, breaker closed.
	if got, _ := tc.exec(p, input, d.Start()); got != want {
		t.Fatalf("warmup answered %d, want %d", got, want)
	}
	base := time.Now()
	clock := base
	tc.coord.now = func() time.Time { return clock }

	// Two failed attempts in one job trip the threshold.
	tc.faults.SetAlways(host, FaultDrop)
	if got, stats := tc.exec(p, input, d.Start()); got != want || !stats.Degraded {
		t.Fatalf("tripping job: got %d (want %d), stats %+v", got, want, stats)
	}
	h := tc.coord.Health()
	if len(h) != 1 || h[0].State != BreakerOpen || h[0].BreakerOpens != 1 {
		t.Fatalf("after threshold failures: health %+v, want open with 1 open-transition", h)
	}

	// Open breaker: next job goes straight to fallback, zero requests.
	calls := tc.faults.Calls(host)
	if got, stats := tc.exec(p, input, d.Start()); got != want || !stats.Degraded {
		t.Fatalf("open-breaker job: got %d, stats %+v", got, stats)
	}
	if tc.faults.Calls(host) != calls {
		t.Fatalf("open breaker still sent requests: %d → %d", calls, tc.faults.Calls(host))
	}
	if tc.tel.ClusterBreakerSkips.Load() == 0 {
		t.Fatal("telemetry missed the breaker skip")
	}

	// Cooldown elapses → half-open; a failed probe costs exactly one
	// request and re-arms the open window.
	clock = base.Add(2 * time.Hour)
	if h := tc.coord.Health(); h[0].State != BreakerHalfOpen {
		t.Fatalf("after cooldown: state %q, want half-open", h[0].State)
	}
	calls = tc.faults.Calls(host)
	tc.exec(p, input, d.Start())
	if got := tc.faults.Calls(host); got != calls+1 {
		t.Fatalf("failed probe sent %d requests, want exactly 1", got-calls)
	}
	if h := tc.coord.Health(); h[0].State != BreakerOpen {
		t.Fatalf("after failed probe: state %q, want open again", h[0].State)
	}

	// Peer recovers; next probe closes the breaker and traffic resumes.
	tc.faults.Clear(host)
	clock = clock.Add(2 * time.Hour)
	got, stats := tc.exec(p, input, d.Start())
	if got != want || stats.Degraded || stats.RemoteChunks != 1 {
		t.Fatalf("recovery job: got %d, stats %+v, want remote and exact", got, stats)
	}
	if h := tc.coord.Health(); h[0].State != BreakerClosed {
		t.Fatalf("after successful probe: state %q, want closed", h[0].State)
	}
}

// A plan ships once per peer; later jobs reuse it. A peer restart
// (empty plan store) is healed by the 404 → re-ship path inside one
// attempt, with no retry and no degradation.
func TestCoordinatorPlanShippingAndPeerRestart(t *testing.T) {
	d, p := testMachine(t, 60)
	tc := newTestCluster(t, 2, Config{ChunkBytes: 256})
	rng := rand.New(rand.NewSource(61))
	input := d.RandomInput(rng, 4096)
	want := d.Run(input, d.Start())

	tc.exec(p, input, d.Start())
	tc.exec(p, input, d.Start())
	installs := int64(0)
	for _, box := range tc.boxes {
		s := box.peer().Stats()
		if s.Installs > 1 {
			t.Fatalf("peer saw %d installs of one plan", s.Installs)
		}
		installs += s.Installs
	}
	if installs != 2 || tc.tel.ClusterPlanShips.Load() != 2 {
		t.Fatalf("installs=%d ships=%d, want one ship per peer", installs, tc.tel.ClusterPlanShips.Load())
	}

	tc.boxes[0].restart()
	tc.boxes[1].restart()
	got, stats := tc.exec(p, input, d.Start())
	if got != want || stats.Degraded {
		t.Fatalf("after peer restarts: got %d (want %d), stats %+v", got, want, stats)
	}
	if tc.tel.ClusterPlanShips.Load() != 4 {
		t.Fatalf("restart should re-ship to both peers: ships=%d, want 4", tc.tel.ClusterPlanShips.Load())
	}
}

// badEchoTransport answers structurally valid vectors for the wrong
// chunk — the coordinator must treat that as a failure, not fold it.
type badEchoTransport struct {
	peer *Peer
}

func (b *badEchoTransport) ExecChunk(ctx context.Context, _ string, task *plan.ClusterTask) (*plan.ClusterVector, error) {
	vec, err := b.peer.Exec(task)
	if err != nil {
		return nil, err
	}
	vec.ChunkIndex++
	return vec, nil
}

func (b *badEchoTransport) InstallPlan(_ context.Context, _ string, fingerprint string, data []byte) error {
	return b.peer.Install(fingerprint, data)
}

func TestCoordinatorRejectsWrongChunkEcho(t *testing.T) {
	d, p := testMachine(t, 70)
	coord, err := NewCoordinator(Config{
		Peers:       []string{"http://peer-a"},
		Transport:   &badEchoTransport{peer: NewPeer(nil)},
		ChunkBytes:  256,
		MaxRetries:  1,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	input := d.RandomInput(rng, 1000)
	got, stats, err := coord.Exec(context.Background(), p, input, d.Start())
	if err != nil {
		t.Fatal(err)
	}
	if want := d.Run(input, d.Start()); got != want {
		t.Fatalf("wrong-echo peer corrupted the answer: %d, want %d", got, want)
	}
	if !stats.Degraded || stats.RemoteChunks != 0 {
		t.Fatalf("wrong echoes must never count as remote successes: %+v", stats)
	}
}

// Chunk-split invariance over the network: different ChunkBytes, same
// peers, same answer.
func TestCoordinatorChunkSplitInvariance(t *testing.T) {
	d, p := testMachine(t, 80)
	coarse := newTestCluster(t, 2, Config{ChunkBytes: 4096})
	fine := newTestCluster(t, 2, Config{ChunkBytes: 128})
	rng := rand.New(rand.NewSource(81))
	for i := 0; i < 5; i++ {
		input := d.RandomInput(rng, 1+rng.Intn(10_000))
		a, _ := coarse.exec(p, input, d.Start())
		b, _ := fine.exec(p, input, d.Start())
		if want := d.Run(input, d.Start()); a != want || b != want {
			t.Fatalf("split variance: coarse %d fine %d oracle %d", a, b, want)
		}
	}
}
