package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"dpfsm/internal/fsm"
)

func TestClusterMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(240))
	for iter := 0; iter < 10; iter++ {
		d := fsm.RandomConverging(rng, 2+rng.Intn(60), 6, 6, 0.3)
		in := d.RandomInput(rng, 1+rng.Intn(100_000))
		for _, workers := range []int{1, 3, 8} {
			c, err := New(d, SimConfig{Workers: workers, ChunkBytes: 4096})
			if err != nil {
				t.Fatal(err)
			}
			st := fsm.State(rng.Intn(d.NumStates()))
			got, stats := c.Final(in, st)
			c.Close()
			if want := d.Run(in, st); got != want {
				t.Fatalf("iter %d workers %d: %d want %d", iter, workers, got, want)
			}
			wantTasks := (len(in) + 4095) / 4096
			if stats.Tasks != wantTasks {
				t.Fatalf("tasks %d want %d", stats.Tasks, wantTasks)
			}
			if stats.BytesToWorkers != len(in) {
				t.Fatalf("shipped %d bytes, want %d", stats.BytesToWorkers, len(in))
			}
			if stats.BytesToCoordinator != wantTasks*d.NumStates()*2 {
				t.Fatalf("returned %d bytes, want %d", stats.BytesToCoordinator, wantTasks*d.NumStates()*2)
			}
		}
	}
}

func TestClusterCommunicationShrinksWithChunkSize(t *testing.T) {
	// The §3.4 point: result traffic is per-chunk, so bigger chunks →
	// less communication for the same input.
	rng := rand.New(rand.NewSource(241))
	d := fsm.RandomConverging(rng, 30, 4, 5, 0.3)
	in := d.RandomInput(rng, 1<<20)

	small, err := New(d, SimConfig{Workers: 2, ChunkBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	_, sSmall := small.Final(in, d.Start())
	small.Close()

	big, err := New(d, SimConfig{Workers: 2, ChunkBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	_, sBig := big.Final(in, d.Start())
	big.Close()

	if sBig.BytesToCoordinator >= sSmall.BytesToCoordinator {
		t.Fatalf("bigger chunks should return less: %d vs %d",
			sBig.BytesToCoordinator, sSmall.BytesToCoordinator)
	}
	if sSmall.BytesToCoordinator/sBig.BytesToCoordinator < 32 {
		t.Errorf("64× chunk growth should shrink traffic ~64×: %d vs %d",
			sSmall.BytesToCoordinator, sBig.BytesToCoordinator)
	}
}

func TestClusterAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(242))
	d := fsm.RandomConverging(rng, 20, 4, 4, 0.5)
	c, err := New(d, SimConfig{Workers: 2, ChunkBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for trial := 0; trial < 10; trial++ {
		in := d.RandomInput(rng, 5000)
		got, _ := c.Accepts(d, in)
		if got != d.Accepts(in) {
			t.Fatal("acceptance mismatch")
		}
	}
}

func TestClusterEmptyInput(t *testing.T) {
	d := fsm.MustNew(3, 2)
	d.SetStart(2)
	c, err := New(d, SimConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, stats := c.Final(nil, 2)
	if st != 2 || stats.Tasks != 0 {
		t.Fatalf("empty input: state %d tasks %d", st, stats.Tasks)
	}
	if stats.BootstrapBytes == 0 {
		t.Error("bootstrap bytes should account the shipped machine")
	}
}

func TestClusterConfigErrors(t *testing.T) {
	d := fsm.MustNew(2, 2)
	_, err := New(d, SimConfig{Workers: 0})
	if !errors.Is(err, ErrNoWorkers) {
		t.Errorf("zero workers: got %v, want ErrNoWorkers", err)
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	d := fsm.MustNew(2, 2)
	c, err := New(d, SimConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // must not panic
}

func TestClusterReusableAcrossJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(243))
	d := fsm.RandomConverging(rng, 25, 4, 5, 0.3)
	c, err := New(d, SimConfig{Workers: 3, ChunkBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for job := 0; job < 5; job++ {
		in := d.RandomInput(rng, 20_000)
		got, _ := c.Final(in, d.Start())
		if want := d.Run(in, d.Start()); got != want {
			t.Fatalf("job %d: %d want %d", job, got, want)
		}
	}
}
