package cluster

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"dpfsm/internal/core"
	"dpfsm/internal/plan"
)

// Peer is the serving side of the cluster protocol: it holds compiled
// plans by fingerprint and answers chunk tasks with composition
// vectors. fsmserve mounts Handler into its mux so every node is
// simultaneously a coordinator (for its own requests) and a peer (for
// everyone else's); tests mount the same handler on httptest servers.
//
// Plans arrive two ways: shipped by a coordinator over PlansPath
// (fingerprint-keyed, verified against the decoded plan's own
// fingerprint, 409 on mismatch), or resolved locally through an
// optional Resolver — fsmserve wires one that consults its own
// registry, so plans both nodes already compiled are never re-shipped.
type Peer struct {
	mu      sync.Mutex
	runners map[string]*core.Runner // fingerprint → single-core runner

	// resolver, when set, is consulted for fingerprints not yet
	// installed before answering unknown-plan.
	resolver func(fingerprint string) *core.Plan

	tasks     atomic.Int64
	installs  atomic.Int64
	rejects   atomic.Int64
	taskBytes atomic.Int64
}

// NewPeer builds an empty peer. resolver may be nil.
func NewPeer(resolver func(fingerprint string) *core.Plan) *Peer {
	return &Peer{runners: make(map[string]*core.Runner), resolver: resolver}
}

// PeerStats is a point-in-time view of one peer's served traffic.
type PeerStats struct {
	// Plans is the number of installed plans; Tasks the chunk tasks
	// served; Installs the plans accepted over the wire; Rejects the
	// protocol rejections (mismatch, bad message); TaskBytes the chunk
	// bytes executed.
	Plans     int   `json:"plans"`
	Tasks     int64 `json:"tasks"`
	Installs  int64 `json:"installs"`
	Rejects   int64 `json:"rejects"`
	TaskBytes int64 `json:"task_bytes"`
}

// Stats returns the peer's served-traffic counters.
func (p *Peer) Stats() PeerStats {
	p.mu.Lock()
	plans := len(p.runners)
	p.mu.Unlock()
	return PeerStats{
		Plans:     plans,
		Tasks:     p.tasks.Load(),
		Installs:  p.installs.Load(),
		Rejects:   p.rejects.Load(),
		TaskBytes: p.taskBytes.Load(),
	}
}

// Install decodes and installs a serialized plan under fingerprint.
// The decoded plan's own fingerprint must match the declared one
// (ErrPlanMismatch otherwise); installing an already-present
// fingerprint is an idempotent no-op.
func (p *Peer) Install(fingerprint string, data []byte) error {
	p.mu.Lock()
	_, have := p.runners[fingerprint]
	p.mu.Unlock()
	if have {
		return nil
	}
	cp, err := core.UnmarshalPlan(data)
	if err != nil {
		return fmt.Errorf("cluster: decoding shipped plan: %w", err)
	}
	if cp.Fingerprint() != fingerprint {
		return fmt.Errorf("%w: declared %s, decoded %s", ErrPlanMismatch, fingerprint, cp.Fingerprint())
	}
	return p.install(fingerprint, cp)
}

// install builds the runner and publishes it. Chunk tasks run
// single-core on the peer: parallelism across a job comes from the
// fan-out over peers (and each peer's concurrent HTTP handlers), not
// from a second fan-out inside each chunk.
func (p *Peer) install(fingerprint string, cp *core.Plan) error {
	r, err := core.NewFromPlan(cp, core.WithProcs(1))
	if err != nil {
		return fmt.Errorf("cluster: building runner for shipped plan: %w", err)
	}
	p.mu.Lock()
	if _, have := p.runners[fingerprint]; !have {
		p.runners[fingerprint] = r
		p.installs.Add(1)
	}
	p.mu.Unlock()
	return nil
}

// runner resolves the runner for fingerprint, consulting the local
// resolver on a miss. nil when the plan is unknown.
func (p *Peer) runner(fingerprint string) *core.Runner {
	p.mu.Lock()
	r := p.runners[fingerprint]
	p.mu.Unlock()
	if r != nil {
		return r
	}
	if p.resolver == nil {
		return nil
	}
	cp := p.resolver(fingerprint)
	if cp == nil || cp.Fingerprint() != fingerprint {
		return nil
	}
	if err := p.install(fingerprint, cp); err != nil {
		return nil
	}
	p.mu.Lock()
	r = p.runners[fingerprint]
	p.mu.Unlock()
	return r
}

// Exec runs one decoded task and returns its composition vector.
func (p *Peer) Exec(task *plan.ClusterTask) (*plan.ClusterVector, error) {
	r := p.runner(task.Fingerprint)
	if r == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPlan, task.Fingerprint)
	}
	vec := r.CompositionVector(task.Input)
	p.tasks.Add(1)
	p.taskBytes.Add(int64(len(task.Input)))
	states := make([]uint16, len(vec))
	for i, st := range vec {
		states[i] = uint16(st)
	}
	return &plan.ClusterVector{
		Fingerprint: task.Fingerprint,
		ChunkIndex:  task.ChunkIndex,
		States:      states,
	}, nil
}

// Handler returns the peer's HTTP surface: POST ExecPath (binary
// ClusterTask in, binary ClusterVector out) and POST PlansPath
// (serialized plan in, keyed by ?fingerprint=). Mount it at the
// routes' own paths — the handler switches on r.URL.Path.
func (p *Peer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Path {
		case ExecPath:
			p.handleExec(w, req)
		case PlansPath:
			p.handleInstall(w, req)
		default:
			http.Error(w, "unknown cluster route", http.StatusNotFound)
		}
	})
}

// maxWireMessage bounds request reads: a plan or chunk can be large,
// but not unbounded.
const maxWireMessage = 128 << 20

func (p *Peer) handleExec(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST a cluster task", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, maxWireMessage))
	if err != nil {
		http.Error(w, "reading task: "+err.Error(), http.StatusBadRequest)
		return
	}
	task, err := plan.UnmarshalClusterTask(body)
	if err != nil {
		p.rejects.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	vec, err := p.Exec(task)
	if err != nil {
		p.rejects.Add(1)
		status := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownPlan) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	out, err := vec.MarshalBinary()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(out)
}

func (p *Peer) handleInstall(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST a serialized plan", http.StatusMethodNotAllowed)
		return
	}
	fingerprint := req.URL.Query().Get("fingerprint")
	if fingerprint == "" {
		http.Error(w, "missing ?fingerprint=", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, maxWireMessage))
	if err != nil {
		http.Error(w, "reading plan: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := p.Install(fingerprint, body); err != nil {
		p.rejects.Add(1)
		status := http.StatusBadRequest
		if errors.Is(err, ErrPlanMismatch) {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.WriteHeader(http.StatusCreated)
}
