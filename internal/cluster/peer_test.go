package cluster

import (
	"bytes"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/plan"
)

func testMachine(t *testing.T, seed int64) (*fsm.DFA, *core.Plan) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := fsm.RandomConverging(rng, 2+rng.Intn(40), 6, 6, 0.3)
	p, err := core.CompilePlan(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, p
}

func marshalPlan(t *testing.T, p *core.Plan) []byte {
	t.Helper()
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPeerInstallAndExec(t *testing.T) {
	d, p := testMachine(t, 1)
	peer := NewPeer(nil)
	fp := p.Fingerprint()
	if err := peer.Install(fp, marshalPlan(t, p)); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-install.
	if err := peer.Install(fp, marshalPlan(t, p)); err != nil {
		t.Fatal(err)
	}
	if got := peer.Stats().Installs; got != 1 {
		t.Fatalf("installs = %d, want 1", got)
	}

	rng := rand.New(rand.NewSource(2))
	input := d.RandomInput(rng, 4096)
	vec, err := peer.Exec(&plan.ClusterTask{Fingerprint: fp, ChunkIndex: 0, TotalChunks: 1, Input: input})
	if err != nil {
		t.Fatal(err)
	}
	if vec.Fingerprint != fp || vec.ChunkIndex != 0 {
		t.Fatalf("bad echo: %q chunk %d", vec.Fingerprint, vec.ChunkIndex)
	}
	if len(vec.States) != d.NumStates() {
		t.Fatalf("vector has %d entries, want %d", len(vec.States), d.NumStates())
	}
	// The vector IS the composition: entry q must equal the scalar run
	// from q.
	for q := 0; q < d.NumStates(); q++ {
		if want := d.Run(input, fsm.State(q)); fsm.State(vec.States[q]) != want {
			t.Fatalf("vector[%d] = %d, scalar oracle says %d", q, vec.States[q], want)
		}
	}
}

func TestPeerInstallMismatch(t *testing.T) {
	_, p := testMachine(t, 3)
	peer := NewPeer(nil)
	err := peer.Install("not-the-fingerprint", marshalPlan(t, p))
	if !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("got %v, want ErrPlanMismatch", err)
	}
	if _, err := peer.Exec(&plan.ClusterTask{Fingerprint: p.Fingerprint(), ChunkIndex: 0, TotalChunks: 1, Input: []byte("x")}); !errors.Is(err, ErrUnknownPlan) {
		t.Fatalf("exec after rejected install: got %v, want ErrUnknownPlan", err)
	}
}

func TestPeerResolver(t *testing.T) {
	d, p := testMachine(t, 4)
	peer := NewPeer(func(fp string) *core.Plan {
		if fp == p.Fingerprint() {
			return p
		}
		return nil
	})
	input := d.RandomInput(rand.New(rand.NewSource(40)), 64)
	vec, err := peer.Exec(&plan.ClusterTask{Fingerprint: p.Fingerprint(), ChunkIndex: 0, TotalChunks: 1, Input: input})
	if err != nil {
		t.Fatal(err)
	}
	if want := d.Run(input, 0); fsm.State(vec.States[0]) != want {
		t.Fatalf("resolver-installed plan computes %d, want %d", vec.States[0], want)
	}
	if _, err := peer.Exec(&plan.ClusterTask{Fingerprint: "unknown", ChunkIndex: 0, TotalChunks: 1, Input: input}); !errors.Is(err, ErrUnknownPlan) {
		t.Fatalf("unknown fingerprint through resolver: got %v", err)
	}
}

// The full HTTP surface: 404 before install, 201 on install, 409 on
// mismatched install, 200 with a decodable vector on exec, 400 on a
// torn task, 405 on GET.
func TestPeerHandlerHTTP(t *testing.T) {
	d, p := testMachine(t, 5)
	fp := p.Fingerprint()
	srv := httptest.NewServer(NewPeer(nil).Handler())
	defer srv.Close()

	task := &plan.ClusterTask{Fingerprint: fp, ChunkIndex: 0, TotalChunks: 1, Input: d.RandomInput(rand.New(rand.NewSource(50)), 64)}
	taskBytes, err := task.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	post := func(path string, body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post(ExecPath, taskBytes); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("exec before install: status %d, want 404", resp.StatusCode)
	}
	if resp := post(PlansPath+"?fingerprint=wrong", marshalPlan(t, p)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched install: status %d, want 409", resp.StatusCode)
	}
	if resp := post(PlansPath+"?fingerprint="+fp, marshalPlan(t, p)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("install: status %d, want 201", resp.StatusCode)
	}
	resp := post(ExecPath, taskBytes)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec: status %d, want 200", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	vec, err := plan.UnmarshalClusterVector(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if want := d.Run(task.Input, 0); fsm.State(vec.States[0]) != want {
		t.Fatalf("HTTP vector[0] = %d, oracle %d", vec.States[0], want)
	}

	if resp := post(ExecPath, taskBytes[:10]); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("torn task: status %d, want 400", resp.StatusCode)
	}
	getResp, err := http.Get(srv.URL + ExecPath)
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET exec: status %d, want 405", getResp.StatusCode)
	}
}
