// Package cluster executes the Figure 5 decomposition across simulated
// cluster nodes, after the paper's concluding claim that the approach
// "is suitable for any modern data parallel architecture … to large
// clusters running MapReduce like frameworks". Workers are goroutines
// that communicate only through message channels with explicit
// byte accounting; each node bootstraps its own copy of the machine
// from the serialized form (fsm.WriteTo/ReadDFA), as real cluster
// workers would.
//
// The map phase ships input chunks to workers, which return the
// chunk's composition vector; the reduce phase folds the vectors in
// chunk order (associativity of ⊗ again). The wire-traffic profile is
// the point the paper makes against naive designs: one n-entry vector
// per *chunk*, independent of chunk length, so communication shrinks
// relative to compute as chunks grow — "designed to minimize
// communication when the number of processors is much smaller than the
// amount of parallelism available" (§3.4).
package cluster

import (
	"bytes"
	"sync"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
)

// SimConfig sizes the simulated cluster.
type SimConfig struct {
	// Workers is the node count. ≤ 0 is an error.
	Workers int
	// ChunkBytes is the map-task granularity. ≤ 0 selects 1 MiB.
	ChunkBytes int
}

// Stats accounts the simulated network traffic of one job.
type Stats struct {
	// Tasks is the number of map tasks dispatched.
	Tasks int
	// BytesToWorkers counts input bytes shipped to nodes.
	BytesToWorkers int
	// BytesToCoordinator counts result bytes (composition vectors)
	// returned.
	BytesToCoordinator int
	// BootstrapBytes counts the serialized machine shipped once per
	// worker.
	BootstrapBytes int
}

type task struct {
	id    int
	chunk []byte
}

type result struct {
	id  int
	vec []fsm.State
	err error
}

// Cluster is a running set of worker nodes sharing one machine.
type Cluster struct {
	n         int
	chunkSize int
	tasks     chan task
	results   chan result
	wg        sync.WaitGroup
	boot      int // serialized machine size
	workers   int
	closed    bool
}

// New serializes the machine, boots cfg.Workers nodes (each
// deserializing its own private copy), and returns the running
// cluster. Close must be called when done.
func New(d *fsm.DFA, cfg SimConfig) (*Cluster, error) {
	if cfg.Workers <= 0 {
		return nil, ErrNoWorkers
	}
	chunk := cfg.ChunkBytes
	if chunk <= 0 {
		chunk = 1 << 20
	}
	var blob bytes.Buffer
	if _, err := d.WriteTo(&blob); err != nil {
		return nil, err
	}

	c := &Cluster{
		n:         d.NumStates(),
		chunkSize: chunk,
		tasks:     make(chan task),
		results:   make(chan result),
		boot:      blob.Len(),
		workers:   cfg.Workers,
	}
	for w := 0; w < cfg.Workers; w++ {
		// Each node gets its own deserialized machine and runner —
		// nothing is shared but the channels.
		local, err := fsm.ReadDFA(bytes.NewReader(blob.Bytes()))
		if err != nil {
			return nil, err
		}
		runner, err := core.New(local)
		if err != nil {
			return nil, err
		}
		c.wg.Add(1)
		go func(r *core.Runner) {
			defer c.wg.Done()
			for t := range c.tasks {
				c.results <- result{id: t.id, vec: r.CompositionVector(t.chunk)}
			}
		}(runner)
	}
	return c, nil
}

// Final runs the machine over input from start, distributing map tasks
// across the nodes and reducing their composition vectors in order.
func (c *Cluster) Final(input []byte, start fsm.State) (fsm.State, Stats) {
	nTasks := (len(input) + c.chunkSize - 1) / c.chunkSize
	if nTasks == 0 {
		return start, Stats{BootstrapBytes: c.boot * c.workers}
	}
	stats := Stats{
		Tasks:          nTasks,
		BytesToWorkers: len(input),
		BootstrapBytes: c.boot * c.workers,
	}

	vecs := make([][]fsm.State, nTasks)
	var send sync.WaitGroup
	send.Add(1)
	go func() {
		defer send.Done()
		for i := 0; i < nTasks; i++ {
			lo := i * c.chunkSize
			hi := lo + c.chunkSize
			if hi > len(input) {
				hi = len(input)
			}
			c.tasks <- task{id: i, chunk: input[lo:hi]}
		}
	}()
	for got := 0; got < nTasks; got++ {
		res := <-c.results
		vecs[res.id] = res.vec
		stats.BytesToCoordinator += len(res.vec) * 2 // uint16 states on the wire
	}
	send.Wait()

	// Reduce: fold the per-chunk compositions left to right. (A real
	// deployment would tree-reduce; chunk counts here are small.)
	acc := gather.Identity[fsm.State](c.n)
	for _, vec := range vecs {
		gather.Into(acc, acc, vec)
	}
	return acc[start], stats
}

// Accepts reports acceptance from the machine's start state. The
// machine is the coordinator's; nodes never see accept bits.
func (c *Cluster) Accepts(d *fsm.DFA, input []byte) (bool, Stats) {
	st, stats := c.Final(input, d.Start())
	return d.Accepting(st), stats
}

// Close shuts the nodes down. Safe to call once.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	close(c.tasks)
	c.wg.Wait()
	close(c.results)
}
