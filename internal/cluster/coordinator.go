package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
	"dpfsm/internal/plan"
	"dpfsm/internal/telemetry"
	"dpfsm/internal/trace"
)

// Span names the coordinator emits on traced distributed jobs.
const (
	SpanExec   = "cluster.exec"   // one distributed job
	SpanTask   = "cluster.task"   // one chunk's remote (or fallback) execution
	SpanReduce = "cluster.reduce" // the in-order vector fold

	AttrPeer     = "peer"
	AttrChunk    = "chunk"
	AttrChunks   = "chunks"
	AttrRetries  = "retries"
	AttrFallback = "fallback" // chunk re-executed locally
	AttrDegraded = "degraded"
)

// Config sizes a distributed coordinator. Zero values take the
// documented defaults; only Peers is required.
type Config struct {
	// Peers are the base URLs of the cluster's nodes (including, by
	// convention, everything except this node itself). Deduped and
	// sorted internally, so peer order is irrelevant to placement.
	Peers []string
	// Transport moves protocol messages; nil selects an HTTPTransport
	// with default timeouts.
	Transport Transport
	// ChunkBytes is the fan-out granularity. <= 0 selects 1 MiB.
	ChunkBytes int
	// TaskTimeout bounds each remote attempt (nested inside the job's
	// context). <= 0 selects 5s.
	TaskTimeout time.Duration
	// MaxRetries is how many times one chunk is re-sent after its first
	// failed attempt before falling back to local execution. < 0
	// disables retries; 0 selects the default of 2.
	MaxRetries int
	// BaseBackoff is the first retry's delay, doubling per attempt with
	// jitter up to MaxBackoff. <= 0 selects 10ms (cap 500ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold opens a peer's circuit breaker after this many
	// consecutive failures; while open, the peer's chunks skip straight
	// to local fallback. <= 0 selects 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting
	// one half-open probe through. <= 0 selects 5s.
	BreakerCooldown time.Duration
	// Vnodes is the placement ring's virtual-node count per peer.
	// <= 0 selects DefaultVnodes.
	Vnodes int
	// Seed seeds the backoff jitter (deterministic for tests); 0
	// selects 1.
	Seed int64
	// Telemetry receives the cluster counters; nil disables collection.
	Telemetry *telemetry.Metrics
}

// Defaults for the zero Config fields.
const (
	DefaultChunkBytes       = 1 << 20
	DefaultTaskTimeout      = 5 * time.Second
	DefaultMaxRetries       = 2
	DefaultBaseBackoff      = 10 * time.Millisecond
	DefaultMaxBackoff       = 500 * time.Millisecond
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
)

// Breaker states, reported by PeerHealth.State.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// Coordinator fans a large input's chunks out over the peer set and
// reduces the returned composition vectors locally in chunk order —
// the paper's §3.4 MapReduce decomposition over an actual network.
// Every failure mode degrades to local re-execution of the affected
// chunks: a coordinator with every peer down still answers correctly,
// just at scalar speed. Exec never returns a wrong answer because a
// peer was slow, crashed, or fed it a torn frame; the strict wire
// decoder plus the oracle-equivalent local fallback make "slower,
// never wrong" a structural property.
type Coordinator struct {
	transport Transport
	ring      *Ring
	peers     []string
	states    map[string]*peerState

	chunkBytes  int
	taskTimeout time.Duration
	maxRetries  int
	baseBackoff time.Duration
	maxBackoff  time.Duration
	threshold   int
	cooldown    time.Duration
	tel         *telemetry.Metrics

	// now is the breaker clock, swappable in tests.
	now func() time.Time

	rngMu sync.Mutex
	rng   *rand.Rand

	// planMu guards planBytes (marshaled-plan cache) and local
	// (fallback runner cache), both keyed by fingerprint.
	planMu    sync.Mutex
	planBytes map[string][]byte
	local     map[string]*core.Runner
}

// NewCoordinator validates cfg and builds the coordinator.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	ring := NewRing(cfg.Peers, cfg.Vnodes)
	peers := ring.Peers()
	if len(peers) == 0 {
		return nil, ErrNoPeers
	}
	c := &Coordinator{
		transport:   cfg.Transport,
		ring:        ring,
		peers:       peers,
		states:      make(map[string]*peerState, len(peers)),
		chunkBytes:  cfg.ChunkBytes,
		taskTimeout: cfg.TaskTimeout,
		maxRetries:  cfg.MaxRetries,
		baseBackoff: cfg.BaseBackoff,
		maxBackoff:  cfg.MaxBackoff,
		threshold:   cfg.BreakerThreshold,
		cooldown:    cfg.BreakerCooldown,
		tel:         cfg.Telemetry,
		now:         time.Now,
		planBytes:   make(map[string][]byte),
		local:       make(map[string]*core.Runner),
	}
	if c.transport == nil {
		c.transport = NewHTTPTransport(nil)
	}
	if c.chunkBytes <= 0 {
		c.chunkBytes = DefaultChunkBytes
	}
	if c.taskTimeout <= 0 {
		c.taskTimeout = DefaultTaskTimeout
	}
	switch {
	case c.maxRetries < 0:
		c.maxRetries = 0
	case c.maxRetries == 0:
		c.maxRetries = DefaultMaxRetries
	}
	if c.baseBackoff <= 0 {
		c.baseBackoff = DefaultBaseBackoff
	}
	if c.maxBackoff <= 0 {
		c.maxBackoff = DefaultMaxBackoff
	}
	if c.threshold <= 0 {
		c.threshold = DefaultBreakerThreshold
	}
	if c.cooldown <= 0 {
		c.cooldown = DefaultBreakerCooldown
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	c.rng = rand.New(rand.NewSource(seed))
	for _, p := range peers {
		c.states[p] = &peerState{}
	}
	return c, nil
}

// Peers returns the deduped, sorted peer set.
func (c *Coordinator) Peers() []string { return append([]string(nil), c.peers...) }

// ChunkBytes reports the fan-out granularity.
func (c *Coordinator) ChunkBytes() int { return c.chunkBytes }

// Owner returns the peer that owns key on the placement ring — the
// home node for a machine's plan and its perf profile alike (both are
// placed by the plan fingerprint, so they co-locate by construction).
func (c *Coordinator) Owner(fingerprint string) string { return c.ring.Owner(fingerprint) }

// Ring exposes the placement ring (read-only use).
func (c *Coordinator) Ring() *Ring { return c.ring }

// ExecStats accounts one distributed job.
type ExecStats struct {
	// Chunks is the fan-out width; RemoteChunks answered over the
	// network, LocalChunks fell back to local re-execution.
	Chunks       int `json:"chunks"`
	RemoteChunks int `json:"remote_chunks"`
	LocalChunks  int `json:"local_chunks"`
	// Retries counts re-sent chunk attempts across the job.
	Retries int `json:"retries"`
	// Degraded is true when any chunk fell back locally: the answer is
	// still exact, but the job did not get full cluster parallelism.
	Degraded bool `json:"degraded"`
	// BytesToPeers counts chunk bytes shipped; VectorBytes counts
	// composition-vector bytes returned (2 per state per remote chunk).
	BytesToPeers int `json:"bytes_to_peers"`
	VectorBytes  int `json:"vector_bytes"`
}

// Exec runs input through p's machine from start, fanning chunks out
// over the peer set and reducing the returned composition vectors in
// chunk order. The only error it returns is the context's: every
// network failure degrades to local re-execution instead.
func (c *Coordinator) Exec(ctx context.Context, p *core.Plan, input []byte, start fsm.State) (fsm.State, ExecStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	nChunks := (len(input) + c.chunkBytes - 1) / c.chunkBytes
	stats := ExecStats{Chunks: nChunks}
	if nChunks == 0 {
		return start, stats, nil
	}
	if err := ctx.Err(); err != nil {
		return start, stats, err
	}
	ctx, sp := trace.Start(ctx, SpanExec)
	defer sp.End()
	if sp != nil {
		sp.SetAttrs(
			trace.Str("fingerprint", p.Fingerprint()),
			trace.Int(AttrChunks, int64(nChunks)),
			trace.Int("bytes", int64(len(input))),
		)
	}

	prefs := c.ring.Prefs(p.Fingerprint())
	vecs := make([][]fsm.State, nChunks)
	chunkStats := make([]taskStats, nChunks)
	var wg sync.WaitGroup
	for i := 0; i < nChunks; i++ {
		lo := i * c.chunkBytes
		hi := min(lo+c.chunkBytes, len(input))
		task := &plan.ClusterTask{
			Fingerprint: p.Fingerprint(),
			ChunkIndex:  uint32(i),
			TotalChunks: uint32(nChunks),
			Input:       input[lo:hi],
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vecs[i], chunkStats[i] = c.execChunk(ctx, p, task, prefs)
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return start, stats, err
	}

	for i, ts := range chunkStats {
		stats.Retries += ts.retries
		if ts.remote {
			stats.RemoteChunks++
			stats.BytesToPeers += len(input[i*c.chunkBytes:min((i+1)*c.chunkBytes, len(input))])
			stats.VectorBytes += 2 * p.States()
		} else {
			stats.LocalChunks++
			stats.Degraded = true
		}
	}
	if stats.Degraded {
		if tm := c.tel; tm != nil {
			tm.ClusterDegraded.Inc()
		}
		if sp != nil {
			sp.SetAttrs(trace.Bool(AttrDegraded, true))
		}
	}

	// Reduce: fold the per-chunk compositions left to right —
	// associativity of ⊗ again, now across a network boundary.
	rsp := childSpan(sp, SpanReduce)
	acc := gather.Identity[fsm.State](p.States())
	for _, vec := range vecs {
		gather.Into(acc, acc, vec)
	}
	rsp.End()
	return acc[start], stats, nil
}

// taskStats is one chunk's outcome.
type taskStats struct {
	remote  bool
	retries int
}

// execChunk resolves one chunk's composition vector: remote with
// retry/backoff against the chunk's assigned peer, local re-execution
// when the peer is down, the breaker is open, or retries are
// exhausted. It always returns a correct vector.
func (c *Coordinator) execChunk(ctx context.Context, p *core.Plan, task *plan.ClusterTask, prefs []string) ([]fsm.State, taskStats) {
	peer := prefs[int(task.ChunkIndex)%len(prefs)]
	ps := c.states[peer]
	var ts taskStats

	_, sp := trace.Start(ctx, SpanTask)
	defer sp.End()
	if sp != nil {
		sp.SetAttrs(
			trace.Str(AttrPeer, peer),
			trace.Int(AttrChunk, int64(task.ChunkIndex)),
			trace.Int("bytes", int64(len(task.Input))),
		)
	}
	defer func() {
		if sp != nil {
			sp.SetAttrs(trace.Int(AttrRetries, int64(ts.retries)), trace.Bool(AttrFallback, !ts.remote))
		}
	}()

	for attempt := 0; attempt <= c.maxRetries; attempt++ {
		if ctx.Err() != nil {
			break
		}
		if attempt > 0 {
			ts.retries++
			ps.retries.Add(1)
			if tm := c.tel; tm != nil {
				tm.ClusterRetries.Inc()
			}
			if !c.sleepBackoff(ctx, attempt) {
				break
			}
		}
		if opened := ps.allow(c.now(), c.threshold, c.cooldown); !opened {
			if tm := c.tel; tm != nil && attempt == 0 {
				tm.ClusterBreakerSkips.Inc()
			}
			break
		}
		vec, err := c.tryPeer(ctx, peer, p, task)
		if err == nil {
			ps.success()
			ps.tasks.Add(1)
			if tm := c.tel; tm != nil {
				tm.ClusterTasks.Inc()
			}
			ts.remote = true
			return vec, ts
		}
		if errors.Is(err, context.Canceled) || (errors.Is(err, context.DeadlineExceeded) && ctx.Err() != nil) {
			// The job itself is done, not the peer: do not punish the
			// breaker for our own cancellation.
			break
		}
		ps.failures.Add(1)
		if tm := c.tel; tm != nil {
			tm.ClusterTaskErrors.Inc()
		}
		if ps.failure(c.now(), c.threshold) {
			if tm := c.tel; tm != nil {
				tm.ClusterBreakerOpens.Inc()
			}
		}
	}

	// Graceful degradation: re-execute the chunk locally. Slower —
	// scalar, on the coordinator — but byte-for-byte what the peer
	// would have answered.
	ps.fallbacks.Add(1)
	if tm := c.tel; tm != nil {
		tm.ClusterLocalFallbacks.Inc()
	}
	return c.localVector(p, task.Input), ts
}

// tryPeer makes one remote attempt: ensure the plan is installed,
// send the task under the per-attempt timeout, validate the echo.
func (c *Coordinator) tryPeer(ctx context.Context, peer string, p *core.Plan, task *plan.ClusterTask) ([]fsm.State, error) {
	actx, cancel := context.WithTimeout(ctx, c.taskTimeout)
	defer cancel()
	epoch, err := c.ensureInstalled(actx, peer, p)
	if err != nil {
		return nil, err
	}
	vec, err := c.transport.ExecChunk(actx, peer, task)
	if errors.Is(err, ErrUnknownPlan) {
		// The peer restarted (or never had the plan despite our cached
		// installed flag): re-ship once within the same attempt. The
		// epoch guard makes the invalidation a no-op if a sibling chunk
		// already re-shipped.
		c.states[peer].invalidatePlan(task.Fingerprint, epoch)
		if _, err := c.ensureInstalled(actx, peer, p); err != nil {
			return nil, err
		}
		vec, err = c.transport.ExecChunk(actx, peer, task)
	}
	if err != nil {
		return nil, err
	}
	return c.validateVector(p, task, vec)
}

// validateVector checks a peer's answer against the task it was sent
// for; a structurally valid frame that answers the wrong question is
// as much a failure as a torn one.
func (c *Coordinator) validateVector(p *core.Plan, task *plan.ClusterTask, vec *plan.ClusterVector) ([]fsm.State, error) {
	n := p.States()
	switch {
	case vec.Fingerprint != task.Fingerprint:
		return nil, fmt.Errorf("%w: fingerprint echo %q, want %q", ErrBadVector, vec.Fingerprint, task.Fingerprint)
	case vec.ChunkIndex != task.ChunkIndex:
		return nil, fmt.Errorf("%w: chunk echo %d, want %d", ErrBadVector, vec.ChunkIndex, task.ChunkIndex)
	case len(vec.States) != n:
		return nil, fmt.Errorf("%w: %d entries, want %d", ErrBadVector, len(vec.States), n)
	}
	out := make([]fsm.State, n)
	for i, st := range vec.States {
		if int(st) >= n {
			return nil, fmt.Errorf("%w: entry %d names state %d of %d", ErrBadVector, i, st, n)
		}
		out[i] = fsm.State(st)
	}
	return out, nil
}

// ensureInstalled ships p to peer once per (peer, fingerprint) —
// single-flighted under the peer's install lock, so a job's concurrent
// chunks produce one ship, not one per chunk. Returns the epoch of the
// install the caller may rely on (for invalidatePlan on a later 404).
func (c *Coordinator) ensureInstalled(ctx context.Context, peer string, p *core.Plan) (uint64, error) {
	ps := c.states[peer]
	fp := p.Fingerprint()
	ps.installMu.Lock()
	defer ps.installMu.Unlock()
	if e := ps.installedEpoch(fp); e != 0 {
		return e, nil
	}
	data, err := c.marshaledPlan(p)
	if err != nil {
		return 0, err
	}
	if err := c.transport.InstallPlan(ctx, peer, fp, data); err != nil {
		return 0, err
	}
	ps.notePlan(fp)
	ps.shipped.Add(1)
	if tm := c.tel; tm != nil {
		tm.ClusterPlanShips.Inc()
	}
	return ps.installedEpoch(fp), nil
}

// marshaledPlan caches MarshalBinary per fingerprint — the bytes are
// shipped to up to every peer, but serialized once.
func (c *Coordinator) marshaledPlan(p *core.Plan) ([]byte, error) {
	fp := p.Fingerprint()
	c.planMu.Lock()
	data, ok := c.planBytes[fp]
	c.planMu.Unlock()
	if ok {
		return data, nil
	}
	data, err := p.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("cluster: serializing plan: %w", err)
	}
	c.planMu.Lock()
	c.planBytes[fp] = data
	c.planMu.Unlock()
	return data, nil
}

// localVector computes one chunk's composition vector on the
// coordinator — the degradation path.
func (c *Coordinator) localVector(p *core.Plan, chunk []byte) []fsm.State {
	r := c.localRunner(p)
	return r.CompositionVector(chunk)
}

// localRunner caches a single-core fallback runner per fingerprint.
func (c *Coordinator) localRunner(p *core.Plan) *core.Runner {
	fp := p.Fingerprint()
	c.planMu.Lock()
	defer c.planMu.Unlock()
	if r, ok := c.local[fp]; ok {
		return r
	}
	// NewFromPlan over an already validated plan cannot fail for the
	// option set used here; a failure would mean the plan the engine is
	// actively executing is invalid, which is a programming error.
	r, err := core.NewFromPlan(p, core.WithProcs(1))
	if err != nil {
		panic("cluster: fallback runner from live plan: " + err.Error())
	}
	c.local[fp] = r
	return r
}

// sleepBackoff waits the attempt's exponential backoff with jitter;
// false when ctx ended first.
func (c *Coordinator) sleepBackoff(ctx context.Context, attempt int) bool {
	d := c.baseBackoff << (attempt - 1)
	if d > c.maxBackoff || d <= 0 {
		d = c.maxBackoff
	}
	// Full jitter in [d/2, d): desynchronizes a thundering herd of
	// retries without stretching the worst case.
	c.rngMu.Lock()
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.rngMu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// PeerHealth is one peer's live protocol health, exposed by
// /v1/status.
type PeerHealth struct {
	Peer                string `json:"peer"`
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Tasks               int64  `json:"tasks"`
	Retries             int64  `json:"retries"`
	Failures            int64  `json:"failures"`
	LocalFallbacks      int64  `json:"local_fallbacks"`
	PlanShips           int64  `json:"plan_ships"`
	BreakerOpens        int64  `json:"breaker_opens"`
}

// Health reports per-peer breaker state and traffic counters, sorted
// by peer.
func (c *Coordinator) Health() []PeerHealth {
	out := make([]PeerHealth, 0, len(c.peers))
	for _, peer := range c.peers {
		ps := c.states[peer]
		state, consec := ps.view(c.now(), c.cooldown)
		out = append(out, PeerHealth{
			Peer:                peer,
			State:               state,
			ConsecutiveFailures: consec,
			Tasks:               ps.tasks.Load(),
			Retries:             ps.retries.Load(),
			Failures:            ps.failures.Load(),
			LocalFallbacks:      ps.fallbacks.Load(),
			PlanShips:           ps.shipped.Load(),
			BreakerOpens:        ps.opens.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// childSpan is sp.Child nil-safe.
func childSpan(sp *trace.Span, name string) *trace.Span {
	if sp == nil {
		return nil
	}
	return sp.Child(name)
}
