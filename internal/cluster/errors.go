package cluster

import "errors"

// Typed configuration and protocol errors. Sentinels (rather than
// fmt.Errorf strings) so the engine, fsmserve, and tests can branch
// with errors.Is; transport implementations wrap them with per-peer
// context.
var (
	// ErrNoWorkers is returned by New when the simulated cluster is
	// configured with no worker nodes.
	ErrNoWorkers = errors.New("cluster: need at least one worker")
	// ErrNoPeers is returned by NewCoordinator when the peer set is
	// empty — a distributed coordinator with nobody to talk to.
	ErrNoPeers = errors.New("cluster: need at least one peer")
	// ErrUnknownPlan is the peer's "I do not hold that plan" answer
	// (HTTP 404 on /v1/cluster/exec); the coordinator responds by
	// shipping the plan and retrying.
	ErrUnknownPlan = errors.New("cluster: peer does not hold the plan")
	// ErrPlanMismatch is the peer's 409: the shipped plan's decoded
	// fingerprint disagrees with the fingerprint it was declared under.
	ErrPlanMismatch = errors.New("cluster: plan fingerprint mismatch")
	// ErrBreakerOpen reports that a peer's circuit breaker refused the
	// attempt without touching the network.
	ErrBreakerOpen = errors.New("cluster: circuit breaker open")
	// ErrBadVector reports a structurally valid response that does not
	// answer the task it was sent for (wrong length, wrong echo, or a
	// state out of range).
	ErrBadVector = errors.New("cluster: malformed composition vector")
)

// PeerError is a transport failure with an HTTP status attached: a
// reachable peer that answered with a non-success status outside the
// protocol's mapped codes (404/409).
type PeerError struct {
	Peer   string
	Status int
	Body   string
}

func (e *PeerError) Error() string {
	if e.Body != "" {
		return "cluster: peer " + e.Peer + " answered " + itoa(e.Status) + ": " + e.Body
	}
	return "cluster: peer " + e.Peer + " answered " + itoa(e.Status)
}

// itoa avoids importing strconv for one three-digit number.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
