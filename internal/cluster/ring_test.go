package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("fingerprint-%04x", i)
	}
	return keys
}

func ringPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return peers
}

// Placement must be a pure function of (peer set, key): any
// coordinator, any restart, any peer-list order derives the same
// owner for the same fingerprint.
func TestRingDeterministicAcrossConstruction(t *testing.T) {
	peers := ringPeers(5)
	a := NewRing(peers, 0)

	shuffled := append([]string(nil), peers...)
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b := NewRing(shuffled, 0)

	for _, key := range ringKeys(2000) {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q differs across construction order: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingDedupeAndEmpty(t *testing.T) {
	r := NewRing([]string{"b", "a", "b", "", "a"}, 8)
	if got := r.Peers(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("peers = %v, want [a b]", got)
	}
	empty := NewRing(nil, 0)
	if owner := empty.Owner("k"); owner != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", owner)
	}
	if prefs := empty.Prefs("k"); prefs != nil {
		t.Fatalf("empty ring prefs = %v, want nil", prefs)
	}
}

// Removing one peer from an n-peer ring must move only the keys it
// owned — about 1/n of them, bounded by 2/n — and every moved key must
// be one the dead peer held. The same bound holds on join, with moved
// keys landing exactly on the new peer.
func TestRingMovementBoundOnLeave(t *testing.T) {
	const n = 5
	peers := ringPeers(n)
	keys := ringKeys(2000)
	before := NewRing(peers, 0)
	after := NewRing(peers[:n-1], 0)
	removed := peers[n-1]

	moved := 0
	for _, key := range keys {
		o1, o2 := before.Owner(key), after.Owner(key)
		if o1 == o2 {
			continue
		}
		moved++
		if o1 != removed {
			t.Fatalf("key %q moved from surviving peer %q to %q", key, o1, o2)
		}
	}
	if bound := 2 * len(keys) / n; moved > bound {
		t.Fatalf("leave moved %d of %d keys, bound is %d (2/n)", moved, len(keys), bound)
	}
	if moved == 0 {
		t.Fatal("removed peer owned zero keys — ring is not spreading load")
	}
}

func TestRingMovementBoundOnJoin(t *testing.T) {
	const n = 5
	peers := ringPeers(n)
	keys := ringKeys(2000)
	before := NewRing(peers[:n-1], 0)
	after := NewRing(peers, 0)
	joined := peers[n-1]

	moved := 0
	for _, key := range keys {
		o1, o2 := before.Owner(key), after.Owner(key)
		if o1 == o2 {
			continue
		}
		moved++
		if o2 != joined {
			t.Fatalf("key %q moved to %q, not the joining peer", key, o2)
		}
	}
	if bound := 2 * len(keys) / n; moved > bound {
		t.Fatalf("join moved %d of %d keys, bound is %d (2/n)", moved, len(keys), bound)
	}
	if moved == 0 {
		t.Fatal("joining peer took zero keys")
	}
}

func TestRingPrefs(t *testing.T) {
	peers := ringPeers(4)
	r := NewRing(peers, 0)
	for _, key := range ringKeys(50) {
		prefs := r.Prefs(key)
		if len(prefs) != len(peers) {
			t.Fatalf("prefs(%q) has %d entries, want %d", key, len(prefs), len(peers))
		}
		if prefs[0] != r.Owner(key) {
			t.Fatalf("prefs(%q)[0] = %q, owner = %q", key, prefs[0], r.Owner(key))
		}
		seen := make(map[string]bool)
		for _, p := range prefs {
			if seen[p] {
				t.Fatalf("prefs(%q) repeats %q", key, p)
			}
			seen[p] = true
		}
		if r.OwnerAt(key, 2) != prefs[2] || r.OwnerAt(key, 2+len(peers)) != prefs[2] {
			t.Fatalf("OwnerAt(%q, 2) does not match prefs with wraparound", key)
		}
	}
}

// The coordinator places a machine's plan and its perf profile by the
// same key — the plan fingerprint — so they co-locate on the same home
// peer by construction, and the home survives a coordinator restart.
func TestCoordinatorPlacementStableAcrossRestart(t *testing.T) {
	peers := ringPeers(3)
	c1, err := NewCoordinator(Config{Peers: peers, Transport: nopTransport{}})
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []string{peers[2], peers[0], peers[1]}
	c2, err := NewCoordinator(Config{Peers: shuffled, Transport: nopTransport{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range ringKeys(200) {
		if c1.Owner(fp) != c2.Owner(fp) {
			t.Fatalf("fingerprint %q homed on %q before restart, %q after", fp, c1.Owner(fp), c2.Owner(fp))
		}
	}
}
