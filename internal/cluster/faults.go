package cluster

import (
	"errors"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Fault injection for the cluster's network path. FaultRoundTripper
// wraps an http.RoundTripper and perturbs requests to selected peers —
// dropping them, delaying them, answering 500, or truncating the
// response body mid-frame — on a per-peer schedule. The multi-node
// conformance lane and the table-driven robustness tests drive every
// retry/backoff/breaker path through it against real httptest servers,
// then assert the degraded answers still match the scalar oracle.

// FaultKind is one injected failure mode.
type FaultKind int

const (
	// FaultNone forwards the request untouched (useful in scripted
	// sequences: fail, fail, then succeed).
	FaultNone FaultKind = iota
	// FaultDrop fails the request without touching the network — the
	// connection-refused / peer-down shape.
	FaultDrop
	// FaultDelay sleeps the configured Delay before forwarding — the
	// slow-peer shape that trips per-attempt timeouts.
	FaultDelay
	// Fault500 answers HTTP 500 without forwarding — the crashed-handler
	// shape.
	Fault500
	// FaultTruncate forwards the request but cuts the response body in
	// half — the torn-frame shape the strict decoder must reject.
	FaultTruncate
)

// ErrInjectedDrop is the failure FaultDrop surfaces, recognizable so
// tests can tell injected faults from real ones.
var ErrInjectedDrop = errors.New("cluster: injected connection drop")

// FaultRoundTripper injects faults per peer host. Zero value is not
// usable; construct with NewFaultRoundTripper.
type FaultRoundTripper struct {
	inner http.RoundTripper
	// Delay is the sleep FaultDelay injects.
	Delay time.Duration

	mu     sync.Mutex
	script map[string][]FaultKind // host → queued one-shot faults
	always map[string]FaultKind   // host → persistent fault
	calls  map[string]int         // host → requests seen
}

// NewFaultRoundTripper wraps inner (nil gets
// http.DefaultTransport).
func NewFaultRoundTripper(inner http.RoundTripper) *FaultRoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &FaultRoundTripper{
		inner:  inner,
		Delay:  10 * time.Millisecond,
		script: make(map[string][]FaultKind),
		always: make(map[string]FaultKind),
		calls:  make(map[string]int),
	}
}

// HostOf extracts the host key a base URL's requests are scheduled
// under ("127.0.0.1:port" for an httptest server URL).
func HostOf(baseURL string) string {
	u, err := url.Parse(baseURL)
	if err != nil {
		return strings.TrimPrefix(baseURL, "http://")
	}
	return u.Host
}

// Push queues one-shot faults for host, consumed in order — one per
// request — before the persistent fault (if any) applies.
func (f *FaultRoundTripper) Push(host string, faults ...FaultKind) {
	f.mu.Lock()
	f.script[host] = append(f.script[host], faults...)
	f.mu.Unlock()
}

// SetAlways makes every request to host fail with k until Clear — the
// peer-killed-mid-job switch.
func (f *FaultRoundTripper) SetAlways(host string, k FaultKind) {
	f.mu.Lock()
	f.always[host] = k
	f.mu.Unlock()
}

// Clear removes host's persistent fault and drains its script.
func (f *FaultRoundTripper) Clear(host string) {
	f.mu.Lock()
	delete(f.always, host)
	delete(f.script, host)
	f.mu.Unlock()
}

// Calls reports how many requests have been seen for host — the
// retry-count observable the backoff tests assert on.
func (f *FaultRoundTripper) Calls(host string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[host]
}

// next pops the fault for one request to host.
func (f *FaultRoundTripper) next(host string) FaultKind {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[host]++
	if q := f.script[host]; len(q) > 0 {
		k := q[0]
		f.script[host] = q[1:]
		return k
	}
	return f.always[host]
}

// RoundTrip applies the scheduled fault for the request's host.
func (f *FaultRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	switch f.next(req.URL.Host) {
	case FaultDrop:
		return nil, ErrInjectedDrop
	case Fault500:
		return &http.Response{
			StatusCode: http.StatusInternalServerError,
			Status:     "500 Internal Server Error (injected)",
			Body:       io.NopCloser(strings.NewReader("injected failure")),
			Header:     make(http.Header),
			Request:    req,
		}, nil
	case FaultDelay:
		select {
		case <-time.After(f.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return f.inner.RoundTrip(req)
	case FaultTruncate:
		resp, err := f.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		cut := body[:len(body)/2]
		resp.Body = io.NopCloser(strings.NewReader(string(cut)))
		resp.ContentLength = int64(len(cut))
		return resp, nil
	default:
		return f.inner.RoundTrip(req)
	}
}
