package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"dpfsm/internal/plan"
)

// Transport moves cluster protocol messages between a coordinator and
// one peer. The production implementation is HTTPTransport; tests
// inject fault-wrapped or in-memory transports through the same
// interface, so the coordinator's retry/breaker/degradation logic is
// exercised identically either way.
type Transport interface {
	// ExecChunk sends one chunk task to peer and returns its decoded
	// composition vector. Implementations must map the protocol's
	// negative answers to ErrUnknownPlan (peer lacks the plan) and
	// ErrPlanMismatch so the coordinator can react specifically.
	ExecChunk(ctx context.Context, peer string, task *plan.ClusterTask) (*plan.ClusterVector, error)
	// InstallPlan ships a serialized plan (core.Plan.MarshalBinary
	// bytes) to peer under the declared fingerprint.
	InstallPlan(ctx context.Context, peer string, fingerprint string, data []byte) error
}

// Peer-protocol routes, mounted by cluster.Peer's handler and by
// fsmserve. Exported so callers build URLs symbolically.
const (
	ExecPath  = "/v1/cluster/exec"
	PlansPath = "/v1/cluster/plans"
)

// DefaultHTTPTimeout caps one HTTP exchange when the caller's context
// carries no tighter deadline.
const DefaultHTTPTimeout = 30 * time.Second

// HTTPTransport speaks the peer protocol over HTTP: binary cluster
// messages POSTed to the peer's /v1/cluster/* endpoints. Peers are
// addressed by base URL ("http://host:port").
type HTTPTransport struct {
	client *http.Client
}

// NewHTTPTransport wraps client (nil gets a dedicated client with
// DefaultHTTPTimeout). Fault-injection tests pass a client whose
// RoundTripper is a FaultRoundTripper.
func NewHTTPTransport(client *http.Client) *HTTPTransport {
	if client == nil {
		client = &http.Client{Timeout: DefaultHTTPTimeout}
	}
	return &HTTPTransport{client: client}
}

// ExecChunk POSTs the marshaled task and decodes the vector response.
// 404 maps to ErrUnknownPlan, 409 to ErrPlanMismatch; any other
// non-200 surfaces as a PeerError. A response that fails to decode
// (truncated, corrupt) is an error too — the strict decoder is the
// integrity check for the network path.
func (t *HTTPTransport) ExecChunk(ctx context.Context, peer string, task *plan.ClusterTask) (*plan.ClusterVector, error) {
	body, err := task.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal task: %w", err)
	}
	resp, err := t.post(ctx, peer+ExecPath, body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		drain(resp.Body)
		return nil, fmt.Errorf("%w (peer %s, fingerprint %s)", ErrUnknownPlan, peer, task.Fingerprint)
	case http.StatusConflict:
		drain(resp.Body)
		return nil, fmt.Errorf("%w (peer %s)", ErrPlanMismatch, peer)
	default:
		return nil, peerError(peer, resp)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxVectorResponse))
	if err != nil {
		return nil, fmt.Errorf("cluster: reading vector from %s: %w", peer, err)
	}
	vec, err := plan.UnmarshalClusterVector(data)
	if err != nil {
		return nil, fmt.Errorf("cluster: decoding vector from %s: %w", peer, err)
	}
	return vec, nil
}

// maxVectorResponse bounds a vector response read: framing + the
// largest legal vector (2^16 uint16 states) with slack.
const maxVectorResponse = 1 << 20

// InstallPlan POSTs the serialized plan under its declared
// fingerprint. 409 maps to ErrPlanMismatch.
func (t *HTTPTransport) InstallPlan(ctx context.Context, peer string, fingerprint string, data []byte) error {
	u := peer + PlansPath + "?fingerprint=" + url.QueryEscape(fingerprint)
	resp, err := t.post(ctx, u, data)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusCreated, http.StatusNoContent:
		drain(resp.Body)
		return nil
	case http.StatusConflict:
		drain(resp.Body)
		return fmt.Errorf("%w (peer %s, fingerprint %s)", ErrPlanMismatch, peer, fingerprint)
	default:
		return peerError(peer, resp)
	}
}

func (t *HTTPTransport) post(ctx context.Context, u string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.client.Do(req)
	if err != nil {
		// Keep context errors recognizable through the client wrapper so
		// the coordinator can distinguish cancellation from peer failure.
		if ctxErr := ctx.Err(); ctxErr != nil && !errors.Is(err, ctxErr) {
			err = fmt.Errorf("%w (%v)", ctxErr, err)
		}
		return nil, err
	}
	return resp, nil
}

// peerError renders a non-protocol status as a PeerError, capturing a
// bounded body prefix for the log line.
func peerError(peer string, resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	return &PeerError{Peer: peer, Status: resp.StatusCode, Body: string(bytes.TrimSpace(b))}
}

// drain consumes a response body so the client's connection is
// reusable.
func drain(r io.Reader) { _, _ = io.Copy(io.Discard, io.LimitReader(r, 4<<10)) }
