package perfprofile

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// observe runs a fixed little workload into a recorder: three single
// jobs of 100 B at 1 ms each, one multicore job of 1000 B at 2 ms, one
// failed job, plus runner-level counters through the aux sink.
func observe(r *MachineRecorder) {
	for i := 0; i < 3; i++ {
		r.ObserveJob(LaneSingle, 100, time.Millisecond, 100*time.Microsecond, false)
	}
	r.ObserveJob(LaneMulticore, 1000, 2*time.Millisecond, 0, false)
	r.ObserveJob(LaneSingle, 50, 0, 0, true)
	aux := r.Telemetry()
	aux.Symbols.Add(1300)
	aux.Shuffles.Add(2600)
	aux.FactorCalls.Add(10)
	aux.FactorWins.Add(9)
}

func TestProfileAggregation(t *testing.T) {
	s := NewStore("")
	r := s.Attach("m", "fp1", "convergence")
	observe(r)
	p := r.Profile()

	if p.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", p.Schema, SchemaVersion)
	}
	if p.Jobs != 5 || p.Errors != 1 {
		t.Fatalf("jobs/errors = %d/%d, want 5/1", p.Jobs, p.Errors)
	}
	if p.Bytes != 1300 {
		t.Fatalf("bytes = %d, want 1300", p.Bytes)
	}
	single, multi := p.Lanes[LaneSingle], p.Lanes[LaneMulticore]
	if single.Jobs != 3 || single.Bytes != 300 {
		t.Fatalf("single lane = %+v", single)
	}
	if multi.Jobs != 1 || multi.Bytes != 1000 {
		t.Fatalf("multicore lane = %+v", multi)
	}
	// 300 B in 3 ms = 100 kB/s on the single lane.
	if got, want := single.BytesPerSec, 100_000.0; got < want*0.99 || got > want*1.01 {
		t.Fatalf("single bytes/sec = %g, want ~%g", got, want)
	}
	// Queue wait: 300 µs of wait against 5 ms of exec.
	if p.QueueWaitShare <= 0 || p.QueueWaitShare >= 0.1 {
		t.Fatalf("queue-wait share = %g, want in (0, 0.1)", p.QueueWaitShare)
	}
	if p.ShufflesPerSymbol != 2.0 {
		t.Fatalf("shuffles/symbol = %g, want 2", p.ShufflesPerSymbol)
	}
	if p.ConvergenceRate != 0.9 {
		t.Fatalf("convergence rate = %g, want 0.9", p.ConvergenceRate)
	}
	// Latency window: 3×1 ms and 1×2 ms → p50 = 1 ms, p99 = 2 ms.
	if p.LatencyP50Ns != int64(time.Millisecond) {
		t.Fatalf("p50 = %d, want 1 ms", p.LatencyP50Ns)
	}
	if p.LatencyP99Ns != int64(2*time.Millisecond) {
		t.Fatalf("p99 = %d, want 2 ms", p.LatencyP99Ns)
	}
}

func TestPersistAndReload(t *testing.T) {
	dir := t.TempDir()

	s1 := NewStore(dir)
	r1 := s1.Attach("m", "fpX", "auto")
	observe(r1)
	if err := s1.SaveAll(); err != nil {
		t.Fatalf("SaveAll: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fpX"+FileSuffix)); err != nil {
		t.Fatalf("profile file not written: %v", err)
	}

	// Restart: a fresh store over the same directory seeds the baseline,
	// so totals continue instead of restarting from zero.
	s2 := NewStore(dir)
	r2 := s2.Attach("m", "fpX", "auto")
	p := r2.Profile()
	if p.Jobs != 5 || p.Bytes != 1300 || p.Shuffles != 2600 {
		t.Fatalf("reloaded profile lost counts: %+v", p)
	}
	// No live jobs yet: quantiles fall back to the persisted ones.
	if p.LatencyP50Ns != int64(time.Millisecond) {
		t.Fatalf("reloaded p50 = %d, want persisted 1 ms", p.LatencyP50Ns)
	}
	// New observations accumulate on top of the baseline.
	observe(r2)
	if p := r2.Profile(); p.Jobs != 10 || p.Bytes != 2600 {
		t.Fatalf("post-restart accumulation: jobs=%d bytes=%d, want 10/2600", p.Jobs, p.Bytes)
	}
}

func TestCorruptAndSkewedFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad"+FileSuffix), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "skew"+FileSuffix),
		[]byte(`{"schema": 999, "fingerprint": "skew", "jobs": 7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewStore(dir)
	if p := s.Attach("a", "bad", "auto").Profile(); p.Jobs != 0 {
		t.Fatalf("corrupt file seeded a baseline: %+v", p)
	}
	if p := s.Attach("b", "skew", "auto").Profile(); p.Jobs != 0 {
		t.Fatalf("version-skewed file seeded a baseline: %+v", p)
	}
}

func TestDetachPersists(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir)
	r := s.Attach("m", "fpD", "auto")
	observe(r)
	s.Detach("m")
	if _, ok := s.Profile("m"); ok {
		t.Fatal("detached machine still attached")
	}
	// The final profile was flushed on detach.
	s2 := NewStore(dir)
	if p := s2.Attach("m", "fpD", "auto").Profile(); p.Jobs != 5 {
		t.Fatalf("detach did not persist: %+v", p)
	}
}

func TestProfilesSortedAndInstallSemantics(t *testing.T) {
	s := NewStore("")
	s.Attach("zeta", "f1", "auto")
	s.Attach("alpha", "f2", "auto")
	ps := s.Profiles()
	if len(ps) != 2 || ps[0].Machine != "alpha" || ps[1].Machine != "zeta" {
		t.Fatalf("profiles not sorted by machine: %+v", ps)
	}
	// NewRecorder without Install stays invisible.
	s.NewRecorder("ghost", "f3", "auto")
	if len(s.Profiles()) != 2 {
		t.Fatal("uninstalled recorder leaked into Profiles")
	}
}

func TestSpeculationAndHotStates(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir)
	r := s.Attach("m", "fpS", "auto")
	r.ObserveJob(LaneSpeculative, 4096, time.Millisecond, 0, false)
	r.ObserveSpeculation(8, 2, 1024)
	for i := 0; i < 5; i++ {
		r.ObserveFinal(3)
	}
	r.ObserveFinal(1)

	p := r.Profile()
	spec := p.Lanes[LaneSpeculative]
	if spec.Jobs != 1 || spec.Bytes != 4096 {
		t.Fatalf("speculative lane = %+v", spec)
	}
	if p.SpecChunks != 8 || p.SpecMispredicts != 2 || p.SpecReRunBytes != 1024 {
		t.Fatalf("spec counters = %d/%d/%d", p.SpecChunks, p.SpecMispredicts, p.SpecReRunBytes)
	}
	if p.MispredictRate != 0.25 {
		t.Fatalf("mispredict rate = %g, want 0.25", p.MispredictRate)
	}
	if p.HotStates["3"] != 5 || p.HotStates["1"] != 1 {
		t.Fatalf("hot states = %v", p.HotStates)
	}
	if st, ok := r.HotState(); !ok || st != 3 {
		t.Fatalf("HotState = %d/%v, want 3/true", st, ok)
	}

	// The whole speculative surface survives persist + reload and keeps
	// accumulating on top of the baseline.
	if err := s.SaveAll(); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(dir)
	r2 := s2.Attach("m", "fpS", "auto")
	if st, ok := r2.HotState(); !ok || st != 3 {
		t.Fatalf("reloaded HotState = %d/%v, want 3/true", st, ok)
	}
	r2.ObserveSpeculation(2, 2, 0)
	p2 := r2.Profile()
	if p2.SpecChunks != 10 || p2.SpecMispredicts != 4 {
		t.Fatalf("reloaded spec counters = %d/%d, want 10/4", p2.SpecChunks, p2.SpecMispredicts)
	}
	if p2.MispredictRate != 0.4 {
		t.Fatalf("reloaded mispredict rate = %g, want 0.4", p2.MispredictRate)
	}
}

func TestHotStateHistogramBounded(t *testing.T) {
	r := NewStore("").Attach("m", "fpB", "auto")
	for st := 0; st < 4*hotStateCap; st++ {
		r.ObserveFinal(st)
	}
	// Admitted states keep counting even once the map is full.
	r.ObserveFinal(0)
	p := r.Profile()
	if len(p.HotStates) != hotStateCap {
		t.Fatalf("hot-state histogram has %d entries, want cap %d", len(p.HotStates), hotStateCap)
	}
	if st, ok := r.HotState(); !ok || st != 0 {
		t.Fatalf("HotState = %d/%v, want 0/true", st, ok)
	}
}

func TestNilSafety(t *testing.T) {
	var s *Store
	r := s.Attach("m", "fp", "auto")
	if r != nil {
		t.Fatal("nil store returned non-nil recorder")
	}
	r.ObserveJob(LaneSingle, 1, time.Millisecond, 0, false) // must not panic
	r.ObserveFinal(3)
	r.ObserveSpeculation(1, 1, 1)
	if _, ok := r.HotState(); ok {
		t.Fatal("nil recorder reported a hot state")
	}
	if r.Telemetry() != nil {
		t.Fatal("nil recorder returned non-nil telemetry")
	}
	_ = r.Profile()
	s.Detach("m")
	s.Install(nil)
	if err := s.SaveAll(); err != nil {
		t.Fatalf("nil SaveAll: %v", err)
	}
	if s.Profiles() != nil {
		t.Fatal("nil store returned profiles")
	}
}
