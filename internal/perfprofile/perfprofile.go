// Package perfprofile aggregates the observed performance of each
// registered machine — per-lane throughput, sliding-window job latency,
// queue-wait share, and the runner-level convergence counters — and
// persists one versioned JSON profile per compiled plan next to the
// serialized plan in the plan-cache directory.
//
// This is the observability seam the ROADMAP's "adaptive serving"
// item needs: the speculative-DFA paper (arXiv 1210.5093) and the SFA
// paper (arXiv 1405.0562) both show that the right execution lane is
// workload-dependent, so before an adaptive engine can pick lanes from
// observed behavior, the observations have to exist, survive restarts,
// and be comparable over time. The aggregate telemetry
// (internal/telemetry.Metrics) answers "how is the process doing";
// this package answers "how does machine X behave", keyed by the same
// plan fingerprint the plan cache uses.
//
// Data flow: the engine attaches one MachineRecorder per registered
// machine. The engine feeds it job-level observations (lane, bytes,
// wall time, queue wait); the machine's runners feed it run-level
// counters (symbols, shuffles, convergence checks/wins) through a
// per-machine telemetry sink (core.WithAuxTelemetry). Profile() merges
// both with any baseline loaded from disk, so counts accumulate across
// process restarts.
//
// Persistence is cache-shaped, exactly like the serialized plans it
// sits next to: fingerprint-keyed files (<fingerprint>.perf.json),
// tmp+rename writes so a crash never leaves a torn file, and corrupt
// or version-skewed files are ignored rather than fatal.
package perfprofile

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dpfsm/internal/telemetry"
)

// SchemaVersion is the version stamped into every persisted profile.
// Loaders ignore files whose schema they do not understand, so a
// future incompatible change bumps this and old files simply stop
// seeding baselines.
const SchemaVersion = 1

// FileSuffix is appended to the plan fingerprint to name a persisted
// profile inside the plan-cache directory, next to the plan's own
// "<fingerprint>.plan".
const FileSuffix = ".perf.json"

// Lane names, matching the engine's dispatch vocabulary.
const (
	LaneSingle      = "single"
	LaneMulticore   = "multicore"
	LaneSpeculative = "speculative"
	LaneCluster     = "cluster"
)

// hotStateCap bounds the hot-state histogram: the speculative lane's
// predictor only ever needs the few dominant final states, and an
// unbounded per-state map would scale with machine size. Once full,
// unseen states stop being admitted; the dominant states were already
// counted by then (they are what makes them dominant).
const hotStateCap = 32

// LaneStats aggregates the jobs one dispatch lane executed.
type LaneStats struct {
	Jobs   int64 `json:"jobs"`
	Bytes  int64 `json:"bytes"`
	ExecNs int64 `json:"exec_ns"`
	// BytesPerSec is Bytes/ExecNs, the lane's observed throughput —
	// derived, recomputed on every snapshot.
	BytesPerSec float64 `json:"bytes_per_sec"`
}

// Profile is the versioned per-machine performance document: what
// /v1/status serves live and what SaveAll persists next to the cached
// plan. All counter fields are lifetime totals (including any baseline
// reloaded from a previous process); the latency quantiles are the
// exact order statistics of the most recent jobs in this process, or
// the persisted values when this process has not yet run any.
type Profile struct {
	Schema      int    `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	Machine     string `json:"machine"`
	Strategy    string `json:"strategy"`
	// UpdatedUnixNs is the wall-clock time of the snapshot.
	UpdatedUnixNs int64 `json:"updated_unix_ns"`

	// Engine-observed job accounting.
	Jobs        int64 `json:"jobs"`
	Errors      int64 `json:"errors"`
	Bytes       int64 `json:"bytes"`
	ExecNs      int64 `json:"exec_ns"`
	QueueWaitNs int64 `json:"queue_wait_ns"`
	// QueueWaitShare is QueueWaitNs/(QueueWaitNs+ExecNs): the fraction
	// of a job's life spent waiting for a worker — the engine-health
	// half of a latency number.
	QueueWaitShare float64 `json:"queue_wait_share"`
	// ThroughputBytesPerSec is Bytes/ExecNs across both lanes.
	ThroughputBytesPerSec float64              `json:"throughput_bytes_per_sec"`
	Lanes                 map[string]LaneStats `json:"lanes,omitempty"`

	// Sliding-window job latency (ns), exact over the most recent jobs.
	LatencyP50Ns int64 `json:"latency_p50_ns"`
	LatencyP90Ns int64 `json:"latency_p90_ns"`
	LatencyP99Ns int64 `json:"latency_p99_ns"`

	// Runner-level counters from the per-machine telemetry sink: the
	// paper's own quantities, per machine instead of per process.
	Symbols     int64 `json:"symbols"`
	Shuffles    int64 `json:"shuffles"`
	FactorCalls int64 `json:"factor_calls"`
	FactorWins  int64 `json:"factor_wins"`
	// ShufflesPerSymbol is the live §6.1 figure of merit for this
	// machine; ConvergenceRate is FactorWins/FactorCalls — how often
	// the §5.2 convergence checks actually shrank the active vector,
	// the signal the future adaptive lane picker keys on.
	ShufflesPerSymbol float64 `json:"shuffles_per_symbol"`
	ConvergenceRate   float64 `json:"convergence_rate"`
	ActiveFinalMean   float64 `json:"active_final_mean"`

	// HotStates histograms the final states jobs ended in (bounded at
	// hotStateCap entries), keyed by the state's decimal value. The
	// speculative lane's predictor guesses the dominant entry: a machine
	// whose jobs keep ending in the same state is exactly the machine
	// whose chunk starts are guessable (arXiv 1210.5093 §2).
	HotStates map[string]int64 `json:"hot_states,omitempty"`

	// Speculative-lane accounting. MispredictRate is
	// SpecMispredicts/SpecChunks — the selector's kill signal for the
	// speculative lane.
	SpecChunks      int64   `json:"spec_chunks"`
	SpecMispredicts int64   `json:"spec_mispredicts"`
	SpecReRunBytes  int64   `json:"spec_rerun_bytes"`
	MispredictRate  float64 `json:"mispredict_rate"`
}

// MachineRecorder accumulates one machine's observations. The engine
// calls ObserveJob once per executed job; the machine's runners flush
// run-level counters into Telemetry(). All methods are safe for
// concurrent use and nil-safe no-ops, mirroring internal/telemetry.
type MachineRecorder struct {
	machine     string
	fingerprint string
	strategy    string

	// base is the profile reloaded from disk at Attach time; live
	// counters add on top of it so totals survive restarts.
	base Profile

	aux telemetry.Metrics

	jobs, errors atomic.Int64
	queueWaitNs  atomic.Int64
	laneJobs     [laneCount]atomic.Int64
	laneBytes    [laneCount]atomic.Int64
	laneExecNs   [laneCount]atomic.Int64
	latency      telemetry.Window

	specChunks      atomic.Int64
	specMispredicts atomic.Int64
	specReRunBytes  atomic.Int64

	hotMu     sync.Mutex
	hotStates map[int]int64
}

const (
	laneIdxSingle = iota
	laneIdxMulticore
	laneIdxSpeculative
	laneIdxCluster
	laneCount
)

// laneIdx maps an engine lane name to its counter slot; unknown names
// fall back to the single-core slot rather than dropping the sample.
func laneIdx(lane string) int {
	switch lane {
	case LaneMulticore:
		return laneIdxMulticore
	case LaneSpeculative:
		return laneIdxSpeculative
	case LaneCluster:
		return laneIdxCluster
	default:
		return laneIdxSingle
	}
}

// Telemetry returns the per-machine runner sink to pass as
// core.WithAuxTelemetry. Nil-safe.
func (r *MachineRecorder) Telemetry() *telemetry.Metrics {
	if r == nil {
		return nil
	}
	return &r.aux
}

// ObserveJob records one engine job against this machine's profile.
// lane is one of the Lane* constants (the engine's dispatch decision).
func (r *MachineRecorder) ObserveJob(lane string, bytes int, exec, queueWait time.Duration, failed bool) {
	if r == nil {
		return
	}
	r.jobs.Add(1)
	if failed {
		r.errors.Add(1)
		return
	}
	idx := laneIdx(lane)
	r.laneJobs[idx].Add(1)
	r.laneBytes[idx].Add(int64(bytes))
	r.laneExecNs[idx].Add(int64(exec))
	r.queueWaitNs.Add(int64(queueWait))
	if exec > 0 {
		r.latency.Observe(int64(exec))
	}
}

// ObserveFinal records the state a job's run ended in, feeding the
// hot-state histogram the speculative predictor guesses from.
func (r *MachineRecorder) ObserveFinal(state int) {
	if r == nil {
		return
	}
	r.hotMu.Lock()
	if r.hotStates == nil {
		r.hotStates = make(map[int]int64, 8)
	}
	if _, ok := r.hotStates[state]; ok || len(r.hotStates) < hotStateCap {
		r.hotStates[state]++
	}
	r.hotMu.Unlock()
}

// ObserveSpeculation folds one speculative execution's chunk accounting
// into the profile.
func (r *MachineRecorder) ObserveSpeculation(chunks, mispredicts, rerunBytes int64) {
	if r == nil {
		return
	}
	r.specChunks.Add(chunks)
	r.specMispredicts.Add(mispredicts)
	r.specReRunBytes.Add(rerunBytes)
}

// HotState reports the machine's dominant observed final state —
// baseline plus live — and whether any final state has been observed
// at all. Ties break toward the smaller state number so the answer is
// deterministic.
func (r *MachineRecorder) HotState() (int, bool) {
	if r == nil {
		return 0, false
	}
	merged := r.mergedHotStates()
	best, bestCount, found := 0, int64(0), false
	for st, n := range merged {
		if n > bestCount || (n == bestCount && found && st < best) {
			best, bestCount, found = st, n, true
		}
	}
	return best, found
}

// mergedHotStates merges the persisted baseline histogram with the
// live one, returning a fresh map keyed by state number.
func (r *MachineRecorder) mergedHotStates() map[int]int64 {
	merged := make(map[int]int64, hotStateCap)
	for key, n := range r.base.HotStates {
		if st, err := strconv.Atoi(key); err == nil {
			merged[st] += n
		}
	}
	r.hotMu.Lock()
	for st, n := range r.hotStates {
		merged[st] += n
	}
	r.hotMu.Unlock()
	return merged
}

// bytesPerSec converts (bytes, ns) to a rate, 0 when unmeasured.
func bytesPerSec(bytes, ns int64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(bytes) / (float64(ns) / 1e9)
}

// Profile merges the live counters with the reloaded baseline into a
// point-in-time document.
func (r *MachineRecorder) Profile() Profile {
	if r == nil {
		return Profile{}
	}
	snap := r.aux.Snapshot()
	p := Profile{
		Schema:        SchemaVersion,
		Fingerprint:   r.fingerprint,
		Machine:       r.machine,
		Strategy:      r.strategy,
		UpdatedUnixNs: time.Now().UnixNano(),

		Jobs:        r.base.Jobs + r.jobs.Load(),
		Errors:      r.base.Errors + r.errors.Load(),
		QueueWaitNs: r.base.QueueWaitNs + r.queueWaitNs.Load(),

		Symbols:     r.base.Symbols + snap.Symbols,
		Shuffles:    r.base.Shuffles + snap.Shuffles,
		FactorCalls: r.base.FactorCalls + snap.FactorCalls,
		FactorWins:  r.base.FactorWins + snap.FactorWins,

		SpecChunks:      r.base.SpecChunks + r.specChunks.Load(),
		SpecMispredicts: r.base.SpecMispredicts + r.specMispredicts.Load(),
		SpecReRunBytes:  r.base.SpecReRunBytes + r.specReRunBytes.Load(),
		// ActiveFinalMean is a mean, not a counter: the live value wins
		// once this process has run anything, else the persisted one.
		ActiveFinalMean: snap.ActiveFinalMean,
	}
	p.Lanes = make(map[string]LaneStats, laneCount)
	for i, name := range [laneCount]string{LaneSingle, LaneMulticore, LaneSpeculative, LaneCluster} {
		ls := LaneStats{
			Jobs:   r.laneJobs[i].Load(),
			Bytes:  r.laneBytes[i].Load(),
			ExecNs: r.laneExecNs[i].Load(),
		}
		if base, ok := r.base.Lanes[name]; ok {
			ls.Jobs += base.Jobs
			ls.Bytes += base.Bytes
			ls.ExecNs += base.ExecNs
		}
		if ls.Jobs == 0 {
			continue
		}
		ls.BytesPerSec = bytesPerSec(ls.Bytes, ls.ExecNs)
		p.Lanes[name] = ls
		p.Bytes += ls.Bytes
		p.ExecNs += ls.ExecNs
	}
	p.ThroughputBytesPerSec = bytesPerSec(p.Bytes, p.ExecNs)
	if total := p.QueueWaitNs + p.ExecNs; total > 0 {
		p.QueueWaitShare = float64(p.QueueWaitNs) / float64(total)
	}
	if p.Symbols > 0 {
		p.ShufflesPerSymbol = float64(p.Shuffles) / float64(p.Symbols)
	}
	if p.FactorCalls > 0 {
		p.ConvergenceRate = float64(p.FactorWins) / float64(p.FactorCalls)
	}
	if p.SpecChunks > 0 {
		p.MispredictRate = float64(p.SpecMispredicts) / float64(p.SpecChunks)
	}
	if merged := r.mergedHotStates(); len(merged) > 0 {
		p.HotStates = make(map[string]int64, len(merged))
		for st, n := range merged {
			p.HotStates[strconv.Itoa(st)] = n
		}
	}
	if p.ActiveFinalMean == 0 {
		p.ActiveFinalMean = r.base.ActiveFinalMean
	}
	if lat := r.latency.Quantiles(0.5, 0.9, 0.99); r.latency.Count() > 0 {
		p.LatencyP50Ns, p.LatencyP90Ns, p.LatencyP99Ns = lat[0], lat[1], lat[2]
	} else {
		// No jobs yet in this process: report the persisted quantiles so
		// a just-restarted server's status is not all zeros.
		p.LatencyP50Ns = r.base.LatencyP50Ns
		p.LatencyP90Ns = r.base.LatencyP90Ns
		p.LatencyP99Ns = r.base.LatencyP99Ns
	}
	return p
}

// Store holds one MachineRecorder per registered machine and owns the
// persistence directory. The zero Store is not useful; use NewStore.
type Store struct {
	dir string

	mu   sync.Mutex
	recs map[string]*MachineRecorder // by machine name
}

// NewStore builds a Store persisting into dir. An empty dir keeps the
// profiles in memory only (SaveAll becomes a no-op), which is what
// tests and planless deployments want.
func NewStore(dir string) *Store {
	return &Store{dir: dir, recs: make(map[string]*MachineRecorder)}
}

// Dir reports the persistence directory ("" = memory only).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// NewRecorder builds a recorder for a machine, seeding the baseline
// from a previously persisted profile for the same plan fingerprint
// when one exists. The recorder is not yet visible in Profiles();
// Install publishes it once the caller's registration has actually
// landed (the engine re-checks for duplicate names under its own lock,
// and a losing registration must not clobber the winner's recorder).
// Nil-safe: a nil Store returns a nil recorder, whose methods are
// no-ops, so the engine threads it unconditionally.
func (s *Store) NewRecorder(machine, fingerprint, strategy string) *MachineRecorder {
	if s == nil {
		return nil
	}
	r := &MachineRecorder{machine: machine, fingerprint: fingerprint, strategy: strategy}
	if base, ok := s.load(fingerprint); ok {
		r.base = base
	}
	return r
}

// Install publishes a recorder under its machine name, replacing any
// previous recorder for that name (the dynamic-registry
// re-registration path). Nil-safe in both receiver and argument.
func (s *Store) Install(r *MachineRecorder) {
	if s == nil || r == nil {
		return
	}
	s.mu.Lock()
	s.recs[r.machine] = r
	s.mu.Unlock()
}

// Attach is NewRecorder + Install in one step, for callers without a
// separate commit point.
func (s *Store) Attach(machine, fingerprint, strategy string) *MachineRecorder {
	if s == nil {
		return nil
	}
	r := s.NewRecorder(machine, fingerprint, strategy)
	s.Install(r)
	return r
}

// Detach removes a machine's recorder, persisting its final profile
// first (best effort) so an unregister does not lose the observations
// since the last SaveAll.
func (s *Store) Detach(machine string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	r := s.recs[machine]
	delete(s.recs, machine)
	s.mu.Unlock()
	if r != nil {
		_ = s.save(r.Profile())
	}
}

// Profiles snapshots every attached machine's profile, sorted by
// machine name for stable JSON output. Nil-safe.
func (s *Store) Profiles() []Profile {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	recs := make([]*MachineRecorder, 0, len(s.recs))
	for _, r := range s.recs {
		recs = append(recs, r)
	}
	s.mu.Unlock()
	out := make([]Profile, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.Profile())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Machine < out[j].Machine })
	return out
}

// Profile returns the named machine's current profile.
func (s *Store) Profile(machine string) (Profile, bool) {
	if s == nil {
		return Profile{}, false
	}
	s.mu.Lock()
	r := s.recs[machine]
	s.mu.Unlock()
	if r == nil {
		return Profile{}, false
	}
	return r.Profile(), true
}

// SaveAll persists every attached machine's profile. Errors are
// joined, not fatal-on-first, so one bad file does not stop the rest;
// with no directory configured it is a no-op. Nil-safe.
func (s *Store) SaveAll() error {
	if s == nil || s.dir == "" {
		return nil
	}
	var errs []error
	for _, p := range s.Profiles() {
		if err := s.save(p); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// path names the profile file for a fingerprint.
func (s *Store) path(fingerprint string) string {
	return filepath.Join(s.dir, fingerprint+FileSuffix)
}

// save writes one profile with tmp+rename, the same crash-safe
// discipline the plan files use.
func (s *Store) save(p Profile) error {
	if s.dir == "" || p.Fingerprint == "" {
		return nil
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".perf-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return errors.Join(werr, cerr)
	}
	if err := os.Rename(tmp.Name(), s.path(p.Fingerprint)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// load reads a persisted profile for fingerprint, reporting whether a
// valid same-schema one was found. Unreadable, corrupt, or
// version-skewed files are treated as absent — the directory is a
// cache.
func (s *Store) load(fingerprint string) (Profile, bool) {
	if s.dir == "" {
		return Profile{}, false
	}
	data, err := os.ReadFile(s.path(fingerprint))
	if err != nil {
		return Profile{}, false
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return Profile{}, false
	}
	if p.Schema != SchemaVersion || p.Fingerprint != fingerprint {
		return Profile{}, false
	}
	return p, true
}
