package telemetry

import (
	"bufio"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// This file is a promtool-style lint for the text exposition, run as a
// plain Go test (no Prometheus dependency): every line must parse
// under the 0.0.4 text format, names must be legal, every series must
// be preceded by HELP/TYPE of its family, histogram buckets must be
// cumulative and capped by +Inf == _count, and label values must use
// only the three legal escapes.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// seriesRe splits "name{labels} value" / "name value", with an
	// optional OpenMetrics exemplar suffix ` # {labels} value ts`.
	seriesRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)( # \{([^}]*)\} (\S+)(?: (\S+))?)?$`)
	// labelRe matches one k="v" pair with v already escaped.
	labelRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\\\|\\"|\\n)*)"$`)
	hexRe   = regexp.MustCompile(`^[0-9a-f]{32}$`)
)

// fullMetrics builds a Metrics with every family populated, so the
// lint covers every exposition branch.
func fullMetrics() *Metrics {
	m := new(Metrics)
	m.Runs.Inc()
	m.Symbols.Add(1000)
	m.Gathers.Add(500)
	m.Shuffles.Add(2500)
	m.FactorCalls.Add(10)
	m.FactorWins.Add(7)
	m.ActiveHighWater.Observe(64)
	m.ActiveFinal.Observe(3)
	m.StrategySelected.Get("convergence").Inc()
	m.StrategyRuns.Get("convergence").Inc()
	// A hostile label value: quotes, backslash, newline, UTF-8.
	m.StrategyRuns.Get("we\"ird\\label\nwith Ünicode").Inc()
	m.StreamBlocks.Inc()
	m.StreamBytes.Add(4096)
	m.MulticoreRuns.Inc()
	m.Chunks.Add(4)
	m.ChunkBytes.Observe(1 << 20)
	m.Phase1Time.Observe(1_000_000)
	m.Phase2Time.Observe(10_000)
	m.Phase3Time.Observe(900_000)
	m.Phase3Skips.Inc()
	m.EngineJobs.Add(5)
	m.EngineJobErrors.Inc()
	m.EngineCanceled.Inc()
	m.EngineBatches.Inc()
	m.EngineSingleCore.Add(3)
	m.EngineMulticore.Add(2)
	m.EngineSpeculative.Add(1)
	m.EngineTransduce.Add(2)
	m.TransduceSpans.Add(40)
	m.TransduceOutputBytes.Add(2048)
	m.SpecChunks.Add(8)
	m.SpecMispredicts.Add(2)
	m.SpecReRunBytes.Add(4096)
	m.EngineQueueDepth.Set(4)
	m.EngineQueueHighWater.Observe(9)
	m.EngineJobBytes.Observe(256)
	m.EngineJobTime.Observe(50_000)
	m.EngineJobExemplars.Observe(50_000, lintTraceID, 1_700_000_000_123_456_789)
	for i := int64(1); i <= 100; i++ {
		m.EngineJobLatency.Observe(i * 1000)
	}
	return m
}

// lintTraceID is the retained trace the lint's exemplar points at.
const lintTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"

func TestPrometheusExpositionLints(t *testing.T) {
	var sb strings.Builder
	fullMetrics().WritePrometheus(&sb)
	// The runtime bridge shares the exposition, so it must pass the
	// same lint: appended here exactly as the /v1/metrics handler
	// concatenates the two writers.
	WriteRuntimePrometheus(&sb)
	text := sb.String()

	type family struct{ help, typ string }
	families := map[string]family{}
	var current string
	seenSeries := map[string]bool{}
	seenExemplars := 0
	histBuckets := map[string][]struct {
		le  string
		val int64
	}{}

	sc := bufio.NewScanner(strings.NewReader(text))
	line := 0
	for sc.Scan() {
		line++
		l := sc.Text()
		if l == "" {
			continue
		}
		if strings.HasPrefix(l, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(l, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Errorf("line %d: HELP without text: %q", line, l)
				continue
			}
			name := parts[0]
			if !metricNameRe.MatchString(name) {
				t.Errorf("line %d: invalid metric name %q", line, name)
			}
			f := families[name]
			f.help = parts[1]
			families[name] = f
			current = name
			continue
		}
		if strings.HasPrefix(l, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(l, "# TYPE "))
			if len(parts) != 2 {
				t.Errorf("line %d: malformed TYPE: %q", line, l)
				continue
			}
			name, typ := parts[0], parts[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: invalid type %q", line, typ)
			}
			f := families[name]
			f.typ = typ
			families[name] = f
			current = name
			continue
		}
		if strings.HasPrefix(l, "#") {
			t.Errorf("line %d: unknown comment %q", line, l)
			continue
		}

		mm := seriesRe.FindStringSubmatch(l)
		if mm == nil {
			t.Errorf("line %d: unparseable series line %q", line, l)
			continue
		}
		name, labels, value := mm[1], mm[3], mm[4]
		exLabels, exValue, exTs := mm[6], mm[7], mm[8]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Errorf("line %d: bad sample value %q", line, value)
		}

		// Series must belong to the family announced just above it
		// (histograms add _bucket/_sum/_count suffixes).
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if families[base].typ == "" && strings.HasSuffix(name, suf) {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if base != current {
			t.Errorf("line %d: series %s under family %s", line, name, current)
		}
		f, ok := families[base]
		if !ok || f.help == "" || f.typ == "" {
			t.Errorf("line %d: series %s missing HELP/TYPE", line, name)
		}
		if !strings.HasPrefix(name, "dpfsm_") {
			t.Errorf("line %d: series %s missing dpfsm_ prefix", line, name)
		}
		if f.typ == "counter" && !strings.HasSuffix(base, "_total") {
			t.Errorf("line %d: counter %s lacks _total suffix", line, base)
		}

		// Parse labels; each must be a legal name with a legally
		// escaped value.
		var le string
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				lm := labelRe.FindStringSubmatch(pair)
				if lm == nil {
					t.Errorf("line %d: bad label pair %q", line, pair)
					continue
				}
				if !labelNameRe.MatchString(lm[1]) {
					t.Errorf("line %d: bad label name %q", line, lm[1])
				}
				if lm[1] == "le" {
					le = lm[2]
				}
			}
		}

		// OpenMetrics exemplar validation: only on _bucket lines, with
		// legal labels including a hex trace_id, a float value within
		// the bucket's le bound, and a parseable timestamp.
		if mm[5] != "" {
			if !strings.HasSuffix(name, "_bucket") {
				t.Errorf("line %d: exemplar on non-bucket series %s", line, name)
			}
			var traceID string
			for _, pair := range splitLabels(exLabels) {
				lm := labelRe.FindStringSubmatch(pair)
				if lm == nil {
					t.Errorf("line %d: bad exemplar label pair %q", line, pair)
					continue
				}
				if lm[1] == "trace_id" {
					traceID = lm[2]
				}
			}
			if !hexRe.MatchString(traceID) {
				t.Errorf("line %d: exemplar trace_id %q is not 32 hex chars", line, traceID)
			}
			ev, err := strconv.ParseFloat(exValue, 64)
			if err != nil {
				t.Errorf("line %d: bad exemplar value %q", line, exValue)
			}
			if le != "" && le != "+Inf" {
				bound, _ := strconv.ParseFloat(le, 64)
				if ev > bound {
					t.Errorf("line %d: exemplar value %g above bucket le=%s", line, ev, le)
				}
			}
			if exTs != "" {
				if _, err := strconv.ParseFloat(exTs, 64); err != nil {
					t.Errorf("line %d: bad exemplar timestamp %q", line, exTs)
				}
			}
			seenExemplars++
		}

		key := name + "{" + labels + "}"
		if seenSeries[key] {
			t.Errorf("line %d: duplicate series %s", line, key)
		}
		seenSeries[key] = true

		if strings.HasSuffix(name, "_bucket") {
			v, _ := strconv.ParseInt(value, 10, 64)
			histBuckets[base] = append(histBuckets[base], struct {
				le  string
				val int64
			}{le, v})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Histogram buckets must be cumulative (non-decreasing) and end at
	// le="+Inf" equal to _count.
	for base, buckets := range histBuckets {
		last := buckets[len(buckets)-1]
		if last.le != "+Inf" {
			t.Errorf("%s: last bucket le=%q, want +Inf", base, last.le)
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i].val < buckets[i-1].val {
				t.Errorf("%s: bucket %d not cumulative: %d < %d", base, i, buckets[i].val, buckets[i-1].val)
			}
		}
	}

	// The hostile label survived with exactly the three legal escapes.
	if !strings.Contains(text, `strategy="we\"ird\\label\nwith Ünicode"`) {
		t.Error("hostile label value not escaped to the 0.0.4 convention")
	}
	if strings.Contains(text, `\u`) {
		t.Error("exposition contains \\u escapes (strconv.Quote leak)")
	}

	// Spot-check the new families exist.
	for _, want := range []string{
		"dpfsm_engine_job_ns", "dpfsm_engine_job_latency_ns",
	} {
		if families[want].typ == "" {
			keys := make([]string, 0, len(families))
			for k := range families {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			t.Errorf("family %s missing (have %v)", want, keys)
		}
	}
	if !seenSeries[`dpfsm_engine_job_latency_ns{quantile="0.99"}`] {
		t.Error("p99 latency series missing")
	}

	// fullMetrics recorded one exemplar; it must survive exposition on
	// the bucket whose bound admits it.
	if seenExemplars != 1 {
		t.Errorf("exemplars in exposition = %d, want 1", seenExemplars)
	}
	if !strings.Contains(text, `# {trace_id="`+lintTraceID+`"} 50000 1700000000.123456789`) {
		t.Error("engine_job_ns exemplar missing or malformed")
	}
}

// splitLabels splits `a="x",b="y"` respecting escaped quotes.
func splitLabels(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(s):
			cur.WriteByte(c)
			i++
			cur.WriteByte(s[i])
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func TestWindowQuantiles(t *testing.T) {
	var w Window
	// Empty window: all zeros.
	qs := w.Quantiles(0.5, 0.99)
	if qs[0] != 0 || qs[1] != 0 {
		t.Fatalf("empty window quantiles %v", qs)
	}

	// 1..100: p50 rank ⌊0.5·100⌋ = index 50 → value 51.
	for i := int64(1); i <= 100; i++ {
		w.Observe(i)
	}
	qs = w.Quantiles(0, 0.5, 0.9, 0.99, 1)
	want := []int64{1, 51, 91, 100, 100}
	for i := range want {
		if qs[i] != want[i] {
			t.Errorf("quantile[%d] = %d, want %d (all %v)", i, qs[i], want[i], qs)
		}
	}
	if w.Count() != 100 {
		t.Errorf("count %d", w.Count())
	}

	// The window forgets: push windowSize large values and the old
	// small ones stop influencing p50.
	for i := 0; i < windowSize; i++ {
		w.Observe(1_000_000)
	}
	if got := w.Quantiles(0.5)[0]; got != 1_000_000 {
		t.Errorf("after shift p50 = %d, want 1000000", got)
	}

	// Nil-safety.
	var nw *Window
	nw.Observe(1)
	if nw.Count() != 0 || nw.Quantiles(0.5)[0] != 0 {
		t.Error("nil Window not inert")
	}
}

func TestWindowConcurrent(t *testing.T) {
	var w Window
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				w.Observe(int64(i))
				if i%100 == 0 {
					w.Quantiles(0.5, 0.99)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if w.Count() != 4000 {
		t.Fatalf("count %d", w.Count())
	}
}

// TestSnapshotLatencyFields checks the latency quantiles surface in
// Snapshot.
func TestSnapshotLatencyFields(t *testing.T) {
	m := new(Metrics)
	for i := int64(1); i <= 100; i++ {
		m.EngineJobLatency.Observe(i * 10)
		m.EngineJobTime.Observe(i * 10)
	}
	s := m.Snapshot()
	if s.EngineJobLatencyP50 != 510 || s.EngineJobLatencyP90 != 910 || s.EngineJobLatencyP99 != 1000 {
		t.Errorf("latency quantiles %d/%d/%d", s.EngineJobLatencyP50, s.EngineJobLatencyP90, s.EngineJobLatencyP99)
	}
	if s.EngineJobTime.Count != 100 || s.EngineJobTime.MaxNs != 1000 {
		t.Errorf("job time %+v", s.EngineJobTime)
	}
}
