package telemetry

// Metrics aggregates every quantity the FSM runtime reports about
// itself. One Metrics may be shared by any number of Runners, Streams
// and goroutines; all fields are independently atomic. A nil *Metrics
// disables collection everywhere it is threaded (core.WithTelemetry).
//
// The fields mirror the paper's evaluation quantities: Shuffles/Symbols
// is §6.1's "shuffle operations per input symbol", ActiveFinal and
// ActiveHighWater are Figure 7's convergence trajectory endpoints, and
// the Phase1/2/3 timers decompose Figure 5's multicore schedule.
type Metrics struct {
	// Runner counters.
	Runs    Counter // entry-point executions (Final/Run/CompositionVector/…)
	Symbols Counter // input symbols consumed
	Gathers Counter // gather kernel invocations (vector transition applications)
	// Shuffles counts emulated ⊗16,16 operations under the §4.2
	// blocked-construction cost model — the unit core.ProfileInput
	// replays offline, now accounted live.
	Shuffles    Counter
	FactorCalls Counter // convergence checks issued (§5.2 heuristics)
	FactorWins  Counter // checks that actually shrank the active vector

	// ActiveHighWater is the widest enumerative vector observed (the
	// state count n for convergence, the first-symbol range for range
	// coalescing); ActiveFinal is the per-run active width at the end
	// of the input — the paper's "converges to ≤16" claim is
	// ActiveFinal's distribution (Figure 7).
	ActiveHighWater MaxGauge
	ActiveFinal     Histogram

	// StrategySelected counts Runner constructions per resolved
	// strategy; StrategyRuns counts executions per strategy.
	StrategySelected LabelCounters
	StrategyRuns     LabelCounters

	// Stream counters.
	StreamBlocks Counter // blocks flushed through the batch runner
	StreamBytes  Counter // bytes consumed by flushed blocks

	// Multicore (Figure 5) phase accounting. Phase1Time and Phase3Time
	// observe per-chunk wall time from the worker goroutines;
	// Phase2Time observes the short sequential scan per run.
	MulticoreRuns Counter
	Chunks        Counter
	ChunkBytes    Histogram
	Phase1Time    Timer
	Phase2Time    Timer
	Phase3Time    Timer
	Phase3Skips   Counter // accept-/final-only runs that skipped phase 3 (§3.4)

	// Batch engine (internal/engine) counters. The engine multiplexes
	// many (machine, input) jobs over a bounded worker pool; these
	// series expose its dispatch policy and health.
	EngineJobs      Counter // jobs executed to completion (ok or error)
	EngineJobErrors Counter // jobs whose result carried an error
	EngineCanceled  Counter // jobs canceled before or during execution
	EngineBatches   Counter // batch submissions (RunBatch calls)
	// Dispatch-policy split: EngineSingleCore counts jobs routed to a
	// pool worker running the single-core strategy (batch-level
	// parallelism); EngineMulticore counts jobs large enough for the
	// Figure 5 phase1/phase2 split (input-level parallelism);
	// EngineSpeculative counts jobs the adaptive selector routed to the
	// speculative chunk-guessing lane (§7 / arXiv 1210.5093).
	EngineSingleCore  Counter
	EngineMulticore   Counter
	EngineSpeculative Counter
	// Transduction series: EngineTransduce counts output-bearing jobs
	// (Transduce calls), TransduceSpans the spans they emitted, and
	// TransduceOutputBytes the input bytes those spans cover — the
	// tokenizer's useful-work throughput as opposed to raw scan rate.
	EngineTransduce      Counter
	TransduceSpans       Counter
	TransduceOutputBytes Counter
	// Speculative-lane efficacy: chunks executed from a guessed start
	// state, guesses that turned out wrong, and bytes re-run scalar
	// after a mispredict. Mispredicts/SpecChunks is the live mispredict
	// rate the adaptive selector feeds back on.
	SpecChunks      Counter
	SpecMispredicts Counter
	SpecReRunBytes  Counter
	// EngineQueueDepth is the current bounded-queue occupancy;
	// EngineQueueHighWater is the deepest backlog ever observed. Depth
	// is the live backpressure signal (how close to shedding right
	// now), high-water the historical one.
	EngineQueueDepth     Gauge
	EngineQueueHighWater MaxGauge
	// EngineQueueRejects counts TrySubmit calls refused with
	// ErrQueueFull — load actually shed, as opposed to the blocking
	// backpressure Submit applies.
	EngineQueueRejects Counter
	EngineJobBytes     Histogram // input sizes of executed jobs
	// EngineJobTime is the all-time log₂ histogram of job wall time;
	// EngineJobLatency is the exact sliding-window view of the same
	// series, answering "what is p50/p90/p99 right now" after traffic
	// shifts the histogram cannot forget.
	EngineJobTime    Timer
	EngineJobLatency Window
	// EngineJobExemplars links EngineJobTime's latency buckets to the
	// trace IDs of recent jobs that landed in them (OpenMetrics
	// exemplars): the join between the aggregate layer and the flight
	// recorder. Only traced jobs record exemplars.
	EngineJobExemplars Exemplars

	// Plan-cache counters (engine.PlanCache). The compile/execute
	// split makes table construction a cacheable compiler step; these
	// series expose whether registrations actually reuse compiled
	// plans (the hit rate the acceptance bar sets at ≥ 99%) and what a
	// miss costs (PlanCompileTime).
	PlanCacheHits      Counter
	PlanCacheMisses    Counter
	PlanCacheEvictions Counter
	PlanCompileTime    Timer

	// Cluster counters (cluster.Coordinator): the networked §3.4
	// decomposition. EngineCluster counts jobs the engine routed
	// through the cluster lane; the rest account the coordinator's
	// protocol traffic and its degradation paths.
	EngineCluster       Counter
	ClusterTasks        Counter // chunk tasks answered remotely
	ClusterTaskErrors   Counter // failed remote attempts
	ClusterRetries      Counter // re-sent attempts (after backoff)
	ClusterPlanShips    Counter // plans shipped to peers
	ClusterLocalFallbacks Counter // chunks degraded to local execution
	ClusterBreakerOpens Counter // breaker closed→open transitions
	ClusterBreakerSkips Counter // chunks that skipped a peer on an open breaker
	ClusterDegraded     Counter // jobs with at least one degraded chunk
}

// PhaseSnapshot summarizes one timer.
type PhaseSnapshot struct {
	Count   int64   `json:"count"`
	TotalNs int64   `json:"total_ns"`
	MeanNs  float64 `json:"mean_ns"`
	MaxNs   int64   `json:"max_ns"`
	P99Ns   int64   `json:"p99_ns"`
}

func phaseSnapshot(t *Timer) PhaseSnapshot {
	return PhaseSnapshot{
		Count:   t.Count(),
		TotalNs: t.Sum(),
		MeanNs:  t.Mean(),
		MaxNs:   t.Max(),
		P99Ns:   t.Quantile(0.99),
	}
}

// Snapshot is a consistent-enough point-in-time copy of a Metrics:
// each field is read atomically, so totals may straddle a concurrent
// run but never tear. It is plain data, JSON-encodable.
type Snapshot struct {
	Runs    int64 `json:"runs"`
	Symbols int64 `json:"symbols"`
	Gathers int64 `json:"gathers"`

	Shuffles int64 `json:"shuffles"`
	// ShufflesPerSymbol is the live §6.1 figure of merit.
	ShufflesPerSymbol float64 `json:"shuffles_per_symbol"`

	FactorCalls int64 `json:"factor_calls"`
	FactorWins  int64 `json:"factor_wins"`

	ActiveHighWater int64   `json:"active_high_water"`
	ActiveFinalMean float64 `json:"active_final_mean"`
	ActiveFinalMax  int64   `json:"active_final_max"`

	StrategySelected map[string]int64 `json:"strategy_selected,omitempty"`
	StrategyRuns     map[string]int64 `json:"strategy_runs,omitempty"`

	StreamBlocks int64 `json:"stream_blocks"`
	StreamBytes  int64 `json:"stream_bytes"`

	MulticoreRuns int64         `json:"multicore_runs"`
	Chunks        int64         `json:"chunks"`
	ChunkBytesP50 int64         `json:"chunk_bytes_p50"`
	Phase1        PhaseSnapshot `json:"phase1"`
	Phase2        PhaseSnapshot `json:"phase2"`
	Phase3        PhaseSnapshot `json:"phase3"`
	Phase3Skips   int64         `json:"phase3_skips"`

	EngineJobs        int64 `json:"engine_jobs"`
	EngineJobErrors   int64 `json:"engine_job_errors"`
	EngineCanceled    int64 `json:"engine_canceled"`
	EngineBatches     int64 `json:"engine_batches"`
	EngineSingleCore  int64 `json:"engine_single_core"`
	EngineMulticore   int64 `json:"engine_multicore"`
	EngineSpeculative int64 `json:"engine_speculative"`
	EngineTransduce   int64 `json:"engine_transduce"`
	TransduceSpans    int64 `json:"transduce_spans"`
	// TransduceOutputBytes is the input bytes covered by emitted spans.
	TransduceOutputBytes int64 `json:"transduce_output_bytes"`
	SpecChunks           int64 `json:"spec_chunks"`
	SpecMispredicts   int64 `json:"spec_mispredicts"`
	SpecReRunBytes    int64 `json:"spec_rerun_bytes"`
	// SpecMispredictRate is SpecMispredicts/SpecChunks; 0 before any
	// speculative chunk ran.
	SpecMispredictRate   float64 `json:"spec_mispredict_rate"`
	EngineQueueDepth     int64   `json:"engine_queue_depth"`
	EngineQueueHighWater int64   `json:"engine_queue_high_water"`
	EngineQueueRejects   int64   `json:"engine_queue_rejects"`
	EngineJobBytesP50    int64   `json:"engine_job_bytes_p50"`

	EngineJobTime PhaseSnapshot `json:"engine_job_time"`
	// Sliding-window job latency (exact order statistics over the most
	// recent window, nanoseconds).
	EngineJobLatencyP50 int64 `json:"engine_job_latency_p50_ns"`
	EngineJobLatencyP90 int64 `json:"engine_job_latency_p90_ns"`
	EngineJobLatencyP99 int64 `json:"engine_job_latency_p99_ns"`

	PlanCacheHits      int64 `json:"plan_cache_hits"`
	PlanCacheMisses    int64 `json:"plan_cache_misses"`
	PlanCacheEvictions int64 `json:"plan_cache_evictions"`
	// PlanCacheHitRate is hits/(hits+misses); 0 before any lookup.
	PlanCacheHitRate float64       `json:"plan_cache_hit_rate"`
	PlanCompile      PhaseSnapshot `json:"plan_compile"`

	EngineCluster         int64 `json:"engine_cluster"`
	ClusterTasks          int64 `json:"cluster_tasks"`
	ClusterTaskErrors     int64 `json:"cluster_task_errors"`
	ClusterRetries        int64 `json:"cluster_retries"`
	ClusterPlanShips      int64 `json:"cluster_plan_ships"`
	ClusterLocalFallbacks int64 `json:"cluster_local_fallbacks"`
	ClusterBreakerOpens   int64 `json:"cluster_breaker_opens"`
	ClusterBreakerSkips   int64 `json:"cluster_breaker_skips"`
	ClusterDegraded       int64 `json:"cluster_degraded"`
}

// Snapshot captures the current values. Nil-safe: returns the zero
// Snapshot on a nil Metrics.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Runs:             m.Runs.Load(),
		Symbols:          m.Symbols.Load(),
		Gathers:          m.Gathers.Load(),
		Shuffles:         m.Shuffles.Load(),
		FactorCalls:      m.FactorCalls.Load(),
		FactorWins:       m.FactorWins.Load(),
		ActiveHighWater:  m.ActiveHighWater.Load(),
		ActiveFinalMean:  m.ActiveFinal.Mean(),
		ActiveFinalMax:   m.ActiveFinal.Max(),
		StrategySelected: m.StrategySelected.Snapshot(),
		StrategyRuns:     m.StrategyRuns.Snapshot(),
		StreamBlocks:     m.StreamBlocks.Load(),
		StreamBytes:      m.StreamBytes.Load(),
		MulticoreRuns:    m.MulticoreRuns.Load(),
		Chunks:           m.Chunks.Load(),
		ChunkBytesP50:    m.ChunkBytes.Quantile(0.5),
		Phase1:           phaseSnapshot(&m.Phase1Time),
		Phase2:           phaseSnapshot(&m.Phase2Time),
		Phase3:           phaseSnapshot(&m.Phase3Time),
		Phase3Skips:      m.Phase3Skips.Load(),

		EngineJobs:           m.EngineJobs.Load(),
		EngineJobErrors:      m.EngineJobErrors.Load(),
		EngineCanceled:       m.EngineCanceled.Load(),
		EngineBatches:        m.EngineBatches.Load(),
		EngineSingleCore:     m.EngineSingleCore.Load(),
		EngineMulticore:      m.EngineMulticore.Load(),
		EngineSpeculative:    m.EngineSpeculative.Load(),
		EngineTransduce:      m.EngineTransduce.Load(),
		TransduceSpans:       m.TransduceSpans.Load(),
		TransduceOutputBytes: m.TransduceOutputBytes.Load(),
		SpecChunks:           m.SpecChunks.Load(),
		SpecMispredicts:      m.SpecMispredicts.Load(),
		SpecReRunBytes:       m.SpecReRunBytes.Load(),
		EngineQueueDepth:     m.EngineQueueDepth.Load(),
		EngineQueueHighWater: m.EngineQueueHighWater.Load(),
		EngineQueueRejects:   m.EngineQueueRejects.Load(),
		EngineJobBytesP50:    m.EngineJobBytes.Quantile(0.5),
		EngineJobTime:        phaseSnapshot(&m.EngineJobTime),

		PlanCacheHits:      m.PlanCacheHits.Load(),
		PlanCacheMisses:    m.PlanCacheMisses.Load(),
		PlanCacheEvictions: m.PlanCacheEvictions.Load(),
		PlanCompile:        phaseSnapshot(&m.PlanCompileTime),

		EngineCluster:         m.EngineCluster.Load(),
		ClusterTasks:          m.ClusterTasks.Load(),
		ClusterTaskErrors:     m.ClusterTaskErrors.Load(),
		ClusterRetries:        m.ClusterRetries.Load(),
		ClusterPlanShips:      m.ClusterPlanShips.Load(),
		ClusterLocalFallbacks: m.ClusterLocalFallbacks.Load(),
		ClusterBreakerOpens:   m.ClusterBreakerOpens.Load(),
		ClusterBreakerSkips:   m.ClusterBreakerSkips.Load(),
		ClusterDegraded:       m.ClusterDegraded.Load(),
	}
	lat := m.EngineJobLatency.Quantiles(0.5, 0.9, 0.99)
	s.EngineJobLatencyP50, s.EngineJobLatencyP90, s.EngineJobLatencyP99 = lat[0], lat[1], lat[2]
	if s.Symbols > 0 {
		s.ShufflesPerSymbol = float64(s.Shuffles) / float64(s.Symbols)
	}
	if lookups := s.PlanCacheHits + s.PlanCacheMisses; lookups > 0 {
		s.PlanCacheHitRate = float64(s.PlanCacheHits) / float64(lookups)
	}
	if s.SpecChunks > 0 {
		s.SpecMispredictRate = float64(s.SpecMispredicts) / float64(s.SpecChunks)
	}
	return s
}
