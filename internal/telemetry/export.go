package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Exposition. Three surfaces, per the repo's observability contract:
//
//   - Snapshot() for programmatic use,
//   - expvar-compatible JSON (Metrics implements expvar.Var, so
//     Publish drops it into /debug/vars alongside the runtime's
//     memstats), and
//   - Prometheus text format (WritePrometheus / Handler) for
//     scrape-based collection.

// String renders the current Snapshot as JSON, implementing
// expvar.Var. Errors cannot occur: Snapshot is plain data.
func (m *Metrics) String() string {
	b, err := json.Marshal(m.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Publish registers m with the process-wide expvar registry under
// name, making it visible at /debug/vars. Unlike expvar.Publish it is
// idempotent: republishing the same name replaces silently only if the
// existing var is this m, and otherwise reports an error instead of
// panicking.
func (m *Metrics) Publish(name string) error {
	if m == nil {
		return fmt.Errorf("telemetry: cannot publish nil Metrics")
	}
	if v := expvar.Get(name); v != nil {
		if v == expvar.Var(m) {
			return nil
		}
		return fmt.Errorf("telemetry: expvar name %q already taken", name)
	}
	expvar.Publish(name, m)
	return nil
}

// promName prefixes every exposed series; a fixed prefix keeps the
// exposition collision-free when the process exports other families.
const promPrefix = "dpfsm_"

// WritePrometheus writes the Prometheus text exposition (version
// 0.0.4) of every metric. Histograms are exposed with their log₂
// bucket upper edges as `le` labels plus the conventional _sum and
// _count series.
func (m *Metrics) WritePrometheus(w io.Writer) {
	if m == nil {
		return
	}
	pc := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s%s %s\n# TYPE %s%s counter\n%s%s %d\n",
			promPrefix, name, help, promPrefix, name, promPrefix, name, v)
	}
	pg := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s%s %s\n# TYPE %s%s gauge\n%s%s %d\n",
			promPrefix, name, help, promPrefix, name, promPrefix, name, v)
	}

	pc("runs_total", "Runner entry-point executions", m.Runs.Load())
	pc("symbols_total", "input symbols consumed", m.Symbols.Load())
	pc("gathers_total", "gather kernel invocations", m.Gathers.Load())
	pc("shuffles_total", "emulated 16-lane shuffles (section 4.2 cost model)", m.Shuffles.Load())
	pc("factor_calls_total", "convergence checks issued", m.FactorCalls.Load())
	pc("factor_wins_total", "convergence checks that shrank the active vector", m.FactorWins.Load())
	pg("active_high_water", "widest enumerative vector observed", m.ActiveHighWater.Load())

	if sym := m.Symbols.Load(); sym > 0 {
		fmt.Fprintf(w, "# HELP %sshuffles_per_symbol live section-6.1 figure of merit\n# TYPE %sshuffles_per_symbol gauge\n%sshuffles_per_symbol %g\n",
			promPrefix, promPrefix, promPrefix,
			float64(m.Shuffles.Load())/float64(sym))
	}

	writeLabelCounters(w, "strategy_selected_total", "Runner constructions by resolved strategy", &m.StrategySelected)
	writeLabelCounters(w, "strategy_runs_total", "executions by strategy", &m.StrategyRuns)

	pc("stream_blocks_total", "stream blocks flushed", m.StreamBlocks.Load())
	pc("stream_bytes_total", "stream bytes consumed", m.StreamBytes.Load())

	pc("multicore_runs_total", "multicore (Figure 5) executions", m.MulticoreRuns.Load())
	pc("chunks_total", "multicore chunks processed", m.Chunks.Load())
	pc("phase3_skips_total", "accept-only runs that skipped phase 3", m.Phase3Skips.Load())

	pc("engine_jobs_total", "batch-engine jobs executed", m.EngineJobs.Load())
	pc("engine_job_errors_total", "batch-engine jobs that returned an error", m.EngineJobErrors.Load())
	pc("engine_canceled_total", "batch-engine jobs canceled", m.EngineCanceled.Load())
	pc("engine_batches_total", "batch-engine batch submissions", m.EngineBatches.Load())
	pc("engine_single_core_total", "jobs dispatched to the single-core lane", m.EngineSingleCore.Load())
	pc("engine_multicore_total", "jobs dispatched to the multicore lane", m.EngineMulticore.Load())
	pc("engine_speculative_total", "jobs dispatched to the speculative lane", m.EngineSpeculative.Load())
	pc("engine_transduce_total", "output-bearing (transduce) jobs executed", m.EngineTransduce.Load())
	pc("transduce_spans_total", "spans emitted by transduce jobs", m.TransduceSpans.Load())
	pc("transduce_output_bytes_total", "input bytes covered by emitted spans", m.TransduceOutputBytes.Load())
	pc("spec_chunks_total", "chunks executed from a guessed start state", m.SpecChunks.Load())
	pc("spec_mispredicts_total", "speculative chunks whose guess was wrong", m.SpecMispredicts.Load())
	pc("spec_rerun_bytes_total", "bytes re-run scalar after a mispredict", m.SpecReRunBytes.Load())
	if chunks := m.SpecChunks.Load(); chunks > 0 {
		fmt.Fprintf(w, "# HELP %sspec_mispredict_rate live speculative mispredict fraction\n# TYPE %sspec_mispredict_rate gauge\n%sspec_mispredict_rate %g\n",
			promPrefix, promPrefix, promPrefix,
			float64(m.SpecMispredicts.Load())/float64(chunks))
	}
	pg("engine_queue_depth", "current bounded-queue occupancy", m.EngineQueueDepth.Load())
	pg("engine_queue_high_water", "deepest bounded-queue backlog observed", m.EngineQueueHighWater.Load())
	pc("engine_queue_rejects_total", "TrySubmit jobs refused because the queue was full", m.EngineQueueRejects.Load())

	pc("plan_cache_hits_total", "plan-cache lookups served from cache", m.PlanCacheHits.Load())
	pc("plan_cache_misses_total", "plan-cache lookups that compiled", m.PlanCacheMisses.Load())
	pc("plan_cache_evictions_total", "plans evicted from the cache", m.PlanCacheEvictions.Load())

	pc("engine_cluster_total", "jobs dispatched to the cluster lane", m.EngineCluster.Load())
	pc("cluster_tasks_total", "chunk tasks answered by remote peers", m.ClusterTasks.Load())
	pc("cluster_task_errors_total", "failed remote chunk attempts", m.ClusterTaskErrors.Load())
	pc("cluster_retries_total", "chunk attempts re-sent after backoff", m.ClusterRetries.Load())
	pc("cluster_plan_ships_total", "plans shipped to peers", m.ClusterPlanShips.Load())
	pc("cluster_local_fallbacks_total", "chunks degraded to local execution", m.ClusterLocalFallbacks.Load())
	pc("cluster_breaker_opens_total", "peer circuit-breaker open transitions", m.ClusterBreakerOpens.Load())
	pc("cluster_breaker_skips_total", "chunks that skipped a peer on an open breaker", m.ClusterBreakerSkips.Load())
	pc("cluster_degraded_total", "jobs answered with at least one degraded chunk", m.ClusterDegraded.Load())

	writeHistogram(w, "engine_job_bytes", "input sizes of executed engine jobs", &m.EngineJobBytes)
	writeHistogram(w, "active_final", "active-state width at end of run", &m.ActiveFinal)
	writeHistogram(w, "chunk_bytes", "multicore chunk sizes", &m.ChunkBytes)
	writeHistogram(w, "phase1_ns", "per-chunk phase-1 wall time", &m.Phase1Time.Histogram)
	writeHistogram(w, "phase2_ns", "per-run phase-2 scan wall time", &m.Phase2Time.Histogram)
	writeHistogram(w, "phase3_ns", "per-chunk phase-3 wall time", &m.Phase3Time.Histogram)
	writeHistogramExemplars(w, "engine_job_ns", "engine job wall time", &m.EngineJobTime.Histogram, &m.EngineJobExemplars)
	writeHistogram(w, "plan_compile_ns", "plan compilation wall time on cache misses", &m.PlanCompileTime.Histogram)

	// Sliding-window latency quantiles, in the summary-style
	// quantile-label convention. Gauges, not a summary: the window
	// forgets, so the values can move in both directions.
	if m.EngineJobLatency.Count() > 0 {
		lat := m.EngineJobLatency.Quantiles(0.5, 0.9, 0.99)
		fmt.Fprintf(w, "# HELP %sengine_job_latency_ns sliding-window engine job latency\n# TYPE %sengine_job_latency_ns gauge\n",
			promPrefix, promPrefix)
		for i, q := range []string{"0.5", "0.9", "0.99"} {
			fmt.Fprintf(w, "%sengine_job_latency_ns{quantile=\"%s\"} %d\n", promPrefix, q, lat[i])
		}
	}
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double-quote, and newline only. strconv.Quote is NOT
// correct here — it escapes non-ASCII as \uXXXX, which Prometheus
// parsers read literally.
func escapeLabel(v string) string {
	var b []byte
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\', '"':
			b = append(b, '\\', c)
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return string(b)
}

func writeLabelCounters(w io.Writer, name, help string, lc *LabelCounters) {
	labels := lc.labels()
	if len(labels) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s%s %s\n# TYPE %s%s counter\n", promPrefix, name, help, promPrefix, name)
	for _, l := range labels {
		fmt.Fprintf(w, "%s%s{strategy=\"%s\"} %d\n", promPrefix, name, escapeLabel(l), lc.Get(l).Load())
	}
}

func writeHistogram(w io.Writer, name, help string, h *Histogram) {
	writeHistogramExemplars(w, name, help, h, nil)
}

// writeHistogramExemplars writes a histogram, appending an OpenMetrics
// exemplar (" # {trace_id=\"…\"} value timestamp") to each bucket line
// that has one. By construction the exemplar store shares the
// histogram's bucket layout, so the exemplar value always satisfies
// the bucket's `le` bound as the OpenMetrics spec requires.
func writeHistogramExemplars(w io.Writer, name, help string, h *Histogram, ex *Exemplars) {
	count := h.Count()
	fmt.Fprintf(w, "# HELP %s%s %s\n# TYPE %s%s histogram\n", promPrefix, name, help, promPrefix, name)
	for _, b := range h.Buckets() {
		fmt.Fprintf(w, "%s%s_bucket{le=\"%d\"} %d", promPrefix, name, b.UpperEdge, b.Cumulative)
		writeExemplar(w, ex.Bucket(b.UpperEdge))
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%s%s_bucket{le=\"+Inf\"} %d\n", promPrefix, name, count)
	fmt.Fprintf(w, "%s%s_sum %d\n", promPrefix, name, h.Sum())
	fmt.Fprintf(w, "%s%s_count %d\n", promPrefix, name, count)
}

func writeExemplar(w io.Writer, e *Exemplar) {
	if e == nil {
		return
	}
	sec := e.UnixNano / 1e9
	frac := e.UnixNano % 1e9
	if frac < 0 {
		frac = 0
	}
	fmt.Fprintf(w, " # {trace_id=\"%s\"} %d %d.%09d", escapeLabel(e.TraceID), e.Value, sec, frac)
}

// Handler returns an http.Handler serving the Prometheus text
// exposition of m. Scrapers that negotiate OpenMetrics (Accept:
// application/openmetrics-text) get the matching content type; the
// body is the same either way, with exemplars on the histogram bucket
// lines that have them.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ct := "text/plain; version=0.0.4; charset=utf-8"
		if req != nil && strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			ct = "application/openmetrics-text; version=1.0.0; charset=utf-8"
		}
		w.Header().Set("Content-Type", ct)
		m.WritePrometheus(w)
	})
}
