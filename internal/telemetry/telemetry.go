// Package telemetry provides the cheap runtime instrumentation the
// data-parallel FSM runtime reports itself with: atomic counters,
// max-gauges, log₂-bucketed histograms and span timers. The paper's
// central claims are quantitative — one or two shuffles per input
// symbol (§6.1), convergence to ≤16 active states (§5.2, Figure 7),
// "extremely fast" phase-1/2 multicore scans (§3.4) — and this package
// is how the live runtime, rather than the offline replay in
// core.ProfileInput, surfaces those numbers.
//
// Design constraints, in order:
//
//  1. Zero overhead when disabled. Every method is safe on a nil
//     receiver and returns immediately; the core runner accumulates
//     per-run statistics in stack locals inside its hot loops and
//     flushes them with a handful of atomic adds only when a Metrics
//     was attached (core.WithTelemetry). The hot-loop cost of a
//     disabled runner is a single pointer nil-check per *run*, not per
//     symbol.
//
//  2. Safe for concurrent update. The multicore phases of Figure 5
//     update counters from worker goroutines; everything here is a
//     sync/atomic primitive, so `go test -race` stays clean and
//     contended updates degrade gracefully.
//
//  3. Cheap to read while being written. Snapshot, the expvar String
//     and the Prometheus exposition all read with atomic loads and
//     never lock writers out.
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type atomicInt64 = atomic.Int64

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods are nil-safe no-ops.
type Counter struct {
	v atomicInt64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil Counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value gauge.
type Gauge struct {
	v atomicInt64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Load returns the last stored value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// MaxGauge tracks the maximum value observed (a high-water mark).
type MaxGauge struct {
	v atomicInt64
}

// Observe raises the gauge to n if n exceeds the current maximum.
func (m *MaxGauge) Observe(n int64) {
	if m == nil {
		return
	}
	for {
		cur := m.v.Load()
		if n <= cur {
			return
		}
		if m.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the high-water mark.
func (m *MaxGauge) Load() int64 {
	if m == nil {
		return 0
	}
	return m.v.Load()
}

// histBuckets is the number of log₂ histogram buckets: bucket i counts
// observations v with bits.Len64(v) == i, i.e. bucket 0 holds v == 0
// and bucket i ≥ 1 holds 2^(i-1) ≤ v < 2^i. 64-bit values always fit.
const histBuckets = 65

// Histogram is a log₂-bucketed histogram of non-negative int64
// observations (durations in nanoseconds, active-state counts, chunk
// sizes). Buckets are power-of-two boundaries, which is exactly the
// resolution the paper's quantities need: "≤16 active states" is a
// bucket edge, and phase times spread over orders of magnitude.
type Histogram struct {
	count   atomicInt64
	sum     atomicInt64
	max     MaxGauge
	buckets [histBuckets]atomicInt64
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.max.Observe(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observation.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) using
// the bucket upper edges; exact to within the log₂ bucket resolution.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.Count()
	if h == nil || n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			return bucketUpper(i)
		}
	}
	return h.max.Load()
}

// bucketUpper returns the inclusive upper edge of bucket i.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return int64(1)<<62 - 1 + int64(1)<<62 // MaxInt64
	}
	return int64(1)<<i - 1
}

// Buckets returns the cumulative (upperEdge, count) pairs for every
// non-empty bucket, suitable for a Prometheus histogram exposition.
func (h *Histogram) Buckets() []BucketCount {
	if h == nil {
		return nil
	}
	var out []BucketCount
	var cum int64
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, BucketCount{UpperEdge: bucketUpper(i), Cumulative: cum})
	}
	return out
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	UpperEdge  int64 `json:"le"`
	Cumulative int64 `json:"n"`
}

// Timer records span durations into a Histogram of nanoseconds.
type Timer struct {
	Histogram
}

// Start opens a span. On a nil Timer no clock is read and Stop is a
// no-op, preserving the zero-overhead disabled path.
func (t *Timer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: time.Now()}
}

// ObserveSince records the time elapsed since start.
func (t *Timer) ObserveSince(start time.Time) {
	if t == nil {
		return
	}
	t.Observe(int64(time.Since(start)))
}

// Span is an open timing span returned by Timer.Start.
type Span struct {
	t     *Timer
	start time.Time
}

// Stop closes the span, recording its duration.
func (s Span) Stop() {
	if s.t == nil {
		return
	}
	s.t.Observe(int64(time.Since(s.start)))
}

// LabelCounters is a small registry of counters keyed by a string
// label (strategy names). Lookups take a mutex, so callers on hot
// paths should resolve the *Counter once and cache it; the counters
// themselves are lock-free.
type LabelCounters struct {
	mu sync.Mutex
	m  map[string]*Counter
}

// Get returns the counter for label, creating it on first use.
// Nil-safe: returns nil (whose methods are no-ops) on a nil receiver.
func (lc *LabelCounters) Get(label string) *Counter {
	if lc == nil {
		return nil
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.m == nil {
		lc.m = make(map[string]*Counter)
	}
	c, ok := lc.m[label]
	if !ok {
		c = new(Counter)
		lc.m[label] = c
	}
	return c
}

// Snapshot returns the current label → value map in sorted label
// order (map iteration order is randomized; sorting keeps expositions
// and test output stable).
func (lc *LabelCounters) Snapshot() map[string]int64 {
	if lc == nil {
		return nil
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if len(lc.m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(lc.m))
	for k, c := range lc.m {
		out[k] = c.Load()
	}
	return out
}

// labels returns the sorted label set.
func (lc *LabelCounters) labels() []string {
	if lc == nil {
		return nil
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make([]string, 0, len(lc.m))
	for k := range lc.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
