package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every primitive must be a no-op on nil: this is the disabled
	// path the core runner relies on.
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Load() != 0 {
		t.Error("nil Counter should load 0")
	}
	var g *Gauge
	g.Set(3)
	if g.Load() != 0 {
		t.Error("nil Gauge should load 0")
	}
	var mg *MaxGauge
	mg.Observe(9)
	if mg.Load() != 0 {
		t.Error("nil MaxGauge should load 0")
	}
	var h *Histogram
	h.Observe(4)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil Histogram should be empty")
	}
	if h.Buckets() != nil {
		t.Error("nil Histogram buckets should be nil")
	}
	var tm *Timer
	tm.Start().Stop() // must not read the clock or panic
	tm.ObserveSince(time.Time{})
	var lc *LabelCounters
	lc.Get("x").Inc()
	if lc.Snapshot() != nil {
		t.Error("nil LabelCounters snapshot should be nil")
	}
	var m *Metrics
	if s := m.Snapshot(); s.Runs != 0 {
		t.Error("nil Metrics snapshot should be zero")
	}
	m.WritePrometheus(nil)
}

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Add(40)
	c.Inc()
	c.Inc()
	if got := c.Load(); got != 42 {
		t.Errorf("Counter = %d, want 42", got)
	}
	var mg MaxGauge
	for _, v := range []int64{3, 9, 4, 9, 1} {
		mg.Observe(v)
	}
	if mg.Load() != 9 {
		t.Errorf("MaxGauge = %d, want 9", mg.Load())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 99*100/2 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	if h.Max() != 99 {
		t.Fatalf("Max = %d", h.Max())
	}
	if got := h.Mean(); got != 49.5 {
		t.Fatalf("Mean = %v", got)
	}
	// The median of 0..99 is ~50; the log₂ bucket upper edge covering
	// it is 63.
	if got := h.Quantile(0.5); got != 63 {
		t.Errorf("Quantile(0.5) = %d, want 63", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %d, want 0", got)
	}
	if got := h.Quantile(1); got < 64 {
		t.Errorf("Quantile(1) = %d, want ≥64", got)
	}
	// Cumulative buckets must be monotone and end at Count.
	bs := h.Buckets()
	var prev int64 = -1
	for _, b := range bs {
		if b.Cumulative <= prev {
			t.Fatalf("non-monotone cumulative buckets: %+v", bs)
		}
		prev = b.Cumulative
	}
	if prev != h.Count() {
		t.Fatalf("last cumulative %d != count %d", prev, h.Count())
	}
	// Negative observations clamp to zero rather than corrupting Sum.
	var h2 Histogram
	h2.Observe(-5)
	if h2.Sum() != 0 || h2.Count() != 1 {
		t.Error("negative observation should clamp to 0")
	}
}

func TestTimerRecords(t *testing.T) {
	var tm Timer
	sp := tm.Start()
	time.Sleep(time.Millisecond)
	sp.Stop()
	if tm.Count() != 1 {
		t.Fatalf("Count = %d", tm.Count())
	}
	if tm.Sum() < int64(time.Millisecond)/2 {
		t.Errorf("recorded %dns, want ≥0.5ms", tm.Sum())
	}
}

func TestLabelCounters(t *testing.T) {
	var lc LabelCounters
	a := lc.Get("convergence")
	b := lc.Get("convergence")
	if a != b {
		t.Fatal("Get must return a stable counter per label")
	}
	a.Add(3)
	lc.Get("range").Inc()
	snap := lc.Snapshot()
	if snap["convergence"] != 3 || snap["range"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	// Exercised under -race in CI: counters, histograms and label
	// counters are updated the way multicore phase workers update
	// them.
	var m Metrics
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := m.StrategyRuns.Get("convergence")
			for i := 0; i < per; i++ {
				m.Shuffles.Add(2)
				m.Symbols.Inc()
				m.ActiveHighWater.Observe(int64(w*per + i))
				m.Phase1Time.Observe(int64(i))
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Symbols != workers*per || s.Shuffles != 2*workers*per {
		t.Fatalf("lost updates: %+v", s)
	}
	if s.ShufflesPerSymbol != 2 {
		t.Fatalf("ShufflesPerSymbol = %v, want 2", s.ShufflesPerSymbol)
	}
	if s.ActiveHighWater != workers*per-1 {
		t.Fatalf("high water = %d", s.ActiveHighWater)
	}
	if s.StrategyRuns["convergence"] != workers*per {
		t.Fatalf("strategy runs = %v", s.StrategyRuns)
	}
	if s.Phase1.Count != workers*per {
		t.Fatalf("phase1 count = %d", s.Phase1.Count)
	}
}

func TestExpvarString(t *testing.T) {
	var m Metrics
	m.Runs.Add(7)
	m.StreamBytes.Add(1 << 20)
	var decoded map[string]any
	if err := json.Unmarshal([]byte(m.String()), &decoded); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	if decoded["runs"].(float64) != 7 {
		t.Errorf("runs = %v", decoded["runs"])
	}
	if err := m.Publish("test_metrics"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	// Idempotent republish of the same Metrics is fine; a different
	// one under the same name must error, not panic.
	if err := m.Publish("test_metrics"); err != nil {
		t.Fatalf("republish same: %v", err)
	}
	var other Metrics
	if err := other.Publish("test_metrics"); err == nil {
		t.Error("publishing a different Metrics under a taken name should error")
	}
}

func TestPrometheusExposition(t *testing.T) {
	var m Metrics
	m.Shuffles.Add(100)
	m.Symbols.Add(50)
	m.StrategyRuns.Get("range").Add(4)
	m.Phase1Time.Observe(1500)
	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE dpfsm_shuffles_total counter",
		"dpfsm_shuffles_total 100",
		"dpfsm_shuffles_per_symbol 2",
		`dpfsm_strategy_runs_total{strategy="range"} 4`,
		"dpfsm_phase1_ns_count 1",
		"dpfsm_phase1_ns_sum 1500",
		`dpfsm_phase1_ns_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}
