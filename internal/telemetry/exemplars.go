package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Exemplars. A histogram tells an operator *that* p99 latency sits in
// the 2^24–2^25 ns bucket; an exemplar tells them *which request* —
// attaching a recent trace ID to each bucket so the dashboard's
// latency panel links straight into the flight recorder. This is the
// OpenMetrics exemplar model: at most one exemplar per bucket,
// last-writer-wins, never blocking the hot path.
//
// The store mirrors Histogram's shape exactly — the same 65 log₂
// buckets indexed by bits.Len64 — so an exemplar recorded for value v
// always sits on the bucket whose `le` bound admits v, which is what
// the OpenMetrics spec requires ("the exemplar value MUST be within
// the bucket's range").

// Exemplar is one retained observation: the trace that produced it,
// the observed value, and when it happened.
type Exemplar struct {
	TraceID  string `json:"trace_id"`
	Value    int64  `json:"value"`
	UnixNano int64  `json:"unix_nano"`
}

// Exemplars holds at most one exemplar per log₂ bucket. The zero
// value is ready to use; all methods are nil-safe.
type Exemplars struct {
	buckets [histBuckets]atomic.Pointer[Exemplar]
}

// Observe records an exemplar for value v (clamped at zero, matching
// Histogram.Observe) produced by traceID at nowUnixNano. Empty trace
// IDs are ignored — an exemplar without a trace to link to is noise.
func (e *Exemplars) Observe(v int64, traceID string, nowUnixNano int64) {
	if e == nil || traceID == "" {
		return
	}
	if v < 0 {
		v = 0
	}
	e.buckets[bits.Len64(uint64(v))].Store(&Exemplar{
		TraceID:  traceID,
		Value:    v,
		UnixNano: nowUnixNano,
	})
}

// Bucket returns the exemplar for the bucket that value v falls into,
// or nil when none was recorded.
func (e *Exemplars) Bucket(v int64) *Exemplar {
	if e == nil {
		return nil
	}
	if v < 0 {
		v = 0
	}
	return e.buckets[bits.Len64(uint64(v))].Load()
}

// Snapshot returns every recorded exemplar keyed by its bucket's
// inclusive upper edge, for JSON surfaces and tests.
func (e *Exemplars) Snapshot() map[int64]Exemplar {
	if e == nil {
		return nil
	}
	var out map[int64]Exemplar
	for i := 0; i < histBuckets; i++ {
		if ex := e.buckets[i].Load(); ex != nil {
			if out == nil {
				out = make(map[int64]Exemplar)
			}
			out[bucketUpper(i)] = *ex
		}
	}
	return out
}

// bucketExemplar returns the exemplar stored for bucket index i.
func (e *Exemplars) bucketExemplar(i int) *Exemplar {
	if e == nil || i < 0 || i >= histBuckets {
		return nil
	}
	return e.buckets[i].Load()
}
