package telemetry

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
)

// Runtime attribution: the Go runtime already measures the things a
// perf investigation reaches for first — GC pauses, heap size,
// goroutine count, scheduler latency — via the runtime/metrics
// package. This file bridges a fixed, curated subset of those series
// onto the repo's two exposition surfaces (JSON snapshot and
// Prometheus text) so a dashboard scraping /v1/metrics sees the FSM
// counters and the runtime's health in one page, and a BENCH_*.json
// consumer can correlate a throughput dip with, say, a GC pause
// spike. The subset is fixed rather than "everything runtime/metrics
// offers" so the exposition stays stable across Go versions.

// runtimeSamples is the curated sample set, in one batch so a single
// metrics.Read call fills all of them.
const (
	rmGoroutines   = "/sched/goroutines:goroutines"
	rmHeapObjects  = "/memory/classes/heap/objects:bytes"
	rmMemTotal     = "/memory/classes/total:bytes"
	rmGCCycles     = "/gc/cycles/total:gc-cycles"
	rmGCPauses     = "/gc/pauses:seconds"
	rmSchedLatency = "/sched/latencies:seconds"
)

// RuntimeSnapshot is the JSON-encodable view of the curated runtime
// series. Pause and latency quantiles are in nanoseconds to match
// every other duration in the telemetry surface; they are approximate
// (bucket upper edges of the runtime's histograms), which is plenty
// for "is GC eating my tail latency".
type RuntimeSnapshot struct {
	Goroutines    int64 `json:"goroutines"`
	HeapObjectsB  int64 `json:"heap_objects_bytes"`
	MemTotalB     int64 `json:"mem_total_bytes"`
	GCCycles      int64 `json:"gc_cycles"`
	GCPauseP50Ns  int64 `json:"gc_pause_p50_ns"`
	GCPauseP99Ns  int64 `json:"gc_pause_p99_ns"`
	SchedLatP50Ns int64 `json:"sched_latency_p50_ns"`
	SchedLatP99Ns int64 `json:"sched_latency_p99_ns"`
}

// ReadRuntime samples the curated runtime/metrics series.
func ReadRuntime() RuntimeSnapshot {
	samples := []metrics.Sample{
		{Name: rmGoroutines},
		{Name: rmHeapObjects},
		{Name: rmMemTotal},
		{Name: rmGCCycles},
		{Name: rmGCPauses},
		{Name: rmSchedLatency},
	}
	metrics.Read(samples)
	var s RuntimeSnapshot
	s.Goroutines = sampleInt(samples[0])
	s.HeapObjectsB = sampleInt(samples[1])
	s.MemTotalB = sampleInt(samples[2])
	s.GCCycles = sampleInt(samples[3])
	s.GCPauseP50Ns, s.GCPauseP99Ns = histQuantilesNs(samples[4])
	s.SchedLatP50Ns, s.SchedLatP99Ns = histQuantilesNs(samples[5])
	return s
}

// sampleInt extracts an integer-ish sample, 0 for unsupported kinds
// (a metric absent in this Go version reads as KindBad).
func sampleInt(s metrics.Sample) int64 {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		v := s.Value.Uint64()
		if v > math.MaxInt64 {
			return math.MaxInt64
		}
		return int64(v)
	case metrics.KindFloat64:
		return int64(s.Value.Float64())
	default:
		return 0
	}
}

// histQuantilesNs approximates the p50 and p99 of a runtime
// Float64Histogram (seconds) as nanoseconds, using bucket upper
// edges. Returns zeros when the histogram is absent or empty.
func histQuantilesNs(s metrics.Sample) (p50, p99 int64) {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return 0, 0
	}
	h := s.Value.Float64Histogram()
	if h == nil {
		return 0, 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0, 0
	}
	quantile := func(q float64) int64 {
		rank := uint64(q * float64(total))
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			if cum > rank {
				// Buckets[i+1] is the bucket's upper edge; the last
				// bucket's edge may be +Inf, in which case fall back to
				// its finite lower edge.
				edge := h.Buckets[i+1]
				if math.IsInf(edge, +1) {
					edge = h.Buckets[i]
				}
				return int64(edge * 1e9)
			}
		}
		return 0
	}
	return quantile(0.5), quantile(0.99)
}

// WriteRuntimePrometheus writes the curated runtime series in the
// Prometheus text format, prefixed like the FSM series so a scrape of
// the combined exposition stays one coherent family ("go_" is left to
// real Prometheus client libraries to avoid collisions if one is ever
// linked in).
func WriteRuntimePrometheus(w io.Writer) {
	s := ReadRuntime()
	pg := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s%s %s\n# TYPE %s%s gauge\n%s%s %d\n",
			promPrefix, name, help, promPrefix, name, promPrefix, name, v)
	}
	pg("runtime_goroutines", "live goroutine count", s.Goroutines)
	pg("runtime_heap_objects_bytes", "bytes of live heap objects", s.HeapObjectsB)
	pg("runtime_mem_total_bytes", "total memory mapped by the Go runtime", s.MemTotalB)
	fmt.Fprintf(w, "# HELP %sruntime_gc_cycles_total completed GC cycles\n# TYPE %sruntime_gc_cycles_total counter\n%sruntime_gc_cycles_total %d\n",
		promPrefix, promPrefix, promPrefix, s.GCCycles)
	pg("runtime_gc_pause_p50_ns", "median stop-the-world GC pause", s.GCPauseP50Ns)
	pg("runtime_gc_pause_p99_ns", "p99 stop-the-world GC pause", s.GCPauseP99Ns)
	pg("runtime_sched_latency_p50_ns", "median goroutine scheduling latency", s.SchedLatP50Ns)
	pg("runtime_sched_latency_p99_ns", "p99 goroutine scheduling latency", s.SchedLatP99Ns)
}
