package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestExemplarsObserveAndBucket(t *testing.T) {
	var e Exemplars
	if e.Bucket(50_000) != nil {
		t.Fatal("empty store returned an exemplar")
	}
	e.Observe(50_000, "aa", 123)
	ex := e.Bucket(50_000)
	if ex == nil || ex.TraceID != "aa" || ex.Value != 50_000 || ex.UnixNano != 123 {
		t.Fatalf("exemplar = %+v", ex)
	}
	// Same bucket (2^15..2^16-1): last writer wins.
	e.Observe(60_000, "bb", 456)
	if ex := e.Bucket(50_000); ex.TraceID != "bb" {
		t.Fatalf("swap lost: %+v", ex)
	}
	// Different bucket: independent slot.
	e.Observe(3, "cc", 789)
	if ex := e.Bucket(3); ex.TraceID != "cc" {
		t.Fatalf("small bucket: %+v", ex)
	}
	if ex := e.Bucket(50_000); ex.TraceID != "bb" {
		t.Fatal("small-bucket write clobbered the large bucket")
	}
	// Negative values clamp to the zero bucket, matching Histogram.
	e.Observe(-5, "dd", 1)
	if ex := e.Bucket(0); ex == nil || ex.TraceID != "dd" || ex.Value != 0 {
		t.Fatalf("negative clamp: %+v", ex)
	}
}

func TestExemplarsIgnoresEmptyTraceID(t *testing.T) {
	var e Exemplars
	e.Observe(10, "", 1)
	if e.Bucket(10) != nil {
		t.Fatal("empty trace ID recorded")
	}
}

func TestExemplarsNilSafe(t *testing.T) {
	var e *Exemplars
	e.Observe(1, "x", 1)
	if e.Bucket(1) != nil || e.Snapshot() != nil {
		t.Fatal("nil Exemplars not inert")
	}
}

func TestExemplarsSnapshot(t *testing.T) {
	var e Exemplars
	e.Observe(0, "z", 1)
	e.Observe(100, "h", 2)
	snap := e.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap[0].TraceID != "z" || snap[127].TraceID != "h" {
		t.Fatalf("snapshot keys wrong: %v", snap)
	}
}

// TestExemplarsConcurrentSwap races writers against readers on the
// same bucket: the atomic pointer swap must always yield a coherent
// exemplar (trace ID, value and timestamp from one writer, never a
// mix), and the exposition writer must tolerate racing swaps.
func TestExemplarsConcurrentSwap(t *testing.T) {
	m := new(Metrics)
	m.EngineJobTime.Observe(1000)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("%032x", g*1_000_000+i)
				m.EngineJobExemplars.Observe(1000, id, int64(i))
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		ex := m.EngineJobExemplars.Bucket(1000)
		if ex == nil {
			continue
		}
		var g, n int
		if _, err := fmt.Sscanf(ex.TraceID, "%032x", &n); err != nil {
			t.Fatalf("torn trace ID %q: %v", ex.TraceID, err)
		}
		g, n = n/1_000_000, n%1_000_000
		if g < 0 || g > 3 || ex.UnixNano != int64(n) {
			t.Fatalf("incoherent exemplar %+v (writer %d, iter %d)", ex, g, n)
		}
		if ex.Value != 1000 {
			t.Fatalf("exemplar value %d", ex.Value)
		}
		var sb strings.Builder
		m.WritePrometheus(&sb)
		if !strings.Contains(sb.String(), "# {trace_id=") {
			t.Fatal("exposition lost the exemplar mid-swap")
		}
	}
	close(stop)
	wg.Wait()
}

// TestWindowSingleSample pins the single-observation edge: every
// quantile is that one sample, and the exemplar path alongside it
// exposes the sample's bucket.
func TestWindowSingleSample(t *testing.T) {
	m := new(Metrics)
	m.EngineJobLatency.Observe(777)
	qs := m.EngineJobLatency.Quantiles(0, 0.5, 0.99, 1)
	for i, q := range qs {
		if q != 777 {
			t.Fatalf("quantile[%d] = %d, want 777", i, q)
		}
	}
	m.EngineJobTime.Observe(777)
	m.EngineJobExemplars.Observe(777, strings.Repeat("ab", 16), 42)
	var sb strings.Builder
	m.WritePrometheus(&sb)
	want := fmt.Sprintf(`dpfsm_engine_job_ns_bucket{le="1023"} 1 # {trace_id="%s"} 777`, strings.Repeat("ab", 16))
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("single-sample exemplar line missing; exposition:\n%s", sb.String())
	}
}
