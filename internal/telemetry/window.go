package telemetry

import (
	"sort"
	"sync"
)

// windowSize is the sliding-window length of a Window: large enough
// that p99 over the window rests on ~10 samples, small enough that one
// Quantiles call sorts in microseconds.
const windowSize = 1024

// Window is a sliding-window quantile estimator over the most recent
// windowSize observations. It complements the log₂ Histogram: the
// histogram is cheap and lock-free but quantizes to powers of two and
// never forgets, which makes "what is p99 latency *right now*"
// unanswerable after a traffic shift. The window trades a short
// critical section per observation (one slot store under a mutex —
// nanoseconds, far below the cost of the jobs it measures) for exact
// order statistics over recent traffic.
//
// The zero Window is ready to use and allocates its buffer on first
// Observe, so embedding one in Metrics costs nothing until used.
// Nil-safe like every other telemetry primitive.
type Window struct {
	mu    sync.Mutex
	buf   []int64
	next  int
	count int64
}

// Observe records one value into the window.
func (w *Window) Observe(v int64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.buf == nil {
		w.buf = make([]int64, windowSize)
	}
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	w.count++
	w.mu.Unlock()
}

// Count returns the total number of observations ever recorded
// (not capped at the window length).
func (w *Window) Count() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Quantiles returns the exact qs-quantiles (each in [0,1]) over the
// retained window, in the order requested. With no observations every
// quantile is 0. The rank convention matches Histogram.Quantile:
// rank ⌊q·n⌋ of the ascending order statistics, clamped to the last.
func (w *Window) Quantiles(qs ...float64) []int64 {
	out := make([]int64, len(qs))
	if w == nil {
		return out
	}
	w.mu.Lock()
	n := w.count
	if n > int64(len(w.buf)) {
		n = int64(len(w.buf))
	}
	sorted := make([]int64, n)
	if n > 0 {
		copy(sorted, w.buf[:n])
	}
	w.mu.Unlock()
	if n == 0 {
		return out
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		rank := int64(q * float64(n))
		if rank >= n {
			rank = n - 1
		}
		out[i] = sorted[rank]
	}
	return out
}
