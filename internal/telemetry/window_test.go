package telemetry

import (
	"runtime"
	"sync"
	"testing"
)

// Satellite coverage for Window: the degenerate sizes (empty, one
// sample) and the concurrency contract. The quantile-correctness tests
// over full windows live next to the exposition tests.

func TestWindowEmpty(t *testing.T) {
	var w Window
	qs := w.Quantiles(0, 0.5, 0.99, 1)
	for i, q := range qs {
		if q != 0 {
			t.Fatalf("empty window quantile[%d] = %d, want 0", i, q)
		}
	}
	if w.Count() != 0 {
		t.Fatalf("empty window count = %d", w.Count())
	}
}

func TestWindowOneSample(t *testing.T) {
	var w Window
	w.Observe(42)
	if w.Count() != 1 {
		t.Fatalf("count = %d, want 1", w.Count())
	}
	// With a single sample every quantile — including the clamped
	// out-of-range requests — is that sample.
	for i, q := range w.Quantiles(-0.5, 0, 0.5, 0.99, 1, 2) {
		if q != 42 {
			t.Fatalf("one-sample quantile[%d] = %d, want 42", i, q)
		}
	}
}

// TestWindowConcurrentWriters hammers one Window from many writers
// while readers pull quantiles, then checks the retained values are
// exactly the set written (no torn or phantom slots). Run with -race
// this is the data-race proof for the Observe/Quantiles pair.
func TestWindowConcurrentWriters(t *testing.T) {
	var w Window
	const writers = 8
	const perWriter = 4 * windowSize // force plenty of wraparound

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: the values they see are racy by design; the
	// assertion is only that reads are safe and within the written set.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, q := range w.Quantiles(0.5, 0.9, 0.99) {
					if q < 0 || q > writers*perWriter {
						t.Errorf("quantile %d outside written range", q)
						return
					}
				}
				w.Count()
			}
		}()
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for j := int64(1); j <= perWriter; j++ {
				w.Observe(base + j)
			}
		}(int64(i * perWriter))
	}
	// Wait for the writers (the first `writers` goroutines started
	// after the readers), then release the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// Writers and readers share wg; stop readers once the count shows
	// all writes landed, then wait for everything.
	for w.Count() < writers*perWriter {
		runtime.Gosched()
	}
	close(stop)
	<-done

	if got := w.Count(); got != writers*perWriter {
		t.Fatalf("count = %d, want %d", got, writers*perWriter)
	}
	// Every retained value must be one somebody actually wrote
	// (positive, ≤ max) — a torn slot would violate this.
	qs := w.Quantiles(0, 0.25, 0.5, 0.75, 0.9, 0.99, 1)
	for i, q := range qs {
		if q < 1 || q > writers*perWriter {
			t.Fatalf("quantile[%d] = %d outside written range [1, %d]", i, q, writers*perWriter)
		}
	}
	// Quantiles over a sorted copy must be monotone in q.
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Fatalf("quantiles not monotone: %v", qs)
		}
	}
}
