package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/telemetry"
)

// matrixStrategies is the full single-core strategy matrix the batch
// results must be bit-identical across.
var matrixStrategies = []core.Strategy{
	core.Sequential, core.Base, core.BaseILP,
	core.Convergence, core.RangeCoalesced, core.RangeConvergence,
}

// TestBatchMatchesSequentialReference runs a mixed-size batch through
// the engine under every strategy and checks every result against the
// sequential oracle — including inputs above the large-input threshold
// that take the multicore lane.
func TestBatchMatchesSequentialReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	machines := map[string]*fsm.DFA{
		"small": fsm.RandomConverging(rng, 40, 8, 6, 0.3),
		"big":   fsm.RandomConverging(rng, 400, 8, 10, 0.3),
	}

	// Mixed sizes straddling the 4 KiB threshold set below, so both
	// dispatch lanes are exercised.
	sizes := []int{0, 1, 37, 512, 4096, 4097, 64 << 10}

	for _, strat := range matrixStrategies {
		met := new(telemetry.Metrics)
		e := New(
			WithWorkers(4),
			WithProcs(4),
			WithLargeInput(4096),
			WithTelemetry(met),
		)
		var jobs []Job
		type ref struct {
			final   fsm.State
			accepts bool
		}
		var want []ref
		for name, d := range machines {
			if _, err := e.Register(name, d, core.WithStrategy(strat), core.WithMinChunk(1<<10)); err != nil {
				t.Fatalf("%v: register %s: %v", strat, name, err)
			}
			for _, n := range sizes {
				input := d.RandomInput(rng, n)
				jobs = append(jobs, Job{Machine: name, Input: input})
				final := d.Run(input, d.Start())
				want = append(want, ref{final: final, accepts: d.Accepting(final)})
			}
		}
		results, stats := e.RunBatch(context.Background(), jobs)
		if len(results) != len(jobs) {
			t.Fatalf("%v: %d results for %d jobs", strat, len(results), len(jobs))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Errorf("%v job %d: %v", strat, i, r.Err)
				continue
			}
			if r.Final != want[i].final || r.Accepts != want[i].accepts {
				t.Errorf("%v job %d (%s, %d bytes): got (%d,%v) want (%d,%v)",
					strat, i, r.Machine, r.Bytes, r.Final, r.Accepts, want[i].final, want[i].accepts)
			}
		}
		if stats.OK != len(jobs) || stats.Errors != 0 {
			t.Errorf("%v: stats %+v", strat, stats)
		}
		if stats.Multicore == 0 || stats.SingleCore == 0 {
			t.Errorf("%v: dispatch policy never split: %+v", strat, stats)
		}
		snap := met.Snapshot()
		if snap.EngineJobs != int64(len(jobs)) {
			t.Errorf("%v: telemetry EngineJobs = %d, want %d", strat, snap.EngineJobs, len(jobs))
		}
		if snap.EngineSingleCore == 0 || snap.EngineMulticore == 0 {
			t.Errorf("%v: telemetry lanes: single=%d multi=%d", strat, snap.EngineSingleCore, snap.EngineMulticore)
		}
		e.Close()
	}
}

// TestBatchCancellation proves a mid-batch cancel stops the workers
// promptly and returns partial results with per-job errors: early tiny
// jobs complete, the rest fail with context.Canceled, and the whole
// batch returns well before the uncanceled batch would have.
func TestBatchCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := fsm.RandomConverging(rng, 40, 8, 6, 0.2)
	e := New(WithWorkers(2), WithProcs(1), WithTelemetry(new(telemetry.Metrics)))
	defer e.Close()
	if _, err := e.Register("m", d); err != nil {
		t.Fatal(err)
	}

	big := d.RandomInput(rng, 48<<20) // shared across jobs: ~50 ms each
	jobs := make([]Job, 0, 20)
	for i := 0; i < 4; i++ {
		jobs = append(jobs, Job{Machine: "m", Input: d.RandomInput(rng, 64)})
	}
	for i := 0; i < 16; i++ {
		jobs = append(jobs, Job{Machine: "m", Input: big})
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	results, stats := e.RunBatch(ctx, jobs)
	elapsed := time.Since(t0)

	// Prompt: in-flight jobs stop at the next 64 KiB block, queued jobs
	// fail fast. The uncanceled batch is ~16 × tens of ms on 2 workers.
	if elapsed > 5*time.Second {
		t.Errorf("cancelled batch took %v", elapsed)
	}
	var ok, canceled int
	for _, r := range results {
		switch {
		case r.Err == nil:
			ok++
		case errors.Is(r.Err, context.Canceled):
			canceled++
		default:
			t.Errorf("job %d: unexpected error %v", r.Index, r.Err)
		}
	}
	if ok == 0 {
		t.Error("no jobs completed before the cancel — want partial results")
	}
	if canceled == 0 {
		t.Error("no jobs were canceled")
	}
	if stats.OK != ok || stats.Canceled != canceled {
		t.Errorf("stats %+v disagree with results (ok=%d canceled=%d)", stats, ok, canceled)
	}
	snap := e.Telemetry().Snapshot()
	if snap.EngineCanceled == 0 {
		t.Error("telemetry EngineCanceled still zero")
	}
}

// TestJobTimeout bounds one job without touching its batch siblings.
func TestJobTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := fsm.RandomConverging(rng, 40, 8, 6, 0.2)
	e := New(WithWorkers(1), WithProcs(1))
	defer e.Close()
	if _, err := e.Register("m", d); err != nil {
		t.Fatal(err)
	}
	big := d.RandomInput(rng, 64<<20)
	jobs := []Job{
		{Machine: "m", Input: big, Timeout: time.Microsecond},
		{Machine: "m", Input: d.RandomInput(rng, 128)},
	}
	results, stats := e.RunBatch(context.Background(), jobs)
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Errorf("timed-out job err = %v", results[0].Err)
	}
	if results[1].Err != nil {
		t.Errorf("sibling job err = %v", results[1].Err)
	}
	if stats.Canceled != 1 || stats.OK != 1 {
		t.Errorf("stats %+v", stats)
	}
}

// TestJobValidation covers the per-job failure modes.
func TestJobValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	d := fsm.RandomConverging(rng, 10, 4, 3, 0.3)
	e := New(WithWorkers(1), WithProcs(1))
	defer e.Close()
	if _, err := e.Register("m", d); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("m", d); err == nil {
		t.Error("duplicate registration should fail")
	}
	if _, err := e.Register("", d); err == nil {
		t.Error("empty name should fail")
	}

	r := e.Run(context.Background(), Job{Machine: "nope", Input: []byte("x")})
	if !errors.Is(r.Err, ErrUnknownMachine) {
		t.Errorf("unknown machine err = %v", r.Err)
	}
	r = e.Run(context.Background(), Job{Machine: "m", Input: []byte("x"), Start: 99, HasStart: true})
	if !errors.Is(r.Err, ErrBadStart) {
		t.Errorf("bad start err = %v", r.Err)
	}
	// Empty machine name falls back to the first registration.
	r = e.Run(context.Background(), Job{Input: []byte{0, 1, 2}})
	if r.Err != nil || r.Machine != "m" {
		t.Errorf("default machine: %+v", r)
	}
	// Explicit start state agrees with the direct runner.
	r = e.Run(context.Background(), Job{Machine: "m", Input: []byte{1, 2, 3}, Start: 4, HasStart: true})
	if r.Err != nil || r.Final != d.Run([]byte{1, 2, 3}, 4) {
		t.Errorf("explicit start: %+v", r)
	}
}

// TestClose verifies Close fails queued work and rejects later
// submissions.
func TestClose(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	d := fsm.RandomConverging(rng, 10, 4, 3, 0.3)
	e := New(WithWorkers(1), WithProcs(1))
	if _, err := e.Register("m", d); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	out := make(chan Result, 1)
	if err := e.Submit(context.Background(), Job{Machine: "m"}, 0, out); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: %v", err)
	}
}
