package engine

// PlanCache: the compile/execute split's payoff at the engine layer.
// Register used to derive the strategy tables twice per machine (once
// for the single-core runner, once for the multicore one) and from
// scratch on every registration; the cache keys compiled plans by
// core.PlanKey — sha256(machine encoding ‖ resolved strategy) — so a
// machine compiles once and every later runner construction is a map
// lookup. Procs, convergence cadence and telemetry are deliberately
// absent from the key: plans are invariant under them (they live on
// Runner), which is what lets one entry serve both engine lanes.

import (
	"container/list"
	"sync"
	"sync/atomic"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/telemetry"
)

// DefaultPlanCacheSize bounds an engine's plan cache when the caller
// does not supply one: generous for rule-set-sized registries (the
// Snort corpus is ~100 machines) while bounding a churning registry.
const DefaultPlanCacheSize = 256

// PlanCacheStats is a point-in-time view of cache effectiveness.
type PlanCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// HitRate returns hits/(hits+misses), 0 before any lookup.
func (s PlanCacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// PlanCache is a bounded LRU of compiled plans keyed by fingerprint.
// It is safe for concurrent use; compilation on a miss happens outside
// the lock, so a slow compile never blocks hits on other machines
// (concurrent misses on the *same* key may compile twice — the losing
// plan is dropped and the cached one returned, keeping the
// one-plan-per-fingerprint invariant).
type PlanCache struct {
	mu    sync.Mutex
	ll    *list.List // front = most recent
	index map[string]*list.Element
	max   int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	tel *telemetry.Metrics
}

type planEntry struct {
	key  string
	plan *core.Plan
}

// NewPlanCache builds a cache bounded to max entries (max <= 0 means
// DefaultPlanCacheSize). tel, when non-nil, receives hit/miss/eviction
// counters and compile timings alongside the cache's own stats.
func NewPlanCache(max int, tel *telemetry.Metrics) *PlanCache {
	if max <= 0 {
		max = DefaultPlanCacheSize
	}
	return &PlanCache{
		ll:    list.New(),
		index: make(map[string]*list.Element),
		max:   max,
		tel:   tel,
	}
}

// GetOrCompile returns the cached plan for (d, opts), compiling and
// inserting it on a miss. The boolean reports whether the lookup hit.
func (c *PlanCache) GetOrCompile(d *fsm.DFA, opts ...core.Option) (*core.Plan, bool, error) {
	key, err := core.PlanKey(d, opts...)
	if err != nil {
		return nil, false, err
	}
	if p := c.lookup(key); p != nil {
		return p, true, nil
	}
	var sp telemetry.Span
	if c.tel != nil {
		sp = c.tel.PlanCompileTime.Start()
	}
	p, err := core.CompilePlan(d, opts...)
	sp.Stop()
	if err != nil {
		return nil, false, err
	}
	return c.insert(key, p), false, nil
}

// GetOrCompileTransducer is GetOrCompile for output-bearing machines.
// The key covers λ (core.TransducerPlanKey), so two transducers over
// the same δ with different output tables occupy distinct entries —
// and never collide with the acceptor plan of the same machine.
func (c *PlanCache) GetOrCompileTransducer(t *fsm.Transducer, opts ...core.Option) (*core.Plan, bool, error) {
	key, err := core.TransducerPlanKey(t, opts...)
	if err != nil {
		return nil, false, err
	}
	if p := c.lookup(key); p != nil {
		return p, true, nil
	}
	var sp telemetry.Span
	if c.tel != nil {
		sp = c.tel.PlanCompileTime.Start()
	}
	p, err := core.CompileTransducer(t, opts...)
	sp.Stop()
	if err != nil {
		return nil, false, err
	}
	return c.insert(key, p), false, nil
}

// Get returns the cached plan for key, or nil. A hit refreshes
// recency but is not counted in the hit/miss stats — only
// GetOrCompile lookups are, so the hit rate measures registration
// reuse rather than introspection traffic.
func (c *PlanCache) Get(key string) *core.Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*planEntry).plan
	}
	return nil
}

// Add inserts an externally obtained plan (e.g. one deserialized from
// a plan-cache directory) under its own fingerprint. If the
// fingerprint is already cached the existing plan wins and is
// returned, so callers always end up sharing the canonical instance.
func (c *PlanCache) Add(p *core.Plan) *core.Plan {
	return c.insert(p.Fingerprint(), p)
}

// Stats returns current counters and size.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	entries := c.ll.Len()
	c.mu.Unlock()
	return PlanCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
	}
}

// Len reports the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// lookup is the stats-counted read half of GetOrCompile.
func (c *PlanCache) lookup(key string) *core.Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		if c.tel != nil {
			c.tel.PlanCacheHits.Inc()
		}
		return el.Value.(*planEntry).plan
	}
	c.misses.Add(1)
	if c.tel != nil {
		c.tel.PlanCacheMisses.Inc()
	}
	return nil
}

// insert stores plan under key unless a concurrent insert got there
// first, evicting from the LRU tail past capacity. Returns the plan
// now cached under key.
func (c *PlanCache) insert(key string, p *core.Plan) *core.Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*planEntry).plan
	}
	c.index[key] = c.ll.PushFront(&planEntry{key: key, plan: p})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.index, tail.Value.(*planEntry).key)
		c.evictions.Add(1)
		if c.tel != nil {
			c.tel.PlanCacheEvictions.Inc()
		}
	}
	return p
}
