package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"dpfsm/internal/fsm"
	"dpfsm/internal/telemetry"
)

// TestTrySubmitQueueFull wedges a one-worker, depth-one engine — the
// worker blocks delivering a result nobody reads while a second job
// fills the queue — and verifies TrySubmit sheds the third job with
// the typed error and increments the matching telemetry counter,
// while the blocking Submit contract stays intact for the first two.
func TestTrySubmitQueueFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := fsm.RandomConverging(rng, 10, 4, 3, 0.3)
	tel := new(telemetry.Metrics)
	e := New(WithWorkers(1), WithQueueDepth(1), WithProcs(1), WithTelemetry(tel))
	defer e.Close()
	if _, err := e.Register("m", d); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	job := Job{Machine: "m", Input: []byte{0, 1, 2}}
	out := make(chan Result) // unbuffered: the worker blocks on delivery

	// Job A: the worker dequeues it, executes, and wedges on out.
	if err := e.Submit(ctx, job, 0, out); err != nil {
		t.Fatalf("submit A: %v", err)
	}
	// Job B: fills the (now empty) queue. Submit blocks until the
	// worker has taken A, so after this returns the queue is full.
	if err := e.Submit(ctx, job, 1, out); err != nil {
		t.Fatalf("submit B: %v", err)
	}

	// Job C: must be shed, not queued.
	err := e.TrySubmit(ctx, job, 2, out)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySubmit on full queue: err = %v, want ErrQueueFull", err)
	}
	if got := tel.EngineQueueRejects.Load(); got != 1 {
		t.Fatalf("EngineQueueRejects = %d, want 1", got)
	}
	if snap := tel.Snapshot(); snap.EngineQueueRejects != 1 {
		t.Fatalf("snapshot EngineQueueRejects = %d, want 1", snap.EngineQueueRejects)
	}

	// Unwedge: read both results, then TrySubmit must succeed without
	// touching the reject counter.
	for i := 0; i < 2; i++ {
		select {
		case r := <-out:
			if r.Err != nil {
				t.Fatalf("job %d: %v", r.Index, r.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("pool did not drain")
		}
	}
	if err := e.TrySubmit(ctx, job, 3, out); err != nil {
		t.Fatalf("TrySubmit with room: %v", err)
	}
	select {
	case r := <-out:
		if r.Err != nil {
			t.Fatalf("job 3: %v", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("accepted TrySubmit job never ran")
	}
	if got := tel.EngineQueueRejects.Load(); got != 1 {
		t.Fatalf("EngineQueueRejects after successful TrySubmit = %d, want 1", got)
	}
}

// TestTrySubmitClosed: a closed engine answers ErrClosed, not
// ErrQueueFull.
func TestTrySubmitClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := New(WithWorkers(1), WithQueueDepth(1))
	if _, err := e.Register("m", fsm.RandomConverging(rng, 5, 3, 2, 0.5)); err != nil {
		t.Fatal(err)
	}
	e.Close()
	err := e.TrySubmit(context.Background(), Job{Machine: "m"}, 0, make(chan Result, 1))
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestTrySubmitCanceledContext: a dead context fails fast with the
// context's error even when the queue has room.
func TestTrySubmitCanceledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := New(WithWorkers(1), WithQueueDepth(4))
	defer e.Close()
	if _, err := e.Register("m", fsm.RandomConverging(rng, 5, 3, 2, 0.5)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.TrySubmit(ctx, Job{Machine: "m"}, 0, make(chan Result, 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
