package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dpfsm/internal/fsm"
	"dpfsm/internal/trace"
)

func spanNames(tr *trace.Trace) map[string]int {
	out := map[string]int{}
	for _, v := range tr.Spans() {
		out[v.Name]++
	}
	return out
}

// TestInboundTraceGetsEngineSpans checks the HTTP-shaped path: a trace
// already on the submission context receives queue-wait, exec, and
// core spans, and is NOT delivered to the engine's own sink.
func TestInboundTraceGetsEngineSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	d := fsm.RandomConverging(rng, 40, 6, 5, 0.3)
	rec := trace.NewRecorder(8)
	e := New(WithWorkers(2), WithProcs(1), WithTraceSink(rec))
	defer e.Close()
	if _, err := e.Register("m", d); err != nil {
		t.Fatal(err)
	}

	tr := trace.New()
	ctx := trace.NewContext(context.Background(), tr)
	out := make(chan Result, 1)
	if err := e.Submit(ctx, Job{Machine: "m", Input: d.RandomInput(rng, 10_000)}, 0, out); err != nil {
		t.Fatal(err)
	}
	r := <-out
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	tr.Finish()

	names := spanNames(tr)
	for _, want := range []string{SpanQueue, SpanExec} {
		if names[want] != 1 {
			t.Errorf("span %s count %d, want 1 (all: %v)", want, names[want], names)
		}
	}
	// The core layer contributed its phase span under the same trace.
	if names["core.single"] != 1 {
		t.Errorf("core span missing: %v", names)
	}
	// Inbound traces belong to their creator, not the engine sink.
	if got := rec.Total(); got != 0 {
		t.Errorf("engine recorded %d inbound traces, want 0", got)
	}

	// Lane attrs are on the exec span.
	var exec trace.SpanView
	for _, v := range tr.Spans() {
		if v.Name == SpanExec {
			exec = v
		}
	}
	if a, ok := trace.FindAttr(exec.Attrs, AttrLane); !ok || a.Text() != "single" {
		t.Errorf("lane attr %v", exec.Attrs)
	}
	if a, ok := trace.FindAttr(exec.Attrs, AttrLaneReason); !ok || a.Text() == "" {
		t.Errorf("lane_reason attr %v", exec.Attrs)
	}
	if a, ok := trace.FindAttr(exec.Attrs, AttrMachine); !ok || a.Text() != "m" {
		t.Errorf("machine attr %v", exec.Attrs)
	}
}

// TestEngineOwnedTracesReachSink checks the fsmbench-shaped path: with
// a sink and no inbound trace, every job gets an engine-owned trace
// delivered to the sink, errors included.
func TestEngineOwnedTracesReachSink(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := fsm.RandomConverging(rng, 40, 6, 5, 0.3)
	rec := trace.NewRecorder(16)
	e := New(WithWorkers(2), WithProcs(1), WithTraceSink(rec))
	defer e.Close()
	if _, err := e.Register("m", d); err != nil {
		t.Fatal(err)
	}

	jobs := []Job{
		{Machine: "m", Input: d.RandomInput(rng, 5_000)},
		{Machine: "m", Input: d.RandomInput(rng, 5_000)},
		{Machine: "nope"}, // fails: unknown machine
	}
	results, _ := e.RunBatch(context.Background(), jobs)
	if results[2].Err == nil {
		t.Fatal("unknown machine did not fail")
	}
	if got := rec.Total(); got != 3 {
		t.Fatalf("sink received %d traces, want 3", got)
	}
	var withErr int
	for _, tr := range rec.Snapshot() {
		if !tr.Finished() {
			t.Error("sink trace not finished")
		}
		if tr.Name() != "engine.job" {
			t.Errorf("trace name %q", tr.Name())
		}
		if tr.Error() != "" {
			withErr++
		}
	}
	if withErr != 1 {
		t.Errorf("traces with error: %d, want 1", withErr)
	}
}

// TestNoSinkNoTraceIsUntraced pins the default: without a sink or an
// inbound trace, jobs run the untraced path (nothing to record, no
// spans anywhere).
func TestNoSinkNoTraceIsUntraced(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	d := fsm.RandomConverging(rng, 40, 6, 5, 0.3)
	e := New(WithWorkers(1), WithProcs(1))
	defer e.Close()
	if _, err := e.Register("m", d); err != nil {
		t.Fatal(err)
	}
	r := e.Run(context.Background(), Job{Machine: "m", Input: d.RandomInput(rng, 1_000)})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
}

// TestShutdownDrainsQueue proves the graceful path: jobs queued before
// Shutdown complete with real results, submissions after it fail fast,
// and Shutdown returns once the queue is empty.
func TestShutdownDrainsQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	d := fsm.RandomConverging(rng, 40, 6, 5, 0.3)
	// One worker and a deep queue so jobs genuinely pile up.
	e := New(WithWorkers(1), WithProcs(1), WithQueueDepth(32))
	if _, err := e.Register("m", d); err != nil {
		t.Fatal(err)
	}

	const n = 16
	out := make(chan Result, n)
	input := d.RandomInput(rng, 200_000)
	want := d.Run(input, d.Start())
	for i := 0; i < n; i++ {
		if err := e.Submit(context.Background(), Job{Machine: "m", Input: input}, i, out); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Post-drain submissions fail fast.
	if err := e.Submit(context.Background(), Job{Machine: "m"}, 99, out); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Shutdown: %v", err)
	}
	// Every queued job completed with the correct final state.
	for i := 0; i < n; i++ {
		r := <-out
		if r.Err != nil {
			t.Fatalf("job %d failed during drain: %v", r.Index, r.Err)
		}
		if r.Final != want {
			t.Fatalf("job %d final %d, want %d", r.Index, r.Final, want)
		}
	}
	e.Close() // still idempotent after Shutdown
}

// TestShutdownDeadline proves an expired context abandons the drain:
// Shutdown returns the context error promptly and remaining queued
// jobs fail with ErrClosed instead of hanging.
func TestShutdownDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	d := fsm.RandomConverging(rng, 40, 6, 5, 0.3)
	e := New(WithWorkers(1), WithProcs(1), WithQueueDepth(64))
	if _, err := e.Register("m", d); err != nil {
		t.Fatal(err)
	}

	// Occupy the lone worker with a large job so the queue behind it
	// cannot drain instantly.
	hold := make(chan Result, 1)
	if err := e.Submit(context.Background(), Job{Machine: "m", Input: d.RandomInput(rng, 4<<20)}, 0, hold); err != nil {
		t.Fatal(err)
	}

	const n = 8
	out := make(chan Result, n)
	for i := 0; i < n; i++ {
		if err := e.Submit(context.Background(), Job{Machine: "m", Input: d.RandomInput(rng, 100_000)}, i, out); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	// An already-expired context makes the abandoned-drain branch
	// deterministic: finished cannot fire before done is closed, so
	// Shutdown must take the ctx arm.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := e.Shutdown(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown err = %v, want Canceled", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("Shutdown did not honor its deadline")
	}
	// Whatever had not started yet was failed with ErrClosed; whatever
	// ran (the worker drains between done checks) completed. Either
	// way every job is answered.
	deadline := time.After(10 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case r := <-out:
			if r.Err != nil && !errors.Is(r.Err, ErrClosed) {
				t.Fatalf("job %d: unexpected error %v", r.Index, r.Err)
			}
		case <-deadline:
			t.Fatal("queued job never answered after deadline Shutdown")
		}
	}
}

// TestShutdownConcurrentWithClose races Shutdown against Close; both
// must return and the engine must end fully stopped.
func TestShutdownConcurrentWithClose(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	d := fsm.RandomConverging(rng, 20, 4, 3, 0.3)
	e := New(WithWorkers(2), WithProcs(1))
	if _, err := e.Register("m", d); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = e.Shutdown(context.Background()) }()
	go func() { defer wg.Done(); e.Close() }()
	wg.Wait()
	out := make(chan Result, 1)
	if err := e.Submit(context.Background(), Job{Machine: "m"}, 0, out); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after concurrent shutdown: %v", err)
	}
}
