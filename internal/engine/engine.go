// Package engine is the batch execution layer over the data-parallel
// runners of internal/core: it accepts many (machine, input) jobs,
// multiplexes them over a bounded worker pool, and decides per job
// which of the paper's two parallelism axes to spend cores on.
//
// The paper parallelizes *within* one input (the Figure 5 multicore
// decomposition); a service handling heavy traffic has the complementary
// opportunity of parallelizing *across* inputs. The two compose
// multiplicatively, but naively running every job multicore
// oversubscribes the machine — P workers each fanning out P goroutines —
// while running every job single-core leaves a lone 100 MB request
// crawling on one core. The engine's dispatch policy resolves this:
//
//   - small inputs (< LargeInput) run the single-core strategy on one
//     pool worker — batch-level parallelism, zero fan-out overhead;
//   - large inputs run the Figure 5 phase1/phase2 split on a multicore
//     runner — input-level parallelism — gated so that concurrent
//     multicore jobs cannot oversubscribe the pool.
//
// Jobs carry per-job deadlines, batches carry a context, and both are
// honored cooperatively by the core runtime (core.FinalCtx polls
// between input blocks and multicore chunks). Backpressure is a
// bounded queue: Submit blocks when the pool is saturated, so an
// upstream accept loop slows down instead of buffering unboundedly.
// Scratch state vectors and convergence buffers are recycled across
// jobs by the Runner's sync.Pool (core's scratch layer), so steady-
// state batch execution does not allocate per job.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"dpfsm/internal/adaptive"
	"dpfsm/internal/cluster"
	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/perfprofile"
	"dpfsm/internal/speculative"
	"dpfsm/internal/telemetry"
	"dpfsm/internal/trace"
)

// Span names and attribute keys the engine emits on traced jobs.
// Exported so explain builders (cmd/fsmserve) and tests address them
// symbolically.
const (
	SpanQueue     = "engine.queue"     // Submit → worker dequeue (queue wait)
	SpanExec      = "engine.exec"      // one job's execution
	SpanGate      = "engine.gate"      // multicore fan-out slot acquisition
	SpanTransduce = "engine.transduce" // one transduce job's execution

	AttrMachine    = "machine"
	AttrBytes      = "bytes"
	AttrLane       = "lane"        // "single" | "multicore" | "speculative"
	AttrLaneReason = "lane_reason" // why the dispatch policy chose it
	AttrStrategy   = "strategy"    // the strategy the job ran under
	// AttrMispredict is set true on the exec span when the speculative
	// lane's start-state guess was wrong for at least one chunk — the
	// tail-sampling keep signal for mispredicted requests.
	AttrMispredict = "mispredict"
)

// Lane names, re-exported from perfprofile so engine callers need not
// import both packages to compare Result.Lane.
const (
	LaneSingle      = perfprofile.LaneSingle
	LaneMulticore   = perfprofile.LaneMulticore
	LaneSpeculative = perfprofile.LaneSpeculative
	LaneCluster     = perfprofile.LaneCluster
)

// Errors returned by Submit/Run. Per-job failures are reported in
// Result.Err, never as panics.
var (
	ErrClosed         = errors.New("engine: closed")
	ErrUnknownMachine = errors.New("engine: unknown machine")
	ErrBadStart       = errors.New("engine: start state out of range")
	// ErrQueueFull is returned by TrySubmit when the bounded queue has
	// no room — the load-shedding signal for callers that must not
	// block on backpressure.
	ErrQueueFull = errors.New("engine: queue full")
)

// Option configures an Engine.
type Option func(*config)

type config struct {
	workers    int
	queueDepth int
	largeInput int
	procs      int
	tel        *telemetry.Metrics
	sink       trace.Sink
	planCache  *PlanCache
	profiles   *perfprofile.Store
	cluster    *cluster.Coordinator
	clusterMin int
}

// WithWorkers sets the worker-pool size. n <= 0 means runtime.NumCPU().
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithQueueDepth bounds the job queue; Submit blocks (backpressure)
// once this many jobs are waiting. n <= 0 keeps the default of four
// jobs per worker.
func WithQueueDepth(n int) Option {
	return func(c *config) { c.queueDepth = n }
}

// WithLargeInput sets the dispatch-policy threshold in bytes: inputs
// of at least n bytes run on the multicore runner (input-level
// parallelism), smaller ones on a single pool worker (batch-level
// parallelism). n <= 0 keeps the default of 1 MiB.
func WithLargeInput(n int) Option {
	return func(c *config) { c.largeInput = n }
}

// WithProcs sets the multicore width used for large inputs. p == 1
// disables the multicore lane entirely; p <= 0 means runtime.NumCPU().
func WithProcs(p int) Option {
	return func(c *config) { c.procs = p }
}

// WithTelemetry attaches a metrics sink shared by the engine and every
// registered runner. nil (the default) disables collection.
func WithTelemetry(m *telemetry.Metrics) Option {
	return func(c *config) { c.tel = m }
}

// WithTraceSink makes the engine trace every job that does not already
// carry a trace on its context: each such job gets its own trace,
// receives the full span decomposition (queue wait, lane decision,
// core phases), and is delivered to s on completion. Jobs whose
// context carries a trace (e.g. an HTTP request traced upstream) are
// instrumented into that trace instead and NOT delivered to s — the
// layer that created a trace owns its recording. nil (the default)
// disables engine-owned tracing; such jobs run the zero-cost untraced
// path.
func WithTraceSink(s trace.Sink) Option {
	return func(c *config) { c.sink = s }
}

// WithPlanCache shares an externally constructed plan cache with the
// engine, so several engines (or an engine and a plan-directory
// loader) reuse one compiled-plan pool. nil (the default) gives the
// engine a private cache of DefaultPlanCacheSize entries.
func WithPlanCache(pc *PlanCache) Option {
	return func(c *config) { c.planCache = pc }
}

// WithPerfProfiles attaches a per-machine performance-profile store:
// every registration gets a MachineRecorder (seeded from the store's
// persisted baseline for the plan's fingerprint, if any), every job
// execution is observed into it (lane, bytes, wall time, queue wait),
// and the machine's runners flush their run-level counters into the
// recorder's private telemetry sink. nil (the default) disables
// per-machine profiling; the shared WithTelemetry sink is unaffected
// either way.
func WithPerfProfiles(s *perfprofile.Store) Option {
	return func(c *config) { c.profiles = s }
}

// WithCluster attaches a distributed coordinator: jobs of at least
// the cluster threshold (WithClusterMinBytes) take the cluster lane,
// fanning chunks out over the peer set instead of local cores. nil
// (the default) disables the lane. The coordinator can also be
// attached or swapped after construction with SetCluster.
func WithCluster(co *cluster.Coordinator) Option {
	return func(c *config) { c.cluster = co }
}

// WithClusterMinBytes sets the cluster lane's input threshold. Only
// jobs of at least n bytes are worth a network round trip; smaller
// large inputs stay on the local multicore lane. n <= 0 keeps the
// default of 4x the large-input threshold.
func WithClusterMinBytes(n int) Option {
	return func(c *config) { c.clusterMin = n }
}

// Machine is one compiled DFA registered with the engine: a shared
// compiled plan plus the runners the dispatch policy chooses between.
// The single and multicore runners execute the same *core.Plan — the
// tables are derived once (or fetched from the plan cache), never per
// lane; the speculative lane runs the raw DFA (its per-chunk work is
// the plain sequential walk, §7).
type Machine struct {
	name   string
	eng    *Engine
	dfa    *fsm.DFA
	plan   *core.Plan
	single *core.Runner // batch lane: WithProcs(1)
	multi  *core.Runner // input lane: WithProcs(procs); nil when procs == 1
	// spec is the §7 speculative lane: guess chunk start states from
	// the machine's hot-state profile, verify, re-run on mispredict.
	// nil when procs == 1 (like multi, it is pure fan-out).
	spec *speculative.Runner
	// planHit records whether registration found the plan in the cache.
	planHit bool
	// rec accumulates this machine's perf profile (nil when the engine
	// has no profile store); every exec observes into it.
	rec *perfprofile.MachineRecorder
	// sel is the adaptive lane selector, present only when the engine
	// has a profile store to learn from: without one the engine keeps
	// its historical static dispatch (deterministic, which the
	// conformance harness relies on).
	sel *adaptive.Selector
	// opts are the registration's core options, kept so explicit
	// per-job strategy overrides can build alternate runners lazily.
	opts []core.Option

	// altMu guards alt and altTrans, the lazily compiled single-core
	// runners for per-job strategy overrides (Job.Strategy != plan
	// strategy). altTrans carries the output table; alt does not.
	altMu    sync.Mutex
	alt      map[core.Strategy]*core.Runner
	altTrans map[core.Strategy]*core.Runner
}

// Name returns the registration name.
func (m *Machine) Name() string { return m.name }

// DFA returns the underlying machine.
func (m *Machine) DFA() *fsm.DFA { return m.dfa }

// Runner returns the single-core runner (the batch lane), for callers
// that want direct access to strategy introspection or streaming.
func (m *Machine) Runner() *core.Runner { return m.single }

// Plan returns the compiled plan both lanes share.
func (m *Machine) Plan() *core.Plan { return m.plan }

// Fingerprint returns the plan's cache identity.
func (m *Machine) Fingerprint() string { return m.plan.Fingerprint() }

// PlanCached reports whether registration reused a cached plan
// instead of compiling.
func (m *Machine) PlanCached() bool { return m.planHit }

// Recorder returns the machine's perf-profile recorder (nil when the
// engine has no profile store).
func (m *Machine) Recorder() *perfprofile.MachineRecorder { return m.rec }

// Selection reports the machine's current large-input dispatch
// decision. Without a profile store the engine dispatches statically,
// and the returned selection describes that fixed policy.
func (m *Machine) Selection() adaptive.Selection {
	if m.sel != nil {
		return m.sel.Selection()
	}
	sel := adaptive.Selection{Lane: LaneMulticore, Strategy: m.plan.Strategy().String(),
		Reason: "static dispatch (no profile store): large inputs go multicore"}
	if m.multi == nil {
		sel.Lane = LaneSingle
		sel.Reason = "static dispatch: multicore lane disabled (procs=1)"
	}
	return sel
}

// Reselect forces an immediate re-evaluation of the adaptive
// selection against the machine's current profile — the hook the
// status surface and tests use instead of waiting out the EvalEvery
// cadence — and retargets the speculative guess at the profile's
// current hot state. A no-op (zero Selection) without a profile store.
func (m *Machine) Reselect() adaptive.Selection {
	if m.sel == nil {
		return adaptive.Selection{}
	}
	sel := m.sel.Refresh(m.adaptiveInputs())
	if m.spec != nil {
		if st, ok := m.rec.HotState(); ok && m.dfa.ValidState(fsm.State(st)) {
			m.spec.SetGuess(fsm.State(st))
		}
	}
	return sel
}

// adaptiveInputs assembles the selector's view of this machine:
// compile-time plan stats plus the merged perf profile.
func (m *Machine) adaptiveInputs() adaptive.Inputs {
	in := adaptive.Inputs{
		States:   m.plan.States(),
		MaxRange: m.plan.MaxRange(),
		Strategy: m.plan.Strategy().String(),
		Procs:    m.eng.procs,
	}
	if m.rec == nil {
		return in
	}
	p := m.rec.Profile()
	in.MispredictRate = p.MispredictRate
	in.SpecChunks = p.SpecChunks
	in.HasHotState = len(p.HotStates) > 0
	in.ConvergenceRate = p.ConvergenceRate
	obs := func(lane string) adaptive.LaneObs {
		ls := p.Lanes[lane]
		return adaptive.LaneObs{Jobs: ls.Jobs, BytesPerSec: ls.BytesPerSec}
	}
	in.Single = obs(perfprofile.LaneSingle)
	in.Multicore = obs(perfprofile.LaneMulticore)
	in.Speculative = obs(perfprofile.LaneSpeculative)
	return in
}

// altRunner returns (building lazily on first use) the single-core
// runner for an explicit per-job strategy override. The override's
// plan goes through the engine's plan cache, so repeated overrides of
// the same machine+strategy compile once.
func (m *Machine) altRunner(s core.Strategy) (*core.Runner, error) {
	m.altMu.Lock()
	defer m.altMu.Unlock()
	if r, ok := m.alt[s]; ok {
		return r, nil
	}
	p, _, err := m.eng.planCache.GetOrCompile(m.dfa, append(m.opts, core.WithStrategy(s))...)
	if err != nil {
		return nil, err
	}
	r, err := core.NewFromPlan(p, append(m.opts, core.WithStrategy(s),
		core.WithProcs(1), core.WithTelemetry(m.eng.tel), core.WithAuxTelemetry(m.rec.Telemetry()))...)
	if err != nil {
		return nil, err
	}
	if m.alt == nil {
		m.alt = make(map[core.Strategy]*core.Runner, 2)
	}
	m.alt[s] = r
	return r, nil
}

// Job is one unit of work: run Input through Machine.
type Job struct {
	Machine string
	Input   []byte
	// Start overrides the machine's start state when HasStart is set.
	Start    fsm.State
	HasStart bool
	// Timeout, when positive, bounds this job alone; it nests inside
	// whatever context the batch was submitted with.
	Timeout time.Duration
	// Strategy, when not Auto, pins this job to a specific strategy on
	// the single-core lane regardless of the machine's plan — the
	// explicit escape hatch from adaptive selection. Auto (the zero
	// value) defers to the machine's plan and the dispatch policy.
	Strategy core.Strategy
}

// Result is the outcome of one Job. Index is the job's position in
// its batch (or the caller-supplied submission index), so streamed
// results can be reordered. Lane, Strategy, and Reason record the
// dispatch decision the job actually ran under; Multicore is kept as
// the legacy boolean view of Lane.
type Result struct {
	Index     int           `json:"index"`
	Machine   string        `json:"machine"`
	Final     fsm.State     `json:"final_state"`
	Accepts   bool          `json:"accepts"`
	Bytes     int           `json:"bytes"`
	Multicore bool          `json:"multicore"`
	Lane      string        `json:"lane,omitempty"`
	Strategy  string        `json:"strategy,omitempty"`
	Reason    string        `json:"reason,omitempty"`
	// Degraded is set by the cluster lane when one or more chunks fell
	// back to local execution (peer down, breaker open, retries
	// exhausted). The answer is still exact; the job just did not get
	// full cluster parallelism.
	Degraded bool          `json:"degraded,omitempty"`
	Duration time.Duration `json:"duration_ns"`
	Err      error         `json:"-"`
}

// BatchStats aggregates one batch: the per-batch telemetry the
// metrics endpoints expose in aggregate form.
type BatchStats struct {
	Jobs        int           `json:"jobs"`
	OK          int           `json:"ok"`
	Errors      int           `json:"errors"`
	Canceled    int           `json:"canceled"`
	SingleCore  int           `json:"single_core"`
	Multicore   int           `json:"multicore"`
	Speculative int           `json:"speculative"`
	Cluster     int           `json:"cluster"`
	Degraded    int           `json:"degraded"`
	Bytes       int64         `json:"bytes"`
	Duration    time.Duration `json:"duration_ns"`
}

type task struct {
	ctx context.Context
	job Job
	idx int
	out chan<- Result
	// qspan is the open queue-wait span of a traced submission, ended
	// by the worker at dequeue; nil on the untraced path.
	qspan *trace.Span
	// enq is the enqueue instant; dequeue − enq is the queue wait the
	// perf profile attributes separately from execution time.
	enq time.Time
}

// Engine runs jobs over a bounded worker pool. Construct with New,
// register machines, then Submit/Run/RunBatch from any goroutine.
type Engine struct {
	mu       sync.RWMutex
	machines map[string]*Machine
	order    []string

	queue    chan task
	queueLen atomic.Int64
	// drain closes first on shutdown: Submit starts failing with
	// ErrClosed while workers keep consuming the queue until empty.
	// done closes second and stops workers immediately.
	drain      chan struct{}
	drainOnce  sync.Once
	done       chan struct{}
	closeOnce  sync.Once
	wg         sync.WaitGroup
	workers    int
	largeInput int
	procs      int
	// multiGate bounds concurrent multicore jobs so that fan-out times
	// concurrency stays near the worker count.
	multiGate chan struct{}
	tel       *telemetry.Metrics
	sink      trace.Sink
	planCache *PlanCache
	profiles  *perfprofile.Store
	// clusterCo, when non-nil, enables the cluster lane: jobs of at
	// least clusterMin bytes fan their chunks out over the peer set.
	// Both atomic so fsmserve can attach them after construction and
	// tests can swap them live.
	clusterCo  atomic.Pointer[cluster.Coordinator]
	clusterMin atomic.Int64
}

const (
	defaultLargeInput = 1 << 20
	queuePerWorker    = 4
)

// New builds an Engine and starts its workers. Callers must Close it
// to release them.
func New(opts ...Option) *Engine {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.NumCPU()
	}
	if cfg.queueDepth <= 0 {
		cfg.queueDepth = queuePerWorker * cfg.workers
	}
	if cfg.largeInput <= 0 {
		cfg.largeInput = defaultLargeInput
	}
	if cfg.procs <= 0 {
		cfg.procs = runtime.NumCPU()
	}
	gate := cfg.workers / cfg.procs
	if gate < 1 {
		gate = 1
	}
	if cfg.planCache == nil {
		cfg.planCache = NewPlanCache(DefaultPlanCacheSize, cfg.tel)
	}
	e := &Engine{
		machines:   make(map[string]*Machine),
		queue:      make(chan task, cfg.queueDepth),
		drain:      make(chan struct{}),
		done:       make(chan struct{}),
		workers:    cfg.workers,
		largeInput: cfg.largeInput,
		procs:      cfg.procs,
		multiGate:  make(chan struct{}, gate),
		tel:        cfg.tel,
		sink:       cfg.sink,
		planCache:  cfg.planCache,
		profiles:   cfg.profiles,
	}
	e.SetClusterMinBytes(cfg.clusterMin)
	if cfg.cluster != nil {
		e.clusterCo.Store(cfg.cluster)
	}
	for i := 0; i < cfg.workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// SetCluster attaches (or, with nil, detaches) the distributed
// coordinator at runtime. Jobs already dispatched keep the coordinator
// they loaded.
func (e *Engine) SetCluster(co *cluster.Coordinator) { e.clusterCo.Store(co) }

// Cluster returns the attached coordinator (nil when the cluster lane
// is disabled).
func (e *Engine) Cluster() *cluster.Coordinator { return e.clusterCo.Load() }

// ClusterMinBytes reports the cluster lane's input threshold.
func (e *Engine) ClusterMinBytes() int { return int(e.clusterMin.Load()) }

// SetClusterMinBytes sets the cluster lane's input threshold; n <= 0
// restores the default of 4x the large-input threshold.
func (e *Engine) SetClusterMinBytes(n int) {
	if n <= 0 {
		n = 4 * e.largeInput
	}
	e.clusterMin.Store(int64(n))
}

// Telemetry returns the attached metrics sink (nil when disabled).
func (e *Engine) Telemetry() *telemetry.Metrics { return e.tel }

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// LargeInput reports the dispatch-policy threshold in bytes.
func (e *Engine) LargeInput() int { return e.largeInput }

// Procs reports the multicore width large inputs run with (1 when the
// multicore lane is disabled).
func (e *Engine) Procs() int { return e.procs }

// QueueDepth reports the current bounded-queue occupancy.
func (e *Engine) QueueDepth() int { return int(e.queueLen.Load()) }

// QueueCap reports the bounded-queue capacity.
func (e *Engine) QueueCap() int { return cap(e.queue) }

// PerfProfiles returns the attached profile store (nil when disabled).
func (e *Engine) PerfProfiles() *perfprofile.Store { return e.profiles }

// noteDepth publishes a queue-occupancy change to the telemetry sink.
func (e *Engine) noteDepth(depth int64) {
	if tm := e.tel; tm != nil {
		tm.EngineQueueDepth.Set(depth)
	}
}

// Register compiles d into the engine under name — or, when an equal
// machine+strategy is already in the plan cache, reuses its compiled
// plan with zero table construction — and builds the runner pair over
// the shared plan: a single-core runner for the batch lane and, when
// the engine's procs exceed one, a multicore runner for the input
// lane. opts are forwarded to compilation and both runners (strategy,
// convergence cadence, ...); the engine appends its own WithProcs and
// WithTelemetry last, so per-runner procs and telemetry cannot be
// overridden.
func (e *Engine) Register(name string, d *fsm.DFA, opts ...core.Option) (*Machine, error) {
	if name == "" {
		return nil, errors.New("engine: empty machine name")
	}
	// Reject duplicates before paying for compilation: a dup is a
	// caller bug, and compiling first would also pollute the cache
	// stats with a lookup for a registration that cannot land.
	e.mu.RLock()
	_, dup := e.machines[name]
	e.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("engine: duplicate machine %q", name)
	}
	p, hit, err := e.planCache.GetOrCompile(d, opts...)
	if err != nil {
		return nil, fmt.Errorf("engine: machine %q: %w", name, err)
	}
	return e.registerPlan(name, d, p, hit, opts...)
}

// RegisterPlan registers a machine from an already compiled plan —
// the restart path: plans deserialized from a plan-cache directory
// skip table construction entirely. The plan is entered into the
// engine's cache under its fingerprint (an already cached equal plan
// wins, keeping one canonical instance); opts configure the runners
// and must not force a strategy other than the plan's.
func (e *Engine) RegisterPlan(name string, p *core.Plan, opts ...core.Option) (*Machine, error) {
	if name == "" {
		return nil, errors.New("engine: empty machine name")
	}
	if p == nil {
		return nil, errors.New("engine: nil plan")
	}
	e.mu.RLock()
	_, dup := e.machines[name]
	e.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("engine: duplicate machine %q", name)
	}
	p = e.planCache.Add(p)
	return e.registerPlan(name, p.Machine(), p, true, opts...)
}

// registerPlan builds the lane runners over p and installs the
// machine, re-checking the name under the write lock (a concurrent
// Register for the same name may have won since the pre-check).
func (e *Engine) registerPlan(name string, d *fsm.DFA, p *core.Plan, hit bool, opts ...core.Option) (*Machine, error) {
	// The per-machine recorder (nil without a profile store) gets its
	// own aux telemetry sink; both lane runners flush their run-level
	// counters into it in addition to the shared engine sink, which is
	// what lets the profile report per-machine convergence behavior.
	rec := e.profiles.NewRecorder(name, p.Fingerprint(), p.Strategy().String())
	single, err := core.NewFromPlan(p, append(opts[:len(opts):len(opts)],
		core.WithProcs(1), core.WithTelemetry(e.tel), core.WithAuxTelemetry(rec.Telemetry()))...)
	if err != nil {
		return nil, fmt.Errorf("engine: machine %q: %w", name, err)
	}
	var multi *core.Runner
	if e.procs > 1 {
		multi, err = core.NewFromPlan(p, append(opts[:len(opts):len(opts)],
			core.WithProcs(e.procs), core.WithTelemetry(e.tel), core.WithAuxTelemetry(rec.Telemetry()))...)
		if err != nil {
			return nil, fmt.Errorf("engine: machine %q: %w", name, err)
		}
	}
	m := &Machine{name: name, eng: e, dfa: d, plan: p, single: single, multi: multi,
		planHit: hit, rec: rec, opts: opts[:len(opts):len(opts)]}
	if e.procs > 1 {
		// The speculative lane fans out like the multicore one; its
		// chunk floor keeps fan-out worthwhile for exactly the inputs
		// the dispatch policy sends it (>= largeInput).
		m.spec = speculative.New(d, e.procs, nil)
		if minChunk := e.largeInput / (2 * e.procs); minChunk > 1 {
			m.spec.SetMinChunk(minChunk)
		}
		if st, ok := rec.HotState(); ok && d.ValidState(fsm.State(st)) {
			// A persisted baseline already knows the dominant final
			// state: seed the guess before the first job.
			m.spec.SetGuess(fsm.State(st))
		}
	}
	if rec != nil {
		// Adaptive selection exists only when there is a profile to
		// learn from; otherwise dispatch stays static and deterministic.
		m.sel = adaptive.NewSelector(m.adaptiveInputs())
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.machines[name]; dup {
		return nil, fmt.Errorf("engine: duplicate machine %q", name)
	}
	e.machines[name] = m
	e.order = append(e.order, name)
	// Publish the recorder only now that the registration has won: a
	// concurrent duplicate must not replace the winner's recorder.
	e.profiles.Install(rec)
	return m, nil
}

// Unregister removes a machine by name, reporting whether it was
// registered. In-flight jobs holding the machine finish normally (the
// runner pair stays valid); new jobs naming it fail with
// ErrUnknownMachine. The compiled plan stays in the plan cache, so a
// re-registration of the same machine is a cache hit.
func (e *Engine) Unregister(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.machines[name]; !ok {
		return false
	}
	delete(e.machines, name)
	for i, n := range e.order {
		if n == name {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	// Persist-and-drop the machine's perf profile so the observations
	// since the last periodic save are not lost with the registration.
	e.profiles.Detach(name)
	return true
}

// PlanCache returns the engine's compiled-plan cache.
func (e *Engine) PlanCache() *PlanCache { return e.planCache }

// Machine looks up a registered machine by name (nil if absent).
func (e *Engine) Machine(name string) *Machine {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.machines[name]
}

// Machines lists registration names in registration order; the first
// registered machine is the default for jobs with an empty Machine.
func (e *Engine) Machines() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.order...)
}

// Submit enqueues one job; its Result (carrying idx) is delivered on
// out, which must have capacity for every outstanding submission or a
// dedicated receiver, or the pool will stall. Submit blocks while the
// queue is full — that is the backpressure contract — and fails only
// if ctx is done first or the engine is closed. Submissions must not
// race with Close: quiesce callers (e.g. shut the HTTP server down)
// before closing the engine, or a job enqueued in the closing window
// may never be answered.
func (e *Engine) Submit(ctx context.Context, job Job, idx int, out chan<- Result) error {
	t := task{ctx: ctx, job: job, idx: idx, out: out}
	select {
	case <-e.drain:
		return ErrClosed
	default:
	}
	if ctx != nil {
		if tr := trace.FromContext(ctx); tr != nil {
			t.qspan = tr.StartSpan(SpanQueue)
		}
	}
	t.enq = time.Now()
	select {
	case e.queue <- t:
		depth := e.queueLen.Add(1)
		e.noteDepth(depth)
		if tm := e.tel; tm != nil {
			tm.EngineQueueHighWater.Observe(depth)
		}
		return nil
	case <-ctx.Done():
		t.qspan.End()
		return ctx.Err()
	case <-e.drain:
		t.qspan.End()
		return ErrClosed
	}
}

// TrySubmit is Submit without the blocking contract: when the bounded
// queue is full it fails immediately with ErrQueueFull — after
// incrementing the EngineQueueRejects counter — instead of waiting
// for a worker to drain it. This is the load-shedding primitive for
// callers (an HTTP frontend answering 429, a batch planner probing
// capacity) that must not hold their own resources hostage to the
// pool's backpressure.
func (e *Engine) TrySubmit(ctx context.Context, job Job, idx int, out chan<- Result) error {
	t := task{ctx: ctx, job: job, idx: idx, out: out}
	select {
	case <-e.drain:
		return ErrClosed
	default:
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		if tr := trace.FromContext(ctx); tr != nil {
			t.qspan = tr.StartSpan(SpanQueue)
		}
	}
	t.enq = time.Now()
	select {
	case e.queue <- t:
		depth := e.queueLen.Add(1)
		e.noteDepth(depth)
		if tm := e.tel; tm != nil {
			tm.EngineQueueHighWater.Observe(depth)
		}
		return nil
	default:
		t.qspan.End()
		if tm := e.tel; tm != nil {
			tm.EngineQueueRejects.Inc()
		}
		return ErrQueueFull
	}
}

// Run executes one job synchronously on the calling goroutine,
// bypassing the queue; the /v1/run HTTP path uses this so single
// requests never wait behind a batch.
func (e *Engine) Run(ctx context.Context, job Job) Result {
	return e.exec(ctx, 0, job)
}

// RunBatch submits every job and waits for all results, returned in
// job order. A canceled ctx stops the batch cooperatively: queued
// jobs fail fast with ctx.Err(), in-flight jobs stop at their next
// block/chunk boundary, and the partial results are still returned —
// per-job errors mark which jobs did not complete.
func (e *Engine) RunBatch(ctx context.Context, jobs []Job) ([]Result, BatchStats) {
	t0 := time.Now()
	if tm := e.tel; tm != nil {
		tm.EngineBatches.Inc()
	}
	results := make([]Result, len(jobs))
	out := make(chan Result, len(jobs))
	submitted := 0
	for i, job := range jobs {
		if err := e.Submit(ctx, job, i, out); err != nil {
			results[i] = Result{Index: i, Machine: job.Machine, Bytes: len(job.Input), Err: err}
			e.noteResult(&results[i])
			continue
		}
		submitted++
	}
	for k := 0; k < submitted; k++ {
		r := <-out
		results[r.Index] = r
	}
	return results, summarize(results, time.Since(t0))
}

// summarize computes the per-batch aggregate.
func summarize(results []Result, dur time.Duration) BatchStats {
	st := BatchStats{Jobs: len(results), Duration: dur}
	for i := range results {
		r := &results[i]
		st.Bytes += int64(r.Bytes)
		switch {
		case r.Err == nil:
			st.OK++
		case errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded):
			st.Errors++
			st.Canceled++
		default:
			st.Errors++
		}
		if r.Err == nil {
			switch r.Lane {
			case LaneMulticore:
				st.Multicore++
			case LaneSpeculative:
				st.Speculative++
			case LaneCluster:
				st.Cluster++
			default:
				st.SingleCore++
			}
			if r.Degraded {
				st.Degraded++
			}
		}
	}
	return st
}

// Close stops the workers, fails queued jobs with ErrClosed, and
// waits for in-flight jobs to finish. Idempotent. For a drain that
// finishes queued work instead of failing it, use Shutdown.
func (e *Engine) Close() {
	e.drainOnce.Do(func() { close(e.drain) })
	e.closeOnce.Do(func() { close(e.done) })
	e.wg.Wait()
	e.failQueued()
}

// Shutdown drains the engine gracefully: new submissions fail with
// ErrClosed immediately, queued jobs are executed to completion, and
// Shutdown returns once every worker has exited — or when ctx expires
// first, in which case workers are stopped as in Close, any jobs
// still queued fail with ErrClosed, and ctx.Err() is returned.
// In-flight jobs are never interrupted mid-run beyond their own
// contexts; a caller that wants them canceled cancels the contexts it
// submitted with. Idempotent, and safe to race with Close.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.drainOnce.Do(func() { close(e.drain) })
	finished := make(chan struct{})
	go func() { e.wg.Wait(); close(finished) }()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		err = ctx.Err()
	}
	e.closeOnce.Do(func() { close(e.done) })
	e.failQueued()
	return err
}

// failQueued answers every still-queued task with ErrClosed.
func (e *Engine) failQueued() {
	for {
		select {
		case t := <-e.queue:
			e.noteDepth(e.queueLen.Add(-1))
			t.qspan.End()
			t.out <- Result{Index: t.idx, Machine: t.job.Machine, Bytes: len(t.job.Input), Err: ErrClosed}
		default:
			return
		}
	}
}

// dequeue pops one task's bookkeeping: gauge update, queue-wait span
// end, and the measured wait the profile layer attributes.
func (e *Engine) dequeue(t task) time.Duration {
	e.noteDepth(e.queueLen.Add(-1))
	t.qspan.End()
	if t.enq.IsZero() {
		return 0
	}
	return time.Since(t.enq)
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case t := <-e.queue:
			wait := e.dequeue(t)
			t.out <- e.execWait(t.ctx, t.idx, t.job, wait)
		case <-e.drain:
			// Graceful drain: finish whatever is queued, then exit.
			// done still preempts, so Close during a drain stops the
			// worker at the next job boundary.
			for {
				select {
				case <-e.done:
					return
				default:
				}
				select {
				case t := <-e.queue:
					wait := e.dequeue(t)
					t.out <- e.execWait(t.ctx, t.idx, t.job, wait)
				default:
					return
				}
			}
		}
	}
}

// exec runs one job to a Result. All failure modes land in Result.Err.
func (e *Engine) exec(ctx context.Context, idx int, job Job) Result {
	return e.execWait(ctx, idx, job, 0)
}

// execWait is exec with the job's measured queue wait, attributed to
// the machine's perf profile alongside the execution time.
func (e *Engine) execWait(ctx context.Context, idx int, job Job, queueWait time.Duration) (res Result) {
	res = Result{Index: idx, Machine: job.Machine, Bytes: len(job.Input)}
	var rec *perfprofile.MachineRecorder
	defer func() {
		e.noteResult(&res)
		rec.ObserveJob(res.Lane, res.Bytes, res.Duration, queueWait, res.Err != nil)
	}()

	if ctx == nil {
		ctx = context.Background()
	}
	// An inbound trace (HTTP layer) wins; otherwise, with a sink
	// configured, the engine owns a fresh per-job trace and records it
	// on completion. Neither present → zero-cost untraced path.
	tr := trace.FromContext(ctx)
	if tr == nil && e.sink != nil {
		tr = trace.New()
		tr.SetName("engine.job")
		ctx = trace.NewContext(ctx, tr)
		owned := tr
		defer func() {
			if res.Err != nil {
				owned.SetError(res.Err.Error())
			}
			e.sink.Record(owned)
		}()
	}
	ctx, sp := trace.Start(ctx, SpanExec)
	defer sp.End()

	e.mu.RLock()
	name := job.Machine
	if name == "" && len(e.order) > 0 {
		name = e.order[0]
	}
	m := e.machines[name]
	e.mu.RUnlock()
	if sp != nil {
		sp.SetAttrs(
			trace.Str(AttrMachine, name),
			trace.Int(AttrBytes, int64(len(job.Input))),
		)
	}
	if m == nil {
		res.Err = fmt.Errorf("%w: %q", ErrUnknownMachine, job.Machine)
		return res
	}
	res.Machine = name
	rec = m.rec

	start := m.dfa.Start()
	if job.HasStart {
		if !m.dfa.ValidState(job.Start) {
			res.Err = fmt.Errorf("%w: %d (machine %q has %d states)",
				ErrBadStart, job.Start, name, m.dfa.NumStates())
			return res
		}
		start = job.Start
	}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	if job.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, job.Timeout)
		defer cancel()
	}

	// Dispatch. Four tiers:
	//
	//   1. an explicit per-job strategy override pins the job to the
	//      single-core lane under that strategy;
	//   2. with a coordinator attached, inputs of at least the cluster
	//      threshold fan out over the peer set (the networked §3.4
	//      decomposition);
	//   3. small inputs always run single-core (fan-out overhead
	//      dominates below the threshold);
	//   4. large inputs take the lane the adaptive selector holds —
	//      or, without a profile store, the historical static
	//      heuristic (multicore whenever it exists).
	r := m.single
	res.Lane = LaneSingle
	res.Strategy = m.plan.Strategy().String()
	reason := fmt.Sprintf("input %d B < large-input threshold %d B", len(job.Input), e.largeInput)

	co := e.clusterCo.Load()
	if job.Strategy != core.Auto && job.Strategy != m.plan.Strategy() {
		alt, err := m.altRunner(job.Strategy)
		if err != nil {
			res.Err = fmt.Errorf("engine: machine %q: strategy override %v: %w", name, job.Strategy, err)
			return res
		}
		r = alt
		res.Strategy = job.Strategy.String()
		reason = fmt.Sprintf("explicit strategy override (%v); single-core lane", job.Strategy)
	} else if co != nil && len(job.Input) >= e.ClusterMinBytes() {
		res.Lane = LaneCluster
		reason = fmt.Sprintf("input %d B >= cluster threshold %d B; fanning out over %d peers",
			len(job.Input), e.ClusterMinBytes(), len(co.Peers()))
	} else if len(job.Input) >= e.largeInput && e.procs > 1 {
		if m.sel != nil {
			res.Lane, reason = m.sel.LaneFor()
		} else if m.multi != nil {
			res.Lane = LaneMulticore
			reason = fmt.Sprintf("input %d B >= large-input threshold %d B", len(job.Input), e.largeInput)
		}
	} else if m.multi == nil {
		reason = "multicore lane disabled (procs=1)"
	}

	// Parallel lanes fan out procs goroutines, so both acquire a
	// fan-out slot: at most workers/procs such jobs run at once.
	switch res.Lane {
	case LaneMulticore, LaneSpeculative:
		var gsp *trace.Span
		if sp != nil {
			gsp = sp.Child(SpanGate)
		}
		select {
		case e.multiGate <- struct{}{}:
			gsp.End()
			defer func() { <-e.multiGate }()
		case <-ctx.Done():
			gsp.End()
			res.Err = ctx.Err()
			return res
		}
		if res.Lane == LaneMulticore {
			r = m.multi
			res.Multicore = true
		}
	}
	res.Reason = reason
	if sp != nil {
		sp.SetAttrs(
			trace.Str(AttrLane, res.Lane),
			trace.Str(AttrLaneReason, reason),
			trace.Str(AttrStrategy, res.Strategy),
		)
	}

	// pprof labels make /debug/pprof/profile CPU samples attributable:
	// "which machine is burning the cores, on which lane, under which
	// strategy" falls straight out of a profile instead of requiring a
	// bespoke experiment. Labels ride the goroutine, so the parallel
	// lanes' phase workers inherit them too.
	var final fsm.State
	var err error
	var specStats speculative.Stats
	t0 := time.Now()
	pprof.Do(ctx, pprof.Labels(
		AttrMachine, name,
		"strategy", res.Strategy,
		AttrLane, res.Lane,
	), func(ctx context.Context) {
		switch res.Lane {
		case LaneCluster:
			// The cluster lane is network-bound, not core-bound, so it
			// bypasses the multicore fan-out gate.
			var cstats cluster.ExecStats
			final, cstats, err = co.Exec(ctx, m.plan, job.Input, start)
			res.Degraded = cstats.Degraded
			if cstats.Degraded && sp != nil {
				sp.SetAttrs(trace.Bool(cluster.AttrDegraded, true))
			}
		case LaneSpeculative:
			final, specStats, err = m.spec.FinalCtx(ctx, job.Input, start)
		default:
			final, err = r.FinalCtx(ctx, job.Input, start)
		}
	})
	res.Duration = time.Since(t0)
	// Exemplar: link this job's latency bucket to its trace, so the
	// histogram panel joins to the flight recorder. Traced jobs only —
	// an exemplar without a retrievable trace points nowhere.
	if tm := e.tel; tm != nil && tr != nil {
		tm.EngineJobExemplars.Observe(int64(res.Duration), tr.ID(), time.Now().UnixNano())
	}
	if res.Lane == LaneSpeculative && specStats.Chunks > 0 {
		m.rec.ObserveSpeculation(int64(specStats.Chunks), int64(specStats.Misspeculated), int64(specStats.ReRunBytes))
		if tm := e.tel; tm != nil {
			tm.SpecChunks.Add(int64(specStats.Chunks))
			tm.SpecMispredicts.Add(int64(specStats.Misspeculated))
			tm.SpecReRunBytes.Add(int64(specStats.ReRunBytes))
		}
		if specStats.Misspeculated > 0 && sp != nil {
			sp.SetAttrs(trace.Bool(AttrMispredict, true))
		}
	}
	if err != nil {
		res.Err = err
		return res
	}
	res.Final = final
	res.Accepts = m.dfa.Accepting(final)
	m.rec.ObserveFinal(int(final))
	// Large jobs advance the selection clock; every EvalEvery of them
	// re-evaluates the lane choice against the updated profile.
	if m.sel != nil && len(job.Input) >= e.largeInput {
		if m.sel.NoteJob() {
			m.Reselect()
		}
	}
	return res
}

// noteResult flushes one job's accounting into the shared sink.
func (e *Engine) noteResult(res *Result) {
	tm := e.tel
	if tm == nil {
		return
	}
	tm.EngineJobs.Inc()
	tm.EngineJobBytes.Observe(int64(res.Bytes))
	if res.Duration > 0 {
		// Jobs that failed validation before running carry no duration
		// and would drag the latency window toward zero.
		tm.EngineJobTime.Observe(int64(res.Duration))
		tm.EngineJobLatency.Observe(int64(res.Duration))
	}
	if res.Err != nil {
		tm.EngineJobErrors.Inc()
		if errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded) {
			tm.EngineCanceled.Inc()
		}
		return
	}
	switch res.Lane {
	case LaneMulticore:
		tm.EngineMulticore.Inc()
	case LaneSpeculative:
		tm.EngineSpeculative.Inc()
	case LaneCluster:
		tm.EngineCluster.Inc()
	default:
		tm.EngineSingleCore.Inc()
	}
}
