package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/telemetry"
)

func cacheMachines(t *testing.T, n int) []*fsm.DFA {
	t.Helper()
	rng := rand.New(rand.NewSource(70))
	ms := make([]*fsm.DFA, n)
	for i := range ms {
		ms[i] = fsm.RandomConverging(rng, 24+i, 4, 5, 0.3)
	}
	return ms
}

func TestPlanCacheHitMissAccounting(t *testing.T) {
	met := new(telemetry.Metrics)
	c := NewPlanCache(8, met)
	ms := cacheMachines(t, 3)

	for _, d := range ms {
		if _, hit, err := c.GetOrCompile(d); err != nil || hit {
			t.Fatalf("first compile: hit=%v err=%v", hit, err)
		}
	}
	for range 3 {
		for _, d := range ms {
			if _, hit, err := c.GetOrCompile(d); err != nil || !hit {
				t.Fatalf("warm lookup: hit=%v err=%v", hit, err)
			}
		}
	}
	st := c.Stats()
	if st.Misses != 3 || st.Hits != 9 || st.Evictions != 0 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 3 misses / 9 hits / 0 evictions / 3 entries", st)
	}
	if got, want := st.HitRate(), 0.75; got != want {
		t.Fatalf("hit rate %v, want %v", got, want)
	}
	snap := met.Snapshot()
	if snap.PlanCacheHits != 9 || snap.PlanCacheMisses != 3 {
		t.Fatalf("telemetry mirrors: hits=%d misses=%d", snap.PlanCacheHits, snap.PlanCacheMisses)
	}
	if snap.PlanCompile.Count != 3 {
		t.Fatalf("plan compile timer count = %d, want 3", snap.PlanCompile.Count)
	}

	// Same machine, different forced strategy: a distinct plan.
	if _, hit, err := c.GetOrCompile(ms[0], core.WithStrategy(core.Base)); err != nil || hit {
		t.Fatalf("forced strategy should miss: hit=%v err=%v", hit, err)
	}
	// Runtime options do not change the key.
	if _, hit, err := c.GetOrCompile(ms[0], core.WithProcs(9)); err != nil || !hit {
		t.Fatalf("procs-only options should hit: hit=%v err=%v", hit, err)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(2, nil)
	ms := cacheMachines(t, 3)
	p0, _, _ := c.GetOrCompile(ms[0])
	c.GetOrCompile(ms[1])
	c.GetOrCompile(ms[0]) // refresh 0; LRU order now [0, 1]
	c.GetOrCompile(ms[2]) // evicts 1
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", st)
	}
	if got := c.Get(p0.Fingerprint()); got != p0 {
		t.Fatal("recently used plan was evicted")
	}
	if _, hit, _ := c.GetOrCompile(ms[1]); hit {
		t.Fatal("evicted plan still hit")
	}
}

func TestPlanCacheAddCanonicalizes(t *testing.T) {
	c := NewPlanCache(8, nil)
	d := cacheMachines(t, 1)[0]
	cached, _, err := c.GetOrCompile(d)
	if err != nil {
		t.Fatal(err)
	}
	// A deserialized duplicate must collapse onto the cached instance.
	dup, err := core.CompilePlan(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Add(dup); got != cached {
		t.Fatal("Add returned a non-canonical plan for an existing fingerprint")
	}
	if c.Len() != 1 {
		t.Fatalf("cache grew to %d entries for one fingerprint", c.Len())
	}
}

// TestEnginePlanReuse: both engine lanes share one plan per machine,
// re-registration across engines hits the shared cache, and
// RegisterPlan/Unregister round-trip.
func TestEnginePlanReuse(t *testing.T) {
	met := new(telemetry.Metrics)
	cache := NewPlanCache(0, met)
	ms := cacheMachines(t, 4)

	for round := 0; round < 3; round++ {
		eng := New(WithProcs(2), WithPlanCache(cache))
		for i, d := range ms {
			m, err := eng.Register(fmt.Sprintf("m%d", i), d)
			if err != nil {
				t.Fatal(err)
			}
			if m.Plan() == nil || m.Fingerprint() == "" {
				t.Fatal("registered machine carries no plan")
			}
			if (round > 0) != m.PlanCached() {
				t.Fatalf("round %d: PlanCached=%v", round, m.PlanCached())
			}
		}
		eng.Close()
	}
	st := cache.Stats()
	if st.Misses != 4 || st.Hits != 8 {
		t.Fatalf("stats = %+v, want 4 misses / 8 hits", st)
	}

	// Unregister then re-register: the registry forgets the name but
	// the cache keeps the plan warm.
	eng := New(WithPlanCache(cache))
	defer eng.Close()
	m0, err := eng.Register("m0", ms[0])
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Unregister("m0") {
		t.Fatal("Unregister returned false for a registered machine")
	}
	if eng.Unregister("m0") {
		t.Fatal("Unregister returned true for an absent machine")
	}
	if _, err := eng.Register("m0", ms[0]); err != nil {
		t.Fatal(err)
	}

	// RegisterPlan with an externally loaded plan shares the canonical
	// cached instance.
	data, err := m0.Plan().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := core.UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	m, err := eng.RegisterPlan("m0-loaded", loaded)
	if err != nil {
		t.Fatal(err)
	}
	if m.Plan() != m0.Plan() {
		t.Fatal("RegisterPlan did not canonicalize onto the cached plan")
	}
	if _, err := eng.Register("m0", ms[0]); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

// TestPlanCacheConcurrentRegisterEvict is the race-pass target: a
// deliberately tiny cache thrashed by concurrent engine registrations,
// direct compiles, Adds and Unregisters. Run under -race it checks the
// locking; the final invariant checks the accounting.
func TestPlanCacheConcurrentRegisterEvict(t *testing.T) {
	met := new(telemetry.Metrics)
	cache := NewPlanCache(2, met) // force constant eviction
	ms := cacheMachines(t, 6)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng := New(WithProcs(1), WithPlanCache(cache))
			defer eng.Close()
			for i := 0; i < 30; i++ {
				d := ms[(w+i)%len(ms)]
				name := fmt.Sprintf("w%d-m%d", w, i)
				switch i % 3 {
				case 0:
					if _, err := eng.Register(name, d); err != nil {
						t.Errorf("Register: %v", err)
						return
					}
					eng.Unregister(name)
				case 1:
					if _, _, err := cache.GetOrCompile(d); err != nil {
						t.Errorf("GetOrCompile: %v", err)
						return
					}
				case 2:
					p, err := core.CompilePlan(d)
					if err != nil {
						t.Errorf("CompilePlan: %v", err)
						return
					}
					cache.Add(p)
					cache.Get(p.Fingerprint())
				}
			}
		}(w)
	}
	wg.Wait()

	st := cache.Stats()
	if st.Entries > 2 {
		t.Fatalf("cache exceeded its bound: %d entries", st.Entries)
	}
	if st.Hits+st.Misses == 0 || st.Evictions == 0 {
		t.Fatalf("expected traffic and evictions under thrash, got %+v", st)
	}
	snap := met.Snapshot()
	if snap.PlanCacheHits != st.Hits || snap.PlanCacheMisses != st.Misses || snap.PlanCacheEvictions != st.Evictions {
		t.Fatalf("telemetry mirrors diverged: snap hits=%d misses=%d evictions=%d vs %+v",
			snap.PlanCacheHits, snap.PlanCacheMisses, snap.PlanCacheEvictions, st)
	}
}
