package engine

// Transduction through the engine: output-bearing machines register
// like acceptors (same plan cache, same lane runners, same perf
// profile) and Transduce dispatches over the same three-tier policy as
// execWait — explicit strategy override, small-input single-core, and
// large-input adaptive/static lane selection including the speculative
// chunk-guessing lane. Every lane produces the exact sequential span
// list: the parallel lanes replay chunks from fold- or
// verification-resolved start states (see internal/core/transduce.go).

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/speculative"
	"dpfsm/internal/trace"
)

// ErrNotTransducer reports a Transduce call on a machine registered
// without an output table.
var ErrNotTransducer = errors.New("engine: machine is an acceptor (no output table)")

// Transducer returns the machine's output table, nil for acceptors.
func (m *Machine) Transducer() *fsm.Transducer { return m.plan.Outputs() }

// Kind classifies the machine: acceptor, moore, or mealy.
func (m *Machine) Kind() fsm.Kind { return m.plan.Kind() }

// altTransRunner is altRunner for the transduce path: the override
// plan must carry the output table, so it compiles through
// GetOrCompileTransducer (keyed over λ) rather than GetOrCompile.
func (m *Machine) altTransRunner(s core.Strategy) (*core.Runner, error) {
	t := m.Transducer()
	if t == nil {
		return nil, ErrNotTransducer
	}
	m.altMu.Lock()
	defer m.altMu.Unlock()
	if r, ok := m.altTrans[s]; ok {
		return r, nil
	}
	p, _, err := m.eng.planCache.GetOrCompileTransducer(t, append(m.opts, core.WithStrategy(s))...)
	if err != nil {
		return nil, err
	}
	r, err := core.NewFromPlan(p, append(m.opts, core.WithStrategy(s),
		core.WithProcs(1), core.WithTelemetry(m.eng.tel), core.WithAuxTelemetry(m.rec.Telemetry()))...)
	if err != nil {
		return nil, err
	}
	if m.altTrans == nil {
		m.altTrans = make(map[core.Strategy]*core.Runner, 2)
	}
	m.altTrans[s] = r
	return r, nil
}

// RegisterTransducer registers an output-bearing machine under name.
// The compiled plan carries the λ table (its cache key covers λ, so
// transducers over a shared δ never collide with each other or with
// the acceptor plan), and the machine serves both Run — outputs simply
// unused — and Transduce.
func (e *Engine) RegisterTransducer(name string, t *fsm.Transducer, opts ...core.Option) (*Machine, error) {
	if name == "" {
		return nil, errors.New("engine: empty machine name")
	}
	if t == nil {
		return nil, errors.New("engine: nil transducer")
	}
	e.mu.RLock()
	_, dup := e.machines[name]
	e.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("engine: duplicate machine %q", name)
	}
	p, hit, err := e.planCache.GetOrCompileTransducer(t, opts...)
	if err != nil {
		return nil, fmt.Errorf("engine: machine %q: %w", name, err)
	}
	return e.registerPlan(name, t.DFA(), p, hit, opts...)
}

// TransduceResult is the outcome of one Transduce job: the dispatch
// record of a Result plus the emitted spans. OutputBytes is the input
// bytes the spans cover — the "useful work" companion to Bytes.
type TransduceResult struct {
	Index       int           `json:"index"`
	Machine     string        `json:"machine"`
	Final       fsm.State     `json:"final_state"`
	Accepts     bool          `json:"accepts"`
	Bytes       int           `json:"bytes"`
	Spans       []core.Span   `json:"spans"`
	OutputBytes int64         `json:"output_bytes"`
	Multicore   bool          `json:"multicore"`
	Lane        string        `json:"lane,omitempty"`
	Strategy    string        `json:"strategy,omitempty"`
	Reason      string        `json:"reason,omitempty"`
	Duration    time.Duration `json:"duration_ns"`
	Err         error         `json:"-"`
}

// Transduce runs job through its machine's output table and returns
// the span list a sequential replay would produce, exactly, whichever
// lane the dispatch policy picks. It executes on the caller's
// goroutine (transduction is a streaming surface, not a batch one) but
// honors the same fan-out gate as queued jobs, so parallel-lane
// transduce cannot oversubscribe the engine.
func (e *Engine) Transduce(ctx context.Context, job Job) (res TransduceResult) {
	res = TransduceResult{Index: 0, Machine: job.Machine, Bytes: len(job.Input)}
	select {
	case <-e.drain:
		res.Err = ErrClosed
		return res
	default:
	}
	var rec *machineRecorderRef
	defer func() {
		e.noteTransduce(&res)
		rec.observe(&res)
	}()

	if ctx == nil {
		ctx = context.Background()
	}
	tr := trace.FromContext(ctx)
	if tr == nil && e.sink != nil {
		tr = trace.New()
		tr.SetName("engine.transduce")
		ctx = trace.NewContext(ctx, tr)
		owned := tr
		defer func() {
			if res.Err != nil {
				owned.SetError(res.Err.Error())
			}
			e.sink.Record(owned)
		}()
	}
	ctx, sp := trace.Start(ctx, SpanTransduce)
	defer sp.End()

	e.mu.RLock()
	name := job.Machine
	if name == "" && len(e.order) > 0 {
		name = e.order[0]
	}
	m := e.machines[name]
	e.mu.RUnlock()
	if sp != nil {
		sp.SetAttrs(
			trace.Str(AttrMachine, name),
			trace.Int(AttrBytes, int64(len(job.Input))),
		)
	}
	if m == nil {
		res.Err = fmt.Errorf("%w: %q", ErrUnknownMachine, job.Machine)
		return res
	}
	res.Machine = name
	rec = &machineRecorderRef{m: m}
	t := m.Transducer()
	if t == nil {
		res.Err = fmt.Errorf("%w: %q", ErrNotTransducer, name)
		return res
	}

	start := m.dfa.Start()
	if job.HasStart {
		if !m.dfa.ValidState(job.Start) {
			res.Err = fmt.Errorf("%w: %d (machine %q has %d states)",
				ErrBadStart, job.Start, name, m.dfa.NumStates())
			return res
		}
		start = job.Start
	}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	if job.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, job.Timeout)
		defer cancel()
	}

	// Same three dispatch tiers as execWait; the chosen runner already
	// carries the output table because the machine's plan does.
	r := m.single
	res.Lane = LaneSingle
	res.Strategy = m.plan.Strategy().String()
	reason := fmt.Sprintf("input %d B < large-input threshold %d B", len(job.Input), e.largeInput)

	if job.Strategy != core.Auto && job.Strategy != m.plan.Strategy() {
		alt, err := m.altTransRunner(job.Strategy)
		if err != nil {
			res.Err = fmt.Errorf("engine: machine %q: strategy override %v: %w", name, job.Strategy, err)
			return res
		}
		r = alt
		res.Strategy = job.Strategy.String()
		reason = fmt.Sprintf("explicit strategy override (%v); single-core lane", job.Strategy)
	} else if len(job.Input) >= e.largeInput && e.procs > 1 {
		if m.sel != nil {
			res.Lane, reason = m.sel.LaneFor()
		} else if m.multi != nil {
			res.Lane = LaneMulticore
			reason = fmt.Sprintf("input %d B >= large-input threshold %d B", len(job.Input), e.largeInput)
		}
	} else if m.multi == nil {
		reason = "multicore lane disabled (procs=1)"
	}

	switch res.Lane {
	case LaneMulticore, LaneSpeculative:
		var gsp *trace.Span
		if sp != nil {
			gsp = sp.Child(SpanGate)
		}
		select {
		case e.multiGate <- struct{}{}:
			gsp.End()
			defer func() { <-e.multiGate }()
		case <-ctx.Done():
			gsp.End()
			res.Err = ctx.Err()
			return res
		}
		if res.Lane == LaneMulticore {
			r = m.multi
			res.Multicore = true
		}
	}
	res.Reason = reason
	if sp != nil {
		sp.SetAttrs(
			trace.Str(AttrLane, res.Lane),
			trace.Str(AttrLaneReason, reason),
			trace.Str(AttrStrategy, res.Strategy),
		)
	}

	var spans []core.Span
	var final fsm.State
	var err error
	var specStats speculative.Stats
	t0 := time.Now()
	pprof.Do(ctx, pprof.Labels(
		AttrMachine, name,
		"strategy", res.Strategy,
		AttrLane, res.Lane,
	), func(ctx context.Context) {
		if res.Lane == LaneSpeculative {
			spans, final, specStats, err = specTransduce(ctx, m.spec, t, job.Input, start)
		} else {
			spans, final, err = r.TransduceSpans(job.Input, start)
		}
	})
	res.Duration = time.Since(t0)
	if tm := e.tel; tm != nil && tr != nil {
		tm.EngineJobExemplars.Observe(int64(res.Duration), tr.ID(), time.Now().UnixNano())
	}
	if res.Lane == LaneSpeculative && specStats.Chunks > 0 {
		m.rec.ObserveSpeculation(int64(specStats.Chunks), int64(specStats.Misspeculated), int64(specStats.ReRunBytes))
		if tm := e.tel; tm != nil {
			tm.SpecChunks.Add(int64(specStats.Chunks))
			tm.SpecMispredicts.Add(int64(specStats.Misspeculated))
			tm.SpecReRunBytes.Add(int64(specStats.ReRunBytes))
		}
		if specStats.Misspeculated > 0 && sp != nil {
			sp.SetAttrs(trace.Bool(AttrMispredict, true))
		}
	}
	if err != nil {
		res.Err = err
		return res
	}
	res.Final = final
	res.Accepts = m.dfa.Accepting(final)
	res.Spans = spans
	for _, s := range spans {
		res.OutputBytes += int64(s.End - s.Start)
	}
	m.rec.ObserveFinal(int(final))
	if m.sel != nil && len(job.Input) >= e.largeInput {
		if m.sel.NoteJob() {
			m.Reselect()
		}
	}
	return res
}

// specTransduce drives the speculative chunked decomposition with a
// span-scanning replay: every chunk's phase-3 (or phase-2, for
// mispredicted chunks) callback runs core.ScanSpans from its verified
// start state, so the stitched result is the exact sequential span
// list no matter how many guesses were wrong.
func specTransduce(ctx context.Context, sr *speculative.Runner, t *fsm.Transducer, input []byte, start fsm.State) ([]core.Span, fsm.State, speculative.Stats, error) {
	var (
		mu    sync.Mutex
		parts [][]core.Span
	)
	final, stats, err := sr.RunChunkedCtx(ctx, input, start,
		func(off int, chunk []byte, st fsm.State) fsm.State {
			spans, q := core.ScanSpans(t, off, chunk, st)
			if len(spans) > 0 {
				mu.Lock()
				parts = append(parts, spans)
				mu.Unlock()
			}
			return q
		})
	if err != nil {
		return nil, final, stats, err
	}
	return core.StitchSpans(parts), final, stats, nil
}

// machineRecorderRef defers the perf-profile observation until the
// machine lookup has resolved (mirrors execWait's deferred
// rec.ObserveJob; nil-safe before resolution).
type machineRecorderRef struct{ m *Machine }

func (r *machineRecorderRef) observe(res *TransduceResult) {
	if r == nil || r.m == nil {
		return
	}
	r.m.rec.ObserveJob(res.Lane, res.Bytes, res.Duration, 0, res.Err != nil)
}

// noteTransduce flushes one transduce job's accounting into the shared
// sink: the same job/lane series as acceptor jobs plus the
// transduction throughput counters.
func (e *Engine) noteTransduce(res *TransduceResult) {
	tm := e.tel
	if tm == nil {
		return
	}
	tm.EngineJobs.Inc()
	tm.EngineTransduce.Inc()
	tm.EngineJobBytes.Observe(int64(res.Bytes))
	if res.Duration > 0 {
		tm.EngineJobTime.Observe(int64(res.Duration))
		tm.EngineJobLatency.Observe(int64(res.Duration))
	}
	if res.Err != nil {
		tm.EngineJobErrors.Inc()
		if errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded) {
			tm.EngineCanceled.Inc()
		}
		return
	}
	tm.TransduceSpans.Add(int64(len(res.Spans)))
	tm.TransduceOutputBytes.Add(res.OutputBytes)
	switch res.Lane {
	case LaneMulticore:
		tm.EngineMulticore.Inc()
	case LaneSpeculative:
		tm.EngineSpeculative.Inc()
	default:
		tm.EngineSingleCore.Inc()
	}
}
