package engine

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dpfsm/internal/cluster"
	"dpfsm/internal/fsm"
	"dpfsm/internal/telemetry"
)

// clusterEngine is an engine wired to n live httptest peers with a
// low cluster threshold, plus the fault injector in front of them.
func clusterEngine(t *testing.T, n int) (*Engine, *cluster.FaultRoundTripper, []string, *telemetry.Metrics) {
	t.Helper()
	faults := cluster.NewFaultRoundTripper(nil)
	var peers, hosts []string
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(cluster.NewPeer(nil).Handler())
		t.Cleanup(srv.Close)
		peers = append(peers, srv.URL)
		hosts = append(hosts, cluster.HostOf(srv.URL))
	}
	tel := &telemetry.Metrics{}
	co, err := cluster.NewCoordinator(cluster.Config{
		Peers:       peers,
		Transport:   cluster.NewHTTPTransport(&http.Client{Transport: faults}),
		ChunkBytes:  512,
		MaxRetries:  1,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Telemetry:   tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := New(
		WithWorkers(2),
		WithProcs(2),
		WithLargeInput(1<<20),
		WithClusterMinBytes(2048),
		WithCluster(co),
		WithTelemetry(tel),
	)
	t.Cleanup(e.Close)
	return e, faults, hosts, tel
}

func TestEngineClusterLane(t *testing.T) {
	e, _, _, tel := clusterEngine(t, 2)
	rng := rand.New(rand.NewSource(90))
	d := fsm.RandomConverging(rng, 30, 6, 6, 0.3)
	if _, err := e.Register("m", d); err != nil {
		t.Fatal(err)
	}

	big := d.RandomInput(rng, 10_000)
	res := e.Run(context.Background(), Job{Machine: "m", Input: big})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Lane != LaneCluster {
		t.Fatalf("big input took lane %q (%s), want cluster", res.Lane, res.Reason)
	}
	if want := d.Run(big, d.Start()); res.Final != want {
		t.Fatalf("cluster lane answered %d, oracle %d", res.Final, want)
	}
	if res.Degraded {
		t.Fatalf("degraded with healthy peers: %+v", res)
	}
	if tel.EngineCluster.Load() != 1 || tel.ClusterTasks.Load() == 0 {
		t.Fatalf("telemetry: EngineCluster=%d ClusterTasks=%d", tel.EngineCluster.Load(), tel.ClusterTasks.Load())
	}

	// Below the cluster threshold the job stays local even with a
	// coordinator attached.
	small := d.RandomInput(rng, 100)
	res = e.Run(context.Background(), Job{Machine: "m", Input: small})
	if res.Err != nil || res.Lane != LaneSingle {
		t.Fatalf("small input: lane %q err %v, want single-core", res.Lane, res.Err)
	}
}

// Peers die mid-serving: the lane degrades to local re-execution, the
// answer stays exact, and the degradation is visible on the Result,
// the batch stats, and the telemetry counter.
func TestEngineClusterLaneDegrades(t *testing.T) {
	e, faults, hosts, tel := clusterEngine(t, 2)
	rng := rand.New(rand.NewSource(91))
	d := fsm.RandomConverging(rng, 30, 6, 6, 0.3)
	if _, err := e.Register("m", d); err != nil {
		t.Fatal(err)
	}
	for _, h := range hosts {
		faults.SetAlways(h, cluster.FaultDrop)
	}

	input := d.RandomInput(rng, 8192)
	results, stats := e.RunBatch(context.Background(), []Job{{Machine: "m", Input: input}})
	res := results[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Lane != LaneCluster || !res.Degraded {
		t.Fatalf("dead peers: lane %q degraded %v, want degraded cluster job", res.Lane, res.Degraded)
	}
	if want := d.Run(input, d.Start()); res.Final != want {
		t.Fatalf("degraded run answered %d, oracle %d", res.Final, want)
	}
	if stats.Cluster != 1 || stats.Degraded != 1 {
		t.Fatalf("batch stats %+v, want Cluster=1 Degraded=1", stats)
	}
	if tel.ClusterDegraded.Load() == 0 || tel.ClusterLocalFallbacks.Load() == 0 {
		t.Fatal("telemetry missed the degradation")
	}

	// Detach the coordinator: the same input now takes a local lane.
	e.SetCluster(nil)
	res = e.Run(context.Background(), Job{Machine: "m", Input: input})
	if res.Err != nil || res.Lane == LaneCluster {
		t.Fatalf("after detach: lane %q err %v", res.Lane, res.Err)
	}
}
