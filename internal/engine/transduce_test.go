package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/telemetry"
)

// testTransducer attaches a derived Mealy λ(q,a) = (q+a) mod 3 to d.
func testTransducer(t *testing.T, d *fsm.DFA) *fsm.Transducer {
	t.Helper()
	tr, err := fsm.NewMealy(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < d.NumSymbols(); a++ {
		for q := 0; q < d.NumStates(); q++ {
			tr.SetMealyOutput(fsm.State(q), byte(a), fsm.Output((q+a)%3))
		}
	}
	return tr
}

// scalarSpans is the oracle: a one-symbol-at-a-time replay folded into
// maximal non-None runs, sharing no code with the engine lanes.
func scalarSpans(tr *fsm.Transducer, input []byte, start fsm.State) ([]core.Span, fsm.State) {
	d := tr.DFA()
	var spans []core.Span
	q := start
	cur, curStart := fsm.OutputNone, 0
	for i, b := range input {
		out := tr.OutputAt(q, b)
		q = d.Next(q, b)
		if out != cur {
			if cur != fsm.OutputNone {
				spans = append(spans, core.Span{Start: curStart, End: i, Out: cur})
			}
			cur, curStart = out, i
		}
	}
	if cur != fsm.OutputNone {
		spans = append(spans, core.Span{Start: curStart, End: len(input), Out: cur})
	}
	return spans, q
}

func spansEqual(a, b []core.Span) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEngineTransduceAllLanes pushes inputs through every dispatch
// lane — single, multicore, speculative, and an explicit strategy
// override — and checks each span list against the scalar oracle.
func TestEngineTransduceAllLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := fsm.RandomConverging(rng, 60, 8, 6, 0.3)
	tr := testTransducer(t, d)

	met := new(telemetry.Metrics)
	e := New(WithWorkers(4), WithProcs(4), WithLargeInput(4096), WithTelemetry(met))
	defer e.Close()
	m, err := e.RegisterTransducer("tok", tr, core.WithMinChunk(512))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != fsm.KindMealy {
		t.Fatalf("Kind() = %v, want mealy", m.Kind())
	}
	if m.Transducer() == nil {
		t.Fatal("Transducer() = nil on a transducer machine")
	}

	jobs := []Job{
		{Machine: "tok", Input: d.RandomInput(rng, 100)},                      // single lane
		{Machine: "tok", Input: d.RandomInput(rng, 64<<10)},                   // multicore lane
		{Machine: "tok", Input: d.RandomInput(rng, 200), Strategy: core.Base}, // override
		{Machine: "tok", Input: nil}, // empty input
	}
	for i, job := range jobs {
		want, wantFinal := scalarSpans(tr, job.Input, d.Start())
		res := e.Transduce(context.Background(), job)
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		if res.Final != wantFinal {
			t.Errorf("job %d: final %d want %d", i, res.Final, wantFinal)
		}
		if !spansEqual(res.Spans, want) {
			t.Errorf("job %d (lane %s): %d spans, oracle %d", i, res.Lane, len(res.Spans), len(want))
		}
	}

	// The 64 KiB job must have left the single lane.
	big := e.Transduce(context.Background(), jobs[1])
	if big.Lane == LaneSingle {
		t.Errorf("large transduce stayed on the single lane: %+v", big.Reason)
	}
	over := e.Transduce(context.Background(), jobs[2])
	if over.Strategy != core.Base.String() {
		t.Errorf("override strategy recorded %q", over.Strategy)
	}

	snap := met.Snapshot()
	if snap.EngineTransduce == 0 || snap.TransduceSpans == 0 || snap.TransduceOutputBytes == 0 {
		t.Errorf("transduce telemetry not recorded: %+v", snap)
	}
}

// TestEngineTransduceSpeculativeLane drives the speculative chunked
// replay directly (bypassing adaptive selection) via a machine whose
// profile store is absent, by checking the spec path helper.
func TestEngineTransduceSpeculativeLane(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	d := fsm.RandomConverging(rng, 60, 8, 6, 0.3)
	tr := testTransducer(t, d)

	e := New(WithWorkers(4), WithProcs(4), WithLargeInput(1<<10))
	defer e.Close()
	m, err := e.RegisterTransducer("tok", tr, core.WithMinChunk(256))
	if err != nil {
		t.Fatal(err)
	}
	if m.spec == nil {
		t.Fatal("no speculative runner with procs > 1")
	}
	for _, n := range []int{0, 100, 8 << 10, 64 << 10} {
		input := d.RandomInput(rng, n)
		want, wantFinal := scalarSpans(tr, input, d.Start())
		spans, final, _, err := specTransduce(context.Background(), m.spec, tr, input, d.Start())
		if err != nil {
			t.Fatal(err)
		}
		if final != wantFinal || !spansEqual(spans, want) {
			t.Fatalf("n=%d: speculative transduce diverges (final %d want %d, %d spans want %d)",
				n, final, wantFinal, len(spans), len(want))
		}
	}
}

// TestEngineTransduceErrors covers the rejection paths: acceptor
// machines, unknown machines, bad start states.
func TestEngineTransduceErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	d := fsm.RandomConverging(rng, 20, 4, 3, 0.3)

	e := New(WithWorkers(2), WithProcs(1))
	defer e.Close()
	if _, err := e.Register("acc", d); err != nil {
		t.Fatal(err)
	}
	res := e.Transduce(context.Background(), Job{Machine: "acc", Input: []byte("abc")})
	if !errors.Is(res.Err, ErrNotTransducer) {
		t.Fatalf("acceptor transduce: err = %v, want ErrNotTransducer", res.Err)
	}
	res = e.Transduce(context.Background(), Job{Machine: "nope"})
	if !errors.Is(res.Err, ErrUnknownMachine) {
		t.Fatalf("unknown machine: err = %v", res.Err)
	}
	tr := testTransducer(t, d)
	if _, err := e.RegisterTransducer("tok", tr); err != nil {
		t.Fatal(err)
	}
	res = e.Transduce(context.Background(), Job{Machine: "tok", Input: []byte("x"), Start: 999, HasStart: true})
	if !errors.Is(res.Err, ErrBadStart) {
		t.Fatalf("bad start: err = %v", res.Err)
	}
	// Acceptor Run on the transducer machine still works — outputs are
	// simply unused.
	rr := e.Run(context.Background(), Job{Machine: "tok", Input: d.RandomInput(rng, 50)})
	if rr.Err != nil {
		t.Fatalf("Run on transducer machine: %v", rr.Err)
	}
}
