package engine

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dpfsm/internal/adaptive"
	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/perfprofile"
	"dpfsm/internal/telemetry"
)

// absorbingDFA builds the speculation-friendly machine the package's
// other adaptive tests share: symbol 1 funnels every state into the
// absorbing state 3, so chunk start guesses of 3 almost always hold.
func absorbingDFA() *fsm.DFA {
	d := fsm.MustNew(4, 2)
	d.SetColumn(0, []fsm.State{1, 2, 3, 3})
	d.SetColumn(1, []fsm.State{3, 3, 3, 3})
	d.SetAccepting(3, true)
	return d
}

// TestAdaptiveProfileFlipReroutes is the closed-loop check: a machine
// starts on the cold-start multicore default, its profile then shows
// the speculative lane far faster, and after a re-evaluation large
// jobs actually run speculatively — then a poisoned mispredict rate
// flips them back. The profile is driven directly through the
// recorder so the test controls exactly what the selector sees.
func TestAdaptiveProfileFlipReroutes(t *testing.T) {
	d := absorbingDFA()
	store := perfprofile.NewStore("")
	met := new(telemetry.Metrics)
	e := New(WithWorkers(4), WithProcs(4), WithLargeInput(4096),
		WithTelemetry(met), WithPerfProfiles(store))
	defer e.Close()
	m, err := e.Register("abs", d, core.WithMinChunk(256))
	if err != nil {
		t.Fatal(err)
	}

	if sel := m.Selection(); sel.Lane != adaptive.LaneMulticore || !strings.Contains(sel.Reason, "cold start") {
		t.Fatalf("initial selection %+v, want cold-start multicore", sel)
	}

	rng := rand.New(rand.NewSource(51))
	input := d.RandomInput(rng, 64<<10)
	want := d.Run(input, d.Start())

	// Cold start: a large job takes the multicore lane.
	res := e.Run(context.Background(), Job{Machine: "abs", Input: input})
	if res.Err != nil || res.Final != want {
		t.Fatalf("cold-start run: %+v", res)
	}
	if res.Lane != LaneMulticore {
		t.Fatalf("cold-start lane %q, want multicore", res.Lane)
	}

	// Feed the profile a history where the speculative lane is 10x the
	// multicore lane with a negligible mispredict rate, and re-evaluate.
	rec := m.Recorder()
	for i := 0; i < adaptive.MinSamples; i++ {
		rec.ObserveJob(perfprofile.LaneSpeculative, 1<<20, time.Millisecond, 0, false)
		rec.ObserveJob(perfprofile.LaneMulticore, 1<<20, 10*time.Millisecond, 0, false)
	}
	rec.ObserveSpeculation(100, 1, 0)
	if sel := m.Reselect(); sel.Lane != adaptive.LaneSpeculative {
		t.Fatalf("post-flip selection %+v, want speculative", sel)
	}

	res = e.Run(context.Background(), Job{Machine: "abs", Input: input})
	if res.Err != nil || res.Final != want || !res.Accepts {
		t.Fatalf("speculative run wrong: %+v", res)
	}
	if res.Lane != LaneSpeculative || res.Multicore {
		t.Fatalf("post-flip lane %q (multicore=%v), want speculative", res.Lane, res.Multicore)
	}
	if !strings.Contains(res.Reason, "speculative") {
		t.Errorf("reason %q does not name the lane", res.Reason)
	}

	// The run itself fed the loop: chunk accounting landed in both the
	// profile and the shared telemetry.
	p, ok := store.Profile("abs")
	if !ok {
		t.Fatal("no profile for abs")
	}
	if p.SpecChunks <= 100 {
		t.Errorf("spec chunks %d did not grow past the injected 100", p.SpecChunks)
	}
	if p.Lanes[perfprofile.LaneSpeculative].Jobs <= int64(adaptive.MinSamples) {
		t.Errorf("speculative lane jobs %d did not grow", p.Lanes[perfprofile.LaneSpeculative].Jobs)
	}
	snap := met.Snapshot()
	if snap.EngineSpeculative == 0 || snap.SpecChunks == 0 {
		t.Errorf("telemetry: speculative=%d chunks=%d", snap.EngineSpeculative, snap.SpecChunks)
	}

	// Poison the mispredict rate past the disqualification bound; the
	// next re-evaluation must abandon the lane.
	rec.ObserveSpeculation(1000, 900, 50<<20)
	if sel := m.Reselect(); sel.Lane == adaptive.LaneSpeculative {
		t.Fatalf("selection stayed speculative despite mispredict poisoning: %+v", sel)
	}
	res = e.Run(context.Background(), Job{Machine: "abs", Input: input})
	if res.Err != nil || res.Final != want {
		t.Fatalf("post-poison run: %+v", res)
	}
	if res.Lane == LaneSpeculative {
		t.Fatalf("post-poison lane still speculative: %+v", res)
	}
}

// TestSpeculativeLaneExactOnHostileMachine runs forced-mispredict
// speculation end to end through the engine: a permutation machine
// never converges, so a speculative job cascades re-runs — and must
// still produce the oracle's exact answer, with the mispredicts
// showing up in the profile.
func TestSpeculativeLaneExactOnHostileMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	d := fsm.RandomPermutation(rng, 16, 4, 0.3)
	store := perfprofile.NewStore("")
	e := New(WithWorkers(4), WithProcs(4), WithLargeInput(4096),
		WithTelemetry(new(telemetry.Metrics)), WithPerfProfiles(store))
	defer e.Close()
	m, err := e.Register("perm", d)
	if err != nil {
		t.Fatal(err)
	}

	// Force the selector onto the speculative lane so the hostile path
	// is what executes.
	rec := m.Recorder()
	for i := 0; i < adaptive.MinSamples; i++ {
		rec.ObserveJob(perfprofile.LaneSpeculative, 1<<20, time.Millisecond, 0, false)
	}
	if sel := m.Reselect(); sel.Lane != adaptive.LaneSpeculative {
		t.Fatalf("could not force speculative lane: %+v", sel)
	}

	input := d.RandomInput(rng, 64<<10)
	res := e.Run(context.Background(), Job{Machine: "perm", Input: input})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Lane != LaneSpeculative {
		t.Fatalf("lane %q", res.Lane)
	}
	if want := d.Run(input, d.Start()); res.Final != want {
		t.Fatalf("speculative result %d, want %d", res.Final, want)
	}
	p, _ := store.Profile("perm")
	if p.SpecMispredicts == 0 || p.SpecReRunBytes == 0 {
		t.Errorf("hostile machine recorded no mispredicts: %+v", p)
	}
}

// TestJobStrategyOverride pins single jobs to explicit strategies and
// checks they run on the single-core lane under that strategy, with
// results identical to the machine's default path.
func TestJobStrategyOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	d := fsm.RandomConverging(rng, 40, 8, 6, 0.3)
	e := New(WithWorkers(2), WithProcs(4), WithLargeInput(4096),
		WithTelemetry(new(telemetry.Metrics)))
	defer e.Close()
	m, err := e.Register("m", d)
	if err != nil {
		t.Fatal(err)
	}
	planStrat := m.Plan().Strategy()

	// Large input: an override to a *different* strategy beats the
	// large-input dispatch and stays single-core; an override naming
	// the plan's own strategy is a no-op request and dispatches
	// normally.
	input := d.RandomInput(rng, 32<<10)
	want := d.Run(input, d.Start())
	for _, s := range []core.Strategy{core.Sequential, core.Convergence, core.RangeCoalesced, core.BaseILP} {
		res := e.Run(context.Background(), Job{Machine: "m", Input: input, Strategy: s})
		if res.Err != nil {
			t.Fatalf("%v: %v", s, res.Err)
		}
		if res.Final != want {
			t.Fatalf("%v: final %d, want %d", s, res.Final, want)
		}
		if res.Strategy != s.String() {
			t.Errorf("%v: result strategy %q", s, res.Strategy)
		}
		if s == planStrat {
			if res.Lane != LaneMulticore {
				t.Errorf("%v (= plan strategy): lane %q, want normal multicore dispatch", s, res.Lane)
			}
			continue
		}
		if res.Lane != LaneSingle || res.Multicore {
			t.Errorf("%v: override did not pin single lane: lane=%q", s, res.Lane)
		}
		if !strings.Contains(res.Reason, "override") {
			t.Errorf("%v: reason %q", s, res.Reason)
		}
	}

	// Auto (the zero value) keeps the machine's own dispatch.
	res := e.Run(context.Background(), Job{Machine: "m", Input: input})
	if res.Err != nil || res.Lane != LaneMulticore {
		t.Fatalf("auto job: lane %q err %v", res.Lane, res.Err)
	}
	if res.Strategy == "" || res.Strategy == core.Auto.String() {
		t.Errorf("auto job reported strategy %q", res.Strategy)
	}
}

// TestStaticDispatchWithoutProfileStore pins the legacy contract the
// conformance harness depends on: with no profile store, lane choice
// is a pure function of input size and procs.
func TestStaticDispatchWithoutProfileStore(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	d := fsm.RandomConverging(rng, 40, 8, 6, 0.3)
	e := New(WithWorkers(2), WithProcs(4), WithLargeInput(4096),
		WithTelemetry(new(telemetry.Metrics)))
	defer e.Close()
	m, err := e.Register("m", d)
	if err != nil {
		t.Fatal(err)
	}
	if sel := m.Selection(); sel.Lane != LaneMulticore || !strings.Contains(sel.Reason, "static") {
		t.Fatalf("static selection %+v", sel)
	}
	small := e.Run(context.Background(), Job{Machine: "m", Input: d.RandomInput(rng, 100)})
	if small.Lane != LaneSingle || small.Multicore {
		t.Fatalf("small job lane %q", small.Lane)
	}
	large := e.Run(context.Background(), Job{Machine: "m", Input: d.RandomInput(rng, 8192)})
	if large.Lane != LaneMulticore || !large.Multicore {
		t.Fatalf("large job lane %q multicore=%v", large.Lane, large.Multicore)
	}
}
