package engine

import (
	"context"
	"math/rand"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
)

// BenchmarkEngine is the acceptance benchmark for the batch engine: a
// batch of 10k small inputs through one shared engine (pooled runners,
// pooled scratch, amortized table construction) against the naive
// service loop that constructs and runs a fresh Runner per input.
//
//	go test -bench=Engine -benchtime=1x ./internal/engine
func BenchmarkEngine(b *testing.B) {
	const (
		numJobs   = 10_000
		inputSize = 256
	)
	rng := rand.New(rand.NewSource(31))
	d := fsm.RandomConverging(rng, 64, 64, 10, 0.2)
	inputs := make([][]byte, numJobs)
	for i := range inputs {
		inputs[i] = d.RandomInput(rng, inputSize)
	}
	var totalBytes int64
	for _, in := range inputs {
		totalBytes += int64(len(in))
	}

	b.Run("pooled-batch-10k", func(b *testing.B) {
		e := New(WithProcs(1))
		defer e.Close()
		if _, err := e.Register("m", d); err != nil {
			b.Fatal(err)
		}
		jobs := make([]Job, numJobs)
		for i, in := range inputs {
			jobs[i] = Job{Machine: "m", Input: in}
		}
		b.SetBytes(totalBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results, stats := e.RunBatch(context.Background(), jobs)
			if stats.OK != numJobs {
				b.Fatalf("stats %+v", stats)
			}
			sinkState = results[0].Final
		}
	})

	b.Run("fresh-runner-per-input", func(b *testing.B) {
		b.SetBytes(totalBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, in := range inputs {
				r, err := core.New(d)
				if err != nil {
					b.Fatal(err)
				}
				sinkState = r.Final(in, d.Start())
			}
		}
	})
}

var sinkState fsm.State
