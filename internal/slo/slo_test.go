package slo

import (
	"sync"
	"testing"
	"time"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestTracker(cfg Config) (*Tracker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	cfg.Now = clk.now
	return New(cfg), clk
}

func TestNilTracker(t *testing.T) {
	var tr *Tracker
	tr.Observe(500, time.Second)
	if rep := tr.Report(); rep.BurnExceeded {
		t.Fatal("nil tracker burning")
	}
	if tr.BurnExceeded() {
		t.Fatal("nil tracker unready")
	}
}

func TestDefaults(t *testing.T) {
	tr := New(Config{})
	rep := tr.Report()
	if rep.AvailabilityTarget != DefaultAvailabilityTarget ||
		rep.LatencyTarget != DefaultLatencyTarget ||
		rep.LatencyThresholdNs != int64(DefaultLatencyThreshold) ||
		rep.FastBurnThreshold != DefaultFastBurnThreshold ||
		rep.MinRequests != DefaultMinRequests {
		t.Fatalf("defaults not applied: %+v", rep)
	}
	if rep.Fast.WindowNs != int64(DefaultFastWindow) || rep.Slow.WindowNs != int64(DefaultSlowWindow) {
		t.Fatalf("windows: %+v", rep)
	}
}

func TestHealthyTrafficDoesNotBurn(t *testing.T) {
	tr, _ := newTestTracker(Config{})
	for i := 0; i < 1000; i++ {
		tr.Observe(200, time.Millisecond)
	}
	rep := tr.Report()
	if rep.Fast.Total != 1000 || rep.Slow.Total != 1000 {
		t.Fatalf("totals: %+v", rep)
	}
	if rep.Fast.AvailabilityBurn != 0 || rep.BurnExceeded {
		t.Fatalf("healthy traffic burned: %+v", rep)
	}
}

func TestShedAndErrorClassification(t *testing.T) {
	tr, _ := newTestTracker(Config{AvailabilityTarget: 0.9})
	for i := 0; i < 50; i++ {
		tr.Observe(200, time.Millisecond)
	}
	for i := 0; i < 30; i++ {
		tr.Observe(429, 0)
	}
	for i := 0; i < 20; i++ {
		tr.Observe(500, time.Millisecond)
	}
	rep := tr.Report()
	if rep.Fast.Errors != 20 || rep.Fast.Shed != 30 || rep.Fast.Total != 100 {
		t.Fatalf("classification: %+v", rep.Fast)
	}
	// bad = 0.5, budget = 0.1 → burn 5.
	if got := rep.Fast.AvailabilityBurn; got < 4.99 || got > 5.01 {
		t.Fatalf("burn = %g, want 5", got)
	}
}

// TestFastBurnTripsBothWindows is the readiness acceptance property:
// an all-shed burst trips burn-exceeded, and both windows must agree.
func TestFastBurnTripsBothWindows(t *testing.T) {
	tr, clk := newTestTracker(Config{
		AvailabilityTarget: 0.999,
		FastWindow:         10 * time.Second,
		SlowWindow:         time.Minute,
		MinRequests:        10,
	})
	// Burst of shed traffic: burn = 1.0/0.001 = 1000 in both windows.
	for i := 0; i < 50; i++ {
		tr.Observe(429, 0)
	}
	rep := tr.Report()
	if !rep.BurnExceeded {
		t.Fatalf("all-shed burst did not trip burn: %+v", rep)
	}

	// Advance past the fast window: the fast window empties and the
	// verdict clears even though the slow window still remembers.
	clk.advance(11 * time.Second)
	rep = tr.Report()
	if rep.Fast.Total != 0 {
		t.Fatalf("fast window retained: %+v", rep.Fast)
	}
	if rep.Slow.Total != 50 {
		t.Fatalf("slow window lost history: %+v", rep.Slow)
	}
	if rep.BurnExceeded {
		t.Fatal("burn still exceeded with an empty fast window")
	}
}

func TestMinRequestsGuard(t *testing.T) {
	tr, _ := newTestTracker(Config{MinRequests: 10})
	// A single failure with no other traffic: burn is enormous but the
	// floor keeps it from tripping.
	tr.Observe(500, time.Millisecond)
	rep := tr.Report()
	if rep.Fast.AvailabilityBurn < 100 {
		t.Fatalf("burn = %g, want huge", rep.Fast.AvailabilityBurn)
	}
	if rep.BurnExceeded {
		t.Fatal("one failure tripped readiness below the request floor")
	}
}

func TestLatencyObjective(t *testing.T) {
	tr, _ := newTestTracker(Config{
		LatencyTarget:    0.9,
		LatencyThreshold: 100 * time.Millisecond,
	})
	for i := 0; i < 80; i++ {
		tr.Observe(200, 10*time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		tr.Observe(200, 200*time.Millisecond)
	}
	// Shed requests must not count toward the latency objective.
	tr.Observe(429, 0)
	rep := tr.Report()
	if rep.Fast.Slow != 20 {
		t.Fatalf("slow = %d", rep.Fast.Slow)
	}
	// 20/100 completed over threshold, budget 0.1 → burn 2.
	if got := rep.Fast.LatencyBurn; got < 1.99 || got > 2.01 {
		t.Fatalf("latency burn = %g, want 2", got)
	}
	if rep.BurnExceeded {
		t.Fatal("latency burn must not trip availability readiness")
	}
}

// TestRingExpiry: observations older than the slow window vanish once
// their second is overwritten.
func TestRingExpiry(t *testing.T) {
	tr, clk := newTestTracker(Config{
		FastWindow: 5 * time.Second,
		SlowWindow: 30 * time.Second,
	})
	for i := 0; i < 10; i++ {
		tr.Observe(500, 0)
	}
	clk.advance(40 * time.Second)
	rep := tr.Report()
	if rep.Slow.Total != 0 {
		t.Fatalf("expired observations survived: %+v", rep.Slow)
	}
}

func TestConcurrentObserve(t *testing.T) {
	tr, _ := newTestTracker(Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Observe(200, time.Millisecond)
				if i%50 == 0 {
					tr.Report()
				}
			}
		}()
	}
	wg.Wait()
	if rep := tr.Report(); rep.Slow.Total != 4000 {
		t.Fatalf("total = %d, want 4000", rep.Slow.Total)
	}
}
