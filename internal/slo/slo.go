// Package slo turns the runtime's raw request stream into
// service-level-objective signals a load balancer or orchestrator can
// act on. The observability stack below it answers "what is the
// process doing" (telemetry) and "why was this request slow" (trace);
// this package answers the operator's question one level up: "is the
// service meeting its promises right now, and how fast is it burning
// the error budget if not".
//
// The model is the multi-window burn-rate method from the SRE
// literature. An objective (say 99.9% of requests neither shed nor
// erroring) implies an error budget (0.1%). The burn rate over a
// window is the observed bad fraction divided by that budget: burn 1
// spends the budget exactly at the sustainable rate, burn 14.4 spends
// a 30-day budget in ~2 days. Alerting — and here, readiness — keys
// on burn exceeding a threshold in BOTH a fast and a slow window: the
// fast window catches the incident quickly, the slow window keeps a
// few bad seconds from flapping the probe.
//
// The Tracker observes at the HTTP boundary (status code + duration),
// not per engine job: availability is defined over what callers
// experienced, including shed (429) and failed (5xx) requests that
// never became jobs.
package slo

import (
	"sync"
	"time"
)

// Defaults. Availability 99.9% and a 14.4× fast burn mirror the
// classic page-worthy alert (budget gone in two days); the latency
// objective is deliberately loose by default — operators tune it to
// their deployment with fsmserve flags.
const (
	DefaultAvailabilityTarget = 0.999
	DefaultLatencyTarget      = 0.99
	DefaultLatencyThreshold   = 250 * time.Millisecond
	DefaultFastWindow         = 5 * time.Minute
	DefaultSlowWindow         = time.Hour
	DefaultFastBurnThreshold  = 14.4
	DefaultMinRequests        = 10
)

// Config declares the objectives. The zero value gets the defaults.
type Config struct {
	// AvailabilityTarget is the objective fraction of requests that
	// are neither shed (429) nor errors (5xx). (0,1); <= 0 means
	// DefaultAvailabilityTarget.
	AvailabilityTarget float64
	// LatencyTarget is the objective fraction of completed requests
	// finishing under LatencyThreshold.
	LatencyTarget    float64
	LatencyThreshold time.Duration
	// FastWindow and SlowWindow are the two burn-rate windows.
	// SlowWindow bounds the tracker's memory (one bucket per second).
	FastWindow time.Duration
	SlowWindow time.Duration
	// FastBurnThreshold is the availability burn rate above which —
	// in both windows — the service reports burn-exceeded.
	FastBurnThreshold float64
	// MinRequests is the per-window request floor below which burn
	// never trips readiness: with almost no traffic a single failure
	// is not an incident.
	MinRequests int64

	// Now overrides the clock in tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.AvailabilityTarget <= 0 || c.AvailabilityTarget >= 1 {
		c.AvailabilityTarget = DefaultAvailabilityTarget
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = DefaultLatencyTarget
	}
	if c.LatencyThreshold <= 0 {
		c.LatencyThreshold = DefaultLatencyThreshold
	}
	if c.FastWindow <= 0 {
		c.FastWindow = DefaultFastWindow
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = DefaultSlowWindow
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.FastBurnThreshold <= 0 {
		c.FastBurnThreshold = DefaultFastBurnThreshold
	}
	if c.MinRequests <= 0 {
		c.MinRequests = DefaultMinRequests
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// bucket aggregates one second of requests.
type bucket struct {
	sec    int64 // unix second this bucket currently represents
	total  int64
	errors int64 // 5xx
	shed   int64 // 429
	slow   int64 // completed over LatencyThreshold
}

// Tracker accumulates request outcomes into per-second ring buckets
// spanning SlowWindow and computes burn rates over both windows.
// Safe for concurrent use; a nil *Tracker ignores observations and
// reports healthy.
type Tracker struct {
	cfg Config

	mu   sync.Mutex
	ring []bucket
}

// New builds a Tracker, applying defaults to unset Config fields.
func New(cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	return &Tracker{
		cfg:  cfg,
		ring: make([]bucket, int(cfg.SlowWindow/time.Second)+1),
	}
}

// Observe records one request outcome: its HTTP status code and total
// duration. 5xx counts against availability as an error, 429 as shed;
// everything else is good. Completed (non-shed, non-error) requests
// at or over LatencyThreshold count against the latency objective.
func (t *Tracker) Observe(status int, dur time.Duration) {
	if t == nil {
		return
	}
	sec := t.cfg.Now().Unix()
	t.mu.Lock()
	b := t.slot(sec)
	b.total++
	switch {
	case status >= 500:
		b.errors++
	case status == 429:
		b.shed++
	default:
		if dur >= t.cfg.LatencyThreshold {
			b.slow++
		}
	}
	t.mu.Unlock()
}

// slot returns the ring bucket for unix second sec, resetting it if it
// still holds an older second. Callers hold t.mu.
func (t *Tracker) slot(sec int64) *bucket {
	b := &t.ring[sec%int64(len(t.ring))]
	if b.sec != sec {
		*b = bucket{sec: sec}
	}
	return b
}

// WindowReport is the aggregate over one burn window.
type WindowReport struct {
	WindowNs int64 `json:"window_ns"`
	Total    int64 `json:"total"`
	Errors   int64 `json:"errors"`
	Shed     int64 `json:"shed"`
	Slow     int64 `json:"slow"`
	// BadFraction is (errors+shed)/total; AvailabilityBurn is that
	// fraction over the error budget (1 - target). LatencyBurn is the
	// same construction for the latency objective, over completed
	// requests.
	BadFraction        float64 `json:"bad_fraction"`
	AvailabilityBurn   float64 `json:"availability_burn"`
	LatencyBadFraction float64 `json:"latency_bad_fraction"`
	LatencyBurn        float64 `json:"latency_burn"`
}

// Report is the full SLO view: the configured objectives, both window
// aggregates, and the burn verdict.
type Report struct {
	AvailabilityTarget float64 `json:"availability_target"`
	LatencyTarget      float64 `json:"latency_target"`
	LatencyThresholdNs int64   `json:"latency_threshold_ns"`
	FastBurnThreshold  float64 `json:"fast_burn_threshold"`
	MinRequests        int64   `json:"min_requests"`

	Fast WindowReport `json:"fast"`
	Slow WindowReport `json:"slow"`

	// BurnExceeded is true when the availability burn rate exceeds
	// FastBurnThreshold in BOTH windows (each with at least
	// MinRequests observed) — the multi-window page condition.
	BurnExceeded bool `json:"burn_exceeded"`
}

// Report computes the current multi-window view. Nil-safe: a nil
// Tracker reports all-zero, not burning.
func (t *Tracker) Report() Report {
	if t == nil {
		return Report{}
	}
	now := t.cfg.Now().Unix()
	fastSecs := int64(t.cfg.FastWindow / time.Second)
	slowSecs := int64(t.cfg.SlowWindow / time.Second)

	var fast, slow WindowReport
	t.mu.Lock()
	for i := int64(0); i < slowSecs; i++ {
		sec := now - i
		b := &t.ring[sec%int64(len(t.ring))]
		if b.sec != sec || b.total == 0 {
			continue
		}
		add := func(w *WindowReport) {
			w.Total += b.total
			w.Errors += b.errors
			w.Shed += b.shed
			w.Slow += b.slow
		}
		add(&slow)
		if i < fastSecs {
			add(&fast)
		}
	}
	t.mu.Unlock()

	t.finish(&fast, t.cfg.FastWindow)
	t.finish(&slow, t.cfg.SlowWindow)

	rep := Report{
		AvailabilityTarget: t.cfg.AvailabilityTarget,
		LatencyTarget:      t.cfg.LatencyTarget,
		LatencyThresholdNs: int64(t.cfg.LatencyThreshold),
		FastBurnThreshold:  t.cfg.FastBurnThreshold,
		MinRequests:        t.cfg.MinRequests,
		Fast:               fast,
		Slow:               slow,
	}
	rep.BurnExceeded = fast.Total >= t.cfg.MinRequests &&
		slow.Total >= t.cfg.MinRequests &&
		fast.AvailabilityBurn >= t.cfg.FastBurnThreshold &&
		slow.AvailabilityBurn >= t.cfg.FastBurnThreshold
	return rep
}

// finish derives the fractions and burn rates for one window.
func (t *Tracker) finish(w *WindowReport, window time.Duration) {
	w.WindowNs = int64(window)
	if w.Total == 0 {
		return
	}
	w.BadFraction = float64(w.Errors+w.Shed) / float64(w.Total)
	w.AvailabilityBurn = w.BadFraction / (1 - t.cfg.AvailabilityTarget)
	if completed := w.Total - w.Errors - w.Shed; completed > 0 {
		w.LatencyBadFraction = float64(w.Slow) / float64(completed)
		w.LatencyBurn = w.LatencyBadFraction / (1 - t.cfg.LatencyTarget)
	}
}

// BurnExceeded is the readiness-probe shortcut for Report().BurnExceeded.
func (t *Tracker) BurnExceeded() bool { return t.Report().BurnExceeded }
