package textstats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]int{3, 1, 4, 1, 5})
	if s.Min != 1 || s.Max != 5 || s.N != 5 {
		t.Errorf("min/max/n = %d/%d/%d", s.Min, s.Max, s.N)
	}
	if math.Abs(s.Mean-2.8) > 1e-9 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Median != 3 {
		t.Errorf("median = %v", s.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestQuantile(t *testing.T) {
	xs := []int{10, 20, 30, 40}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {0.25, 17.5}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	// Quantile must not mutate its input.
	ys := []int{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestFractionAtMost(t *testing.T) {
	xs := []int{1, 2, 3, 4}
	if got := FractionAtMost(xs, 2); got != 0.5 {
		t.Errorf("FractionAtMost = %v", got)
	}
	if got := FractionAtMost(xs, 0); got != 0 {
		t.Errorf("FractionAtMost = %v", got)
	}
	if got := FractionAtMost(xs, 10); got != 1 {
		t.Errorf("FractionAtMost = %v", got)
	}
	if FractionAtMost(nil, 1) != 0 {
		t.Error("empty fraction should be 0")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]int{1, 1, 2, 5})
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {5, 1.0}}
	if len(pts) != len(want) {
		t.Fatalf("CDF = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("CDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestRank(t *testing.T) {
	xs := []int{30, 10, 20}
	r := Rank(xs)
	if r[0] != 1 || r[1] != 2 || r[2] != 0 {
		t.Errorf("Rank = %v", r)
	}
	// Stability on ties.
	ys := []int{5, 5, 1}
	r = Rank(ys)
	if r[0] != 2 || r[1] != 0 || r[2] != 1 {
		t.Errorf("tied Rank = %v", r)
	}
}
