// Package textstats holds the small statistical helpers shared by the
// analysis package and the benchmark harness: quantiles, CDFs, and
// aggregate summaries of integer samples.
package textstats

import "sort"

// Summary aggregates a sample of integers.
type Summary struct {
	Min, Max int
	Mean     float64
	Median   float64
	N        int
}

// Summarize computes a Summary. An empty sample returns the zero value.
func Summarize(xs []int) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Min: xs[0], Max: xs[0], N: len(xs)}
	total := 0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		total += x
	}
	s.Mean = float64(total) / float64(len(xs))
	s.Median = Quantile(xs, 0.5)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation on the sorted sample. Empty input returns 0.
func Quantile(xs []int, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	if q <= 0 {
		return float64(sorted[0])
	}
	if q >= 1 {
		return float64(sorted[len(sorted)-1])
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return float64(sorted[lo])
	}
	return float64(sorted[lo])*(1-frac) + float64(sorted[lo+1])*frac
}

// FractionAtMost returns the fraction of samples ≤ bound.
func FractionAtMost(xs []int, bound int) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= bound {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// CDFPoint is one (value, cumulative fraction) point.
type CDFPoint struct {
	Value    int
	Fraction float64
}

// CDF returns the empirical CDF of xs as sorted unique points.
func CDF(xs []int) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	var out []CDFPoint
	for i, v := range sorted {
		if i+1 < len(sorted) && sorted[i+1] == v {
			continue
		}
		out = append(out, CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(sorted))})
	}
	return out
}

// Rank returns the indices of xs sorted ascending by value — the
// ranked x-axis used by the paper's Figure 13.
func Rank(xs []int) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}
