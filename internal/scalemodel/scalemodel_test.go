package scalemodel

import (
	"testing"
	"time"
)

func tokenizerParams() Params {
	// Roughly the measured HTML-tokenizer rates from results/.
	return Params{
		InputBytes:    6 << 20,
		SeqMBps:       150,
		CompMBps:      300,
		SpawnOverhead: 20 * time.Microsecond,
	}
}

func TestValidate(t *testing.T) {
	if err := tokenizerParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := tokenizerParams()
	bad.SeqMBps = 0
	if bad.Validate() == nil {
		t.Error("zero rate should fail")
	}
	bad = tokenizerParams()
	bad.InputBytes = 0
	if bad.Validate() == nil {
		t.Error("zero input should fail")
	}
	bad = tokenizerParams()
	bad.SpawnOverhead = -time.Second
	if bad.Validate() == nil {
		t.Error("negative overhead should fail")
	}
}

func TestAcceptSpeedupIsLinearUncapped(t *testing.T) {
	p := tokenizerParams()
	p.SpawnOverhead = 0
	for _, procs := range []int{2, 4, 8, 16} {
		s := p.AcceptSpeedup(procs)
		if s < 0.95*float64(procs) || s > 1.05*float64(procs) {
			t.Errorf("accept speedup at %d procs = %.2f, want ≈%d", procs, s, procs)
		}
	}
}

func TestMealyBreakEvenWhenRatesEqual(t *testing.T) {
	// c == d → T(2) == T(1): the break-even this repo measures on its
	// 2-core container (EXPERIMENTS.md, Figures 17–18).
	p := Params{InputBytes: 1 << 24, SeqMBps: 200, CompMBps: 200}
	s := p.MealySpeedup(2)
	if s < 0.95 || s > 1.05 {
		t.Errorf("speedup at 2 procs = %.2f, want ≈1.0 for c=d", s)
	}
	// And real wins from 4 cores on.
	if s4 := p.MealySpeedup(4); s4 < 1.8 {
		t.Errorf("speedup at 4 procs = %.2f, want ≈2", s4)
	}
	if s16 := p.MealySpeedup(16); s16 < 7 {
		t.Errorf("speedup at 16 procs = %.2f, want ≈8", s16)
	}
}

func TestMealySpeedupMonotonicUntilCap(t *testing.T) {
	p := tokenizerParams()
	prev := 0.0
	for procs := 1; procs <= 16; procs++ {
		s := p.MealySpeedup(procs)
		// Allow the small spawn-overhead dip around the P=2 break-even.
		if s+0.02 < prev {
			t.Fatalf("speedup regressed at %d procs: %.3f < %.3f", procs, s, prev)
		}
		prev = s
	}
}

func TestBandwidthCapFlattensCurve(t *testing.T) {
	p := tokenizerParams()
	p.BandwidthMBps = 8 * p.SeqMBps // the paper's ~8-core knee
	s8 := p.MealySpeedup(8)
	s16 := p.MealySpeedup(16)
	if s16 > s8*1.4 {
		t.Errorf("cap should flatten the curve: s8=%.2f s16=%.2f", s8, s16)
	}
	uncapped := tokenizerParams()
	if capped, free := p.MealySpeedup(16), uncapped.MealySpeedup(16); capped >= free {
		t.Errorf("cap should reduce 16-core speedup: %.2f vs %.2f", capped, free)
	}
}

func TestBaselineSpeedupComposition(t *testing.T) {
	// Single-core enumerative faster than baseline + multicore scaling
	// compose multiplicatively, the paper's central performance claim.
	p := tokenizerParams()
	baseline := 100.0 // slower switch-encoded baseline, MB/s
	s1 := p.BaselineSpeedup(1, baseline)
	if s1 < 1.2 || s1 > 2.0 {
		t.Errorf("1-core speedup over baseline = %.2f, want ≈1.5", s1)
	}
	s16 := p.BaselineSpeedup(16, baseline)
	if s16 < 6 {
		t.Errorf("16-core speedup over baseline = %.2f; paper reports 14×", s16)
	}
}

func TestSpawnOverheadHurtsSmallInputs(t *testing.T) {
	p := tokenizerParams()
	p.InputBytes = 1 << 12 // 4 KiB
	p.SpawnOverhead = 100 * time.Microsecond
	if s := p.MealySpeedup(16); s > 1.0 {
		t.Errorf("tiny input should not benefit from 16 procs (s=%.2f)", s)
	}
}

func TestPhaseTimeZeroRateGuard(t *testing.T) {
	p := Params{InputBytes: 1}
	if p.phaseTime(100, 1, 0) != 0 {
		t.Error("zero rate should return zero duration, not panic")
	}
}
