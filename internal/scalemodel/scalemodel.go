// Package scalemodel is an analytic model of the Figure 5 multicore
// schedule, used to project strong-scaling curves beyond the cores the
// host machine has (the paper evaluates on 16 cores; CI containers
// often expose 2). The model is calibrated from two measured
// single-core rates and validated against the measured 1..NumCPU
// points; EXPERIMENTS.md compares its 8- and 16-core predictions with
// the paper's reported speedups.
//
// Model. Let N be the input size, d the per-byte cost of the φ-bearing
// sequential pass (phase 3 work), c the per-byte cost of the
// enumerative composition (phase 1 work), and P the processor count.
// The implementation's schedule (internal/core.RunChunked) gives
// chunk 0's phase 3 to one core while the other P−1 cores run phase 1
// on their chunks, then runs the remaining P−1 phase-3 passes on all
// cores:
//
//	T_φ(P)      = (N/P)·max(c, d) + ⌈(P−1)/P⌉·(N/P)·d + P·t_s
//	T_accept(P) = (N/P)·c + P·t_s                  (phase 3 skipped)
//
// with t_s the per-chunk spawn/merge overhead. An optional aggregate
// memory-bandwidth cap B bounds the bytes/second any phase can reach,
// which is what bends the paper's curves flat above ~8 cores.
package scalemodel

import (
	"fmt"
	"time"
)

// Params is a calibrated workload model.
type Params struct {
	// InputBytes is the modeled input size N.
	InputBytes int
	// SeqMBps is the measured single-core φ-bearing rate (1/d), MB/s.
	SeqMBps float64
	// CompMBps is the measured single-core composition rate (1/c), MB/s.
	CompMBps float64
	// SpawnOverhead is the per-chunk scheduling cost t_s.
	SpawnOverhead time.Duration
	// BandwidthMBps caps the aggregate rate of each parallel phase;
	// 0 means uncapped.
	BandwidthMBps float64
}

// phaseTime returns the wall time for work bytes spread over procs
// cores at rate mbps, honoring the bandwidth cap.
func (p Params) phaseTime(workBytes float64, procs int, mbps float64) time.Duration {
	rate := mbps * float64(procs)
	if p.BandwidthMBps > 0 && rate > p.BandwidthMBps {
		rate = p.BandwidthMBps
	}
	if rate <= 0 {
		return 0
	}
	return time.Duration(workBytes / (rate * 1e6) * float64(time.Second))
}

// MealyTime predicts the wall time of a φ-bearing run on procs cores.
func (p Params) MealyTime(procs int) time.Duration {
	n := float64(p.InputBytes)
	if procs <= 1 {
		return p.phaseTime(n, 1, p.SeqMBps)
	}
	chunk := n / float64(procs)
	// Stage 1: chunk 0's φ pass races the P−1 composition passes.
	seq := p.phaseTime(chunk, 1, p.SeqMBps)
	comp := p.phaseTime(chunk, 1, p.CompMBps)
	if p.BandwidthMBps > 0 {
		agg := time.Duration(chunk * float64(procs-1) / (p.BandwidthMBps * 1e6) * float64(time.Second))
		if agg > comp {
			comp = agg
		}
	}
	stage1 := seq
	if comp > stage1 {
		stage1 = comp
	}
	// Stage 2: the remaining P−1 φ passes run concurrently, but each
	// chunk is bound to one core, so the wall time is one chunk's pass
	// — unless the aggregate bandwidth cap binds first.
	stage2 := p.phaseTime(chunk, 1, p.SeqMBps)
	if p.BandwidthMBps > 0 {
		agg := time.Duration(chunk * float64(procs-1) / (p.BandwidthMBps * 1e6) * float64(time.Second))
		if agg > stage2 {
			stage2 = agg
		}
	}
	return stage1 + stage2 + time.Duration(procs)*p.SpawnOverhead
}

// AcceptTime predicts the wall time of an accept-only query.
func (p Params) AcceptTime(procs int) time.Duration {
	n := float64(p.InputBytes)
	if procs <= 1 {
		return p.phaseTime(n, 1, p.CompMBps)
	}
	return p.phaseTime(n, procs, p.CompMBps) + time.Duration(procs)*p.SpawnOverhead
}

// MealySpeedup reports T_φ(1)/T_φ(P).
func (p Params) MealySpeedup(procs int) float64 {
	return float64(p.MealyTime(1)) / float64(p.MealyTime(procs))
}

// AcceptSpeedup reports T_accept(1)/T_accept(P).
func (p Params) AcceptSpeedup(procs int) float64 {
	return float64(p.AcceptTime(1)) / float64(p.AcceptTime(procs))
}

// BaselineSpeedup reports speedup of the P-core φ-bearing run over a
// plain sequential baseline running at baseMBps — the quantity
// Figure 18 plots ("14× over bing at 16 threads").
func (p Params) BaselineSpeedup(procs int, baseMBps float64) float64 {
	base := p.phaseTime(float64(p.InputBytes), 1, baseMBps)
	return float64(base) / float64(p.MealyTime(procs))
}

// Validate performs basic sanity checks on the parameters.
func (p Params) Validate() error {
	if p.InputBytes <= 0 {
		return fmt.Errorf("scalemodel: InputBytes %d", p.InputBytes)
	}
	if p.SeqMBps <= 0 || p.CompMBps <= 0 {
		return fmt.Errorf("scalemodel: rates must be positive (seq %.1f comp %.1f)", p.SeqMBps, p.CompMBps)
	}
	if p.BandwidthMBps < 0 || p.SpawnOverhead < 0 {
		return fmt.Errorf("scalemodel: negative cap or overhead")
	}
	return nil
}
