package huffman_test

import (
	"bytes"
	"fmt"

	"dpfsm/internal/core"
	"dpfsm/internal/huffman"
)

func ExampleFromSample() {
	text := bytes.Repeat([]byte("abracadabra "), 100)
	codec, err := huffman.FromSample(text)
	if err != nil {
		panic(err)
	}
	enc, err := codec.Encode(text)
	if err != nil {
		panic(err)
	}
	fmt.Printf("symbols=%d compressed=%d%% of original\n",
		codec.NumSymbols(), 100*len(enc.Data)/len(text))
	// Output: symbols=6 compressed=29% of original
}

func ExampleDecoderFSM_DecodeParallel() {
	text := bytes.Repeat([]byte("the quick brown fox "), 500)
	codec, _ := huffman.FromSample(text)
	dec, err := codec.DecoderFSM()
	if err != nil {
		panic(err)
	}
	enc, _ := codec.Encode(text)
	out, err := dec.DecodeParallel(enc, core.WithProcs(2), core.WithMinChunk(256))
	if err != nil {
		panic(err)
	}
	fmt.Println(bytes.Equal(out, text), dec.ByteMachine.NumStates() == dec.BitMachine.NumStates())
	// Output: true true
}

func ExampleCodec_ParallelEncode() {
	text := bytes.Repeat([]byte("parallel encoding merges bitstreams "), 10000)
	codec, _ := huffman.FromSample(text)
	seq, _ := codec.Encode(text)
	par, err := codec.ParallelEncode(text, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println(bytes.Equal(seq.Data, par.Data), seq.NBits == par.NBits)
	// Output: true true
}
