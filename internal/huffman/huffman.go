// Package huffman implements the Huffman-decoding case study (§6.2):
// code construction, encoding, a libhuffman-style bit-walking decoder
// (the paper's original ~5 MB/s baseline), a byte-unrolled FSM decoder
// (the paper's optimized sequential baseline), and a data-parallel
// decoder built on the enumerative runner of internal/core.
//
// The decoder FSM's states are the internal nodes of the Huffman tree;
// each input bit follows a child edge, and reaching a leaf emits the
// leaf's symbol and restarts at the root. Unrolling by 8 (fsm.Unroll)
// turns each transition into a whole-byte step that can emit several
// symbols — the unrolling "increases the number of edges in the FSM but
// not the number of states". Because the range of the unrolled
// transition functions is small (the tree has few nodes at depths ≡ 0
// mod 8), range coalescing encodes state names in a byte and decodes
// with one emulated shuffle per input byte.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"dpfsm/internal/bitstream"
)

// node is a Huffman tree node. Leaves carry a symbol.
type node struct {
	left, right *node
	sym         byte
	leaf        bool
	weight      int64
	order       int // tie-break for deterministic trees
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := old[len(old)-1]
	*h = old[:len(old)-1]
	return n
}

// code is one symbol's bit pattern.
type code struct {
	bits uint64
	n    int
}

// Codec holds a Huffman tree and its code table.
type Codec struct {
	root  *node
	codes [256]code
	nsyms int // distinct symbols
}

// New builds a codec from symbol frequencies. At least one symbol must
// have a positive count.
func New(freq *[256]int64) (*Codec, error) {
	var h nodeHeap
	order := 0
	for s := 0; s < 256; s++ {
		if freq[s] > 0 {
			h = append(h, &node{sym: byte(s), leaf: true, weight: freq[s], order: order})
			order++
		}
	}
	if len(h) == 0 {
		return nil, errors.New("huffman: no symbols")
	}
	c := &Codec{nsyms: len(h)}
	if len(h) == 1 {
		// Degenerate single-symbol alphabet: give it the 1-bit code 0
		// under a root whose both children are the same leaf.
		leaf := h[0]
		c.root = &node{left: leaf, right: leaf, weight: leaf.weight}
		c.codes[leaf.sym] = code{bits: 0, n: 1}
		return c, nil
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*node)
		b := heap.Pop(&h).(*node)
		heap.Push(&h, &node{left: a, right: b, weight: a.weight + b.weight, order: order})
		order++
	}
	c.root = h[0]
	c.assign(c.root, 0, 0)
	return c, nil
}

// FromSample builds a codec from the byte distribution of text.
func FromSample(text []byte) (*Codec, error) {
	var freq [256]int64
	for _, b := range text {
		freq[b]++
	}
	return New(&freq)
}

func (c *Codec) assign(n *node, bits uint64, depth int) {
	if n.leaf {
		if depth > 58 {
			panic("huffman: code longer than 58 bits")
		}
		c.codes[n.sym] = code{bits: bits, n: depth}
		return
	}
	c.assign(n.left, bits<<1, depth+1)
	c.assign(n.right, bits<<1|1, depth+1)
}

// NumSymbols reports the number of distinct symbols in the code.
func (c *Codec) NumSymbols() int { return c.nsyms }

// CodeLen reports the bit length of sym's code (0 if absent).
func (c *Codec) CodeLen(sym byte) int { return c.codes[sym].n }

// Encoded is a compressed payload.
type Encoded struct {
	Data  []byte // packed bitstream, zero-padded to a byte boundary
	NBits int    // valid bits in Data
	NOut  int    // number of source symbols (decoded length)
}

// Encode compresses text. Every byte of text must be in the code.
func (c *Codec) Encode(text []byte) (Encoded, error) {
	var w bitstream.Writer
	for i, b := range text {
		cd := c.codes[b]
		if cd.n == 0 {
			return Encoded{}, fmt.Errorf("huffman: symbol %#x at %d not in code", b, i)
		}
		w.WriteBits(cd.bits, cd.n)
	}
	return Encoded{Data: w.Bytes(), NBits: w.Len(), NOut: len(text)}, nil
}

// ParallelEncode compresses text with up to procs goroutines: the input
// is split by symbol count, chunks are encoded independently (encoding
// is embarrassingly parallel — the paper cites Howard & Vitter for
// this, §6.2), and the per-chunk bitstreams are merged in order with
// bit-level shifting. The output is bit-identical to Encode. procs ≤ 0
// selects runtime.NumCPU().
func (c *Codec) ParallelEncode(text []byte, procs int) (Encoded, error) {
	if procs <= 0 {
		procs = runtime.NumCPU()
	}
	const minChunk = 64 << 10
	if procs > len(text)/minChunk {
		procs = len(text) / minChunk
	}
	if procs <= 1 {
		return c.Encode(text)
	}
	type chunkResult struct {
		enc Encoded
		err error
	}
	results := make([]chunkResult, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		lo := p * len(text) / procs
		hi := (p + 1) * len(text) / procs
		wg.Add(1)
		go func(p int, part []byte) {
			defer wg.Done()
			results[p].enc, results[p].err = c.Encode(part)
		}(p, text[lo:hi])
	}
	wg.Wait()

	var w bitstream.Writer
	for p := range results {
		if results[p].err != nil {
			return Encoded{}, results[p].err
		}
		w.AppendStream(results[p].enc.Data, results[p].enc.NBits)
	}
	return Encoded{Data: w.Bytes(), NBits: w.Len(), NOut: len(text)}, nil
}

// DecodeBitwalk is the libhuffman-style baseline: walk the tree one bit
// at a time, chasing pointers (§6.2 measures this at ~5 MB/s).
func (c *Codec) DecodeBitwalk(enc Encoded) []byte {
	out := make([]byte, 0, enc.NOut)
	r := bitstream.NewReader(enc.Data, enc.NBits)
	cur := c.root
	for len(out) < enc.NOut {
		b, ok := r.ReadBit()
		if !ok {
			break
		}
		if b == 0 {
			cur = cur.left
		} else {
			cur = cur.right
		}
		if cur.leaf {
			out = append(out, cur.sym)
			cur = c.root
		}
	}
	return out
}
