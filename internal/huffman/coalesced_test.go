package huffman

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestCoalescedDecoderMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	for iter := 0; iter < 15; iter++ {
		text := sampleText(rng, 1+rng.Intn(8000))
		c, err := FromSample(text)
		if err != nil {
			t.Fatal(err)
		}
		f, err := c.DecoderFSM()
		if err != nil {
			t.Fatal(err)
		}
		cd := f.NewCoalescedDecoder()
		enc, err := c.Encode(text)
		if err != nil {
			t.Fatal(err)
		}
		want := f.DecodeSequential(enc)
		got := cd.Decode(enc)
		if !bytes.Equal(got, want) {
			t.Fatalf("iter %d: coalesced decode differs", iter)
		}
		if !bytes.Equal(got, text) {
			t.Fatalf("iter %d: roundtrip failed", iter)
		}
	}
}

func TestCoalescedDecoderEmpty(t *testing.T) {
	c, _ := FromSample([]byte("abcabc"))
	f, _ := c.DecoderFSM()
	cd := f.NewCoalescedDecoder()
	enc, _ := c.Encode(nil)
	if out := cd.Decode(enc); len(out) != 0 {
		t.Error("empty decode should be empty")
	}
}

func TestCoalescedTablesAreSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	text := sampleText(rng, 30000)
	c, _ := FromSample(text)
	f, _ := c.DecoderFSM()
	cd := f.NewCoalescedDecoder()
	// §5.3 accounting: the tables total e·k entries — larger than the
	// flat n·k table (the paper's "256 range tables each of size
	// 16·256" ≈ 1 MiB) — but bounded by maxRange·k².
	wantTotal := 0
	for a := 0; a < 256; a++ {
		wantTotal += f.ByteMachine.RangeSize(byte(a)) * 256
	}
	if cd.TableBytes() != wantTotal {
		t.Errorf("coalesced tables %dB, accounting says %dB", cd.TableBytes(), wantTotal)
	}
	bound := f.ByteMachine.MaxRangeSize() * 256 * 256
	if cd.TableBytes() > bound {
		t.Errorf("coalesced tables %dB exceed bound %dB", cd.TableBytes(), bound)
	}
	// The per-step working set — one symbol's table — is what shrinks:
	// it must fit comfortably in L1 regardless of state count.
	for a := 0; a < 256; a++ {
		if w := f.ByteMachine.RangeSize(byte(a)); w > f.ByteMachine.MaxRangeSize() {
			t.Fatalf("range %d exceeds max", w)
		}
	}
	if f.ByteMachine.MaxRangeSize()*256 > 32*1024 {
		t.Errorf("per-step table %dB would not be L1-resident", f.ByteMachine.MaxRangeSize()*256)
	}
}

func TestCoalescedDecoderSingleSymbol(t *testing.T) {
	var freq [256]int64
	freq['q'] = 5
	c, err := New(&freq)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.DecoderFSM()
	if err != nil {
		t.Fatal(err)
	}
	cd := f.NewCoalescedDecoder()
	text := bytes.Repeat([]byte("q"), 33)
	enc, _ := c.Encode(text)
	if got := cd.Decode(enc); !bytes.Equal(got, text) {
		t.Error("single-symbol coalesced roundtrip failed")
	}
}
