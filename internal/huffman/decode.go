package huffman

import (
	"fmt"
	"sort"
	"sync"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
)

// DecoderFSM is the byte-unrolled decoding machine: states are the
// internal nodes of the Huffman tree (root = state 0), the alphabet is
// the 256 possible input bytes, and every transition is annotated with
// the symbols decoded along its 8-bit path.
type DecoderFSM struct {
	codec *Codec
	// BitMachine consumes one bit per step (2-symbol alphabet).
	BitMachine *fsm.DFA
	// ByteMachine is BitMachine unrolled 8×: one input byte per step.
	ByteMachine *fsm.DFA
	// outs[state*256+b] is the byte string emitted when consuming input
	// byte b in state — the "statically predetermined strings" of §6.2.
	outs [][]byte
}

// DecoderFSM builds the decoding machine for the codec.
func (c *Codec) DecoderFSM() (*DecoderFSM, error) {
	// Number internal nodes; root first so the start state is 0.
	var internals []*node
	index := map[*node]int{}
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			return
		}
		if _, ok := index[n]; ok {
			return // degenerate tree shares children
		}
		index[n] = len(internals)
		internals = append(internals, n)
		walk(n.left)
		walk(n.right)
	}
	walk(c.root)
	if len(internals) == 0 {
		return nil, fmt.Errorf("huffman: tree has no internal nodes")
	}

	bitM, err := fsm.New(len(internals), 2)
	if err != nil {
		return nil, err
	}
	// emit[state][bit] is the symbol emitted (if any) on that edge.
	type emission struct {
		sym byte
		ok  bool
	}
	emit := make([][2]emission, len(internals))
	for qi, v := range internals {
		for bit := 0; bit < 2; bit++ {
			child := v.left
			if bit == 1 {
				child = v.right
			}
			if child.leaf {
				bitM.SetTransition(fsm.State(qi), byte(bit), 0) // back to root
				emit[qi][bit] = emission{sym: child.sym, ok: true}
			} else {
				bitM.SetTransition(fsm.State(qi), byte(bit), fsm.State(index[child]))
			}
		}
	}

	byteM, err := bitM.Unroll(8)
	if err != nil {
		return nil, err
	}

	// Precompute per-(state, byte) output strings by walking the 8-bit
	// path and collecting emissions.
	outs := make([][]byte, len(internals)*256)
	for qi := range internals {
		for b := 0; b < 256; b++ {
			var o []byte
			q := fsm.State(qi)
			for i := 7; i >= 0; i-- {
				bit := byte(b>>uint(i)) & 1
				if e := emit[q][bit]; e.ok {
					o = append(o, e.sym)
				}
				q = bitM.Next(q, bit)
			}
			outs[qi*256+b] = o
		}
	}

	return &DecoderFSM{codec: c, BitMachine: bitM, ByteMachine: byteM, outs: outs}, nil
}

// Output returns the symbols emitted when consuming byte b in state q.
// The returned slice is shared and must not be mutated.
func (f *DecoderFSM) Output(q fsm.State, b byte) []byte {
	return f.outs[int(q)*256+int(b)]
}

// DecodeSequential is the paper's optimized sequential baseline: one
// table transition and one (usually short) string append per input
// byte (§6.2, ≥300 MB/s on the paper's hardware).
func (f *DecoderFSM) DecodeSequential(enc Encoded) []byte {
	out := make([]byte, 0, enc.NOut+8)
	q := fsm.State(0)
	for _, b := range enc.Data {
		out = append(out, f.outs[int(q)*256+int(b)]...)
		q = f.ByteMachine.Next(q, b)
	}
	if len(out) > enc.NOut {
		out = out[:enc.NOut] // drop symbols decoded from padding bits
	}
	return out
}

// DecodeParallel decodes with the enumerative runner: phases 1–2 of
// Figure 5 resolve each chunk's start state with the range-coalesced
// strategy (one emulated shuffle per byte, §6.2), then each chunk is
// decoded sequentially in parallel and the per-chunk outputs are
// stitched in order — the "additional pass to process the output into
// appropriate form" the paper accounts for.
func (f *DecoderFSM) DecodeParallel(enc Encoded, opts ...core.Option) ([]byte, error) {
	r, err := core.New(f.ByteMachine, opts...)
	if err != nil {
		return nil, err
	}
	type piece struct {
		off int
		buf []byte
	}
	var mu sync.Mutex
	var pieces []piece
	r.RunChunked(enc.Data, 0, func(off int, chunk []byte, start fsm.State) fsm.State {
		buf := make([]byte, 0, len(chunk)*2)
		q := start
		for _, b := range chunk {
			buf = append(buf, f.outs[int(q)*256+int(b)]...)
			q = f.ByteMachine.Next(q, b)
		}
		mu.Lock()
		pieces = append(pieces, piece{off, buf})
		mu.Unlock()
		return q
	})
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].off < pieces[j].off })
	out := make([]byte, 0, enc.NOut+8)
	for _, p := range pieces {
		out = append(out, p.buf...)
	}
	if len(out) > enc.NOut {
		out = out[:enc.NOut]
	}
	return out, nil
}

// Runner returns a configured enumerative runner over the byte machine,
// for benchmarks that want to control strategy and measure phases.
func (f *DecoderFSM) Runner(opts ...core.Option) (*core.Runner, error) {
	return core.New(f.ByteMachine, opts...)
}
