package huffman

import (
	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
)

// Range-coalesced sequential decoder (§6.2). The unrolled byte
// machine's transition table is NumStates×256 entries — up to 128 KiB —
// while its per-symbol ranges are tiny (≤16 for every tree in the
// paper's corpus and ours). Renaming states per symbol (§5.3) shrinks
// the transition working set to 256 tables of ≤ maxRange bytes, which
// stay resident in L1; this is the paper's single-core win for Huffman
// decoding, independent of any multicore parallelism.

// CoalescedDecoder walks the name-domain tables sequentially.
type CoalescedDecoder struct {
	f *DecoderFSM
	// u[a][name] = state, for each input byte a.
	u [][]fsm.State
	// l[a][q] = name of δ(q, a) among names of a.
	l [][]byte
	// t[a] is flat: t[a][int(b)*width(a)+name] = l[b][u[a][name]].
	t     [][]byte
	width []int
}

// NewCoalescedDecoder builds the per-symbol tables from the decoder's
// byte machine.
func (f *DecoderFSM) NewCoalescedDecoder() *CoalescedDecoder {
	m := f.ByteMachine
	k := m.NumSymbols()
	cd := &CoalescedDecoder{
		f:     f,
		u:     make([][]fsm.State, k),
		l:     make([][]byte, k),
		t:     make([][]byte, k),
		width: make([]int, k),
	}
	for a := 0; a < k; a++ {
		l16, u := gather.Factor(m.Column(byte(a)))
		lb := make([]byte, len(l16))
		for i, v := range l16 {
			lb[i] = byte(v)
		}
		cd.l[a] = lb
		cd.u[a] = u
		cd.width[a] = len(u)
	}
	for a := 0; a < k; a++ {
		w := cd.width[a]
		tab := make([]byte, k*w)
		for b := 0; b < k; b++ {
			lb := cd.l[b]
			for i, q := range cd.u[a] {
				tab[b*w+i] = lb[q]
			}
		}
		cd.t[a] = tab
	}
	return cd
}

// TableBytes reports the total size of the coalesced transition tables
// (the §5.3 e·k accounting; ~1 MiB for the paper's Huffman setup, far
// less here because our alphabet of names is at most the max range).
func (cd *CoalescedDecoder) TableBytes() int {
	total := 0
	for _, tab := range cd.t {
		total += len(tab)
	}
	return total
}

// Decode walks the coalesced tables: per input byte, one small-table
// transition, one state materialization for the output lookup, and one
// string append.
func (cd *CoalescedDecoder) Decode(enc Encoded) []byte {
	out := make([]byte, 0, enc.NOut+8)
	if len(enc.Data) == 0 {
		return out
	}
	outs := cd.f.outs
	a := enc.Data[0]
	out = append(out, outs[0*256+int(a)]...) // start state is 0 (root)
	name := cd.l[a][0]
	prev := int(a)
	for _, b := range enc.Data[1:] {
		state := cd.u[prev][name]
		out = append(out, outs[int(state)*256+int(b)]...)
		name = cd.t[prev][int(b)*cd.width[prev]+int(name)]
		prev = int(b)
	}
	if len(out) > enc.NOut {
		out = out[:enc.NOut]
	}
	return out
}
