package huffman

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dpfsm/internal/bitstream"
)

func TestParallelEncodeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(180))
	text := sampleText(rng, 300_000) // above the per-chunk minimum
	c, err := FromSample(text)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Encode(text)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{0, 1, 2, 3, 4} {
		got, err := c.ParallelEncode(text, procs)
		if err != nil {
			t.Fatal(err)
		}
		if got.NBits != want.NBits || got.NOut != want.NOut {
			t.Fatalf("procs=%d: header differs (%d/%d vs %d/%d)",
				procs, got.NBits, got.NOut, want.NBits, want.NOut)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("procs=%d: bitstream differs", procs)
		}
	}
}

func TestParallelEncodeSmallInputFallsBack(t *testing.T) {
	c, _ := FromSample([]byte("aabbcc"))
	got, err := c.ParallelEncode([]byte("abc"), 8)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := c.Encode([]byte("abc"))
	if !bytes.Equal(got.Data, want.Data) || got.NBits != want.NBits {
		t.Fatal("tiny input should fall back to sequential encoding")
	}
}

func TestParallelEncodeUnknownSymbol(t *testing.T) {
	c, _ := FromSample(bytes.Repeat([]byte("ab"), 100_000))
	bad := bytes.Repeat([]byte("ab"), 100_000)
	bad[150_000] = 'z'
	if _, err := c.ParallelEncode(bad, 2); err == nil {
		t.Error("unknown symbol must surface from a worker")
	}
}

func TestParallelEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	text := sampleText(rng, 400_000)
	c, _ := FromSample(text)
	f, err := c.DecoderFSM()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.ParallelEncode(text, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.DecodeSequential(enc); !bytes.Equal(got, text) {
		t.Fatal("parallel-encoded stream failed to decode")
	}
}

// Property: AppendStream over arbitrary splits reproduces the bit-serial
// writer exactly.
func TestAppendStreamProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	f := func(raw []byte, cut uint8, lead uint8) bool {
		// Reference: write lead (0..7) padding bits then all of raw's
		// bits one at a time.
		nlead := int(lead % 8)
		var ref bitstream.Writer
		for i := 0; i < nlead; i++ {
			ref.WriteBit(1)
		}
		for _, b := range raw {
			ref.WriteBits(uint64(b), 8)
		}
		// Candidate: same lead bits, then the packed stream appended in
		// two arbitrary pieces.
		var w bitstream.Writer
		for i := 0; i < nlead; i++ {
			w.WriteBit(1)
		}
		k := 0
		if len(raw) > 0 {
			k = int(cut) % (len(raw) + 1)
		}
		w.AppendStream(raw[:k], k*8)
		w.AppendStream(raw[k:], (len(raw)-k)*8)
		if w.Len() != ref.Len() {
			return false
		}
		return bytes.Equal(w.Bytes(), ref.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestAppendStreamPartialBits(t *testing.T) {
	// Append 11 bits of a 2-byte stream onto an unaligned writer.
	var w bitstream.Writer
	w.WriteBits(0b101, 3)
	w.AppendStream([]byte{0b11001010, 0b01100000}, 11)
	// Expect: 101 11001010 011 → 10111001 01001100 padded? total 14 bits.
	if w.Len() != 14 {
		t.Fatalf("Len = %d", w.Len())
	}
	var ref bitstream.Writer
	ref.WriteBits(0b101, 3)
	ref.WriteBits(0b11001010, 8)
	ref.WriteBits(0b011, 3)
	if !bytes.Equal(w.Bytes(), ref.Bytes()) {
		t.Fatalf("got %08b want %08b", w.Bytes(), ref.Bytes())
	}
}

func TestAppendStreamClampsAndIgnoresEmpty(t *testing.T) {
	var w bitstream.Writer
	w.AppendStream(nil, 10) // clamps to 0
	w.AppendStream([]byte{0xFF}, 0)
	w.AppendStream([]byte{0xFF}, -3)
	if w.Len() != 0 {
		t.Fatalf("Len = %d, want 0", w.Len())
	}
	w.AppendStream([]byte{0xAA}, 99) // clamps to 8
	if w.Len() != 8 || w.Bytes()[0] != 0xAA {
		t.Fatalf("clamped append wrong: len=%d", w.Len())
	}
}
