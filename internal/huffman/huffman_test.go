package huffman

import (
	"bytes"
	"math/rand"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
)

func sampleText(rng *rand.Rand, n int) []byte {
	// Skewed English-ish distribution so codes have varied lengths.
	const letters = "eeeeeeeeeettttttaaaaooooiiinnnsssrrhhldcumfpg ywbvkxjqz...,,!?\n"
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(len(letters))]
	}
	return out
}

func TestNewErrors(t *testing.T) {
	var freq [256]int64
	if _, err := New(&freq); err == nil {
		t.Error("empty frequency table should fail")
	}
}

func TestSingleSymbolCodec(t *testing.T) {
	var freq [256]int64
	freq['z'] = 10
	c, err := New(&freq)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSymbols() != 1 || c.CodeLen('z') != 1 {
		t.Fatalf("nsyms=%d len=%d", c.NumSymbols(), c.CodeLen('z'))
	}
	text := bytes.Repeat([]byte("z"), 100)
	enc, err := c.Encode(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.DecodeBitwalk(enc); !bytes.Equal(got, text) {
		t.Error("bitwalk roundtrip failed for single-symbol code")
	}
	f, err := c.DecoderFSM()
	if err != nil {
		t.Fatal(err)
	}
	if got := f.DecodeSequential(enc); !bytes.Equal(got, text) {
		t.Error("FSM roundtrip failed for single-symbol code")
	}
}

func TestKraftEquality(t *testing.T) {
	// A Huffman code on ≥2 symbols is complete: Σ 2^-len = 1.
	rng := rand.New(rand.NewSource(90))
	for iter := 0; iter < 20; iter++ {
		text := sampleText(rng, 2000)
		c, err := FromSample(text)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for s := 0; s < 256; s++ {
			if n := c.CodeLen(byte(s)); n > 0 {
				sum += 1 / float64(uint64(1)<<uint(n))
			}
		}
		if sum < 0.999999 || sum > 1.000001 {
			t.Fatalf("Kraft sum = %v", sum)
		}
	}
}

func TestOptimalityAgainstUniform(t *testing.T) {
	// On a strongly skewed distribution the Huffman-coded size must
	// beat the flat log2(nsyms) encoding.
	rng := rand.New(rand.NewSource(91))
	text := sampleText(rng, 10000)
	c, _ := FromSample(text)
	enc, err := c.Encode(text)
	if err != nil {
		t.Fatal(err)
	}
	flatBits := 6 * len(text) // 64 distinct symbols max in sampleText
	if enc.NBits >= flatBits {
		t.Errorf("Huffman %d bits not better than flat %d", enc.NBits, flatBits)
	}
}

func TestEncodeUnknownSymbol(t *testing.T) {
	c, _ := FromSample([]byte("aaabbb"))
	if _, err := c.Encode([]byte("abc")); err == nil {
		t.Error("encoding a symbol outside the code should fail")
	}
}

func TestBitwalkRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for iter := 0; iter < 20; iter++ {
		text := sampleText(rng, 1+rng.Intn(5000))
		c, _ := FromSample(text)
		enc, err := c.Encode(text)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.DecodeBitwalk(enc); !bytes.Equal(got, text) {
			t.Fatalf("iter %d: bitwalk roundtrip failed", iter)
		}
	}
}

func TestFSMSequentialMatchesBitwalk(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for iter := 0; iter < 20; iter++ {
		text := sampleText(rng, 1+rng.Intn(5000))
		c, _ := FromSample(text)
		f, err := c.DecoderFSM()
		if err != nil {
			t.Fatal(err)
		}
		enc, _ := c.Encode(text)
		a := c.DecodeBitwalk(enc)
		b := f.DecodeSequential(enc)
		if !bytes.Equal(a, b) {
			t.Fatalf("iter %d: FSM decode differs from bitwalk", iter)
		}
		if !bytes.Equal(b, text) {
			t.Fatalf("iter %d: roundtrip failed", iter)
		}
	}
}

func TestDecoderFSMShape(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	text := sampleText(rng, 20000)
	c, _ := FromSample(text)
	f, err := c.DecoderFSM()
	if err != nil {
		t.Fatal(err)
	}
	// Internal nodes = nsyms - 1 for a proper binary Huffman tree.
	if got, want := f.BitMachine.NumStates(), c.NumSymbols()-1; got != want {
		t.Errorf("bit machine states %d, want %d", got, want)
	}
	if f.ByteMachine.NumStates() != f.BitMachine.NumStates() {
		t.Error("unrolling must not change the state count")
	}
	if f.ByteMachine.NumSymbols() != 256 {
		t.Error("byte machine must have 256 symbols")
	}
	// §6.2's observation: unrolled range is small (≤16 for all 34
	// books). Our skewed sample should satisfy it comfortably.
	if r := f.ByteMachine.MaxRangeSize(); r > 16 {
		t.Errorf("max range %d; expected ≤16 for a natural distribution", r)
	}
}

func TestOutputStringsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	text := sampleText(rng, 3000)
	c, _ := FromSample(text)
	f, _ := c.DecoderFSM()
	// Emitted outputs across a byte must replay through the bit machine.
	for trial := 0; trial < 200; trial++ {
		q := rng.Intn(f.BitMachine.NumStates())
		b := byte(rng.Intn(256))
		out := f.Output(fsm.State(q), b)
		// Replay: decode by hand with the bit machine and emissions
		// derived from code tables by decoding out's codes.
		var w int
		for _, sym := range out {
			w += c.CodeLen(sym)
		}
		if w > 8+58 { // any single byte can finish one pending code ≤58 bits... sanity only
			t.Fatalf("implausible emitted width %d", w)
		}
	}
}

func TestDecodeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	for _, n := range []int{0, 1, 100, 5000, 60000} {
		text := sampleText(rng, n+1)[:n]
		if n == 0 {
			continue // Encode of empty text handled below
		}
		c, _ := FromSample(sampleText(rng, 4000))
		// Re-encode with a codec that covers the text's symbols.
		c, _ = FromSample(append(text, sampleText(rng, 100)...))
		f, err := c.DecoderFSM()
		if err != nil {
			t.Fatal(err)
		}
		enc, err := c.Encode(text)
		if err != nil {
			t.Fatal(err)
		}
		want := f.DecodeSequential(enc)
		got, err := f.DecodeParallel(enc, core.WithProcs(4), core.WithMinChunk(64))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("n=%d: parallel decode differs (%d vs %d bytes)", n, len(got), len(want))
		}
		if !bytes.Equal(got, text) {
			t.Fatalf("n=%d: parallel roundtrip failed", n)
		}
	}
}

func TestDecodeParallelSingleProc(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	text := sampleText(rng, 2000)
	c, _ := FromSample(text)
	f, _ := c.DecoderFSM()
	enc, _ := c.Encode(text)
	got, err := f.DecodeParallel(enc) // defaults: 1 proc
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, text) {
		t.Error("single-proc parallel decode failed")
	}
}

func TestRunnerAutoPicksRange(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	text := sampleText(rng, 10000)
	c, _ := FromSample(text)
	f, _ := c.DecoderFSM()
	r, err := f.Runner()
	if err != nil {
		t.Fatal(err)
	}
	if f.ByteMachine.MaxRangeSize() <= 16 && r.Strategy() != core.RangeCoalesced {
		t.Errorf("auto strategy = %v for range-%d machine", r.Strategy(), f.ByteMachine.MaxRangeSize())
	}
}

func TestEncodeEmpty(t *testing.T) {
	c, _ := FromSample([]byte("ab"))
	enc, err := c.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if enc.NBits != 0 || enc.NOut != 0 {
		t.Error("empty encode should be empty")
	}
	f, _ := c.DecoderFSM()
	if out := f.DecodeSequential(enc); len(out) != 0 {
		t.Error("empty decode should be empty")
	}
}
