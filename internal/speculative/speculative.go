// Package speculative implements the speculative parallelization
// baseline the paper positions itself against (§7, citing Luchaup et
// al. and Klein & Wiseman): instead of enumerating all start states
// for a chunk, *guess* one, run the chunk sequentially, and verify the
// guess against the true end state of the previous chunk; on a
// mismatch, re-run the chunk from the correct state.
//
// The paper's two criticisms are reproduced here as measurable
// behavior:
//
//  1. efficacy is input-dependent — the guess is only right when the
//     machine converges onto the guessed state, and "the probability
//     of such cascading misspeculations increases with the number of
//     processors"; and
//  2. even when speculation succeeds, per-chunk work is the plain
//     sequential loop, so a single core gains nothing.
//
// Guessing policy: the most frequently reached state in a short warmup
// prefix (a common heuristic in the literature). Verification is
// exact, so results always match the sequential run.
package speculative

import (
	"sync"

	"dpfsm/internal/fsm"
)

// Stats reports what speculation did on one input.
type Stats struct {
	Chunks        int
	Misspeculated int // chunks whose guess was wrong and were re-run
	ReRunBytes    int // bytes processed a second time
}

// Runner executes a machine speculatively across chunks.
type Runner struct {
	d     *fsm.DFA
	procs int
	guess fsm.State
}

// New builds a speculative runner. warmup bytes of representative
// input seed the guess (the state most often occupied); an empty
// warmup guesses the start state.
func New(d *fsm.DFA, procs int, warmup []byte) *Runner {
	if procs < 1 {
		procs = 1
	}
	r := &Runner{d: d, procs: procs, guess: d.Start()}
	if len(warmup) > 0 {
		counts := make([]int, d.NumStates())
		q := d.Start()
		for _, b := range warmup {
			q = d.Next(q, b)
			counts[q]++
		}
		best := 0
		for s, c := range counts {
			if c > counts[best] {
				best = s
			}
		}
		r.guess = fsm.State(best)
	}
	return r
}

// Guess reports the state the runner speculates chunks start in.
func (r *Runner) Guess() fsm.State { return r.guess }

// Final runs the machine from start over input, speculating chunk
// start states, and returns the exact final state plus speculation
// statistics.
func (r *Runner) Final(input []byte, start fsm.State) (fsm.State, Stats) {
	if r.procs == 1 || len(input) < 2*r.procs {
		return r.d.Run(input, start), Stats{Chunks: 1}
	}
	p := r.procs
	chunks := make([][2]int, p)
	for i := 0; i < p; i++ {
		chunks[i] = [2]int{i * len(input) / p, (i + 1) * len(input) / p}
	}

	// Phase 1: chunk 0 runs from the true start; all others run from
	// the guess, in parallel.
	ends := make([]fsm.State, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := r.guess
			if i == 0 {
				st = start
			}
			ends[i] = r.d.Run(input[chunks[i][0]:chunks[i][1]], st)
		}(i)
	}
	wg.Wait()

	// Phase 2: verify left to right; a wrong guess forces a sequential
	// re-run of that chunk from the corrected state, which can cascade
	// into the next chunk.
	stats := Stats{Chunks: p}
	st := ends[0]
	for i := 1; i < p; i++ {
		if st == r.guess {
			st = ends[i] // speculation hit
			continue
		}
		stats.Misspeculated++
		stats.ReRunBytes += chunks[i][1] - chunks[i][0]
		st = r.d.Run(input[chunks[i][0]:chunks[i][1]], st)
	}
	return st, stats
}

// HitRate reports the fraction of speculated chunks whose guess held.
func (s Stats) HitRate() float64 {
	spec := s.Chunks - 1
	if spec <= 0 {
		return 1
	}
	return float64(spec-s.Misspeculated) / float64(spec)
}
