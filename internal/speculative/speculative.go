// Package speculative implements the speculative parallelization the
// paper positions itself against (§7, citing Luchaup et al. and Klein
// & Wiseman): instead of enumerating all start states for a chunk,
// *guess* one, run the chunk sequentially, and verify the guess
// against the true end state of the previous chunk; on a mismatch,
// re-run the chunk from the correct state. The verification step is
// the degenerate form of the paper's composition vectors — a vector of
// width one, carrying only the guessed entry.
//
// The paper's two criticisms are reproduced here as measurable
// behavior:
//
//  1. efficacy is input-dependent — the guess is only right when the
//     machine converges onto the guessed state, and "the probability
//     of such cascading misspeculations increases with the number of
//     processors"; and
//  2. even when speculation succeeds, per-chunk work is the plain
//     sequential loop, so a single core gains nothing.
//
// Originally a benchmark-only baseline, the Runner now also backs the
// engine's speculative dispatch lane: the engine updates the guess
// live from the machine's hot-state profile (SetGuess), bounds chunk
// sizes (SetMinChunk), and runs under a cancelable context (FinalCtx).
// Verification is exact either way, so results always match the
// sequential run.
//
// Guessing policy: New seeds the guess with the most frequently
// reached state in a short warmup prefix (a common heuristic in the
// literature); an attached perf profile can override it at any time
// with the machine's observed dominant final state.
package speculative

import (
	"context"
	"sync"
	"sync/atomic"

	"dpfsm/internal/fsm"
)

// Stats reports what speculation did on one input.
type Stats struct {
	Chunks        int
	Misspeculated int // chunks whose guess was wrong and were re-run
	ReRunBytes    int // bytes processed a second time
}

// cancelBlock is how many bytes a chunk runs between context checks
// under FinalCtx: large enough that the check is noise against the
// per-byte table walk, small enough that cancellation lands promptly.
const cancelBlock = 64 << 10

// Runner executes a machine speculatively across chunks. The guess is
// atomic, so a live profiler may retarget it while jobs are running.
type Runner struct {
	d        *fsm.DFA
	procs    int
	guess    atomic.Int64
	minChunk int
}

// New builds a speculative runner. warmup bytes of representative
// input seed the guess (the state most often occupied); an empty
// warmup guesses the start state.
func New(d *fsm.DFA, procs int, warmup []byte) *Runner {
	if procs < 1 {
		procs = 1
	}
	r := &Runner{d: d, procs: procs, minChunk: 1}
	guess := d.Start()
	if len(warmup) > 0 {
		counts := make([]int, d.NumStates())
		q := d.Start()
		for _, b := range warmup {
			q = d.Next(q, b)
			counts[q]++
		}
		best := 0
		for s, c := range counts {
			if c > counts[best] {
				best = s
			}
		}
		guess = fsm.State(best)
	}
	r.guess.Store(int64(guess))
	return r
}

// Guess reports the state the runner currently speculates chunks
// start in.
func (r *Runner) Guess() fsm.State { return fsm.State(r.guess.Load()) }

// SetGuess retargets the speculated start state. Safe to call while
// runs are in flight: each run snapshots the guess once at entry, so
// its phase-2 verification always checks the same state phase 1 ran
// from.
func (r *Runner) SetGuess(s fsm.State) { r.guess.Store(int64(s)) }

// SetMinChunk sets the smallest chunk worth fanning out: inputs that
// would split below n bytes per chunk run sequentially instead.
// Values below 1 are treated as 1.
func (r *Runner) SetMinChunk(n int) {
	if n < 1 {
		n = 1
	}
	r.minChunk = n
}

// Final runs the machine from start over input, speculating chunk
// start states, and returns the exact final state plus speculation
// statistics.
func (r *Runner) Final(input []byte, start fsm.State) (fsm.State, Stats) {
	st, stats, _ := r.FinalCtx(context.Background(), input, start)
	return st, stats
}

// FinalCtx is Final under a context: chunks poll ctx between
// cancelBlock-sized blocks, and a canceled run returns ctx's error
// with an undefined state. The error is nil whenever ctx never
// expires, so Final can discard it.
func (r *Runner) FinalCtx(ctx context.Context, input []byte, start fsm.State) (fsm.State, Stats, error) {
	guess := r.Guess()
	p := r.procs
	if p == 1 || len(input) < 2*p || len(input)/p < r.minChunk {
		st, err := r.runCtx(ctx, input, start)
		return st, Stats{Chunks: 1}, err
	}
	chunks := make([][2]int, p)
	for i := 0; i < p; i++ {
		chunks[i] = [2]int{i * len(input) / p, (i + 1) * len(input) / p}
	}

	// Phase 1: chunk 0 runs from the true start; all others run from
	// the guess, in parallel.
	ends := make([]fsm.State, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := guess
			if i == 0 {
				st = start
			}
			ends[i], errs[i] = r.runCtx(ctx, input[chunks[i][0]:chunks[i][1]], st)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return start, Stats{Chunks: p}, err
		}
	}

	// Phase 2: verify left to right; a wrong guess forces a sequential
	// re-run of that chunk from the corrected state, which can cascade
	// into the next chunk.
	stats := Stats{Chunks: p}
	st := ends[0]
	for i := 1; i < p; i++ {
		if st == guess {
			st = ends[i] // speculation hit
			continue
		}
		stats.Misspeculated++
		stats.ReRunBytes += chunks[i][1] - chunks[i][0]
		var err error
		st, err = r.runCtx(ctx, input[chunks[i][0]:chunks[i][1]], st)
		if err != nil {
			return start, stats, err
		}
	}
	return st, stats, nil
}

// ChunkFunc processes one input chunk from its verified start state
// and returns the state after the chunk, mirroring core.ChunkFunc. off
// is the global offset of chunk[0].
type ChunkFunc func(off int, chunk []byte, start fsm.State) fsm.State

// RunChunkedCtx is the speculative analogue of core's RunChunked: a
// caller-supplied phase 3 over chunks whose start states have been
// resolved by speculation *and verified*, so f only ever observes true
// start states and the result is exact regardless of guess quality.
// Chunk 0 needs no speculation — f runs it directly from start,
// concurrently with the guessed walks of chunks 1..P-1. Verification
// then recovers every chunk's true start left to right; a chunk whose
// guess held is replayed by f in parallel afterwards, while a
// misspeculated chunk is re-run through f immediately during
// verification (the corrected state is in hand, and that replay *is*
// the authoritative one — no third pass). f must be safe for
// concurrent calls on distinct chunks.
func (r *Runner) RunChunkedCtx(ctx context.Context, input []byte, start fsm.State, f ChunkFunc) (fsm.State, Stats, error) {
	if len(input) == 0 {
		return start, Stats{Chunks: 1}, nil
	}
	guess := r.Guess()
	p := r.procs
	if p == 1 || len(input) < 2*p || len(input)/p < r.minChunk {
		return f(0, input, start), Stats{Chunks: 1}, nil
	}
	chunks := make([][2]int, p)
	for i := 0; i < p; i++ {
		chunks[i] = [2]int{i * len(input) / p, (i + 1) * len(input) / p}
	}

	// Phase 1: chunk 0 replays through f from the true start (nothing
	// about it is speculative); all others walk from the guess.
	ends := make([]fsm.State, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ends[0] = f(0, input[chunks[0][0]:chunks[0][1]], start)
	}()
	for i := 1; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ends[i], errs[i] = r.runCtx(ctx, input[chunks[i][0]:chunks[i][1]], guess)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return start, Stats{Chunks: p}, err
		}
	}

	// Phase 2: verify left to right. A hit defers the chunk's replay to
	// the parallel phase 3; a miss replays through f right here, from
	// the corrected state.
	stats := Stats{Chunks: p}
	starts := make([]fsm.State, p)
	replayed := make([]bool, p)
	st := ends[0]
	for i := 1; i < p; i++ {
		starts[i] = st
		if st == guess {
			st = ends[i]
			continue
		}
		stats.Misspeculated++
		stats.ReRunBytes += chunks[i][1] - chunks[i][0]
		st = f(chunks[i][0], input[chunks[i][0]:chunks[i][1]], starts[i])
		replayed[i] = true
	}

	// Phase 3: replay the verified hits in parallel.
	for i := 1; i < p; i++ {
		if replayed[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f(chunks[i][0], input[chunks[i][0]:chunks[i][1]], starts[i])
		}(i)
	}
	wg.Wait()
	return st, stats, nil
}

// runCtx is the sequential table walk with cooperative cancellation.
// A context that can never be canceled takes the unchecked fast path.
func (r *Runner) runCtx(ctx context.Context, input []byte, st fsm.State) (fsm.State, error) {
	if ctx == nil || ctx.Done() == nil {
		return r.d.Run(input, st), nil
	}
	for len(input) > 0 {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		n := len(input)
		if n > cancelBlock {
			n = cancelBlock
		}
		st = r.d.Run(input[:n], st)
		input = input[n:]
	}
	return st, ctx.Err()
}

// HitRate reports the fraction of speculated chunks whose guess held.
func (s Stats) HitRate() float64 {
	spec := s.Chunks - 1
	if spec <= 0 {
		return 1
	}
	return float64(spec-s.Misspeculated) / float64(spec)
}
