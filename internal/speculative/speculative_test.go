package speculative

import (
	"context"
	"math/rand"
	"testing"

	"dpfsm/internal/fsm"
)

func TestFinalAlwaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(190))
	for iter := 0; iter < 40; iter++ {
		d := fsm.Random(rng, 1+rng.Intn(40), 1+rng.Intn(6), 0.3)
		in := d.RandomInput(rng, 100+rng.Intn(4000))
		warm := d.RandomInput(rng, 200)
		for _, procs := range []int{1, 2, 4, 8} {
			r := New(d, procs, warm)
			got, stats := r.Final(in, d.Start())
			if want := d.Run(in, d.Start()); got != want {
				t.Fatalf("iter %d procs %d: %d want %d", iter, procs, got, want)
			}
			if stats.Misspeculated > stats.Chunks-1 {
				t.Fatalf("impossible stats %+v", stats)
			}
		}
	}
}

func TestSpeculationHitsOnConvergingMachine(t *testing.T) {
	// A machine that funnels into one state makes speculation succeed:
	// exactly the inputs where the technique looks good.
	d := fsm.MustNew(4, 2)
	d.SetColumn(0, []fsm.State{1, 2, 3, 3})
	d.SetColumn(1, []fsm.State{3, 3, 3, 3})
	rng := rand.New(rand.NewSource(191))
	in := d.RandomInput(rng, 20000)
	r := New(d, 8, in[:500])
	if r.Guess() != 3 {
		t.Fatalf("warmup should guess the absorbing state, got %d", r.Guess())
	}
	_, stats := r.Final(in, d.Start())
	if stats.HitRate() < 0.99 {
		t.Errorf("hit rate %.2f on an absorbing machine", stats.HitRate())
	}
}

func TestSpeculationCascadesOnPermutation(t *testing.T) {
	// Permutation machines never converge, so the guess is almost
	// always wrong and every chunk re-runs — the paper's §7 argument.
	rng := rand.New(rand.NewSource(192))
	d := fsm.RandomPermutation(rng, 16, 4, 0.3)
	in := d.RandomInput(rng, 40000)
	r := New(d, 8, in[:500])
	_, stats := r.Final(in, d.Start())
	if stats.HitRate() > 0.5 {
		t.Errorf("hit rate %.2f on a permutation machine; expected mostly misses", stats.HitRate())
	}
	if stats.ReRunBytes == 0 {
		t.Error("expected re-run work")
	}
}

func TestTinyInputFallsBack(t *testing.T) {
	d := fsm.MustNew(2, 2)
	r := New(d, 8, nil)
	_, stats := r.Final([]byte{0, 1, 0}, 0)
	if stats.Chunks != 1 {
		t.Errorf("tiny input should run in one chunk, got %d", stats.Chunks)
	}
}

func TestHitRateEdge(t *testing.T) {
	if (Stats{Chunks: 1}).HitRate() != 1 {
		t.Error("single chunk has trivial hit rate 1")
	}
	s := Stats{Chunks: 5, Misspeculated: 2}
	if s.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
}

func TestEmptyWarmupGuessesStart(t *testing.T) {
	d := fsm.MustNew(3, 2)
	d.SetStart(2)
	r := New(d, 4, nil)
	if r.Guess() != 2 {
		t.Errorf("guess = %d, want start state", r.Guess())
	}
}

func TestSetGuessRetargetsSpeculation(t *testing.T) {
	// The absorbing machine from the convergence test: guessing the
	// absorbing state hits, guessing anywhere else misses every chunk.
	// SetGuess is how the engine flips between those regimes live.
	d := fsm.MustNew(4, 2)
	d.SetColumn(0, []fsm.State{1, 2, 3, 3})
	d.SetColumn(1, []fsm.State{3, 3, 3, 3})
	rng := rand.New(rand.NewSource(193))
	in := d.RandomInput(rng, 20000)

	r := New(d, 8, nil)
	r.SetGuess(0) // state 0 is never revisited → forced mispredicts
	got, stats := r.Final(in, d.Start())
	if want := d.Run(in, d.Start()); got != want {
		t.Fatalf("wrong guess changed the answer: %d want %d", got, want)
	}
	if stats.HitRate() > 0.2 {
		t.Errorf("hit rate %.2f with a poisoned guess; expected near-total misses", stats.HitRate())
	}
	r.SetGuess(3)
	if r.Guess() != 3 {
		t.Fatalf("Guess() = %d after SetGuess(3)", r.Guess())
	}
	if _, stats := r.Final(in, d.Start()); stats.HitRate() < 0.99 {
		t.Errorf("hit rate %.2f after retargeting to the absorbing state", stats.HitRate())
	}
}

func TestSetMinChunkForcesSequential(t *testing.T) {
	d := fsm.MustNew(4, 2)
	d.SetColumn(0, []fsm.State{1, 2, 3, 3})
	d.SetColumn(1, []fsm.State{3, 3, 3, 3})
	rng := rand.New(rand.NewSource(194))
	in := d.RandomInput(rng, 1000)
	r := New(d, 8, nil)
	r.SetMinChunk(4096) // 1000 B / 8 procs is far below the floor
	if _, stats := r.Final(in, d.Start()); stats.Chunks != 1 {
		t.Errorf("sub-minChunk input split into %d chunks", stats.Chunks)
	}
	r.SetMinChunk(0) // clamps to 1, restoring the fan-out
	if _, stats := r.Final(in, d.Start()); stats.Chunks != 8 {
		t.Errorf("chunks = %d after resetting minChunk, want 8", stats.Chunks)
	}
}

func TestFinalCtxMatchesFinalAndCancels(t *testing.T) {
	rng := rand.New(rand.NewSource(195))
	d := fsm.Random(rng, 12, 3, 0.3)
	in := d.RandomInput(rng, 30000)
	r := New(d, 4, in[:500])

	st, stats, err := r.FinalCtx(context.Background(), in, d.Start())
	if err != nil {
		t.Fatalf("background ctx errored: %v", err)
	}
	if want := d.Run(in, d.Start()); st != want {
		t.Fatalf("FinalCtx = %d, want %d", st, want)
	}
	if stats.Chunks != 4 {
		t.Fatalf("chunks = %d, want 4", stats.Chunks)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.FinalCtx(canceled, in, d.Start()); err != context.Canceled {
		t.Fatalf("canceled ctx: err = %v, want context.Canceled", err)
	}
	// Cancellation reaches the sequential fallback path too.
	if _, _, err := r.FinalCtx(canceled, in[:3], d.Start()); err != context.Canceled {
		t.Fatalf("canceled ctx on tiny input: err = %v, want context.Canceled", err)
	}
}
