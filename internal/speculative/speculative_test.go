package speculative

import (
	"math/rand"
	"testing"

	"dpfsm/internal/fsm"
)

func TestFinalAlwaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(190))
	for iter := 0; iter < 40; iter++ {
		d := fsm.Random(rng, 1+rng.Intn(40), 1+rng.Intn(6), 0.3)
		in := d.RandomInput(rng, 100+rng.Intn(4000))
		warm := d.RandomInput(rng, 200)
		for _, procs := range []int{1, 2, 4, 8} {
			r := New(d, procs, warm)
			got, stats := r.Final(in, d.Start())
			if want := d.Run(in, d.Start()); got != want {
				t.Fatalf("iter %d procs %d: %d want %d", iter, procs, got, want)
			}
			if stats.Misspeculated > stats.Chunks-1 {
				t.Fatalf("impossible stats %+v", stats)
			}
		}
	}
}

func TestSpeculationHitsOnConvergingMachine(t *testing.T) {
	// A machine that funnels into one state makes speculation succeed:
	// exactly the inputs where the technique looks good.
	d := fsm.MustNew(4, 2)
	d.SetColumn(0, []fsm.State{1, 2, 3, 3})
	d.SetColumn(1, []fsm.State{3, 3, 3, 3})
	rng := rand.New(rand.NewSource(191))
	in := d.RandomInput(rng, 20000)
	r := New(d, 8, in[:500])
	if r.Guess() != 3 {
		t.Fatalf("warmup should guess the absorbing state, got %d", r.Guess())
	}
	_, stats := r.Final(in, d.Start())
	if stats.HitRate() < 0.99 {
		t.Errorf("hit rate %.2f on an absorbing machine", stats.HitRate())
	}
}

func TestSpeculationCascadesOnPermutation(t *testing.T) {
	// Permutation machines never converge, so the guess is almost
	// always wrong and every chunk re-runs — the paper's §7 argument.
	rng := rand.New(rand.NewSource(192))
	d := fsm.RandomPermutation(rng, 16, 4, 0.3)
	in := d.RandomInput(rng, 40000)
	r := New(d, 8, in[:500])
	_, stats := r.Final(in, d.Start())
	if stats.HitRate() > 0.5 {
		t.Errorf("hit rate %.2f on a permutation machine; expected mostly misses", stats.HitRate())
	}
	if stats.ReRunBytes == 0 {
		t.Error("expected re-run work")
	}
}

func TestTinyInputFallsBack(t *testing.T) {
	d := fsm.MustNew(2, 2)
	r := New(d, 8, nil)
	_, stats := r.Final([]byte{0, 1, 0}, 0)
	if stats.Chunks != 1 {
		t.Errorf("tiny input should run in one chunk, got %d", stats.Chunks)
	}
}

func TestHitRateEdge(t *testing.T) {
	if (Stats{Chunks: 1}).HitRate() != 1 {
		t.Error("single chunk has trivial hit rate 1")
	}
	s := Stats{Chunks: 5, Misspeculated: 2}
	if s.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
}

func TestEmptyWarmupGuessesStart(t *testing.T) {
	d := fsm.MustNew(3, 2)
	d.SetStart(2)
	r := New(d, 4, nil)
	if r.Guess() != 2 {
		t.Errorf("guess = %d, want start state", r.Guess())
	}
}
