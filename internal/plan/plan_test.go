package plan

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// sampleFile builds a small but fully populated File: 3 symbols, 4
// states, with RC tables when withRC is set. Machine bytes are opaque
// to this package, so any non-empty blob works.
func sampleFile(withRC bool) *File {
	f := &File{
		Strategy:   "range",
		AutoReason: "max range 2 <= 16",
		Machine:    []byte("not-a-real-machine-but-opaque-here"),
		Ranges:     []uint16{2, 1, 2},
	}
	if withRC {
		f.RC = &RC{
			L: [][]byte{{0, 1, 1, 0}, {0, 0, 0, 0}, {1, 0, 1, 0}},
			U: [][]uint16{{0, 3}, {2}, {1, 2}},
			T: [][]byte{
				{0, 1, 0, 0, 1, 0}, // w=2, k=3 → 6 entries
				{0, 0, 0},          // w=1
				{1, 0, 0, 0, 0, 1}, // w=2
			},
		}
	}
	return f
}

func mustMarshal(t *testing.T, f *File) []byte {
	t.Helper()
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	return data
}

func TestRoundTrip(t *testing.T) {
	for _, withRC := range []bool{false, true} {
		f := sampleFile(withRC)
		data := mustMarshal(t, f)
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("withRC=%v: Unmarshal: %v", withRC, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("withRC=%v: round trip mismatch:\n got %+v\nwant %+v", withRC, got, f)
		}
		// The decoder promises fresh copies: mutating the input after
		// decode must not reach into the File.
		data[len(data)/2] ^= 0xff
		if !bytes.Equal(got.Machine, f.Machine) {
			t.Errorf("withRC=%v: decoded File aliases the input buffer", withRC)
		}
	}
}

func TestCorruptedChecksum(t *testing.T) {
	data := mustMarshal(t, sampleFile(true))
	// Flip one bit in every byte position (except inside the magic,
	// which fails earlier by design) and demand a checksum error.
	for i := len(magic); i < len(data); i++ {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x01
		if _, err := Unmarshal(bad); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: got %v, want ErrChecksum", i, err)
		}
	}
}

func TestTruncated(t *testing.T) {
	data := mustMarshal(t, sampleFile(true))
	for i := 0; i < len(data); i++ {
		_, err := Unmarshal(data[:i])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", i, len(data))
		}
		// Prefixes long enough to carry the framing fail the checksum;
		// shorter ones are ErrTruncated. Either way it must be one of
		// the sentinel errors, not a panic or a success.
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("prefix of %d bytes: unexpected error %v", i, err)
		}
	}
}

func TestBadMagic(t *testing.T) {
	data := mustMarshal(t, sampleFile(false))
	data[0] ^= 0xff
	if _, err := Unmarshal(data); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestBadVersion(t *testing.T) {
	data := mustMarshal(t, sampleFile(false))
	// Rewrite the version field and re-stamp the checksum so the
	// version check (not the checksum) rejects it.
	binary.LittleEndian.PutUint16(data[8:], Version+1)
	body := data[:len(data)-8]
	binary.LittleEndian.PutUint64(data[len(data)-8:], checksum(body))
	if _, err := Unmarshal(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	data := mustMarshal(t, sampleFile(false))
	// Splice garbage between payload and checksum, re-stamping the
	// checksum so only the trailing-bytes check can object.
	body := append([]byte(nil), data[:len(data)-8]...)
	body = append(body, 0xaa, 0xbb)
	bad := binary.LittleEndian.AppendUint64(body, checksum(body))
	if _, err := Unmarshal(bad); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("got %v, want trailing-bytes error", err)
	}
}

func TestMarshalRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*File)
	}{
		{"empty strategy", func(f *File) { f.Strategy = "" }},
		{"huge strategy", func(f *File) { f.Strategy = strings.Repeat("x", maxStringLen+1) }},
		{"empty machine", func(f *File) { f.Machine = nil }},
		{"no symbols", func(f *File) { f.Ranges = nil }},
		{"rc count mismatch", func(f *File) { f.RC.L = f.RC.L[:1] }},
		{"ragged L", func(f *File) { f.RC.L[1] = f.RC.L[1][:2] }},
		{"zero width U", func(f *File) { f.RC.U[1] = nil }},
		{"wrong T stride", func(f *File) { f.RC.T[0] = f.RC.T[0][:4] }},
	}
	for _, tc := range cases {
		f := sampleFile(true)
		tc.mut(f)
		if _, err := f.MarshalBinary(); err == nil {
			t.Errorf("%s: MarshalBinary succeeded, want error", tc.name)
		}
	}
}

// FuzzPlanDecode drives Unmarshal with arbitrary bytes. The decoder
// must never panic or over-allocate, and anything it accepts must
// survive a marshal → unmarshal round trip unchanged (decode/encode
// stability).
func FuzzPlanDecode(f *testing.F) {
	for _, withRC := range []bool{false, true} {
		seed, err := sampleFile(withRC).MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
	}
	f.Add([]byte("DPFSMPLN"))
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Unmarshal(data)
		if err != nil {
			return
		}
		re, err := decoded.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted input failed to re-marshal: %v", err)
		}
		again, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-marshaled plan failed to decode: %v", err)
		}
		if !reflect.DeepEqual(decoded, again) {
			t.Fatalf("decode/encode not stable:\n first %+v\nsecond %+v", decoded, again)
		}
	})
}
