// Package plan defines the versioned, checksummed binary container
// for compiled FSM execution plans — the on-disk/on-wire half of the
// compile/execute split. The paper frames strategy selection and
// table construction as an FSM *compiler* step (§6.1): everything in
// a plan is a static function of the machine, so once built it can be
// persisted, shipped between processes, and mmap-style reloaded far
// faster than it can be rebuilt.
//
// This package only knows the wire format: a dumb File of byte/uint16
// tables with framing, a format version, and a trailing CRC-64
// checksum. Semantic validation — do the tables actually describe
// this machine, are all names in range — belongs to internal/core,
// which converts File to and from its live Plan representation
// (core.Plan.MarshalBinary / core.UnmarshalPlan). The split keeps the
// dependency arrow pointing one way (core → plan) and makes the
// decoder independently fuzzable.
//
// Layout (little-endian throughout):
//
//	magic    [8]byte  "DPFSMPLN"
//	version  uint16
//	strategy      uint16 len + bytes   resolved strategy name
//	auto_reason   uint16 len + bytes   why Auto picked it ("" if forced)
//	machine       uint32 len + bytes   fsm.DFA encoding (fsm.WriteTo)
//	k             uint16               symbol count
//	ranges        k × uint16           per-symbol |range(T[a])|
//	has_rc        uint8                0 or 1
//	if has_rc:
//	  n           uint32               state count (len of each L[a])
//	  L           k × n bytes          per-symbol renaming vectors
//	  widths      k × uint16           w[a] = |range(T[a])| = len(U[a])
//	  U           Σ w[a] × uint16      name → state maps
//	  T           Σ k·w[a] bytes       flattened per-symbol name tables
//	has_out  uint8                     0 or 1 (version ≥ 2 only)
//	if has_out:
//	  kind        uint8                1 = moore (λ: Q → Γ), 2 = mealy (λ: Q × Σ → Γ)
//	  num_out     uint32               output alphabet size |Γ|
//	  lambda_len  uint32               λ entry count (n for moore, n·k for mealy)
//	  lambda      lambda_len × uint16  output table
//	checksum uint64                    CRC-64/ECMA of everything above
//
// Version history: version 1 ends after has_rc's section (acceptor
// plans only); version 2 appends the output-table section, turning a
// plan into a full transducer container. The decoder accepts both —
// pre-bump plan blobs keep loading, with no output table — and the
// checksum covers the whole body either way.
//
// Decoding is strict: every length is validated against the remaining
// input before allocation, so truncated or hostile inputs fail with
// ErrTruncated (or a format error) instead of panicking or
// over-allocating. The checksum is verified before any parsing.
package plan

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
)

// Version is the current format version. Decoders reject anything
// newer; every older version remains decodable (VersionAcceptor blobs
// simply carry no output table).
const Version = 2

// VersionAcceptor is the pre-transduction format: identical to
// Version 2 up through the RC section, with no output-table section.
const VersionAcceptor = 1

// magic identifies a serialized plan.
var magic = [8]byte{'D', 'P', 'F', 'S', 'M', 'P', 'L', 'N'}

// Decode failure modes, wrapped with context by Unmarshal.
var (
	ErrBadMagic  = errors.New("plan: bad magic; not a serialized plan")
	ErrVersion   = errors.New("plan: unsupported format version")
	ErrChecksum  = errors.New("plan: checksum mismatch")
	ErrTruncated = errors.New("plan: truncated input")
)

// Wire-sanity bounds. These protect the decoder against absurd
// allocations on corrupt input; the semantic layer (internal/core)
// enforces the real machine invariants.
const (
	maxStringLen  = 1 << 10 // strategy / reason strings
	maxMachineLen = 64 << 20
	maxSymbols    = 256
	maxStates     = 1 << 16
	maxWidth      = 256 // range coalescing requires names ≤ 256
	maxOutputs    = 1 << 16
	maxLambdaLen  = maxStates * maxSymbols
)

// Output-table kinds on the wire (fsm.KindMoore / fsm.KindMealy share
// the values; the acceptor kind 0 is represented by has_out = 0).
const (
	kindMoore = 1
	kindMealy = 2
)

// File is the decoded wire representation of one compiled plan. All
// slices are freshly allocated by Unmarshal and owned by the caller.
type File struct {
	// Strategy is the resolved execution strategy name (never "auto":
	// a plan is the *output* of strategy selection).
	Strategy string
	// AutoReason records why auto-selection picked Strategy, empty
	// when the strategy was forced at compile time.
	AutoReason string
	// Machine is the serialized fsm.DFA (fsm.WriteTo encoding).
	Machine []byte
	// Ranges holds the per-symbol range sizes |range(T[a])|, one per
	// machine symbol. Stored redundantly (derivable from Machine) as a
	// cheap integrity cross-check at load time.
	Ranges []uint16
	// RC carries the range-coalesced tables (Figures 10–11), nil for
	// strategies that do not use them.
	RC *RC
	// Out carries the Moore/Mealy output table for transducer plans,
	// nil for plain acceptors (and for every version-1 blob).
	Out *Outputs
}

// Outputs is the wire form of a transducer's λ table.
type Outputs struct {
	// Kind is 1 for Moore (λ indexed by state) or 2 for Mealy (λ
	// column-major by symbol, matching the transition-table layout).
	Kind uint8
	// NumOutputs is the output alphabet size |Γ|.
	NumOutputs uint32
	// Lambda holds the output table entries; length n (moore) or n·k
	// (mealy), a shape internal/core cross-checks against the machine.
	Lambda []uint16
}

// RC is the wire form of the range-coalesced table set. With k
// symbols, n states and w[a] = len(U[a]):
//
//	L[a] has n entries: L[a][q] = name of δ(q, a) among range(T[a])
//	U[a] has w[a] entries: U[a][name] = state
//	T[a] is the flattened per-symbol name table with stride w[a]:
//	     T[a][int(b)*w[a]+i] = name-of-b reached from name i of a.
type RC struct {
	L [][]byte
	U [][]uint16
	T [][]byte
}

// MarshalBinary encodes f in the versioned format with a trailing
// checksum. It validates the same structural lengths the decoder
// enforces, so a File that marshals is guaranteed to unmarshal.
func (f *File) MarshalBinary() ([]byte, error) {
	if len(f.Strategy) == 0 || len(f.Strategy) > maxStringLen {
		return nil, fmt.Errorf("plan: strategy name length %d out of range [1, %d]", len(f.Strategy), maxStringLen)
	}
	if len(f.AutoReason) > maxStringLen {
		return nil, fmt.Errorf("plan: auto reason length %d exceeds %d", len(f.AutoReason), maxStringLen)
	}
	if len(f.Machine) == 0 || len(f.Machine) > maxMachineLen {
		return nil, fmt.Errorf("plan: machine encoding length %d out of range [1, %d]", len(f.Machine), maxMachineLen)
	}
	k := len(f.Ranges)
	if k == 0 || k > maxSymbols {
		return nil, fmt.Errorf("plan: symbol count %d out of range [1, %d]", k, maxSymbols)
	}
	out := make([]byte, 0, 64+len(f.Machine))
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = appendString16(out, f.Strategy)
	out = appendString16(out, f.AutoReason)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(f.Machine)))
	out = append(out, f.Machine...)
	out = binary.LittleEndian.AppendUint16(out, uint16(k))
	for _, r := range f.Ranges {
		out = binary.LittleEndian.AppendUint16(out, r)
	}
	if f.RC == nil {
		out = append(out, 0)
	} else {
		rc := f.RC
		if len(rc.L) != k || len(rc.U) != k || len(rc.T) != k {
			return nil, fmt.Errorf("plan: RC table count mismatch: L=%d U=%d T=%d, want %d each",
				len(rc.L), len(rc.U), len(rc.T), k)
		}
		n := len(rc.L[0])
		if n == 0 || n > maxStates {
			return nil, fmt.Errorf("plan: state count %d out of range [1, %d]", n, maxStates)
		}
		out = append(out, 1)
		out = binary.LittleEndian.AppendUint32(out, uint32(n))
		for a, l := range rc.L {
			if len(l) != n {
				return nil, fmt.Errorf("plan: L[%d] length %d, want %d", a, len(l), n)
			}
			out = append(out, l...)
		}
		for a, u := range rc.U {
			w := len(u)
			if w == 0 || w > maxWidth {
				return nil, fmt.Errorf("plan: U[%d] width %d out of range [1, %d]", a, w, maxWidth)
			}
			out = binary.LittleEndian.AppendUint16(out, uint16(w))
		}
		for _, u := range rc.U {
			for _, v := range u {
				out = binary.LittleEndian.AppendUint16(out, v)
			}
		}
		for a, t := range rc.T {
			if len(t) != k*len(rc.U[a]) {
				return nil, fmt.Errorf("plan: T[%d] length %d, want %d", a, len(t), k*len(rc.U[a]))
			}
			out = append(out, t...)
		}
	}
	if f.Out == nil {
		out = append(out, 0)
	} else {
		o := f.Out
		if o.Kind != kindMoore && o.Kind != kindMealy {
			return nil, fmt.Errorf("plan: output kind %d is not moore (1) or mealy (2)", o.Kind)
		}
		if o.NumOutputs == 0 || o.NumOutputs > maxOutputs {
			return nil, fmt.Errorf("plan: output alphabet size %d out of range [1, %d]", o.NumOutputs, maxOutputs)
		}
		if len(o.Lambda) == 0 || len(o.Lambda) > maxLambdaLen {
			return nil, fmt.Errorf("plan: output table length %d out of range [1, %d]", len(o.Lambda), maxLambdaLen)
		}
		out = append(out, 1, o.Kind)
		out = binary.LittleEndian.AppendUint32(out, o.NumOutputs)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(o.Lambda)))
		for _, v := range o.Lambda {
			out = binary.LittleEndian.AppendUint16(out, v)
		}
	}
	out = binary.LittleEndian.AppendUint64(out, checksum(out))
	return out, nil
}

// Unmarshal decodes a plan file, verifying the magic, the version,
// and the trailing checksum before touching the payload. The returned
// File owns fresh copies of every table; data may be reused.
func Unmarshal(data []byte) (*File, error) {
	// Fixed framing first: magic + version + checksum must be present
	// before anything else is interpreted.
	if len(data) < len(magic)+2+8 {
		return nil, ErrTruncated
	}
	if [8]byte(data[:8]) != magic {
		return nil, ErrBadMagic
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	if binary.LittleEndian.Uint64(tail) != checksum(body) {
		return nil, ErrChecksum
	}
	c := cursor{buf: body[8:]}
	version := c.u16()
	if version != Version && version != VersionAcceptor {
		if c.err != nil {
			return nil, c.err
		}
		return nil, fmt.Errorf("%w: %d (decoder supports %d through %d)", ErrVersion, version, VersionAcceptor, Version)
	}

	f := &File{}
	f.Strategy = c.str16(maxStringLen)
	if c.err == nil && f.Strategy == "" {
		return nil, errors.New("plan: empty strategy name")
	}
	f.AutoReason = c.str16(maxStringLen)
	mlen := int(c.u32())
	if c.err == nil && (mlen == 0 || mlen > maxMachineLen) {
		return nil, fmt.Errorf("plan: machine encoding length %d out of range [1, %d]", mlen, maxMachineLen)
	}
	f.Machine = c.bytes(mlen)
	k := int(c.u16())
	if c.err == nil && (k == 0 || k > maxSymbols) {
		return nil, fmt.Errorf("plan: symbol count %d out of range [1, %d]", k, maxSymbols)
	}
	if c.err != nil {
		return nil, c.err
	}
	f.Ranges = make([]uint16, k)
	for a := range f.Ranges {
		f.Ranges[a] = c.u16()
	}
	hasRC := c.u8()
	if c.err != nil {
		return nil, c.err
	}
	switch hasRC {
	case 0:
	case 1:
		n := int(c.u32())
		if c.err == nil && (n == 0 || n > maxStates) {
			return nil, fmt.Errorf("plan: state count %d out of range [1, %d]", n, maxStates)
		}
		if c.err != nil {
			return nil, c.err
		}
		rc := &RC{L: make([][]byte, k), U: make([][]uint16, k), T: make([][]byte, k)}
		for a := range rc.L {
			rc.L[a] = c.bytes(n)
		}
		widths := make([]int, k)
		for a := range widths {
			w := int(c.u16())
			if c.err == nil && (w == 0 || w > maxWidth) {
				return nil, fmt.Errorf("plan: U[%d] width %d out of range [1, %d]", a, w, maxWidth)
			}
			widths[a] = w
		}
		if c.err != nil {
			return nil, c.err
		}
		for a, w := range widths {
			u := make([]uint16, w)
			for i := range u {
				u[i] = c.u16()
			}
			rc.U[a] = u
		}
		for a, w := range widths {
			rc.T[a] = c.bytes(k * w)
		}
		if c.err != nil {
			return nil, c.err
		}
		f.RC = rc
	default:
		return nil, fmt.Errorf("plan: bad RC presence flag %d", hasRC)
	}
	// The output-table section exists from version 2 on; a version-1
	// blob ends right after the RC section.
	if version >= 2 {
		hasOut := c.u8()
		if c.err != nil {
			return nil, c.err
		}
		switch hasOut {
		case 0:
		case 1:
			o := &Outputs{Kind: c.u8(), NumOutputs: c.u32()}
			if c.err == nil && o.Kind != kindMoore && o.Kind != kindMealy {
				return nil, fmt.Errorf("plan: output kind %d is not moore (1) or mealy (2)", o.Kind)
			}
			if c.err == nil && (o.NumOutputs == 0 || o.NumOutputs > maxOutputs) {
				return nil, fmt.Errorf("plan: output alphabet size %d out of range [1, %d]", o.NumOutputs, maxOutputs)
			}
			llen := int(c.u32())
			if c.err == nil && (llen == 0 || llen > maxLambdaLen) {
				return nil, fmt.Errorf("plan: output table length %d out of range [1, %d]", llen, maxLambdaLen)
			}
			if c.err != nil {
				return nil, c.err
			}
			// Bounds-check against the remaining buffer before the
			// allocation: llen is attacker-controlled on hostile input.
			if 2*llen > len(c.buf) {
				return nil, ErrTruncated
			}
			o.Lambda = make([]uint16, llen)
			for i := range o.Lambda {
				o.Lambda[i] = c.u16()
			}
			if c.err != nil {
				return nil, c.err
			}
			f.Out = o
		default:
			return nil, fmt.Errorf("plan: bad output presence flag %d", hasOut)
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	if len(c.buf) != 0 {
		return nil, fmt.Errorf("plan: %d trailing bytes after payload", len(c.buf))
	}
	return f, nil
}

// checksum is CRC-64/ECMA over the framed bytes. The goal is
// corruption detection (torn writes, bit rot, truncation), not
// authentication: a plan directory is trusted the way any cache
// directory is.
func checksum(b []byte) uint64 {
	return crc64.Checksum(b, crc64.MakeTable(crc64.ECMA))
}

func appendString16(out []byte, s string) []byte {
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s)))
	return append(out, s...)
}

// cursor is a bounds-checked sequential reader; the first overrun
// latches err and turns every later read into a zero-value no-op, so
// call sites stay linear.
type cursor struct {
	buf []byte
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || n > len(c.buf) {
		c.err = ErrTruncated
		return nil
	}
	b := c.buf[:n]
	c.buf = c.buf[n:]
	return b
}

func (c *cursor) u8() uint8 {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// bytes copies out n bytes. The copy (rather than aliasing data)
// keeps decoded plans independent of the caller's buffer, which may
// be a reused read buffer.
func (c *cursor) bytes(n int) []byte {
	b := c.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// str16 reads a u16-length-prefixed string bounded by max.
func (c *cursor) str16(max int) string {
	n := int(c.u16())
	if c.err == nil && n > max {
		c.err = fmt.Errorf("plan: string length %d exceeds %d", n, max)
		return ""
	}
	b := c.take(n)
	return string(b)
}
