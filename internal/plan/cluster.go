// Cluster wire messages: the chunk-task request and composition-vector
// response exchanged between a distributed-execution coordinator and
// its peers (internal/cluster). They follow the plan container's
// conventions exactly — little-endian framing, a magic + version
// header, length-validated fields, and a trailing CRC-64/ECMA checksum
// verified before any parsing — so the same strict-decoder guarantees
// hold on the network boundary as on the plan-cache one.
//
// ClusterTask layout:
//
//	magic        [8]byte  "DPFSMTSK"
//	version      uint16
//	fingerprint  uint16 len + bytes   plan cache identity the task runs under
//	chunk_index  uint32               position of this chunk in the input
//	total_chunks uint32               fan-out width (cross-checkable by peers)
//	input        uint32 len + bytes   the chunk's raw input bytes
//	checksum     uint64               CRC-64/ECMA of everything above
//
// ClusterVector layout:
//
//	magic        [8]byte  "DPFSMVEC"
//	version      uint16
//	fingerprint  uint16 len + bytes   echoed task fingerprint
//	chunk_index  uint32               echoed task index
//	n            uint32               state count
//	states       n × uint16           the chunk's composition vector
//	checksum     uint64               CRC-64/ECMA of everything above
//
// The response carries one n-entry vector per chunk regardless of
// chunk length — the §3.4 property that makes the MapReduce
// decomposition's wire traffic shrink relative to compute.
package plan

import (
	"encoding/binary"
	"fmt"
)

// ClusterVersion is the current cluster wire-message version.
const ClusterVersion = 1

var (
	taskMagic   = [8]byte{'D', 'P', 'F', 'S', 'M', 'T', 'S', 'K'}
	vectorMagic = [8]byte{'D', 'P', 'F', 'S', 'M', 'V', 'E', 'C'}
)

// Cluster wire bounds. A chunk can be as large as a whole machine
// encoding; a vector has one entry per state.
const (
	maxFingerprintLen = 128
	maxChunkLen       = maxMachineLen
	maxTotalChunks    = 1 << 24
)

// ClusterTask asks a peer to run one input chunk through the plan
// identified by Fingerprint and return its composition vector.
type ClusterTask struct {
	// Fingerprint is the compiled plan's cache identity; the peer must
	// already hold the matching plan (or answer unknown-plan so the
	// coordinator ships it).
	Fingerprint string
	// ChunkIndex is this chunk's position in the input's chunk order;
	// TotalChunks is the job's fan-out width.
	ChunkIndex  uint32
	TotalChunks uint32
	// Input is the chunk's raw bytes.
	Input []byte
}

// MarshalBinary encodes t with the versioned framing and trailing
// checksum, validating the same bounds UnmarshalClusterTask enforces.
func (t *ClusterTask) MarshalBinary() ([]byte, error) {
	if len(t.Fingerprint) == 0 || len(t.Fingerprint) > maxFingerprintLen {
		return nil, fmt.Errorf("plan: fingerprint length %d out of range [1, %d]", len(t.Fingerprint), maxFingerprintLen)
	}
	if len(t.Input) > maxChunkLen {
		return nil, fmt.Errorf("plan: chunk length %d exceeds %d", len(t.Input), maxChunkLen)
	}
	if t.TotalChunks == 0 || t.TotalChunks > maxTotalChunks {
		return nil, fmt.Errorf("plan: total chunk count %d out of range [1, %d]", t.TotalChunks, maxTotalChunks)
	}
	if t.ChunkIndex >= t.TotalChunks {
		return nil, fmt.Errorf("plan: chunk index %d out of range for %d chunks", t.ChunkIndex, t.TotalChunks)
	}
	out := make([]byte, 0, 32+len(t.Fingerprint)+len(t.Input))
	out = append(out, taskMagic[:]...)
	out = binary.LittleEndian.AppendUint16(out, ClusterVersion)
	out = appendString16(out, t.Fingerprint)
	out = binary.LittleEndian.AppendUint32(out, t.ChunkIndex)
	out = binary.LittleEndian.AppendUint32(out, t.TotalChunks)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(t.Input)))
	out = append(out, t.Input...)
	out = binary.LittleEndian.AppendUint64(out, checksum(out))
	return out, nil
}

// UnmarshalClusterTask decodes a chunk-task message, verifying magic,
// version, and checksum before interpreting the payload. The returned
// task owns a fresh copy of the input chunk.
func UnmarshalClusterTask(data []byte) (*ClusterTask, error) {
	body, err := openFrame(data, taskMagic)
	if err != nil {
		return nil, err
	}
	c := cursor{buf: body}
	if err := clusterVersionCheck(&c); err != nil {
		return nil, err
	}
	t := &ClusterTask{}
	t.Fingerprint = c.str16(maxFingerprintLen)
	if c.err == nil && t.Fingerprint == "" {
		return nil, fmt.Errorf("plan: empty task fingerprint")
	}
	t.ChunkIndex = c.u32()
	t.TotalChunks = c.u32()
	if c.err == nil && (t.TotalChunks == 0 || t.TotalChunks > maxTotalChunks) {
		return nil, fmt.Errorf("plan: total chunk count %d out of range [1, %d]", t.TotalChunks, maxTotalChunks)
	}
	if c.err == nil && t.ChunkIndex >= t.TotalChunks {
		return nil, fmt.Errorf("plan: chunk index %d out of range for %d chunks", t.ChunkIndex, t.TotalChunks)
	}
	ilen := int(c.u32())
	if c.err == nil && ilen > maxChunkLen {
		return nil, fmt.Errorf("plan: chunk length %d exceeds %d", ilen, maxChunkLen)
	}
	if c.err != nil {
		return nil, c.err
	}
	t.Input = c.bytes(ilen)
	return t, closeFrame(&c)
}

// ClusterVector is a peer's answer to one ClusterTask: the chunk's
// full composition vector, echoing the task identity so the
// coordinator can verify it reduces the chunk it dispatched.
type ClusterVector struct {
	Fingerprint string
	ChunkIndex  uint32
	// States is the n-entry composition vector: States[q] is the state
	// reached from start state q after consuming the chunk.
	States []uint16
}

// MarshalBinary encodes v with the versioned framing and trailing
// checksum.
func (v *ClusterVector) MarshalBinary() ([]byte, error) {
	if len(v.Fingerprint) == 0 || len(v.Fingerprint) > maxFingerprintLen {
		return nil, fmt.Errorf("plan: fingerprint length %d out of range [1, %d]", len(v.Fingerprint), maxFingerprintLen)
	}
	if len(v.States) == 0 || len(v.States) > maxStates {
		return nil, fmt.Errorf("plan: vector length %d out of range [1, %d]", len(v.States), maxStates)
	}
	out := make([]byte, 0, 32+len(v.Fingerprint)+2*len(v.States))
	out = append(out, vectorMagic[:]...)
	out = binary.LittleEndian.AppendUint16(out, ClusterVersion)
	out = appendString16(out, v.Fingerprint)
	out = binary.LittleEndian.AppendUint32(out, v.ChunkIndex)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(v.States)))
	for _, st := range v.States {
		out = binary.LittleEndian.AppendUint16(out, st)
	}
	out = binary.LittleEndian.AppendUint64(out, checksum(out))
	return out, nil
}

// UnmarshalClusterVector decodes a composition-vector message,
// verifying magic, version, and checksum before interpreting the
// payload, and bounds-checking the vector length against the
// remaining buffer before allocating.
func UnmarshalClusterVector(data []byte) (*ClusterVector, error) {
	body, err := openFrame(data, vectorMagic)
	if err != nil {
		return nil, err
	}
	c := cursor{buf: body}
	if err := clusterVersionCheck(&c); err != nil {
		return nil, err
	}
	v := &ClusterVector{}
	v.Fingerprint = c.str16(maxFingerprintLen)
	if c.err == nil && v.Fingerprint == "" {
		return nil, fmt.Errorf("plan: empty vector fingerprint")
	}
	v.ChunkIndex = c.u32()
	n := int(c.u32())
	if c.err == nil && (n == 0 || n > maxStates) {
		return nil, fmt.Errorf("plan: vector length %d out of range [1, %d]", n, maxStates)
	}
	if c.err != nil {
		return nil, c.err
	}
	// n is attacker-controlled on hostile input: check the remaining
	// buffer before the allocation.
	if 2*n > len(c.buf) {
		return nil, ErrTruncated
	}
	v.States = make([]uint16, n)
	for i := range v.States {
		v.States[i] = c.u16()
	}
	return v, closeFrame(&c)
}

// openFrame validates the fixed framing shared by every cluster
// message — magic, minimum length, trailing checksum — and returns the
// body after the magic (version onward, checksum stripped).
func openFrame(data []byte, want [8]byte) ([]byte, error) {
	if len(data) < 8+2+8 {
		return nil, ErrTruncated
	}
	if [8]byte(data[:8]) != want {
		return nil, ErrBadMagic
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	if binary.LittleEndian.Uint64(tail) != checksum(body) {
		return nil, ErrChecksum
	}
	return body[8:], nil
}

// clusterVersionCheck reads and validates the message version.
func clusterVersionCheck(c *cursor) error {
	version := c.u16()
	if c.err != nil {
		return c.err
	}
	if version != ClusterVersion {
		return fmt.Errorf("%w: %d (cluster decoder supports %d)", ErrVersion, version, ClusterVersion)
	}
	return nil
}

// closeFrame finishes a decode: any latched cursor error wins, then
// trailing garbage is rejected.
func closeFrame(c *cursor) error {
	if c.err != nil {
		return c.err
	}
	if len(c.buf) != 0 {
		return fmt.Errorf("plan: %d trailing bytes after payload", len(c.buf))
	}
	return nil
}
