package plan

import (
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// sampleTransducerFile extends sampleFile with an output-table
// section. The shapes follow the 3-symbol / 4-state sample machine:
// a moore λ has one entry per state, a mealy λ one per (state,
// symbol) pair, column-major by symbol.
func sampleTransducerFile(withRC bool, kind uint8) *File {
	f := sampleFile(withRC)
	o := &Outputs{Kind: kind, NumOutputs: 5}
	switch kind {
	case kindMoore:
		o.Lambda = []uint16{0, 2, 2, 4}
	case kindMealy:
		o.Lambda = []uint16{
			0, 1, 0, 3, // symbol 0
			2, 2, 0, 0, // symbol 1
			0, 0, 4, 4, // symbol 2
		}
	}
	f.Out = o
	return f
}

// asAcceptorV1 rewrites a version-2 blob whose output section is
// absent (has_out = 0) into the byte-exact pre-bump VersionAcceptor
// encoding: the presence flag is dropped, the version field rewound,
// and the checksum re-stamped. This reconstructs the layout old
// writers produced, so the test below is a true backward-compat
// check rather than a same-version round trip.
func asAcceptorV1(t *testing.T, data []byte) []byte {
	t.Helper()
	body := data[:len(data)-8]
	if body[len(body)-1] != 0 {
		t.Fatal("blob carries an output section; cannot rewrite as version 1")
	}
	v1 := append([]byte(nil), body[:len(body)-1]...)
	binary.LittleEndian.PutUint16(v1[8:], VersionAcceptor)
	return binary.LittleEndian.AppendUint64(v1, checksum(v1))
}

func TestTransducerRoundTrip(t *testing.T) {
	for _, withRC := range []bool{false, true} {
		for _, kind := range []uint8{kindMoore, kindMealy} {
			f := sampleTransducerFile(withRC, kind)
			got, err := Unmarshal(mustMarshal(t, f))
			if err != nil {
				t.Fatalf("withRC=%v kind=%d: Unmarshal: %v", withRC, kind, err)
			}
			if !reflect.DeepEqual(got, f) {
				t.Errorf("withRC=%v kind=%d: round trip mismatch:\n got %+v\nwant %+v", withRC, kind, got, f)
			}
		}
	}
}

// TestAcceptorV1StillDecodes is the wire-compat guarantee for the
// version bump: plan blobs written before the output-table section
// existed must keep decoding, and must come back as plain acceptors.
func TestAcceptorV1StillDecodes(t *testing.T) {
	for _, withRC := range []bool{false, true} {
		f := sampleFile(withRC)
		v1 := asAcceptorV1(t, mustMarshal(t, f))
		got, err := Unmarshal(v1)
		if err != nil {
			t.Fatalf("withRC=%v: version-1 blob failed to decode: %v", withRC, err)
		}
		if got.Out != nil {
			t.Fatalf("withRC=%v: version-1 blob decoded with an output table", withRC)
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("withRC=%v: version-1 decode mismatch:\n got %+v\nwant %+v", withRC, got, f)
		}
	}
}

// TestV1RejectsOutputSection: a blob claiming version 1 must end at
// the RC section; output bytes spliced after it are trailing garbage,
// not a decodable λ table.
func TestV1RejectsOutputSection(t *testing.T) {
	data := mustMarshal(t, sampleTransducerFile(false, kindMealy))
	binary.LittleEndian.PutUint16(data[8:], VersionAcceptor)
	body := data[:len(data)-8]
	binary.LittleEndian.PutUint64(data[len(data)-8:], checksum(body))
	if _, err := Unmarshal(data); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("got %v, want trailing-bytes error", err)
	}
}

func TestMarshalRejectsMalformedOutputs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*File)
	}{
		{"bad kind", func(f *File) { f.Out.Kind = 3 }},
		{"zero outputs", func(f *File) { f.Out.NumOutputs = 0 }},
		{"huge outputs", func(f *File) { f.Out.NumOutputs = maxOutputs + 1 }},
		{"empty lambda", func(f *File) { f.Out.Lambda = nil }},
		{"huge lambda", func(f *File) { f.Out.Lambda = make([]uint16, maxLambdaLen+1) }},
	}
	for _, tc := range cases {
		f := sampleTransducerFile(true, kindMealy)
		tc.mut(f)
		if _, err := f.MarshalBinary(); err == nil {
			t.Errorf("%s: MarshalBinary succeeded, want error", tc.name)
		}
	}
}

// TestTransducerCorruptedChecksum: the trailing CRC covers the output
// section too — any single-bit flip inside λ must fail closed.
func TestTransducerCorruptedChecksum(t *testing.T) {
	data := mustMarshal(t, sampleTransducerFile(true, kindMealy))
	for i := len(magic); i < len(data); i++ {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x01
		if _, err := Unmarshal(bad); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: got %v, want ErrChecksum", i, err)
		}
	}
}

// FuzzTransducerPlanDecode is FuzzPlanDecode's sibling seeded with
// output-bearing blobs: the decoder must never panic on mutated λ
// sections, and anything accepted must be marshal/unmarshal stable.
// Version-1 seeds keep the fuzzer exploring the acceptor-compat path.
func FuzzTransducerPlanDecode(f *testing.F) {
	for _, withRC := range []bool{false, true} {
		for _, kind := range []uint8{kindMoore, kindMealy} {
			seed, err := sampleTransducerFile(withRC, kind).MarshalBinary()
			if err != nil {
				f.Fatal(err)
			}
			f.Add(seed)
			// The same blob truncated mid-λ probes the length guards.
			f.Add(seed[:len(seed)-12])
		}
	}
	acceptor, err := sampleFile(true).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(acceptor)
	body := acceptor[:len(acceptor)-8-1] // drop has_out flag → v1 layout
	v1 := append([]byte(nil), body...)
	binary.LittleEndian.PutUint16(v1[8:], VersionAcceptor)
	f.Add(binary.LittleEndian.AppendUint64(v1, checksum(v1)))
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Unmarshal(data)
		if err != nil {
			return
		}
		re, err := decoded.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted input failed to re-marshal: %v", err)
		}
		again, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-marshaled plan failed to decode: %v", err)
		}
		if !reflect.DeepEqual(decoded, again) {
			t.Fatalf("decode/encode not stable:\n first %+v\nsecond %+v", decoded, again)
		}
	})
}
