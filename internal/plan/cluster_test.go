package plan

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

func sampleTask() *ClusterTask {
	return &ClusterTask{
		Fingerprint: "a3f1c9d200000000",
		ChunkIndex:  2,
		TotalChunks: 5,
		Input:       []byte("GET /cgi-bin/x.pl HTTP/1.0"),
	}
}

func sampleVector() *ClusterVector {
	return &ClusterVector{
		Fingerprint: "a3f1c9d200000000",
		ChunkIndex:  2,
		States:      []uint16{3, 0, 7, 7, 1},
	}
}

func TestClusterTaskRoundTrip(t *testing.T) {
	want := sampleTask()
	data, err := want.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalClusterTask(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip drift:\n got %+v\nwant %+v", got, want)
	}
}

func TestClusterTaskEmptyInput(t *testing.T) {
	// A zero-length chunk is legal on the wire (the coordinator never
	// sends one, but the decoder must not conflate empty with invalid).
	task := &ClusterTask{Fingerprint: "fp", ChunkIndex: 0, TotalChunks: 1}
	data, err := task.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalClusterTask(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(got.Input) != 0 {
		t.Fatalf("got %d input bytes, want 0", len(got.Input))
	}
}

func TestClusterVectorRoundTrip(t *testing.T) {
	want := sampleVector()
	data, err := want.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalClusterVector(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip drift:\n got %+v\nwant %+v", got, want)
	}
}

func TestClusterDecodeRejections(t *testing.T) {
	taskBytes := func() []byte {
		d, err := sampleTask().MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	vecBytes := func() []byte {
		d, err := sampleVector().MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cases := []struct {
		name string
		data []byte
		dec  func([]byte) error
	}{
		{"task short", []byte("DPFSMTSK"), func(d []byte) error { _, err := UnmarshalClusterTask(d); return err }},
		{"task wrong magic", vecBytes(), func(d []byte) error { _, err := UnmarshalClusterTask(d); return err }},
		{"vector wrong magic", taskBytes(), func(d []byte) error { _, err := UnmarshalClusterVector(d); return err }},
		{"task flipped bit", flipBit(taskBytes(), 12), func(d []byte) error { _, err := UnmarshalClusterTask(d); return err }},
		{"vector flipped bit", flipBit(vecBytes(), 12), func(d []byte) error { _, err := UnmarshalClusterVector(d); return err }},
		{"task truncated", taskBytes()[:15], func(d []byte) error { _, err := UnmarshalClusterTask(d); return err }},
		{"vector truncated", vecBytes()[:15], func(d []byte) error { _, err := UnmarshalClusterVector(d); return err }},
		{"task trailing bytes", refreame(t, taskBytes(), 1), func(d []byte) error { _, err := UnmarshalClusterTask(d); return err }},
		{"vector trailing bytes", refreame(t, vecBytes(), 1), func(d []byte) error { _, err := UnmarshalClusterVector(d); return err }},
	}
	for _, tc := range cases {
		if err := tc.dec(tc.data); err == nil {
			t.Errorf("%s: decode succeeded, want error", tc.name)
		}
	}
}

// flipBit corrupts one payload byte, leaving the checksum stale.
func flipBit(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0x40
	return out
}

// refreame appends n garbage bytes inside the frame and re-checksums,
// so the decoder's trailing-bytes check (not the checksum) must catch
// the damage.
func refreame(t *testing.T, data []byte, n int) []byte {
	t.Helper()
	body := append([]byte(nil), data[:len(data)-8]...)
	body = append(body, bytes.Repeat([]byte{0xEE}, n)...)
	return binary.LittleEndian.AppendUint64(body, checksum(body))
}

func TestClusterMarshalRejections(t *testing.T) {
	taskCases := []struct {
		name string
		mut  func(*ClusterTask)
	}{
		{"empty fingerprint", func(x *ClusterTask) { x.Fingerprint = "" }},
		{"long fingerprint", func(x *ClusterTask) { x.Fingerprint = string(bytes.Repeat([]byte{'a'}, maxFingerprintLen+1)) }},
		{"zero total chunks", func(x *ClusterTask) { x.TotalChunks = 0 }},
		{"index past total", func(x *ClusterTask) { x.ChunkIndex = x.TotalChunks }},
	}
	for _, tc := range taskCases {
		task := sampleTask()
		tc.mut(task)
		if _, err := task.MarshalBinary(); err == nil {
			t.Errorf("task %s: MarshalBinary succeeded, want error", tc.name)
		}
	}
	vecCases := []struct {
		name string
		mut  func(*ClusterVector)
	}{
		{"empty fingerprint", func(x *ClusterVector) { x.Fingerprint = "" }},
		{"empty vector", func(x *ClusterVector) { x.States = nil }},
		{"oversize vector", func(x *ClusterVector) { x.States = make([]uint16, maxStates+1) }},
	}
	for _, tc := range vecCases {
		vec := sampleVector()
		tc.mut(vec)
		if _, err := vec.MarshalBinary(); err == nil {
			t.Errorf("vector %s: MarshalBinary succeeded, want error", tc.name)
		}
	}
}

// FuzzClusterVectorDecode drives UnmarshalClusterVector with arbitrary
// bytes: the decoder must never panic or over-allocate, and anything
// it accepts must survive a marshal → unmarshal round trip unchanged.
func FuzzClusterVectorDecode(f *testing.F) {
	seed, err := sampleVector().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	one, err := (&ClusterVector{Fingerprint: "f", States: []uint16{0}}).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(one)
	f.Add([]byte("DPFSMVEC"))
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := UnmarshalClusterVector(data)
		if err != nil {
			return
		}
		re, err := decoded.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted input failed to re-marshal: %v", err)
		}
		again, err := UnmarshalClusterVector(re)
		if err != nil {
			t.Fatalf("re-marshaled vector failed to decode: %v", err)
		}
		if !reflect.DeepEqual(decoded, again) {
			t.Fatalf("decode/encode not stable:\n first %+v\nsecond %+v", decoded, again)
		}
	})
}

// FuzzClusterTaskDecode is FuzzClusterVectorDecode's sibling for the
// request side of the protocol.
func FuzzClusterTaskDecode(f *testing.F) {
	seed, err := sampleTask().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte("DPFSMTSK"))
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := UnmarshalClusterTask(data)
		if err != nil {
			return
		}
		re, err := decoded.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted input failed to re-marshal: %v", err)
		}
		again, err := UnmarshalClusterTask(re)
		if err != nil {
			t.Fatalf("re-marshaled task failed to decode: %v", err)
		}
		if !reflect.DeepEqual(decoded, again) {
			t.Fatalf("decode/encode not stable:\n first %+v\nsecond %+v", decoded, again)
		}
	})
}
