package core

// Transduction over the Figure 5 decomposition. A transducer plan
// (CompileTransducer) carries a λ table alongside δ; these runners
// replay it chunk-parallel using the same two-phase structure as
// RunChunked: phase 1 is the unchanged enumerative composition fold,
// which resolves every chunk's true start state, and phase 2 (the
// paper's phase 3) re-runs each chunk scalar from that start emitting
// one output per input byte. Because the emission at position i is a
// pure function of (state before i, symbol at i) — Transducer.OutputAt
// — and the fold delivers exactly those states, the parallel replay is
// exact by construction: every lane (single-core, multicore,
// speculative-after-verification) produces the byte-identical output
// tape the sequential machine would.

import (
	"fmt"
	"sort"
	"sync"

	"dpfsm/internal/fsm"
)

// Span is a maximal run of equal non-OutputNone outputs on the output
// tape: input[Start:End] all emitted Out. Token spans, match spans,
// and field extents all take this shape; gaps (OutputNone) separate
// spans.
type Span struct {
	Start int        `json:"start"`
	End   int        `json:"end"`
	Out   fsm.Output `json:"out"`
}

// errNotTransducer is the shared failure for transduce calls on
// acceptor plans.
func (r *Runner) transducer() (*fsm.Transducer, error) {
	if r.out == nil {
		return nil, fmt.Errorf("core: plan %s is an acceptor (no output table); compile with CompileTransducer", r.fingerprint)
	}
	return r.out, nil
}

// TransduceOutputs runs the transducer over input from start and
// returns the full output tape — exactly one output symbol per input
// byte — together with the final state. Multicore runners fill
// disjoint per-chunk slices of the tape concurrently; the result is
// identical to a sequential replay regardless of chunking.
func (r *Runner) TransduceOutputs(input []byte, start fsm.State) ([]fsm.Output, fsm.State, error) {
	t, err := r.transducer()
	if err != nil {
		return nil, 0, err
	}
	r.noteEntry(len(input))
	tape := make([]fsm.Output, len(input))
	final := r.runChunked(input, start, func(off int, chunk []byte, st fsm.State) fsm.State {
		q := st
		dst := tape[off : off+len(chunk)]
		for i, b := range chunk {
			dst[i] = t.OutputAt(q, b)
			q = r.d.Next(q, b)
		}
		return q
	})
	return tape, final, nil
}

// TransduceSpans runs the transducer over input from start and returns
// the output tape folded into maximal spans of equal non-OutputNone
// outputs, in input order, plus the final state. Chunk-local spans are
// collected concurrently and stitched at chunk boundaries: a span
// ending exactly where the next begins with the same output is one
// span that the chunking split, so the halves are glued back. The
// result is therefore independent of chunk count — the sequential
// tape's spans, exactly.
func (r *Runner) TransduceSpans(input []byte, start fsm.State) ([]Span, fsm.State, error) {
	t, err := r.transducer()
	if err != nil {
		return nil, 0, err
	}
	r.noteEntry(len(input))
	var (
		mu    sync.Mutex
		parts [][]Span
	)
	final := r.runChunked(input, start, func(off int, chunk []byte, st fsm.State) fsm.State {
		spans, q := ScanSpans(t, off, chunk, st)
		if len(spans) > 0 {
			mu.Lock()
			parts = append(parts, spans)
			mu.Unlock()
		}
		return q
	})
	return StitchSpans(parts), final, nil
}

// ScanSpans is the scalar per-chunk replay: it advances the machine
// over chunk from st, folding the emitted outputs into maximal runs on
// the fly (no intermediate tape), and returns the chunk-local spans in
// global coordinates plus the state after the chunk. Exported for
// phase-3 callbacks outside this package (the engine's speculative
// transduce lane replays chunks through it); pair with StitchSpans.
func ScanSpans(t *fsm.Transducer, off int, chunk []byte, st fsm.State) ([]Span, fsm.State) {
	var spans []Span
	d := t.DFA()
	q := st
	cur := fsm.OutputNone
	curStart := 0
	for i, b := range chunk {
		out := t.OutputAt(q, b)
		q = d.Next(q, b)
		if out == cur {
			continue
		}
		if cur != fsm.OutputNone {
			spans = append(spans, Span{Start: off + curStart, End: off + i, Out: cur})
		}
		cur, curStart = out, i
	}
	if cur != fsm.OutputNone {
		spans = append(spans, Span{Start: off + curStart, End: off + len(chunk), Out: cur})
	}
	return spans, q
}

// StitchSpans orders the concurrently collected chunk-local span lists
// and glues runs that a chunk boundary split: the previous span ends
// exactly where the next starts and both carry the same output.
// Within a part spans are already ordered and maximal, so ordering
// parts by their first span's start is enough.
func StitchSpans(parts [][]Span) []Span {
	if len(parts) == 0 {
		return nil
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i][0].Start < parts[j][0].Start })
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]Span, 0, n)
	for _, p := range parts {
		for _, s := range p {
			if last := len(out) - 1; last >= 0 && out[last].End == s.Start && out[last].Out == s.Out {
				out[last].End = s.End
				continue
			}
			out = append(out, s)
		}
	}
	return out
}
