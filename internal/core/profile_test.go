package core

import (
	"math/rand"
	"testing"

	"dpfsm/internal/fsm"
)

func TestProfileBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(250))
	d := fsm.RandomConverging(rng, 40, 4, 5, 0.3)
	in := d.RandomInput(rng, 500)
	p := ProfileInput(d, in)
	if p.Symbols != 500 {
		t.Fatalf("Symbols = %d", p.Symbols)
	}
	if !p.RangeOK {
		t.Fatal("small-range machine should be range-codable")
	}
	if p.FinalActive < 1 || p.FinalActive > p.MaxActive {
		t.Fatalf("active accounting: final %d max %d", p.FinalActive, p.MaxActive)
	}
	// Converging machine with range ≤ 5: both models should be at or
	// near one shuffle per symbol once converged.
	if p.RangePerSymbol() > 1.01 {
		t.Errorf("range shuffles/symbol = %v, want ≈1", p.RangePerSymbol())
	}
	best, winner := p.BestPerSymbol()
	if best > p.ConvPerSymbol()+1e-9 {
		t.Error("best must not exceed conv")
	}
	if winner != Convergence && winner != RangeCoalesced {
		t.Errorf("winner = %v, want a real optimization label", winner)
	}
	// On a range-5 machine the range model should win (≈1 shuffle per
	// symbol from the first input byte) over convergence's wide start.
	if p.RangePerSymbol() < p.ConvPerSymbol() && winner != RangeCoalesced {
		t.Errorf("winner = %v, want range (range %v < conv %v)",
			winner, p.RangePerSymbol(), p.ConvPerSymbol())
	}
}

func TestProfileFinalActiveMatchesTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(251))
	for iter := 0; iter < 20; iter++ {
		d := fsm.Random(rng, 1+rng.Intn(30), 1+rng.Intn(4), 0.3)
		in := d.RandomInput(rng, 100)
		p := ProfileInput(d, in)
		// Distinct final states by brute force.
		distinct := map[fsm.State]bool{}
		for q := 0; q < d.NumStates(); q++ {
			distinct[d.Run(in, fsm.State(q))] = true
		}
		if p.FinalActive != len(distinct) {
			t.Fatalf("FinalActive %d, brute force %d", p.FinalActive, len(distinct))
		}
	}
}

func TestProfilePermutationNeverCheap(t *testing.T) {
	rng := rand.New(rand.NewSource(252))
	d := fsm.RandomPermutation(rng, 64, 4, 0.3)
	in := d.RandomInput(rng, 200)
	p := ProfileInput(d, in)
	// 64 states never converge: 4 blocks × 4 blocks = 16 shuffles/symbol.
	if got := p.ConvPerSymbol(); got < 15.9 {
		t.Errorf("permutation machine conv shuffles/symbol = %v, want 16", got)
	}
	if p.FinalActive != 64 {
		t.Errorf("FinalActive = %d, want 64", p.FinalActive)
	}
}

func TestProfileEmptyInput(t *testing.T) {
	d := fsm.MustNew(4, 2)
	p := ProfileInput(d, nil)
	best, _ := p.BestPerSymbol()
	if p.ConvPerSymbol() != 0 || p.RangePerSymbol() != 0 || best != 0 {
		t.Error("empty input should have zero per-symbol costs")
	}
}

func TestProfileHugeRangeDisablesRange(t *testing.T) {
	rng := rand.New(rand.NewSource(253))
	d := fsm.Random(rng, 400, 3, 0.3)
	if d.MaxRangeSize() <= 256 {
		t.Skip("range unexpectedly small")
	}
	p := ProfileInput(d, d.RandomInput(rng, 50))
	if p.RangeOK || p.RangePerSymbol() != 0 {
		t.Error("range model should be disabled for >256 ranges")
	}
	best, winner := p.BestPerSymbol()
	if best != p.ConvPerSymbol() || winner != Convergence {
		t.Error("best should fall back to conv, labelled Convergence")
	}
}
