package core

import (
	"math/rand"
	"runtime"
	"testing"

	"dpfsm/internal/fsm"
)

// allStrategies are the single-core strategies under differential test.
var allStrategies = []Strategy{Sequential, Base, BaseILP, Convergence, RangeCoalesced, RangeConvergence}

// machines returns a varied set of machines stressing every code path:
// tiny, converging, permutation (adversarial), byte-boundary sizes, and
// >256-state machines for the uint16 path.
func machines(t testing.TB, rng *rand.Rand) []*fsm.DFA {
	t.Helper()
	var ms []*fsm.DFA
	ms = append(ms,
		fsm.Random(rng, 1, 2, 0.5),
		fsm.Random(rng, 4, 3, 0.5),
		fsm.Random(rng, 16, 8, 0.5),
		fsm.Random(rng, 17, 4, 0.5),
		fsm.Random(rng, 255, 4, 0.5),
		fsm.Random(rng, 256, 4, 0.5),
		fsm.RandomConverging(rng, 64, 8, 5, 0.3),
		fsm.RandomConverging(rng, 300, 6, 12, 0.3), // n>256, range≤256: byte names
		fsm.RandomPermutation(rng, 24, 4, 0.5),
		fsm.Random(rng, 400, 3, 0.5), // n>256, big range: uint16 path
	)
	return ms
}

func newRunner(t testing.TB, d *fsm.DFA, s Strategy, opts ...Option) *Runner {
	t.Helper()
	r, err := New(d, append([]Option{WithStrategy(s)}, opts...)...)
	if err != nil {
		t.Fatalf("New(%v): %v", s, err)
	}
	return r
}

func TestFinalMatchesSequentialAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for mi, d := range machines(t, rng) {
		for _, strat := range allStrategies {
			if (strat == RangeCoalesced || strat == RangeConvergence) && d.MaxRangeSize() > 256 {
				continue
			}
			r := newRunner(t, d, strat)
			for trial := 0; trial < 10; trial++ {
				in := d.RandomInput(rng, rng.Intn(200))
				st := fsm.State(rng.Intn(d.NumStates()))
				want := d.Run(in, st)
				if got := r.Final(in, st); got != want {
					t.Fatalf("machine %d strategy %v: Final=%d want %d (len %d)",
						mi, strat, got, want, len(in))
				}
			}
		}
	}
}

func TestCompositionVectorMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for mi, d := range machines(t, rng) {
		if d.NumStates() > 64 {
			continue // brute force cost
		}
		in := d.RandomInput(rng, 150)
		for _, strat := range allStrategies {
			if (strat == RangeCoalesced || strat == RangeConvergence) && d.MaxRangeSize() > 256 {
				continue
			}
			r := newRunner(t, d, strat)
			vec := r.CompositionVector(in)
			if len(vec) != d.NumStates() {
				t.Fatalf("machine %d strategy %v: vector length %d", mi, strat, len(vec))
			}
			for q := 0; q < d.NumStates(); q++ {
				if want := d.Run(in, fsm.State(q)); vec[q] != want {
					t.Fatalf("machine %d strategy %v: vec[%d]=%d want %d", mi, strat, q, vec[q], want)
				}
			}
		}
	}
}

func TestRunPhiMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for mi, d := range machines(t, rng) {
		in := d.RandomInput(rng, 120)
		st := fsm.State(rng.Intn(d.NumStates()))

		type event struct {
			sym byte
			q   fsm.State
		}
		ref := make([]event, len(in))
		d.RunMealy(in, st, func(pos int, sym byte, q fsm.State) {
			ref[pos] = event{sym, q}
		})

		for _, strat := range allStrategies {
			if (strat == RangeCoalesced || strat == RangeConvergence) && d.MaxRangeSize() > 256 {
				continue
			}
			r := newRunner(t, d, strat)
			got := make([]event, len(in))
			seen := make([]bool, len(in))
			final := r.Run(in, st, func(pos int, sym byte, q fsm.State) {
				if pos < 0 || pos >= len(in) || seen[pos] {
					t.Errorf("machine %d strategy %v: bad/duplicate pos %d", mi, strat, pos)
					return
				}
				seen[pos] = true
				got[pos] = event{sym, q}
			})
			if want := d.Run(in, st); final != want {
				t.Fatalf("machine %d strategy %v: final %d want %d", mi, strat, final, want)
			}
			for i := range ref {
				if !seen[i] {
					t.Fatalf("machine %d strategy %v: φ missing pos %d", mi, strat, i)
				}
				if got[i] != ref[i] {
					t.Fatalf("machine %d strategy %v: φ(%d) = %+v want %+v", mi, strat, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestAcceptsMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, d := range machines(t, rng) {
		for _, strat := range allStrategies {
			if (strat == RangeCoalesced || strat == RangeConvergence) && d.MaxRangeSize() > 256 {
				continue
			}
			r := newRunner(t, d, strat)
			for trial := 0; trial < 5; trial++ {
				in := d.RandomInput(rng, rng.Intn(100))
				if r.Accepts(in) != d.Accepts(in) {
					t.Fatalf("strategy %v: Accepts mismatch", strat)
				}
			}
		}
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	d := fsm.RandomConverging(rng, 40, 4, 6, 0.3)
	for _, strat := range allStrategies {
		r := newRunner(t, d, strat)
		for _, n := range []int{0, 1, 2, 3} {
			in := d.RandomInput(rng, n)
			st := fsm.State(rng.Intn(40))
			if got, want := r.Final(in, st), d.Run(in, st); got != want {
				t.Fatalf("strategy %v len %d: %d want %d", strat, n, got, want)
			}
			calls := 0
			r.Run(in, st, func(int, byte, fsm.State) { calls++ })
			if calls != n {
				t.Fatalf("strategy %v len %d: %d φ calls", strat, n, calls)
			}
		}
	}
}

func TestAutoSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	small := fsm.RandomConverging(rng, 100, 4, 8, 0.3) // range ≤ 16 → RangeCoalesced
	r, err := New(small)
	if err != nil {
		t.Fatal(err)
	}
	if r.Strategy() != RangeCoalesced {
		t.Errorf("auto picked %v for range-%d machine, want range", r.Strategy(), small.MaxRangeSize())
	}

	wide := fsm.Random(rng, 100, 4, 0.3) // random: range ~ n(1-1/e) ≫ 16
	if wide.MaxRangeSize() <= 16 {
		t.Skip("unexpectedly small range in random machine")
	}
	r2, err := New(wide)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Strategy() != Convergence {
		t.Errorf("auto picked %v for wide-range machine, want convergence", r2.Strategy())
	}
}

func TestRangeCoalescedRejectsHugeRange(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	d := fsm.Random(rng, 400, 4, 0.3) // range > 256 with overwhelming probability
	if d.MaxRangeSize() <= 256 {
		t.Skip("range unexpectedly small")
	}
	if _, err := New(d, WithStrategy(RangeCoalesced)); err == nil {
		t.Error("expected error for range > 256")
	}
}

func TestNewValidatesMachine(t *testing.T) {
	d := fsm.MustNew(2, 2)
	// Corrupt via the only exported mutators is impossible; instead use
	// a machine wrapper: simplest corruption is a bad start via Clone
	// internals — not reachable. So just confirm a valid machine works.
	if _, err := New(d); err != nil {
		t.Fatalf("New on valid machine: %v", err)
	}
}

func TestStrategyString(t *testing.T) {
	want := map[Strategy]string{
		Auto: "auto", Sequential: "sequential", Base: "base",
		BaseILP: "base-ilp", Convergence: "convergence", RangeCoalesced: "range",
		RangeConvergence: "range+conv",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy should still render")
	}
}

func TestWithProcsZeroMeansNumCPU(t *testing.T) {
	d := fsm.MustNew(2, 2)
	r, err := New(d, WithProcs(0))
	if err != nil {
		t.Fatal(err)
	}
	if r.Procs() != runtime.NumCPU() {
		t.Errorf("Procs = %d, want NumCPU %d", r.Procs(), runtime.NumCPU())
	}
}

func TestRCEntryCountMatchesDFAAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	d := fsm.RandomConverging(rng, 60, 6, 10, 0.3)
	r := newRunner(t, d, RangeCoalesced)
	if got, want := r.rc.EntryCount(), d.CoalescedEntryCount(); got != want {
		t.Errorf("rc entries %d, DFA accounting %d", got, want)
	}
}

func TestConvCheckEveryExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	d := fsm.RandomConverging(rng, 80, 4, 6, 0.3)
	in := d.RandomInput(rng, 300)
	st := fsm.State(3)
	want := d.Run(in, st)
	for _, k := range []int{1, 2, 7, 1000} {
		r := newRunner(t, d, Convergence, WithConvCheckEvery(k))
		if got := r.Final(in, st); got != want {
			t.Fatalf("convEvery=%d: %d want %d", k, got, want)
		}
	}
}

func TestMachineAccessor(t *testing.T) {
	d := fsm.MustNew(3, 2)
	r, _ := New(d)
	if r.Machine() != d {
		t.Error("Machine() should return the underlying DFA")
	}
}
