package core

import (
	"dpfsm/internal/fsm"
)

// Pooled per-run scratch. The convergence and range-coalescing loops
// need identity-initialized working vectors (Acc and S, or the name
// vector C) on every run; for a single multi-megabyte input that
// allocation is noise, but the engine's batch workload — millions of
// small inputs over a shared Runner — would pay two n-wide
// allocations per job. Each Runner owns a sync.Pool of scratch
// buffers: a worker goroutine that stays on one P effectively reuses
// the same buffers job after job, and the pool handles the multicore
// phase-1 goroutines hitting it concurrently.
//
// Only the non-escaping entry points (Final, Accepts, Run, and the
// composition-vector paths whose outputs are copied into fresh
// slices) draw from the pool; buffers are returned only after every
// read of the run's result, never while a view of them is still live.
type scratch struct {
	accB, sB   []byte      // convergence byte path (n ≤ 256)
	acc16, s16 []fsm.State // convergence uint16 path

	// Name-domain vectors for the range-coalesced strategies. Names
	// always fit a byte (New enforces max range ≤ 256), so fixed
	// arrays avoid sizing logic entirely.
	nameAcc, nameC [256]byte
}

// byteVecs returns the identity-filled (Acc, S) pair for an n-state
// byte-encoded run.
func (sc *scratch) byteVecs(n int) (acc, s []byte) {
	if cap(sc.accB) < n {
		sc.accB = make([]byte, n)
		sc.sB = make([]byte, n)
	}
	acc, s = sc.accB[:n], sc.sB[:n]
	for i := range acc {
		acc[i] = byte(i)
		s[i] = byte(i)
	}
	return acc, s
}

// stateVecs is byteVecs for machines with more than 256 states.
func (sc *scratch) stateVecs(n int) (acc, s []fsm.State) {
	if cap(sc.acc16) < n {
		sc.acc16 = make([]fsm.State, n)
		sc.s16 = make([]fsm.State, n)
	}
	acc, s = sc.acc16[:n], sc.s16[:n]
	for i := range acc {
		acc[i] = fsm.State(i)
		s[i] = fsm.State(i)
	}
	return acc, s
}

// names returns the identity-filled name vector of width w.
func (sc *scratch) names(w int) []byte {
	c := sc.nameC[:w]
	for i := range c {
		c[i] = byte(i)
	}
	return c
}

// namePair returns identity-filled (Acc, C) name vectors of width w
// for the RangeConvergence loop.
func (sc *scratch) namePair(w int) (acc, c []byte) {
	acc, c = sc.nameAcc[:w], sc.nameC[:w]
	for i := range acc {
		acc[i] = byte(i)
		c[i] = byte(i)
	}
	return acc, c
}

// getScratch takes a scratch from the runner's pool.
func (r *Runner) getScratch() *scratch {
	if sc, ok := r.scratchPool.Get().(*scratch); ok {
		return sc
	}
	return new(scratch)
}

// putScratch returns sc to the pool. The caller must not retain any
// view of sc's buffers.
func (r *Runner) putScratch(sc *scratch) {
	r.scratchPool.Put(sc)
}
