package core

import (
	"math/rand"
	"testing"

	"dpfsm/internal/fsm"
)

// naiveFirstAccepting is the brute-force oracle.
func naiveFirstAccepting(d *fsm.DFA, input []byte, start fsm.State) int {
	q := start
	for i, b := range input {
		q = d.Next(q, b)
		if d.Accepting(q) {
			return i
		}
	}
	return -1
}

func TestFirstAcceptingMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for iter := 0; iter < 30; iter++ {
		d := fsm.RandomConverging(rng, 2+rng.Intn(40), 4, 5, 0.15)
		in := d.RandomInput(rng, 2000)
		st := fsm.State(rng.Intn(d.NumStates()))
		want := naiveFirstAccepting(d, in, st)
		for _, procs := range []int{1, 2, 5} {
			r := newRunner(t, d, Convergence, WithProcs(procs), WithMinChunk(64))
			if got := r.FirstAccepting(in, st); got != want {
				t.Fatalf("iter %d procs %d: %d want %d", iter, procs, got, want)
			}
		}
	}
}

func TestFirstAcceptingNoMatch(t *testing.T) {
	d := fsm.MustNew(2, 2) // nothing accepts
	r := newRunner(t, d, Convergence, WithProcs(4), WithMinChunk(8))
	in := make([]byte, 1000)
	if got := r.FirstAccepting(in, 0); got != -1 {
		t.Fatalf("got %d, want -1", got)
	}
}

func TestFirstAcceptingStickyMachine(t *testing.T) {
	// Sticky accept after seeing symbol 1: first accept = first 1.
	d := fsm.MustNew(2, 2)
	d.SetColumn(0, []fsm.State{0, 1})
	d.SetColumn(1, []fsm.State{1, 1})
	d.SetAccepting(1, true)

	in := make([]byte, 5000)
	in[3333] = 1
	for _, procs := range []int{1, 4} {
		r := newRunner(t, d, Convergence, WithProcs(procs), WithMinChunk(128))
		if got := r.FirstAccepting(in, 0); got != 3333 {
			t.Fatalf("procs %d: got %d, want 3333", procs, got)
		}
	}
}

func TestFirstAcceptingEmptyInput(t *testing.T) {
	d := fsm.MustNew(1, 2)
	d.SetAccepting(0, true)
	r := newRunner(t, d, Convergence)
	if got := r.FirstAccepting(nil, 0); got != -1 {
		t.Fatalf("no symbols consumed → -1, got %d", got)
	}
}
