package core

import (
	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
)

// Base enumerative algorithm (Figure 3) and its ILP-unrolled variant
// (Figure 4). These carry the full n-wide state vector on every symbol;
// they exist as the unoptimized reference point the convergence and
// range-coalescing strategies are measured against, and as the
// fallback for machines whose structure defeats both optimizations
// (e.g. permutation transition functions).

// noteBase flushes telemetry for an unoptimized enumerative pass:
// every one of the gathers moved the full n-wide vector through an
// n-entry table, so the §4.2 model charges ⌈n/W⌉² shuffles each, and
// the active width never shrinks.
func (r *Runner) noteBase(rs *runStats, gathers int) {
	if r.tel == nil && r.aux == nil && rs == nil {
		return
	}
	nb := int64(r.nBlocks)
	r.noteSingle(rs, int64(gathers), int64(gathers)*nb*nb, 0, 0, r.n, r.n)
}

// baseVecBytes runs Figure 3 over byte-encoded states (n ≤ 256) and
// returns the composition vector.
func (r *Runner) baseVecBytes(input []byte, rs *runStats) []byte {
	s := gather.Identity[byte](r.n)
	for _, a := range input {
		r.gatherB(s, s, r.colsB[a])
	}
	r.noteBase(rs, len(input))
	return s
}

// baseVec16 is Figure 3 over uint16 states (n > 256), using the scalar
// gather: the paper's byte shuffle cannot encode these states, which is
// exactly why range coalescing's byte renaming matters (§5.3).
func (r *Runner) baseVec16(input []byte, rs *runStats) []fsm.State {
	s := gather.Identity[fsm.State](r.n)
	for _, a := range input {
		gather.Into(s, s, r.cols16[a])
	}
	r.noteBase(rs, len(input))
	return s
}

// baseILPVecBytes is Figure 4: the loop is unrolled 3× and rewritten
// with the associativity of gather so that two gathers per round have
// no dependence on each other — S·T[a] alongside T[b]·T[c] — exposing
// instruction-level parallelism.
func (r *Runner) baseILPVecBytes(input []byte, rs *runStats) []byte {
	s := gather.Identity[byte](r.n)
	tbc := make([]byte, r.n)
	i := 0
	for ; i+3 <= len(input); i += 3 {
		a, b, c := input[i], input[i+1], input[i+2]
		// Independent pair: Sa = S ⊗ T[a] and Tbc = T[b] ⊗ T[c].
		r.gatherB(s, s, r.colsB[a])
		r.gatherB(tbc, r.colsB[b], r.colsB[c])
		// S = Sa ⊗ Tbc.
		r.gatherB(s, s, tbc)
	}
	for ; i < len(input); i++ {
		r.gatherB(s, s, r.colsB[input[i]])
	}
	// Each unrolled round issues 3 gathers for 3 symbols, and the tail
	// one per symbol, so the gather count equals the input length.
	r.noteBase(rs, len(input))
	return s
}

// baseILPVec16 is Figure 4 over uint16 states.
func (r *Runner) baseILPVec16(input []byte, rs *runStats) []fsm.State {
	s := gather.Identity[fsm.State](r.n)
	tbc := make([]fsm.State, r.n)
	i := 0
	for ; i+3 <= len(input); i += 3 {
		a, b, c := input[i], input[i+1], input[i+2]
		gather.Into(s, s, r.cols16[a])
		gather.Into(tbc, r.cols16[b], r.cols16[c])
		gather.Into(s, s, tbc)
	}
	for ; i < len(input); i++ {
		gather.Into(s, s, r.cols16[input[i]])
	}
	r.noteBase(rs, len(input))
	return s
}

// baseRunBytes is Figure 3 with the φ callback: the actual FSM state is
// S[st] at every step.
func (r *Runner) baseRunBytes(input []byte, off int, start fsm.State, phi fsm.Phi) fsm.State {
	s := gather.Identity[byte](r.n)
	for i, a := range input {
		r.gatherB(s, s, r.colsB[a])
		phi(off+i, a, fsm.State(s[start]))
	}
	r.noteBase(nil, len(input))
	return fsm.State(s[start])
}

func (r *Runner) baseRun16(input []byte, off int, start fsm.State, phi fsm.Phi) fsm.State {
	s := gather.Identity[fsm.State](r.n)
	for i, a := range input {
		gather.Into(s, s, r.cols16[a])
		phi(off+i, a, s[start])
	}
	r.noteBase(nil, len(input))
	if len(input) == 0 {
		return start
	}
	return s[start]
}
