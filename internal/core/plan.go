package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
)

// Plan is the compile-time half of the compile/execute split: every
// strategy-dependent precomputation that is a static function of the
// machine — the resolved strategy (with the Auto decision's reason),
// per-symbol range sizes, byte/state transition columns, the
// range-coalesced table set, and the shuffle-cost block tables. The
// paper frames exactly this work as an FSM *compiler* step (§6.1);
// isolating it makes the artifact shareable (every pooled Runner for a
// machine references one Plan), cacheable (internal/engine keys a
// cache by Fingerprint), and serializable (MarshalBinary /
// UnmarshalPlan, via internal/plan).
//
// A Plan is immutable after CompilePlan and safe for any number of
// concurrent Runners. It carries nothing mutable or environmental: no
// procs, no telemetry, no scratch — those live on Runner, which is why
// a plan fingerprint does not include them.
type Plan struct {
	d        *fsm.DFA
	n        int
	strategy Strategy
	// reason records why Auto picked strategy; empty when the strategy
	// was forced by WithStrategy.
	reason   string
	maxRange int

	ranges []int // per-symbol |range(T[a])|
	// rangeBlocks[a] = ⌈ranges[a]/gather.Width⌉, precomputed so the
	// telemetry reconstruction pass over range-coalesced inputs is a
	// table-lookup sum instead of per-symbol arithmetic.
	rangeBlocks []int64
	// nBlocks is ⌈n/gather.Width⌉, the per-gather table block count of
	// the §4.2 shuffle cost model (telemetry accounting).
	nBlocks int

	// Byte-encoded transition columns; nil when n > 256.
	colsB [][]byte
	// State-typed columns (alias the machine's storage).
	cols16 [][]fsm.State

	rc *rcTables // range-coalesced tables; nil unless strategy needs them

	// out is the Moore/Mealy output table for transducer plans, nil
	// for plain acceptors. Like the transition columns it aliases the
	// caller's machine (out.DFA() == d) and is immutable once compiled.
	out *fsm.Transducer

	// fingerprint = hex(sha256(machine encoding ‖ output-table encoding
	// (transducers only) ‖ strategy name)[:16]).
	fingerprint string
}

// CompilePlan validates d and builds the compiled artifact for the
// requested (or Auto-selected) strategy. The machine must not be
// mutated afterwards; the plan aliases its transition storage.
func CompilePlan(d *fsm.DFA, opts ...Option) (*Plan, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return compile(d, cfg.strategy)
}

// resolveStrategy applies the Auto decision rule (§6.1) to a machine
// whose maximum transition range is maxRange, returning the resolved
// strategy and the reason. Forced strategies pass through with an
// empty reason.
func resolveStrategy(s Strategy, maxRange int) (Strategy, string) {
	if s != Auto {
		return s, ""
	}
	if maxRange <= gather.Width {
		return RangeCoalesced,
			fmt.Sprintf("max range %d ≤ shuffle width %d: one shuffle per symbol (§5.3)", maxRange, gather.Width)
	}
	return Convergence,
		fmt.Sprintf("max range %d > shuffle width %d: rely on convergence (§5.2)", maxRange, gather.Width)
}

// PlanKey computes the fingerprint CompilePlan would assign to d under
// opts — the cache key — without building any tables: one range scan
// to resolve Auto plus one hash over the machine encoding. Plan caches
// use it to test membership before paying for compilation.
func PlanKey(d *fsm.DFA, opts ...Option) (string, error) {
	if err := d.Validate(); err != nil {
		return "", err
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	maxRange := 0
	for _, v := range d.RangeSizes() {
		if v > maxRange {
			maxRange = v
		}
	}
	s, _ := resolveStrategy(cfg.strategy, maxRange)
	return fingerprint(d, nil, s), nil
}

// CompileTransducer compiles an output-bearing machine: the same plan
// CompilePlan builds for t's DFA, carrying t's λ table so transducing
// runners (Runner.TransduceOutputs / TransduceSpans) can replay
// outputs. The fingerprint covers λ — two transducers over the same δ
// with different output tables get distinct plan identities.
func CompileTransducer(t *fsm.Transducer, opts ...Option) (*Plan, error) {
	if t == nil {
		return nil, fmt.Errorf("core: nil transducer")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	p, err := compile(t.DFA(), cfg.strategy)
	if err != nil {
		return nil, err
	}
	p.out = t
	p.fingerprint = fingerprint(p.d, t, p.strategy)
	return p, nil
}

// TransducerPlanKey is PlanKey for transducer plans: the fingerprint
// CompileTransducer would assign, without building tables.
func TransducerPlanKey(t *fsm.Transducer, opts ...Option) (string, error) {
	if t == nil {
		return "", fmt.Errorf("core: nil transducer")
	}
	if err := t.Validate(); err != nil {
		return "", err
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	d := t.DFA()
	maxRange := 0
	for _, v := range d.RangeSizes() {
		if v > maxRange {
			maxRange = v
		}
	}
	s, _ := resolveStrategy(cfg.strategy, maxRange)
	return fingerprint(d, t, s), nil
}

// compile is CompilePlan after validation and option folding; it is
// the single constructor every path (New, CompilePlan, UnmarshalPlan's
// cross-check) funnels through.
func compile(d *fsm.DFA, strategy Strategy) (*Plan, error) {
	p := &Plan{
		d:        d,
		n:        d.NumStates(),
		strategy: strategy,
	}
	p.ranges = d.RangeSizes()
	for _, v := range p.ranges {
		if v > p.maxRange {
			p.maxRange = v
		}
	}
	p.strategy, p.reason = resolveStrategy(p.strategy, p.maxRange)

	p.cols16 = make([][]fsm.State, d.NumSymbols())
	for a := 0; a < d.NumSymbols(); a++ {
		p.cols16[a] = d.Column(byte(a))
	}
	if p.n <= 256 {
		p.colsB = make([][]byte, d.NumSymbols())
		for a := 0; a < d.NumSymbols(); a++ {
			col := p.cols16[a]
			b := make([]byte, p.n)
			for q, s := range col {
				b[q] = byte(s)
			}
			p.colsB[a] = b
		}
	}

	if p.strategy == RangeCoalesced || p.strategy == RangeConvergence {
		if p.maxRange > 256 {
			return nil, fmt.Errorf("core: range coalescing needs max range ≤ 256, machine has %d (use Convergence)", p.maxRange)
		}
		p.rc = buildRCTables(d, p.ranges)
	}

	p.nBlocks = (p.n + gather.Width - 1) / gather.Width
	// Accounting reconstruction (noteRCPlain) runs for traced runs even
	// without a telemetry sink, so the block table is built always: 256
	// entries once per Plan.
	p.rangeBlocks = make([]int64, len(p.ranges))
	for a, v := range p.ranges {
		p.rangeBlocks[a] = int64((v + gather.Width - 1) / gather.Width)
	}
	p.fingerprint = fingerprint(d, nil, p.strategy)
	return p, nil
}

// fingerprint derives the cache identity of a compiled machine:
// sha256 over the machine's canonical binary encoding, the output
// table's encoding when t is non-nil (transducer plans), and the
// resolved strategy name, truncated to 128 bits and hex-encoded.
// Runner-level knobs (procs, convergence cadence, SIMD emulation,
// telemetry) are deliberately excluded — plans are invariant under
// them, which is what lets a single-core and a multicore runner pair
// share one cache entry. Acceptor fingerprints are unchanged from
// before transduction existed, so persisted plan directories keyed by
// the old scheme stay valid.
func fingerprint(d *fsm.DFA, t *fsm.Transducer, s Strategy) string {
	h := sha256.New()
	// DFA.WriteTo into a hash never fails.
	d.WriteTo(h) //nolint:errcheck
	if t != nil {
		h.Write(t.AppendEncoding(nil))
	}
	h.Write([]byte(s.String()))
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// Strategy reports the resolved single-core strategy (never Auto).
func (p *Plan) Strategy() Strategy { return p.strategy }

// Machine returns the underlying DFA. It must not be mutated.
func (p *Plan) Machine() *fsm.DFA { return p.d }

// Fingerprint identifies this compiled machine: equal fingerprints
// mean the same machine encoding compiled with the same strategy.
func (p *Plan) Fingerprint() string { return p.fingerprint }

// AutoReason explains the Auto strategy decision; empty when the
// strategy was forced at compile time.
func (p *Plan) AutoReason() string { return p.reason }

// Outputs returns the plan's output table (nil for acceptor plans).
func (p *Plan) Outputs() *fsm.Transducer { return p.out }

// Kind classifies the plan's machine: acceptor, moore, or mealy.
func (p *Plan) Kind() fsm.Kind {
	if p.out == nil {
		return fsm.KindAcceptor
	}
	return p.out.Kind()
}

// MaxRange reports the machine's maximum per-symbol transition range,
// the quantity the Auto decision pivots on.
func (p *Plan) MaxRange() int { return p.maxRange }

// States reports the machine's state count — together with MaxRange,
// the compile-time half of the adaptive selector's inputs (the run-time
// half is the machine's observed perf profile).
func (p *Plan) States() int { return p.n }

// TableBytes reports the approximate size of the strategy-dependent
// tables this plan precomputed — what a cache entry costs to keep and
// what a cache miss costs to rebuild.
func (p *Plan) TableBytes() int {
	total := 0
	for _, c := range p.colsB {
		total += len(c)
	}
	if p.out != nil {
		total += p.out.TableBytes()
	}
	if p.rc != nil {
		total += p.rc.EntryCount() // t tables (bytes)
		for _, l := range p.rc.l {
			total += len(l)
		}
		for _, u := range p.rc.u {
			total += 2 * len(u)
		}
	}
	return total
}

// equivalent reports whether two plans describe the same compiled
// artifact, table for table. Used by tests and by serialization
// round-trip checks; fingerprint equality is the fast proxy.
func (p *Plan) equivalent(q *Plan) bool {
	if p.fingerprint != q.fingerprint || p.strategy != q.strategy || p.n != q.n {
		return false
	}
	if len(p.ranges) != len(q.ranges) {
		return false
	}
	for a := range p.ranges {
		if p.ranges[a] != q.ranges[a] {
			return false
		}
	}
	if (p.rc == nil) != (q.rc == nil) || (p.out == nil) != (q.out == nil) {
		return false
	}
	if p.out != nil {
		if p.out.Kind() != q.out.Kind() || p.out.NumOutputs() != q.out.NumOutputs() {
			return false
		}
		pl, ql := p.out.Lambda(), q.out.Lambda()
		if len(pl) != len(ql) {
			return false
		}
		for i := range pl {
			if pl[i] != ql[i] {
				return false
			}
		}
	}
	if p.rc != nil {
		for a := range p.rc.l {
			if !bytes.Equal(p.rc.l[a], q.rc.l[a]) || !bytes.Equal(p.rc.tf[a], q.rc.tf[a]) {
				return false
			}
			if len(p.rc.u[a]) != len(q.rc.u[a]) {
				return false
			}
			for i := range p.rc.u[a] {
				if p.rc.u[a][i] != q.rc.u[a][i] {
					return false
				}
			}
		}
	}
	return true
}
