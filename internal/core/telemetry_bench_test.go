package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dpfsm/internal/fsm"
	"dpfsm/internal/telemetry"
)

// BenchmarkTelemetryOverhead holds the tentpole's zero-cost promise to
// account: the disabled rows must track the pre-telemetry hot loops
// (the counters live in stack locals and flush once per run), and the
// enabled rows bound what attaching a sink costs.
func BenchmarkTelemetryOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	for _, bc := range []struct {
		name   string
		states int
		strat  Strategy
	}{
		{"conv-40", 40, Convergence},
		{"conv-300", 300, Convergence},
		{"range-300", 300, RangeCoalesced},
	} {
		d := fsm.RandomConverging(rng, bc.states, 8, 6, 0.2)
		input := d.RandomInput(rng, 1<<20)
		for _, enabled := range []bool{false, true} {
			opts := []Option{WithStrategy(bc.strat), WithProcs(1)}
			if enabled {
				opts = append(opts, WithTelemetry(new(telemetry.Metrics)))
			}
			r, err := New(d, opts...)
			if err != nil {
				b.Fatal(err)
			}
			label := "disabled"
			if enabled {
				label = "enabled"
			}
			b.Run(fmt.Sprintf("%s/%s", bc.name, label), func(b *testing.B) {
				b.SetBytes(int64(len(input)))
				for i := 0; i < b.N; i++ {
					benchSink = r.Final(input, d.Start())
				}
			})
		}
	}
}

var benchSink fsm.State
