package core

import (
	"math/rand"
	"testing"

	"dpfsm/internal/fsm"
)

// randomTransducer derives a deterministic λ over d: Mealy machines
// get λ(q, a) = (q + a) mod γ, Moore machines λ(q) = q mod γ, with a
// γ chosen small so OutputNone gaps actually occur.
func randomTransducer(t testing.TB, d *fsm.DFA, kind fsm.Kind, gamma int) *fsm.Transducer {
	t.Helper()
	var (
		tr  *fsm.Transducer
		err error
	)
	switch kind {
	case fsm.KindMoore:
		tr, err = fsm.NewMoore(d, gamma)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < d.NumStates(); q++ {
			tr.SetMooreOutput(fsm.State(q), fsm.Output(q%gamma))
		}
	case fsm.KindMealy:
		tr, err = fsm.NewMealy(d, gamma)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < d.NumSymbols(); a++ {
			for q := 0; q < d.NumStates(); q++ {
				tr.SetMealyOutput(fsm.State(q), byte(a), fsm.Output((q+a)%gamma))
			}
		}
	default:
		t.Fatalf("bad kind %v", kind)
	}
	return tr
}

// oracleTape is the scalar reference: the sequential one-state walk
// emitting through OutputAt, sharing no code with the runners.
func oracleTape(tr *fsm.Transducer, input []byte, start fsm.State) ([]fsm.Output, fsm.State) {
	d := tr.DFA()
	tape := make([]fsm.Output, len(input))
	q := start
	for i, b := range input {
		tape[i] = tr.OutputAt(q, b)
		q = d.Next(q, b)
	}
	return tape, q
}

// oracleSpans folds a tape into maximal non-OutputNone runs.
func oracleSpans(tape []fsm.Output) []Span {
	var spans []Span
	for i := 0; i < len(tape); {
		if tape[i] == fsm.OutputNone {
			i++
			continue
		}
		j := i + 1
		for j < len(tape) && tape[j] == tape[i] {
			j++
		}
		spans = append(spans, Span{Start: i, End: j, Out: tape[i]})
		i = j
	}
	return spans
}

func newTransducerRunner(t testing.TB, tr *fsm.Transducer, s Strategy, opts ...Option) *Runner {
	t.Helper()
	p, err := CompileTransducer(tr, WithStrategy(s))
	if err != nil {
		t.Fatalf("CompileTransducer(%v): %v", s, err)
	}
	r, err := NewFromPlan(p, opts...)
	if err != nil {
		t.Fatalf("NewFromPlan: %v", err)
	}
	return r
}

func TestTransduceMatchesOracleAllLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for mi, d := range machines(t, rng) {
		for _, kind := range []fsm.Kind{fsm.KindMoore, fsm.KindMealy} {
			tr := randomTransducer(t, d, kind, 3)
			for _, strat := range []Strategy{Base, Convergence, RangeCoalesced} {
				if (strat == RangeCoalesced) && d.MaxRangeSize() > 256 {
					continue
				}
				for _, procs := range []int{1, 4} {
					r := newTransducerRunner(t, tr, strat, WithProcs(procs), WithMinChunk(16))
					in := d.RandomInput(rng, 400)
					st := fsm.State(rng.Intn(d.NumStates()))
					wantTape, wantFinal := oracleTape(tr, in, st)

					tape, final, err := r.TransduceOutputs(in, st)
					if err != nil {
						t.Fatal(err)
					}
					if final != wantFinal {
						t.Fatalf("m%d %v %v procs=%d: final %d want %d", mi, kind, strat, procs, final, wantFinal)
					}
					for i := range tape {
						if tape[i] != wantTape[i] {
							t.Fatalf("m%d %v %v procs=%d: tape[%d] = %d want %d", mi, kind, strat, procs, i, tape[i], wantTape[i])
						}
					}

					spans, final2, err := r.TransduceSpans(in, st)
					if err != nil {
						t.Fatal(err)
					}
					if final2 != wantFinal {
						t.Fatalf("spans final %d want %d", final2, wantFinal)
					}
					want := oracleSpans(wantTape)
					if len(spans) != len(want) {
						t.Fatalf("m%d %v %v procs=%d: %d spans want %d", mi, kind, strat, procs, len(spans), len(want))
					}
					for i := range spans {
						if spans[i] != want[i] {
							t.Fatalf("m%d %v %v procs=%d: span[%d] = %+v want %+v", mi, kind, strat, procs, i, spans[i], want[i])
						}
					}
				}
			}
		}
	}
}

// A span that crosses every chunk boundary: constant output over the
// whole input must come back as exactly one span however many chunks
// the runner used.
func TestTransduceSpanStraddlesAllBoundaries(t *testing.T) {
	d := fsm.MustNew(2, 2) // default δ ≡ 0: the walk never leaves state 0
	tr, err := fsm.NewMoore(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetMooreOutput(0, 1)
	tr.SetMooreOutput(1, 1)
	r := newTransducerRunner(t, tr, Base, WithProcs(8), WithMinChunk(4))
	in := make([]byte, 512)
	spans, _, err := r.TransduceSpans(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0] != (Span{Start: 0, End: 512, Out: 1}) {
		t.Fatalf("got %+v, want one span [0,512) out 1", spans)
	}
}

func TestTransduceEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	d := fsm.RandomConverging(rng, 16, 4, 4, 0.3)
	tr := randomTransducer(t, d, fsm.KindMealy, 3)
	r := newTransducerRunner(t, tr, Convergence, WithProcs(4), WithMinChunk(16))
	tape, final, err := r.TransduceOutputs(nil, 5)
	if err != nil || len(tape) != 0 || final != 5 {
		t.Fatalf("tape=%v final=%d err=%v", tape, final, err)
	}
	spans, final, err := r.TransduceSpans(nil, 5)
	if err != nil || len(spans) != 0 || final != 5 {
		t.Fatalf("spans=%v final=%d err=%v", spans, final, err)
	}
}

func TestTransduceOnAcceptorFails(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	d := fsm.RandomConverging(rng, 16, 4, 4, 0.3)
	r := newRunner(t, d, Convergence)
	if _, _, err := r.TransduceOutputs([]byte("abc"), 0); err == nil {
		t.Fatal("TransduceOutputs on acceptor plan: want error")
	}
	if _, _, err := r.TransduceSpans([]byte("abc"), 0); err == nil {
		t.Fatal("TransduceSpans on acceptor plan: want error")
	}
}

func TestTransducerPlanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for _, kind := range []fsm.Kind{fsm.KindMoore, fsm.KindMealy} {
		d := fsm.RandomConverging(rng, 40, 6, 5, 0.3)
		tr := randomTransducer(t, d, kind, 4)
		p, err := CompileTransducer(tr)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		q, err := UnmarshalPlan(blob)
		if err != nil {
			t.Fatal(err)
		}
		if !p.equivalent(q) {
			t.Fatalf("%v: round-tripped plan not equivalent", kind)
		}
		if q.Kind() != kind {
			t.Fatalf("Kind = %v want %v", q.Kind(), kind)
		}
		if p.Fingerprint() != q.Fingerprint() {
			t.Fatalf("fingerprint changed across round trip")
		}

		// Decoded plans transduce identically.
		r1, err := NewFromPlan(p)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := NewFromPlan(q, WithProcs(4), WithMinChunk(16))
		if err != nil {
			t.Fatal(err)
		}
		in := d.RandomInput(rng, 300)
		t1, f1, err1 := r1.TransduceOutputs(in, d.Start())
		t2, f2, err2 := r2.TransduceOutputs(in, d.Start())
		if err1 != nil || err2 != nil || f1 != f2 {
			t.Fatalf("err1=%v err2=%v f1=%d f2=%d", err1, err2, f1, f2)
		}
		for i := range t1 {
			if t1[i] != t2[i] {
				t.Fatalf("decoded plan tape diverges at %d", i)
			}
		}
	}
}

// Transducer fingerprints must separate plans that differ only in λ,
// while acceptor fingerprints stay as before (cache compatibility).
func TestTransducerFingerprintCoversLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	d := fsm.RandomConverging(rng, 16, 4, 4, 0.3)
	a := randomTransducer(t, d, fsm.KindMoore, 3)
	b := a.Clone()
	b.SetMooreOutput(1, 2)
	pa, err := CompileTransducer(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := CompileTransducer(b)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Fingerprint() == pb.Fingerprint() {
		t.Fatal("plans with different λ share a fingerprint")
	}
	pAcc, err := CompilePlan(d)
	if err != nil {
		t.Fatal(err)
	}
	if pAcc.Fingerprint() == pa.Fingerprint() {
		t.Fatal("acceptor and transducer plans share a fingerprint")
	}
	key, err := TransducerPlanKey(a)
	if err != nil {
		t.Fatal(err)
	}
	if key != pa.Fingerprint() {
		t.Fatalf("TransducerPlanKey %s != compiled fingerprint %s", key, pa.Fingerprint())
	}
}
