package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"dpfsm/internal/fsm"
)

// ctxStrategies is the matrix every cancellation test runs over.
var ctxStrategies = []Strategy{
	Sequential, Base, BaseILP, Convergence, RangeCoalesced, RangeConvergence,
}

// TestFinalCtxMatchesFinal checks that the block-folded ctx path is
// bit-identical to the one-shot loops, across the strategy matrix,
// single- and multicore, for inputs straddling the block boundary.
func TestFinalCtxMatchesFinal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := fsm.RandomConverging(rng, 40, 8, 6, 0.2)
	sizes := []int{0, 1, 100, ctxCheckBytes - 1, ctxCheckBytes, ctxCheckBytes + 1, 3*ctxCheckBytes + 17}
	for _, strat := range ctxStrategies {
		for _, procs := range []int{1, 4} {
			r, err := New(d, WithStrategy(strat), WithProcs(procs), WithMinChunk(1<<10))
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range sizes {
				input := d.RandomInput(rng, n)
				want := r.Final(input, d.Start())
				got, err := r.FinalCtx(context.Background(), input, d.Start())
				if err != nil {
					t.Fatalf("%v procs=%d n=%d: %v", strat, procs, n, err)
				}
				if got != want {
					t.Errorf("%v procs=%d n=%d: FinalCtx=%d Final=%d", strat, procs, n, got, want)
				}
			}
		}
	}
}

// TestFinalCtxCanceled checks that an already-canceled context stops
// the run before any work and that a mid-run cancel returns promptly
// with ctx.Err().
func TestFinalCtxCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := fsm.RandomConverging(rng, 40, 8, 6, 0.2)
	input := d.RandomInput(rng, 8<<20)

	for _, procs := range []int{1, 4} {
		r, err := New(d, WithProcs(procs))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := r.FinalCtx(ctx, input, d.Start()); err != context.Canceled {
			t.Errorf("procs=%d pre-canceled: err=%v", procs, err)
		}

		ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Millisecond)
		defer cancel2()
		t0 := time.Now()
		for {
			_, err := r.FinalCtx(ctx2, input, d.Start())
			if err != nil {
				if err != context.DeadlineExceeded {
					t.Errorf("procs=%d: err=%v", procs, err)
				}
				break
			}
			if time.Since(t0) > 5*time.Second {
				t.Fatalf("procs=%d: deadline never fired", procs)
			}
		}
	}
}

// TestAcceptsCtx exercises the accept wrapper on both outcomes.
func TestAcceptsCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := fsm.RandomConverging(rng, 30, 4, 5, 0.3)
	r, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	input := d.RandomInput(rng, 4096)
	want := r.Accepts(input)
	got, err := r.AcceptsCtx(context.Background(), input)
	if err != nil || got != want {
		t.Errorf("AcceptsCtx=(%v,%v) Accepts=%v", got, err, want)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.AcceptsCtx(ctx, input); err != context.Canceled {
		t.Errorf("canceled AcceptsCtx err=%v", err)
	}
}

// TestRunChunkedCtx checks the cancellable chunked runner: background
// contexts match RunChunked, and canceled contexts surface the error.
func TestRunChunkedCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := fsm.RandomConverging(rng, 40, 8, 6, 0.2)
	r, err := New(d, WithProcs(4), WithMinChunk(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	input := d.RandomInput(rng, 64<<10)
	seq := func(off int, chunk []byte, st fsm.State) fsm.State {
		return d.Run(chunk, st)
	}
	want := r.RunChunked(input, d.Start(), seq)
	got, err := r.RunChunkedCtx(context.Background(), input, d.Start(), seq)
	if err != nil || got != want {
		t.Errorf("RunChunkedCtx=(%d,%v) RunChunked=%d", got, err, want)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunChunkedCtx(ctx, input, d.Start(), seq); err != context.Canceled {
		t.Errorf("canceled RunChunkedCtx err=%v", err)
	}
}
