package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"dpfsm/internal/fsm"
)

// Multicore runners use tiny chunks so tests actually exercise the
// three-phase path on small inputs.
func multicoreRunner(t testing.TB, d *fsm.DFA, strat Strategy, procs int) *Runner {
	t.Helper()
	return newRunner(t, d, strat, WithProcs(procs), WithMinChunk(16))
}

func TestMulticoreFinalMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, d := range machines(t, rng) {
		for _, strat := range []Strategy{Base, Convergence, RangeCoalesced, RangeConvergence} {
			if (strat == RangeCoalesced || strat == RangeConvergence) && d.MaxRangeSize() > 256 {
				continue
			}
			for _, procs := range []int{2, 3, 5} {
				r := multicoreRunner(t, d, strat, procs)
				in := d.RandomInput(rng, 500)
				st := fsm.State(rng.Intn(d.NumStates()))
				if got, want := r.Final(in, st), d.Run(in, st); got != want {
					t.Fatalf("%v procs=%d: %d want %d", strat, procs, got, want)
				}
			}
		}
	}
}

func TestMulticoreRunPhiCompleteAndCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	d := fsm.RandomConverging(rng, 50, 8, 6, 0.3)
	in := d.RandomInput(rng, 1000)
	st := d.Start()

	wantStates := d.Trace(in, st)

	for _, strat := range []Strategy{Base, Convergence, RangeCoalesced, RangeConvergence} {
		r := multicoreRunner(t, d, strat, 4)
		var mu sync.Mutex
		got := make([]fsm.State, len(in))
		seen := make([]bool, len(in))
		final := r.Run(in, st, func(pos int, sym byte, q fsm.State) {
			mu.Lock()
			defer mu.Unlock()
			if seen[pos] {
				t.Errorf("duplicate φ for pos %d", pos)
			}
			seen[pos] = true
			got[pos] = q
			if sym != in[pos] {
				t.Errorf("φ pos %d got sym %d want %d", pos, sym, in[pos])
			}
		})
		if final != wantStates[len(in)-1] {
			t.Fatalf("%v: final %d want %d", strat, final, wantStates[len(in)-1])
		}
		for i := range in {
			if !seen[i] {
				t.Fatalf("%v: missing φ at %d", strat, i)
			}
			if got[i] != wantStates[i] {
				t.Fatalf("%v: φ state at %d = %d want %d", strat, i, got[i], wantStates[i])
			}
		}
	}
}

func TestMulticoreCompositionVector(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	d := fsm.RandomConverging(rng, 30, 4, 5, 0.3)
	in := d.RandomInput(rng, 700)
	r := multicoreRunner(t, d, Convergence, 4)
	vec := r.CompositionVector(in)
	for q := 0; q < d.NumStates(); q++ {
		if want := d.Run(in, fsm.State(q)); vec[q] != want {
			t.Fatalf("vec[%d] = %d want %d", q, vec[q], want)
		}
	}
}

func TestMulticoreFallsBackOnShortInput(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	d := fsm.RandomConverging(rng, 20, 4, 4, 0.3)
	r := newRunner(t, d, Convergence, WithProcs(8)) // default minChunk 4096
	in := d.RandomInput(rng, 100)                   // too short for multicore
	if r.useMulticore(len(in)) {
		t.Error("short input should not take the multicore path")
	}
	if got, want := r.Final(in, 0), d.Run(in, 0); got != want {
		t.Fatalf("fallback: %d want %d", got, want)
	}
}

func TestSplitChunksCoverInput(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	d := fsm.MustNew(2, 2)
	f := func(nSeed uint16, procs uint8) bool {
		n := int(nSeed)
		p := 1 + int(procs)%16
		r, err := New(d, WithStrategy(Base), WithProcs(p), WithMinChunk(8))
		if err != nil {
			return false
		}
		chunks := r.splitChunks(n)
		if len(chunks) < 1 {
			return false
		}
		prev := 0
		for _, ch := range chunks {
			if ch[0] != prev || ch[1] < ch[0] {
				return false
			}
			prev = ch[1]
		}
		return prev == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPhase2Propagation(t *testing.T) {
	// Hand-built: two chunk vectors over 3 states.
	vecs := [][]fsm.State{
		{1, 2, 0},
		{2, 2, 1},
	}
	starts := phase2(vecs, 0)
	if starts[0] != 0 {
		t.Errorf("starts[0] = %d", starts[0])
	}
	if starts[1] != 1 { // vecs[0][0] = 1
		t.Errorf("starts[1] = %d, want 1", starts[1])
	}
}

func TestMulticoreManyProcsFewBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	d := fsm.RandomConverging(rng, 16, 4, 4, 0.3)
	r := newRunner(t, d, Convergence, WithProcs(16), WithMinChunk(1))
	in := d.RandomInput(rng, 37) // more procs than sensible chunks
	st := fsm.State(5)
	if got, want := r.Final(in, st), d.Run(in, st); got != want {
		t.Fatalf("%d want %d", got, want)
	}
	calls := 0
	var mu sync.Mutex
	r.Run(in, st, func(int, byte, fsm.State) { mu.Lock(); calls++; mu.Unlock() })
	if calls != len(in) {
		t.Fatalf("φ calls %d want %d", calls, len(in))
	}
}
