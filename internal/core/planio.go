package core

// Plan serialization: the bridge between the live Plan representation
// and the wire format of internal/plan. The wire file stores the
// machine encoding, the resolved strategy, the per-symbol range sizes,
// and — for range strategies — the actual U/L/T tables of Figures
// 10–11, so loading a plan skips the Factor passes and table joins of
// buildRCTables. UnmarshalPlan validates structure (every stored name
// and state is bounds-checked against the decoded machine) but does
// not re-derive the tables to compare: the checksum already guards
// against corruption, and a load that rebuilt everything would cost as
// much as compiling.

import (
	"bytes"
	"fmt"

	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
	planwire "dpfsm/internal/plan"
)

// MarshalBinary serializes the plan in internal/plan's versioned,
// checksummed format. It implements encoding.BinaryMarshaler.
func (p *Plan) MarshalBinary() ([]byte, error) {
	var mbuf bytes.Buffer
	if _, err := p.d.WriteTo(&mbuf); err != nil {
		return nil, fmt.Errorf("core: encoding machine: %w", err)
	}
	f := &planwire.File{
		Strategy:   p.strategy.String(),
		AutoReason: p.reason,
		Machine:    mbuf.Bytes(),
		Ranges:     make([]uint16, len(p.ranges)),
	}
	for a, v := range p.ranges {
		f.Ranges[a] = uint16(v)
	}
	if p.rc != nil {
		rc := &planwire.RC{
			L: p.rc.l,
			U: make([][]uint16, len(p.rc.u)),
			T: p.rc.tf,
		}
		for a, u := range p.rc.u {
			uw := make([]uint16, len(u))
			for i, q := range u {
				uw[i] = uint16(q)
			}
			rc.U[a] = uw
		}
		f.RC = rc
	}
	if p.out != nil {
		lam := p.out.Lambda()
		o := &planwire.Outputs{
			Kind:       uint8(p.out.Kind()),
			NumOutputs: uint32(p.out.NumOutputs()),
			Lambda:     make([]uint16, len(lam)),
		}
		for i, v := range lam {
			o.Lambda[i] = uint16(v)
		}
		f.Out = o
	}
	return f.MarshalBinary()
}

// UnmarshalPlan decodes a plan serialized by Plan.MarshalBinary. The
// embedded machine is revalidated, the stored range sizes are checked
// against the machine, and every range-coalesced table entry is
// bounds-checked, so a plan that decodes is safe to execute.
func UnmarshalPlan(data []byte) (*Plan, error) {
	f, err := planwire.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	d, err := fsm.ReadDFA(bytes.NewReader(f.Machine))
	if err != nil {
		return nil, fmt.Errorf("core: plan machine: %w", err)
	}
	strategy, err := ParseStrategy(f.Strategy)
	if err != nil {
		return nil, fmt.Errorf("core: plan strategy: %w", err)
	}
	if strategy == Auto {
		return nil, fmt.Errorf("core: serialized plan names strategy %q; plans carry a resolved strategy", f.Strategy)
	}

	p := &Plan{
		d:        d,
		n:        d.NumStates(),
		strategy: strategy,
		reason:   f.AutoReason,
	}
	p.ranges = d.RangeSizes()
	if len(f.Ranges) != len(p.ranges) {
		return nil, fmt.Errorf("core: plan has %d range entries, machine has %d symbols", len(f.Ranges), len(p.ranges))
	}
	for a, v := range p.ranges {
		if int(f.Ranges[a]) != v {
			return nil, fmt.Errorf("core: plan range[%d] = %d, machine derives %d: plan does not match machine", a, f.Ranges[a], v)
		}
		if v > p.maxRange {
			p.maxRange = v
		}
	}

	// Rebuild the cheap derived tables the wire format omits.
	p.cols16 = make([][]fsm.State, d.NumSymbols())
	for a := 0; a < d.NumSymbols(); a++ {
		p.cols16[a] = d.Column(byte(a))
	}
	if p.n <= 256 {
		p.colsB = make([][]byte, d.NumSymbols())
		for a := 0; a < d.NumSymbols(); a++ {
			col := p.cols16[a]
			b := make([]byte, p.n)
			for q, s := range col {
				b[q] = byte(s)
			}
			p.colsB[a] = b
		}
	}
	p.nBlocks = (p.n + gather.Width - 1) / gather.Width
	p.rangeBlocks = make([]int64, len(p.ranges))
	for a, v := range p.ranges {
		p.rangeBlocks[a] = int64((v + gather.Width - 1) / gather.Width)
	}

	needRC := strategy == RangeCoalesced || strategy == RangeConvergence
	switch {
	case needRC && f.RC == nil:
		return nil, fmt.Errorf("core: plan for strategy %s is missing its range-coalesced tables", strategy)
	case !needRC && f.RC != nil:
		return nil, fmt.Errorf("core: plan for strategy %s carries unexpected range-coalesced tables", strategy)
	case needRC:
		rc, err := rcFromWire(f.RC, p.n, p.ranges)
		if err != nil {
			return nil, err
		}
		p.rc = rc
	}
	if f.Out != nil {
		lam := make([]fsm.Output, len(f.Out.Lambda))
		for i, v := range f.Out.Lambda {
			lam[i] = fsm.Output(v)
		}
		// NewTransducer revalidates kind, |Γ|, the λ shape against the
		// decoded machine, and every entry's range.
		t, err := fsm.NewTransducer(d, fsm.Kind(f.Out.Kind), int(f.Out.NumOutputs), lam)
		if err != nil {
			return nil, fmt.Errorf("core: plan output table: %w", err)
		}
		p.out = t
	}
	p.fingerprint = fingerprint(d, p.out, strategy)
	return p, nil
}

// rcFromWire reconstructs the live rcTables from the wire tables,
// bounds-checking every entry against the machine's state count and
// the per-symbol range sizes, and rebuilding the t/fw views that are
// pure re-slicings of the flat tables.
func rcFromWire(w *planwire.RC, n int, ranges []int) (*rcTables, error) {
	k := len(ranges)
	if len(w.L) != k || len(w.U) != k || len(w.T) != k {
		return nil, fmt.Errorf("core: plan RC tables cover %d/%d/%d symbols, machine has %d", len(w.L), len(w.U), len(w.T), k)
	}
	rc := &rcTables{
		l:  w.L,
		u:  make([][]fsm.State, k),
		t:  make([][][]byte, k),
		tf: w.T,
		w:  make([]int, k),
		fw: make([]rcFlat, k),
	}
	for a := 0; a < k; a++ {
		if len(w.U[a]) != ranges[a] {
			return nil, fmt.Errorf("core: plan U[%d] has width %d, machine range is %d", a, len(w.U[a]), ranges[a])
		}
		u := make([]fsm.State, len(w.U[a]))
		var umax uint16
		for i, q := range w.U[a] {
			if q > umax {
				umax = q
			}
			u[i] = fsm.State(q)
		}
		if int(umax) >= n {
			i := firstAtLeast16(w.U[a], uint16(n))
			return nil, fmt.Errorf("core: plan U[%d][%d] = state %d out of range [0, %d)", a, i, w.U[a][i], n)
		}
		rc.u[a] = u
		if len(w.L[a]) != n {
			return nil, fmt.Errorf("core: plan L[%d] has %d entries, machine has %d states", a, len(w.L[a]), n)
		}
		if m := maxByte(w.L[a]); int(m) >= ranges[a] {
			q := firstAtLeast8(w.L[a], byte(ranges[a]))
			return nil, fmt.Errorf("core: plan L[%d][%d] = name %d out of range [0, %d)", a, q, w.L[a][q], ranges[a])
		}
	}
	for a := 0; a < k; a++ {
		wa := ranges[a]
		rc.w[a] = wa
		flat := w.T[a]
		if len(flat) != k*wa {
			return nil, fmt.Errorf("core: plan T[%d] has %d entries, want %d", a, len(flat), k*wa)
		}
		rc.t[a] = make([][]byte, k)
		for b := 0; b < k; b++ {
			tab := flat[b*wa : (b+1)*wa : (b+1)*wa]
			if m := maxByte(tab); int(m) >= ranges[b] {
				i := firstAtLeast8(tab, byte(ranges[b]))
				return nil, fmt.Errorf("core: plan T[%d][%d][%d] = name %d out of range [0, %d)", a, b, i, tab[i], ranges[b])
			}
			rc.t[a][b] = tab
		}
		rc.fw[a] = rcFlat{f: flat, w: wa}
	}
	return rc, nil
}

// maxByte is the bounds-check fast path: validating a table reduces to
// one max scan plus a single compare, instead of a branchy compare per
// entry over megabytes of names.
func maxByte(s []byte) byte {
	var m0, m1, m2, m3 byte
	for len(s) >= 4 {
		if s[0] > m0 {
			m0 = s[0]
		}
		if s[1] > m1 {
			m1 = s[1]
		}
		if s[2] > m2 {
			m2 = s[2]
		}
		if s[3] > m3 {
			m3 = s[3]
		}
		s = s[4:]
	}
	for _, v := range s {
		if v > m0 {
			m0 = v
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	return m0
}

// firstAtLeast8 locates the offending entry once a max scan has
// already proven one exists, so error messages keep exact indices
// without taxing the success path.
func firstAtLeast8(s []byte, bound byte) int {
	for i, v := range s {
		if v >= bound {
			return i
		}
	}
	return 0
}

func firstAtLeast16(s []uint16, bound uint16) int {
	for i, v := range s {
		if v >= bound {
			return i
		}
	}
	return 0
}
