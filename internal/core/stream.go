package core

// Streaming execution. The batch Runner needs the whole input in
// memory (the paper's benchmarks "read all data into memory and then
// operate on that data", §6); Stream adapts it to incremental inputs:
// bytes are buffered into blocks and each block is folded through the
// runner's composition vector, so arbitrarily long inputs run in
// O(block) memory while still using the enumerative strategies — and,
// for large blocks, the multicore path — inside each block.

import (
	"io"

	"dpfsm/internal/fsm"
)

// Stream runs one machine over an incrementally supplied input.
// Not safe for concurrent use.
type Stream struct {
	r     *Runner
	state fsm.State
	buf   []byte
	block int
	phi   fsm.Phi
	pos   int
}

// DefaultStreamBlock is the default internal block size.
const DefaultStreamBlock = 1 << 20

// NewStream returns a stream starting from the machine's start state.
// phi may be nil; when set it is invoked for every consumed symbol
// (positions are global across writes). block ≤ 0 selects
// DefaultStreamBlock.
func (r *Runner) NewStream(phi fsm.Phi, block int) *Stream {
	if block <= 0 {
		block = DefaultStreamBlock
	}
	return &Stream{
		r:     r,
		state: r.d.Start(),
		buf:   make([]byte, 0, block),
		block: block,
		phi:   phi,
	}
}

// Write feeds input bytes; it never fails (the error is for
// io.Writer). Full blocks are processed eagerly.
func (s *Stream) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		space := s.block - len(s.buf)
		if space > len(p) {
			space = len(p)
		}
		s.buf = append(s.buf, p[:space]...)
		p = p[space:]
		if len(s.buf) == s.block {
			s.flush()
		}
	}
	return total, nil
}

// ReadFrom consumes all of r, implementing io.ReaderFrom.
func (s *Stream) ReadFrom(r io.Reader) (int64, error) {
	var total int64
	chunk := make([]byte, 64<<10)
	for {
		n, err := r.Read(chunk)
		if n > 0 {
			total += int64(n)
			s.Write(chunk[:n])
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

func (s *Stream) flush() {
	if len(s.buf) == 0 {
		return
	}
	if t := s.r.tel; t != nil {
		t.StreamBlocks.Inc()
		t.StreamBytes.Add(int64(len(s.buf)))
	}
	if s.phi != nil {
		off := s.pos
		s.state = s.r.Run(s.buf, s.state, func(pos int, sym byte, q fsm.State) {
			s.phi(off+pos, sym, q)
		})
	} else {
		s.state = s.r.Final(s.buf, s.state)
	}
	s.pos += len(s.buf)
	s.buf = s.buf[:0]
}

// State flushes any buffered bytes and returns the current state.
func (s *Stream) State() fsm.State {
	s.flush()
	return s.state
}

// Accepting flushes and reports whether the current state accepts.
func (s *Stream) Accepting() bool {
	return s.r.d.Accepting(s.State())
}

// Consumed reports how many bytes have been fully processed (including
// buffered bytes only after a State/Accepting flush).
func (s *Stream) Consumed() int { return s.pos }

// Reset returns the stream to the machine's start state, discarding
// buffered bytes and the position counter.
func (s *Stream) Reset() {
	s.state = s.r.d.Start()
	s.buf = s.buf[:0]
	s.pos = 0
}
