// Package core implements the data-parallel FSM algorithms of
// Mytkowicz, Musuvathi and Schulte, "Data-Parallel Finite-State
// Machines" (ASPLOS 2014).
//
// The sequential FSM loop q = T[a][q] carries a loop-borne dependence
// through q. The paper breaks it *enumeratively*: instead of one state,
// track the vector S of states reached from every possible start state;
// each input symbol updates the whole vector with one gather
// S = S ⊗ T[a]. Because gather is associative, the computation can be
// split across cores (parallel prefix, Figure 5) and unrolled for
// instruction-level parallelism (Figure 4). Two optimizations make the
// n-fold enumerative overhead affordable:
//
//   - Convergence (§5.2, Figure 7): transition functions are
//     many-to-one, so the distinct ("active") states in S collapse
//     quickly — usually to ≤16, at which point one emulated 16-lane
//     shuffle advances all of them at once. Periodic Factor calls
//     compress S and accumulate the removed redundancy in a lookup
//     vector Acc with the invariant S_base = Acc ⊗ S.
//
//   - Range coalescing (§5.3, Figures 10–11): the range of each
//     per-symbol transition function is small, so states are renamed
//     per symbol ("names of a") and the machine runs over compact
//     per-symbol tables T_a[b] = U_a ⊗ L_b whose width is the maximum
//     range, independent of the total state count.
//
// A Runner precomputes whatever its strategy needs and exposes
// Final/Accepts/Run/CompositionVector. With WithProcs(p > 1) the runner
// additionally splits the input into chunks and runs the three-phase
// multicore algorithm of Figure 5.
package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
	"dpfsm/internal/telemetry"
)

// Strategy selects the single-core execution algorithm.
type Strategy int

const (
	// Auto picks a strategy from the machine's static structure, the
	// way the paper suggests an FSM compiler would (§6.1): range
	// coalescing when the maximum range is ≤ gather.Width, otherwise
	// convergence.
	Auto Strategy = iota
	// Sequential is the optimized baseline of Figure 1(c) with loop
	// unrolling. It ignores WithProcs.
	Sequential
	// Base is the unoptimized enumerative algorithm of Figure 3: the
	// full n-wide state vector is gathered on every symbol.
	Base
	// BaseILP is Base with the 3-way associative unrolling of Figure 4.
	BaseILP
	// Convergence is Figure 7: the active-state vector is periodically
	// factored so gathers shrink to the number of active states.
	Convergence
	// RangeCoalesced is Figure 11: per-symbol renamed tables whose
	// width is the machine's maximum transition range.
	RangeCoalesced
	// RangeConvergence layers Figure 7's convergence optimization over
	// the range-coalesced tables: the name vector is periodically
	// factored, so machines whose first-symbol range is wide still
	// collapse into the register regime. An extension beyond the
	// paper, benchmarked as an ablation.
	RangeConvergence
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Sequential:
		return "sequential"
	case Base:
		return "base"
	case BaseILP:
		return "base-ilp"
	case Convergence:
		return "convergence"
	case RangeCoalesced:
		return "range"
	case RangeConvergence:
		return "range+conv"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies enumerates the valid strategy names in declaration
// order, for CLI/HTTP surfaces that list the accepted values in flag
// usage and error messages.
func Strategies() []string {
	names := make([]string, 0, int(RangeConvergence)+1)
	for s := Auto; s <= RangeConvergence; s++ {
		names = append(names, s.String())
	}
	return names
}

// ParseStrategy is the inverse of Strategy.String, for CLI/HTTP
// surfaces that select a strategy by name. Matching is
// case-insensitive.
func ParseStrategy(name string) (Strategy, error) {
	for s := Auto; s <= RangeConvergence; s++ {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
	}
	return Auto, fmt.Errorf("core: unknown strategy %q (valid: %s)",
		name, strings.Join(Strategies(), " "))
}

// MarshalText implements encoding.TextMarshaler, so JSON/TOML surfaces
// carry strategy names ("range", "convergence", …) instead of enum
// integers without hand-rolled conversion.
func (s Strategy) MarshalText() ([]byte, error) {
	if s < Auto || s > RangeConvergence {
		return nil, fmt.Errorf("core: cannot marshal invalid strategy %d", int(s))
	}
	return []byte(s.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via ParseStrategy.
// Empty text decodes to Auto, so omitted JSON fields mean "pick for
// me" rather than an error.
func (s *Strategy) UnmarshalText(text []byte) error {
	if len(text) == 0 {
		*s = Auto
		return nil
	}
	v, err := ParseStrategy(string(text))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Option configures a Runner.
type Option func(*config)

type config struct {
	strategy  Strategy
	procs     int
	convEvery int
	minChunk  int
	simd      bool
	tel       *telemetry.Metrics
	aux       *telemetry.Metrics
}

// WithStrategy forces a single-core strategy instead of Auto selection.
func WithStrategy(s Strategy) Option {
	return func(c *config) { c.strategy = s }
}

// WithProcs sets the number of goroutines the Figure 5 multicore
// algorithm distributes chunks over. p ≤ 1 disables multicore. p == 0
// means runtime.NumCPU().
func WithProcs(p int) Option {
	return func(c *config) {
		if p == 0 {
			p = runtime.NumCPU()
		}
		c.procs = p
	}
}

// WithConvCheckEvery sets the fallback cadence (in input symbols) of
// convergence checks for the Convergence strategy. Checks also fire
// eagerly whenever a symbol's static range promises a drop of at least
// gather.Width active states (§5.2's two heuristics). k ≤ 0 keeps the
// default.
func WithConvCheckEvery(k int) Option {
	return func(c *config) {
		if k > 0 {
			c.convEvery = k
		}
	}
}

// WithMinChunk sets the minimum per-goroutine chunk size below which
// the multicore path falls back to fewer goroutines (the paper's
// scaling stops when "the size of the input chunks per core is not
// sufficient", §6.1).
func WithMinChunk(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.minChunk = n
		}
	}
}

// WithEmulatedSIMD makes the byte-state kernels execute the blocked
// shuffle/blend dataflow of §4.2 (gather.SIMDInto) instead of scalar
// gather. On real SSE hardware the shuffle path is the fast one (the
// paper's Figure 6 peak of 4.4×); a pure-Go emulation pays ~Width
// scalar operations per 16-lane shuffle, so this is an ablation/
// fidelity knob, not a speedup — see DESIGN.md's substitution notes.
// In this port the scalar gather over the same byte-encoded compact
// tables plays the vector role: it preserves the locality and
// width-scaling structure the optimizations are about.
func WithEmulatedSIMD(on bool) Option {
	return func(c *config) { c.simd = on }
}

// WithTelemetry attaches a metrics sink. All Runners sharing m
// accumulate into the same counters; m may be read (Snapshot, expvar,
// Prometheus) while runs are in flight. A nil m — the default —
// disables collection entirely: the hot loops accumulate into stack
// locals and the only residual cost is one pointer check per run, so
// the disabled path is indistinguishable from an uninstrumented build.
func WithTelemetry(m *telemetry.Metrics) Option {
	return func(c *config) { c.tel = m }
}

// WithAuxTelemetry attaches a second, auxiliary metrics sink that
// receives only the run-level accounting (runs, symbols, gathers,
// shuffles, convergence checks/wins, active-vector widths) — not the
// phase timers or stream/engine counters, which stay exclusive to the
// primary sink. The engine uses this to give every registered machine
// its own counter set (the per-machine performance profiles of
// internal/perfprofile) while the shared process-wide sink keeps
// aggregating everything. A nil m — the default — costs nothing: the
// flush points already branch on the primary sink.
func WithAuxTelemetry(m *telemetry.Metrics) Option {
	return func(c *config) { c.aux = m }
}

const (
	defaultConvEvery = 64
	defaultMinChunk  = 1 << 12
)

func defaultConfig() config {
	return config{
		strategy:  Auto,
		procs:     1,
		convEvery: defaultConvEvery,
		minChunk:  defaultMinChunk,
	}
}

// Runner is the run-time half of the compile/execute split: a thin
// execution context — multicore width, convergence cadence, kernel
// selection, telemetry sink, scratch pool — over a shared immutable
// *Plan holding every machine-derived table. Any number of Runners
// may share one Plan (the engine's pooled single-core and multicore
// runners do exactly that); a Runner is itself immutable after
// construction and safe for concurrent use.
type Runner struct {
	*Plan

	procs     int
	convEvery int
	minChunk  int

	// tel is the attached metrics sink; nil disables collection.
	// stratRuns caches tel.StrategyRuns for this runner's strategy so
	// the per-run path never takes the label-registry mutex.
	tel       *telemetry.Metrics
	stratRuns *telemetry.Counter
	// aux is the optional per-machine sink (WithAuxTelemetry): it gets
	// the run-level counters only, flushed from the same sites as tel.
	aux          *telemetry.Metrics
	auxStratRuns *telemetry.Counter

	// simd selects the emulated shuffle/blend dataflow of §4.2 for
	// byte-lane gathers (WithEmulatedSIMD); the default is the scalar
	// kernel, which is the fast path in pure Go.
	simd bool
	// gatherB is the byte-lane gather kernel matching simd.
	gatherB func(dst, s, t []byte)

	// scratchPool recycles the per-run working vectors (scratch.go) so
	// batch workloads — many small runs over one shared Runner — do
	// not allocate enumerative state per job.
	scratchPool sync.Pool
}

// New compiles d and builds a Runner over the fresh plan — the
// one-shot path. Callers constructing many runners for one machine
// (or reloading a serialized plan) should CompilePlan/UnmarshalPlan
// once and use NewFromPlan.
func New(d *fsm.DFA, opts ...Option) (*Runner, error) {
	p, err := CompilePlan(d, opts...)
	if err != nil {
		return nil, err
	}
	return NewFromPlan(p, opts...)
}

// NewFromPlan builds a Runner executing p. Run-time options (procs,
// convergence cadence, SIMD emulation, telemetry) apply as in New;
// WithStrategy, if given, must match the plan's resolved strategy —
// a plan *is* a strategy's compiled tables, so running it any other
// way is a compile-time request, not a run-time one.
func NewFromPlan(p *Plan, opts ...Option) (*Runner, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil plan")
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.strategy != Auto && cfg.strategy != p.strategy {
		return nil, fmt.Errorf("core: plan compiled for strategy %s cannot run as %s (recompile with CompilePlan)",
			p.strategy, cfg.strategy)
	}

	r := &Runner{
		Plan:      p,
		procs:     cfg.procs,
		convEvery: cfg.convEvery,
		minChunk:  cfg.minChunk,
	}
	r.simd = cfg.simd
	if cfg.simd {
		r.gatherB = gather.SIMDInto
	} else {
		r.gatherB = gather.Into[byte]
	}
	if r.procs < 1 {
		r.procs = 1
	}
	if r.minChunk < 1 {
		// Guard the splitChunks divisions: a zero or negative minimum
		// chunk would divide by zero (or hand workers empty chunks).
		r.minChunk = 1
	}
	if cfg.tel != nil {
		r.tel = cfg.tel
		r.tel.StrategySelected.Get(r.strategy.String()).Inc()
		r.stratRuns = r.tel.StrategyRuns.Get(r.strategy.String())
	}
	if cfg.aux != nil {
		r.aux = cfg.aux
		r.aux.StrategySelected.Get(r.strategy.String()).Inc()
		r.auxStratRuns = r.aux.StrategyRuns.Get(r.strategy.String())
	}
	return r, nil
}

// Plan returns the shared compiled artifact this runner executes.
func (r *Runner) PlanRef() *Plan { return r.Plan }

// Telemetry returns the attached metrics sink (nil when disabled).
func (r *Runner) Telemetry() *telemetry.Metrics { return r.tel }

// noteEntry records one entry-point execution over n input symbols.
func (r *Runner) noteEntry(n int) {
	if t := r.tel; t != nil {
		t.Runs.Inc()
		t.Symbols.Add(int64(n))
		r.stratRuns.Inc()
	}
	if t := r.aux; t != nil {
		t.Runs.Inc()
		t.Symbols.Add(int64(n))
		r.auxStratRuns.Inc()
	}
}

// noteSingle flushes the accounting of one single-core enumerative
// pass (a whole input, or one multicore chunk): gather kernel
// invocations, emulated ⊗16,16 shuffles under the §4.2 blocked cost
// model, convergence checks and wins, and the active-vector width at
// entry (highWater) and exit (final). rs, when non-nil, receives the
// same numbers for the run's trace (the request-scoped view of what
// the telemetry sink sees in aggregate).
func (r *Runner) noteSingle(rs *runStats, gathers, shuffles, factorCalls, factorWins int64, highWater, final int) {
	if rs != nil {
		rs.note(gathers, shuffles, factorCalls, factorWins, highWater, final)
	}
	for _, t := range [2]*telemetry.Metrics{r.tel, r.aux} {
		if t == nil {
			continue
		}
		t.Gathers.Add(gathers)
		t.Shuffles.Add(shuffles)
		t.FactorCalls.Add(factorCalls)
		t.FactorWins.Add(factorWins)
		t.ActiveHighWater.Observe(int64(highWater))
		t.ActiveFinal.Observe(int64(final))
	}
}

// Procs reports the configured multicore width.
func (r *Runner) Procs() int { return r.procs }

// Final returns the state reached from start after consuming input.
func (r *Runner) Final(input []byte, start fsm.State) fsm.State {
	r.noteEntry(len(input))
	if r.strategy == Sequential {
		return r.d.RunUnrolled(input, start)
	}
	if r.useMulticore(len(input)) {
		return r.finalMulticore(input, start)
	}
	return r.finalSingle(input, start, nil)
}

// Accepts reports whether the machine accepts input from its start
// state.
func (r *Runner) Accepts(input []byte) bool {
	return r.d.Accepting(r.Final(input, r.d.Start()))
}

// Run consumes input from start, invoking phi for every symbol with the
// position, symbol, and reached state, and returns the final state.
// When the Runner is multicore, chunks invoke phi concurrently and out
// of order across chunks (the paper's Mealy assumption, §2.1); phi must
// be safe for concurrent use in that case.
func (r *Runner) Run(input []byte, start fsm.State, phi fsm.Phi) fsm.State {
	if phi == nil {
		return r.Final(input, start)
	}
	r.noteEntry(len(input))
	if r.strategy == Sequential {
		return r.d.RunMealy(input, start, phi)
	}
	if r.useMulticore(len(input)) {
		return r.runMulticore(input, start, phi)
	}
	return r.runSingle(input, 0, start, phi)
}

// CompositionVector returns the composed transition function of the
// whole input: element q is the state reached from start state q. This
// is the quantity phase 1 of the multicore algorithm computes per
// chunk.
func (r *Runner) CompositionVector(input []byte) []fsm.State {
	r.noteEntry(len(input))
	if r.useMulticore(len(input)) {
		return r.compVecMulticore(input)
	}
	return r.compVecSingle(input, nil)
}

func (r *Runner) useMulticore(inputLen int) bool {
	return r.procs > 1 && inputLen >= 2*r.minChunk
}

// finalSingle computes the final state for one start without the
// multicore machinery. rs, when non-nil, collects this pass's
// accounting for the active trace.
func (r *Runner) finalSingle(input []byte, start fsm.State, rs *runStats) fsm.State {
	switch r.strategy {
	case RangeCoalesced:
		return r.rcFinal(input, start, rs)
	case RangeConvergence:
		return r.rcConvFinal(input, start, rs)
	case Convergence:
		if r.colsB != nil {
			return r.convFinalBytes(input, start, rs)
		}
		return r.convFinal16(input, start, rs)
	case BaseILP:
		vec := r.compVecSingle(input, rs)
		return vec[start]
	default: // Base
		vec := r.compVecSingle(input, rs)
		return vec[start]
	}
}

func (r *Runner) compVecSingle(input []byte, rs *runStats) []fsm.State {
	switch r.strategy {
	case Sequential:
		// Sequential has no enumerative vector; derive it by running
		// from every state (used only for oracle comparisons).
		vec := make([]fsm.State, r.n)
		for q := range vec {
			vec[q] = r.d.Run(input, fsm.State(q))
		}
		return vec
	case RangeCoalesced:
		return r.rcCompVec(input, rs)
	case RangeConvergence:
		return r.rcConvCompVec(input, rs)
	case Convergence:
		if r.colsB != nil {
			return r.convCompVecBytes(input, rs)
		}
		return r.convCompVec16(input, rs)
	case BaseILP:
		if r.colsB != nil {
			return bytesToStates(r.baseILPVecBytes(input, rs))
		}
		return r.baseILPVec16(input, rs)
	default: // Base
		if r.colsB != nil {
			return bytesToStates(r.baseVecBytes(input, rs))
		}
		return r.baseVec16(input, rs)
	}
}

// runSingle runs with φ on one goroutine; off is the global position of
// input[0].
func (r *Runner) runSingle(input []byte, off int, start fsm.State, phi fsm.Phi) fsm.State {
	switch r.strategy {
	case RangeCoalesced, RangeConvergence:
		// φ needs a per-step state for one start entry; the plain
		// coalesced loop provides it (convergence on the name vector
		// does not change the observable outputs).
		return r.rcRun(input, off, start, phi)
	case Convergence:
		if r.colsB != nil {
			return r.convRunBytes(input, off, start, phi)
		}
		return r.convRun16(input, off, start, phi)
	default: // Base, BaseILP
		if r.colsB != nil {
			return r.baseRunBytes(input, off, start, phi)
		}
		return r.baseRun16(input, off, start, phi)
	}
}

func bytesToStates(b []byte) []fsm.State {
	out := make([]fsm.State, len(b))
	for i, v := range b {
		out[i] = fsm.State(v)
	}
	return out
}
