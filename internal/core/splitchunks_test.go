package core

import (
	"math/rand"
	"testing"
)

// TestSplitChunksTable pins the chunking invariants across the edge
// cases a generator-minded review surfaces: zero-length input, input
// shorter than the worker count, inputs right at the minChunk
// boundaries, and the ordinary large case.
func TestSplitChunksTable(t *testing.T) {
	cases := []struct {
		name       string
		n          int
		procs      int
		minChunk   int
		wantChunks int // 0 = don't pin the count, just the invariants
	}{
		{"zero-input", 0, 4, 1, 1},
		{"negative-input", -3, 4, 1, 1},
		{"one-byte", 1, 4, 1, 1},
		{"shorter-than-workers", 3, 8, 1, 3},
		{"equal-to-workers", 8, 8, 1, 8},
		{"below-min-chunk", 63, 4, 64, 1},
		{"at-min-chunk", 64, 4, 64, 1},
		{"two-min-chunks", 128, 4, 64, 2},
		{"all-procs-engage", 256, 4, 64, 4},
		{"uneven-split", 1000, 3, 64, 3},
		{"single-proc", 1 << 16, 1, 64, 1},
		{"zero-min-chunk-guard", 5, 16, 0, 5},
		{"large", 1 << 20, 8, 4096, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &Runner{procs: tc.procs, minChunk: tc.minChunk}
			chunks := r.splitChunks(tc.n)
			if len(chunks) == 0 {
				t.Fatal("no chunks")
			}
			if tc.wantChunks > 0 && len(chunks) != tc.wantChunks {
				t.Errorf("got %d chunks, want %d: %v", len(chunks), tc.wantChunks, chunks)
			}
			n := tc.n
			if n < 0 {
				n = 0
			}
			pos := 0
			for i, ch := range chunks {
				if ch[0] != pos {
					t.Fatalf("chunk %d starts at %d, want %d: %v", i, ch[0], pos, chunks)
				}
				if ch[1] < ch[0] {
					t.Fatalf("chunk %d inverted: %v", i, ch)
				}
				if n > 0 && ch[1] == ch[0] {
					t.Fatalf("chunk %d empty with %d input bytes: %v", i, n, chunks)
				}
				if tc.minChunk > 0 && len(chunks) > 1 && ch[1]-ch[0] < tc.minChunk {
					t.Fatalf("chunk %d is %d bytes, below minChunk %d: %v", i, ch[1]-ch[0], tc.minChunk, chunks)
				}
				pos = ch[1]
			}
			if pos != n {
				t.Fatalf("chunks cover %d of %d bytes: %v", pos, n, chunks)
			}
		})
	}
}

// TestSplitChunksRandomized sweeps random (n, procs, minChunk) triples
// for the same invariants.
func TestSplitChunksRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	trials := 2000
	if testing.Short() {
		trials = 200
	}
	for i := 0; i < trials; i++ {
		n := rng.Intn(1 << 14)
		r := &Runner{procs: 1 + rng.Intn(32), minChunk: rng.Intn(512)}
		chunks := r.splitChunks(n)
		if len(chunks) == 0 {
			t.Fatalf("n=%d procs=%d minChunk=%d: no chunks", n, r.procs, r.minChunk)
		}
		pos := 0
		for _, ch := range chunks {
			if ch[0] != pos || ch[1] < ch[0] || (n > 0 && ch[1] == ch[0]) {
				t.Fatalf("n=%d procs=%d minChunk=%d: bad chunks %v", n, r.procs, r.minChunk, chunks)
			}
			pos = ch[1]
		}
		if pos != n {
			t.Fatalf("n=%d procs=%d minChunk=%d: cover %d: %v", n, r.procs, r.minChunk, pos, chunks)
		}
	}
}
