package core

import (
	"context"
	"sync"
	"sync/atomic"

	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
	"dpfsm/internal/trace"
)

// Cooperative cancellation. The enumerative strategies are pure
// compute loops with no blocking points, so cancellation is
// cooperative and chunked: the *Ctx entry points fold the input
// through the runner in blocks of ctxCheckBytes and poll ctx.Err()
// between blocks, and the multicore phases additionally poll before
// every chunk they pick up. A context that can never be canceled
// (context.Background, context.TODO) and carries no trace routes to
// the uninstrumented fast paths, so the Ctx variants cost nothing
// when neither cancellation nor tracing is in play.
//
// Folding is exact, not approximate: transition-function composition
// is associative, so running block-by-block from the carried state
// (Final) or gather-merging per-block composition vectors (phase 1)
// produces bit-identical results to the one-shot loops. The only
// cost is that the convergence strategies restart from the n-wide
// identity at each block boundary; with 64 KiB blocks and machines
// that converge within a few hundred symbols (§5.2) the re-widening
// overhead is well under a percent.
const ctxCheckBytes = 64 << 10

// ctxIsPlain reports whether ctx carries neither a cancellation
// signal nor a trace, i.e. the Ctx entry points may route to the
// uninstrumented fast paths.
func ctxIsPlain(ctx context.Context) bool {
	if ctx == nil {
		return true
	}
	return ctx.Done() == nil && trace.FromContext(ctx) == nil
}

// FinalCtx is Final with deadline/cancellation support: it returns
// early with ctx.Err() when ctx is canceled, checking between input
// blocks (single core) and chunks (multicore). On error the returned
// state is the state reached at the last completed block boundary.
// If ctx carries a trace (trace.NewContext), per-phase spans with the
// run's convergence and shuffle accounting are attached to it.
func (r *Runner) FinalCtx(ctx context.Context, input []byte, start fsm.State) (fsm.State, error) {
	if ctxIsPlain(ctx) {
		return r.Final(input, start), nil
	}
	if err := ctx.Err(); err != nil {
		return start, err
	}
	r.noteEntry(len(input))
	if r.strategy != Sequential && r.useMulticore(len(input)) {
		return r.finalMulticoreCtx(ctx, input, start)
	}
	return r.finalSingleCtx(ctx, input, start)
}

// AcceptsCtx is Accepts with cancellation; ok is meaningless when err
// is non-nil.
func (r *Runner) AcceptsCtx(ctx context.Context, input []byte) (bool, error) {
	final, err := r.FinalCtx(ctx, input, r.d.Start())
	if err != nil {
		return false, err
	}
	return r.d.Accepting(final), nil
}

// finalSingleCtx folds the input block-by-block through the
// single-core strategy, carrying the reached state across blocks.
func (r *Runner) finalSingleCtx(ctx context.Context, input []byte, start fsm.State) (fsm.State, error) {
	_, sp := trace.Start(ctx, SpanSingle)
	var rs *runStats
	if sp != nil {
		rs = newRunStats()
		sp.SetAttrs(
			trace.Str(AttrStrategy, r.strategy.String()),
			trace.Int(AttrBytes, int64(len(input))),
		)
	}
	q := start
	for off := 0; off < len(input); off += ctxCheckBytes {
		if err := ctx.Err(); err != nil {
			sp.End()
			return q, err
		}
		hi := off + ctxCheckBytes
		if hi > len(input) {
			hi = len(input)
		}
		if r.strategy == Sequential {
			q = r.d.RunUnrolled(input[off:hi], q)
		} else if rs == nil {
			q = r.finalSingle(input[off:hi], q, nil)
		} else {
			brs := newRunStats()
			q = r.finalSingle(input[off:hi], q, brs)
			rs.merge(brs, off)
		}
	}
	if sp != nil {
		sp.SetAttrs(rs.attrs()...)
		sp.End()
	}
	return q, nil
}

// compVecCtx computes the composition vector of input with ctx polls
// between sub-blocks, gather-merging the per-block vectors. stop is a
// shared early-exit flag so sibling phase-1 goroutines bail as soon
// as any of them observes cancellation; the return is nil on abort.
// rs, when non-nil, accumulates the chunk's accounting (block-merge
// gathers included) with positions relative to the chunk start.
func (r *Runner) compVecCtx(ctx context.Context, input []byte, stop *atomic.Bool, rs *runStats) []fsm.State {
	var total []fsm.State
	for off := 0; off < len(input); off += ctxCheckBytes {
		if stop.Load() {
			return nil
		}
		if ctx.Err() != nil {
			stop.Store(true)
			return nil
		}
		hi := off + ctxCheckBytes
		if hi > len(input) {
			hi = len(input)
		}
		var v []fsm.State
		if rs == nil {
			v = r.compVecSingle(input[off:hi], nil)
		} else {
			brs := newRunStats()
			v = r.compVecSingle(input[off:hi], brs)
			rs.merge(brs, off)
		}
		if total == nil {
			total = v
		} else {
			gather.Into(total, total, v)
			if rs != nil {
				rs.gathers++
			}
			if t := r.tel; t != nil {
				t.Gathers.Inc()
			}
		}
	}
	return total
}

// phase1ChunkSpan opens the per-chunk phase-1 span under parent, or
// returns (nil, nil) when untraced.
func phase1ChunkSpan(parent *trace.Span, p, lo, hi int) (*trace.Span, *runStats) {
	if parent == nil {
		return nil, nil
	}
	sp := parent.Child(SpanPhase1Chunk)
	sp.SetAttrs(
		trace.Int(AttrChunk, int64(p)),
		trace.Int(AttrOffset, int64(lo)),
		trace.Int(AttrBytes, int64(hi-lo)),
	)
	return sp, newRunStats()
}

// endChunkSpan closes a per-chunk span, attaching its stats.
func endChunkSpan(sp *trace.Span, rs *runStats) {
	if sp == nil {
		return
	}
	if rs != nil {
		sp.SetAttrs(rs.attrs()...)
	}
	sp.End()
}

// finalMulticoreCtx is finalMulticore with cancellable phase 1 and
// per-chunk tracing.
func (r *Runner) finalMulticoreCtx(ctx context.Context, input []byte, start fsm.State) (fsm.State, error) {
	chunks := r.splitChunks(len(input))
	r.noteMulticore(chunks)
	_, sp := trace.Start(ctx, SpanMulticore)
	if sp != nil {
		sp.SetAttrs(
			trace.Str(AttrStrategy, r.strategy.String()),
			trace.Int(AttrBytes, int64(len(input))),
			trace.Int(AttrChunks, int64(len(chunks))),
		)
		defer sp.End()
	}
	tel := r.tel
	vecs := make([][]fsm.State, len(chunks))
	var stop atomic.Bool
	var wg sync.WaitGroup
	for p, ch := range chunks {
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			if tel != nil {
				defer tel.Phase1Time.Start().Stop()
			}
			csp, crs := phase1ChunkSpan(sp, p, lo, hi)
			vecs[p] = r.compVecCtx(ctx, input[lo:hi], &stop, crs)
			endChunkSpan(csp, crs)
		}(p, ch[0], ch[1])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return start, err
	}
	var p2 *trace.Span
	if sp != nil {
		p2 = sp.Child(SpanPhase2)
	}
	st := start
	for _, vec := range vecs {
		st = vec[st]
	}
	p2.End()
	if tel != nil {
		tel.Phase3Skips.Inc()
	}
	return st, nil
}

// RunChunkedCtx is RunChunked with deadline/cancellation: phase-1
// workers poll ctx between sub-blocks and phase-3 workers poll before
// each chunk. On cancellation some chunks may already have run f (in
// particular chunk 0, whose phase 3 overlaps phase 1), so callers
// must treat f's side effects as partial when err is non-nil; the
// returned state is then unspecified. A trace on ctx receives the
// full Figure 5 span decomposition: chunk 0's overlapped phase 3,
// per-chunk phase-1 spans, the sequential phase-2 scan, and the
// phase-3 re-runs.
func (r *Runner) RunChunkedCtx(ctx context.Context, input []byte, start fsm.State, f ChunkFunc) (fsm.State, error) {
	if ctxIsPlain(ctx) {
		return r.RunChunked(input, start, f), nil
	}
	if err := ctx.Err(); err != nil {
		return start, err
	}
	r.noteEntry(len(input))
	if len(input) == 0 {
		return start, nil
	}
	if !r.useMulticore(len(input)) {
		_, sp := trace.Start(ctx, SpanChunked)
		if sp != nil {
			sp.SetAttrs(
				trace.Str(AttrStrategy, r.strategy.String()),
				trace.Int(AttrBytes, int64(len(input))),
				trace.Int(AttrChunks, 1),
			)
			defer sp.End()
		}
		return f(0, input, start), nil
	}
	chunks := r.splitChunks(len(input))
	r.noteMulticore(chunks)
	tel := r.tel
	_, sp := trace.Start(ctx, SpanChunked)
	if sp != nil {
		sp.SetAttrs(
			trace.Str(AttrStrategy, r.strategy.String()),
			trace.Int(AttrBytes, int64(len(input))),
			trace.Int(AttrChunks, int64(len(chunks))),
		)
		defer sp.End()
	}

	// Same overlap as runChunked: chunk 0's phase 3 runs alongside the
	// enumerative phase 1 of the rest.
	var stop atomic.Bool
	var c0Final fsm.State
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if tel != nil {
			defer tel.Phase3Time.Start().Stop()
		}
		var c0sp *trace.Span
		if sp != nil {
			c0sp = sp.Child(SpanPhase3Chunk0)
			c0sp.SetAttrs(
				trace.Int(AttrChunk, 0),
				trace.Int(AttrOffset, 0),
				trace.Int(AttrBytes, int64(chunks[0][1]-chunks[0][0])),
			)
		}
		c0Final = f(0, input[chunks[0][0]:chunks[0][1]], start)
		c0sp.End()
	}()
	vecs := make([][]fsm.State, len(chunks))
	for p := 1; p < len(chunks); p++ {
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			if tel != nil {
				defer tel.Phase1Time.Start().Stop()
			}
			csp, crs := phase1ChunkSpan(sp, p, lo, hi)
			vecs[p] = r.compVecCtx(ctx, input[lo:hi], &stop, crs)
			endChunkSpan(csp, crs)
		}(p, chunks[p][0], chunks[p][1])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return start, err
	}

	var p2 *trace.Span
	if sp != nil {
		p2 = sp.Child(SpanPhase2)
	}
	st := c0Final
	starts := make([]fsm.State, len(chunks))
	for p := 1; p < len(chunks); p++ {
		starts[p] = st
		st = vecs[p][st]
	}
	p2.End()
	for p := 1; p < len(chunks); p++ {
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			if tel != nil {
				defer tel.Phase3Time.Start().Stop()
			}
			var p3 *trace.Span
			if sp != nil {
				p3 = sp.Child(SpanPhase3Chunk)
				p3.SetAttrs(
					trace.Int(AttrChunk, int64(p)),
					trace.Int(AttrOffset, int64(lo)),
					trace.Int(AttrBytes, int64(hi-lo)),
				)
			}
			f(lo, input[lo:hi], starts[p])
			p3.End()
		}(p, chunks[p][0], chunks[p][1])
	}
	wg.Wait()
	return st, ctx.Err()
}
