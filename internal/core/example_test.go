package core_test

import (
	"fmt"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
)

// Build the paper's Figure 1 machine: C-comment recognition over the
// alphabet {'/', '*', other}.
func commentMachine() *fsm.DFA {
	d := fsm.MustNew(4, 3)
	set := func(sym byte, targets ...fsm.State) {
		for q, r := range targets {
			d.SetTransition(fsm.State(q), sym, r)
		}
	}
	set(0, 1, 1, 2, 0) // '/'
	set(1, 0, 2, 3, 3) // '*'
	set(2, 0, 0, 2, 2) // other
	d.SetAccepting(0, true)
	return d
}

func encode(src string) []byte {
	out := make([]byte, len(src))
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '/':
			out[i] = 0
		case '*':
			out[i] = 1
		default:
			out[i] = 2
		}
	}
	return out
}

func ExampleNew() {
	d := commentMachine()
	r, err := core.New(d) // Auto strategy
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Strategy(), r.Accepts(encode("x = 1; /* note */")))
	// Output: range true
}

func ExampleWithStrategy() {
	d := commentMachine()
	input := encode("/* a */ b /* c */")
	for _, s := range []core.Strategy{core.Sequential, core.Convergence, core.RangeCoalesced} {
		r, err := core.New(d, core.WithStrategy(s))
		if err != nil {
			panic(err)
		}
		fmt.Println(s, r.Final(input, d.Start()))
	}
	// Output:
	// sequential 0
	// convergence 0
	// range 0
}

func ExampleRunner_Run() {
	d := commentMachine()
	r, _ := core.New(d, core.WithStrategy(core.Convergence))
	opens := 0
	prev := d.Start()
	r.Run(encode("a /*b*/ c /*d*/"), d.Start(), func(pos int, sym byte, q fsm.State) {
		if prev != 2 && prev != 3 && q == 2 {
			opens++
		}
		prev = q
	})
	fmt.Println("comments opened:", opens)
	// Output: comments opened: 2
}

func ExampleRunner_CompositionVector() {
	d := commentMachine()
	r, _ := core.New(d, core.WithStrategy(core.Convergence))
	// The composed transition function of "/*": where each start state
	// lands after those two symbols.
	fmt.Println(r.CompositionVector(encode("/*")))
	// Output: [2 2 3 0]
}

func ExampleRunner_NewStream() {
	d := commentMachine()
	r, _ := core.New(d)
	s := r.NewStream(nil, 1024)
	s.Write(encode("int x; /* half a "))
	s.Write(encode("comment */ done"))
	fmt.Println(s.Accepting())
	// Output: true
}
