package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dpfsm/internal/fsm"
	"dpfsm/internal/telemetry"
)

// TestSnapshotAgreesWithProfile is the acceptance check for the live
// telemetry layer: on seed-style workloads, the runtime's own shuffle
// accounting must agree with the offline ProfileInput replay to within
// ±10%. The two models are not identical — ProfileInput factors
// eagerly every symbol, the runtime factors on the §5.2 heuristics —
// so exact equality is not expected, but on converging machines both
// collapse to the same per-symbol block counts almost immediately.
func TestSnapshotAgreesWithProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	cases := []struct {
		name     string
		d        *fsm.DFA
		strategy Strategy
		model    func(Profile) float64
	}{
		{"converging-40-conv", fsm.RandomConverging(rng, 40, 6, 5, 0.3), Convergence, Profile.ConvPerSymbol},
		{"converging-200-conv", fsm.RandomConverging(rng, 200, 8, 9, 0.3), Convergence, Profile.ConvPerSymbol},
		{"converging-600-conv16", fsm.RandomConverging(rng, 600, 8, 11, 0.3), Convergence, Profile.ConvPerSymbol},
		{"converging-40-range", fsm.RandomConverging(rng, 40, 6, 5, 0.3), RangeCoalesced, Profile.RangePerSymbol},
		{"converging-200-range", fsm.RandomConverging(rng, 200, 8, 9, 0.3), RangeCoalesced, Profile.RangePerSymbol},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			input := tc.d.RandomInput(rng, 100_000)
			var m telemetry.Metrics
			r := newRunner(t, tc.d, tc.strategy, WithTelemetry(&m))
			r.Final(input, tc.d.Start())

			snap := m.Snapshot()
			if snap.Runs != 1 || snap.Symbols != int64(len(input)) {
				t.Fatalf("entry accounting: %+v", snap)
			}
			want := tc.model(ProfileInput(tc.d, input))
			got := snap.ShufflesPerSymbol
			if want == 0 {
				t.Fatal("profile model returned 0")
			}
			if rel := math.Abs(got-want) / want; rel > 0.10 {
				t.Errorf("shuffles/symbol: live %v vs profile %v (%.1f%% apart, want ≤10%%)",
					got, want, 100*rel)
			}
		})
	}
}

func TestTelemetryRunnerCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	d := fsm.RandomConverging(rng, 64, 6, 5, 0.3)
	input := d.RandomInput(rng, 20_000)
	var m telemetry.Metrics
	r := newRunner(t, d, Convergence, WithTelemetry(&m))
	if r.Telemetry() != &m {
		t.Fatal("Telemetry() should return the attached sink")
	}
	r.Final(input, d.Start())
	snap := m.Snapshot()
	if snap.StrategySelected["convergence"] != 1 {
		t.Errorf("StrategySelected = %v", snap.StrategySelected)
	}
	if snap.StrategyRuns["convergence"] != 1 {
		t.Errorf("StrategyRuns = %v", snap.StrategyRuns)
	}
	if snap.ActiveHighWater != 64 {
		t.Errorf("ActiveHighWater = %d, want 64 (the state count)", snap.ActiveHighWater)
	}
	// RandomConverging machines collapse well under 16 active states.
	if snap.ActiveFinalMax <= 0 || snap.ActiveFinalMax > 16 {
		t.Errorf("ActiveFinalMax = %d, want in (0,16]", snap.ActiveFinalMax)
	}
	if snap.FactorCalls == 0 || snap.FactorWins == 0 || snap.FactorWins > snap.FactorCalls {
		t.Errorf("factor accounting: calls %d wins %d", snap.FactorCalls, snap.FactorWins)
	}
	if snap.Gathers == 0 || snap.Shuffles == 0 {
		t.Errorf("gather accounting: %+v", snap)
	}

	// A second runner sharing the sink accumulates into the same
	// counters under its own strategy label.
	r2 := newRunner(t, d, RangeCoalesced, WithTelemetry(&m))
	r2.Final(input, d.Start())
	snap = m.Snapshot()
	if snap.Runs != 2 || snap.StrategyRuns["range"] != 1 {
		t.Errorf("shared sink: %+v", snap)
	}
}

func TestTelemetryMulticorePhases(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	d := fsm.RandomConverging(rng, 40, 6, 5, 0.3)
	input := d.RandomInput(rng, 400_000)
	var m telemetry.Metrics
	r := newRunner(t, d, Convergence, WithTelemetry(&m), WithProcs(4), WithMinChunk(1<<12))

	// Final-state query: phases 1–2 only, phase 3 skipped (§3.4).
	want := d.Run(input, d.Start())
	if got := r.Final(input, d.Start()); got != want {
		t.Fatalf("Final = %d, want %d", got, want)
	}
	snap := m.Snapshot()
	if snap.MulticoreRuns != 1 || snap.Chunks != 4 {
		t.Fatalf("multicore accounting: %+v", snap)
	}
	if snap.Phase3Skips != 1 {
		t.Errorf("Phase3Skips = %d, want 1", snap.Phase3Skips)
	}
	if snap.Phase1.Count != 4 || snap.Phase1.TotalNs == 0 {
		t.Errorf("phase1 accounting: %+v", snap.Phase1)
	}
	if snap.Phase2.Count != 1 {
		t.Errorf("phase2 accounting: %+v", snap.Phase2)
	}
	if snap.ChunkBytesP50 == 0 {
		t.Errorf("ChunkBytesP50 = 0")
	}

	// φ-bearing run: phase 3 re-runs every chunk (chunk 0's pass runs
	// concurrently with phase 1 but is still phase-3 work).
	var count int
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	r.Run(input, d.Start(), func(pos int, sym byte, q fsm.State) {
		<-mu
		count++
		mu <- struct{}{}
	})
	snap = m.Snapshot()
	if count != len(input) {
		t.Fatalf("phi invoked %d times, want %d", count, len(input))
	}
	if snap.MulticoreRuns != 2 {
		t.Errorf("MulticoreRuns = %d, want 2", snap.MulticoreRuns)
	}
	if snap.Phase3.Count != 4 {
		t.Errorf("phase3 count = %d, want 4 chunks", snap.Phase3.Count)
	}
	if snap.Phase3Skips != 1 {
		t.Errorf("Phase3Skips = %d, want still 1", snap.Phase3Skips)
	}
}

func TestTelemetryStreamCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	d := fsm.RandomConverging(rng, 30, 4, 5, 0.3)
	input := d.RandomInput(rng, 10_000)
	var m telemetry.Metrics
	r := newRunner(t, d, Convergence, WithTelemetry(&m))
	s := r.NewStream(nil, 1024)
	s.Write(input)
	s.State()
	snap := m.Snapshot()
	if snap.StreamBytes != int64(len(input)) {
		t.Errorf("StreamBytes = %d, want %d", snap.StreamBytes, len(input))
	}
	// 10_000 bytes in 1024-blocks: 9 full flushes + the tail.
	if snap.StreamBlocks != 10 {
		t.Errorf("StreamBlocks = %d, want 10", snap.StreamBlocks)
	}
}

// TestTelemetryDisabledIsInert pins the zero-overhead contract: no
// sink attached means no counters anywhere, and every path (single,
// multicore, stream, φ) still runs correctly with a nil tel.
func TestTelemetryDisabledIsInert(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	d := fsm.RandomConverging(rng, 40, 6, 5, 0.3)
	input := d.RandomInput(rng, 100_000)
	for _, strat := range []Strategy{Base, BaseILP, Convergence, RangeCoalesced, RangeConvergence, Sequential} {
		r := newRunner(t, d, strat, WithProcs(4), WithMinChunk(1<<12))
		if r.Telemetry() != nil {
			t.Fatal("telemetry should default to nil")
		}
		want := d.Run(input, d.Start())
		if got := r.Final(input, d.Start()); got != want {
			t.Fatalf("%v: Final = %d want %d", strat, got, want)
		}
		r.Run(input, d.Start(), func(int, byte, fsm.State) {})
		s := r.NewStream(nil, 4096)
		s.Write(input)
		if got := s.State(); got != want {
			t.Fatalf("%v: stream state = %d want %d", strat, got, want)
		}
	}
}

// TestSplitChunksMinChunkGuard is the regression test for the
// divide-by-zero: a Runner whose minChunk ended up non-positive must
// neither panic nor emit empty chunks.
func TestSplitChunksMinChunkGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	d := fsm.RandomConverging(rng, 10, 3, 3, 0.3)
	r := newRunner(t, d, Convergence, WithProcs(4))

	// New must clamp a degenerate configured value...
	if r.minChunk < 1 {
		t.Fatalf("New left minChunk = %d", r.minChunk)
	}
	// ...and splitChunks must guard even a directly corrupted field.
	r.minChunk = 0
	for _, n := range []int{1, 3, 8, 1000} {
		chunks := r.splitChunks(n) // would panic before the guard
		if len(chunks) == 0 {
			t.Fatalf("n=%d: no chunks", n)
		}
		pos := 0
		for _, ch := range chunks {
			if ch[0] != pos || ch[1] <= ch[0] {
				t.Fatalf("n=%d: bad chunk %v (chunks %v)", n, ch, chunks)
			}
			pos = ch[1]
		}
		if pos != n {
			t.Fatalf("n=%d: chunks cover %d bytes", n, pos)
		}
	}

	// WithMinChunk ignores non-positive values (documented behaviour):
	// the default must survive.
	r2 := newRunner(t, d, Convergence, WithProcs(2), WithMinChunk(-7))
	if r2.minChunk != defaultMinChunk {
		t.Errorf("WithMinChunk(-7) changed minChunk to %d", r2.minChunk)
	}
	// And a multicore run with a tiny input must stay correct.
	in := d.RandomInput(rng, 64)
	r.minChunk = 1
	if got, want := r.Final(in, d.Start()), d.Run(in, d.Start()); got != want {
		t.Errorf("tiny multicore run: %d want %d", got, want)
	}
}

func TestTelemetryExpvarAndPrometheusEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(506))
	d := fsm.RandomConverging(rng, 40, 6, 5, 0.3)
	var m telemetry.Metrics
	r := newRunner(t, d, Auto, WithTelemetry(&m))
	r.Accepts(d.RandomInput(rng, 5000))
	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{"dpfsm_runs_total 1", "dpfsm_shuffles_per_symbol"} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
	if !strings.Contains(m.String(), `"shuffles_per_symbol"`) {
		t.Error("expvar JSON missing shuffles_per_symbol")
	}
}
