package core

import (
	"encoding/json"
	"testing"

	"dpfsm/internal/fsm"
)

// These tests pin the contract around the Auto sentinel: "auto" is a
// first-class *request* on every text surface (flags, JSON bodies),
// but it must never survive into a compiled or serialized plan — a
// plan IS a concrete strategy's tables, so Auto leaking into one would
// make its fingerprint ambiguous and its reload behavior
// environment-dependent.

// autoTestMachine builds a small machine on which Auto resolves to
// RangeCoalesced (every range is ≤ the shuffle width).
func autoTestMachine(t *testing.T) *fsm.DFA {
	t.Helper()
	d := fsm.MustNew(4, 2)
	d.SetColumn(0, []fsm.State{1, 2, 3, 3})
	d.SetColumn(1, []fsm.State{0, 0, 0, 0})
	d.SetAccepting(3, true)
	return d
}

func TestParseStrategyRoundTripsEveryName(t *testing.T) {
	for s := Auto; s <= RangeConvergence; s++ {
		got, err := ParseStrategy(s.String())
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", s.String(), err)
		}
		if got != s {
			t.Errorf("ParseStrategy(%q) = %v, want %v", s.String(), got, s)
		}
		text, err := s.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%v): %v", s, err)
		}
		var back Strategy
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != s {
			t.Errorf("text round trip %q: got %v, want %v", text, back, s)
		}
	}
}

func TestUnmarshalEmptyTextIsAuto(t *testing.T) {
	// Omitted JSON fields mean "pick for me": the zero value and the
	// empty string both decode to Auto.
	var s Strategy = RangeCoalesced
	if err := s.UnmarshalText(nil); err != nil {
		t.Fatalf("UnmarshalText(nil): %v", err)
	}
	if s != Auto {
		t.Errorf("empty text decoded to %v, want Auto", s)
	}
	var doc struct {
		Strategy Strategy `json:"strategy,omitempty"`
	}
	if err := json.Unmarshal([]byte(`{}`), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Strategy != Auto {
		t.Errorf("omitted JSON field decoded to %v, want Auto", doc.Strategy)
	}
}

func TestAutoNeverLeaksIntoPlans(t *testing.T) {
	d := autoTestMachine(t)
	p, err := CompilePlan(d) // no WithStrategy: the Auto path
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy() == Auto {
		t.Fatal("compiled plan stores Auto; plans must store a concrete strategy")
	}
	if p.AutoReason() == "" {
		t.Error("Auto-compiled plan should record the selection reason")
	}

	// The serialized form must carry the concrete strategy too, and the
	// reload must agree with the original bit for bit.
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	q, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.Strategy() == Auto {
		t.Fatal("deserialized plan stores Auto")
	}
	if q.Strategy() != p.Strategy() || q.Fingerprint() != p.Fingerprint() {
		t.Fatalf("round trip changed identity: %v/%s -> %v/%s",
			p.Strategy(), p.Fingerprint(), q.Strategy(), q.Fingerprint())
	}

	// An explicit WithStrategy(Auto) is the same request as the default.
	p2, err := CompilePlan(d, WithStrategy(Auto))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Strategy() != p.Strategy() || p2.Fingerprint() != p.Fingerprint() {
		t.Errorf("WithStrategy(Auto) compiled %v/%s, want %v/%s",
			p2.Strategy(), p2.Fingerprint(), p.Strategy(), p.Fingerprint())
	}
}

func TestPlanStatsAccessors(t *testing.T) {
	d := autoTestMachine(t)
	p, err := CompilePlan(d)
	if err != nil {
		t.Fatal(err)
	}
	if p.States() != 4 {
		t.Errorf("States() = %d, want 4", p.States())
	}
	if p.MaxRange() <= 0 || p.MaxRange() > 4 {
		t.Errorf("MaxRange() = %d, want in (0, 4]", p.MaxRange())
	}
}
