package core

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"dpfsm/internal/fsm"
	"dpfsm/internal/telemetry"
	"dpfsm/internal/trace"
)

// collectSpans flattens the trace's spans into name → views.
func collectSpans(tr *trace.Trace) map[string][]trace.SpanView {
	out := map[string][]trace.SpanView{}
	for _, v := range tr.Spans() {
		out[v.Name] = append(out[v.Name], v)
	}
	return out
}

func attrInt(t *testing.T, v trace.SpanView, key string) int64 {
	t.Helper()
	a, ok := trace.FindAttr(v.Attrs, key)
	if !ok {
		t.Fatalf("span %s missing attr %q (attrs %v)", v.Name, key, v.Attrs)
	}
	return a.Int64()
}

// TestTraceSingleCoreStatsMatchTelemetry is the consistency check the
// tracing layer exists to honor: the per-run accounting attached to
// spans must be the *same numbers* the hot loops flush into the
// aggregate telemetry — not a parallel estimate.
func TestTraceSingleCoreStatsMatchTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	for _, strat := range []Strategy{Convergence, RangeCoalesced, RangeConvergence, Base} {
		t.Run(strat.String(), func(t *testing.T) {
			d := fsm.RandomConverging(rng, 60, 6, 5, 0.3)
			input := d.RandomInput(rng, 150_000)
			var m telemetry.Metrics
			r := newRunner(t, d, strat, WithTelemetry(&m), WithProcs(1))

			tr := trace.New()
			ctx := trace.NewContext(context.Background(), tr)
			got, err := r.FinalCtx(ctx, input, d.Start())
			if err != nil {
				t.Fatal(err)
			}
			tr.Finish()
			// Snapshot before the untraced comparison run so the
			// aggregate holds exactly the traced run's accounting.
			snap := m.Snapshot()
			if want := r.Final(input, d.Start()); got != want {
				t.Fatalf("traced FinalCtx = %d, untraced Final = %d", got, want)
			}

			spans := collectSpans(tr)
			if len(spans[SpanSingle]) != 1 {
				t.Fatalf("want one %s span, got %v", SpanSingle, spans)
			}
			sp := spans[SpanSingle][0]
			if sp.Duration <= 0 {
				t.Error("span has no duration")
			}
			checks := []struct {
				key  string
				want int64
			}{
				{AttrGathers, snap.Gathers},
				{AttrShuffles, snap.Shuffles},
				{AttrFactorCalls, snap.FactorCalls},
				{AttrFactorWins, snap.FactorWins},
			}
			for _, c := range checks {
				if got := attrInt(t, sp, c.key); got != c.want {
					t.Errorf("%s: span %d, telemetry %d", c.key, got, c.want)
				}
			}
			if got := attrInt(t, sp, AttrBytes); got != int64(len(input)) {
				t.Errorf("bytes attr %d, want %d", got, len(input))
			}
			if s, ok := trace.FindAttr(sp.Attrs, AttrStrategy); !ok || s.Text() != strat.String() {
				t.Errorf("strategy attr %v, want %q", sp.Attrs, strat.String())
			}
			if strat == Convergence || strat == RangeConvergence {
				if attrInt(t, sp, AttrConvergedAt) < 0 {
					t.Errorf("%s never converged on a converging machine", strat)
				}
				// A width trajectory exists exactly when factor checks
				// actually shrank the vector (a first-symbol range that
				// starts ≤ 8 wide converges with zero wins).
				if attrInt(t, sp, AttrFactorWins) > 0 {
					if w, ok := trace.FindAttr(sp.Attrs, AttrWidths); !ok || w.Text() == "" {
						t.Error("no width trajectory recorded despite factor wins")
					}
				}
			}
		})
	}
}

// TestTraceMulticorePhaseSpans checks the Figure 5 decomposition: a
// traced multicore run emits per-chunk phase-1 spans whose summed
// accounting equals the aggregate telemetry of the same run, plus a
// phase-2 span.
func TestTraceMulticorePhaseSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	d := fsm.RandomConverging(rng, 60, 6, 5, 0.3)
	input := d.RandomInput(rng, 400_000)
	var m telemetry.Metrics
	r := newRunner(t, d, Convergence, WithTelemetry(&m), WithProcs(4))
	if !r.useMulticore(len(input)) {
		t.Fatal("test input does not trigger multicore")
	}

	tr := trace.New()
	ctx := trace.NewContext(context.Background(), tr)
	got, err := r.FinalCtx(ctx, input, d.Start())
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	snap := m.Snapshot()
	if want := r.Final(input, d.Start()); got != want {
		t.Fatalf("traced = %d, untraced = %d", got, want)
	}

	spans := collectSpans(tr)
	if len(spans[SpanMulticore]) != 1 {
		t.Fatalf("want one %s span, got %v", SpanMulticore, spans)
	}
	root := spans[SpanMulticore][0]
	nChunks := attrInt(t, root, AttrChunks)
	p1 := spans[SpanPhase1Chunk]
	if int64(len(p1)) != nChunks {
		t.Fatalf("%d phase-1 chunk spans, chunks attr %d", len(p1), nChunks)
	}
	if len(spans[SpanPhase2]) != 1 {
		t.Fatalf("want one %s span, got %v", SpanPhase2, spans)
	}

	// Per-chunk accounting sums to the traced run's aggregate (the
	// snapshot was taken before the comparison run); byte extents tile
	// the input.
	var gathers, shuffles, bytes int64
	seen := map[int64]bool{}
	for _, sp := range p1 {
		if sp.Parent != root.ID {
			t.Errorf("chunk span parented to %d, want %d", sp.Parent, root.ID)
		}
		gathers += attrInt(t, sp, AttrGathers)
		shuffles += attrInt(t, sp, AttrShuffles)
		bytes += attrInt(t, sp, AttrBytes)
		seen[attrInt(t, sp, AttrChunk)] = true
	}
	if int64(len(seen)) != nChunks {
		t.Errorf("chunk indices %v, want %d distinct", seen, nChunks)
	}
	if bytes != int64(len(input)) {
		t.Errorf("chunk bytes sum %d, want %d", bytes, len(input))
	}
	if gathers != snap.Gathers {
		t.Errorf("summed chunk gathers %d, telemetry %d", gathers, snap.Gathers)
	}
	if shuffles != snap.Shuffles {
		t.Errorf("summed chunk shuffles %d, telemetry %d", shuffles, snap.Shuffles)
	}
}

// TestTraceRunChunkedSpans checks the chunked-run span tree: chunk 0's
// overlapped phase 3, N-1 phase-1 spans, one phase 2, N-1 phase-3
// re-runs.
func TestTraceRunChunkedSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	d := fsm.RandomConverging(rng, 60, 6, 5, 0.3)
	input := d.RandomInput(rng, 400_000)
	r := newRunner(t, d, Convergence, WithProcs(4))
	if !r.useMulticore(len(input)) {
		t.Fatal("test input does not trigger multicore")
	}

	tr := trace.New()
	ctx := trace.NewContext(context.Background(), tr)
	var steps int64
	got, err := r.RunChunkedCtx(ctx, input, d.Start(), func(off int, chunk []byte, start fsm.State) fsm.State {
		return r.runSingleCount(chunk, off, start, &steps)
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := r.Final(input, d.Start()); got != want {
		t.Fatalf("chunked = %d, Final = %d", got, want)
	}
	tr.Finish()

	spans := collectSpans(tr)
	if len(spans[SpanChunked]) != 1 {
		t.Fatalf("want one %s span, got %v", SpanChunked, spans)
	}
	root := spans[SpanChunked][0]
	n := attrInt(t, root, AttrChunks)
	if len(spans[SpanPhase3Chunk0]) != 1 {
		t.Errorf("chunk-0 phase-3 spans: %d", len(spans[SpanPhase3Chunk0]))
	}
	if int64(len(spans[SpanPhase1Chunk])) != n-1 {
		t.Errorf("phase-1 spans %d, want %d", len(spans[SpanPhase1Chunk]), n-1)
	}
	if len(spans[SpanPhase2]) != 1 {
		t.Errorf("phase-2 spans: %d", len(spans[SpanPhase2]))
	}
	if int64(len(spans[SpanPhase3Chunk])) != n-1 {
		t.Errorf("phase-3 spans %d, want %d", len(spans[SpanPhase3Chunk]), n-1)
	}
}

// runSingleCount is a tiny ChunkFunc helper: run the chunk stepwise
// and count symbols, exercising the φ path under tracing. Chunk
// callbacks run concurrently, so the count is atomic.
func (r *Runner) runSingleCount(chunk []byte, off int, start fsm.State, steps *int64) fsm.State {
	return r.runSingle(chunk, off, start, func(pos int, sym byte, q fsm.State) {
		atomic.AddInt64(steps, 1)
	})
}

// TestUntracedCtxPathUnchanged pins the zero-cost-disabled contract at
// the core layer: a plain cancellable context must not emit spans, and
// a Background context must still take the uninstrumented fast path.
func TestUntracedCtxPathUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	d := fsm.RandomConverging(rng, 40, 6, 5, 0.3)
	input := d.RandomInput(rng, 50_000)
	r := newRunner(t, d, Convergence, WithProcs(1))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := r.FinalCtx(ctx, input, d.Start())
	if err != nil {
		t.Fatal(err)
	}
	if want := r.Final(input, d.Start()); got != want {
		t.Fatalf("ctx path diverged: %d vs %d", got, want)
	}
	// Traces attached elsewhere are untouched; nothing to assert on the
	// trace side beyond "no panic". The Background fast path is pinned
	// by TestCtxFastPath* in ctx_test.go and the allocation guarantee by
	// trace.TestUntracedPathAllocatesNothing.
}
