package core

import (
	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
)

// Range coalescing (§5.3, Figures 10–11). After reading symbol a the
// machine can only be in range(T[a]), so states are renamed per symbol:
// state q in range(T[a]) gets the *name of a* that is q's index in
// U_a, where (L_a, U_a) = Factor(T[a]). Per-symbol transition tables
//
//	T_a[b] = U_a ⊗ L_b
//
// map names of a to names of b; their width is the range size, not the
// state count, so even machines with hundreds of states run in one
// emulated shuffle per symbol when the maximum range is ≤ gather.Width
// — and names fit a byte whenever the maximum range is ≤ 256 even if
// |Q| > 256, which is what lets byte-level SIMD run big machines.
//
// The run loop below exploits the associativity of gather to keep the
// working vector at width |range(first symbol)| instead of Figure 11's
// expository n: maintaining C with S_base = L_{a0} ⊗ C ⊗ U_cur, where C
// maps names-of-a0 to names-of-cur. Every step is then one gather over
// at most maxRange lanes (the paper's "single shuffle per input
// character", §6.2).

type rcTables struct {
	// l[a] has length n: l[a][q] = name (index into u[a]) of δ(q, a).
	l [][]byte
	// u[a] maps names of a back to states: u[a][name] = state.
	u [][]fsm.State
	// t[a][b] has length |u[a]|: t[a][b][i] = l[b][u[a][i]], the name
	// of b reached from name i of a on reading b.
	t [][][]byte
	// tf[a] is t[a] flattened with stride w[a] (tf[a][int(b)*w[a]+i] =
	// t[a][b][i]) so the hot loop does one slice index per symbol.
	tf [][]byte
	w  []int
	// fw fuses tf and w so the hot loop touches one cache line for
	// both.
	fw []rcFlat
}

type rcFlat struct {
	f []byte
	w int
}

// buildRCTables precomputes the range-coalesced tables. Requires
// max range ≤ 256 (checked by New).
func buildRCTables(d *fsm.DFA, ranges []int) *rcTables {
	k := d.NumSymbols()
	rc := &rcTables{
		l: make([][]byte, k),
		u: make([][]fsm.State, k),
		t: make([][][]byte, k),
	}
	for a := 0; a < k; a++ {
		l16, u := gather.Factor(d.Column(byte(a)))
		lb := make([]byte, len(l16))
		for i, v := range l16 {
			lb[i] = byte(v)
		}
		rc.l[a] = lb
		rc.u[a] = u
	}
	rc.tf = make([][]byte, k)
	rc.w = make([]int, k)
	rc.fw = make([]rcFlat, k)
	for a := 0; a < k; a++ {
		rc.t[a] = make([][]byte, k)
		ua := rc.u[a]
		w := len(ua)
		rc.w[a] = w
		flat := make([]byte, k*w)
		for b := 0; b < k; b++ {
			lb := rc.l[b]
			tab := flat[b*w : (b+1)*w : (b+1)*w]
			for i, q := range ua {
				tab[i] = lb[q]
			}
			rc.t[a][b] = tab
		}
		rc.tf[a] = flat
		rc.fw[a] = rcFlat{f: flat, w: w}
	}
	return rc
}

// EntryCount reports the total number of table entries, for the §5.3
// memory accounting (e·k entries versus the original n·k).
func (rc *rcTables) EntryCount() int {
	total := 0
	for _, ta := range rc.t {
		for _, tab := range ta {
			total += len(tab)
		}
	}
	return total
}

// noteRCPlain flushes telemetry for one rcLoop pass. The name vector
// keeps its width w0 = |range(input[0])| for the whole input, so the
// Figure 11 shuffle count — ⌈w0/W⌉·⌈|range(prev)|/W⌉ per symbol, the
// model core.ProfileInput replays offline — is a pure function of the
// input symbols. It is therefore reconstructed here in one pass only
// when telemetry is attached; the hot loop itself carries no
// accounting at all.
func (r *Runner) noteRCPlain(input []byte, rs *runStats) {
	if (r.tel == nil && rs == nil) || len(input) == 0 {
		return
	}
	w0 := r.ranges[input[0]]
	cb := r.rangeBlocks[input[0]]
	var rows int64
	for _, b := range input[:len(input)-1] {
		rows += r.rangeBlocks[b]
	}
	// cb·rows for the body plus one seed row of the L_{a0} lookup.
	r.noteSingle(rs, int64(len(input)-1), cb*rows+cb, 0, 0, w0, w0)
}

// rcLoop runs the coalesced machine over input[1:], starting from the
// identity over names of input[0]. It returns the first symbol, the
// final name-composition vector c (c[i] = name-of-cur reached from name
// i of the first symbol), and the last symbol cur. If phi is non-nil it
// is invoked at every step with the state reached from start.
func (r *Runner) rcLoop(input []byte, phi fsm.Phi, off int, start fsm.State, sc *scratch, rs *runStats) (a0 byte, c []byte, cur byte) {
	a0 = input[0]
	cur = a0
	c = sc.names(len(r.rc.u[a0]))
	var name0 byte
	if phi != nil {
		name0 = r.rc.l[a0][start]
		phi(off, a0, r.rc.u[a0][name0])
	}
	if phi == nil && !r.simd {
		// Hot paths: the name vector has fixed width |range(a0)|, so
		// small widths run with lanes held in registers — independent
		// loads per symbol with no stores or loop control, the scalar
		// stand-in for the paper's one-shuffle-per-symbol regime.
		rc := r.rc
		switch {
		case len(c) == 1:
			name := c[0]
			for i := 1; i < len(input); i++ {
				b := input[i]
				t := &rc.fw[cur]
				name = t.f[int(b)*t.w+int(name)]
				cur = b
			}
			c[0] = name
		case len(c) <= 4:
			// Pad to 4 lanes with duplicates of lane 0; pads are
			// discarded at writeback.
			c0, c1, c2, c3 := c[0], c[0], c[0], c[0]
			if len(c) > 1 {
				c1 = c[1]
			}
			if len(c) > 2 {
				c2 = c[2]
			}
			if len(c) > 3 {
				c3 = c[3]
			}
			for i := 1; i < len(input); i++ {
				b := input[i]
				t := &rc.fw[cur]
				f := t.f
				base := int(b) * t.w
				c0, c1, c2, c3 = f[base+int(c0)], f[base+int(c1)], f[base+int(c2)], f[base+int(c3)]
				cur = b
			}
			out := [4]byte{c0, c1, c2, c3}
			copy(c, out[:len(c)])
		case len(c) <= 8:
			var lane [8]byte
			for j := range lane {
				if j < len(c) {
					lane[j] = c[j]
				} else {
					lane[j] = c[0]
				}
			}
			for i := 1; i < len(input); i++ {
				b := input[i]
				t := &rc.fw[cur]
				f := t.f
				base := int(b) * t.w
				lane[0], lane[1], lane[2], lane[3] = f[base+int(lane[0])], f[base+int(lane[1])], f[base+int(lane[2])], f[base+int(lane[3])]
				lane[4], lane[5], lane[6], lane[7] = f[base+int(lane[4])], f[base+int(lane[5])], f[base+int(lane[6])], f[base+int(lane[7])]
				cur = b
			}
			copy(c, lane[:len(c)])
		default:
			for i := 1; i < len(input); i++ {
				b := input[i]
				t := &rc.fw[cur]
				tab := t.f[int(b)*t.w:]
				for j, v := range c {
					c[j] = tab[v]
				}
				cur = b
			}
		}
		r.noteRCPlain(input, rs)
		return a0, c, cur
	}
	for i := 1; i < len(input); i++ {
		b := input[i]
		if r.simd {
			gather.SIMDInto(c, c, r.rc.t[cur][b])
		} else {
			gather.Into(c, c, r.rc.t[cur][b])
		}
		cur = b
		if phi != nil {
			phi(off+i, b, r.rc.u[cur][c[name0]])
		}
	}
	r.noteRCPlain(input, rs)
	return a0, c, cur
}

// rcLoopConv is rcLoop with the convergence optimization applied in
// the *name* domain — Figure 7 layered over Figures 10–11, the natural
// composition of the paper's two optimizations. The name vector C
// (width = |range(a0)|) is periodically factored so that machines with
// a wide first-symbol range still collapse into the register regime.
// The invariant mirrors §5.2: C_base = Acc ⊗ C with Acc over names of
// a0. Selected by the RangeConvergence strategy.
func (r *Runner) rcLoopConv(input []byte, sc *scratch, rs *runStats) (a0 byte, acc []byte, c []byte, cur byte) {
	rc := r.rc
	a0 = input[0]
	cur = a0
	w0 := len(rc.u[a0])
	acc, c = sc.namePair(w0)
	m := w0
	sinceCheck := 0
	// Unlike rcLoop, the name-vector width shrinks as it converges, so
	// the shuffle count depends on the runtime m trajectory and must be
	// tracked in-loop. The track flag hoists the telemetry nil-check so
	// the disabled path pays one predictable branch per symbol.
	const W = gather.Width
	track := r.tel != nil || rs != nil
	var gathers, shuf, fCalls, fWins int64
	if track {
		shuf = r.rangeBlocks[a0] // first-symbol seed row
	}
	mBlocks := int64((m + W - 1) / W)
	var lbuf, ubuf [256]byte
	for i := 1; i < len(input); i++ {
		b := input[i]
		if m <= 8 && !r.simd {
			if track {
				// Register-regime tail: ⌈m/W⌉ = 1 output row per
				// symbol times the width blocks of each step's table.
				prev := cur
				for _, bb := range input[i:] {
					shuf += r.rangeBlocks[prev]
					prev = bb
				}
				r.noteSingle(rs, gathers, shuf, fCalls, fWins, w0, m)
			}
			if rs != nil {
				rs.noteConverged(i)
			}
			// Register regime over names; reuse the plain rcLoop lane
			// code by running the remainder on the compact vector.
			sub := r.rcTail(input[i:], cur, c[:m])
			return a0, acc, c[:m], sub
		}
		if track {
			shuf += mBlocks * r.rangeBlocks[cur]
			gathers++
		}
		t := &rc.fw[cur]
		tab := t.f[int(b)*t.w:]
		cc := c[:m]
		for j, v := range cc {
			cc[j] = tab[v]
		}
		cur = b
		sinceCheck++
		if m > 1 && sinceCheck >= 4 {
			fCalls++
			nu := 0
			for j := 0; j < m; j++ {
				v := c[j]
				k := 0
				for ; k < nu; k++ {
					if ubuf[k] == v {
						break
					}
				}
				if k == nu {
					ubuf[nu] = v
					nu++
				}
				lbuf[j] = byte(k)
			}
			if nu < m {
				gather.Into(acc, acc, lbuf[:m])
				copy(c, ubuf[:nu])
				m = nu
				fWins++
				gathers++
				mBlocks = int64((m + W - 1) / W)
				if rs != nil {
					rs.noteWidth(i, m)
				}
			}
			sinceCheck = 0
		}
	}
	if track {
		r.noteSingle(rs, gathers, shuf, fCalls, fWins, w0, m)
	}
	return a0, acc, c[:m], cur
}

// rcTail advances a compact name vector over the rest of the input
// with register-resident lanes, returning the final current symbol.
// c is updated in place.
func (r *Runner) rcTail(input []byte, cur byte, c []byte) byte {
	rc := r.rc
	switch {
	case len(c) == 1:
		name := c[0]
		for _, b := range input {
			t := &rc.fw[cur]
			name = t.f[int(b)*t.w+int(name)]
			cur = b
		}
		c[0] = name
	case len(c) <= 4:
		c0, c1, c2, c3 := c[0], c[0], c[0], c[0]
		if len(c) > 1 {
			c1 = c[1]
		}
		if len(c) > 2 {
			c2 = c[2]
		}
		if len(c) > 3 {
			c3 = c[3]
		}
		for _, b := range input {
			t := &rc.fw[cur]
			f := t.f
			base := int(b) * t.w
			c0, c1, c2, c3 = f[base+int(c0)], f[base+int(c1)], f[base+int(c2)], f[base+int(c3)]
			cur = b
		}
		out := [4]byte{c0, c1, c2, c3}
		copy(c, out[:len(c)])
	default:
		var lane [8]byte
		for j := range lane {
			if j < len(c) {
				lane[j] = c[j]
			} else {
				lane[j] = c[0]
			}
		}
		for _, b := range input {
			t := &rc.fw[cur]
			f := t.f
			base := int(b) * t.w
			lane[0], lane[1], lane[2], lane[3] = f[base+int(lane[0])], f[base+int(lane[1])], f[base+int(lane[2])], f[base+int(lane[3])]
			lane[4], lane[5], lane[6], lane[7] = f[base+int(lane[4])], f[base+int(lane[5])], f[base+int(lane[6])], f[base+int(lane[7])]
			cur = b
		}
		copy(c, lane[:len(c)])
	}
	return cur
}

// rcConvCompVec returns the composition vector under RangeConvergence:
// out[q] = U_cur[C[Acc[L_{a0}[q]]]].
func (r *Runner) rcConvCompVec(input []byte, rs *runStats) []fsm.State {
	out := make([]fsm.State, r.n)
	if len(input) == 0 {
		for q := range out {
			out[q] = fsm.State(q)
		}
		return out
	}
	sc := r.getScratch()
	a0, acc, c, cur := r.rcLoopConv(input, sc, rs)
	la, ucur := r.rc.l[a0], r.rc.u[cur]
	for q := range out {
		out[q] = ucur[c[acc[la[q]]]]
	}
	r.putScratch(sc)
	return out
}

// rcConvFinal returns the final state for one start state under
// RangeConvergence.
func (r *Runner) rcConvFinal(input []byte, start fsm.State, rs *runStats) fsm.State {
	if len(input) == 0 {
		return start
	}
	sc := r.getScratch()
	a0, acc, c, cur := r.rcLoopConv(input, sc, rs)
	final := r.rc.u[cur][c[acc[r.rc.l[a0][start]]]]
	r.putScratch(sc)
	return final
}

// rcCompVec returns the full composition vector via
// out[q] = U_cur[C[L_{a0}[q]]].
func (r *Runner) rcCompVec(input []byte, rs *runStats) []fsm.State {
	out := make([]fsm.State, r.n)
	if len(input) == 0 {
		for q := range out {
			out[q] = fsm.State(q)
		}
		return out
	}
	sc := r.getScratch()
	a0, c, cur := r.rcLoop(input, nil, 0, 0, sc, rs)
	la, ucur := r.rc.l[a0], r.rc.u[cur]
	for q := range out {
		out[q] = ucur[c[la[q]]]
	}
	r.putScratch(sc)
	return out
}

// rcFinal returns the final state for one start state.
func (r *Runner) rcFinal(input []byte, start fsm.State, rs *runStats) fsm.State {
	if len(input) == 0 {
		return start
	}
	sc := r.getScratch()
	a0, c, cur := r.rcLoop(input, nil, 0, 0, sc, rs)
	final := r.rc.u[cur][c[r.rc.l[a0][start]]]
	r.putScratch(sc)
	return final
}

// rcRun runs with φ; the per-step output is the O(1) lookup
// U_cur[C[name0]] (§5.3: mapping back to states is only needed when
// calling φ).
func (r *Runner) rcRun(input []byte, off int, start fsm.State, phi fsm.Phi) fsm.State {
	if len(input) == 0 {
		return start
	}
	sc := r.getScratch()
	a0, c, cur := r.rcLoop(input, phi, off, start, sc, nil)
	final := r.rc.u[cur][c[r.rc.l[a0][start]]]
	r.putScratch(sc)
	return final
}
