package core

import (
	"sync"
	"time"

	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
	"dpfsm/internal/telemetry"
)

// Multicore execution (Figure 5): a parallel prefix over transition-
// function composition. Phase 1 computes, for each input chunk in
// parallel, the chunk's composition vector (final state from every
// start state) using the runner's single-core strategy. Phase 2 is the
// short sequential scan that recovers the true start state of every
// chunk. Phase 3 re-runs each chunk in parallel with its now-known
// start state to invoke φ; accept-only queries skip it entirely, since
// the answer is already determined by the phase-1 vectors — which is
// why the paper calls the first two phases "extremely fast" (§3.4).

// splitChunks divides n input bytes into p ranges no smaller than
// minChunk, reducing p if necessary. Every caller's invariants hold
// for any n: the ranges tile [0, n) in order, there is always at
// least one range, and no range is empty unless n itself is zero.
func (r *Runner) splitChunks(n int) [][2]int {
	if n <= 0 {
		// Degenerate input: a single empty chunk keeps the "at least
		// one chunk" invariant (phase 2 then folds over an identity
		// vector) without emitting empty siblings next to real work.
		return [][2]int{{0, 0}}
	}
	p := r.procs
	minChunk := r.minChunk
	if minChunk < 1 {
		// New clamps this, but guard here too: a non-positive minimum
		// would divide by zero below and emit zero-length chunks.
		minChunk = 1
	}
	if max := n / minChunk; p > max {
		p = max
	}
	if p > n {
		// Input shorter than the worker count (possible when minChunk
		// is 1): cap at one byte per chunk so i*n/p is strictly
		// increasing and no chunk comes out empty.
		p = n
	}
	if p < 1 {
		p = 1
	}
	chunks := make([][2]int, p)
	for i := 0; i < p; i++ {
		lo := i * n / p
		hi := (i + 1) * n / p
		chunks[i] = [2]int{lo, hi}
	}
	return chunks
}

// noteMulticore records one Figure 5 execution over the given chunks.
func (r *Runner) noteMulticore(chunks [][2]int) {
	if t := r.tel; t != nil {
		t.MulticoreRuns.Inc()
		t.Chunks.Add(int64(len(chunks)))
		for _, ch := range chunks {
			t.ChunkBytes.Observe(int64(ch[1] - ch[0]))
		}
	}
}

// phase1 computes the composition vector of every chunk in parallel.
func (r *Runner) phase1(input []byte, chunks [][2]int) [][]fsm.State {
	vecs := make([][]fsm.State, len(chunks))
	tel := r.tel
	var wg sync.WaitGroup
	for p, ch := range chunks {
		wg.Add(1)
		go func(p int, lo, hi int) {
			defer wg.Done()
			if tel != nil {
				defer tel.Phase1Time.Start().Stop()
			}
			vecs[p] = r.compVecSingle(input[lo:hi], nil)
		}(p, ch[0], ch[1])
	}
	wg.Wait()
	return vecs
}

// phase2 propagates the start state through the chunk vectors,
// returning the start state of every chunk.
func phase2(vecs [][]fsm.State, start fsm.State) []fsm.State {
	starts := make([]fsm.State, len(vecs))
	st := start
	for p, vec := range vecs {
		starts[p] = st
		st = vec[st]
	}
	return starts
}

func (r *Runner) finalMulticore(input []byte, start fsm.State) fsm.State {
	chunks := r.splitChunks(len(input))
	r.noteMulticore(chunks)
	vecs := r.phase1(input, chunks)
	// Phase 2; a final-state query needs no phase 3 at all (§3.4).
	var sp telemetry.Span
	if t := r.tel; t != nil {
		sp = t.Phase2Time.Start()
	}
	st := start
	for _, vec := range vecs {
		st = vec[st]
	}
	sp.Stop()
	if t := r.tel; t != nil {
		t.Phase3Skips.Inc()
	}
	return st
}

func (r *Runner) compVecMulticore(input []byte) []fsm.State {
	chunks := r.splitChunks(len(input))
	r.noteMulticore(chunks)
	vecs := r.phase1(input, chunks)
	// The vector merge plays phase 2's role; phase 3 is never needed.
	var sp telemetry.Span
	if t := r.tel; t != nil {
		sp = t.Phase2Time.Start()
	}
	total := vecs[0]
	for _, vec := range vecs[1:] {
		gather.Into(total, total, vec)
	}
	sp.Stop()
	if t := r.tel; t != nil {
		t.Gathers.Add(int64(len(vecs) - 1))
		t.Phase3Skips.Inc()
	}
	return total
}

// ChunkFunc processes one input chunk whose true start state has been
// resolved by phases 1–2, and returns the state after the chunk. off is
// the global offset of chunk[0]. Returning the final state lets the
// single-goroutine fast path avoid recomputing it enumeratively.
type ChunkFunc func(off int, chunk []byte, start fsm.State) fsm.State

// RunChunked is the Figure 5 decomposition with a caller-supplied phase
// 3: phases 1 and 2 resolve the start state of every chunk using the
// runner's enumerative strategy, then f runs once per chunk — in
// parallel, so f must be safe for concurrent calls on distinct chunks.
// Clients whose outputs depend on *transitions* rather than reached
// states (Huffman decoding emits the symbols along each edge, §6.2;
// tokenizers emit token boundaries) use this to run their own sequential
// decoder per chunk once the start state is known. Returns the final
// state.
func (r *Runner) RunChunked(input []byte, start fsm.State, f ChunkFunc) fsm.State {
	r.noteEntry(len(input))
	return r.runChunked(input, start, f)
}

// runChunked is RunChunked without the entry-point accounting, for
// internal callers (Run, FirstAccepting) that already counted the run.
func (r *Runner) runChunked(input []byte, start fsm.State, f ChunkFunc) fsm.State {
	if len(input) == 0 {
		return start
	}
	if !r.useMulticore(len(input)) {
		return f(0, input, start)
	}
	chunks := r.splitChunks(len(input))
	r.noteMulticore(chunks)
	tel := r.tel

	// Chunk 0 never needs phase 1 — its start state is already known —
	// so its phase 3 runs concurrently with the enumerative phase 1 of
	// chunks 1..P-1. This shaves 1/P of the enumerative work and is
	// what makes the two-pass structure profitable even at low core
	// counts.
	var c0Final fsm.State
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if tel != nil {
			defer tel.Phase3Time.Start().Stop()
		}
		c0Final = f(0, input[chunks[0][0]:chunks[0][1]], start)
	}()
	vecs := make([][]fsm.State, len(chunks))
	for p := 1; p < len(chunks); p++ {
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			if tel != nil {
				defer tel.Phase1Time.Start().Stop()
			}
			vecs[p] = r.compVecSingle(input[lo:hi], nil)
		}(p, chunks[p][0], chunks[p][1])
	}
	wg.Wait()

	// Phase 2 from chunk 0's actual final state, then phase 3 for the
	// remaining chunks.
	var phase2Start time.Time
	if tel != nil {
		phase2Start = time.Now()
	}
	st := c0Final
	starts := make([]fsm.State, len(chunks))
	for p := 1; p < len(chunks); p++ {
		starts[p] = st
		st = vecs[p][st]
	}
	if tel != nil {
		tel.Phase2Time.ObserveSince(phase2Start)
	}
	for p := 1; p < len(chunks); p++ {
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			if tel != nil {
				defer tel.Phase3Time.Start().Stop()
			}
			f(lo, input[lo:hi], starts[p])
		}(p, chunks[p][0], chunks[p][1])
	}
	wg.Wait()
	return st
}

// FirstAccepting returns the earliest position i such that the machine
// is in an accepting state after consuming input[0..i], or -1 if it
// never is. With sticky-accept machines (the regex package's default
// "contains" compilation) this is the end position of the first match
// — what a grep-style tool reports. Multicore runners resolve chunk
// start states enumeratively and scan chunks concurrently; the
// earliest hit wins.
func (r *Runner) FirstAccepting(input []byte, start fsm.State) int {
	r.noteEntry(len(input))
	if !r.useMulticore(len(input)) {
		return r.firstAcceptingSeq(input, 0, start)
	}
	var mu sync.Mutex
	best := -1
	r.runChunked(input, start, func(off int, chunk []byte, st fsm.State) fsm.State {
		// Skip the scan if a hit earlier than this chunk is known.
		mu.Lock()
		skip := best >= 0 && best < off
		mu.Unlock()
		if skip {
			return r.d.Run(chunk, st)
		}
		q := st
		hit := -1
		for i, b := range chunk {
			q = r.d.Next(q, b)
			if hit < 0 && r.d.Accepting(q) {
				hit = off + i
				// Keep running: the chunk's final state is still
				// needed by the schedule.
			}
		}
		if hit >= 0 {
			mu.Lock()
			if best < 0 || hit < best {
				best = hit
			}
			mu.Unlock()
		}
		return q
	})
	return best
}

// firstAcceptingSeq scans sequentially from a known start state.
func (r *Runner) firstAcceptingSeq(input []byte, off int, start fsm.State) int {
	q := start
	for i, b := range input {
		q = r.d.Next(q, b)
		if r.d.Accepting(q) {
			return off + i
		}
	}
	return -1
}

// runMulticore is the φ-bearing Figure 5 run: phase 3 re-runs chunks
// concurrently, so φ sees globally correct positions but may be called
// out of order across chunks (§2.1). It reuses the RunChunked schedule
// (chunk 0 skips phase 1).
func (r *Runner) runMulticore(input []byte, start fsm.State, phi fsm.Phi) fsm.State {
	return r.runChunked(input, start, func(off int, chunk []byte, st fsm.State) fsm.State {
		return r.runSingle(chunk, off, st, phi)
	})
}
