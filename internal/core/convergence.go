package core

import (
	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
)

// Convergence optimization (§5.2, Figure 7). The enumerative vector S
// is kept in factored form: a lookup vector Acc of length n (updated
// only at convergence checks) and a compact active vector S holding one
// entry per distinct reachable state. The loop invariant is
//
//	S_base = Acc ⊗ S
//
// where S_base is what Figure 3's unfactored vector would hold. Gathers
// between checks touch only len(S) = m lanes, so once the machine
// converges to ≤ gather.Width active states every step is a single
// emulated shuffle regardless of n.
//
// Convergence checks cost a linear-time Factor (no hardware support,
// §5.1), so they are issued by the paper's two heuristics:
//
//  1. statically, the range of the just-consumed symbol bounds the
//     number of active states, so a check fires whenever that bound
//     promises a drop of at least gather.Width; and
//  2. a fallback cadence of one check every convEvery symbols.

// convShouldCheck reports whether a convergence check is worthwhile
// after consuming symbol a with m currently active states. The two
// heuristics of §5.2: the static range of the just-consumed symbol
// (an immediate check when it promises a large drop, a rate-limited
// one for any promised drop), plus a fallback cadence.
func (r *Runner) convShouldCheck(a byte, m, sinceCheck int) bool {
	if m <= 1 {
		return false // cannot shrink further
	}
	bound := r.ranges[a]
	if bound+gather.Width <= m {
		return true
	}
	if bound < m && sinceCheck >= 4 {
		return true
	}
	return sinceCheck >= r.convEvery
}

// convCompVecBytes runs Figure 7 over byte states and returns the full
// composition vector Acc ⊗ S.
func (r *Runner) convCompVecBytes(input []byte, rs *runStats) []fsm.State {
	sc := r.getScratch()
	acc, s := r.convLoopBytes(input, nil, 0, 0, sc, rs)
	out := make([]fsm.State, r.n)
	for q := range out {
		out[q] = fsm.State(s[acc[q]])
	}
	r.putScratch(sc)
	return out
}

// convFinalBytes runs Figure 7 and reads the single entry for start.
func (r *Runner) convFinalBytes(input []byte, start fsm.State, rs *runStats) fsm.State {
	sc := r.getScratch()
	acc, s := r.convLoopBytes(input, nil, 0, 0, sc, rs)
	final := fsm.State(s[acc[start]])
	r.putScratch(sc)
	return final
}

// convRunBytes runs Figure 7 invoking φ at every step. Only the entry
// for the start state is materialized per step (§5.2: "it is not
// necessary to compute all elements of S_base").
func (r *Runner) convRunBytes(input []byte, off int, start fsm.State, phi fsm.Phi) fsm.State {
	sc := r.getScratch()
	acc, s := r.convLoopBytes(input, phi, off, start, sc, nil)
	final := fsm.State(s[acc[start]])
	r.putScratch(sc)
	return final
}

// convLoopBytes is the shared Figure 7 loop. If phi is non-nil it is
// invoked after every symbol with the state reached from start.
// Returns the final (Acc, S) pair satisfying S_base = Acc ⊗ S; both
// are views into sc, valid until the scratch is pooled again.
func (r *Runner) convLoopBytes(input []byte, phi fsm.Phi, off int, start fsm.State, sc *scratch, rs *runStats) (acc, s []byte) {
	acc, s = sc.byteVecs(r.n)
	m := r.n // active states
	sinceCheck := 0
	// Telemetry accounting stays in stack locals so the disabled path
	// costs two register adds per symbol, flushed once at exit.
	// shufBlocks accumulates ⌈m/W⌉ per symbol; the §4.2 shuffle count
	// is shufBlocks·⌈n/W⌉ since the table block count is constant.
	var gathers, shufBlocks, fCalls, fWins int64
	mBlocks := int64((m + gather.Width - 1) / gather.Width)
	var lbuf, ubuf [256]byte // scratch for the inline Factor
	for i, a := range input {
		if phi == nil && !r.simd && m <= 8 {
			// The register tail advances m ≤ 8 lanes per symbol:
			// ⌈m/W⌉ = 1 shuffle-row per remaining symbol.
			shufBlocks += int64(len(input) - i)
			if rs != nil {
				rs.noteConverged(off + i)
			}
			r.noteSingle(rs, gathers, shufBlocks*int64(r.nBlocks), fCalls, fWins, r.n, m)
			// Converged into the register regime: finish the input
			// with lanes in registers (m == 1 degenerates to the
			// sequential chase). No further convergence checks — the
			// residual win of shrinking 8 → 2 lanes is below the cost
			// of checking, matching §5.2's advice to check only for
			// dramatic decreases.
			rest := input[i:]
			switch {
			case m == 1:
				q := s[0]
				for _, b := range rest {
					q = r.colsB[b][q]
				}
				s[0] = q
			case m <= 4:
				c0, c1, c2, c3 := s[0], s[0], s[0], s[0]
				if m > 1 {
					c1 = s[1]
				}
				if m > 2 {
					c2 = s[2]
				}
				if m > 3 {
					c3 = s[3]
				}
				for _, b := range rest {
					tab := r.colsB[b]
					c0, c1, c2, c3 = tab[c0], tab[c1], tab[c2], tab[c3]
				}
				out := [4]byte{c0, c1, c2, c3}
				copy(s, out[:m])
			default:
				var lane [8]byte
				for j := 0; j < 8; j++ {
					if j < m {
						lane[j] = s[j]
					} else {
						lane[j] = s[0]
					}
				}
				for _, b := range rest {
					tab := r.colsB[b]
					lane[0], lane[1], lane[2], lane[3] = tab[lane[0]], tab[lane[1]], tab[lane[2]], tab[lane[3]]
					lane[4], lane[5], lane[6], lane[7] = tab[lane[4]], tab[lane[5]], tab[lane[6]], tab[lane[7]]
				}
				copy(s, lane[:m])
			}
			return acc, s[:m]
		}
		if r.simd {
			gather.SIMDInto(s[:m], s[:m], r.colsB[a])
		} else {
			tab := r.colsB[a]
			ss := s[:m]
			for j, v := range ss {
				ss[j] = tab[v]
			}
		}
		gathers++
		shufBlocks += mBlocks
		sinceCheck++
		if r.convShouldCheck(a, m, sinceCheck) {
			fCalls++
			// Zero-allocation Factor specialized for the byte path:
			// O(m·|U|) scan, fine because m is small after the first
			// convergence and |U| ≤ m.
			nu := 0
			for j := 0; j < m; j++ {
				v := s[j]
				k := 0
				for ; k < nu; k++ {
					if ubuf[k] == v {
						break
					}
				}
				if k == nu {
					ubuf[nu] = v
					nu++
				}
				lbuf[j] = byte(k)
			}
			if nu < m {
				r.gatherB(acc, acc, lbuf[:m])
				copy(s, ubuf[:nu])
				m = nu
				fWins++
				gathers++
				mBlocks = int64((m + gather.Width - 1) / gather.Width)
				if rs != nil {
					rs.noteWidth(off+i, m)
				}
			}
			sinceCheck = 0
		}
		if phi != nil {
			phi(off+i, a, fsm.State(s[acc[start]]))
		}
	}
	r.noteSingle(rs, gathers, shufBlocks*int64(r.nBlocks), fCalls, fWins, r.n, m)
	return acc, s[:m]
}

// convCompVec16, convFinal16, convRun16 are the uint16-state versions
// for machines with more than 256 states; the algorithm is identical
// but gathers use the scalar kernel.

func (r *Runner) convCompVec16(input []byte, rs *runStats) []fsm.State {
	sc := r.getScratch()
	acc, s := r.convLoop16(input, nil, 0, 0, sc, rs)
	out := make([]fsm.State, r.n)
	for q := range out {
		out[q] = s[acc[q]]
	}
	r.putScratch(sc)
	return out
}

func (r *Runner) convFinal16(input []byte, start fsm.State, rs *runStats) fsm.State {
	sc := r.getScratch()
	acc, s := r.convLoop16(input, nil, 0, 0, sc, rs)
	final := s[acc[start]]
	r.putScratch(sc)
	return final
}

func (r *Runner) convRun16(input []byte, off int, start fsm.State, phi fsm.Phi) fsm.State {
	sc := r.getScratch()
	acc, s := r.convLoop16(input, phi, off, start, sc, nil)
	final := s[acc[start]]
	r.putScratch(sc)
	return final
}

func (r *Runner) convLoop16(input []byte, phi fsm.Phi, off int, start fsm.State, sc *scratch, rs *runStats) (acc, s []fsm.State) {
	acc, s = sc.stateVecs(r.n)
	m := r.n
	sinceCheck := 0
	var gathers, shufBlocks, fCalls, fWins int64
	mBlocks := int64((m + gather.Width - 1) / gather.Width)
	for i, a := range input {
		if phi == nil && m <= 8 {
			shufBlocks += int64(len(input) - i)
			if rs != nil {
				rs.noteConverged(off + i)
			}
			r.noteSingle(rs, gathers, shufBlocks*int64(r.nBlocks), fCalls, fWins, r.n, m)
			// Same register regime as the byte path: once converged,
			// per-symbol cost is a handful of independent loads —
			// §5.2's "overhead proportional to the number of active
			// states and not to the total number of states" holds for
			// >256-state machines too.
			rest := input[i:]
			switch {
			case m == 1:
				q := s[0]
				for _, b := range rest {
					q = r.cols16[b][q]
				}
				s[0] = q
			case m <= 4:
				c0, c1, c2, c3 := s[0], s[0], s[0], s[0]
				if m > 1 {
					c1 = s[1]
				}
				if m > 2 {
					c2 = s[2]
				}
				if m > 3 {
					c3 = s[3]
				}
				for _, b := range rest {
					tab := r.cols16[b]
					c0, c1, c2, c3 = tab[c0], tab[c1], tab[c2], tab[c3]
				}
				out := [4]fsm.State{c0, c1, c2, c3}
				copy(s, out[:m])
			default:
				var lane [8]fsm.State
				for j := 0; j < 8; j++ {
					if j < m {
						lane[j] = s[j]
					} else {
						lane[j] = s[0]
					}
				}
				for _, b := range rest {
					tab := r.cols16[b]
					lane[0], lane[1], lane[2], lane[3] = tab[lane[0]], tab[lane[1]], tab[lane[2]], tab[lane[3]]
					lane[4], lane[5], lane[6], lane[7] = tab[lane[4]], tab[lane[5]], tab[lane[6]], tab[lane[7]]
				}
				copy(s, lane[:m])
			}
			return acc, s[:m]
		}
		tab := r.cols16[a]
		ss := s[:m]
		for j, v := range ss {
			ss[j] = tab[v]
		}
		gathers++
		shufBlocks += mBlocks
		sinceCheck++
		if r.convShouldCheck(a, m, sinceCheck) {
			fCalls++
			// Inline factor; states exceed a byte, so the lookup table
			// uses the n-sized scratch (amortized: checks are rare and
			// m shrinks fast).
			l, u := gather.Factor(s[:m])
			if len(u) < m {
				gather.Into(acc, acc, l)
				copy(s, u)
				m = len(u)
				fWins++
				gathers++
				mBlocks = int64((m + gather.Width - 1) / gather.Width)
				if rs != nil {
					rs.noteWidth(off+i, m)
				}
			}
			sinceCheck = 0
		}
		if phi != nil {
			phi(off+i, a, s[acc[start]])
		}
	}
	r.noteSingle(rs, gathers, shufBlocks*int64(r.nBlocks), fCalls, fWins, r.n, m)
	return acc, s[:m]
}
