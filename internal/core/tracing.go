package core

import (
	"fmt"
	"strings"

	"dpfsm/internal/trace"
)

// Request-scoped tracing (internal/trace) for the core runtime. The
// aggregate telemetry of internal/telemetry answers "how many shuffles
// total"; the spans emitted here answer "how did *this* run converge":
// per-chunk active-width trajectories, shuffle counts under the §4.2
// blocked cost model, and the Figure 5 phase decomposition, attached
// to whatever trace rides the context. The same zero-cost-disabled
// discipline applies — with no trace on the context, the only residual
// cost is one context Value lookup per run.

// Span names the core runtime emits. Exported so explain builders
// (cmd/fsmserve) and tests address spans symbolically.
const (
	SpanSingle       = "core.single"        // block-folded single-core run
	SpanMulticore    = "core.multicore"     // Figure 5 final-state run
	SpanChunked      = "core.chunked"       // Figure 5 run with caller phase 3
	SpanPhase1Chunk  = "core.phase1.chunk"  // one chunk's composition vector
	SpanPhase2       = "core.phase2"        // sequential start-state scan
	SpanPhase3Chunk  = "core.phase3.chunk"  // one chunk's caller re-run
	SpanPhase3Chunk0 = "core.phase3.chunk0" // chunk 0's overlapped phase 3
)

// Attribute keys on core spans.
const (
	AttrStrategy    = "strategy"
	AttrBytes       = "bytes"
	AttrChunks      = "chunks"
	AttrChunk       = "chunk"
	AttrOffset      = "offset"
	AttrGathers     = "gathers"
	AttrShuffles    = "shuffles"
	AttrFactorCalls = "factor_calls"
	AttrFactorWins  = "factor_wins"
	AttrWidthStart  = "width_start"
	AttrWidthFinal  = "width_final"
	AttrConvergedAt = "converged_at" // symbol index entering the register regime; -1 = never
	AttrWidths      = "widths"       // "width@pos" trajectory of factor wins
)

// runStats collects the accounting of one traced enumerative pass in
// stack-adjacent storage: the same quantities the hot loops flush into
// telemetry.Metrics, kept per chunk instead of aggregated. Allocated
// only when a trace is attached; every loop takes it as a nillable
// pointer and skips all bookkeeping when absent.
type runStats struct {
	gathers     int64
	shuffles    int64
	factorCalls int64
	factorWins  int64
	widthStart  int
	widthFinal  int
	// convergedAt is the input position at which the run entered the
	// register regime (active width ≤ 8), -1 if it never did.
	convergedAt int
	// widths records the (position, width) trajectory of factor wins —
	// the paper's Figure 7 curve for this specific input.
	widths []widthStep
}

type widthStep struct {
	pos   int
	width int
}

func newRunStats() *runStats { return &runStats{convergedAt: -1} }

// note records one loop exit's accounting; mirrors Runner.noteSingle's
// telemetry flush. widthStart keeps its maximum across blocks (the
// vector re-widens at every block boundary); widthFinal keeps the last.
func (rs *runStats) note(gathers, shuffles, factorCalls, factorWins int64, highWater, final int) {
	rs.gathers += gathers
	rs.shuffles += shuffles
	rs.factorCalls += factorCalls
	rs.factorWins += factorWins
	if highWater > rs.widthStart {
		rs.widthStart = highWater
	}
	rs.widthFinal = final
}

// noteWidth appends one factor-win width step.
func (rs *runStats) noteWidth(pos, width int) {
	rs.widths = append(rs.widths, widthStep{pos: pos, width: width})
}

// noteConverged records the first entry into the register regime.
func (rs *runStats) noteConverged(pos int) {
	if rs.convergedAt < 0 {
		rs.convergedAt = pos
	}
}

// merge folds a per-block stats record into a chunk-level aggregate,
// offsetting positions by the block's start within the chunk.
func (rs *runStats) merge(block *runStats, off int) {
	rs.gathers += block.gathers
	rs.shuffles += block.shuffles
	rs.factorCalls += block.factorCalls
	rs.factorWins += block.factorWins
	if block.widthStart > rs.widthStart {
		rs.widthStart = block.widthStart
	}
	rs.widthFinal = block.widthFinal
	if rs.convergedAt < 0 && block.convergedAt >= 0 {
		rs.convergedAt = off + block.convergedAt
	}
	for _, w := range block.widths {
		rs.widths = append(rs.widths, widthStep{pos: off + w.pos, width: w.width})
	}
}

// widthTrajectory renders the factor-win steps as "width@pos" pairs,
// e.g. "14@63,4@67,1@128" — compact enough for a span attribute while
// preserving the Figure 7 shape.
func (rs *runStats) widthTrajectory() string {
	if len(rs.widths) == 0 {
		return ""
	}
	var b strings.Builder
	for i, w := range rs.widths {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d@%d", w.width, w.pos)
	}
	return b.String()
}

// attrs renders the stats as span attributes.
func (rs *runStats) attrs() []trace.Attr {
	out := []trace.Attr{
		trace.Int(AttrGathers, rs.gathers),
		trace.Int(AttrShuffles, rs.shuffles),
		trace.Int(AttrFactorCalls, rs.factorCalls),
		trace.Int(AttrFactorWins, rs.factorWins),
		trace.Int(AttrWidthStart, int64(rs.widthStart)),
		trace.Int(AttrWidthFinal, int64(rs.widthFinal)),
		trace.Int(AttrConvergedAt, int64(rs.convergedAt)),
	}
	if tj := rs.widthTrajectory(); tj != "" {
		out = append(out, trace.Str(AttrWidths, tj))
	}
	return out
}
