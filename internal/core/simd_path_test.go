package core

import (
	"math/rand"
	"testing"

	"dpfsm/internal/fsm"
)

// The WithEmulatedSIMD knob must not change any observable behavior —
// it swaps the gather kernel for the §4.2 shuffle/blend dataflow.
func TestEmulatedSIMDPathMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(230))
	for _, mk := range []func() *fsm.DFA{
		func() *fsm.DFA { return fsm.RandomConverging(rng, 40, 6, 5, 0.3) },
		func() *fsm.DFA { return fsm.Random(rng, 100, 4, 0.3) },
		func() *fsm.DFA { return fsm.RandomPermutation(rng, 16, 4, 0.3) },
		func() *fsm.DFA { return fsm.Random(rng, 256, 3, 0.3) }, // byte-boundary
	} {
		d := mk()
		in := d.RandomInput(rng, 700)
		st := fsm.State(rng.Intn(d.NumStates()))
		for _, strat := range []Strategy{Base, BaseILP, Convergence, RangeCoalesced, RangeConvergence} {
			if (strat == RangeCoalesced || strat == RangeConvergence) && d.MaxRangeSize() > 256 {
				continue
			}
			scalar := newRunner(t, d, strat)
			simd := newRunner(t, d, strat, WithEmulatedSIMD(true))
			if a, b := scalar.Final(in, st), simd.Final(in, st); a != b {
				t.Fatalf("%v: scalar %d, emulated-simd %d", strat, a, b)
			}
			va := scalar.CompositionVector(in)
			vb := simd.CompositionVector(in)
			for q := range va {
				if va[q] != vb[q] {
					t.Fatalf("%v: composition vectors diverge at %d", strat, q)
				}
			}
			// φ outputs too.
			var sa, sb []fsm.State
			scalar.Run(in, st, func(_ int, _ byte, q fsm.State) { sa = append(sa, q) })
			simd.Run(in, st, func(_ int, _ byte, q fsm.State) { sb = append(sb, q) })
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("%v: φ diverges at %d", strat, i)
				}
			}
		}
	}
}

func TestEmulatedSIMDMulticore(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	d := fsm.RandomConverging(rng, 60, 6, 6, 0.3)
	in := d.RandomInput(rng, 4000)
	r := newRunner(t, d, Convergence, WithEmulatedSIMD(true), WithProcs(3), WithMinChunk(64))
	if got, want := r.Final(in, d.Start()), d.Run(in, d.Start()); got != want {
		t.Fatalf("multicore emulated-SIMD: %d want %d", got, want)
	}
}
