package core

import (
	"bytes"
	"math/rand"
	"testing"

	"dpfsm/internal/fsm"
)

func TestStreamMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	d := fsm.RandomConverging(rng, 60, 8, 6, 0.3)
	r := newRunner(t, d, Convergence)
	input := d.RandomInput(rng, 50_000)

	for _, block := range []int{1, 7, 1024, 1 << 20} {
		s := r.NewStream(nil, block)
		// Feed in ragged pieces.
		rest := input
		for len(rest) > 0 {
			n := 1 + rng.Intn(4096)
			if n > len(rest) {
				n = len(rest)
			}
			s.Write(rest[:n])
			rest = rest[n:]
		}
		if got, want := s.State(), d.Run(input, d.Start()); got != want {
			t.Fatalf("block %d: state %d want %d", block, got, want)
		}
		if s.Consumed() != len(input) {
			t.Fatalf("block %d: consumed %d want %d", block, s.Consumed(), len(input))
		}
		if s.Accepting() != d.Accepts(input) {
			t.Fatalf("block %d: accepting mismatch", block)
		}
	}
}

func TestStreamPhiGlobalPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	d := fsm.RandomConverging(rng, 20, 4, 4, 0.3)
	r := newRunner(t, d, Convergence)
	input := d.RandomInput(rng, 5000)

	want := d.Trace(input, d.Start())
	got := make([]fsm.State, len(input))
	seen := make([]bool, len(input))
	s := r.NewStream(func(pos int, sym byte, q fsm.State) {
		if seen[pos] {
			t.Errorf("duplicate φ at %d", pos)
		}
		seen[pos] = true
		got[pos] = q
	}, 512)
	s.Write(input[:100])
	s.Write(input[100:3000])
	s.Write(input[3000:])
	s.State() // flush tail
	for i := range input {
		if !seen[i] {
			t.Fatalf("missing φ at %d", i)
		}
		if got[i] != want[i] {
			t.Fatalf("φ state at %d = %d want %d", i, got[i], want[i])
		}
	}
}

func TestStreamReadFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	d := fsm.RandomConverging(rng, 30, 4, 5, 0.3)
	r := newRunner(t, d, RangeCoalesced)
	input := d.RandomInput(rng, 100_000)

	s := r.NewStream(nil, 4096)
	n, err := s.ReadFrom(bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(input)) {
		t.Fatalf("ReadFrom consumed %d", n)
	}
	if got, want := s.State(), d.Run(input, d.Start()); got != want {
		t.Fatalf("state %d want %d", got, want)
	}
}

func TestStreamReset(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	d := fsm.RandomConverging(rng, 10, 3, 3, 0.3)
	r := newRunner(t, d, Convergence)
	in := d.RandomInput(rng, 1000)

	s := r.NewStream(nil, 64)
	s.Write(in)
	first := s.State()
	s.Reset()
	if s.Consumed() != 0 {
		t.Error("Reset should clear the position")
	}
	s.Write(in)
	if s.State() != first {
		t.Error("replay after Reset diverged")
	}
}

func TestStreamEmpty(t *testing.T) {
	d := fsm.MustNew(3, 2)
	d.SetStart(1)
	r, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	s := r.NewStream(nil, 0)
	if s.State() != 1 {
		t.Error("empty stream should sit at the start state")
	}
}

func TestStreamPhiSpansManyBlocks(t *testing.T) {
	// One Write much larger than the block size: φ must fire for every
	// symbol with a globally correct position even though the runner
	// is re-entered once per internal block, and the block-boundary
	// states must chain exactly like the single-shot run.
	rng := rand.New(rand.NewSource(155))
	d := fsm.RandomConverging(rng, 25, 5, 4, 0.3)
	for _, strat := range []Strategy{Convergence, RangeCoalesced} {
		r := newRunner(t, d, strat)
		input := d.RandomInput(rng, 10_000)
		want := d.Trace(input, d.Start())

		const block = 64 // 10_000/64 ≈ 157 boundaries
		got := make([]fsm.State, len(input))
		seen := make([]bool, len(input))
		s := r.NewStream(func(pos int, sym byte, q fsm.State) {
			if pos < 0 || pos >= len(input) {
				t.Fatalf("φ position %d out of range", pos)
			}
			if sym != input[pos] {
				t.Fatalf("φ at %d saw symbol %q want %q", pos, sym, input[pos])
			}
			if seen[pos] {
				t.Fatalf("duplicate φ at %d", pos)
			}
			seen[pos] = true
			got[pos] = q
		}, block)
		s.Write(input) // spans ~157 block flushes in one call
		s.State()
		for i := range input {
			if !seen[i] {
				t.Fatalf("%v: missing φ at %d", strat, i)
			}
			if got[i] != want[i] {
				t.Fatalf("%v: φ state at %d = %d want %d", strat, i, got[i], want[i])
			}
		}
	}
}

func TestStreamReuseAfterFinalFlush(t *testing.T) {
	// State()/Accepting() force a final flush of the buffered tail; the
	// stream must remain usable — further Writes continue from the
	// flushed state as if the input had never been split.
	rng := rand.New(rand.NewSource(156))
	d := fsm.RandomConverging(rng, 30, 4, 5, 0.3)
	r := newRunner(t, d, Convergence)
	input := d.RandomInput(rng, 9_000)

	s := r.NewStream(nil, 1024)
	s.Write(input[:4000])
	mid := s.State() // flushes a 4000-byte tail mid-stream
	if want := d.Run(input[:4000], d.Start()); mid != want {
		t.Fatalf("mid-stream state %d want %d", mid, want)
	}
	if s.Consumed() != 4000 {
		t.Fatalf("Consumed = %d after flush, want 4000", s.Consumed())
	}
	_ = s.Accepting() // second flush with an empty buffer must be a no-op
	s.Write(input[4000:])
	if got, want := s.State(), d.Run(input, d.Start()); got != want {
		t.Fatalf("resumed state %d want %d", got, want)
	}
	if s.Consumed() != len(input) {
		t.Fatalf("Consumed = %d, want %d", s.Consumed(), len(input))
	}
	// φ positions must also keep advancing across the interleaved
	// flushes: replay with a callback and check the last position.
	last := -1
	s2 := r.NewStream(func(pos int, _ byte, _ fsm.State) {
		if pos != last+1 {
			t.Fatalf("φ position jumped %d → %d across flush", last, pos)
		}
		last = pos
	}, 512)
	s2.Write(input[:700])
	s2.State()
	s2.Write(input[700:1500])
	s2.State()
	if last != 1499 {
		t.Fatalf("last φ position %d, want 1499", last)
	}
}

func TestStreamMulticoreBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(154))
	d := fsm.RandomConverging(rng, 40, 6, 5, 0.3)
	r := newRunner(t, d, Convergence, WithProcs(4), WithMinChunk(128))
	input := d.RandomInput(rng, 200_000)
	s := r.NewStream(nil, 1<<15) // blocks big enough for the multicore path
	s.Write(input)
	if got, want := s.State(), d.Run(input, d.Start()); got != want {
		t.Fatalf("state %d want %d", got, want)
	}
}
