package core

import (
	"bytes"
	"math/rand"
	"testing"

	"dpfsm/internal/fsm"
)

func TestStreamMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	d := fsm.RandomConverging(rng, 60, 8, 6, 0.3)
	r := newRunner(t, d, Convergence)
	input := d.RandomInput(rng, 50_000)

	for _, block := range []int{1, 7, 1024, 1 << 20} {
		s := r.NewStream(nil, block)
		// Feed in ragged pieces.
		rest := input
		for len(rest) > 0 {
			n := 1 + rng.Intn(4096)
			if n > len(rest) {
				n = len(rest)
			}
			s.Write(rest[:n])
			rest = rest[n:]
		}
		if got, want := s.State(), d.Run(input, d.Start()); got != want {
			t.Fatalf("block %d: state %d want %d", block, got, want)
		}
		if s.Consumed() != len(input) {
			t.Fatalf("block %d: consumed %d want %d", block, s.Consumed(), len(input))
		}
		if s.Accepting() != d.Accepts(input) {
			t.Fatalf("block %d: accepting mismatch", block)
		}
	}
}

func TestStreamPhiGlobalPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	d := fsm.RandomConverging(rng, 20, 4, 4, 0.3)
	r := newRunner(t, d, Convergence)
	input := d.RandomInput(rng, 5000)

	want := d.Trace(input, d.Start())
	got := make([]fsm.State, len(input))
	seen := make([]bool, len(input))
	s := r.NewStream(func(pos int, sym byte, q fsm.State) {
		if seen[pos] {
			t.Errorf("duplicate φ at %d", pos)
		}
		seen[pos] = true
		got[pos] = q
	}, 512)
	s.Write(input[:100])
	s.Write(input[100:3000])
	s.Write(input[3000:])
	s.State() // flush tail
	for i := range input {
		if !seen[i] {
			t.Fatalf("missing φ at %d", i)
		}
		if got[i] != want[i] {
			t.Fatalf("φ state at %d = %d want %d", i, got[i], want[i])
		}
	}
}

func TestStreamReadFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	d := fsm.RandomConverging(rng, 30, 4, 5, 0.3)
	r := newRunner(t, d, RangeCoalesced)
	input := d.RandomInput(rng, 100_000)

	s := r.NewStream(nil, 4096)
	n, err := s.ReadFrom(bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(input)) {
		t.Fatalf("ReadFrom consumed %d", n)
	}
	if got, want := s.State(), d.Run(input, d.Start()); got != want {
		t.Fatalf("state %d want %d", got, want)
	}
}

func TestStreamReset(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	d := fsm.RandomConverging(rng, 10, 3, 3, 0.3)
	r := newRunner(t, d, Convergence)
	in := d.RandomInput(rng, 1000)

	s := r.NewStream(nil, 64)
	s.Write(in)
	first := s.State()
	s.Reset()
	if s.Consumed() != 0 {
		t.Error("Reset should clear the position")
	}
	s.Write(in)
	if s.State() != first {
		t.Error("replay after Reset diverged")
	}
}

func TestStreamEmpty(t *testing.T) {
	d := fsm.MustNew(3, 2)
	d.SetStart(1)
	r, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	s := r.NewStream(nil, 0)
	if s.State() != 1 {
		t.Error("empty stream should sit at the start state")
	}
}

func TestStreamMulticoreBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(154))
	d := fsm.RandomConverging(rng, 40, 6, 5, 0.3)
	r := newRunner(t, d, Convergence, WithProcs(4), WithMinChunk(128))
	input := d.RandomInput(rng, 200_000)
	s := r.NewStream(nil, 1<<15) // blocks big enough for the multicore path
	s.Write(input)
	if got, want := s.State(), d.Run(input, d.Start()); got != want {
		t.Fatalf("state %d want %d", got, want)
	}
}
