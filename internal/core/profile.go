package core

import (
	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
)

// Shuffle-count profiling. §6.1 reports that "for more than 80% of
// these FSMs, our implementation performs one or two shuffle operations
// per input symbol". Profile replays an input under both optimizations'
// cost models — counting emulated ⊗W,W invocations per symbol exactly
// as the blocked construction of §4.2 would issue them — so that claim
// is measurable on any corpus (fsmbench -experiment shuffles).

// Profile summarizes the per-symbol gather work of one machine on one
// input.
type Profile struct {
	// Symbols is the input length.
	Symbols int
	// ConvShuffles is the total ⊗16,16 count under the convergence
	// strategy: per symbol, ⌈m/W⌉·⌈n/W⌉ with m the current active
	// count and n the machine size.
	ConvShuffles int
	// RangeShuffles is the total under range coalescing: per symbol,
	// ⌈w0/W⌉·⌈range(prev)/W⌉ with w0 the first symbol's range (the
	// compact name-vector width). Zero when the machine's range
	// exceeds byte encoding (range coalescing inapplicable).
	RangeShuffles int
	// RangeOK reports whether range coalescing applies (max range ≤ 256).
	RangeOK bool
	// MaxActive and FinalActive track the enumerative vector.
	MaxActive, FinalActive int
	// FactorCalls counts convergence checks that actually shrank the
	// vector (the Factor invocations §5.1 says to use sparingly).
	FactorCalls int
}

// ConvPerSymbol returns the mean shuffles per symbol under convergence.
func (p Profile) ConvPerSymbol() float64 {
	if p.Symbols == 0 {
		return 0
	}
	return float64(p.ConvShuffles) / float64(p.Symbols)
}

// RangePerSymbol returns the mean shuffles per symbol under range
// coalescing (0 when inapplicable).
func (p Profile) RangePerSymbol() float64 {
	if p.Symbols == 0 || !p.RangeOK {
		return 0
	}
	return float64(p.RangeShuffles) / float64(p.Symbols)
}

// BestPerSymbol returns the mean shuffles per symbol under whichever
// optimization is cheaper — what an FSM compiler (§6.1) would pick —
// and labels the winner: RangeCoalesced when the range model won,
// Convergence otherwise (including ties and machines whose range
// exceeds byte encoding, where range coalescing is inapplicable).
func (p Profile) BestPerSymbol() (perSymbol float64, winner Strategy) {
	c := p.ConvPerSymbol()
	if !p.RangeOK {
		return c, Convergence
	}
	if r := p.RangePerSymbol(); r < c {
		return r, RangeCoalesced
	}
	return c, Convergence
}

// ProfileInput replays input through the machine's enumerative
// execution and returns the shuffle accounting. The convergence model
// factors eagerly (every step), so ConvShuffles is the optimum the
// check heuristics approach; the range model follows Figure 11
// exactly.
func ProfileInput(d *fsm.DFA, input []byte) Profile {
	n := d.NumStates()
	p := Profile{Symbols: len(input)}
	maxRange := d.MaxRangeSize()
	p.RangeOK = maxRange <= 256

	// Convergence accounting: track the exact active set.
	s := gather.Identity[fsm.State](n)
	m := n
	tmp := make([]fsm.State, n)
	nBlocks := (n + gather.Width - 1) / gather.Width
	for i, a := range input {
		p.ConvShuffles += ((m + gather.Width - 1) / gather.Width) * nBlocks
		col := d.Column(a)
		for j := 0; j < m; j++ {
			tmp[j] = col[s[j]]
		}
		_, u := gather.Factor(tmp[:m])
		copy(s, u)
		if len(u) < m {
			p.FactorCalls++
		}
		m = len(u)
		if m > p.MaxActive {
			p.MaxActive = m
		}

		// Range accounting for the same step.
		if p.RangeOK {
			if i == 0 {
				// First symbol: the L_a lookup seeds the name vector.
				// The paper amortizes this as setup; to stay
				// conservative we charge ⌈|range(a)|/W⌉ — one shuffle
				// row per block of the seeded name vector.
				p.RangeShuffles += (d.RangeSize(a) + gather.Width - 1) / gather.Width
			} else {
				w0 := d.RangeSize(input[0])
				prev := d.RangeSize(input[i-1])
				p.RangeShuffles += ((w0 + gather.Width - 1) / gather.Width) *
					((prev + gather.Width - 1) / gather.Width)
			}
		}
	}
	p.FinalActive = m
	return p
}
