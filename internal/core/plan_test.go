package core

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"dpfsm/internal/fsm"
	planwire "dpfsm/internal/plan"
)

// compileFor compiles d for strat, reporting (nil, false) when the
// strategy cannot run this machine (range strategies, max range > 256).
func compileFor(t *testing.T, d *fsm.DFA, strat Strategy) (*Plan, bool) {
	t.Helper()
	p, err := CompilePlan(d, WithStrategy(strat))
	if err != nil {
		if (strat == RangeCoalesced || strat == RangeConvergence) && d.MaxRangeSize() > 256 {
			return nil, false
		}
		t.Fatalf("CompilePlan(%v): %v", strat, err)
	}
	return p, true
}

// TestPlanRoundTripAllStrategies is the serialization acceptance test:
// for every machine shape and every strategy, a plan marshaled and
// reloaded must be structurally equivalent to the original AND produce
// byte-identical match results — same final state from every start
// state, same composition vector, same accept outcome.
func TestPlanRoundTripAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for mi, d := range machines(t, rng) {
		in := d.RandomInput(rng, 512)
		for _, strat := range allStrategies {
			p, ok := compileFor(t, d, strat)
			if !ok {
				continue
			}
			data, err := p.MarshalBinary()
			if err != nil {
				t.Fatalf("machine %d %v: MarshalBinary: %v", mi, strat, err)
			}
			q, err := UnmarshalPlan(data)
			if err != nil {
				t.Fatalf("machine %d %v: UnmarshalPlan: %v", mi, strat, err)
			}
			if !p.equivalent(q) {
				t.Fatalf("machine %d %v: reloaded plan not equivalent", mi, strat)
			}
			if p.Fingerprint() != q.Fingerprint() {
				t.Fatalf("machine %d %v: fingerprint changed across round trip", mi, strat)
			}
			if p.AutoReason() != q.AutoReason() {
				t.Fatalf("machine %d %v: auto reason changed: %q vs %q", mi, strat, p.AutoReason(), q.AutoReason())
			}
			rp, err := NewFromPlan(p)
			if err != nil {
				t.Fatalf("machine %d %v: NewFromPlan(built): %v", mi, strat, err)
			}
			rq, err := NewFromPlan(q)
			if err != nil {
				t.Fatalf("machine %d %v: NewFromPlan(loaded): %v", mi, strat, err)
			}
			vp, vq := rp.CompositionVector(in), rq.CompositionVector(in)
			for s := range vp {
				if vp[s] != vq[s] {
					t.Fatalf("machine %d %v: composition vector differs at start %d: %d vs %d",
						mi, strat, s, vp[s], vq[s])
				}
			}
			for trial := 0; trial < 4; trial++ {
				st := fsm.State(rng.Intn(d.NumStates()))
				if a, b := rp.Final(in, st), rq.Final(in, st); a != b {
					t.Fatalf("machine %d %v: Final from %d differs: %d vs %d", mi, strat, st, a, b)
				}
			}
			if rp.Accepts(in) != rq.Accepts(in) {
				t.Fatalf("machine %d %v: Accepts differs across round trip", mi, strat)
			}
		}
	}
}

// TestPlanSharedAcrossRunners pins the compile/execute split contract:
// many runners over one plan share the same immutable tables and agree
// with each other and with the scalar baseline.
func TestPlanSharedAcrossRunners(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	d := fsm.RandomConverging(rng, 300, 6, 12, 0.3)
	p, err := CompilePlan(d)
	if err != nil {
		t.Fatal(err)
	}
	in := d.RandomInput(rng, 4096)
	want := d.Run(in, d.Start())
	for _, procs := range []int{1, 2, 4} {
		r, err := NewFromPlan(p, WithProcs(procs))
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if r.PlanRef() != p {
			t.Fatalf("procs=%d: runner does not share the plan", procs)
		}
		if got := r.Final(in, d.Start()); got != want {
			t.Fatalf("procs=%d: Final=%d want %d", procs, got, want)
		}
	}
}

func TestNewFromPlanStrategyMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	d := fsm.Random(rng, 16, 4, 0.5)
	p, err := CompilePlan(d, WithStrategy(Base))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromPlan(p, WithStrategy(Convergence)); err == nil {
		t.Fatal("NewFromPlan accepted a strategy the plan was not compiled for")
	} else if !strings.Contains(err.Error(), "recompile") {
		t.Fatalf("unhelpful mismatch error: %v", err)
	}
	if _, err := NewFromPlan(p, WithStrategy(Base)); err != nil {
		t.Fatalf("matching explicit strategy rejected: %v", err)
	}
	if _, err := NewFromPlan(p); err != nil {
		t.Fatalf("defaulted strategy rejected: %v", err)
	}
}

// TestPlanKeyMatchesCompile: the cheap fingerprint must agree with the
// one CompilePlan assigns, for auto-selected and forced strategies, and
// distinguish strategies on the same machine.
func TestPlanKeyMatchesCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for mi, d := range machines(t, rng) {
		for _, opts := range [][]Option{nil, {WithStrategy(Base)}, {WithStrategy(Convergence)}} {
			key, err := PlanKey(d, opts...)
			if err != nil {
				t.Fatalf("machine %d: PlanKey: %v", mi, err)
			}
			p, err := CompilePlan(d, opts...)
			if err != nil {
				t.Fatalf("machine %d: CompilePlan: %v", mi, err)
			}
			if key != p.Fingerprint() {
				t.Fatalf("machine %d: PlanKey %q != CompilePlan fingerprint %q", mi, key, p.Fingerprint())
			}
		}
		kb, _ := PlanKey(d, WithStrategy(Base))
		kc, _ := PlanKey(d, WithStrategy(Convergence))
		if kb == kc {
			t.Fatalf("machine %d: different strategies share a plan key", mi)
		}
		// Runtime-only options must not change the key: the plan is
		// procs-invariant by design.
		kp, _ := PlanKey(d, WithStrategy(Base), WithProcs(7), WithConvCheckEvery(3))
		if kp != kb {
			t.Fatalf("machine %d: runtime options changed the plan key", mi)
		}
	}
}

// retamper re-marshals a wire File after mutation, restoring checksum
// validity so only core's semantic validation can reject it.
func retamper(t *testing.T, data []byte, mut func(*planwire.File)) []byte {
	t.Helper()
	f, err := planwire.Unmarshal(data)
	if err != nil {
		t.Fatalf("retamper decode: %v", err)
	}
	mut(f)
	out, err := f.MarshalBinary()
	if err != nil {
		t.Fatalf("retamper encode: %v", err)
	}
	return out
}

// TestUnmarshalPlanRejectsInconsistent exercises the semantic layer:
// files whose framing and checksum are fine but whose content cannot
// describe the embedded machine must fail with clear errors.
func TestUnmarshalPlanRejectsInconsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	d := fsm.RandomConverging(rng, 64, 8, 5, 0.3)
	rc, err := CompilePlan(d, WithStrategy(RangeCoalesced))
	if err != nil {
		t.Fatal(err)
	}
	rcData, err := rc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	base, err := CompilePlan(d, WithStrategy(Base))
	if err != nil {
		t.Fatal(err)
	}
	baseData, err := base.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"auto strategy", retamper(t, baseData, func(f *planwire.File) { f.Strategy = "auto" }), "resolved strategy"},
		{"unknown strategy", retamper(t, baseData, func(f *planwire.File) { f.Strategy = "warp" }), "strategy"},
		{"range mismatch", retamper(t, baseData, func(f *planwire.File) { f.Ranges[0]++ }), "does not match machine"},
		{"rc missing", retamper(t, rcData, func(f *planwire.File) { f.RC = nil }), "missing its range-coalesced tables"},
		{"rc unexpected", retamper(t, baseData, func(f *planwire.File) {
			g, _ := planwire.Unmarshal(rcData)
			f.RC = g.RC
		}), "unexpected range-coalesced tables"},
		{"U out of range", retamper(t, rcData, func(f *planwire.File) { f.RC.U[0][0] = 60000 }), "out of range"},
		{"L out of range", retamper(t, rcData, func(f *planwire.File) { f.RC.L[2][3] = 255 }), "out of range"},
		{"T out of range", retamper(t, rcData, func(f *planwire.File) {
			f.RC.T[1][0] = 255
		}), "out of range"},
	}
	for _, tc := range cases {
		if _, err := UnmarshalPlan(tc.data); err == nil {
			t.Errorf("%s: UnmarshalPlan succeeded, want error containing %q", tc.name, tc.want)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestStrategyTextMarshaling(t *testing.T) {
	for _, s := range allStrategies {
		text, err := s.MarshalText()
		if err != nil {
			t.Fatalf("%v: MarshalText: %v", s, err)
		}
		var got Strategy
		if err := got.UnmarshalText(text); err != nil {
			t.Fatalf("%v: UnmarshalText(%q): %v", s, text, err)
		}
		if got != s {
			t.Fatalf("text round trip: got %v want %v", got, s)
		}
	}

	// JSON integration: Strategy fields marshal as their names and
	// parse back, with "" meaning Auto for zero-config requests.
	type req struct {
		Strategy Strategy `json:"strategy,omitempty"`
	}
	blob, err := json.Marshal(req{Strategy: RangeConvergence})
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != `{"strategy":"range+conv"}` && !strings.Contains(string(blob), RangeConvergence.String()) {
		t.Fatalf("unexpected JSON encoding %s", blob)
	}
	var back req
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Strategy != RangeConvergence {
		t.Fatalf("JSON round trip: got %v", back.Strategy)
	}

	var empty Strategy
	if err := empty.UnmarshalText(nil); err != nil || empty != Auto {
		t.Fatalf("empty text: got (%v, %v), want Auto", empty, err)
	}
	var bad Strategy
	if err := bad.UnmarshalText([]byte("definitely-not-a-strategy")); err == nil {
		t.Fatal("UnmarshalText accepted garbage")
	}
	if _, err := Strategy(99).MarshalText(); err == nil {
		t.Fatal("MarshalText accepted an invalid strategy value")
	}
}
