package adaptive

import (
	"strings"
	"testing"
)

// profiled builds Inputs with all three lanes well past MinSamples at
// the given throughputs (0 = lane unsampled).
func profiled(single, multi, spec float64) Inputs {
	in := Inputs{
		States: 16, MaxRange: 4, Strategy: "range-coalesced",
		Procs:       4,
		HasHotState: true,
	}
	if single > 0 {
		in.Single = LaneObs{Jobs: 100, BytesPerSec: single}
	}
	if multi > 0 {
		in.Multicore = LaneObs{Jobs: 100, BytesPerSec: multi}
	}
	if spec > 0 {
		in.Speculative = LaneObs{Jobs: 100, BytesPerSec: spec}
		in.SpecChunks = 400
		in.MispredictRate = 0.01
	}
	return in
}

func TestDecideIsDeterministic(t *testing.T) {
	// The determinism contract: identical Inputs yield identical
	// Selections (lane, strategy, and reason, byte for byte), every
	// time. This is what makes selection reasons trustworthy in traces.
	cases := []Inputs{
		{Procs: 1, Strategy: "sequential"},
		{Procs: 4, Strategy: "convergence"},
		profiled(1e6, 5e6, 0),
		profiled(1e6, 5e6, 20e6),
		profiled(0, 3e6, 3e6), // exact throughput tie
		func() Inputs {
			in := profiled(1e6, 5e6, 20e6)
			in.MispredictRate = 0.9
			return in
		}(),
		func() Inputs {
			in := profiled(1e6, 5e6, 6e6)
			in.Incumbent = LaneMulticore
			return in
		}(),
	}
	for i, in := range cases {
		first := Decide(in)
		for rep := 0; rep < 50; rep++ {
			if got := Decide(in); got != first {
				t.Fatalf("case %d rep %d: %+v != %+v", i, rep, got, first)
			}
		}
		if first.Strategy != in.Strategy {
			t.Errorf("case %d: strategy %q not passed through (got %q)", i, in.Strategy, first.Strategy)
		}
		if first.Reason == "" {
			t.Errorf("case %d: empty reason", i)
		}
	}
}

func TestDecideSingleCoreHost(t *testing.T) {
	sel := Decide(Inputs{Procs: 1, Strategy: "sequential"})
	if sel.Lane != LaneSingle {
		t.Fatalf("procs=1 selected %q", sel.Lane)
	}
}

func TestDecideColdStartMatchesLegacyHeuristic(t *testing.T) {
	// No parallel-lane history: the selector must reproduce the
	// pre-adaptive engine behavior (multicore for large inputs).
	sel := Decide(Inputs{Procs: 4, Strategy: "convergence"})
	if sel.Lane != LaneMulticore {
		t.Fatalf("cold start selected %q, want multicore", sel.Lane)
	}
	if !strings.Contains(sel.Reason, "cold start") {
		t.Errorf("reason %q does not mention cold start", sel.Reason)
	}
}

func TestDecidePicksFastestLane(t *testing.T) {
	if sel := Decide(profiled(1e6, 5e6, 20e6)); sel.Lane != LaneSpeculative {
		t.Errorf("fastest spec lane not picked: %+v", sel)
	}
	if sel := Decide(profiled(1e6, 50e6, 20e6)); sel.Lane != LaneMulticore {
		t.Errorf("fastest multicore lane not picked: %+v", sel)
	}
	// A tiny machine where scalar beats both parallel lanes.
	if sel := Decide(profiled(90e6, 50e6, 20e6)); sel.Lane != LaneSingle {
		t.Errorf("fastest single lane not picked: %+v", sel)
	}
	// Exact tie breaks toward the earlier candidate (multicore).
	if sel := Decide(profiled(0, 3e6, 3e6)); sel.Lane != LaneMulticore {
		t.Errorf("tie did not break to multicore: %+v", sel)
	}
}

func TestDecideDisqualifiesHighMispredict(t *testing.T) {
	in := profiled(1e6, 5e6, 20e6)
	in.MispredictRate = MaxMispredictRate + 0.01
	if sel := Decide(in); sel.Lane != LaneMulticore {
		t.Fatalf("mispredicting spec lane still selected: %+v", sel)
	}

	// Spec is the ONLY sampled lane and it is disqualified: fall back
	// to multicore with an explanatory reason.
	lone := Inputs{Procs: 4, Strategy: "convergence",
		Speculative:    LaneObs{Jobs: 100, BytesPerSec: 20e6},
		SpecChunks:     400,
		MispredictRate: 0.8,
	}
	sel := Decide(lone)
	if sel.Lane != LaneMulticore || !strings.Contains(sel.Reason, "disqualified") {
		t.Fatalf("lone disqualified spec lane: %+v", sel)
	}
}

func TestDecideHysteresis(t *testing.T) {
	// Challenger at 1.1x the incumbent: inside the band, incumbent holds.
	in := profiled(0, 5e6, 5.5e6)
	in.Incumbent = LaneMulticore
	if sel := Decide(in); sel.Lane != LaneMulticore {
		t.Fatalf("1.10x challenger displaced incumbent: %+v", sel)
	}
	// Challenger at 1.2x: clears the band, switch.
	in = profiled(0, 5e6, 6e6)
	in.Incumbent = LaneMulticore
	if sel := Decide(in); sel.Lane != LaneSpeculative {
		t.Fatalf("1.20x challenger failed to displace incumbent: %+v", sel)
	}
	// An unsampled incumbent (e.g. after a profile wipe) has no claim.
	in = profiled(0, 0, 6e6)
	in.Incumbent = LaneMulticore
	if sel := Decide(in); sel.Lane != LaneSpeculative {
		t.Fatalf("ghost incumbent held the lane: %+v", sel)
	}
}

func TestSelectorRefreshUsesOwnIncumbent(t *testing.T) {
	s := NewSelector(profiled(0, 5e6, 0))
	if got := s.Selection().Lane; got != LaneMulticore {
		t.Fatalf("initial selection %q", got)
	}
	// A fresh Inputs with a conflicting Incumbent field: the selector
	// must anchor hysteresis on its OWN current lane, not the caller's.
	in := profiled(0, 5e6, 5.5e6)
	in.Incumbent = LaneSpeculative // lies; selector holds multicore
	if sel := s.Refresh(in); sel.Lane != LaneMulticore {
		t.Fatalf("selector trusted caller incumbent: %+v", sel)
	}
	// And a clear winner still flips it.
	if sel := s.Refresh(profiled(0, 5e6, 60e6)); sel.Lane != LaneSpeculative {
		t.Fatalf("selector failed to flip on a 12x challenger: %+v", sel)
	}
}

func TestSelectorNoteJobCadence(t *testing.T) {
	s := NewSelector(profiled(0, 5e6, 0))
	due := 0
	for i := 0; i < 3*EvalEvery; i++ {
		if s.NoteJob() {
			due++
		}
	}
	if due != 3 {
		t.Fatalf("refresh due %d times over %d jobs, want 3", due, 3*EvalEvery)
	}
}

func TestSelectorProbesUndersampledSpecLane(t *testing.T) {
	// Multicore selected, spec lane unsampled, hot state known: the
	// probe schedule must route exactly one in ProbeEvery large jobs to
	// the speculative lane.
	in := profiled(0, 5e6, 0)
	s := NewSelector(in)
	probes := 0
	for i := 0; i < 4*ProbeEvery; i++ {
		lane, reason := s.LaneFor()
		if lane == LaneSpeculative {
			probes++
			if !strings.Contains(reason, "probing") {
				t.Fatalf("probe without probing reason: %q", reason)
			}
		}
		s.NoteJob()
	}
	if probes != 4 {
		t.Fatalf("probed %d times over %d jobs, want 4", probes, 4*ProbeEvery)
	}

	// No hot state → no probe.
	cold := profiled(0, 5e6, 0)
	cold.HasHotState = false
	s2 := NewSelector(cold)
	for i := 0; i < 4*ProbeEvery; i++ {
		if lane, _ := s2.LaneFor(); lane == LaneSpeculative {
			t.Fatal("probed speculative lane with no hot-state signal")
		}
		s2.NoteJob()
	}

	// Once the spec lane has samples, probing stops.
	warm := profiled(0, 5e6, 1e6)
	s3 := NewSelector(warm)
	for i := 0; i < 4*ProbeEvery; i++ {
		if lane, _ := s3.LaneFor(); lane == LaneSpeculative {
			t.Fatal("probed a lane that already has MinSamples")
		}
		s3.NoteJob()
	}
}

func TestNilSelectorIsInert(t *testing.T) {
	var s *Selector
	if s.Selection() != (Selection{}) {
		t.Error("nil Selection not zero")
	}
	if s.NoteJob() {
		t.Error("nil NoteJob reported due")
	}
	if lane, _ := s.LaneFor(); lane != "" {
		t.Error("nil LaneFor returned a lane")
	}
	s.Refresh(Inputs{})
}
