// Package adaptive closes the loop between the perf profiles the
// engine records and the dispatch decisions it makes: given a
// machine's compile-time shape (state count, widest transition range)
// and its observed behavior (per-lane throughput, speculative
// mispredict rate, convergence rate), pick the execution lane for
// large inputs — single-core, the paper's Figure 5 multicore, or the
// §7 speculative baseline.
//
// The design splits policy from bookkeeping:
//
//   - Decide is a pure function of Inputs. Same inputs, same answer,
//     independent of call order or map iteration — this is what makes
//     selection testable and its reasons trustworthy.
//   - Selector wraps Decide with the run-time statefulness a server
//     needs: a current selection readable on the hot path without
//     locks, periodic re-evaluation (NoteJob), hysteresis against
//     flapping, and deterministic probing so an undersampled lane can
//     earn its first samples without being trusted with the whole
//     workload.
//
// Cold start falls back to the engine's historical heuristic (large
// input + spare cores → multicore), so a machine with no profile
// behaves exactly as it did before this package existed.
package adaptive

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Tuning constants. Exported so status surfaces and tests can explain
// selections in the same terms the selector uses.
const (
	// MinSamples is how many jobs a lane must have executed before its
	// observed throughput is trusted.
	MinSamples = 8
	// EvalEvery is how many jobs pass between selection re-evaluations.
	EvalEvery = 32
	// HysteresisRatio is how much faster a challenger lane must be
	// before it displaces the incumbent: switching has real costs
	// (warm caches, steady queues), so near-ties stay put.
	HysteresisRatio = 1.15
	// MaxMispredictRate disqualifies the speculative lane: beyond it,
	// re-run work erases the fan-out win (the paper's §7 cascade
	// argument, measured instead of assumed).
	MaxMispredictRate = 0.25
	// ProbeEvery routes one in this many large jobs to an undersampled
	// speculative lane, so it can accumulate MinSamples without ever
	// carrying more than a sliver of the workload.
	ProbeEvery = 8
)

// Lane names. Kept string-identical to the engine's and perfprofile's
// vocabulary so selections can be compared and logged without mapping.
const (
	LaneSingle      = "single"
	LaneMulticore   = "multicore"
	LaneSpeculative = "speculative"
)

// LaneObs is one lane's observed history, lifted from the machine's
// perf profile.
type LaneObs struct {
	Jobs        int64
	BytesPerSec float64
}

// Inputs is everything Decide looks at. Compile-time fields come from
// the plan, observed fields from the merged (baseline + live) perf
// profile, and Incumbent from the selector's own prior decision.
type Inputs struct {
	// Compile-time shape.
	States   int
	MaxRange int
	Strategy string // the plan's resolved (never "auto") strategy

	// Environment.
	Procs int

	// Observed per-lane history.
	Single      LaneObs
	Multicore   LaneObs
	Speculative LaneObs

	// Speculative-lane quality signals.
	MispredictRate float64
	SpecChunks     int64
	// HasHotState reports whether the profile has seen any final state
	// at all — without one the speculative guess is uninformed and
	// probing is not worth the re-run risk.
	HasHotState bool

	// ConvergenceRate is the machine's observed §5.2 convergence-check
	// win rate; converging machines are the ones speculation can work
	// on at all.
	ConvergenceRate float64

	// Incumbent is the currently selected lane ("" on first
	// evaluation); the hysteresis anchor.
	Incumbent string
}

// Selection is one decision: the lane large inputs should take, the
// strategy they run under, and a human-readable justification that
// ends up in trace spans, /v1/status, and bench reports.
type Selection struct {
	Lane     string `json:"lane"`
	Strategy string `json:"strategy"`
	Reason   string `json:"reason"`
}

// sampled reports whether a lane has enough history to trust.
func sampled(o LaneObs) bool { return o.Jobs >= MinSamples && o.BytesPerSec > 0 }

// Decide picks a lane from in. Pure and deterministic: candidate
// lanes are considered in a fixed order and every numeric comparison
// is on plain float64s, so identical Inputs always yield identical
// Selections.
func Decide(in Inputs) Selection {
	if in.Procs <= 1 {
		return Selection{Lane: LaneSingle, Strategy: in.Strategy,
			Reason: "single core available; parallel lanes need procs>1"}
	}

	specTrusted := sampled(in.Speculative) && in.MispredictRate <= MaxMispredictRate
	anyParallelSampled := sampled(in.Multicore) || sampled(in.Speculative)
	if !anyParallelSampled {
		// Cold start: no parallel lane has history, so fall back to the
		// pre-adaptive heuristic rather than guessing from nothing.
		return Selection{Lane: LaneMulticore, Strategy: in.Strategy,
			Reason: fmt.Sprintf("cold start (<%d parallel-lane jobs observed); default multicore heuristic", MinSamples)}
	}

	// Fixed candidate order = deterministic tie-breaks: multicore, then
	// speculative, then single.
	cands := make([]laneCand, 0, 3)
	if sampled(in.Multicore) {
		cands = append(cands, laneCand{LaneMulticore, in.Multicore})
	}
	if specTrusted {
		cands = append(cands, laneCand{LaneSpeculative, in.Speculative})
	}
	if sampled(in.Single) {
		cands = append(cands, laneCand{LaneSingle, in.Single})
	}
	if len(cands) == 0 {
		// Speculative was the only sampled lane and its mispredict rate
		// disqualified it.
		return Selection{Lane: LaneMulticore, Strategy: in.Strategy,
			Reason: fmt.Sprintf("speculative disqualified (mispredict rate %.2f > %.2f); multicore fallback",
				in.MispredictRate, MaxMispredictRate)}
	}

	best := cands[0]
	for _, c := range cands[1:] {
		if c.obs.BytesPerSec > best.obs.BytesPerSec {
			best = c
		}
	}

	// Hysteresis: a sampled incumbent keeps the lane unless the best
	// challenger clears the ratio.
	if in.Incumbent != "" && in.Incumbent != best.lane {
		if inc, ok := lookup(cands, in.Incumbent); ok &&
			best.obs.BytesPerSec < inc.BytesPerSec*HysteresisRatio {
			return Selection{Lane: in.Incumbent, Strategy: in.Strategy,
				Reason: fmt.Sprintf("holding %s: %s at %s is within the %.2fx hysteresis band of %s",
					in.Incumbent, best.lane, rate(best.obs.BytesPerSec), HysteresisRatio, rate(inc.BytesPerSec))}
		}
	}

	reason := fmt.Sprintf("profile: %s fastest at %s", best.lane, rate(best.obs.BytesPerSec))
	if runner, ok := runnerUp(cands, best.lane); ok {
		reason += fmt.Sprintf(" (next: %s at %s)", runner.lane, rate(runner.obs.BytesPerSec))
	}
	if best.lane == LaneSpeculative {
		reason += fmt.Sprintf("; mispredict rate %.2f", in.MispredictRate)
	}
	return Selection{Lane: best.lane, Strategy: in.Strategy, Reason: reason}
}

// laneCand pairs a lane name with its observations during Decide's
// comparison pass.
type laneCand struct {
	lane string
	obs  LaneObs
}

func lookup(cands []laneCand, lane string) (LaneObs, bool) {
	for _, c := range cands {
		if c.lane == lane {
			return c.obs, true
		}
	}
	return LaneObs{}, false
}

func runnerUp(cands []laneCand, bestLane string) (laneCand, bool) {
	var best laneCand
	found := false
	for _, c := range cands {
		if c.lane == bestLane {
			continue
		}
		if !found || c.obs.BytesPerSec > best.obs.BytesPerSec {
			best, found = c, true
		}
	}
	return best, found
}

// rate renders bytes/sec for reason strings.
func rate(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.1f GB/s", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.1f MB/s", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.1f kB/s", bps/1e3)
	default:
		return fmt.Sprintf("%.0f B/s", bps)
	}
}

// Selector is the stateful wrapper one machine owns: current
// selection, job counting toward the next re-evaluation, and the
// speculative probe schedule.
type Selector struct {
	mu  sync.Mutex
	cur Selection
	// probeSpec is set when the speculative lane should be sampled on a
	// deterministic cadence even though it is not the selected lane.
	probeSpec bool

	jobs atomic.Int64
}

// NewSelector evaluates in and returns a selector holding the result.
func NewSelector(in Inputs) *Selector {
	s := &Selector{}
	s.Refresh(in)
	return s
}

// Selection returns the current decision.
func (s *Selector) Selection() Selection {
	if s == nil {
		return Selection{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// Refresh re-runs Decide against fresh inputs (the incumbent is the
// selector's own current lane, overriding in.Incumbent) and installs
// the result. It also re-derives the probe schedule: the speculative
// lane is probed while it is unselected, undersampled, not yet
// disqualified, and the machine has a hot state to guess from.
func (s *Selector) Refresh(in Inputs) Selection {
	if s == nil {
		return Selection{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur.Lane != "" {
		in.Incumbent = s.cur.Lane
	}
	s.cur = Decide(in)
	s.probeSpec = s.cur.Lane != LaneSpeculative &&
		in.Procs > 1 &&
		in.HasHotState &&
		in.Speculative.Jobs < MinSamples &&
		(in.SpecChunks == 0 || in.MispredictRate <= MaxMispredictRate)
	return s.cur
}

// NoteJob counts one large-input job and reports whether the caller
// should Refresh (every EvalEvery jobs).
func (s *Selector) NoteJob() bool {
	if s == nil {
		return false
	}
	return s.jobs.Add(1)%EvalEvery == 0
}

// LaneFor returns the lane and reason for the next large-input job,
// interleaving deterministic probes of the speculative lane when the
// schedule calls for them.
func (s *Selector) LaneFor() (string, string) {
	if s == nil {
		return "", ""
	}
	n := s.jobs.Load()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.probeSpec && n%ProbeEvery == ProbeEvery-1 {
		return LaneSpeculative, fmt.Sprintf("probing speculative lane (1 in %d jobs until %d samples)", ProbeEvery, MinSamples)
	}
	return s.cur.Lane, s.cur.Reason
}
