package bitstream

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestAppendStreamAligned(t *testing.T) {
	var w Writer
	w.AppendStream([]byte{0xAB, 0xCD}, 16)
	if w.Len() != 16 || !bytes.Equal(w.Bytes(), []byte{0xAB, 0xCD}) {
		t.Fatalf("aligned append: len=%d bytes=%x", w.Len(), w.Bytes())
	}
	// Aligned with trailing partial bits.
	w.AppendStream([]byte{0b11100000}, 3)
	if w.Len() != 19 {
		t.Fatalf("len = %d", w.Len())
	}
	var ref Writer
	ref.WriteBits(0xABCD, 16)
	ref.WriteBits(0b111, 3)
	if !bytes.Equal(w.Bytes(), ref.Bytes()) {
		t.Fatalf("got %x want %x", w.Bytes(), ref.Bytes())
	}
}

func TestAppendStreamUnaligned(t *testing.T) {
	var w Writer
	w.WriteBit(1) // misalign
	w.AppendStream([]byte{0xFF, 0x00}, 16)
	var ref Writer
	ref.WriteBit(1)
	ref.WriteBits(0xFF, 8)
	ref.WriteBits(0x00, 8)
	if w.Len() != ref.Len() || !bytes.Equal(w.Bytes(), ref.Bytes()) {
		t.Fatalf("unaligned append diverged: %x vs %x", w.Bytes(), ref.Bytes())
	}
}

func TestAppendStreamRandomSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(260))
	for iter := 0; iter < 200; iter++ {
		nbits := rng.Intn(200)
		bits := make([]byte, nbits)
		var ref Writer
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
			ref.WriteBit(bits[i])
		}
		// Rebuild via two packed halves appended to a writer that may
		// start unaligned.
		lead := rng.Intn(8)
		var refLead Writer
		var w Writer
		for i := 0; i < lead; i++ {
			b := byte(rng.Intn(2))
			refLead.WriteBit(b)
			w.WriteBit(b)
		}
		for _, b := range bits {
			refLead.WriteBit(b)
		}
		cut := 0
		if nbits > 0 {
			cut = rng.Intn(nbits + 1)
		}
		var h1, h2 Writer
		for _, b := range bits[:cut] {
			h1.WriteBit(b)
		}
		for _, b := range bits[cut:] {
			h2.WriteBit(b)
		}
		w.AppendStream(h1.Bytes(), h1.Len())
		w.AppendStream(h2.Bytes(), h2.Len())
		if w.Len() != refLead.Len() || !bytes.Equal(w.Bytes(), refLead.Bytes()) {
			t.Fatalf("iter %d: split append diverged", iter)
		}
	}
}
