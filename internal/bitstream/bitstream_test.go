package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var w Writer
	bits := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range bits {
		w.WriteBit(b)
	}
	if w.Len() != len(bits) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(bits))
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, want := range bits {
		got, ok := r.ReadBit()
		if !ok || got != want {
			t.Fatalf("bit %d: got %d ok=%v, want %d", i, got, ok, want)
		}
	}
	if _, ok := r.ReadBit(); ok {
		t.Error("read past end should fail")
	}
}

func TestMSBFirstPacking(t *testing.T) {
	var w Writer
	w.WriteBits(0b10110010, 8)
	bs := w.Bytes()
	if len(bs) != 1 || bs[0] != 0b10110010 {
		t.Fatalf("packed byte = %08b", bs[0])
	}
}

func TestWriteBitsPartial(t *testing.T) {
	var w Writer
	w.WriteBits(0b101, 3)
	w.WriteBits(0b01, 2)
	// Stream: 1 0 1 0 1 → padded byte 10101000.
	if got := w.Bytes()[0]; got != 0b10101000 {
		t.Fatalf("packed = %08b", got)
	}
	if w.Len() != 5 {
		t.Fatalf("Len = %d", w.Len())
	}
}

func TestReaderRemaining(t *testing.T) {
	r := NewReader([]byte{0xFF, 0x00}, 12)
	if r.Remaining() != 12 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	for i := 0; i < 5; i++ {
		r.ReadBit()
	}
	if r.Remaining() != 7 {
		t.Fatalf("after 5 reads Remaining = %d", r.Remaining())
	}
}

func TestReaderNegativeNBits(t *testing.T) {
	r := NewReader([]byte{0xAA}, -1)
	if r.Remaining() != 8 {
		t.Fatalf("Remaining = %d, want 8", r.Remaining())
	}
	want := []byte{1, 0, 1, 0, 1, 0, 1, 0}
	for i, wb := range want {
		b, ok := r.ReadBit()
		if !ok || b != wb {
			t.Fatalf("bit %d = %d", i, b)
		}
	}
}

func TestReaderClampsOversizedNBits(t *testing.T) {
	r := NewReader([]byte{0x00}, 99)
	if r.Remaining() != 8 {
		t.Fatalf("Remaining = %d, want clamped 8", r.Remaining())
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	f := func(raw []byte, extra uint8) bool {
		var w Writer
		bits := make([]byte, 0, len(raw)+int(extra%7))
		for _, b := range raw {
			bits = append(bits, b&1)
		}
		for i := 0; i < int(extra%7); i++ {
			bits = append(bits, byte(i)&1)
		}
		for _, b := range bits {
			w.WriteBit(b)
		}
		r := NewReader(w.Bytes(), w.Len())
		for _, want := range bits {
			got, ok := r.ReadBit()
			if !ok || got != want {
				return false
			}
		}
		_, ok := r.ReadBit()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestWriteBitsMatchesWriteBit(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for iter := 0; iter < 100; iter++ {
		v := rng.Uint64()
		n := 1 + rng.Intn(64)
		var a, b Writer
		a.WriteBits(v, n)
		for i := n - 1; i >= 0; i-- {
			b.WriteBit(byte(v >> uint(i) & 1))
		}
		ab, bb := a.Bytes(), b.Bytes()
		if a.Len() != b.Len() || len(ab) != len(bb) {
			t.Fatal("length mismatch")
		}
		for i := range ab {
			if ab[i] != bb[i] {
				t.Fatal("content mismatch")
			}
		}
	}
}
