// Package bitstream provides MSB-first bit-level readers and writers,
// the IO substrate for the Huffman case study. Bits are packed into
// bytes most-significant-bit first, matching the block-symbol packing
// of fsm.Unroll so that one byte of stream drives one transition of the
// unrolled decoder machine.
package bitstream

// Writer accumulates bits MSB-first.
type Writer struct {
	buf   []byte
	nbits int
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b byte) {
	if w.nbits%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[w.nbits/8] |= 1 << (7 - uint(w.nbits%8))
	}
	w.nbits++
}

// WriteBits appends the low n bits of v, most significant first.
func (w *Writer) WriteBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(byte(v >> uint(i) & 1))
	}
}

// AppendStream appends the first nbits bits of another packed
// MSB-first stream. When the writer is byte-aligned this is a copy;
// otherwise every incoming byte is shifted into place. This is the
// merge primitive for parallel encoders that produce per-chunk
// bitstreams.
func (w *Writer) AppendStream(data []byte, nbits int) {
	if nbits <= 0 {
		return
	}
	if nbits > len(data)*8 {
		nbits = len(data) * 8
	}
	if w.nbits%8 == 0 {
		// Aligned fast path: bulk-copy whole bytes, then the tail bits.
		full := nbits / 8
		w.buf = append(w.buf, data[:full]...)
		w.nbits += full * 8
		if rem := nbits - full*8; rem > 0 {
			w.WriteBits(uint64(data[full]>>(8-uint(rem))), rem)
		}
		return
	}
	full := nbits / 8
	for i := 0; i < full; i++ {
		w.WriteBits(uint64(data[i]), 8)
	}
	if rem := nbits - full*8; rem > 0 {
		w.WriteBits(uint64(data[full]>>(8-uint(rem))), rem)
	}
}

// Len returns the number of bits written.
func (w *Writer) Len() int { return w.nbits }

// Bytes returns the packed stream; the final byte is zero-padded.
func (w *Writer) Bytes() []byte { return w.buf }

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	data []byte
	pos  int // bit position
	end  int // total valid bits
}

// NewReader reads nbits valid bits from data. nbits < 0 means all of
// data.
func NewReader(data []byte, nbits int) *Reader {
	if nbits < 0 || nbits > len(data)*8 {
		nbits = len(data) * 8
	}
	return &Reader{data: data, end: nbits}
}

// ReadBit returns the next bit; ok is false at end of stream.
func (r *Reader) ReadBit() (bit byte, ok bool) {
	if r.pos >= r.end {
		return 0, false
	}
	b := r.data[r.pos/8] >> (7 - uint(r.pos%8)) & 1
	r.pos++
	return b, true
}

// Remaining reports how many bits are left.
func (r *Reader) Remaining() int { return r.end - r.pos }
