package htmltok

import (
	"reflect"
	"testing"

	"dpfsm/internal/core"
)

// FuzzTokenizersAgree feeds arbitrary bytes to all three tokenizer
// implementations; they must produce identical token streams and never
// panic — the drop-in guarantee of §6.3 under adversarial input.
func FuzzTokenizersAgree(f *testing.F) {
	f.Add([]byte("<html><body class='x'>hi</body></html>"))
	f.Add([]byte("<!-- --><!doctype html><a b=c>"))
	f.Add([]byte("<<<>>>&&&'\"=</ <! <?"))
	f.Add([]byte(""))

	tk, err := NewTokenizer(core.WithStrategy(core.Convergence), core.WithProcs(3), core.WithMinChunk(16))
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 1<<16 {
			return
		}
		a := TokenizeSwitch(input)
		b := tk.TokenizeTable(input)
		c := tk.Tokenize(input)
		if !reflect.DeepEqual(a, b) {
			t.Fatal("switch and table tokenizers disagree")
		}
		if !reflect.DeepEqual(a, c) {
			t.Fatal("switch and parallel tokenizers disagree")
		}
	})
}
