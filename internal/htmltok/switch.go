package htmltok

import "dpfsm/internal/fsm"

// The switch-encoded tokenizer. This is the stand-in for bing's
// hand-optimized baseline (§6.3): the transition function is encoded as
// control flow (a big switch with per-state branch logic) rather than a
// table lookup, trading the table's unpredictable data access for
// unpredictable branches — footnote 1 of the paper.

// switchNext is the single-step transition function, written as
// explicit control flow. It is the definitional semantics of the
// tokenizer; NewMachine materializes it into a table.
func switchNext(q fsm.State, b byte) fsm.State {
	switch q {
	case StateData:
		switch {
		case b == '<':
			return StateTagOpen
		case b == '&':
			return StateCharRef
		}
		return StateData

	case StateCharRef:
		switch {
		case isLetter(b) || isDigit(b) || b == '#':
			return StateCharRefBody
		case b == '<':
			return StateTagOpen
		case b == '&':
			return StateCharRef
		}
		return StateData

	case StateCharRefBody:
		switch {
		case isLetter(b) || isDigit(b):
			return StateCharRefBody
		case b == ';':
			return StateData
		case b == '<':
			return StateTagOpen
		case b == '&':
			return StateCharRef
		}
		return StateData

	case StateTagOpen:
		switch {
		case b == '/':
			return StateEndTagOpen
		case b == '!':
			return StateMarkupDecl
		case b == '?':
			return StateBogus
		case isLetter(b):
			return StateTagName
		case b == '<':
			return StateTagOpen // "<<" — stray, retry
		}
		return StateData // stray '<' followed by text

	case StateTagName:
		switch {
		case isNameChar(b):
			return StateTagName
		case isSpace(b):
			return StateBeforeAttrName
		case b == '/':
			return StateSelfClosing
		case b == '>':
			return StateData
		}
		return StateTagName // junk inside a name: swallow

	case StateEndTagOpen:
		switch {
		case isLetter(b):
			return StateEndTagName
		case b == '>':
			return StateData
		}
		return StateBogus

	case StateEndTagName:
		switch {
		case isNameChar(b):
			return StateEndTagName
		case b == '>':
			return StateData
		case isSpace(b):
			return StateAfterEndTagName
		}
		return StateEndTagName

	case StateAfterEndTagName:
		if b == '>' {
			return StateData
		}
		return StateAfterEndTagName

	case StateBeforeAttrName:
		switch {
		case isSpace(b):
			return StateBeforeAttrName
		case b == '>':
			return StateData
		case b == '/':
			return StateSelfClosing
		case b == '=':
			return StateBeforeAttrValue // HTML quirk: "= starts a value"
		}
		return StateAttrName

	case StateAttrName:
		switch {
		case isSpace(b):
			return StateAfterAttrName
		case b == '=':
			return StateBeforeAttrValue
		case b == '>':
			return StateData
		case b == '/':
			return StateSelfClosing
		}
		return StateAttrName

	case StateAfterAttrName:
		switch {
		case isSpace(b):
			return StateAfterAttrName
		case b == '=':
			return StateBeforeAttrValue
		case b == '>':
			return StateData
		case b == '/':
			return StateSelfClosing
		}
		return StateAttrName

	case StateBeforeAttrValue:
		switch {
		case isSpace(b):
			return StateBeforeAttrValue
		case b == '"':
			return StateAttrValueDQ
		case b == '\'':
			return StateAttrValueSQ
		case b == '>':
			return StateData
		}
		return StateAttrValueUnq

	case StateAttrValueDQ:
		if b == '"' {
			return StateAfterAttrValueQ
		}
		return StateAttrValueDQ

	case StateAttrValueSQ:
		if b == '\'' {
			return StateAfterAttrValueQ
		}
		return StateAttrValueSQ

	case StateAttrValueUnq:
		switch {
		case isSpace(b):
			return StateBeforeAttrName
		case b == '>':
			return StateData
		}
		return StateAttrValueUnq

	case StateAfterAttrValueQ:
		switch {
		case isSpace(b):
			return StateBeforeAttrName
		case b == '>':
			return StateData
		case b == '/':
			return StateSelfClosing
		}
		return StateBeforeAttrName // recover: treat as new attribute area

	case StateSelfClosing:
		if b == '>' {
			return StateData
		}
		return StateBeforeAttrName

	case StateMarkupDecl:
		switch {
		case b == '-':
			return StateCommentStart
		case b == 'D' || b == 'd':
			return StateDoctype
		case b == '>':
			return StateData
		}
		return StateBogus

	case StateCommentStart:
		if b == '-' {
			return StateCommentBody
		}
		return StateBogus

	case StateCommentBody:
		if b == '-' {
			return StateCommentDash
		}
		return StateCommentBody

	case StateCommentDash:
		if b == '-' {
			return StateCommentDashDash
		}
		return StateCommentBody

	case StateCommentDashDash:
		switch {
		case b == '>':
			return StateData
		case b == '-':
			return StateCommentDashDash
		case b == '!':
			return StateCommentEndBang
		}
		return StateCommentBody

	case StateCommentEndBang:
		switch {
		case b == '>':
			return StateData
		case b == '-':
			return StateCommentDash
		}
		return StateCommentBody

	case StateDoctype:
		switch {
		case b == '>':
			return StateData
		case b == '"':
			return StateDoctypeDQ
		case b == '\'':
			return StateDoctypeSQ
		}
		return StateDoctype

	case StateDoctypeDQ:
		if b == '"' {
			return StateDoctype
		}
		return StateDoctypeDQ

	case StateDoctypeSQ:
		if b == '\'' {
			return StateDoctype
		}
		return StateDoctypeSQ

	case StateBogus:
		if b == '>' {
			return StateData
		}
		return StateBogus
	}
	return StateData
}

// TokenizeSwitch is the optimized sequential baseline: switch-encoded
// transitions with inline token-run tracking, one pass, no transition
// table. Token spans index into input.
func TokenizeSwitch(input []byte) []Token {
	toks := make([]Token, 0, len(input)/8+4)
	e := emitter{}
	q := StateData
	for i, b := range input {
		next := switchNext(q, b)
		e.step(&toks, i, classify(q, b, next))
		q = next
	}
	e.flush(&toks, len(input))
	return toks
}
