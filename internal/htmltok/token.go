package htmltok

import (
	"fmt"

	"dpfsm/internal/fsm"
)

// TokenType classifies a token.
type TokenType uint8

const (
	tokNone TokenType = iota // markup punctuation: no token emitted
	TokText
	TokStartTagName
	TokEndTagName
	TokAttrName
	TokAttrValue
	TokComment
	TokDoctype
	TokBogus
)

// String names the token type.
func (t TokenType) String() string {
	switch t {
	case TokText:
		return "text"
	case TokStartTagName:
		return "start-tag"
	case TokEndTagName:
		return "end-tag"
	case TokAttrName:
		return "attr-name"
	case TokAttrValue:
		return "attr-value"
	case TokComment:
		return "comment"
	case TokDoctype:
		return "doctype"
	case TokBogus:
		return "bogus"
	default:
		return fmt.Sprintf("TokenType(%d)", uint8(t))
	}
}

// Token is a classified span [Start, End) of the input.
type Token struct {
	Type       TokenType
	Start, End int
}

// classify assigns the byte consumed by the transition prev→next to a
// token class, or tokNone for markup punctuation. Tokens are maximal
// runs of equal class — the φ-function output of the tokenizer FSM
// (§2.1 Mealy formalism), phrased so it is computable from the
// transition alone, which is what makes chunk-parallel re-runs
// (Figure 5 phase 3) produce identical output.
func classify(prev fsm.State, b byte, next fsm.State) TokenType {
	switch next {
	case StateTagName:
		return TokStartTagName
	case StateEndTagName:
		return TokEndTagName
	case StateAttrName:
		return TokAttrName
	case StateAttrValueDQ:
		if prev == StateBeforeAttrValue {
			return tokNone // opening quote
		}
		return TokAttrValue
	case StateAttrValueSQ:
		if prev == StateBeforeAttrValue {
			return tokNone
		}
		return TokAttrValue
	case StateAttrValueUnq:
		return TokAttrValue
	case StateCommentBody:
		if prev == StateCommentStart {
			return tokNone // second dash of the "<!--" opener
		}
		return TokComment
	case StateCommentDash, StateCommentDashDash, StateCommentEndBang:
		return TokComment
	case StateDoctype, StateDoctypeDQ, StateDoctypeSQ:
		return TokDoctype
	case StateBogus:
		return TokBogus
	case StateData, StateCharRef, StateCharRefBody:
		switch prev {
		case StateData, StateCharRef, StateCharRefBody:
			return TokText
		}
		return tokNone // '>' and friends closing a construct
	default:
		return tokNone
	}
}

// NewTransducer materializes classify as a Mealy output table over the
// tokenizer machine: λ(q, a) = classify(q, a, δ(q, a)). Because
// classify depends only on the transition being taken, the table is
// exactly equivalent to the callback — and once tabled, the generic
// transducing runners (core.TransduceSpans) replay it chunk-parallel
// with no tokenizer-specific stitching code. Token classes are the
// output alphabet; tokNone is fsm.OutputNone, so spans are tokens.
func NewTransducer() *fsm.Transducer {
	m := NewMachine()
	tr, err := fsm.NewMealy(m, int(TokBogus)+1)
	if err != nil {
		panic(err) // static shape; cannot fail
	}
	for a := 0; a < m.NumSymbols(); a++ {
		for q := fsm.State(0); q < NumStates; q++ {
			cls := classify(q, byte(a), m.Next(q, byte(a)))
			tr.SetMealyOutput(q, byte(a), fsm.Output(cls))
		}
	}
	return tr
}

// emitter folds a per-byte class stream into maximal-run tokens.
type emitter struct {
	cur   TokenType
	start int
}

// step consumes the class of the byte at position pos.
func (e *emitter) step(toks *[]Token, pos int, cls TokenType) {
	if cls == e.cur {
		return
	}
	if e.cur != tokNone {
		*toks = append(*toks, Token{Type: e.cur, Start: e.start, End: pos})
	}
	e.cur = cls
	e.start = pos
}

// flush closes any open token at end (exclusive).
func (e *emitter) flush(toks *[]Token, end int) {
	if e.cur != tokNone {
		*toks = append(*toks, Token{Type: e.cur, Start: e.start, End: end})
		e.cur = tokNone
	}
}

// tokenizeFrom tokenizes chunk (whose first byte sits at global offset
// off) starting in state q, using machine table lookups. It returns the
// tokens and the state after the chunk.
func tokenizeFrom(d *fsm.DFA, chunk []byte, off int, q fsm.State) ([]Token, fsm.State) {
	toks := make([]Token, 0, len(chunk)/8+4)
	e := emitter{}
	for i, b := range chunk {
		next := d.Next(q, b)
		e.step(&toks, off+i, classify(q, b, next))
		q = next
	}
	e.flush(&toks, off+len(chunk))
	return toks, q
}
