package htmltok

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
)

func TestMachineShape(t *testing.T) {
	m := NewMachine()
	if m.NumStates() != 27 {
		t.Fatalf("machine has %d states, want 27 (the paper's bing count)", m.NumStates())
	}
	if m.NumSymbols() != 256 {
		t.Fatalf("alphabet %d, want 256", m.NumSymbols())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Start() != StateData {
		t.Error("start state must be Data")
	}
}

func TestTableMatchesSwitch(t *testing.T) {
	m := NewMachine()
	for q := fsm.State(0); q < NumStates; q++ {
		for b := 0; b < 256; b++ {
			if m.Next(q, byte(b)) != switchNext(q, byte(b)) {
				t.Fatalf("table and switch disagree at state %d byte %d", q, b)
			}
		}
	}
}

func TestMachineIsReasonablySmallRange(t *testing.T) {
	// §6.3: the machine has fewer than 32 states, so convergence alone
	// reaches the two-shuffle regime; ranges stay well under that bound.
	m := NewMachine()
	if r := m.MaxRangeSize(); r > 32 {
		t.Errorf("max range %d; expected the tokenizer to have small ranges", r)
	}
}

func tokStrings(input []byte, toks []Token) []string {
	var out []string
	for _, tk := range toks {
		out = append(out, tk.Type.String()+":"+string(input[tk.Start:tk.End]))
	}
	return out
}

func TestTokenizeSimpleDocument(t *testing.T) {
	input := []byte(`<html><body class="main">Hi &amp; bye<!-- note --></body></html>`)
	got := tokStrings(input, TokenizeSwitch(input))
	want := []string{
		"start-tag:html",
		"start-tag:body",
		"attr-name:class",
		"attr-value:main",
		"text:Hi &amp; bye",
		"comment: note --",
		"end-tag:body",
		"end-tag:html",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokens:\n got %q\nwant %q", got, want)
	}
}

func TestTokenizeAttributeForms(t *testing.T) {
	input := []byte(`<a href='x' id=plain checked data-x="1 2">t</a>`)
	got := tokStrings(input, TokenizeSwitch(input))
	want := []string{
		"start-tag:a",
		"attr-name:href",
		"attr-value:x",
		"attr-name:id",
		"attr-value:plain",
		"attr-name:checked",
		"attr-name:data-x",
		"attr-value:1 2",
		"text:t",
		"end-tag:a",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokens:\n got %q\nwant %q", got, want)
	}
}

func TestTokenizeDoctypeAndBogus(t *testing.T) {
	input := []byte(`<!DOCTYPE html><?php echo ?>x`)
	got := tokStrings(input, TokenizeSwitch(input))
	want := []string{
		"doctype:DOCTYPE html",
		"bogus:?php echo ?",
		"text:x",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokens:\n got %q\nwant %q", got, want)
	}
}

func TestTokenizeEdgeCases(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"plain text", []string{"text:plain text"}},
		{"<>", []string{}}, // stray empty tag: no tokens
		// A stray '<' and the byte that disambiguates it are consumed
		// as markup; text resumes afterwards.
		{"< 5", []string{"text:5"}},
		{"<br/>", []string{"start-tag:br"}},
		{"a<b", []string{"text:a", "start-tag:b"}},
		{"&lt;", []string{"text:&lt;"}},
		{"<!-- -- -->", []string{"comment: -- --"}},
		{"<!---->", []string{"comment:--"}},
		{"<em >x</em >", []string{"start-tag:em", "text:x", "end-tag:em"}},
		{"<a b=''>", []string{"start-tag:a", "attr-name:b"}},
	}
	for _, c := range cases {
		got := tokStrings([]byte(c.in), TokenizeSwitch([]byte(c.in)))
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%q:\n got %q\nwant %q", c.in, got, c.want)
		}
	}
}

func TestTableTokenizerMatchesSwitch(t *testing.T) {
	tk, err := NewTokenizer()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(100))
	for iter := 0; iter < 50; iter++ {
		input := randomHTMLish(rng, 1+rng.Intn(2000))
		a := TokenizeSwitch(input)
		b := tk.TokenizeTable(input)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("iter %d: switch and table tokenizers disagree", iter)
		}
	}
}

func TestParallelTokenizerMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	tk, err := NewTokenizer(core.WithStrategy(core.Convergence), core.WithProcs(4), core.WithMinChunk(32))
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 40; iter++ {
		input := randomHTMLish(rng, rng.Intn(4000))
		want := TokenizeSwitch(input)
		got := tk.Tokenize(input)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: parallel tokens differ\n got %v\nwant %v", iter, got, want)
		}
	}
}

func TestParallelMergesBoundaryTokens(t *testing.T) {
	// Force a chunk boundary in the middle of a long text run.
	tk, err := NewTokenizer(core.WithProcs(4), core.WithMinChunk(8))
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("<b>" + strings.Repeat("x", 100) + "</b>")
	got := tk.Tokenize(input)
	want := TokenizeSwitch(input)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("boundary merge failed:\n got %v\nwant %v", got, want)
	}
	// Exactly one text token of length 100.
	count := 0
	for _, tok := range got {
		if tok.Type == TokText {
			count++
			if tok.End-tok.Start != 100 {
				t.Errorf("text token length %d", tok.End-tok.Start)
			}
		}
	}
	if count != 1 {
		t.Errorf("%d text tokens, want 1", count)
	}
}

func TestTokenSpansPartitionClasses(t *testing.T) {
	// Tokens must be disjoint, ordered, and within bounds.
	rng := rand.New(rand.NewSource(102))
	for iter := 0; iter < 30; iter++ {
		input := randomHTMLish(rng, rng.Intn(1000))
		toks := TokenizeSwitch(input)
		prevEnd := -1
		for _, tok := range toks {
			if tok.Start >= tok.End {
				t.Fatalf("empty token %+v", tok)
			}
			if tok.Start < 0 || tok.End > len(input) {
				t.Fatalf("token out of bounds %+v", tok)
			}
			if tok.Start < prevEnd {
				t.Fatalf("overlapping tokens at %d", tok.Start)
			}
			prevEnd = tok.End
		}
	}
}

func TestTokenTypeString(t *testing.T) {
	names := map[TokenType]string{
		TokText: "text", TokStartTagName: "start-tag", TokEndTagName: "end-tag",
		TokAttrName: "attr-name", TokAttrValue: "attr-value",
		TokComment: "comment", TokDoctype: "doctype", TokBogus: "bogus",
	}
	for tt, w := range names {
		if tt.String() != w {
			t.Errorf("%d.String() = %q want %q", tt, tt.String(), w)
		}
	}
	if TokenType(200).String() == "" {
		t.Error("unknown type should render")
	}
}

// randomHTMLish produces adversarial markup soup: valid fragments
// interleaved with stray metacharacters.
func randomHTMLish(rng *rand.Rand, n int) []byte {
	frag := []string{
		"<div>", "</div>", "<p class=\"x y\">", "text ", "&amp;", "&#39;",
		"<!-- c -->", "<!DOCTYPE html>", "<img src='u' />", "<", ">", "\"",
		"'", "=", "<a href=u>", "&", "-->", "<!", "</", " ", "\n", "w<x>",
		"<?pi?>", "<b", "->",
	}
	var sb strings.Builder
	for sb.Len() < n {
		sb.WriteString(frag[rng.Intn(len(frag))])
	}
	return []byte(sb.String()[:n])
}
