package htmltok

import (
	"sort"
	"sync"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
)

// Tokenizer bundles the table machine with an enumerative runner. The
// zero value is not usable; construct with NewTokenizer.
type Tokenizer struct {
	machine *fsm.DFA
	runner  *core.Runner
}

// NewTokenizer builds the 27-state machine and a runner over it. As the
// paper notes for this machine (§6.3), with fewer than 32 states range
// coalescing adds nothing over convergence, so Auto resolves as usual
// but callers typically pass core.WithStrategy(core.Convergence) to
// reproduce the paper's configuration.
func NewTokenizer(opts ...core.Option) (*Tokenizer, error) {
	m := NewMachine()
	r, err := core.New(m, opts...)
	if err != nil {
		return nil, err
	}
	return &Tokenizer{machine: m, runner: r}, nil
}

// Machine exposes the underlying 27-state DFA.
func (t *Tokenizer) Machine() *fsm.DFA { return t.machine }

// Runner exposes the configured enumerative runner.
func (t *Tokenizer) Runner() *core.Runner { return t.runner }

// TokenizeTable tokenizes sequentially using transition-table lookups
// (the data-access twin of TokenizeSwitch's control-flow encoding).
func (t *Tokenizer) TokenizeTable(input []byte) []Token {
	toks, _ := tokenizeFrom(t.machine, input, 0, t.machine.Start())
	return toks
}

// Tokenize runs the parallel tokenizer: phases 1–2 of Figure 5 resolve
// chunk start states enumeratively, each chunk is tokenized
// independently, and tokens that straddle chunk boundaries are merged
// during the ordered stitch — the "two passes over the input" of §6.3.
func (t *Tokenizer) Tokenize(input []byte) []Token {
	type piece struct {
		off  int
		toks []Token
	}
	var mu sync.Mutex
	var pieces []piece
	t.runner.RunChunked(input, t.machine.Start(), func(off int, chunk []byte, start fsm.State) fsm.State {
		toks, final := tokenizeFrom(t.machine, chunk, off, start)
		mu.Lock()
		pieces = append(pieces, piece{off, toks})
		mu.Unlock()
		return final
	})
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].off < pieces[j].off })

	total := 0
	for _, p := range pieces {
		total += len(p.toks)
	}
	out := make([]Token, 0, total)
	for _, p := range pieces {
		for _, tok := range p.toks {
			// A token that continues across the chunk boundary is the
			// same maximal run the sequential pass would produce: glue
			// it to its left half.
			if n := len(out); n > 0 && out[n-1].Type == tok.Type && out[n-1].End == tok.Start {
				out[n-1].End = tok.End
				continue
			}
			out = append(out, tok)
		}
	}
	return out
}
