package htmltok

import (
	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
)

// Tokenizer bundles the tokenizer transducer (machine + Mealy token
// classes) with a transducing runner. The zero value is not usable;
// construct with NewTokenizer.
type Tokenizer struct {
	trans  *fsm.Transducer
	runner *core.Runner
}

// NewTokenizer builds the 27-state machine, its token-class output
// table, and a transducing runner over them. As the paper notes for
// this machine (§6.3), with fewer than 32 states range coalescing adds
// nothing over convergence, so Auto resolves as usual but callers
// typically pass core.WithStrategy(core.Convergence) to reproduce the
// paper's configuration.
func NewTokenizer(opts ...core.Option) (*Tokenizer, error) {
	tr := NewTransducer()
	p, err := core.CompileTransducer(tr, opts...)
	if err != nil {
		return nil, err
	}
	r, err := core.NewFromPlan(p, opts...)
	if err != nil {
		return nil, err
	}
	return &Tokenizer{trans: tr, runner: r}, nil
}

// Machine exposes the underlying 27-state DFA.
func (t *Tokenizer) Machine() *fsm.DFA { return t.trans.DFA() }

// Transducer exposes the machine with its token-class output table.
func (t *Tokenizer) Transducer() *fsm.Transducer { return t.trans }

// Runner exposes the configured transducing runner.
func (t *Tokenizer) Runner() *core.Runner { return t.runner }

// TokenizeTable tokenizes sequentially using transition-table lookups
// (the data-access twin of TokenizeSwitch's control-flow encoding).
func (t *Tokenizer) TokenizeTable(input []byte) []Token {
	toks, _ := tokenizeFrom(t.Machine(), input, 0, t.Machine().Start())
	return toks
}

// Tokenize runs the parallel tokenizer through the generic transduce
// path: phases 1–2 of Figure 5 resolve chunk start states
// enumeratively, each chunk replays its token classes independently,
// and the core runner's span stitch merges runs that straddle chunk
// boundaries — the "two passes over the input" of §6.3. Token offsets
// come from the parallel runner itself; there is no scalar rescan and
// no tokenizer-specific merge code left.
func (t *Tokenizer) Tokenize(input []byte) []Token {
	spans, _, err := t.runner.TransduceSpans(input, t.Machine().Start())
	if err != nil {
		// Unreachable: the runner was compiled from the transducer.
		panic(err)
	}
	toks := make([]Token, len(spans))
	for i, s := range spans {
		toks[i] = Token{Type: TokenType(s.Out), Start: s.Start, End: s.End}
	}
	return toks
}
