package htmltok_test

import (
	"fmt"

	"dpfsm/internal/core"
	"dpfsm/internal/htmltok"
)

func ExampleTokenizeSwitch() {
	input := []byte(`<p class="x">hi</p>`)
	for _, t := range htmltok.TokenizeSwitch(input) {
		fmt.Printf("%s %q\n", t.Type, input[t.Start:t.End])
	}
	// Output:
	// start-tag "p"
	// attr-name "class"
	// attr-value "x"
	// text "hi"
	// end-tag "p"
}

func ExampleTokenizer_Tokenize() {
	tk, err := htmltok.NewTokenizer(core.WithStrategy(core.Convergence), core.WithProcs(2), core.WithMinChunk(16))
	if err != nil {
		panic(err)
	}
	input := []byte(`<ul><li>one</li><li>two</li></ul>`)
	texts := 0
	for _, t := range tk.Tokenize(input) {
		if t.Type == htmltok.TokText {
			texts++
		}
	}
	fmt.Println("text tokens:", texts)
	// Output: text tokens: 2
}
