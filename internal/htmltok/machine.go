// Package htmltok is the HTML-tokenization case study (§6.3): a
// 27-state lexer covering tags, attributes (quoted/unquoted), character
// references, comments (including the comment-end-bang state), DOCTYPE
// declarations, and bogus markup. The paper reverse-engineered bing's
// hand-written switch-encoded tokenizer into an FSM with 27 states and
// verified the two produce identical output; here the switch-encoded
// tokenizer (switch.go) plays the bing role and the table machine built
// in this file is differentially tested against it.
//
// Simplification recorded in DESIGN.md: raw-text elements (<script>,
// <style>) are tokenized as ordinary markup rather than switching to a
// raw-text mode, because tracking "current tag is script" in a pure
// FSM would multiply the attribute states; the workload generator does
// not emit '<' inside script bodies.
package htmltok

import "dpfsm/internal/fsm"

// Tokenizer states. The numbering is stable: state 0 (Data) is the
// machine's start state.
const (
	StateData fsm.State = iota
	StateCharRef
	StateCharRefBody
	StateTagOpen
	StateTagName
	StateEndTagOpen
	StateEndTagName
	StateAfterEndTagName
	StateBeforeAttrName
	StateAttrName
	StateAfterAttrName
	StateBeforeAttrValue
	StateAttrValueDQ
	StateAttrValueSQ
	StateAttrValueUnq
	StateAfterAttrValueQ
	StateSelfClosing
	StateMarkupDecl
	StateCommentStart
	StateCommentBody
	StateCommentDash
	StateCommentDashDash
	StateCommentEndBang
	StateDoctype
	StateDoctypeDQ
	StateDoctypeSQ
	StateBogus

	// NumStates is the total state count — the 27 the paper reports
	// for the bing tokenizer.
	NumStates = 27
)

func isLetter(b byte) bool {
	return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isSpace(b byte) bool {
	switch b {
	case ' ', '\t', '\n', '\r', '\f':
		return true
	}
	return false
}

// isNameChar reports bytes allowed to continue a tag/attribute name.
func isNameChar(b byte) bool {
	return isLetter(b) || isDigit(b) || b == '-' || b == '_' || b == ':' || b == '.'
}

// NewMachine builds the 27-state tokenizer as a transition table over
// the full byte alphabet. Its single-step semantics are definitionally
// switchNext; TestTableMatchesSwitch exhaustively checks all 27×256
// pairs.
func NewMachine() *fsm.DFA {
	d := fsm.MustNew(NumStates, 256)
	for q := fsm.State(0); q < NumStates; q++ {
		for b := 0; b < 256; b++ {
			d.SetTransition(q, byte(b), switchNext(q, byte(b)))
		}
	}
	d.SetStart(StateData)
	d.SetAccepting(StateData, true) // "between tokens" is the resting state
	return d
}
