package semiring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dpfsm/internal/fsm"
)

func TestIdentityMatrix(t *testing.T) {
	m := IdentityMatrix(70) // crosses a word boundary
	for i := 0; i < 70; i++ {
		for j := 0; j < 70; j++ {
			if m.Get(i, j) != (i == j) {
				t.Fatalf("I[%d][%d] = %v", i, j, m.Get(i, j))
			}
		}
	}
}

func TestSetGet(t *testing.T) {
	m := NewBoolMatrix(130)
	m.Set(5, 129, true)
	if !m.Get(5, 129) {
		t.Error("set bit not visible")
	}
	m.Set(5, 129, false)
	if m.Get(5, 129) {
		t.Error("cleared bit still visible")
	}
}

func TestFromSymbolIsRowStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	d := fsm.Random(rng, 90, 4, 0.5)
	for a := 0; a < 4; a++ {
		m := FromSymbol(d, byte(a))
		for i := 0; i < 90; i++ {
			count := 0
			for j := 0; j < 90; j++ {
				if m.Get(i, j) {
					count++
					if d.Next(fsm.State(i), byte(a)) != fsm.State(j) {
						t.Fatalf("M_%d[%d][%d] set but δ disagrees", a, i, j)
					}
				}
			}
			if count != 1 {
				t.Fatalf("row %d has %d bits; deterministic machine needs exactly 1", i, count)
			}
		}
	}
}

func TestMulIdentityLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	d := fsm.Random(rng, 33, 3, 0.5)
	id := IdentityMatrix(33)
	for a := 0; a < 3; a++ {
		m := FromSymbol(d, byte(a))
		if !id.Mul(m).Equal(m) || !m.Mul(id).Equal(m) {
			t.Fatalf("identity law fails for symbol %d", a)
		}
	}
}

func TestMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	d := fsm.Random(rng, 40, 5, 0.5)
	f := func(a, b, c uint8) bool {
		ma := FromSymbol(d, a%5)
		mb := FromSymbol(d, b%5)
		mc := FromSymbol(d, c%5)
		return ma.Mul(mb).Mul(mc).Equal(ma.Mul(mb.Mul(mc)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestMatrixFinalMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for iter := 0; iter < 20; iter++ {
		d := fsm.Random(rng, 1+rng.Intn(50), 1+rng.Intn(6), 0.4)
		in := d.RandomInput(rng, rng.Intn(60))
		st := fsm.State(rng.Intn(d.NumStates()))
		if got, want := MatrixFinal(d, in, st), d.Run(in, st); got != want {
			t.Fatalf("iter %d: matrix %d, run %d", iter, got, want)
		}
	}
}

func TestParallelMatrixProductMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	d := fsm.Random(rng, 30, 4, 0.4)
	in := d.RandomInput(rng, 300)
	seq := MatrixProduct(d, in)
	for _, grain := range []int{1, 7, 64, 1000} {
		par := ParallelMatrixProduct(d, in, grain)
		if !par.Equal(seq) {
			t.Fatalf("grain %d: parallel product differs", grain)
		}
	}
}

func TestFuncProductMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	d := fsm.Random(rng, 60, 4, 0.4)
	in := d.RandomInput(rng, 500)
	for _, grain := range []int{1, 16, 128, 10000} {
		vec := FuncProduct(d, in, grain)
		for q := 0; q < d.NumStates(); q++ {
			if want := d.Run(in, fsm.State(q)); vec[q] != want {
				t.Fatalf("grain %d: vec[%d] = %d want %d", grain, q, vec[q], want)
			}
		}
	}
}

func TestAcceptsMatchesMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for iter := 0; iter < 20; iter++ {
		d := fsm.Random(rng, 1+rng.Intn(40), 2, 0.5)
		in := d.RandomInput(rng, rng.Intn(80))
		if Accepts(d, in) != d.Accepts(in) {
			t.Fatalf("iter %d: acceptance mismatch", iter)
		}
	}
}

func TestEmptyInputProducts(t *testing.T) {
	d := fsm.MustNew(5, 2)
	if !MatrixProduct(d, nil).Equal(IdentityMatrix(5)) {
		t.Error("empty matrix product should be identity")
	}
	vec := FuncProduct(d, nil, 10)
	for i, v := range vec {
		if int(v) != i {
			t.Error("empty function product should be identity")
		}
	}
}
