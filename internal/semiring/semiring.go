// Package semiring implements the algebraic formulations of FSM
// computation sketched in §2.2 of the paper: the Boolean-semiring
// matrix-product formulation that Ladner and Fischer parallelize with
// prefix sums (O(log m · n³) work with the cubic multiply), and the
// transition-function–composition formulation of Hillis and Steele
// (O(log m · n)). The enumerative algorithm in internal/core is the
// practical descendant of the latter; this package serves as an
// independent correctness oracle and as the asymptotic baseline the
// paper's contribution is positioned against.
package semiring

import (
	"sync"

	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
)

// BoolMatrix is an n×n matrix over the Boolean semiring (∨, ∧), with
// bitset rows. M[i][j] == true means state i reaches state j.
type BoolMatrix struct {
	n    int
	rows [][]uint64 // rows[i] is a bitset of width n
}

const wordBits = 64

// NewBoolMatrix returns the n×n all-false matrix.
func NewBoolMatrix(n int) *BoolMatrix {
	words := (n + wordBits - 1) / wordBits
	rows := make([][]uint64, n)
	backing := make([]uint64, n*words)
	for i := range rows {
		rows[i], backing = backing[:words:words], backing[words:]
	}
	return &BoolMatrix{n: n, rows: rows}
}

// IdentityMatrix returns the n×n identity.
func IdentityMatrix(n int) *BoolMatrix {
	m := NewBoolMatrix(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

// FromSymbol builds M_a for machine d: M_a[i][j] = true iff δ(i,a) = j.
func FromSymbol(d *fsm.DFA, sym byte) *BoolMatrix {
	m := NewBoolMatrix(d.NumStates())
	col := d.Column(sym)
	for i, j := range col {
		m.Set(i, int(j), true)
	}
	return m
}

// N reports the dimension.
func (m *BoolMatrix) N() int { return m.n }

// Get reads entry (i, j).
func (m *BoolMatrix) Get(i, j int) bool {
	return m.rows[i][j/wordBits]&(1<<(uint(j)%wordBits)) != 0
}

// Set writes entry (i, j).
func (m *BoolMatrix) Set(i, j int, v bool) {
	if v {
		m.rows[i][j/wordBits] |= 1 << (uint(j) % wordBits)
	} else {
		m.rows[i][j/wordBits] &^= 1 << (uint(j) % wordBits)
	}
}

// Mul returns the semiring product m·o: (m·o)[i][j] = ∨_k m[i][k] ∧
// o[k][j]. With m encoding "first part of the input" and o "second
// part", the product encodes the concatenation: row i of the result is
// the union of o's rows k reachable in m from i.
func (m *BoolMatrix) Mul(o *BoolMatrix) *BoolMatrix {
	out := NewBoolMatrix(m.n)
	for i := 0; i < m.n; i++ {
		dst := out.rows[i]
		row := m.rows[i]
		for kw, w := range row {
			for w != 0 {
				bit := w & (-w)
				k := kw*wordBits + trailingZeros64(w)
				w ^= bit
				src := o.rows[k]
				for x := range dst {
					dst[x] |= src[x]
				}
			}
		}
	}
	return out
}

func trailingZeros64(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}

// Equal reports entry-wise equality.
func (m *BoolMatrix) Equal(o *BoolMatrix) bool {
	if m.n != o.n {
		return false
	}
	for i := range m.rows {
		for w := range m.rows[i] {
			if m.rows[i][w] != o.rows[i][w] {
				return false
			}
		}
	}
	return true
}

// MatrixProduct computes the input's composed reachability matrix
// M = M_{s1} · M_{s2} · … sequentially. Note the orientation: we
// multiply left-to-right in input order, so Get(i, j) is "from i, the
// whole input reaches j".
func MatrixProduct(d *fsm.DFA, input []byte) *BoolMatrix {
	acc := IdentityMatrix(d.NumStates())
	for _, a := range input {
		acc = acc.Mul(FromSymbol(d, a))
	}
	return acc
}

// ParallelMatrixProduct computes the same product with a Ladner–Fischer
// style balanced reduction tree, multiplying disjoint halves in
// parallel goroutines. Associativity of the semiring product is what
// makes the split legal.
func ParallelMatrixProduct(d *fsm.DFA, input []byte, grain int) *BoolMatrix {
	if grain < 1 {
		grain = 64
	}
	var rec func(lo, hi int) *BoolMatrix
	rec = func(lo, hi int) *BoolMatrix {
		if hi-lo <= grain {
			acc := IdentityMatrix(d.NumStates())
			for _, a := range input[lo:hi] {
				acc = acc.Mul(FromSymbol(d, a))
			}
			return acc
		}
		mid := (lo + hi) / 2
		var left, right *BoolMatrix
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			left = rec(lo, mid)
		}()
		right = rec(mid, hi)
		wg.Wait()
		return left.Mul(right)
	}
	return rec(0, len(input))
}

// MatrixFinal runs the machine via the matrix formulation: the unique j
// with M[start][j] set.
func MatrixFinal(d *fsm.DFA, input []byte, start fsm.State) fsm.State {
	m := MatrixProduct(d, input)
	for j := 0; j < m.n; j++ {
		if m.Get(int(start), j) {
			return fsm.State(j)
		}
	}
	panic("semiring: deterministic product row has no set bit")
}

// FuncProduct computes the Hillis–Steele function-composition form: the
// composed transition vector, equal to core.CompositionVector. The
// reduction is a balanced parallel tree over gather composition.
func FuncProduct(d *fsm.DFA, input []byte, grain int) []fsm.State {
	if grain < 1 {
		grain = 4096
	}
	n := d.NumStates()
	var rec func(lo, hi int) []fsm.State
	rec = func(lo, hi int) []fsm.State {
		if hi-lo <= grain {
			acc := gather.Identity[fsm.State](n)
			for _, a := range input[lo:hi] {
				gather.Into(acc, acc, d.Column(a))
			}
			return acc
		}
		mid := (lo + hi) / 2
		var left, right []fsm.State
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			left = rec(lo, mid)
		}()
		right = rec(mid, hi)
		wg.Wait()
		// left then right: compose = left ⊗ right.
		gather.Into(left, left, right)
		return left
	}
	return rec(0, len(input))
}

// Accepts runs the machine via the matrix formulation and reports
// acceptance — the paper's "M[0,j] is true for some accepting j".
func Accepts(d *fsm.DFA, input []byte) bool {
	return d.Accepting(MatrixFinal(d, input, d.Start()))
}
