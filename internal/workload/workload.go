// Package workload generates the synthetic stand-ins for the paper's
// proprietary or unavailable inputs, as recorded in DESIGN.md:
//
//   - Snort-shaped regular expressions (the paper used 2711 pcre:
//     attributes from the Snort 2.9.4.0 rules),
//   - Wikipedia-like natural text (the paper sampled a Wikipedia dump),
//   - Gutenberg-like "books" with per-book character statistics (the
//     paper used the 34 most-downloaded Project Gutenberg books), and
//   - HTML pages (the paper tokenized a 6 MB Wikipedia HTML dump).
//
// Every generator is a pure function of an explicit seed, so each
// figure's corpus is reproducible. The regex generator is calibrated so
// the compiled-DFA state distribution matches the corpus statistics the
// paper reports in Figure 12 (median ≈ 25 states, >95% under 256
// states, a heavy tail into the thousands, and ~78% of machines with
// maximum transition range ≤ 16).
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"dpfsm/internal/fsm"
	"dpfsm/internal/regex"
)

// PatternSpec is one generated rule: a pattern plus its PCRE flags.
type PatternSpec struct {
	Pattern         string
	CaseInsensitive bool
}

// Snort-flavored building blocks: literal attack substrings seen in
// real rule sets, with regex metacharacters escaped as Snort writes
// them.
var snortLiterals = []string{
	`/cgi-bin/`, `cmd\.exe`, `/etc/passwd`, `admin\.php`, `\.\./\.\./`,
	`SELECT`, `UNION`, `INSERT INTO`, `DROP TABLE`, `xp_cmdshell`,
	`User-Agent\x3a`, `Content-Length\x3a`, `Authorization\x3a Basic`,
	`%00`, `%2e%2e`, `\x90\x90\x90\x90`, `wget http`, `/bin/sh`,
	`document\.cookie`, `<script>`, `javascript\x3a`, `onload=`,
	`passwd=`, `login=`, `\.htaccess`, `boot\.ini`, `win\.ini`,
	`eval\(`, `base64_decode`, `/proc/self/environ`, `id=`,
	`HTTP/1\.`, `Host\x3a`, `ftp\x3a//`, `telnet`, `root\x3a`,
}

var snortSeparators = []string{
	`\s*`, `\s+`, `.*`, `\d+`, `[0-9a-fA-F]+`, `=`, `/`, `\x3a`, `[^\n]*`,
}

var snortMethodAlt = []string{
	`(GET|POST)`, `(GET|POST|HEAD)`, `(USER|PASS)`, `(HELO|EHLO|MAIL FROM)`,
	`(admin|root|guest)`, `(\.php|\.asp|\.jsp)`, `(http|https|ftp)`,
}

var snortClasses = []string{
	`[0-9]`, `[a-z]`, `[A-Za-z0-9]`, `[^\n]`, `[^\s]`, `[0-9a-fA-F]`, `[\x00-\x1f]`,
}

// SnortRegexes generates n Snort-shaped rules from seed. The shape mix
// (short literal rules dominate; a minority carry long bounded
// counters) reproduces the corpus statistics of Figure 12.
func SnortRegexes(seed int64, n int) []PatternSpec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]PatternSpec, 0, n)
	for len(out) < n {
		out = append(out, genPattern(rng))
	}
	return out
}

func genPattern(rng *rand.Rand) PatternSpec {
	var sb strings.Builder
	shape := rng.Float64()
	switch {
	case shape < 0.45:
		// Short literal chain: LIT (sep LIT){0,2}.
		sb.WriteString(pick(rng, snortLiterals))
		for k := rng.Intn(3); k > 0; k-- {
			sb.WriteString(pick(rng, snortSeparators))
			sb.WriteString(pick(rng, snortLiterals))
		}
	case shape < 0.60:
		// Method alternation followed by a literal chain.
		sb.WriteString(pick(rng, snortMethodAlt))
		sb.WriteString(pick(rng, snortSeparators))
		sb.WriteString(pick(rng, snortLiterals))
		if rng.Intn(2) == 0 {
			sb.WriteString(pick(rng, snortSeparators))
			sb.WriteString(pick(rng, snortMethodAlt))
		}
	case shape < 0.72:
		// Literal with small class repeats: LIT class{a,b} LIT?
		sb.WriteString(pick(rng, snortLiterals))
		sb.WriteString(pick(rng, snortClasses))
		lo := 1 + rng.Intn(6)
		fmt.Fprintf(&sb, "{%d,%d}", lo, lo+rng.Intn(8))
		if rng.Intn(2) == 0 {
			sb.WriteString(pick(rng, snortLiterals))
		}
	case shape < 0.82:
		// Anchored header rule: ^LIT sep LIT.
		sb.WriteString("^")
		sb.WriteString(pick(rng, snortLiterals))
		sb.WriteString(pick(rng, snortSeparators))
		sb.WriteString(pick(rng, snortLiterals))
	case shape < 0.92:
		// Overflow detector — the heavy tail of Figure 12: long
		// counters make DFAs of hundreds to thousands of states. Two
		// shapes that stay linear under subset construction: a bare
		// homogeneous run (every position restarts the counter, so
		// active offsets form one contiguous range), or a
		// start-anchored header-length check (a single deterministic
		// counter). Unanchored literal-gated counters are avoided —
		// they are exponential in the counter bound, which is exactly
		// why real IDS engines cap pcre complexity.
		cls := pick(rng, []string{`[^\n]`, `[^\s]`, `[\x20-\x7e]`})
		n := 64 + rng.Intn(337)
		if rng.Intn(12) == 0 {
			// The corpus's extreme tail (the paper's largest machine
			// has 4020 states).
			n = 800 + rng.Intn(1800)
		}
		if rng.Intn(5) < 3 {
			fmt.Fprintf(&sb, "%s{%d,}", cls, n)
		} else {
			sb.WriteString("^")
			sb.WriteString(pick(rng, snortLiterals))
			fmt.Fprintf(&sb, "%s{%d,}", cls, n)
		}
	default:
		// Multi-alternative signature list.
		k := 3 + rng.Intn(10)
		sb.WriteByte('(')
		for i := 0; i < k; i++ {
			if i > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(pick(rng, snortLiterals))
		}
		sb.WriteByte(')')
	}
	return PatternSpec{
		Pattern:         sb.String(),
		CaseInsensitive: rng.Float64() < 0.4, // pcre /i is very common in Snort
	}
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

// CompileCorpus compiles specs into DFAs, skipping any that exceed the
// state limit (the paper likewise uses only the rules its front-end
// could handle). It returns the machines and the corresponding specs.
func CompileCorpus(specs []PatternSpec, maxStates int) ([]*fsm.DFA, []PatternSpec) {
	var ms []*fsm.DFA
	var kept []PatternSpec
	for _, s := range specs {
		d, err := regex.Compile(s.Pattern, regex.Options{
			CaseInsensitive: s.CaseInsensitive,
			MaxStates:       maxStates,
		})
		if err != nil {
			continue
		}
		ms = append(ms, d)
		kept = append(kept, s)
	}
	return ms, kept
}
