package workload

import (
	"bytes"
	"testing"

	"dpfsm/internal/regex"
	"dpfsm/internal/textstats"
)

func TestSnortRegexesDeterministic(t *testing.T) {
	a := SnortRegexes(7, 50)
	b := SnortRegexes(7, 50)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs between equal seeds", i)
		}
	}
	c := SnortRegexes(8, 50)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == 50 {
		t.Error("different seeds produced identical corpora")
	}
}

func TestSnortRegexesAllParse(t *testing.T) {
	specs := SnortRegexes(1, 200)
	for _, s := range specs {
		if _, err := regex.Parse(s.Pattern, s.CaseInsensitive); err != nil {
			t.Fatalf("generated pattern %q does not parse: %v", s.Pattern, err)
		}
	}
}

// TestCorpusCalibration checks the Figure 12 shape on a sample: median
// state count in the paper's band, most machines under 256 states, and
// a majority of range-coalesced machines at width ≤ 16.
func TestCorpusCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus compilation is slow")
	}
	specs := SnortRegexes(42, 120)
	ms, kept := CompileCorpus(specs, 20000)
	if len(ms) < 100 {
		t.Fatalf("only %d/120 compiled", len(ms))
	}
	if len(ms) != len(kept) {
		t.Fatal("machines/specs length mismatch")
	}
	var states, ranges []int
	for _, d := range ms {
		states = append(states, d.NumStates())
		ranges = append(ranges, d.MaxRangeSize())
	}
	med := textstats.Quantile(states, 0.5)
	if med < 8 || med > 80 {
		t.Errorf("median states %v, want within [8, 80] (paper: 25)", med)
	}
	if f := textstats.FractionAtMost(states, 256); f < 0.85 {
		t.Errorf("%.2f of machines ≤256 states, want ≥0.85 (paper: >0.95)", f)
	}
	if f := textstats.FractionAtMost(ranges, 16); f < 0.5 {
		t.Errorf("%.2f of machines have range ≤16, want ≥0.5 (paper: 0.78)", f)
	}
	// Heavy tail must exist: at least one machine in the hundreds.
	s := textstats.Summarize(states)
	if s.Max < 300 {
		t.Errorf("max states %d; expected a long tail", s.Max)
	}
}

func TestWikiTextShape(t *testing.T) {
	txt := WikiText(3, 5000)
	if len(txt) != 5000 {
		t.Fatalf("length %d", len(txt))
	}
	if !bytes.Equal(txt, WikiText(3, 5000)) {
		t.Error("WikiText not deterministic")
	}
	spaces := bytes.Count(txt, []byte(" "))
	if spaces < 300 {
		t.Errorf("only %d spaces; not natural text", spaces)
	}
	if !bytes.Contains(txt, []byte("[[")) && !bytes.Contains(txt, []byte("==")) && !bytes.Contains(txt, []byte("{{")) {
		t.Error("no wiki markup present")
	}
}

func TestBookDistinctTrees(t *testing.T) {
	// Different books must have different symbol inventories.
	inventory := func(b []byte) int {
		var seen [256]bool
		n := 0
		for _, c := range b {
			if !seen[c] {
				seen[c] = true
				n++
			}
		}
		return n
	}
	sizes := map[int]bool{}
	for seed := int64(0); seed < 8; seed++ {
		book := Book(seed, 20000)
		if len(book) != 20000 {
			t.Fatalf("seed %d: length %d", seed, len(book))
		}
		sizes[inventory(book)] = true
	}
	if len(sizes) < 4 {
		t.Errorf("books have only %d distinct symbol-inventory sizes", len(sizes))
	}
}

func TestBookDeterministic(t *testing.T) {
	if !bytes.Equal(Book(9, 3000), Book(9, 3000)) {
		t.Error("Book not deterministic")
	}
}

func TestHTTPTrafficShape(t *testing.T) {
	tr := HTTPTraffic(5, 30000)
	if len(tr) != 30000 {
		t.Fatalf("length %d", len(tr))
	}
	if !bytes.Equal(tr, HTTPTraffic(5, 30000)) {
		t.Error("HTTPTraffic not deterministic")
	}
	for _, frag := range []string{"GET ", "HTTP/1.1", "Host: ", "User-Agent: ", "\r\n\r\n", "200 OK"} {
		if !bytes.Contains(tr, []byte(frag)) {
			t.Errorf("traffic missing %q", frag)
		}
	}
	if bytes.Contains(tr, []byte("cmd.exe")) {
		t.Error("benign traffic should not contain attack strings")
	}
}

func TestHTMLPageShape(t *testing.T) {
	page := HTMLPage(4, 20000)
	if len(page) != 20000 {
		t.Fatalf("length %d", len(page))
	}
	if !bytes.Equal(page, HTMLPage(4, 20000)) {
		t.Error("HTMLPage not deterministic")
	}
	for _, frag := range []string{"<!DOCTYPE", "<div", "</", "=\"", "='"} {
		if !bytes.Contains(page, []byte(frag)) {
			t.Errorf("page missing %q", frag)
		}
	}
	// Script bodies must not contain '<' (raw-text simplification).
	rest := page
	for {
		i := bytes.Index(rest, []byte("<script>"))
		if i < 0 {
			break
		}
		rest = rest[i+8:]
		j := bytes.Index(rest, []byte("</script>"))
		if j < 0 {
			break
		}
		if bytes.ContainsRune(rest[:j], '<') {
			t.Fatal("script body contains '<'")
		}
		rest = rest[j:]
	}
}
