package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Natural-text generation: a word-level model with English-like word
// and punctuation statistics. The convergence experiments only depend
// on the byte statistics of "natural" input (letters dominate, bounded
// runs, frequent spaces), which this reproduces without shipping a
// Wikipedia dump.

var commonWords = strings.Fields(`
the of and a to in is was he for it with as his on be at by i this had
not are but from or have an they which one you were her all she there
would their we him been has when who will more no if out so said what
up its about into than them can only other new some could time these
two may then do first any my now such like our over man me even most
made after also did many before must through back years where much
your way well down should because each just those people mr how too
little state good very make world still own see men work long get
here between both life being under never day same another know while
last might us great old year off come since against go came right
used take three states himself few house use during without again
place american around however home small found mrs thought went say
part once general high upon school every don't does got united left
number course war until always away something fact though water less
public put think almost hand enough far took head yet government
system better set told nothing night end why called didn't eyes find
going look asked later knew point next city business`)

var wikiMarkup = []string{
	"[[%s]]", "[[%s|%s]]", "'''%s'''", "''%s''", "== %s ==", "{{cite %s}}",
	"<ref>%s</ref>", "* %s", "# %s",
}

// WikiText generates n bytes of Wikipedia-flavored text: English-like
// sentences interleaved with wiki markup, headings, and references.
func WikiText(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.Grow(n + 128)
	for sb.Len() < n {
		r := rng.Float64()
		switch {
		case r < 0.80:
			writeSentence(&sb, rng)
		case r < 0.95:
			m := pick(rng, wikiMarkup)
			words := strings.Count(m, "%s")
			args := make([]interface{}, words)
			for i := range args {
				args[i] = pick(rng, commonWords)
			}
			fmt.Fprintf(&sb, m, args...)
			sb.WriteByte(' ')
		default:
			sb.WriteString("\n\n")
		}
	}
	return []byte(sb.String()[:n])
}

func writeSentence(sb *strings.Builder, rng *rand.Rand) {
	k := 4 + rng.Intn(14)
	for i := 0; i < k; i++ {
		w := pick(rng, commonWords)
		if i == 0 {
			w = strings.Title(w)
		}
		sb.WriteString(w)
		if i < k-1 {
			if rng.Float64() < 0.08 {
				sb.WriteByte(',')
			}
			sb.WriteByte(' ')
		}
	}
	switch rng.Intn(10) {
	case 0:
		sb.WriteString("? ")
	case 1:
		sb.WriteString("! ")
	default:
		sb.WriteString(". ")
	}
	if rng.Float64() < 0.12 {
		sb.WriteByte('\n')
	}
}

// Book generates n bytes of a Gutenberg-like "book". Each seed gets its
// own character inventory: a base English distribution plus a per-book
// selection of rare bytes (accented characters, typographic symbols)
// whose count varies from book to book. The result: 34 different seeds
// produce 34 Huffman trees whose decoder FSMs span roughly 60–300
// states while keeping the unrolled maximum range small — the Figure 15
// distribution.
func Book(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))

	// Per-book rare-byte inventory: between 20 and 200 extra symbols in
	// the high-byte range with tiny, varying probabilities.
	nRare := 20 + rng.Intn(181)
	rare := make([]byte, 0, nRare)
	for _, b := range rng.Perm(96)[:min(nRare, 96)] {
		rare = append(rare, byte(160+b))
	}
	for len(rare) < nRare {
		rare = append(rare, byte(1+rng.Intn(31))) // control-range filler
	}

	var sb strings.Builder
	sb.Grow(n + 128)
	para := 0
	for sb.Len() < n {
		writeSentence(&sb, rng)
		para++
		if para%5 == 0 {
			sb.WriteString("\n\n")
		}
		// Sprinkle digits and rare symbols at per-book rates.
		if rng.Float64() < 0.3 {
			fmt.Fprintf(&sb, "%d ", rng.Intn(1900)+100)
		}
		if rng.Float64() < 0.5 {
			sb.WriteByte(rare[rng.Intn(len(rare))])
			sb.WriteByte(' ')
		}
	}
	return []byte(sb.String()[:n])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var httpMethods = []string{"GET", "GET", "GET", "POST", "HEAD", "PUT"}
var httpPaths = []string{
	"/", "/index.html", "/login", "/api/v1/users", "/static/app.js",
	"/images/logo.png", "/search", "/admin", "/cgi-bin/status.pl",
	"/wp-login.php", "/api/v1/items",
}
var httpAgents = []string{
	"Mozilla/5.0 (Windows NT 10.0; Win64; x64)",
	"curl/7.68.0", "Wget/1.20.3", "python-requests/2.25",
	"Googlebot/2.1 (+http://www.google.com/bot.html)",
}

// HTTPTraffic generates n bytes of an HTTP request/response byte
// stream — the kind of input Snort rules actually scan. Mostly benign
// requests with realistic headers; bodies are natural text.
func HTTPTraffic(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.Grow(n + 512)
	for sb.Len() < n {
		method := pick(rng, httpMethods)
		path := pick(rng, httpPaths)
		if rng.Float64() < 0.3 {
			fmt.Fprintf(&sb, "%s%s?%s=%s&id=%d", method, " ", pick(rng, commonWords), pick(rng, commonWords), rng.Intn(100000))
			fmt.Fprintf(&sb, " HTTP/1.1\r\n")
		} else {
			fmt.Fprintf(&sb, "%s %s HTTP/1.1\r\n", method, path)
		}
		fmt.Fprintf(&sb, "Host: %s.example.com\r\n", pick(rng, commonWords))
		fmt.Fprintf(&sb, "User-Agent: %s\r\n", pick(rng, httpAgents))
		if rng.Float64() < 0.5 {
			fmt.Fprintf(&sb, "Accept: text/html,application/json;q=0.%d\r\n", rng.Intn(10))
		}
		if rng.Float64() < 0.3 {
			fmt.Fprintf(&sb, "Cookie: session=%08x; theme=%s\r\n", rng.Uint32(), pick(rng, commonWords))
		}
		body := ""
		if method == "POST" || method == "PUT" {
			var bb strings.Builder
			writeSentence(&bb, rng)
			body = bb.String()
			fmt.Fprintf(&sb, "Content-Length: %d\r\n", len(body))
		}
		sb.WriteString("\r\n")
		sb.WriteString(body)
		// Response.
		fmt.Fprintf(&sb, "HTTP/1.1 %d OK\r\nContent-Type: text/html\r\n\r\n", []int{200, 200, 200, 404, 301, 500}[rng.Intn(6)])
		writeSentence(&sb, rng)
		sb.WriteString("\r\n")
	}
	return []byte(sb.String()[:n])
}

// HTMLPage generates n bytes of page markup: nested elements with
// attributes in all three quoting styles, comments, entities, a
// doctype, and script/style bodies free of '<' (see the htmltok
// package comment for the raw-text simplification).
func HTMLPage(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.Grow(n + 256)
	sb.WriteString("<!DOCTYPE html><html><head><title>")
	writeSentence(&sb, rng)
	sb.WriteString("</title></head><body>")
	tags := []string{"div", "p", "span", "a", "li", "td", "h2", "em", "b"}
	attrs := []string{"class", "id", "href", "title", "data-x", "style"}
	var emit func(depth int)
	emit = func(depth int) {
		if sb.Len() >= n {
			return
		}
		switch rng.Intn(10) {
		case 0:
			fmt.Fprintf(&sb, "<!-- %s -->", pick(rng, commonWords))
		case 1:
			sb.WriteString(pick(rng, commonWords))
			sb.WriteString(" &amp; ")
			sb.WriteString(pick(rng, commonWords))
			sb.WriteString("&nbsp;")
		case 2:
			fmt.Fprintf(&sb, "<img src='%s.png' alt=%s />", pick(rng, commonWords), pick(rng, commonWords))
		case 3:
			fmt.Fprintf(&sb, "<script>var %s = %d;</script>", pick(rng, commonWords), rng.Intn(1000))
		default:
			tag := pick(rng, tags)
			fmt.Fprintf(&sb, "<%s", tag)
			for k := rng.Intn(3); k > 0; k-- {
				switch rng.Intn(3) {
				case 0:
					fmt.Fprintf(&sb, ` %s="%s %s"`, pick(rng, attrs), pick(rng, commonWords), pick(rng, commonWords))
				case 1:
					fmt.Fprintf(&sb, ` %s='%s'`, pick(rng, attrs), pick(rng, commonWords))
				default:
					fmt.Fprintf(&sb, ` %s=%s`, pick(rng, attrs), pick(rng, commonWords))
				}
			}
			sb.WriteByte('>')
			kids := rng.Intn(4)
			if depth > 6 {
				kids = 0
			}
			if kids == 0 {
				writeSentence(&sb, rng)
			}
			for i := 0; i < kids && sb.Len() < n; i++ {
				emit(depth + 1)
			}
			fmt.Fprintf(&sb, "</%s>", tag)
		}
	}
	for sb.Len() < n {
		emit(0)
	}
	sb.WriteString("</body></html>")
	return []byte(sb.String()[:n])
}
