package xmltok

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
)

// The claim under test (§7, Parabix discussion): the XML machine fits
// a single emulated shuffle — 16 states, so every transition vector
// fits one 16-lane register, and range coalescing is unnecessary.
func TestXMLMachineFitsOneShuffle(t *testing.T) {
	m := NewMachine()
	if m.NumStates() != gather.Width {
		t.Fatalf("machine has %d states; the one-shuffle claim needs ≤ %d", m.NumStates(), gather.Width)
	}
	if got := gather.Cost(m.NumStates(), m.NumStates(), 0); got != 1 {
		t.Fatalf("⊗%d,%d costs %d shuffles; want 1", m.NumStates(), m.NumStates(), got)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func tokStrings(in []byte, toks []Token) []string {
	var out []string
	for _, tk := range toks {
		out = append(out, tk.Type.String()+":"+string(in[tk.Start:tk.End]))
	}
	return out
}

func TestTokenizeDocument(t *testing.T) {
	in := []byte(`<?xml version="1.0"?><root a="1" b='2'><item/>text &amp; more<!-- note --></root>`)
	tk, err := NewTokenizer()
	if err != nil {
		t.Fatal(err)
	}
	got := tokStrings(in, tk.TokenizeSequential(in))
	want := []string{
		"pi:xml version=\"1.0\"?",
		"start-tag:root",
		"attr-name:a",
		"attr-value:1",
		"attr-name:b",
		"attr-value:2",
		"start-tag:item",
		"text:text &amp; more",
		"comment:- note --", // the 16-state machine folds the opener states, so the second '-' of "<!--" lands in the content
		"end-tag:root",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokens:\n got %q\nwant %q", got, want)
	}
}

func TestTokenizeEdgeCases(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"plain", []string{"text:plain"}},
		{"<a></a>", []string{"start-tag:a", "end-tag:a"}},
		{"<!DOCTYPE x>y", []string{"markup:DOCTYPE x", "text:y"}},
		{"<a x='<>'/>", []string{"start-tag:a", "attr-name:x", "attr-value:<>"}},
		{"<!---->", []string{"comment:---"}},
	}
	tk, err := NewTokenizer()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		got := tokStrings([]byte(c.in), tk.TokenizeSequential([]byte(c.in)))
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%q:\n got %q\nwant %q", c.in, got, c.want)
		}
	}
}

func randomXMLish(rng *rand.Rand, n int) []byte {
	frag := []string{
		"<a>", "</a>", "<b c=\"v\">", "<d e='w'/>", "text ", "&lt;",
		"<!-- c -->", "<?pi ?>", "<!DOCTYPE d>", "<", ">", "'", "\"", "=",
		" ", "\n", "-->", "<x", "?>",
	}
	var sb strings.Builder
	for sb.Len() < n {
		sb.WriteString(frag[rng.Intn(len(frag))])
	}
	return []byte(sb.String()[:n])
}

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(170))
	tk, err := NewTokenizer(core.WithProcs(4), core.WithMinChunk(32))
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 40; iter++ {
		in := randomXMLish(rng, rng.Intn(3000))
		want := tk.TokenizeSequential(in)
		got := tk.Tokenize(in)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: parallel tokens differ", iter)
		}
	}
}

func TestTableMatchesSwitch(t *testing.T) {
	m := NewMachine()
	for q := fsm.State(0); q < NumStates; q++ {
		for b := 0; b < 256; b++ {
			if m.Next(q, byte(b)) != next(q, byte(b)) {
				t.Fatalf("table/switch disagree at %d/%d", q, b)
			}
		}
	}
}

func TestTokenTypeStrings(t *testing.T) {
	for tt := TokText; tt <= TokMarkup; tt++ {
		if tt.String() == "?" {
			t.Errorf("type %d unnamed", tt)
		}
	}
	if tokNone.String() != "?" {
		t.Error("tokNone should be unnamed")
	}
}

func TestSpansAreOrderedDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	tk, _ := NewTokenizer()
	for iter := 0; iter < 20; iter++ {
		in := randomXMLish(rng, 500)
		prevEnd := -1
		for _, tok := range tk.TokenizeSequential(in) {
			if tok.Start >= tok.End || tok.Start < prevEnd || tok.End > len(in) {
				t.Fatalf("bad span %+v", tok)
			}
			prevEnd = tok.End
		}
	}
}
