// Package xmltok is a compact XML tokenizer built as a 16-state FSM.
// It exists to test a specific claim from the paper's related-work
// discussion (§7, the Parabix comparison): "for tasks such as XML
// processing, the resulting FSM is small enough that our implementation
// requires a single shuffle instruction per input symbol" — i.e. the
// machine's state count and ranges fit within one emulated 16-lane
// register. TestXMLMachineFitsOneShuffle and BenchmarkXMLTok check
// exactly that.
//
// The grammar subset: elements, attributes (quoted only, per XML),
// character data, character references, comments, and processing
// instructions. DOCTYPE and CDATA are lexed as bogus markup.
package xmltok

import (
	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
)

// Tokenizer states — exactly 16, one emulated SIMD register wide.
const (
	StateData fsm.State = iota
	StateTagOpen
	StateTagName
	StateEndTagOpen
	StateEndTagName
	StateBeforeAttr
	StateAttrName
	StateAfterEq
	StateValueDQ
	StateValueSQ
	StateSelfClose
	StatePI
	StatePIEnd
	StateMarkup
	StateCommentBody
	StateCommentEnd

	// NumStates is the machine size: 16 = gather.Width.
	NumStates = 16
)

func isNameStart(b byte) bool {
	return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || b == '_' || b == ':'
}

func isName(b byte) bool {
	return isNameStart(b) || (b >= '0' && b <= '9') || b == '-' || b == '.'
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// next is the single-step transition function.
func next(q fsm.State, b byte) fsm.State {
	switch q {
	case StateData:
		if b == '<' {
			return StateTagOpen
		}
		return StateData
	case StateTagOpen:
		switch {
		case b == '/':
			return StateEndTagOpen
		case b == '?':
			return StatePI
		case b == '!':
			return StateMarkup
		case isNameStart(b):
			return StateTagName
		}
		return StateData
	case StateTagName:
		switch {
		case isName(b):
			return StateTagName
		case isSpace(b):
			return StateBeforeAttr
		case b == '/':
			return StateSelfClose
		case b == '>':
			return StateData
		}
		return StateBeforeAttr
	case StateEndTagOpen:
		if isNameStart(b) {
			return StateEndTagName
		}
		if b == '>' {
			return StateData
		}
		return StateEndTagName
	case StateEndTagName:
		switch {
		case isName(b):
			return StateEndTagName
		case b == '>':
			return StateData
		}
		return StateEndTagName
	case StateBeforeAttr:
		switch {
		case isSpace(b):
			return StateBeforeAttr
		case b == '>':
			return StateData
		case b == '/':
			return StateSelfClose
		case b == '=':
			return StateAfterEq
		case isNameStart(b):
			return StateAttrName
		}
		return StateBeforeAttr
	case StateAttrName:
		switch {
		case isName(b):
			return StateAttrName
		case b == '=':
			return StateAfterEq
		case isSpace(b):
			return StateBeforeAttr
		case b == '>':
			return StateData
		case b == '/':
			return StateSelfClose
		}
		return StateAttrName
	case StateAfterEq:
		switch {
		case isSpace(b):
			return StateAfterEq
		case b == '"':
			return StateValueDQ
		case b == '\'':
			return StateValueSQ
		case b == '>':
			return StateData
		}
		return StateAfterEq // XML requires quotes; junk waits here
	case StateValueDQ:
		if b == '"' {
			return StateBeforeAttr
		}
		return StateValueDQ
	case StateValueSQ:
		if b == '\'' {
			return StateBeforeAttr
		}
		return StateValueSQ
	case StateSelfClose:
		if b == '>' {
			return StateData
		}
		return StateBeforeAttr
	case StatePI:
		if b == '?' {
			return StatePIEnd
		}
		return StatePI
	case StatePIEnd:
		if b == '>' {
			return StateData
		}
		if b == '?' {
			return StatePIEnd
		}
		return StatePI
	case StateMarkup:
		// "<!" … comments get dedicated states; everything else
		// (DOCTYPE, CDATA) is swallowed until '>'.
		if b == '-' {
			return StateCommentBody // "<!-" ; the second '-' stays in body
		}
		if b == '>' {
			return StateData
		}
		return StateMarkup
	case StateCommentBody:
		if b == '-' {
			return StateCommentEnd
		}
		return StateCommentBody
	case StateCommentEnd:
		switch {
		case b == '-':
			return StateCommentEnd
		case b == '>':
			return StateData
		}
		return StateCommentBody
	}
	return StateData
}

// NewMachine materializes the transition function as an fsm.DFA.
func NewMachine() *fsm.DFA {
	d := fsm.MustNew(NumStates, 256)
	for q := fsm.State(0); q < NumStates; q++ {
		for b := 0; b < 256; b++ {
			d.SetTransition(q, byte(b), next(q, byte(b)))
		}
	}
	d.SetStart(StateData)
	d.SetAccepting(StateData, true)
	return d
}

// TokenType classifies a span.
type TokenType uint8

// Token kinds.
const (
	tokNone TokenType = iota
	TokText
	TokStartTag
	TokEndTag
	TokAttrName
	TokAttrValue
	TokComment
	TokPI
	TokMarkup
)

// String names the token type.
func (t TokenType) String() string {
	switch t {
	case TokText:
		return "text"
	case TokStartTag:
		return "start-tag"
	case TokEndTag:
		return "end-tag"
	case TokAttrName:
		return "attr-name"
	case TokAttrValue:
		return "attr-value"
	case TokComment:
		return "comment"
	case TokPI:
		return "pi"
	case TokMarkup:
		return "markup"
	}
	return "?"
}

// Token is a classified span [Start, End).
type Token struct {
	Type       TokenType
	Start, End int
}

// classify maps a consumed transition to a token class.
func classify(prev fsm.State, b byte, nxt fsm.State) TokenType {
	switch nxt {
	case StateTagName:
		return TokStartTag
	case StateEndTagName:
		return TokEndTag
	case StateAttrName:
		return TokAttrName
	case StateValueDQ:
		if prev == StateAfterEq {
			return tokNone
		}
		return TokAttrValue
	case StateValueSQ:
		if prev == StateAfterEq {
			return tokNone
		}
		return TokAttrValue
	case StateCommentBody, StateCommentEnd:
		if prev == StateMarkup {
			return tokNone
		}
		return TokComment
	case StatePI, StatePIEnd:
		if prev == StateTagOpen {
			return tokNone
		}
		return TokPI
	case StateMarkup:
		if prev == StateTagOpen {
			return tokNone
		}
		return TokMarkup
	case StateData:
		if prev == StateData {
			return TokText
		}
		return tokNone
	}
	return tokNone
}

// tokenize folds chunk (global offset off, start state q) into tokens,
// returning also the final state.
func tokenize(d *fsm.DFA, chunk []byte, off int, q fsm.State) ([]Token, fsm.State) {
	toks := make([]Token, 0, len(chunk)/8+4)
	cur := tokNone
	start := 0
	for i, b := range chunk {
		nxt := d.Next(q, b)
		cls := classify(q, b, nxt)
		if cls != cur {
			if cur != tokNone {
				toks = append(toks, Token{Type: cur, Start: start, End: off + i})
			}
			cur = cls
			start = off + i
		}
		q = nxt
	}
	if cur != tokNone {
		toks = append(toks, Token{Type: cur, Start: start, End: off + len(chunk)})
	}
	return toks, q
}

// NewTransducer materializes classify as a Mealy output table over the
// machine: λ(q, a) = classify(q, a, next(q, a)). Token classes are the
// output alphabet with tokNone = fsm.OutputNone, so the generic
// transducing runner's spans are exactly this package's tokens.
func NewTransducer() *fsm.Transducer {
	m := NewMachine()
	tr, err := fsm.NewMealy(m, int(TokMarkup)+1)
	if err != nil {
		panic(err) // static shape; cannot fail
	}
	for b := 0; b < 256; b++ {
		for q := fsm.State(0); q < NumStates; q++ {
			cls := classify(q, byte(b), m.Next(q, byte(b)))
			tr.SetMealyOutput(q, byte(b), fsm.Output(cls))
		}
	}
	return tr
}

// Tokenizer bundles the tokenizer transducer with a transducing runner.
type Tokenizer struct {
	trans  *fsm.Transducer
	runner *core.Runner
}

// NewTokenizer builds the machine, its token-class output table, and a
// transducing runner over them.
func NewTokenizer(opts ...core.Option) (*Tokenizer, error) {
	tr := NewTransducer()
	p, err := core.CompileTransducer(tr, opts...)
	if err != nil {
		return nil, err
	}
	r, err := core.NewFromPlan(p, opts...)
	if err != nil {
		return nil, err
	}
	return &Tokenizer{trans: tr, runner: r}, nil
}

// Machine exposes the 16-state DFA.
func (t *Tokenizer) Machine() *fsm.DFA { return t.trans.DFA() }

// Transducer exposes the machine with its token-class output table.
func (t *Tokenizer) Transducer() *fsm.Transducer { return t.trans }

// TokenizeSequential lexes input on one core.
func (t *Tokenizer) TokenizeSequential(input []byte) []Token {
	toks, _ := tokenize(t.Machine(), input, 0, t.Machine().Start())
	return toks
}

// Tokenize lexes input with the Figure 5 decomposition through the
// generic transduce path: token offsets come from the parallel
// runner's span extraction (including the chunk-boundary merge), not a
// package-local stitch.
func (t *Tokenizer) Tokenize(input []byte) []Token {
	spans, _, err := t.runner.TransduceSpans(input, t.Machine().Start())
	if err != nil {
		// Unreachable: the runner was compiled from the transducer.
		panic(err)
	}
	toks := make([]Token, len(spans))
	for i, s := range spans {
		toks[i] = Token{Type: TokenType(s.Out), Start: s.Start, End: s.End}
	}
	return toks
}
