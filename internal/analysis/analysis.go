// Package analysis implements the paper's convergence studies: the
// adversarial configuration-space exploration behind Figure 8 and the
// random-input active-state measurements behind Figure 9, plus the
// corpus structure statistics of Figures 12 and 15.
//
// A configuration is the set of active states of an enumerative
// computation (§5.2). There are 2^n possible configurations, but —
// precisely because machines converge — only a small fraction is
// reachable from the initial all-states configuration, which is what
// makes exhaustive exploration feasible.
package analysis

import (
	"math/rand"

	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
)

// config keys are the sorted member states packed little-endian.
func configKey(set []fsm.State) string {
	b := make([]byte, 0, len(set)*2)
	for _, q := range set {
		b = append(b, byte(q), byte(q>>8))
	}
	return string(b)
}

// image applies symbol a to a configuration, returning the sorted
// de-duplicated successor configuration.
func image(d *fsm.DFA, set []fsm.State, a byte) []fsm.State {
	col := d.Column(a)
	seen := make(map[fsm.State]bool, len(set))
	var out []fsm.State
	for _, q := range set {
		r := col[q]
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sortStates(out)
	return out
}

func sortStates(xs []fsm.State) {
	// Insertion sort: configurations are small once convergence kicks
	// in, and tiny-input sorts dominate this workload.
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// AdversarialResult reports the outcome of worst-case convergence
// exploration for one machine and one threshold.
type AdversarialResult struct {
	// Steps is the smallest k such that *every* input of length ≥ k
	// leaves at most Threshold active states. Valid only if Converges.
	Steps int
	// Converges is false when some cycle of configurations above the
	// threshold is reachable: an adversary can keep the machine hot
	// forever (§5.2: "an adversary can always make the enumerative
	// computation asymptotically more expensive").
	Converges bool
	// Explored is false when the configuration space exceeded the
	// caller's budget before the question was settled.
	Explored bool
	// Configs is the number of distinct configurations visited.
	Configs int
}

// AdversarialConvergence explores the reachable configuration space
// from the all-states configuration and answers: after how many input
// symbols is the machine guaranteed to have at most threshold active
// states, regardless of input? maxConfigs bounds the exploration.
func AdversarialConvergence(d *fsm.DFA, threshold, maxConfigs int) AdversarialResult {
	if maxConfigs <= 0 {
		maxConfigs = 1 << 18
	}
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	type entry struct {
		color int
		depth int // longest #steps until ≤ threshold, from this config
	}
	memo := map[string]*entry{}
	overflow := false
	cyclic := false

	init := gather.Identity[fsm.State](d.NumStates())

	// value(config) = 0 if |config| ≤ threshold, else
	// 1 + max over symbols value(image(config, a)); cycles above the
	// threshold mean "never".
	var visit func(set []fsm.State) int
	visit = func(set []fsm.State) int {
		if len(set) <= threshold {
			return 0
		}
		k := configKey(set)
		if e, ok := memo[k]; ok {
			if e.color == inStack {
				cyclic = true
				return 0
			}
			return e.depth
		}
		if len(memo) >= maxConfigs {
			overflow = true
			return 0
		}
		e := &entry{color: inStack}
		memo[k] = e
		worst := 0
		for a := 0; a < d.NumSymbols() && !cyclic && !overflow; a++ {
			next := image(d, set, byte(a))
			if v := visit(next); v+1 > worst {
				worst = v + 1
			}
		}
		e.color = done
		e.depth = worst
		return worst
	}

	steps := visit(init)
	res := AdversarialResult{Configs: len(memo)}
	switch {
	case cyclic:
		res.Explored = true
		res.Converges = false
	case overflow:
		res.Explored = false
	default:
		res.Explored = true
		res.Converges = true
		res.Steps = steps
	}
	return res
}

// KLocality decides whether the machine is k-local in the sense of
// Holub and Štekr (related work, §7): every pair of states converges
// to the same state on *every* input of length k. Their parallel DFA
// algorithm requires k-locality; the paper's convergence study shows
// most practical machines are not k-local (convergence to one active
// state is rare), which is why the enumerative approach tracks the
// whole active set instead. k-locality is exactly worst-case
// convergence to a single active state.
func KLocality(d *fsm.DFA, maxConfigs int) (k int, local bool, explored bool) {
	res := AdversarialConvergence(d, 1, maxConfigs)
	return res.Steps, res.Converges, res.Explored
}

// ActiveStateTrace runs the enumerative computation on input and
// returns the number of active states after each symbol — the quantity
// plotted in Figure 9.
func ActiveStateTrace(d *fsm.DFA, input []byte) []int {
	s := gather.Identity[fsm.State](d.NumStates())
	tmp := make([]fsm.State, d.NumStates())
	out := make([]int, len(input))
	m := d.NumStates()
	for i, a := range input {
		gather.Into(tmp[:m], s[:m], d.Column(a))
		// Compact to distinct states so subsequent steps stay cheap.
		_, u := gather.Factor(tmp[:m])
		copy(s, u)
		m = len(u)
		out[i] = m
	}
	return out
}

// ActiveStatesAt returns the number of active states after running the
// whole input — the tail of ActiveStateTrace without storing it.
func ActiveStatesAt(d *fsm.DFA, input []byte) int {
	tr := ActiveStateTrace(d, input)
	if len(tr) == 0 {
		return d.NumStates()
	}
	return tr[len(tr)-1]
}

// RandomConvergence runs trials random inputs of length maxLen drawn
// from random offsets of source (or from uniform random symbols when
// source is too short) and returns, for each prefix length 1..maxLen,
// the mean over trials of the active-state count — the per-machine
// "average number of active states after running an FSM on 10 randomly
// chosen inputs" that Figure 9 aggregates across the corpus.
func RandomConvergence(d *fsm.DFA, rng *rand.Rand, source []byte, trials, maxLen int) []float64 {
	sum := make([]float64, maxLen)
	for t := 0; t < trials; t++ {
		var in []byte
		if len(source) > maxLen {
			off := rng.Intn(len(source) - maxLen)
			in = source[off : off+maxLen]
		} else {
			in = d.RandomInput(rng, maxLen)
		}
		tr := ActiveStateTrace(d, in)
		for i, v := range tr {
			sum[i] += float64(v)
		}
	}
	out := make([]float64, maxLen)
	for i := range out {
		out[i] = sum[i] / float64(trials)
	}
	return out
}
