package analysis

import (
	"math/rand"
	"testing"

	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
)

// constantMachine converges to one state in one step on every symbol.
func constantMachine(n int) *fsm.DFA {
	d := fsm.MustNew(n, 2)
	for a := 0; a < 2; a++ {
		col := make([]fsm.State, n)
		d.SetColumn(byte(a), col) // everything to state 0
	}
	return d
}

func TestAdversarialConstant(t *testing.T) {
	d := constantMachine(10)
	res := AdversarialConvergence(d, 1, 0)
	if !res.Explored || !res.Converges || res.Steps != 1 {
		t.Fatalf("constant machine: %+v", res)
	}
}

func TestAdversarialPermutationNeverConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	d := fsm.RandomPermutation(rng, 8, 2, 0.5)
	res := AdversarialConvergence(d, 4, 0)
	if !res.Explored {
		t.Fatal("tiny machine should be fully explored")
	}
	if res.Converges {
		t.Fatal("permutation machine must never converge below n")
	}
	// But at threshold = n it is already converged.
	res = AdversarialConvergence(d, 8, 0)
	if !res.Converges || res.Steps != 0 {
		t.Fatalf("threshold=n: %+v", res)
	}
}

func TestAdversarialChainMachine(t *testing.T) {
	// A machine that takes exactly k steps to funnel everything into
	// state 0: state i goes to i-1 (floor 0) on both symbols.
	const n = 12
	d := fsm.MustNew(n, 2)
	for a := 0; a < 2; a++ {
		col := make([]fsm.State, n)
		for i := 1; i < n; i++ {
			col[i] = fsm.State(i - 1)
		}
		d.SetColumn(byte(a), col)
	}
	res := AdversarialConvergence(d, 1, 0)
	if !res.Converges {
		t.Fatal("chain must converge")
	}
	// After k steps the active set is {0..n-1-k}: reaching 1 active
	// state takes n-1 steps.
	if res.Steps != n-1 {
		t.Fatalf("steps = %d, want %d", res.Steps, n-1)
	}
}

func TestAdversarialOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	d := fsm.RandomPermutation(rng, 40, 4, 0.5)
	// Permutations generate huge config graphs; a tiny budget must be
	// reported as unexplored, not mislabeled.
	res := AdversarialConvergence(d, 1, 3)
	if res.Explored && res.Converges {
		t.Fatalf("overflowing exploration claimed convergence: %+v", res)
	}
}

func TestKLocalityConstantMachine(t *testing.T) {
	d := constantMachine(6)
	k, local, explored := KLocality(d, 0)
	if !explored || !local || k != 1 {
		t.Fatalf("constant machine: k=%d local=%v explored=%v", k, local, explored)
	}
}

func TestKLocalityPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	d := fsm.RandomPermutation(rng, 6, 2, 0.5)
	_, local, explored := KLocality(d, 0)
	if !explored {
		t.Fatal("tiny machine should be explorable")
	}
	if local {
		t.Fatal("permutation machines are never k-local")
	}
}

func TestKLocalityTypicalMachineIsNotLocal(t *testing.T) {
	// The paper's observation (§7, Holub et al. comparison): most
	// practical machines converge to a small set but NOT to one state,
	// so they are not k-local. A 2-state machine where both symbols
	// have range 2 and both states cycle exhibits this.
	d := fsm.MustNew(2, 2)
	d.SetColumn(0, []fsm.State{0, 1}) // identity: permutation symbol
	d.SetColumn(1, []fsm.State{1, 0}) // swap: permutation symbol
	if _, local, _ := KLocality(d, 0); local {
		t.Fatal("cycling machine must not be k-local")
	}
}

func TestActiveStateTraceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for iter := 0; iter < 30; iter++ {
		d := fsm.Random(rng, 1+rng.Intn(30), 1+rng.Intn(4), 0.3)
		in := d.RandomInput(rng, 40)
		tr := ActiveStateTrace(d, in)
		// Brute force: run from every state, count distinct.
		vec := gather.Identity[fsm.State](d.NumStates())
		for i, a := range in {
			for q, v := range vec {
				vec[q] = d.Next(v, a)
			}
			distinct := map[fsm.State]bool{}
			for _, v := range vec {
				distinct[v] = true
			}
			if tr[i] != len(distinct) {
				t.Fatalf("iter %d step %d: trace %d, brute %d", iter, i, tr[i], len(distinct))
			}
		}
	}
}

func TestActiveStateTraceMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	d := fsm.RandomConverging(rng, 60, 4, 8, 0.3)
	in := d.RandomInput(rng, 200)
	tr := ActiveStateTrace(d, in)
	for i := 1; i < len(tr); i++ {
		if tr[i] > tr[i-1] {
			t.Fatalf("active states grew at step %d: %d → %d", i, tr[i-1], tr[i])
		}
	}
	if tr[0] > d.RangeSize(in[0]) {
		t.Fatalf("first step actives %d exceed symbol range %d", tr[0], d.RangeSize(in[0]))
	}
}

func TestActiveStatesAt(t *testing.T) {
	d := constantMachine(5)
	if got := ActiveStatesAt(d, []byte{0, 1}); got != 1 {
		t.Fatalf("ActiveStatesAt = %d", got)
	}
	if got := ActiveStatesAt(d, nil); got != 5 {
		t.Fatalf("empty input ActiveStatesAt = %d", got)
	}
}

func TestRandomConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	d := fsm.RandomConverging(rng, 40, 8, 6, 0.3)
	curve := RandomConvergence(d, rng, nil, 5, 50)
	if len(curve) != 50 {
		t.Fatalf("curve length %d", len(curve))
	}
	for i, v := range curve {
		if v < 1 || v > float64(d.NumStates()) {
			t.Fatalf("curve[%d] = %v out of range", i, v)
		}
	}
	// Converging machines must be at ≤16 well before step 50 on random
	// input.
	if curve[49] > 16 {
		t.Errorf("converging machine still at %v active states", curve[49])
	}
	// With a source text, slices are drawn from it (just exercise path).
	src := make([]byte, 500)
	for i := range src {
		src[i] = byte(rng.Intn(d.NumSymbols()))
	}
	curve2 := RandomConvergence(d, rng, src, 3, 100)
	if len(curve2) != 100 {
		t.Fatal("source-driven curve wrong length")
	}
}
