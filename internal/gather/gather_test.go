package gather

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randVecs(rng *rand.Rand, m, n int) (s, t []byte) {
	s = make([]byte, m)
	t = make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(n))
	}
	for i := range t {
		t[i] = byte(rng.Intn(n))
	}
	return s, t
}

func TestIntoBasic(t *testing.T) {
	s := []byte{3, 5, 0, 1, 5, 4, 6, 2}
	tab := []byte{'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H'}
	got := New(s, tab)
	want := []byte{'D', 'F', 'A', 'B', 'F', 'E', 'G', 'C'} // paper §4.2 example
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
}

func TestIntoUint16(t *testing.T) {
	s := []uint16{2, 0, 1}
	tab := []uint16{100, 200, 300}
	got := New(s, tab)
	want := []uint16{300, 100, 200}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestIntoAliasing(t *testing.T) {
	// dst may alias s: the in-place S = S ⊗ T update of the base
	// enumerative loop.
	s := []byte{1, 0, 2}
	tab := []byte{10, 20, 30}
	Into(s, s, tab)
	want := []byte{20, 10, 30}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("in-place gather got %v, want %v", s, want)
		}
	}
}

func TestIdentityLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(200)
		s, tab := randVecs(rng, n, n)
		id := Identity[byte](n)
		// Id ⊗ T = T
		got := New(id, tab)
		for i := range tab {
			if got[i] != tab[i] {
				t.Fatal("Id ⊗ T != T")
			}
		}
		// S ⊗ Id = S
		got = New(s, id)
		for i := range s {
			if got[i] != s[i] {
				t.Fatal("S ⊗ Id != S")
			}
		}
	}
}

// Property (§3.1): gather is associative — (S⊗T)⊗U == S⊗(T⊗U).
func TestAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(mSeed, nSeed uint8) bool {
		m := 1 + int(mSeed)%64
		n := 1 + int(nSeed)%64
		s := make([]byte, m)
		for i := range s {
			s[i] = byte(rng.Intn(n))
		}
		tab := make([]byte, n)
		u := make([]byte, n)
		for i := range tab {
			tab[i] = byte(rng.Intn(n))
			u[i] = byte(rng.Intn(n))
		}
		left := New(New(s, tab), u)
		right := New(s, New(tab, u))
		for i := range left {
			if left[i] != right[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 32
	var tabs [][]byte
	for k := 0; k < 5; k++ {
		tab := make([]byte, n)
		for i := range tab {
			tab[i] = byte(rng.Intn(n))
		}
		tabs = append(tabs, tab)
	}
	// Compose of none = identity.
	id := Compose[byte](n)
	for i, v := range id {
		if int(v) != i {
			t.Fatal("empty Compose should be identity")
		}
	}
	// Compose equals sequentially applying each table to every start.
	c := Compose(n, tabs...)
	for q := 0; q < n; q++ {
		r := byte(q)
		for _, tab := range tabs {
			r = tab[r]
		}
		if c[q] != r {
			t.Fatalf("Compose[%d] = %d, want %d", q, c[q], r)
		}
	}
}

func TestCost(t *testing.T) {
	cases := []struct{ m, n, w, want int }{
		{16, 16, 16, 1},
		{16, 32, 16, 2},
		{32, 32, 16, 4},
		{17, 16, 16, 2},
		{1, 1, 16, 1},
		{256, 256, 16, 256},
		{8, 8, 0, 1}, // w=0 defaults to Width
	}
	for _, c := range cases {
		if got := Cost(c.m, c.n, c.w); got != c.want {
			t.Errorf("Cost(%d,%d,%d) = %d, want %d", c.m, c.n, c.w, got, c.want)
		}
	}
}
