// Package gather implements the primitives of Mytkowicz et al.
// (ASPLOS 2014): the gather operation ⊗m,n (§3.1), a portable emulation
// of the SIMD shuffle/blend implementation of gather (§4.2), and the
// Factor primitive (§5.1).
//
// (S ⊗ T)[i] = T[S[i]]: the left operand supplies indices into the
// right operand. When S is a vector of FSM states and T a per-symbol
// transition vector, S ⊗ T is the vector of successor states, so gather
// implements composition of transition functions. Gather is
// associative, which is what every parallel algorithm in internal/core
// exploits.
//
// The paper implements ⊗16,16 with the x86 byte shuffle instruction and
// builds ⊗m,n from (m·n)/16² shuffles plus blends. Pure Go has no
// intrinsics, so this package executes the identical block/blend
// dataflow on a fixed-size [16]byte register type (see simd.go); the
// operation counts and scaling shape match the paper even though the
// absolute constant of a real `pshufb` is unattainable without
// assembly.
package gather

// Elem constrains the element types gather operates on. Byte elements
// are the fast path (range-coalesced machines encode state names in a
// byte, §5.3); uint16 covers machines with up to 65536 states.
type Elem interface {
	~uint8 | ~uint16
}

// Into computes dst[i] = t[s[i]] with plain scalar loads — the
// "Non-SIMD" gather of §4.1. dst may alias s; it must not alias t.
// Indices must be within bounds of t (the paper's modulo convention is
// only needed inside the SIMD kernels).
func Into[E Elem](dst, s []E, t []E) {
	_ = t[len(t)-1]
	for i, idx := range s {
		dst[i] = t[idx]
	}
}

// New computes and returns s ⊗ t as a fresh slice.
func New[E Elem](s, t []E) []E {
	dst := make([]E, len(s))
	Into(dst, s, t)
	return dst
}

// Identity returns the identity vector Id of length n: Id[i] = i. It is
// the unit of gather: Id ⊗ T = T, and S ⊗ Id = S when |Id| covers the
// values of S.
func Identity[E Elem](n int) []E {
	id := make([]E, n)
	for i := range id {
		id[i] = E(i)
	}
	return id
}

// Compose folds a sequence of tables left-to-right:
// Compose(ts) = Id ⊗ ts[0] ⊗ ts[1] ⊗ … — i.e. the composition of the
// transition functions in application order. Returns Identity(n) for an
// empty sequence, where n is taken from width.
func Compose[E Elem](width int, ts ...[]E) []E {
	acc := Identity[E](width)
	tmp := make([]E, width)
	for _, t := range ts {
		Into(tmp, acc, t)
		acc, tmp = tmp, acc
	}
	return acc
}

// Cost returns the number of W-wide shuffle invocations the blocked
// SIMD implementation of ⊗m,n performs: ⌈m/W⌉·⌈n/W⌉ (§4.2). The paper
// reports that over 80% of its benchmark FSMs need only 1–2 shuffles
// per input symbol.
func Cost(m, n, w int) int {
	if w <= 0 {
		w = Width
	}
	return ((m + w - 1) / w) * ((n + w - 1) / w)
}
