package gather

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShuffle16x8Semantics(t *testing.T) {
	var s, tab Reg16
	for i := range tab {
		tab[i] = uint16(100 + i)
	}
	s = Reg16{7, 0, 3, 8 /* wraps to 0 */, 15 /* wraps to 7 */, 2, 1, 4}
	out := Shuffle16x8(s, tab)
	want := Reg16{107, 100, 103, 100, 107, 102, 101, 104}
	if out != want {
		t.Fatalf("got %v want %v", out, want)
	}
}

func TestBlend16AndMask(t *testing.T) {
	var a, b Reg16
	for i := range a {
		a[i] = uint16(i)
		b[i] = uint16(100 + i)
	}
	var s Reg16
	s[0] = 3  // block 0
	s[1] = 8  // block 1
	s[2] = 17 // block 2
	m1 := BlockMask16(s, 1)
	if m1[1] == 0 || m1[0] != 0 || m1[2] != 0 {
		t.Fatalf("mask wrong: %v", m1)
	}
	out := Blend16(a, b, m1)
	if out[1] != a[1] || out[0] != b[0] {
		t.Fatalf("blend wrong: %v", out)
	}
}

func TestSIMDInto16MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	f := func(mSeed, nSeed uint16) bool {
		m := 1 + int(mSeed)%512
		n := 1 + int(nSeed)%2048
		s := make([]uint16, m)
		tab := make([]uint16, n)
		for i := range s {
			s[i] = uint16(rng.Intn(n))
		}
		for i := range tab {
			tab[i] = uint16(rng.Intn(n))
		}
		want := New(s, tab)
		got := SIMDNew16(s, tab)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSIMDInto16InPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	n := 100
	s := make([]uint16, 50)
	tab := make([]uint16, n)
	for i := range s {
		s[i] = uint16(rng.Intn(n))
	}
	for i := range tab {
		tab[i] = uint16(rng.Intn(n))
	}
	want := New(s, tab)
	SIMDInto16(s, s, tab)
	for i := range want {
		if s[i] != want[i] {
			t.Fatal("in-place word gather diverged")
		}
	}
}

func TestLoadStoreReg16(t *testing.T) {
	r := LoadReg16([]uint16{5, 6})
	if r[0] != 5 || r[1] != 6 || r[2] != 0 {
		t.Fatalf("LoadReg16 = %v", r)
	}
	dst := make([]uint16, 3)
	r.Store(dst, 99)
	if dst[0] != 5 || dst[1] != 6 {
		t.Fatalf("Store = %v", dst)
	}
}

// The §5.3 operation-count claim: a word path needs 4× the register
// ops of the byte path for equal m and n.
func TestWordVsByteOpCount(t *testing.T) {
	m, n := 16, 16
	byteOps := Cost(m, n, Width)
	wordOps := Cost(m, n, Width16)
	if wordOps != 4*byteOps {
		t.Errorf("word ops %d, byte ops %d; want 4×", wordOps, byteOps)
	}
}
