package gather

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShuffleSemantics(t *testing.T) {
	var s, tab Reg
	for i := range tab {
		tab[i] = byte('A' + i)
	}
	for i := range s {
		s[i] = byte((i * 3) % 16)
	}
	out := Shuffle(s, tab)
	for i := range out {
		if want := tab[s[i]]; out[i] != want {
			t.Fatalf("lane %d: got %c, want %c", i, out[i], want)
		}
	}
}

func TestShuffleModulo(t *testing.T) {
	// Indices ≥ 16 wrap modulo 16 — the convention §4.2 builds on.
	var s, tab Reg
	for i := range tab {
		tab[i] = byte(i * 2)
	}
	s[0] = 16 // ≡ 0
	s[1] = 31 // ≡ 15
	s[2] = 255
	out := Shuffle(s, tab)
	if out[0] != tab[0] || out[1] != tab[15] || out[2] != tab[255&15] {
		t.Errorf("modulo wrap broken: %v", out[:3])
	}
}

func TestBlend(t *testing.T) {
	var a, b, sel Reg
	for i := range a {
		a[i] = byte(i)
		b[i] = byte(100 + i)
		if i%2 == 0 {
			sel[i] = 1
		}
	}
	out := Blend(a, b, sel)
	for i := range out {
		want := b[i]
		if i%2 == 0 {
			want = a[i]
		}
		if out[i] != want {
			t.Fatalf("lane %d: got %d, want %d", i, out[i], want)
		}
	}
}

func TestBlockMask(t *testing.T) {
	var s Reg
	s[0] = 5   // block 0
	s[1] = 16  // block 1
	s[2] = 17  // block 1
	s[3] = 250 // block 15
	m0 := BlockMask(s, 0)
	m1 := BlockMask(s, 1)
	m15 := BlockMask(s, 15)
	if m0[0] == 0 || m0[1] != 0 {
		t.Error("block 0 mask wrong")
	}
	if m1[1] == 0 || m1[2] == 0 || m1[0] != 0 {
		t.Error("block 1 mask wrong")
	}
	if m15[3] == 0 {
		t.Error("block 15 mask wrong")
	}
}

func TestLoadStoreReg(t *testing.T) {
	r := LoadReg([]byte{1, 2, 3})
	if r[0] != 1 || r[2] != 3 || r[3] != 0 || r[15] != 0 {
		t.Errorf("LoadReg padding wrong: %v", r)
	}
	dst := make([]byte, 5)
	r.Store(dst, 3)
	if dst[0] != 1 || dst[2] != 3 || dst[3] != 0 {
		t.Errorf("Store wrong: %v", dst)
	}
	full := make([]byte, 16)
	r.Store(full, 99) // n clamps to Width
	if full[0] != 1 {
		t.Error("clamped Store wrong")
	}
}

func TestSIMDIntoPaperExample(t *testing.T) {
	// §4.2 worked example (stated for W=4; semantics identical at W=16
	// because all indices are in range).
	s := []byte{3, 5, 0, 1, 5, 4, 6, 2}
	tab := []byte{'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H'}
	got := SIMDNew(s, tab)
	want := "DFABFEGC"
	if string(got) != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// Property: the blocked SIMD gather agrees with scalar gather for all
// m ≤ 1024, n ≤ 256.
func TestSIMDMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(mSeed uint16, nSeed uint8) bool {
		m := 1 + int(mSeed)%1024
		n := 1 + int(nSeed) // 1..256
		s := make([]byte, m)
		tab := make([]byte, n)
		for i := range s {
			s[i] = byte(rng.Intn(n))
		}
		for i := range tab {
			tab[i] = byte(rng.Intn(n))
		}
		want := New(s, tab)
		got := SIMDNew(s, tab)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSIMDIntoInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(256)
		m := 1 + rng.Intn(128)
		s := make([]byte, m)
		tab := make([]byte, n)
		for i := range s {
			s[i] = byte(rng.Intn(n))
		}
		for i := range tab {
			tab[i] = byte(rng.Intn(n))
		}
		want := New(s, tab)
		SIMDInto(s, s, tab) // in place
		for i := range want {
			if s[i] != want[i] {
				t.Fatalf("in-place SIMD gather diverged at %d", i)
			}
		}
	}
}

func TestShuffle16Into(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(16)
		m := 1 + rng.Intn(16)
		s := make([]byte, m)
		tab := make([]byte, n)
		for i := range s {
			s[i] = byte(rng.Intn(n))
		}
		for i := range tab {
			tab[i] = byte(rng.Intn(n))
		}
		want := New(s, tab)
		got := make([]byte, m)
		Shuffle16Into(got, s, LoadReg(tab))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Shuffle16Into diverged at lane %d", i)
			}
		}
	}
}

// Property: SIMD gather is associative too (it is the same function).
func TestSIMDAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(256)
		m := 1 + rng.Intn(64)
		s := make([]byte, m)
		t1 := make([]byte, n)
		t2 := make([]byte, n)
		for i := range s {
			s[i] = byte(rng.Intn(n))
		}
		for i := 0; i < n; i++ {
			t1[i] = byte(rng.Intn(n))
			t2[i] = byte(rng.Intn(n))
		}
		left := SIMDNew(SIMDNew(s, t1), t2)
		right := SIMDNew(s, SIMDNew(t1, t2))
		for i := range left {
			if left[i] != right[i] {
				t.Fatal("SIMD gather not associative")
			}
		}
	}
}
