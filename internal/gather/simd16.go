package gather

// Word-level emulated SIMD. §5.3 argues that range coalescing matters
// partly because byte-encoded names allow the byte-level shuffle, while
// "encoding states directly will otherwise require the use of
// much-slower word-level gathers": a 128-bit register holds only 8
// uint16 lanes instead of 16 byte lanes, doubling both the number of
// register-wide operations per vector and the table blocks per lookup.
// This file provides that word-level path so the claim is measurable
// (see BenchmarkByteVsWordGather).

// Width16 is the number of uint16 lanes per emulated 128-bit register.
const Width16 = 8

// Reg16 is one emulated SIMD register of Width16 uint16 lanes.
type Reg16 [Width16]uint16

// LoadReg16 fills a register from up to Width16 values, zero-padding.
func LoadReg16(s []uint16) Reg16 {
	var r Reg16
	copy(r[:], s)
	return r
}

// Store writes the first n lanes of r to dst, clamped to both the
// register width and len(dst).
func (r Reg16) Store(dst []uint16, n int) {
	if n > Width16 {
		n = Width16
	}
	if n > len(dst) {
		n = len(dst)
	}
	copy(dst[:n], r[:n])
}

// Shuffle16x8 implements ⊗8,8 over words: out[i] = t[s[i] mod 8].
func Shuffle16x8(s, t Reg16) Reg16 {
	var out Reg16
	for i := 0; i < Width16; i++ {
		out[i] = t[s[i]&(Width16-1)]
	}
	return out
}

// Blend16 selects lanes: out[i] = a[i] where sel[i] != 0, else b[i].
func Blend16(a, b, sel Reg16) Reg16 {
	var out Reg16
	for i := 0; i < Width16; i++ {
		if sel[i] != 0 {
			out[i] = a[i]
		} else {
			out[i] = b[i]
		}
	}
	return out
}

// BlockMask16 marks lanes of s whose index falls in table block j.
func BlockMask16(s Reg16, j int) Reg16 {
	var sel Reg16
	jw := uint16(j)
	for i := 0; i < Width16; i++ {
		if s[i]>>3 == jw {
			sel[i] = 1
		}
	}
	return sel
}

// SIMDInto16 computes dst[i] = t[s[i]] for uint16 elements with the
// blocked word-shuffle construction — ⌈m/8⌉·⌈n/8⌉ shuffles, four times
// the count of the byte path for the same m and n. len(t) must be at
// most 65536; indices in s must be < len(t). dst may alias s.
func SIMDInto16(dst, s, t []uint16) {
	n := len(t)
	nBlocks := (n + Width16 - 1) / Width16
	tb := make([]Reg16, nBlocks)
	for j := 0; j < nBlocks; j++ {
		lo := j * Width16
		hi := lo + Width16
		if hi > n {
			hi = n
		}
		tb[j] = LoadReg16(t[lo:hi])
	}
	for off := 0; off < len(s); off += Width16 {
		hi := off + Width16
		if hi > len(s) {
			hi = len(s)
		}
		sr := LoadReg16(s[off:hi])
		acc := Shuffle16x8(sr, tb[0])
		for j := 1; j < nBlocks; j++ {
			sh := Shuffle16x8(sr, tb[j])
			acc = Blend16(sh, acc, BlockMask16(sr, j))
		}
		acc.Store(dst[off:], hi-off)
	}
}

// SIMDNew16 computes and returns s ⊗ t as a fresh slice via SIMDInto16.
func SIMDNew16(s, t []uint16) []uint16 {
	dst := make([]uint16, len(s))
	SIMDInto16(dst, s, t)
	return dst
}
