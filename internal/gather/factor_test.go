package gather

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFactorPaperExample(t *testing.T) {
	// §5.1: [s,t,u,t,t,u,s] = [0,1,2,1,1,2,0] ⊗ [s,t,u]
	s, u16, tt := byte('s'), byte('u'), byte('t')
	in := []byte{s, tt, u16, tt, tt, u16, s}
	l, u := Factor(in)
	wantL := []byte{0, 1, 2, 1, 1, 2, 0}
	wantU := []byte{s, tt, u16}
	if len(l) != len(wantL) || len(u) != len(wantU) {
		t.Fatalf("Factor sizes: |l|=%d |u|=%d", len(l), len(u))
	}
	for i := range wantL {
		if l[i] != wantL[i] {
			t.Fatalf("l = %v, want %v", l, wantL)
		}
	}
	for i := range wantU {
		if u[i] != wantU[i] {
			t.Fatalf("u = %v, want %v", u, wantU)
		}
	}
}

// Property: s = l ⊗ u, u has unique elements in first-appearance order,
// and |u| = UniqueCount(s).
func TestFactorInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			l, u := Factor(raw)
			return len(l) == 0 && len(u) == 0
		}
		l, u := Factor(raw)
		if len(u) != UniqueCount(raw) {
			return false
		}
		// Reconstruct.
		back := New(l, u)
		for i := range raw {
			if back[i] != raw[i] {
				return false
			}
		}
		// Uniqueness of u.
		seen := map[byte]bool{}
		for _, v := range u {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestFactorUint16(t *testing.T) {
	in := []uint16{500, 7, 500, 9, 7}
	l, u := Factor(in)
	if len(u) != 3 || u[0] != 500 || u[1] != 7 || u[2] != 9 {
		t.Fatalf("u = %v", u)
	}
	back := New(l, u)
	for i := range in {
		if back[i] != in[i] {
			t.Fatalf("reconstruction failed: %v vs %v", back, in)
		}
	}
}

func TestUniqueCount(t *testing.T) {
	cases := []struct {
		in   []byte
		want int
	}{
		{nil, 0},
		{[]byte{0}, 1},
		{[]byte{5, 5, 5}, 1},
		{[]byte{1, 2, 3, 2, 1}, 3},
		{[]byte{255, 0, 255}, 2},
	}
	for _, c := range cases {
		if got := UniqueCount(c.in); got != c.want {
			t.Errorf("UniqueCount(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// Property: factoring is exactly the convergence compression — gathering
// through the factored pair gives the same result as gathering directly.
func TestFactorThenGather(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(100)
		m := 1 + rng.Intn(100)
		s := make([]byte, m)
		tab := make([]byte, n)
		for i := range s {
			s[i] = byte(rng.Intn(n))
		}
		for i := range tab {
			tab[i] = byte(rng.Intn(n))
		}
		l, u := Factor(s)
		// (l ⊗ u) ⊗ tab == l ⊗ (u ⊗ tab): compute RHS the cheap way.
		cheap := New(l, New(u, tab))
		direct := New(s, tab)
		for i := range direct {
			if cheap[i] != direct[i] {
				t.Fatal("factored gather diverged")
			}
		}
	}
}
