package gather

// Factor (§5.1): given S, produce (L, U) with S = L ⊗ U where U holds
// the unique elements of S in first-occurrence order and L indexes into
// U. Convergence (§5.2) uses Factor to shrink the active-state vector;
// range coalescing (§5.3) uses it to build per-symbol name tables.
// Hardware has no factor instruction, so this is the straightforward
// linear-time scan the paper describes — used sparingly by callers.

// Factor returns (l, u) such that s = l ⊗ u and u contains exactly the
// distinct elements of s in order of first appearance. The index type
// of l is the same element type as s, which is always wide enough
// because |u| ≤ |s|.
func Factor[E Elem](s []E) (l, u []E) {
	// Position of each value in u, or -1. Sized by max possible value
	// of E; for bytes that is a fixed 256-entry table, for uint16 we
	// size lazily from the maximum element.
	var maxV int
	for _, v := range s {
		if int(v) > maxV {
			maxV = int(v)
		}
	}
	pos := make([]int32, maxV+1)
	for i := range pos {
		pos[i] = -1
	}
	l = make([]E, len(s))
	for i, v := range s {
		p := pos[v]
		if p < 0 {
			p = int32(len(u))
			pos[v] = p
			u = append(u, v)
		}
		l[i] = E(p)
	}
	return l, u
}

// UniqueCount returns the number of distinct elements of s — the number
// of active states when s is an enumerative state vector — without
// materializing the factorization.
func UniqueCount[E Elem](s []E) int {
	var maxV int
	for _, v := range s {
		if int(v) > maxV {
			maxV = int(v)
		}
	}
	seen := make([]bool, maxV+1)
	n := 0
	for _, v := range s {
		if !seen[v] {
			seen[v] = true
			n++
		}
	}
	return n
}
