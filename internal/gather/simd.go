package gather

// Emulated SIMD kernels. Reg models one 128-bit SIMD register holding
// 16 byte lanes; Shuffle and Blend model the x86 `pshufb` and
// `pblendvb` instructions with the index-modulo-W convention the paper
// assumes (§4.2). SIMDInto assembles the general ⊗m,n from these
// W-wide primitives using exactly the paper's block/blend construction,
// so the executed dataflow — ⌈m/W⌉·⌈n/W⌉ shuffles plus the
// corresponding blends — matches the hand-coded C++ template
// specializations described in §4.3.

// Width is the emulated SIMD width W in byte lanes.
const Width = 16

// Reg is one emulated SIMD register of Width byte lanes.
type Reg [Width]byte

// LoadReg fills a register from up to Width bytes of s, zero-padding
// the tail lanes.
func LoadReg(s []byte) Reg {
	var r Reg
	copy(r[:], s)
	return r
}

// Store writes the first n lanes of r to dst, clamped to both the
// register width and len(dst).
func (r Reg) Store(dst []byte, n int) {
	if n > Width {
		n = Width
	}
	if n > len(dst) {
		n = len(dst)
	}
	copy(dst[:n], r[:n])
}

// Shuffle implements ⊗16,16: out[i] = t[s[i] mod 16]. This is the
// byte-shuffle semantics the paper relies on ("current implementations
// of shuffle use the index modulo W when an index exceeds W").
// The loop body is over a fixed-size array with constant masks, which
// the Go compiler unrolls and bounds-check-eliminates.
func Shuffle(s, t Reg) Reg {
	var out Reg
	for i := 0; i < Width; i++ {
		out[i] = t[s[i]&(Width-1)]
	}
	return out
}

// Blend selects lanes: out[i] = a[i] where sel[i] != 0, else b[i]
// (the paper writes blend(x, y, pred) with pred choosing x).
func Blend(a, b, sel Reg) Reg {
	var out Reg
	for i := 0; i < Width; i++ {
		if sel[i] != 0 {
			out[i] = a[i]
		} else {
			out[i] = b[i]
		}
	}
	return out
}

// BlockMask returns the selection register marking lanes of s whose
// index falls in table block j, i.e. s[i]/Width == j.
func BlockMask(s Reg, j int) Reg {
	var sel Reg
	jb := byte(j)
	for i := 0; i < Width; i++ {
		if s[i]>>4 == jb {
			sel[i] = 1
		}
	}
	return sel
}

// SIMDInto computes dst[i] = t[s[i]] for byte elements using the
// blocked shuffle/blend construction of §4.2: every Width-lane chunk of
// s is shuffled against every Width-lane block of t and the results are
// blended by index range. len(t) must be at most 256; indices in s must
// be < len(t). dst may alias s.
func SIMDInto(dst, s, t []byte) {
	n := len(t)
	nBlocks := (n + Width - 1) / Width

	// Preload the table blocks once per call; they are reused for every
	// chunk of s (mirrors keeping the transition table resident in SIMD
	// registers across the input loop).
	var tb [256 / Width]Reg
	for j := 0; j < nBlocks; j++ {
		lo := j * Width
		hi := lo + Width
		if hi > n {
			hi = n
		}
		tb[j] = LoadReg(t[lo:hi])
	}

	for off := 0; off < len(s); off += Width {
		hi := off + Width
		if hi > len(s) {
			hi = len(s)
		}
		sr := LoadReg(s[off:hi])
		acc := Shuffle(sr, tb[0])
		for j := 1; j < nBlocks; j++ {
			sh := Shuffle(sr, tb[j])
			acc = Blend(sh, acc, BlockMask(sr, j))
		}
		acc.Store(dst[off:], hi-off)
	}
}

// SIMDNew computes and returns s ⊗ t as a fresh slice via SIMDInto.
func SIMDNew(s, t []byte) []byte {
	dst := make([]byte, len(s))
	SIMDInto(dst, s, t)
	return dst
}

// Shuffle16Into is the specialized single-register fast path for
// m ≤ 16, n ≤ 16 — the case the paper highlights as "one shuffle per
// input symbol" (§6.1). Provided separately so the core runner can
// dispatch to it without the blocked loop's overhead.
func Shuffle16Into(dst, s []byte, t Reg) {
	sr := LoadReg(s)
	out := Shuffle(sr, t)
	out.Store(dst, len(s))
}
