package otlp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sync"
	"testing"
	"time"

	"dpfsm/internal/telemetry"
	"dpfsm/internal/trace"
)

// collector is the in-test OTLP collector stub: it records every
// payload POSTed to /v1/traces and /v1/metrics, optionally failing
// the first N requests to exercise the retry path.
type collector struct {
	mu       sync.Mutex
	traces   []tracesDoc
	metrics  []metricsDoc
	failures int // fail this many requests with 503 before accepting
	requests int
	srv      *httptest.Server
}

func newCollector(t *testing.T) *collector {
	t.Helper()
	c := &collector{}
	c.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, err := io.ReadAll(req.Body)
		if err != nil {
			t.Errorf("collector read: %v", err)
		}
		if ct := req.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type %q", ct)
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		c.requests++
		if c.failures > 0 {
			c.failures--
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		switch req.URL.Path {
		case "/v1/traces":
			var doc tracesDoc
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Errorf("traces payload: %v", err)
			}
			c.traces = append(c.traces, doc)
		case "/v1/metrics":
			var doc metricsDoc
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Errorf("metrics payload: %v", err)
			}
			c.metrics = append(c.metrics, doc)
		default:
			t.Errorf("unexpected path %s", req.URL.Path)
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(c.srv.Close)
	return c
}

func (c *collector) traceDocs() []tracesDoc {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]tracesDoc(nil), c.traces...)
}

func (c *collector) metricDocs() []metricsDoc {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]metricsDoc(nil), c.metrics...)
}

func (c *collector) spans() []otlpSpan {
	var out []otlpSpan
	for _, doc := range c.traceDocs() {
		for _, rs := range doc.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				out = append(out, ss.Spans...)
			}
		}
	}
	return out
}

func finishedTrace(name string, attrs ...trace.Attr) *trace.Trace {
	t := trace.New()
	t.SetName(name)
	t.SetAttrs(attrs...)
	sp := t.StartSpan("engine.exec")
	child := sp.Child("phase1")
	child.SetAttrs(trace.Int("chunk", 3))
	child.End()
	sp.End()
	t.Finish()
	return t
}

var (
	hex32 = regexp.MustCompile(`^[0-9a-f]{32}$`)
	hex16 = regexp.MustCompile(`^[0-9a-f]{16}$`)
)

func TestExporterShipsWellFormedTraces(t *testing.T) {
	c := newCollector(t)
	e, err := New(Config{Endpoint: c.srv.URL, ServiceName: "fsmserve-test", BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := finishedTrace("POST /v1/run", trace.Str("machine", "div3"), trace.Int("bytes", 4096))
	tr2 := finishedTrace("POST /v1/run")
	e.Record(tr)
	e.Record(tr2) // fills the batch → immediate flush

	deadline := time.Now().Add(5 * time.Second)
	for len(c.spans()) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	spans := c.spans()
	// 2 traces × (1 root + 2 internal spans).
	if len(spans) != 6 {
		t.Fatalf("spans = %d, want 6", len(spans))
	}
	docs := c.traceDocs()
	res := docs[0].ResourceSpans[0].Resource
	if len(res.Attributes) == 0 || res.Attributes[0].Key != "service.name" ||
		res.Attributes[0].Value.StringValue == nil || *res.Attributes[0].Value.StringValue != "fsmserve-test" {
		t.Fatalf("resource attrs: %+v", res.Attributes)
	}

	byName := map[string]otlpSpan{}
	for _, sp := range spans {
		if sp.TraceID == tr.ID() {
			byName[sp.Name] = sp
		}
	}
	root := byName["POST /v1/run"]
	if root.SpanID != tr.SpanID() || root.Kind != spanKindServer {
		t.Fatalf("root span: %+v", root)
	}
	if root.Status == nil || root.Status.Code != statusOK {
		t.Fatalf("root status: %+v", root.Status)
	}
	var gotMachine, gotBytes bool
	for _, kv := range root.Attributes {
		switch kv.Key {
		case "machine":
			gotMachine = kv.Value.StringValue != nil && *kv.Value.StringValue == "div3"
		case "bytes":
			gotBytes = kv.Value.IntValue != nil && *kv.Value.IntValue == "4096"
		}
	}
	if !gotMachine || !gotBytes {
		t.Fatalf("root attrs incomplete: %+v", root.Attributes)
	}

	exec, ph1 := byName["engine.exec"], byName["phase1"]
	if exec.ParentSpanID != root.SpanID {
		t.Fatalf("engine.exec parent %q, want root %q", exec.ParentSpanID, root.SpanID)
	}
	if ph1.ParentSpanID != exec.SpanID {
		t.Fatalf("phase1 parent %q, want %q", ph1.ParentSpanID, exec.SpanID)
	}
	for _, sp := range spans {
		if !hex32.MatchString(sp.TraceID) || !hex16.MatchString(sp.SpanID) {
			t.Fatalf("span IDs malformed: %+v", sp)
		}
		if sp.StartTime == "" || sp.EndTime == "" {
			t.Fatalf("span times missing: %+v", sp)
		}
	}

	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.TracesExported != 2 || st.SpansExported != 6 || st.TracesDropped != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestExporterErrorStatusAndJoin(t *testing.T) {
	c := newCollector(t)
	e, err := New(Config{Endpoint: c.srv.URL, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown(context.Background())
	tr := trace.FromParent("00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01")
	tr.SetName("POST /v1/run")
	tr.SetError("machine not found")
	tr.Finish()
	e.Record(tr)
	deadline := time.Now().Add(5 * time.Second)
	for len(c.spans()) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	spans := c.spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	sp := spans[0]
	if sp.TraceID != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("joined trace ID %q", sp.TraceID)
	}
	if sp.ParentSpanID != "00f067aa0ba902b7" {
		t.Fatalf("inbound parent %q", sp.ParentSpanID)
	}
	if sp.Status == nil || sp.Status.Code != statusError || sp.Status.Message != "machine not found" {
		t.Fatalf("status: %+v", sp.Status)
	}
}

func TestExporterPushesMetrics(t *testing.T) {
	c := newCollector(t)
	m := new(telemetry.Metrics)
	m.EngineJobs.Add(42)
	m.EngineQueueDepth.Set(3)
	m.Symbols.Add(100)
	m.Shuffles.Add(150)
	e, err := New(Config{
		Endpoint: c.srv.URL,
		Snapshot: m.Snapshot,
		Interval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(c.metricDocs()) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	docs := c.metricDocs()
	if len(docs) == 0 {
		t.Fatal("no metrics arrived")
	}
	byName := map[string]otlpMetric{}
	for _, md := range docs[0].ResourceMetrics[0].ScopeMetrics[0].Metrics {
		byName[md.Name] = md
	}
	jobs := byName["dpfsm.engine.jobs"]
	if jobs.Sum == nil || !jobs.Sum.IsMonotonic || jobs.Sum.AggregationTemporality != 2 {
		t.Fatalf("jobs sum: %+v", jobs)
	}
	dp := jobs.Sum.DataPoints[0]
	if dp.AsInt == nil || *dp.AsInt != "42" || dp.StartTime == "" || dp.Time == "" {
		t.Fatalf("jobs datapoint: %+v", dp)
	}
	depth := byName["dpfsm.engine.queue_depth"]
	if depth.Gauge == nil || depth.Gauge.DataPoints[0].AsInt == nil || *depth.Gauge.DataPoints[0].AsInt != "3" {
		t.Fatalf("queue depth: %+v", depth)
	}
	sps := byName["dpfsm.shuffles_per_symbol"]
	if sps.Gauge == nil || sps.Gauge.DataPoints[0].AsDouble == nil || *sps.Gauge.DataPoints[0].AsDouble != 1.5 {
		t.Fatalf("shuffles per symbol: %+v", sps)
	}
}

func TestExporterRetriesTransientFailures(t *testing.T) {
	c := newCollector(t)
	c.failures = 2
	e, err := New(Config{
		Endpoint:   c.srv.URL,
		BatchSize:  1,
		RetryBase:  time.Millisecond,
		MaxRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Record(finishedTrace("retry-me"))
	deadline := time.Now().Add(5 * time.Second)
	for len(c.spans()) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.TracesExported != 1 {
		t.Fatalf("trace lost: %+v", st)
	}
	if st.Retries != 2 || st.SendFailures != 0 {
		t.Fatalf("retry accounting: %+v", st)
	}
}

func TestExporterGivesUpAfterMaxRetries(t *testing.T) {
	c := newCollector(t)
	c.failures = 10
	e, err := New(Config{
		Endpoint:   c.srv.URL,
		BatchSize:  1,
		RetryBase:  time.Millisecond,
		MaxRetries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Record(finishedTrace("doomed"))
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().SendFailures == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.SendFailures == 0 || st.TracesExported != 0 {
		t.Fatalf("doomed payload accounted wrong: %+v", st)
	}
}

func TestExporterDropsWhenQueueFull(t *testing.T) {
	// No collector at all: the worker blocks in backoff while the tiny
	// queue fills.
	blocked := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		<-blocked
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	e, err := New(Config{Endpoint: srv.URL, BatchSize: 1, QueueSize: 2, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		e.Record(finishedTrace(fmt.Sprintf("t%d", i)))
	}
	if st := e.Stats(); st.TracesDropped == 0 {
		t.Fatalf("no drops with a wedged collector: %+v", st)
	}
	close(blocked)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	e.Shutdown(ctx)
}

func TestShutdownFlushesQueueAndFinalMetrics(t *testing.T) {
	c := newCollector(t)
	m := new(telemetry.Metrics)
	m.EngineJobs.Add(7)
	// Interval far beyond the test: nothing flushes except by batch
	// size or shutdown.
	e, err := New(Config{
		Endpoint:  c.srv.URL,
		Snapshot:  m.Snapshot,
		Interval:  time.Hour,
		BatchSize: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e.Record(finishedTrace(fmt.Sprintf("t%d", i)))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().TracesExported; got != 5 {
		t.Fatalf("flushed %d traces, want 5", got)
	}
	if len(c.metricDocs()) != 1 {
		t.Fatalf("final metrics pushes = %d, want 1", len(c.metricDocs()))
	}
	// Records after shutdown are dropped, not deadlocked.
	e.Record(finishedTrace("late"))
	if e.Stats().TracesDropped == 0 {
		t.Fatal("post-shutdown record not counted as dropped")
	}
}

func TestNewRejectsBadEndpoints(t *testing.T) {
	for _, ep := range []string{"", "not a url", "ftp://x", "localhost:4318", "//missing-scheme"} {
		if _, err := New(Config{Endpoint: ep}); err == nil {
			t.Errorf("endpoint %q accepted", ep)
		}
	}
}

func TestNilExporterInert(t *testing.T) {
	var e *Exporter
	e.Record(finishedTrace("x"))
	if e.Stats() != (Stats{}) {
		t.Fatal("nil stats")
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestOTLPSmokeArtifact is the CI smoke hook: when OTLP_SMOKE_OUT is
// set, it runs a full exporter round-trip against the collector stub
// and writes a JSON summary of what arrived, which CI uploads as the
// OTLP-export smoke artifact.
func TestOTLPSmokeArtifact(t *testing.T) {
	out := os.Getenv("OTLP_SMOKE_OUT")
	if out == "" {
		t.Skip("OTLP_SMOKE_OUT not set")
	}
	c := newCollector(t)
	m := new(telemetry.Metrics)
	m.EngineJobs.Add(3)
	e, err := New(Config{Endpoint: c.srv.URL, ServiceName: "fsmserve-smoke", Snapshot: m.Snapshot, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e.Record(finishedTrace(fmt.Sprintf("smoke-%d", i)))
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(c.spans()) < 9 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	summary := map[string]any{
		"exporter_stats": e.Stats(),
		"trace_docs":     len(c.traceDocs()),
		"metric_docs":    len(c.metricDocs()),
		"spans":          len(c.spans()),
	}
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if len(c.spans()) < 9 || len(c.metricDocs()) == 0 {
		t.Fatalf("smoke incomplete: %s", data)
	}
}
