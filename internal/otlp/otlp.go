// Package otlp ships the runtime's traces and telemetry snapshots to
// any OpenTelemetry collector over OTLP/HTTP JSON — the push half of
// the observability stack, next to the pull surfaces (/v1/metrics
// scrape, /v1/traces flight recorder). It is deliberately
// dependency-free: the OTLP JSON encoding is small enough to write by
// hand (see convert.go), and a standards-shaped wire format is worth
// far more than a vendored SDK.
//
// Operational design, in order:
//
//  1. Never block the request path. Record is a non-blocking send
//     into a bounded queue; when the collector is slow or down the
//     queue fills and further traces are dropped and counted, not
//     buffered without bound and not awaited.
//
//  2. Batch. Traces are flushed when a batch fills or on the metrics
//     interval, whichever comes first, so a quiet service still
//     exports promptly and a busy one amortizes HTTP overhead.
//
//  3. Retry transient failures with exponential backoff (network
//     errors, 429, 5xx), give up after MaxRetries and count the loss.
//     4xx responses other than 429 are permanent — retrying a payload
//     the collector rejects is a loop, not a recovery — so they are
//     dropped immediately.
//
//  4. Flush on shutdown. Shutdown stops intake, drains whatever the
//     queue holds, pushes a final metrics snapshot, and respects the
//     caller's context deadline.
package otlp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpfsm/internal/telemetry"
	"dpfsm/internal/trace"
)

// Defaults.
const (
	DefaultInterval   = 10 * time.Second
	DefaultBatchSize  = 64
	DefaultQueueSize  = 1024
	DefaultTimeout    = 5 * time.Second
	DefaultMaxRetries = 3
	DefaultRetryBase  = 250 * time.Millisecond
)

// Config configures an Exporter.
type Config struct {
	// Endpoint is the collector's OTLP/HTTP base URL, e.g.
	// "http://localhost:4318". The exporter POSTs to
	// {Endpoint}/v1/traces and {Endpoint}/v1/metrics.
	Endpoint string
	// ServiceName becomes the resource's service.name attribute.
	ServiceName string
	// Snapshot supplies the telemetry snapshot pushed every Interval;
	// nil disables the metrics feed (traces still flow).
	Snapshot func() telemetry.Snapshot
	// Interval is the metrics-push and trace-flush tick.
	Interval time.Duration
	// BatchSize flushes the trace queue early once this many traces
	// are pending. QueueSize bounds the intake queue; a full queue
	// drops (and counts) new traces.
	BatchSize int
	QueueSize int
	// Timeout bounds each HTTP request; MaxRetries and RetryBase
	// shape the exponential backoff on transient failures.
	Timeout    time.Duration
	MaxRetries int
	RetryBase  time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.ServiceName == "" {
		c.ServiceName = "dpfsm"
	}
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.QueueSize <= 0 {
		c.QueueSize = DefaultQueueSize
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.RetryBase <= 0 {
		c.RetryBase = DefaultRetryBase
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Stats counts the exporter's work and losses, for the status surface.
type Stats struct {
	TracesExported int64  `json:"traces_exported"`
	SpansExported  int64  `json:"spans_exported"`
	MetricPushes   int64  `json:"metric_pushes"`
	TracesDropped  int64  `json:"traces_dropped"`
	SendFailures   int64  `json:"send_failures"`
	Retries        int64  `json:"retries"`
	QueueDepth     int64  `json:"queue_depth"`
	Endpoint       string `json:"endpoint"`
}

// Exporter is the background OTLP shipper. Construct with New, feed
// it traces via Record (it implements trace.Sink), stop it with
// Shutdown. A nil *Exporter is inert, so callers can wire it
// unconditionally behind an off-by-default flag.
type Exporter struct {
	cfg   Config
	queue chan *trace.Trace
	start time.Time // cumulative-sum start time for OTLP sums

	tracesExported atomic.Int64
	spansExported  atomic.Int64
	metricPushes   atomic.Int64
	tracesDropped  atomic.Int64
	sendFailures   atomic.Int64
	retries        atomic.Int64

	stopOnce sync.Once
	stop     chan struct{} // closed by Shutdown: stop intake
	done     chan struct{} // closed by the worker when drained
}

// New validates cfg and starts the export worker.
func New(cfg Config) (*Exporter, error) {
	u, err := url.Parse(cfg.Endpoint)
	if err != nil || u.Scheme == "" || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
		return nil, fmt.Errorf("otlp: invalid endpoint %q (want http(s)://host[:port])", cfg.Endpoint)
	}
	cfg.Endpoint = strings.TrimRight(cfg.Endpoint, "/")
	cfg = cfg.withDefaults()
	e := &Exporter{
		cfg:   cfg,
		queue: make(chan *trace.Trace, cfg.QueueSize),
		start: time.Now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go e.run()
	return e, nil
}

// Record enqueues a finished trace for export without blocking; when
// the queue is full the trace is dropped and counted. Implements
// trace.Sink. Nil-safe on both receiver and argument.
func (e *Exporter) Record(t *trace.Trace) {
	if e == nil || t == nil {
		return
	}
	select {
	case <-e.stop:
		e.tracesDropped.Add(1)
	default:
		select {
		case e.queue <- t:
		default:
			e.tracesDropped.Add(1)
		}
	}
}

// Stats returns the exporter's counters. Nil-safe.
func (e *Exporter) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	return Stats{
		TracesExported: e.tracesExported.Load(),
		SpansExported:  e.spansExported.Load(),
		MetricPushes:   e.metricPushes.Load(),
		TracesDropped:  e.tracesDropped.Load(),
		SendFailures:   e.sendFailures.Load(),
		Retries:        e.retries.Load(),
		QueueDepth:     int64(len(e.queue)),
		Endpoint:       e.cfg.Endpoint,
	}
}

// Shutdown stops intake, drains the queue, pushes a final metrics
// snapshot, and returns when done or when ctx expires. Nil-safe and
// idempotent.
func (e *Exporter) Shutdown(ctx context.Context) error {
	if e == nil {
		return nil
	}
	e.stopOnce.Do(func() { close(e.stop) })
	select {
	case <-e.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("otlp: shutdown flush incomplete: %w", ctx.Err())
	}
}

// run is the export worker: batch traces, flush on size or tick, push
// metrics on tick, drain on stop.
func (e *Exporter) run() {
	defer close(e.done)
	tick := time.NewTicker(e.cfg.Interval)
	defer tick.Stop()
	var batch []*trace.Trace
	for {
		select {
		case t := <-e.queue:
			batch = append(batch, t)
			if len(batch) >= e.cfg.BatchSize {
				e.flushTraces(batch)
				batch = nil
			}
		case <-tick.C:
			if len(batch) > 0 {
				e.flushTraces(batch)
				batch = nil
			}
			e.pushMetrics()
		case <-e.stop:
			// Drain: everything queued before stop, then the final
			// metrics snapshot.
			for {
				select {
				case t := <-e.queue:
					batch = append(batch, t)
					if len(batch) >= e.cfg.BatchSize {
						e.flushTraces(batch)
						batch = nil
					}
					continue
				default:
				}
				break
			}
			if len(batch) > 0 {
				e.flushTraces(batch)
			}
			e.pushMetrics()
			return
		}
	}
}

func (e *Exporter) flushTraces(batch []*trace.Trace) {
	payload := tracesPayload(e.cfg.ServiceName, batch)
	spans := 0
	for _, t := range batch {
		spans += 1 + len(t.Spans())
	}
	if e.post("/v1/traces", payload) {
		e.tracesExported.Add(int64(len(batch)))
		e.spansExported.Add(int64(spans))
	}
}

func (e *Exporter) pushMetrics() {
	if e.cfg.Snapshot == nil {
		return
	}
	payload := metricsPayload(e.cfg.ServiceName, e.cfg.Snapshot(), e.start, time.Now())
	if e.post("/v1/metrics", payload) {
		e.metricPushes.Add(1)
	}
}

// post sends one OTLP JSON document, retrying transient failures with
// exponential backoff. Returns whether the document was accepted.
func (e *Exporter) post(path string, payload any) bool {
	body, err := json.Marshal(payload)
	if err != nil {
		e.sendFailures.Add(1)
		return false
	}
	for attempt := 0; ; attempt++ {
		transient, err := e.postOnce(path, body)
		if err == nil {
			return true
		}
		if !transient || attempt >= e.cfg.MaxRetries {
			e.sendFailures.Add(1)
			return false
		}
		e.retries.Add(1)
		backoff := e.cfg.RetryBase << uint(attempt)
		select {
		case <-time.After(backoff):
		case <-e.stop:
			// Shutting down: one final immediate attempt each, no
			// more waiting.
			if _, err := e.postOnce(path, body); err == nil {
				return true
			}
			e.sendFailures.Add(1)
			return false
		}
	}
}

// postOnce performs one HTTP POST; the bool reports whether a failure
// is worth retrying.
func (e *Exporter) postOnce(path string, body []byte) (transient bool, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), e.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.cfg.Endpoint+path, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.cfg.Client.Do(req)
	if err != nil {
		return true, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return false, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		return true, fmt.Errorf("otlp: collector returned %s", resp.Status)
	default:
		return false, fmt.Errorf("otlp: collector rejected payload: %s", resp.Status)
	}
}
