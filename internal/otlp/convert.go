package otlp

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"time"

	"dpfsm/internal/telemetry"
	"dpfsm/internal/trace"
)

// OTLP/HTTP JSON encoding, written to the OTLP 1.x JSON mapping:
// int64 fields (timestamps, intValue) encode as decimal strings per
// the proto3 JSON uint64/int64 rule, IDs as lowercase hex (not
// base64 — the JSON mapping uses hex for traceId/spanId), and sums
// carry aggregationTemporality 2 (cumulative) with the exporter's
// start time.
//
// Only the structures this exporter emits are modeled; this is a wire
// writer, not a general OTLP client.

type keyValue struct {
	Key   string   `json:"key"`
	Value anyValue `json:"value"`
}

type anyValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
}

func strVal(s string) anyValue  { return anyValue{StringValue: &s} }
func boolVal(b bool) anyValue   { return anyValue{BoolValue: &b} }
func dblVal(f float64) anyValue { return anyValue{DoubleValue: &f} }
func intVal(v int64) anyValue {
	s := strconv.FormatInt(v, 10)
	return anyValue{IntValue: &s}
}

func attrKV(a trace.Attr) keyValue {
	kv := keyValue{Key: a.Key}
	switch v := a.Value().(type) {
	case string:
		kv.Value = strVal(v)
	case bool:
		kv.Value = boolVal(v)
	case float64:
		kv.Value = dblVal(v)
	case int64:
		kv.Value = intVal(v)
	default:
		kv.Value = strVal(fmt.Sprint(v))
	}
	return kv
}

// Traces.

type tracesDoc struct {
	ResourceSpans []resourceSpans `json:"resourceSpans"`
}

type resourceSpans struct {
	Resource   resource     `json:"resource"`
	ScopeSpans []scopeSpans `json:"scopeSpans"`
}

type resource struct {
	Attributes []keyValue `json:"attributes"`
}

type scopeSpans struct {
	Scope scope      `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type scope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID      string     `json:"traceId"`
	SpanID       string     `json:"spanId"`
	ParentSpanID string     `json:"parentSpanId,omitempty"`
	Name         string     `json:"name"`
	Kind         int        `json:"kind"`
	StartTime    string     `json:"startTimeUnixNano"`
	EndTime      string     `json:"endTimeUnixNano"`
	Attributes   []keyValue `json:"attributes,omitempty"`
	Status       *status    `json:"status,omitempty"`
}

type status struct {
	Code    int    `json:"code"`
	Message string `json:"message,omitempty"`
}

// OTLP span kinds and status codes (enum numeric values from the
// OTLP proto).
const (
	spanKindInternal = 1
	spanKindServer   = 2

	statusOK    = 1
	statusError = 2
)

func unixNano(t time.Time) string { return strconv.FormatInt(t.UnixNano(), 10) }

// spanID derives a stable 16-hex span ID for internal span idx of a
// trace. Internal spans carry int32 IDs, not wire IDs; hashing
// (traceID, idx) gives each a collision-resistant-enough wire ID that
// is reproducible across exports of the same trace.
func spanID(traceID string, idx int32) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s:%d", traceID, idx)
	return fmt.Sprintf("%016x", h.Sum64())
}

// tracesPayload renders a batch of finished traces as one OTLP
// export request. Each trace becomes a server-kind root span (using
// the trace's own propagation span ID, so downstream services that
// honored our traceparent parent correctly) plus one internal span
// per recorded span, parented by the recorded hierarchy.
func tracesPayload(serviceName string, batch []*trace.Trace) tracesDoc {
	var spans []otlpSpan
	for _, t := range batch {
		tid := t.ID()
		start := t.StartTime()
		end := start.Add(t.Duration())
		name := t.Name()
		if name == "" {
			name = "request"
		}
		root := otlpSpan{
			TraceID:      tid,
			SpanID:       t.SpanID(),
			ParentSpanID: t.ParentSpanID(),
			Name:         name,
			Kind:         spanKindServer,
			StartTime:    unixNano(start),
			EndTime:      unixNano(end),
			Status:       &status{Code: statusOK},
		}
		if msg := t.Error(); msg != "" {
			root.Status = &status{Code: statusError, Message: msg}
		}
		root.Attributes = traceAttrs(t)
		spans = append(spans, root)
		for _, sv := range t.Spans() {
			parent := t.SpanID()
			if sv.Parent != 0 {
				parent = spanID(tid, sv.Parent)
			}
			sp := otlpSpan{
				TraceID:      tid,
				SpanID:       spanID(tid, sv.ID),
				ParentSpanID: parent,
				Name:         sv.Name,
				Kind:         spanKindInternal,
				StartTime:    unixNano(sv.Start),
				EndTime:      unixNano(sv.Start.Add(sv.Duration)),
			}
			for _, a := range sv.Attrs {
				sp.Attributes = append(sp.Attributes, attrKV(a))
			}
			spans = append(spans, sp)
		}
	}
	return tracesDoc{ResourceSpans: []resourceSpans{{
		Resource:   resource{Attributes: []keyValue{{Key: "service.name", Value: strVal(serviceName)}}},
		ScopeSpans: []scopeSpans{{Scope: scope{Name: "dpfsm"}, Spans: spans}},
	}}}
}

// traceAttrs renders the trace-level attributes onto the root span,
// plus dropped-span accounting when the span cap bit.
func traceAttrs(t *trace.Trace) []keyValue {
	var out []keyValue
	for _, a := range t.Attrs() {
		out = append(out, attrKV(a))
	}
	if d := t.Dropped(); d > 0 {
		out = append(out, keyValue{Key: "dpfsm.dropped_spans", Value: intVal(d)})
	}
	return out
}

// Metrics.

type metricsDoc struct {
	ResourceMetrics []resourceMetrics `json:"resourceMetrics"`
}

type resourceMetrics struct {
	Resource     resource       `json:"resource"`
	ScopeMetrics []scopeMetrics `json:"scopeMetrics"`
}

type scopeMetrics struct {
	Scope   scope        `json:"scope"`
	Metrics []otlpMetric `json:"metrics"`
}

type otlpMetric struct {
	Name  string     `json:"name"`
	Unit  string     `json:"unit,omitempty"`
	Sum   *otlpSum   `json:"sum,omitempty"`
	Gauge *otlpGauge `json:"gauge,omitempty"`
}

type otlpSum struct {
	DataPoints             []dataPoint `json:"dataPoints"`
	AggregationTemporality int         `json:"aggregationTemporality"` // 2 = cumulative
	IsMonotonic            bool        `json:"isMonotonic"`
}

type otlpGauge struct {
	DataPoints []dataPoint `json:"dataPoints"`
}

type dataPoint struct {
	StartTime string   `json:"startTimeUnixNano,omitempty"`
	Time      string   `json:"timeUnixNano"`
	AsInt     *string  `json:"asInt,omitempty"`
	AsDouble  *float64 `json:"asDouble,omitempty"`
}

// metricsPayload renders a telemetry snapshot as one OTLP export
// request: the engine/runtime counters as cumulative monotonic sums
// (start = exporter start), the instantaneous quantities as gauges.
func metricsPayload(serviceName string, snap telemetry.Snapshot, start, now time.Time) metricsDoc {
	s, n := unixNano(start), unixNano(now)
	intPoint := func(v int64) []dataPoint {
		str := strconv.FormatInt(v, 10)
		return []dataPoint{{StartTime: s, Time: n, AsInt: &str}}
	}
	dblPoint := func(v float64) []dataPoint {
		return []dataPoint{{Time: n, AsDouble: &v}}
	}
	sum := func(name, unit string, v int64) otlpMetric {
		return otlpMetric{Name: name, Unit: unit, Sum: &otlpSum{
			DataPoints: intPoint(v), AggregationTemporality: 2, IsMonotonic: true,
		}}
	}
	gaugeInt := func(name, unit string, v int64) otlpMetric {
		str := strconv.FormatInt(v, 10)
		return otlpMetric{Name: name, Unit: unit, Gauge: &otlpGauge{
			DataPoints: []dataPoint{{Time: n, AsInt: &str}},
		}}
	}
	gaugeDbl := func(name, unit string, v float64) otlpMetric {
		return otlpMetric{Name: name, Unit: unit, Gauge: &otlpGauge{DataPoints: dblPoint(v)}}
	}

	metrics := []otlpMetric{
		sum("dpfsm.runs", "{run}", snap.Runs),
		sum("dpfsm.symbols", "{symbol}", snap.Symbols),
		sum("dpfsm.shuffles", "{shuffle}", snap.Shuffles),
		sum("dpfsm.stream.bytes", "By", snap.StreamBytes),
		sum("dpfsm.engine.jobs", "{job}", snap.EngineJobs),
		sum("dpfsm.engine.job_errors", "{job}", snap.EngineJobErrors),
		sum("dpfsm.engine.canceled", "{job}", snap.EngineCanceled),
		sum("dpfsm.engine.queue_rejects", "{job}", snap.EngineQueueRejects),
		sum("dpfsm.engine.spec_chunks", "{chunk}", snap.SpecChunks),
		sum("dpfsm.engine.spec_mispredicts", "{chunk}", snap.SpecMispredicts),
		sum("dpfsm.plan_cache.hits", "{lookup}", snap.PlanCacheHits),
		sum("dpfsm.plan_cache.misses", "{lookup}", snap.PlanCacheMisses),
		gaugeInt("dpfsm.engine.queue_depth", "{job}", snap.EngineQueueDepth),
		gaugeInt("dpfsm.engine.job_latency_p50", "ns", snap.EngineJobLatencyP50),
		gaugeInt("dpfsm.engine.job_latency_p90", "ns", snap.EngineJobLatencyP90),
		gaugeInt("dpfsm.engine.job_latency_p99", "ns", snap.EngineJobLatencyP99),
		gaugeDbl("dpfsm.shuffles_per_symbol", "1", snap.ShufflesPerSymbol),
		gaugeDbl("dpfsm.engine.spec_mispredict_rate", "1", snap.SpecMispredictRate),
		gaugeDbl("dpfsm.plan_cache.hit_rate", "1", snap.PlanCacheHitRate),
	}
	return metricsDoc{ResourceMetrics: []resourceMetrics{{
		Resource:     resource{Attributes: []keyValue{{Key: "service.name", Value: strVal(serviceName)}}},
		ScopeMetrics: []scopeMetrics{{Scope: scope{Name: "dpfsm"}, Metrics: metrics}},
	}}}
}
