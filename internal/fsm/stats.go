package fsm

// Structural statistics about transition functions. The paper's two
// optimizations are justified by these quantities: convergence (§5.2)
// works because per-symbol transition functions are many-to-one, and
// range coalescing (§5.3) works because their ranges are small.

// RangeSet returns the range of the transition function for sym — the
// distinct destination states, in order of first appearance in the
// transition vector. Matches the U component of Factor(T[sym]).
func (d *DFA) RangeSet(sym byte) []State {
	col := d.Column(sym)
	seen := make([]bool, d.numStates)
	var out []State
	for _, r := range col {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// RangeSize returns |range(T[sym])|.
func (d *DFA) RangeSize(sym byte) int {
	col := d.Column(sym)
	seen := make([]bool, d.numStates)
	n := 0
	for _, r := range col {
		if !seen[r] {
			seen[r] = true
			n++
		}
	}
	return n
}

// MaxRangeSize returns max over all symbols of |range(T[sym])|. Range
// coalescing sizes its per-symbol tables to this value (§5.3: "we set n
// to the maximum of the range size for all input symbols").
func (d *DFA) MaxRangeSize() int {
	m := 0
	for a := 0; a < d.numSymbols; a++ {
		if r := d.RangeSize(byte(a)); r > m {
			m = r
		}
	}
	return m
}

// RangeSizes returns |range(T[a])| for every symbol a.
func (d *DFA) RangeSizes() []int {
	out := make([]int, d.numSymbols)
	for a := 0; a < d.numSymbols; a++ {
		out[a] = d.RangeSize(byte(a))
	}
	return out
}

// IsPermutation reports whether the transition function for sym is a
// permutation of the states. Permutation symbols never converge; the
// paper observes they are exponentially rare among all functions.
func (d *DFA) IsPermutation(sym byte) bool {
	return d.RangeSize(sym) == d.numStates
}

// Reachable returns the set of states reachable from the start state,
// as a boolean vector indexed by state.
func (d *DFA) Reachable() []bool {
	seen := make([]bool, d.numStates)
	stack := []State{d.start}
	seen[d.start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for a := 0; a < d.numSymbols; a++ {
			r := d.Next(q, byte(a))
			if !seen[r] {
				seen[r] = true
				stack = append(stack, r)
			}
		}
	}
	return seen
}

// PruneUnreachable returns an equivalent machine containing only the
// states reachable from the start state, renumbered densely in
// discovery order. If all states are reachable it still returns a fresh
// machine.
func (d *DFA) PruneUnreachable() *DFA {
	reach := d.Reachable()
	remap := make([]State, d.numStates)
	count := 0
	for q := 0; q < d.numStates; q++ {
		if reach[q] {
			remap[q] = State(count)
			count++
		}
	}
	nd := MustNew(count, d.numSymbols)
	nd.SetStart(remap[d.start])
	for q := 0; q < d.numStates; q++ {
		if !reach[q] {
			continue
		}
		nq := remap[q]
		nd.accept[nq] = d.accept[q]
		for a := 0; a < d.numSymbols; a++ {
			nd.SetTransition(nq, byte(a), remap[d.Next(State(q), byte(a))])
		}
	}
	return nd
}

// EdgeCount returns the number of distinct (state, symbol) transition
// entries, i.e. |Q|·|Σ| for a total machine. Provided for the range-
// coalescing table-size accounting in §5.3 (original table has n·k
// entries; coalesced tables together have e·k).
func (d *DFA) EdgeCount() int { return d.numStates * d.numSymbols }

// Stats is the static structural summary of one machine — the
// quantities the paper's optimizations are selected and sized by
// (§5.2–5.3), bundled for observability surfaces (the fsmserve
// /machine endpoint, fsmbench's JSON report). All fields derive from
// the transition table alone; nothing here depends on any input.
type Stats struct {
	// States and Symbols are the table dimensions |Q| and |Σ|.
	States  int `json:"states"`
	Symbols int `json:"symbols"`
	// Accepting counts accepting states; Reachable counts states
	// reachable from the start state.
	Accepting int `json:"accepting"`
	Reachable int `json:"reachable"`
	// MaxRange and MinRange bound |range(T[a])| over all symbols;
	// MaxRange ≤ 16 puts the whole machine in the one-shuffle regime
	// and MaxRange ≤ 256 makes range coalescing applicable at all.
	MaxRange int `json:"max_range"`
	MinRange int `json:"min_range"`
	// PermutationSymbols counts symbols whose transition function is a
	// permutation — symbols that can never converge (§5.2).
	PermutationSymbols int `json:"permutation_symbols"`
	// Entries and CoalescedEntries are the §5.3 table-size accounting:
	// n·k original entries versus e·k after renaming.
	Entries          int `json:"entries"`
	CoalescedEntries int `json:"coalesced_entries"`
}

// Stats computes the structural summary. Cost is O(n·k); call it at
// build/registration time, not per input.
func (d *DFA) Stats() Stats {
	s := Stats{
		States:   d.numStates,
		Symbols:  d.numSymbols,
		Entries:  d.EdgeCount(),
		MinRange: d.numStates + 1,
	}
	for q := 0; q < d.numStates; q++ {
		if d.accept[q] {
			s.Accepting++
		}
	}
	for _, ok := range d.Reachable() {
		if ok {
			s.Reachable++
		}
	}
	for a := 0; a < d.numSymbols; a++ {
		r := d.RangeSize(byte(a))
		if r > s.MaxRange {
			s.MaxRange = r
		}
		if r < s.MinRange {
			s.MinRange = r
		}
		if r == d.numStates {
			s.PermutationSymbols++
		}
		s.CoalescedEntries += r * d.numSymbols
	}
	if s.MinRange > d.numStates {
		s.MinRange = 0 // no symbols
	}
	return s
}

// CoalescedEntryCount returns the total number of entries across all
// range-coalesced transition tables: sum over symbols a of
// |range(T[a])| · |Σ| (§5.3).
func (d *DFA) CoalescedEntryCount() int {
	total := 0
	for a := 0; a < d.numSymbols; a++ {
		total += d.RangeSize(byte(a)) * d.numSymbols
	}
	return total
}
