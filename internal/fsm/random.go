package fsm

import "math/rand"

// Random machine generation for tests and the Figure 6 gather
// microkernel (the paper uses "random transition functions" there).
// Everything takes an explicit *rand.Rand so experiments are seeded and
// reproducible.

// Random returns a uniformly random total DFA with the given number of
// states and symbols. Each state accepts independently with probability
// acceptP; the start state is uniform.
func Random(rng *rand.Rand, numStates, numSymbols int, acceptP float64) *DFA {
	d := MustNew(numStates, numSymbols)
	d.start = State(rng.Intn(numStates))
	for q := 0; q < numStates; q++ {
		d.accept[q] = rng.Float64() < acceptP
	}
	for i := range d.trans {
		d.trans[i] = State(rng.Intn(numStates))
	}
	return d
}

// RandomConverging returns a random DFA whose per-symbol transition
// functions have range at most maxRange (drawn uniformly per symbol in
// [1, maxRange]). This models the structured, many-to-one machines the
// paper observes in practice (§5.2) and is the workload where both
// convergence and range coalescing shine.
func RandomConverging(rng *rand.Rand, numStates, numSymbols, maxRange int, acceptP float64) *DFA {
	if maxRange < 1 {
		maxRange = 1
	}
	if maxRange > numStates {
		maxRange = numStates
	}
	d := MustNew(numStates, numSymbols)
	d.start = State(rng.Intn(numStates))
	for q := 0; q < numStates; q++ {
		d.accept[q] = rng.Float64() < acceptP
	}
	for a := 0; a < numSymbols; a++ {
		r := 1 + rng.Intn(maxRange)
		// Pick r distinct targets.
		targets := rng.Perm(numStates)[:r]
		col := d.trans[a*numStates : (a+1)*numStates]
		// Ensure every target appears at least once so the realized
		// range is exactly r.
		for i, t := range targets {
			col[i%numStates] = State(t)
		}
		for i := r; i < numStates; i++ {
			col[i] = State(targets[rng.Intn(r)])
		}
	}
	return d
}

// RandomPermutation returns a DFA whose every per-symbol transition
// function is a permutation — the adversarial non-converging case. The
// enumerative overhead never shrinks on such machines.
func RandomPermutation(rng *rand.Rand, numStates, numSymbols int, acceptP float64) *DFA {
	d := MustNew(numStates, numSymbols)
	d.start = State(rng.Intn(numStates))
	for q := 0; q < numStates; q++ {
		d.accept[q] = rng.Float64() < acceptP
	}
	for a := 0; a < numSymbols; a++ {
		col := d.trans[a*numStates : (a+1)*numStates]
		for i, t := range rng.Perm(numStates) {
			col[i] = State(t)
		}
	}
	return d
}

// RandomInput returns n uniformly random symbols drawn from the
// machine's alphabet.
func (d *DFA) RandomInput(rng *rand.Rand, n int) []byte {
	in := make([]byte, n)
	for i := range in {
		in[i] = byte(rng.Intn(d.numSymbols))
	}
	return in
}
