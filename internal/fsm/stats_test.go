package fsm

import (
	"math/rand"
	"testing"
)

func TestFig1Ranges(t *testing.T) {
	d := fig1(t)
	// From Figure 1(b):
	// '/' column: b b c a → range {b,c,a} size 3
	// '*' column: a c d d → range {a,c,d} size 3
	// 'x' column: a a c c → range {a,c}   size 2
	if got := d.RangeSize(0); got != 3 {
		t.Errorf("RangeSize('/') = %d, want 3", got)
	}
	if got := d.RangeSize(1); got != 3 {
		t.Errorf("RangeSize('*') = %d, want 3", got)
	}
	if got := d.RangeSize(2); got != 2 {
		t.Errorf("RangeSize(x) = %d, want 2", got)
	}
	if got := d.MaxRangeSize(); got != 3 {
		t.Errorf("MaxRangeSize = %d, want 3", got)
	}
	rs := d.RangeSizes()
	if len(rs) != 3 || rs[0] != 3 || rs[1] != 3 || rs[2] != 2 {
		t.Errorf("RangeSizes = %v", rs)
	}
}

func TestRangeSetOrder(t *testing.T) {
	d := fig1(t)
	// '*' column is [a c d d]; first-appearance order: a, c, d.
	got := d.RangeSet(1)
	want := []State{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("RangeSet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RangeSet = %v, want %v", got, want)
		}
	}
}

func TestIsPermutation(t *testing.T) {
	d := MustNew(3, 2)
	d.SetColumn(0, []State{1, 2, 0}) // rotation: permutation
	d.SetColumn(1, []State{0, 0, 1}) // many-to-one
	if !d.IsPermutation(0) {
		t.Error("rotation should be a permutation")
	}
	if d.IsPermutation(1) {
		t.Error("many-to-one should not be a permutation")
	}
}

func TestReachableAndPrune(t *testing.T) {
	// 4 states; state 3 unreachable.
	d := MustNew(4, 2)
	d.SetColumn(0, []State{1, 2, 0, 3})
	d.SetColumn(1, []State{0, 1, 2, 3})
	d.SetAccepting(2, true)
	d.SetAccepting(3, true)

	reach := d.Reachable()
	want := []bool{true, true, true, false}
	for q, w := range want {
		if reach[q] != w {
			t.Errorf("Reachable[%d] = %v, want %v", q, reach[q], w)
		}
	}

	p := d.PruneUnreachable()
	if p.NumStates() != 3 {
		t.Fatalf("pruned to %d states, want 3", p.NumStates())
	}
	if !Equivalent(d, p) {
		t.Error("pruning changed the language")
	}
}

func TestPruneAllReachable(t *testing.T) {
	d := fig1(t)
	p := d.PruneUnreachable()
	if p.NumStates() != 4 {
		t.Fatalf("pruned fig1 to %d states", p.NumStates())
	}
	if !Equivalent(d, p) {
		t.Error("pruning a fully reachable machine changed the language")
	}
}

func TestCoalescedEntryCount(t *testing.T) {
	d := fig1(t)
	// sum over symbols of range·|Σ| = (3+3+2)*3 = 24.
	if got := d.CoalescedEntryCount(); got != 24 {
		t.Errorf("CoalescedEntryCount = %d, want 24", got)
	}
	if got := d.EdgeCount(); got != 12 {
		t.Errorf("EdgeCount = %d, want 12", got)
	}
}

// Property: range size of every symbol is between 1 and NumStates, and
// MaxRangeSize is their maximum.
func TestRangeSizeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		d := Random(rng, 1+rng.Intn(100), 1+rng.Intn(8), 0.5)
		maxSeen := 0
		for a := 0; a < d.NumSymbols(); a++ {
			r := d.RangeSize(byte(a))
			if r < 1 || r > d.NumStates() {
				t.Fatalf("range %d out of [1,%d]", r, d.NumStates())
			}
			if len(d.RangeSet(byte(a))) != r {
				t.Fatal("RangeSet length != RangeSize")
			}
			if r > maxSeen {
				maxSeen = r
			}
		}
		if d.MaxRangeSize() != maxSeen {
			t.Fatalf("MaxRangeSize %d != max %d", d.MaxRangeSize(), maxSeen)
		}
	}
}

func TestStatsSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 20; i++ {
		d := Random(rng, 1+rng.Intn(60), 1+rng.Intn(6), 0.4)
		s := d.Stats()
		if s.States != d.NumStates() || s.Symbols != d.NumSymbols() {
			t.Fatalf("dimensions: %+v", s)
		}
		if s.MaxRange != d.MaxRangeSize() {
			t.Fatalf("MaxRange %d != %d", s.MaxRange, d.MaxRangeSize())
		}
		if s.MinRange < 1 || s.MinRange > s.MaxRange {
			t.Fatalf("MinRange %d outside [1,%d]", s.MinRange, s.MaxRange)
		}
		if s.Reachable < 1 || s.Reachable > s.States {
			t.Fatalf("Reachable %d outside [1,%d]", s.Reachable, s.States)
		}
		if s.Entries != d.EdgeCount() || s.CoalescedEntries != d.CoalescedEntryCount() {
			t.Fatalf("entry accounting: %+v", s)
		}
		perms := 0
		acc := 0
		for a := 0; a < d.NumSymbols(); a++ {
			if d.IsPermutation(byte(a)) {
				perms++
			}
		}
		for q := 0; q < d.NumStates(); q++ {
			if d.Accepting(State(q)) {
				acc++
			}
		}
		if s.PermutationSymbols != perms || s.Accepting != acc {
			t.Fatalf("perm/accept accounting: %+v (want perms %d acc %d)", s, perms, acc)
		}
	}
}
