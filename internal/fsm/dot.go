package fsm

// Graphviz export for debugging and documentation. Edges sharing a
// (source, destination) pair are merged and labeled with a compact
// symbol-set description, so even byte-alphabet machines render
// readably.

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDot renders the machine in Graphviz dot syntax. name is the
// graph title. Symbols are labeled with printable ASCII where
// possible, \xHH otherwise, and contiguous runs collapse to ranges.
func (d *DFA) WriteDot(w io.Writer, name string) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	fmt.Fprintf(&sb, "  start [shape=point];\n  start -> q%d;\n", d.start)
	for q := 0; q < d.numStates; q++ {
		if d.accept[q] {
			fmt.Fprintf(&sb, "  q%d [shape=doublecircle];\n", q)
		}
	}
	for q := 0; q < d.numStates; q++ {
		// Group symbols by destination.
		dest := map[State][]byte{}
		for s := 0; s < d.numSymbols; s++ {
			r := d.Next(State(q), byte(s))
			dest[r] = append(dest[r], byte(s))
		}
		var rs []State
		for r := range dest {
			rs = append(rs, r)
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		for _, r := range rs {
			fmt.Fprintf(&sb, "  q%d -> q%d [label=%q];\n", q, r, symbolSetLabel(dest[r], d.numSymbols))
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// symbolSetLabel renders a sorted byte set compactly: "a-z0-9_" or
// "~(a-c)" style complements when the set covers most of the alphabet.
func symbolSetLabel(syms []byte, alphabet int) string {
	if len(syms) == alphabet {
		return "Σ"
	}
	if len(syms) > alphabet/2 && alphabet == 256 {
		// Complement form.
		in := make([]bool, alphabet)
		for _, b := range syms {
			in[b] = true
		}
		var comp []byte
		for s := 0; s < alphabet; s++ {
			if !in[s] {
				comp = append(comp, byte(s))
			}
		}
		return "~(" + runLabel(comp) + ")"
	}
	return runLabel(syms)
}

func runLabel(syms []byte) string {
	var sb strings.Builder
	for i := 0; i < len(syms); {
		j := i
		for j+1 < len(syms) && syms[j+1] == syms[j]+1 {
			j++
		}
		sb.WriteString(symLabel(syms[i]))
		if j > i+1 {
			sb.WriteByte('-')
			sb.WriteString(symLabel(syms[j]))
		} else if j == i+1 {
			sb.WriteString(symLabel(syms[j]))
		}
		i = j + 1
	}
	return sb.String()
}

func symLabel(b byte) string {
	if b >= 0x21 && b <= 0x7e && b != '"' && b != '\\' {
		return string(b)
	}
	return fmt.Sprintf("\\\\x%02x", b)
}
