package fsm

// Moore/Mealy output tables: the λ half of a finite-state transducer
// (Q, Σ, Γ, q0, δ, λ). The acceptance-only machines this repository
// started from answer "did the input match"; an output table upgrades
// the same δ to answer "what did the input *mean*" — token classes,
// match markers, decode symbols — one output symbol per input symbol.
//
// Both classical shapes are supported, following the fsm-toolkit
// format: Moore machines attach outputs to states (λ: Q → Γ) and emit
// the output of the state *entered* by each transition; Mealy machines
// attach outputs to transitions (λ: Q × Σ → Γ) and emit per consumed
// symbol. Either way the emission at input position i is a pure
// function of (state before i, symbol at i) — which is exactly what
// makes transduction data-parallel: once the paper's composition fold
// has resolved each chunk's start state, every chunk can replay its
// own outputs independently (§2.1's φ-function, materialized as a
// table instead of a callback).

import (
	"errors"
	"fmt"
)

// Output is one symbol of a transducer's output alphabet Γ. Like
// State it is a dense uint16, bounding Γ at 65536 symbols (the
// fsm-toolkit limit); token-class and match-marker alphabets are tiny.
type Output uint16

// MaxOutputs is the largest output-alphabet size a transducer may have.
const MaxOutputs = 1 << 16

// OutputNone is the designated "no output" symbol. Span extraction
// folds the output tape into maximal runs of equal non-OutputNone
// symbols, so transducers should reserve output 0 for gaps.
const OutputNone Output = 0

// Kind classifies a machine by where its outputs live.
type Kind uint8

const (
	// KindAcceptor is a plain DFA with no output table.
	KindAcceptor Kind = iota
	// KindMoore attaches outputs to states: λ(q), emitted on entering q.
	KindMoore
	// KindMealy attaches outputs to transitions: λ(q, a).
	KindMealy
)

// String returns the kind's wire name ("acceptor", "moore", "mealy").
func (k Kind) String() string {
	switch k {
	case KindAcceptor:
		return "acceptor"
	case KindMoore:
		return "moore"
	case KindMealy:
		return "mealy"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Transducer couples a DFA with an output table. The DFA is shared,
// not copied: a transducer is a view that adds λ to an existing δ.
// The zero value is not usable; construct with NewMoore, NewMealy, or
// NewTransducer.
type Transducer struct {
	d          *DFA
	kind       Kind
	numOutputs int
	// lambda holds the output table. Moore: lambda[q] = λ(q), length
	// numStates. Mealy: column-major by symbol like the transition
	// table, lambda[a*numStates+q] = λ(q, a), length numStates*numSymbols.
	lambda []Output
}

// NewMoore returns a Moore transducer over d with numOutputs output
// symbols. All outputs are initially OutputNone.
func NewMoore(d *DFA, numOutputs int) (*Transducer, error) {
	if err := checkOutputs(numOutputs); err != nil {
		return nil, err
	}
	return &Transducer{
		d: d, kind: KindMoore, numOutputs: numOutputs,
		lambda: make([]Output, d.numStates),
	}, nil
}

// NewMealy returns a Mealy transducer over d with numOutputs output
// symbols. All outputs are initially OutputNone.
func NewMealy(d *DFA, numOutputs int) (*Transducer, error) {
	if err := checkOutputs(numOutputs); err != nil {
		return nil, err
	}
	return &Transducer{
		d: d, kind: KindMealy, numOutputs: numOutputs,
		lambda: make([]Output, d.numStates*d.numSymbols),
	}, nil
}

// NewTransducer assembles a transducer from its parts — the
// deserialization path — and validates it. lambda is copied.
func NewTransducer(d *DFA, kind Kind, numOutputs int, lambda []Output) (*Transducer, error) {
	t := &Transducer{d: d, kind: kind, numOutputs: numOutputs,
		lambda: append([]Output(nil), lambda...)}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func checkOutputs(numOutputs int) error {
	if numOutputs <= 0 || numOutputs > MaxOutputs {
		return fmt.Errorf("fsm: numOutputs %d out of range [1, %d]", numOutputs, MaxOutputs)
	}
	return nil
}

// DFA returns the underlying machine.
func (t *Transducer) DFA() *DFA { return t.d }

// Kind reports where the outputs live (KindMoore or KindMealy).
func (t *Transducer) Kind() Kind { return t.kind }

// NumOutputs reports |Γ|.
func (t *Transducer) NumOutputs() int { return t.numOutputs }

// Lambda returns the raw output table: Moore indexed by state, Mealy
// column-major by symbol. The slice aliases the transducer's internal
// storage and must be treated as read-only (serialization path).
func (t *Transducer) Lambda() []Output { return t.lambda }

// TableBytes reports the output table's storage footprint, for the
// registry surfaces that account table memory.
func (t *Transducer) TableBytes() int { return 2 * len(t.lambda) }

// SetMooreOutput sets λ(q) = out on a Moore transducer.
func (t *Transducer) SetMooreOutput(q State, out Output) {
	if t.kind != KindMoore {
		panic("fsm: SetMooreOutput on a " + t.kind.String() + " transducer")
	}
	t.d.checkState(q)
	t.checkOutput(out)
	t.lambda[q] = out
}

// SetMealyOutput sets λ(q, sym) = out on a Mealy transducer.
func (t *Transducer) SetMealyOutput(q State, sym byte, out Output) {
	if t.kind != KindMealy {
		panic("fsm: SetMealyOutput on a " + t.kind.String() + " transducer")
	}
	t.d.checkState(q)
	t.d.checkSymbol(sym)
	t.checkOutput(out)
	t.lambda[int(sym)*t.d.numStates+int(q)] = out
}

// OutputAt is the per-transition emission both kinds reduce to: the
// output produced when sym is consumed in state q. Mealy machines
// emit λ(q, sym); Moore machines emit λ(δ(q, sym)), the output of the
// state entered (matching Phi, which reports the post-transition
// state). This is the single primitive the transducing runners and
// the scalar oracle replay.
func (t *Transducer) OutputAt(q State, sym byte) Output {
	if t.kind == KindMealy {
		return t.lambda[int(sym)*t.d.numStates+int(q)]
	}
	return t.lambda[t.d.Next(q, sym)]
}

// Clone returns a deep copy (including a clone of the underlying DFA).
func (t *Transducer) Clone() *Transducer {
	return &Transducer{
		d: t.d.Clone(), kind: t.kind, numOutputs: t.numOutputs,
		lambda: append([]Output(nil), t.lambda...),
	}
}

// Validate checks the transducer's structural invariants on top of the
// DFA's own: a known kind, a sane output alphabet, a λ table of the
// kind's exact shape, and every entry within [0, NumOutputs).
func (t *Transducer) Validate() error {
	if t.d == nil {
		return errors.New("fsm: transducer has no machine")
	}
	if err := t.d.Validate(); err != nil {
		return err
	}
	if err := checkOutputs(t.numOutputs); err != nil {
		return err
	}
	var want int
	switch t.kind {
	case KindMoore:
		want = t.d.numStates
	case KindMealy:
		want = t.d.numStates * t.d.numSymbols
	default:
		return fmt.Errorf("fsm: transducer kind %d is not moore or mealy", t.kind)
	}
	if len(t.lambda) != want {
		return fmt.Errorf("fsm: %s output table length %d, want %d", t.kind, len(t.lambda), want)
	}
	for i, out := range t.lambda {
		if int(out) >= t.numOutputs {
			return fmt.Errorf("fsm: output table entry %d value %d out of range [0, %d)", i, out, t.numOutputs)
		}
	}
	return nil
}

// AppendEncoding appends a canonical binary encoding of the output
// table (kind, |Γ|, λ entries, little-endian) to b. It exists so the
// compiled-plan fingerprint can cover λ: two plans over the same δ
// with different output tables must not share an identity.
func (t *Transducer) AppendEncoding(b []byte) []byte {
	b = append(b, byte(t.kind))
	b = append(b,
		byte(t.numOutputs), byte(t.numOutputs>>8), byte(t.numOutputs>>16), byte(t.numOutputs>>24))
	for _, out := range t.lambda {
		b = append(b, byte(out), byte(out>>8))
	}
	return b
}

func (t *Transducer) checkOutput(out Output) {
	if int(out) >= t.numOutputs {
		panic(fmt.Sprintf("fsm: output %d out of range [0, %d)", out, t.numOutputs))
	}
}
