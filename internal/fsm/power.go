package fsm

import "fmt"

// k-step unrolling (§6.2): compose the transition function over blocks
// of k input symbols, producing a machine over the block alphabet. The
// paper's fast sequential Huffman baseline is the 8-step unrolling of
// the bit-level decoder FSM, so that one byte of input drives one
// transition. Unrolling multiplies edges, not states.

// Unroll returns the machine that consumes blocks of k original
// symbols. Block symbols are packed big-endian in base NumSymbols: the
// first-consumed original symbol is the most significant digit. For a
// 2-symbol (bit) machine with k=8 this matches MSB-first bit order
// within a byte. Requires NumSymbols^k ≤ 256.
func (d *DFA) Unroll(k int) (*DFA, error) {
	if k < 1 {
		return nil, fmt.Errorf("fsm: unroll factor %d < 1", k)
	}
	blockSyms := 1
	for i := 0; i < k; i++ {
		blockSyms *= d.numSymbols
		if blockSyms > 256 {
			return nil, fmt.Errorf("fsm: unrolled alphabet %d^%d exceeds 256", d.numSymbols, k)
		}
	}
	nd := MustNew(d.numStates, blockSyms)
	nd.SetStart(d.start)
	copy(nd.accept, d.accept)
	for block := 0; block < blockSyms; block++ {
		// Decode block into its k original symbols, big-endian.
		syms := make([]byte, k)
		v := block
		for i := k - 1; i >= 0; i-- {
			syms[i] = byte(v % d.numSymbols)
			v /= d.numSymbols
		}
		col := nd.trans[block*d.numStates : (block+1)*d.numStates]
		for q := 0; q < d.numStates; q++ {
			r := State(q)
			for _, s := range syms {
				r = d.Next(r, s)
			}
			col[q] = r
		}
	}
	return nd, nil
}

// UnrollPath returns, for a given state and block symbol of an
// unrolling of this machine by k, the sequence of intermediate states
// visited (one per original symbol, ending at the block destination).
// Clients that attach outputs to transitions (Huffman decoding) use
// this to precompute per-block output strings.
func (d *DFA) UnrollPath(q State, block int, k int) []State {
	syms := make([]byte, k)
	v := block
	for i := k - 1; i >= 0; i-- {
		syms[i] = byte(v % d.numSymbols)
		v /= d.numSymbols
	}
	out := make([]State, k)
	r := q
	for i, s := range syms {
		r = d.Next(r, s)
		out[i] = r
	}
	return out
}
