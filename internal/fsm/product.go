package fsm

// Product constructions: intersection and union of machine languages.
// These round out the substrate (the paper's §6.1 discussion of
// disjoining all Snort rules into one machine is a union construction,
// with its well-known state blowup) and give the test suite strong
// algebraic oracles.

import "fmt"

// combineMode selects the acceptance rule of a product machine.
type combineMode int

const (
	modeIntersect combineMode = iota
	modeUnion
	modeDifference
)

// Intersect returns a machine accepting L(a) ∩ L(b). Both machines
// must share an alphabet size. Only the reachable part of the product
// is built; the result is minimized.
func Intersect(a, b *DFA) (*DFA, error) { return product(a, b, modeIntersect) }

// Union returns a machine accepting L(a) ∪ L(b) — the construction
// behind "one big disjunction of all rules" (§6.1), including its
// size cost.
func Union(a, b *DFA) (*DFA, error) { return product(a, b, modeUnion) }

// Difference returns a machine accepting L(a) \ L(b).
func Difference(a, b *DFA) (*DFA, error) { return product(a, b, modeDifference) }

// Complement returns a machine accepting the complement of L(d). The
// input must be total, which DFAs in this package always are.
func Complement(d *DFA) *DFA {
	c := d.Clone()
	for q := 0; q < c.numStates; q++ {
		c.accept[q] = !c.accept[q]
	}
	return c.Minimize()
}

func product(a, b *DFA, mode combineMode) (*DFA, error) {
	if a.numSymbols != b.numSymbols {
		return nil, fmt.Errorf("fsm: alphabet mismatch %d vs %d", a.numSymbols, b.numSymbols)
	}
	type pair struct{ qa, qb State }
	ids := map[pair]State{}
	var order []pair
	add := func(p pair) (State, error) {
		if id, ok := ids[p]; ok {
			return id, nil
		}
		id := State(len(order))
		if int(id) >= MaxStates {
			return 0, fmt.Errorf("fsm: product exceeds %d states", MaxStates)
		}
		ids[p] = id
		order = append(order, p)
		return id, nil
	}
	if _, err := add(pair{a.start, b.start}); err != nil {
		return nil, err
	}

	type row struct {
		targets []State
		accept  bool
	}
	var rows []row
	for i := 0; i < len(order); i++ {
		p := order[i]
		r := row{targets: make([]State, a.numSymbols)}
		switch mode {
		case modeIntersect:
			r.accept = a.accept[p.qa] && b.accept[p.qb]
		case modeUnion:
			r.accept = a.accept[p.qa] || b.accept[p.qb]
		case modeDifference:
			r.accept = a.accept[p.qa] && !b.accept[p.qb]
		}
		for s := 0; s < a.numSymbols; s++ {
			id, err := add(pair{a.Next(p.qa, byte(s)), b.Next(p.qb, byte(s))})
			if err != nil {
				return nil, err
			}
			r.targets[s] = id
		}
		rows = append(rows, r)
	}

	d, err := New(len(rows), a.numSymbols)
	if err != nil {
		return nil, err
	}
	for q, r := range rows {
		d.accept[q] = r.accept
		for s, t := range r.targets {
			d.SetTransition(State(q), byte(s), t)
		}
	}
	d.SetStart(0)
	return d.Minimize(), nil
}
