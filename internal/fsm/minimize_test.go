package fsm

import (
	"math/rand"
	"testing"
)

func TestMinimizeMergesDuplicates(t *testing.T) {
	// States 1 and 2 are indistinguishable copies.
	d := MustNew(4, 2)
	d.SetColumn(0, []State{1, 3, 3, 3})
	d.SetColumn(1, []State{2, 0, 0, 3})
	d.SetAccepting(3, true)
	m := d.Minimize()
	if m.NumStates() != 3 {
		t.Fatalf("minimized to %d states, want 3", m.NumStates())
	}
	if !Equivalent(d, m) {
		t.Error("minimization changed the language")
	}
}

func TestMinimizeFig1(t *testing.T) {
	d := fig1(t)
	m := d.Minimize()
	if m.NumStates() != 4 {
		t.Fatalf("fig1 is already minimal; got %d states", m.NumStates())
	}
	if !Equivalent(d, m) {
		t.Error("minimization changed fig1's language")
	}
}

func TestMinimizeAllAccepting(t *testing.T) {
	d := MustNew(5, 2)
	for q := State(0); q < 5; q++ {
		d.SetAccepting(q, true)
	}
	rng := rand.New(rand.NewSource(6))
	for a := 0; a < 2; a++ {
		col := make([]State, 5)
		for i := range col {
			col[i] = State(rng.Intn(5))
		}
		d.SetColumn(byte(a), col)
	}
	m := d.Minimize()
	if m.NumStates() != 1 {
		t.Fatalf("all-accepting machine should minimize to 1 state, got %d", m.NumStates())
	}
	if !m.Accepting(0) {
		t.Error("the single state must accept")
	}
}

func TestMinimizeNoneAccepting(t *testing.T) {
	d := MustNew(5, 2)
	rng := rand.New(rand.NewSource(7))
	for a := 0; a < 2; a++ {
		col := make([]State, 5)
		for i := range col {
			col[i] = State(rng.Intn(5))
		}
		d.SetColumn(byte(a), col)
	}
	m := d.Minimize()
	if m.NumStates() != 1 || m.Accepting(0) {
		t.Fatalf("empty-language machine should minimize to 1 rejecting state, got %v", m)
	}
}

func TestMinimizeDropsUnreachable(t *testing.T) {
	d := MustNew(3, 1)
	d.SetColumn(0, []State{0, 2, 1})
	d.SetAccepting(1, true) // 1 and 2 unreachable from 0
	m := d.Minimize()
	if m.NumStates() != 1 {
		t.Fatalf("got %d states, want 1", m.NumStates())
	}
}

func TestMinimizePreservesLanguageRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		d := Random(rng, 1+rng.Intn(40), 1+rng.Intn(4), 0.3)
		m := d.Minimize()
		if err := m.Validate(); err != nil {
			t.Fatalf("iter %d: minimized machine invalid: %v", i, err)
		}
		if !Equivalent(d, m) {
			w, _ := Distinguish(d, m)
			t.Fatalf("iter %d: language changed; witness %v", i, w)
		}
		if m.NumStates() > d.NumStates() {
			t.Fatalf("iter %d: minimization grew machine %d → %d", i, d.NumStates(), m.NumStates())
		}
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		d := Random(rng, 1+rng.Intn(30), 1+rng.Intn(3), 0.4)
		m1 := d.Minimize()
		m2 := m1.Minimize()
		if m1.NumStates() != m2.NumStates() {
			t.Fatalf("iter %d: re-minimizing changed size %d → %d", i, m1.NumStates(), m2.NumStates())
		}
		if !Equivalent(m1, m2) {
			t.Fatalf("iter %d: re-minimizing changed language", i)
		}
	}
}

// Two random machines with the same language must minimize to the same
// number of states (Myhill–Nerode). We manufacture same-language pairs
// by duplicating states.
func TestMinimizeCanonicalSize(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 50; i++ {
		d := Random(rng, 2+rng.Intn(20), 2, 0.4).Minimize()
		// Blow up: duplicate every state.
		n := d.NumStates()
		big := MustNew(2*n, 2)
		big.SetStart(d.Start())
		for q := 0; q < n; q++ {
			big.SetAccepting(State(q), d.Accepting(State(q)))
			big.SetAccepting(State(q+n), d.Accepting(State(q)))
			for a := 0; a < 2; a++ {
				r := d.Next(State(q), byte(a))
				// Copy 0 points into copies alternately to make the
				// duplicates reachable and interleaved.
				if (q+a)%2 == 0 {
					big.SetTransition(State(q), byte(a), r)
				} else {
					big.SetTransition(State(q), byte(a), r+State(n))
				}
				big.SetTransition(State(q+n), byte(a), r)
			}
		}
		m := big.Minimize()
		if m.NumStates() != n {
			t.Fatalf("iter %d: duplicated machine minimized to %d, want %d", i, m.NumStates(), n)
		}
		if !Equivalent(m, d) {
			t.Fatalf("iter %d: language changed", i)
		}
	}
}
