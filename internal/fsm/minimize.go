package fsm

// Hopcroft's DFA minimization. The regex pipeline uses this to bring
// subset-constructed machines down to the canonical sizes the paper
// reports for its Snort corpus (median 25 states).

// Minimize returns the minimal machine equivalent to d. The input is
// first pruned to reachable states; the result's states are numbered by
// the order their equivalence classes are first reached from the start
// state, so minimal machines of equal languages are structurally
// identical.
func (d *DFA) Minimize() *DFA {
	d = d.PruneUnreachable()
	n := d.numStates
	k := d.numSymbols

	// Partition refinement (Hopcroft). block[q] = current block id of q.
	block := make([]int, n)
	numBlocks := 0
	var accBlock, rejBlock = -1, -1
	for q := 0; q < n; q++ {
		if d.accept[q] {
			if accBlock < 0 {
				accBlock = numBlocks
				numBlocks++
			}
			block[q] = accBlock
		} else {
			if rejBlock < 0 {
				rejBlock = numBlocks
				numBlocks++
			}
			block[q] = rejBlock
		}
	}
	if numBlocks <= 1 {
		// All states equivalent: single-state machine.
		nd := MustNew(1, k)
		nd.accept[0] = d.accept[d.start]
		return nd
	}

	// Precompute inverse transitions: rev[a][r] = states q with δ(q,a)=r.
	rev := make([][][]int32, k)
	for a := 0; a < k; a++ {
		rev[a] = make([][]int32, n)
		col := d.Column(byte(a))
		for q, r := range col {
			rev[a][r] = append(rev[a][r], int32(q))
		}
	}

	// Blocks as member lists.
	members := make([][]int32, 2, n)
	for q := 0; q < n; q++ {
		members[block[q]] = append(members[block[q]], int32(q))
	}

	// Worklist of (block, symbol) splitters.
	type splitter struct {
		b int
		a int
	}
	work := make([]splitter, 0, 2*k)
	smaller := accBlock
	if rejBlock >= 0 && len(members[rejBlock]) < len(members[accBlock]) {
		smaller = rejBlock
	}
	for a := 0; a < k; a++ {
		work = append(work, splitter{smaller, a})
	}

	inX := make([]bool, n)       // scratch: membership in splitter preimage
	touched := make([]int, 0, n) // blocks touched this round
	hit := make([][]int32, n)    // hit[b] = members of b in preimage

	for len(work) > 0 {
		sp := work[len(work)-1]
		work = work[:len(work)-1]

		// X = preimage under symbol a of the splitter block's members.
		var x []int32
		for _, r := range members[sp.b] {
			x = append(x, rev[sp.a][r]...)
		}
		if len(x) == 0 {
			continue
		}
		for _, q := range x {
			inX[q] = true
		}
		touched = touched[:0]
		for _, q := range x {
			b := block[q]
			if len(hit[b]) == 0 {
				touched = append(touched, b)
			}
			hit[b] = append(hit[b], q)
		}
		for _, b := range touched {
			if len(hit[b]) == len(members[b]) {
				hit[b] = hit[b][:0]
				continue // whole block is in X; no split
			}
			// Split block b into (members in X) and (members not in X).
			newB := numBlocks
			numBlocks++
			inHit := hit[b]
			rest := make([]int32, 0, len(members[b])-len(inHit))
			for _, q := range members[b] {
				if !inX[q] {
					rest = append(rest, q)
				}
			}
			// Keep the larger part as b, move the smaller to newB
			// (Hopcroft's trick for O(n log n)).
			small := inHit
			if len(rest) < len(small) {
				members[b] = append(members[b][:0], inHit...)
				small = rest
			} else {
				members[b] = append(members[b][:0], rest...)
			}
			newMembers := append([]int32(nil), small...)
			members = append(members, newMembers)
			for _, q := range newMembers {
				block[q] = newB
			}
			for a := 0; a < k; a++ {
				work = append(work, splitter{newB, a})
			}
			hit[b] = hit[b][:0]
		}
		for _, q := range x {
			inX[q] = false
		}
	}

	// Build quotient machine, renumbering blocks by BFS from start so the
	// result is canonical.
	order := make([]int, numBlocks)
	for i := range order {
		order[i] = -1
	}
	repr := make([]State, 0, numBlocks)
	queue := []int{block[d.start]}
	order[block[d.start]] = 0
	repr = append(repr, d.start)
	reprOf := make([]State, numBlocks)
	reprOf[block[d.start]] = d.start
	count := 1
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		q := reprOf[b]
		for a := 0; a < k; a++ {
			rb := block[d.Next(q, byte(a))]
			if order[rb] < 0 {
				order[rb] = count
				count++
				reprOf[rb] = State(members[rb][0])
				repr = append(repr, State(members[rb][0]))
				queue = append(queue, rb)
			}
		}
	}

	nd := MustNew(count, k)
	nd.SetStart(State(order[block[d.start]]))
	for nb := 0; nb < count; nb++ {
		q := repr[nb]
		nd.accept[nb] = d.accept[q]
		for a := 0; a < k; a++ {
			nd.SetTransition(State(nb), byte(a), State(order[block[d.Next(q, byte(a))]]))
		}
	}
	return nd
}
