package fsm

import (
	"math/rand"
	"testing"
)

func TestEquivalentSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		d := Random(rng, 1+rng.Intn(30), 1+rng.Intn(4), 0.4)
		if !Equivalent(d, d) {
			t.Fatal("machine not equivalent to itself")
		}
		if !Equivalent(d, d.Clone()) {
			t.Fatal("machine not equivalent to its clone")
		}
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	a := MustNew(2, 2)
	a.SetColumn(0, []State{1, 1})
	a.SetColumn(1, []State{0, 0})
	a.SetAccepting(1, true)

	b := a.Clone()
	b.SetAccepting(1, false)
	b.SetAccepting(0, true)

	if Equivalent(a, b) {
		t.Error("machines with swapped accepting sets reported equivalent")
	}
	w, ok := Distinguish(a, b)
	if !ok {
		t.Fatal("Distinguish found no witness")
	}
	if a.Accepts(w) == b.Accepts(w) {
		t.Errorf("witness %v does not distinguish", w)
	}
}

func TestDistinguishShortestWitness(t *testing.T) {
	// a accepts strings of length ≥ 3; b accepts length ≥ 2. Shortest
	// distinguishing input has length 2.
	mk := func(threshold int) *DFA {
		d := MustNew(threshold+1, 1)
		for q := 0; q < threshold; q++ {
			d.SetTransition(State(q), 0, State(q+1))
		}
		d.SetTransition(State(threshold), 0, State(threshold))
		d.SetAccepting(State(threshold), true)
		return d
	}
	a, b := mk(3), mk(2)
	w, ok := Distinguish(a, b)
	if !ok {
		t.Fatal("no witness found")
	}
	if len(w) != 2 {
		t.Errorf("witness length %d, want 2 (shortest)", len(w))
	}
}

func TestEquivalentAlphabetMismatch(t *testing.T) {
	a := MustNew(1, 2)
	b := MustNew(1, 3)
	if Equivalent(a, b) {
		t.Error("different alphabets must not be equivalent")
	}
	if _, ok := Distinguish(a, b); !ok {
		t.Error("Distinguish on mismatched alphabets should report non-equivalent ok=true")
	}
}

func TestDistinguishOnEquivalent(t *testing.T) {
	d := fig1(t)
	if w, ok := Distinguish(d, d.Clone()); ok {
		t.Errorf("found witness %v for equivalent machines", w)
	}
}

func TestEquivalentDifferentShapes(t *testing.T) {
	// Same language ("even number of 0-symbols"), different state counts.
	a := MustNew(2, 2)
	a.SetColumn(0, []State{1, 0})
	a.SetColumn(1, []State{0, 1})
	a.SetAccepting(0, true)

	b := MustNew(4, 2)
	b.SetColumn(0, []State{1, 0, 3, 2})
	b.SetColumn(1, []State{2, 3, 0, 1}) // hops between duplicate pairs
	b.SetAccepting(0, true)
	b.SetAccepting(2, true)

	if !Equivalent(a, b) {
		w, _ := Distinguish(a, b)
		t.Errorf("machines should be equivalent; witness %v", w)
	}
}
