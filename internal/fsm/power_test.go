package fsm

import (
	"math/rand"
	"testing"
)

func TestUnrollErrors(t *testing.T) {
	d := MustNew(4, 2)
	if _, err := d.Unroll(0); err == nil {
		t.Error("Unroll(0) should fail")
	}
	if _, err := d.Unroll(9); err == nil {
		t.Error("2^9 alphabet should fail")
	}
	big := MustNew(4, 256)
	if _, err := big.Unroll(2); err == nil {
		t.Error("256^2 alphabet should fail")
	}
}

func TestUnrollBitMachineToBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 30; iter++ {
		d := Random(rng, 1+rng.Intn(40), 2, 0.3)
		u, err := d.Unroll(8)
		if err != nil {
			t.Fatalf("Unroll(8): %v", err)
		}
		if u.NumSymbols() != 256 || u.NumStates() != d.NumStates() {
			t.Fatalf("unrolled dims %d/%d", u.NumStates(), u.NumSymbols())
		}
		// Running the unrolled machine on packed bytes must equal the
		// bit machine on the expanded MSB-first bit sequence.
		packed := make([]byte, 16)
		for i := range packed {
			packed[i] = byte(rng.Intn(256))
		}
		bits := make([]byte, 0, len(packed)*8)
		for _, b := range packed {
			for i := 7; i >= 0; i-- {
				bits = append(bits, (b>>uint(i))&1)
			}
		}
		st := State(rng.Intn(d.NumStates()))
		if got, want := u.Run(packed, st), d.Run(bits, st); got != want {
			t.Fatalf("iter %d: unrolled %d, bit-level %d", iter, got, want)
		}
	}
}

func TestUnrollFactorOne(t *testing.T) {
	d := fig1(t)
	u, err := d.Unroll(1)
	if err != nil {
		t.Fatalf("Unroll(1): %v", err)
	}
	if !Equivalent(d, u) {
		t.Error("Unroll(1) changed the language")
	}
}

func TestUnrollPath(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := Random(rng, 20, 2, 0.3)
	for iter := 0; iter < 50; iter++ {
		q := State(rng.Intn(20))
		block := rng.Intn(256)
		path := d.UnrollPath(q, block, 8)
		if len(path) != 8 {
			t.Fatalf("path length %d", len(path))
		}
		// Verify against stepping manually, MSB-first.
		r := q
		for i := 7; i >= 0; i-- {
			bit := byte((block >> uint(i)) & 1)
			r = d.Next(r, bit)
			if path[7-i] != r {
				t.Fatalf("path[%d] = %d, want %d", 7-i, path[7-i], r)
			}
		}
		// Final path state must agree with the unrolled machine.
		u, _ := d.Unroll(8)
		if u.Next(q, byte(block)) != path[7] {
			t.Fatal("UnrollPath end state disagrees with Unroll")
		}
	}
}

func TestUnrollRangeNeverGrows(t *testing.T) {
	// Unrolling composes transition functions; composition cannot
	// enlarge the range beyond the last symbol's range — the fact that
	// makes the unrolled Huffman machine range-coalesce so well (§6.2).
	rng := rand.New(rand.NewSource(14))
	for iter := 0; iter < 20; iter++ {
		d := RandomConverging(rng, 10+rng.Intn(50), 2, 8, 0.3)
		u, err := d.Unroll(8)
		if err != nil {
			t.Fatal(err)
		}
		if u.MaxRangeSize() > d.MaxRangeSize() {
			t.Fatalf("unrolled range %d > original %d", u.MaxRangeSize(), d.MaxRangeSize())
		}
	}
}
