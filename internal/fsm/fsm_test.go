package fsm

import (
	"math/rand"
	"strings"
	"testing"
)

// fig1 builds the C-comment machine of Figure 1 in the paper: four
// states a,b,c,d over the alphabet {'/', '*', x} where x stands for any
// other character. State d is "inside a comment"; the machine is in d
// or later while scanning comment bodies. We map '/'→0, '*'→1, x→2 and
// a..d → 0..3.
func fig1(t testing.TB) *DFA {
	t.Helper()
	const (
		sa = State(0)
		sb = State(1)
		sc = State(2)
		sd = State(3)
	)
	d := MustNew(4, 3)
	// Transition table from Figure 1(b): rows /, *, x.
	set := func(sym byte, targets ...State) {
		for q, r := range targets {
			d.SetTransition(State(q), sym, r)
		}
	}
	//            a   b   c   d
	set(0 /*/*/, sb, sb, sc, sa) // on '/': a→b, b→b, c→c? see below
	set(1 /***/, sa, sc, sd, sd) // placeholder, fixed below
	set(2 /*x*/, sa, sa, sc, sc) // placeholder, fixed below

	// The exact table from Figure 1(b):
	//        a  b  c  d
	//   /    b  b  c  a
	//   *    a  c  d  d
	//   x    a  a  c  c
	set(0, sb, sb, sc, sa)
	set(1, sa, sc, sd, sd)
	set(2, sa, sa, sc, sc)
	d.SetStart(sa)
	d.SetAccepting(sa, true) // outside any comment
	if err := d.Validate(); err != nil {
		t.Fatalf("fig1 invalid: %v", err)
	}
	return d
}

// encodeFig1 maps a source string onto the 3-symbol alphabet.
func encodeFig1(s string) []byte {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '/':
			out[i] = 0
		case '*':
			out[i] = 1
		default:
			out[i] = 2
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Error("New(0,2) should fail")
	}
	if _, err := New(MaxStates+1, 2); err == nil {
		t.Error("New(MaxStates+1,2) should fail")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("New(4,0) should fail")
	}
	if _, err := New(4, 257); err == nil {
		t.Error("New(4,257) should fail")
	}
	d, err := New(4, 256)
	if err != nil {
		t.Fatalf("New(4,256): %v", err)
	}
	if d.NumStates() != 4 || d.NumSymbols() != 256 {
		t.Errorf("dims = %d,%d", d.NumStates(), d.NumSymbols())
	}
}

func TestFig1Transitions(t *testing.T) {
	d := fig1(t)
	cases := []struct {
		q   State
		sym byte
		r   State
	}{
		{0, 0, 1}, {1, 0, 1}, {2, 0, 2}, {3, 0, 0},
		{0, 1, 0}, {1, 1, 2}, {2, 1, 3}, {3, 1, 3},
		{0, 2, 0}, {1, 2, 0}, {2, 2, 2}, {3, 2, 2},
	}
	for _, c := range cases {
		if got := d.Next(c.q, c.sym); got != c.r {
			t.Errorf("Next(%d, %d) = %d, want %d", c.q, c.sym, got, c.r)
		}
	}
}

func TestFig1Language(t *testing.T) {
	d := fig1(t)
	// After a complete comment the machine is back in state a.
	cases := []struct {
		in    string
		final State
	}{
		{"", 0},
		{"/*x*/", 0},
		{"/**/", 0},
		{"xx/xx", 0}, // stray slash returns via x
		{"/*xx", 2},  // open comment, x stays in c until a '*'
		{"/*x*", 3},  // '*' inside body moves to d
		{"/*", 2},    // just opened
		{"/***/", 0},
		{"/*x*/x/*x*/", 0},
	}
	for _, c := range cases {
		got := d.Run(encodeFig1(c.in), d.Start())
		if got != c.final {
			t.Errorf("Run(%q) = %d, want %d", c.in, got, c.final)
		}
	}
}

func TestColumnAliasing(t *testing.T) {
	d := fig1(t)
	col := d.Column(1)
	if len(col) != 4 {
		t.Fatalf("column length %d", len(col))
	}
	want := []State{0, 2, 3, 3}
	for i, r := range want {
		if col[i] != r {
			t.Errorf("Column(1)[%d] = %d, want %d", i, col[i], r)
		}
	}
	// Column aliases internal storage: SetTransition must be visible.
	d.SetTransition(0, 1, 3)
	if col[0] != 3 {
		t.Error("Column should alias internal storage")
	}
}

func TestSetColumn(t *testing.T) {
	d := MustNew(3, 2)
	if err := d.SetColumn(1, []State{2, 0, 1}); err != nil {
		t.Fatalf("SetColumn: %v", err)
	}
	if d.Next(0, 1) != 2 || d.Next(1, 1) != 0 || d.Next(2, 1) != 1 {
		t.Error("SetColumn did not apply")
	}
	if err := d.SetColumn(0, []State{1}); err == nil {
		t.Error("short column should fail")
	}
	if err := d.SetColumn(0, []State{0, 1, 7}); err == nil {
		t.Error("out-of-range target should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := fig1(t)
	c := d.Clone()
	c.SetTransition(0, 0, 3)
	c.SetAccepting(3, true)
	c.SetStart(2)
	if d.Next(0, 0) != 1 || d.Accepting(3) || d.Start() != 0 {
		t.Error("mutating clone affected original")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := fig1(t)
	d.trans[5] = 99
	if err := d.Validate(); err == nil {
		t.Error("Validate should catch out-of-range transition")
	}
	d = fig1(t)
	d.start = 9
	if err := d.Validate(); err == nil {
		t.Error("Validate should catch bad start")
	}
}

func TestAcceptingStates(t *testing.T) {
	d := MustNew(5, 2)
	d.SetAccepting(1, true)
	d.SetAccepting(4, true)
	got := d.AcceptingStates()
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("AcceptingStates = %v", got)
	}
	d.SetAccepting(1, false)
	if n := len(d.AcceptingStates()); n != 1 {
		t.Errorf("after clear, %d accepting", n)
	}
}

func TestStateAndSymbolPanics(t *testing.T) {
	d := MustNew(2, 2)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("SetStart", func() { d.SetStart(5) })
	mustPanic("SetTransition state", func() { d.SetTransition(5, 0, 0) })
	mustPanic("SetTransition target", func() { d.SetTransition(0, 0, 5) })
	mustPanic("SetTransition symbol", func() { d.SetTransition(0, 5, 0) })
	mustPanic("Column", func() { d.Column(9) })
}

func TestStringSummary(t *testing.T) {
	d := fig1(t)
	s := d.String()
	for _, frag := range []string{"states: 4", "symbols: 3", "start: 0", "accepting: 1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestRandomMachinesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		d := Random(rng, 1+rng.Intn(64), 1+rng.Intn(8), 0.3)
		if err := d.Validate(); err != nil {
			t.Fatalf("Random machine %d invalid: %v", i, err)
		}
	}
	for i := 0; i < 50; i++ {
		d := RandomConverging(rng, 2+rng.Intn(64), 1+rng.Intn(8), 4, 0.3)
		if err := d.Validate(); err != nil {
			t.Fatalf("RandomConverging machine %d invalid: %v", i, err)
		}
		for a := 0; a < d.NumSymbols(); a++ {
			if r := d.RangeSize(byte(a)); r > 4 {
				t.Fatalf("converging machine symbol %d range %d > 4", a, r)
			}
		}
	}
	for i := 0; i < 50; i++ {
		d := RandomPermutation(rng, 2+rng.Intn(32), 1+rng.Intn(4), 0.3)
		for a := 0; a < d.NumSymbols(); a++ {
			if !d.IsPermutation(byte(a)) {
				t.Fatalf("permutation machine symbol %d not a permutation", a)
			}
		}
	}
}
