package fsm_test

import (
	"bytes"
	"fmt"

	"dpfsm/internal/fsm"
)

// evenZeros accepts inputs with an even number of 0-symbols.
func evenZeros() *fsm.DFA {
	d := fsm.MustNew(2, 2)
	d.SetColumn(0, []fsm.State{1, 0})
	d.SetColumn(1, []fsm.State{0, 1})
	d.SetAccepting(0, true)
	return d
}

func ExampleDFA_Run() {
	d := evenZeros()
	fmt.Println(d.Accepts([]byte{0, 1, 0}), d.Accepts([]byte{0, 1}))
	// Output: true false
}

func ExampleDFA_RangeSize() {
	d := fsm.MustNew(3, 2)
	d.SetColumn(0, []fsm.State{0, 0, 0}) // everything to 0: range 1
	d.SetColumn(1, []fsm.State{1, 2, 0}) // permutation: range 3
	fmt.Println(d.RangeSize(0), d.RangeSize(1), d.MaxRangeSize())
	// Output: 1 3 3
}

func ExampleDFA_Minimize() {
	// Two indistinguishable copies of the same state minimize away.
	d := fsm.MustNew(3, 1)
	d.SetColumn(0, []fsm.State{1, 2, 1})
	d.SetAccepting(1, true)
	d.SetAccepting(2, true)
	fmt.Println(d.NumStates(), "→", d.Minimize().NumStates())
	// Output: 3 → 2
}

func ExampleIntersect() {
	endsInOne := fsm.MustNew(2, 2)
	endsInOne.SetColumn(0, []fsm.State{0, 0})
	endsInOne.SetColumn(1, []fsm.State{1, 1})
	endsInOne.SetAccepting(1, true)

	both, err := fsm.Intersect(evenZeros(), endsInOne)
	if err != nil {
		panic(err)
	}
	fmt.Println(both.Accepts([]byte{0, 0, 1}), both.Accepts([]byte{0, 1}))
	// Output: true false
}

func ExampleReadDFA() {
	var buf bytes.Buffer
	if _, err := evenZeros().WriteTo(&buf); err != nil {
		panic(err)
	}
	restored, err := fsm.ReadDFA(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(fsm.Equivalent(evenZeros(), restored))
	// Output: true
}

func ExampleDFA_Unroll() {
	d := evenZeros()
	byteWise, err := d.Unroll(8) // one transition per packed byte
	if err != nil {
		panic(err)
	}
	// 0b00000101 has two 0-bits... no: MSB-first bits 00000101 contain
	// six 0-bits — even — so the machine accepts.
	fmt.Println(byteWise.NumSymbols(), byteWise.Accepts([]byte{0b00000101}))
	// Output: 256 true
}
