package fsm

// Binary serialization of machines, so compiled DFAs (regex corpora,
// tokenizers, Huffman decoders) can be cached and shipped without
// recompiling. The format is a fixed little-endian header followed by
// the accept bitmap and the column-major transition table.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// encodeMagic identifies the serialized machine format, version 1.
var encodeMagic = [8]byte{'D', 'P', 'F', 'S', 'M', 'v', '0', '1'}

// WriteTo serializes the machine. It implements io.WriterTo.
func (d *DFA) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(encodeMagic); err != nil {
		return n, err
	}
	hdr := []uint32{uint32(d.numStates), uint32(d.numSymbols), uint32(d.start)}
	if err := write(hdr); err != nil {
		return n, err
	}
	accept := make([]uint8, (d.numStates+7)/8)
	for q, a := range d.accept {
		if a {
			accept[q/8] |= 1 << (uint(q) % 8)
		}
	}
	if err := write(accept); err != nil {
		return n, err
	}
	// Encode the transition table by hand: binary.Write would take the
	// reflection path for a slice of the named State type, which
	// dominates serialization time for large machines.
	tbuf := make([]byte, 2*len(d.trans))
	for i, s := range d.trans {
		binary.LittleEndian.PutUint16(tbuf[2*i:], uint16(s))
	}
	nt, err := w.Write(tbuf)
	n += int64(nt)
	if err != nil {
		return n, err
	}
	return n, nil
}

// ReadDFA deserializes a machine written by WriteTo and validates it.
func ReadDFA(r io.Reader) (*DFA, error) {
	var magic [8]byte
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != encodeMagic {
		return nil, errors.New("fsm: bad magic; not a serialized DFA")
	}
	hdr := make([]uint32, 3)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	numStates, numSymbols, start := int(hdr[0]), int(hdr[1]), State(hdr[2])
	d, err := New(numStates, numSymbols)
	if err != nil {
		return nil, fmt.Errorf("fsm: bad header: %w", err)
	}
	accept := make([]uint8, (numStates+7)/8)
	if err := binary.Read(r, binary.LittleEndian, accept); err != nil {
		return nil, err
	}
	for q := 0; q < numStates; q++ {
		d.accept[q] = accept[q/8]&(1<<(uint(q)%8)) != 0
	}
	tbuf := make([]byte, 2*len(d.trans))
	if _, err := io.ReadFull(r, tbuf); err != nil {
		return nil, err
	}
	for i := range d.trans {
		d.trans[i] = State(binary.LittleEndian.Uint16(tbuf[2*i:]))
	}
	if int(start) >= numStates {
		return nil, fmt.Errorf("fsm: start state %d out of range", start)
	}
	d.start = start
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
