package fsm

// Language equivalence by product-construction BFS. Used as a test
// oracle: minimization and regex compilation must preserve the language.

// Equivalent reports whether a and b accept the same language. Both
// machines must have the same alphabet size.
func Equivalent(a, b *DFA) bool {
	if a.numSymbols != b.numSymbols {
		return false
	}
	type pair struct{ qa, qb State }
	seen := make(map[pair]bool)
	start := pair{a.start, b.start}
	queue := []pair{start}
	seen[start] = true
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if a.accept[p.qa] != b.accept[p.qb] {
			return false
		}
		for s := 0; s < a.numSymbols; s++ {
			np := pair{a.Next(p.qa, byte(s)), b.Next(p.qb, byte(s))}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return true
}

// Distinguish returns a shortest input on which a and b disagree, and
// ok=false if the machines are equivalent. Useful for test diagnostics.
func Distinguish(a, b *DFA) (witness []byte, ok bool) {
	if a.numSymbols != b.numSymbols {
		return nil, true
	}
	type pair struct{ qa, qb State }
	type node struct {
		p      pair
		parent int
		sym    byte
	}
	start := pair{a.start, b.start}
	nodes := []node{{p: start, parent: -1}}
	seen := map[pair]bool{start: true}
	for i := 0; i < len(nodes); i++ {
		p := nodes[i].p
		if a.accept[p.qa] != b.accept[p.qb] {
			// Reconstruct path.
			var rev []byte
			for j := i; nodes[j].parent >= 0; j = nodes[j].parent {
				rev = append(rev, nodes[j].sym)
			}
			for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
				rev[l], rev[r] = rev[r], rev[l]
			}
			return rev, true
		}
		for s := 0; s < a.numSymbols; s++ {
			np := pair{a.Next(p.qa, byte(s)), b.Next(p.qb, byte(s))}
			if !seen[np] {
				seen[np] = true
				nodes = append(nodes, node{p: np, parent: i, sym: byte(s)})
			}
		}
	}
	return nil, false
}
