package fsm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunUnrolledMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		d := Random(rng, 1+rng.Intn(50), 1+rng.Intn(8), 0.5)
		in := d.RandomInput(rng, rng.Intn(67)) // exercises all tail lengths
		st := State(rng.Intn(d.NumStates()))
		if a, b := d.Run(in, st), d.RunUnrolled(in, st); a != b {
			t.Fatalf("machine %d: Run=%d RunUnrolled=%d (len %d)", i, a, b, len(in))
		}
	}
}

func TestRunEmptyInput(t *testing.T) {
	d := fig1(t)
	for q := State(0); q < 4; q++ {
		if d.Run(nil, q) != q {
			t.Errorf("empty input should not move state %d", q)
		}
		if d.RunUnrolled(nil, q) != q {
			t.Errorf("unrolled empty input should not move state %d", q)
		}
	}
}

func TestRunMealyOrderAndStates(t *testing.T) {
	d := fig1(t)
	in := encodeFig1("/*x*/")
	var positions []int
	var states []State
	final := d.RunMealy(in, d.Start(), func(pos int, sym byte, q State) {
		positions = append(positions, pos)
		states = append(states, q)
	})
	if final != 0 {
		t.Errorf("final = %d, want 0", final)
	}
	wantStates := []State{1, 2, 2, 3, 0} // a→b→c→c→d→a
	if len(states) != len(wantStates) {
		t.Fatalf("got %d callbacks, want %d", len(states), len(wantStates))
	}
	for i := range wantStates {
		if positions[i] != i {
			t.Errorf("callback %d at pos %d", i, positions[i])
		}
		if states[i] != wantStates[i] {
			t.Errorf("callback %d state %d, want %d", i, states[i], wantStates[i])
		}
	}
}

func TestTraceMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := Random(rng, 20, 4, 0.5)
	in := d.RandomInput(rng, 50)
	tr := d.Trace(in, d.Start())
	if len(tr) != len(in) {
		t.Fatalf("trace length %d != %d", len(tr), len(in))
	}
	if tr[len(tr)-1] != d.Run(in, d.Start()) {
		t.Error("last trace state != Run result")
	}
	// Each step must obey the transition function.
	q := d.Start()
	for i, a := range in {
		q = d.Next(q, a)
		if tr[i] != q {
			t.Fatalf("trace[%d] = %d, want %d", i, tr[i], q)
		}
	}
}

func TestAccepts(t *testing.T) {
	d := fig1(t)
	if !d.Accepts(encodeFig1("/*x*/")) {
		t.Error("complete comment should end in accepting state a")
	}
	if d.Accepts(encodeFig1("/*x")) {
		t.Error("open comment should not accept")
	}
}

// Property: Run is a monoid action — running on xy equals running on x
// then on y from the intermediate state.
func TestRunCompositionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := Random(rng, 30, 6, 0.5)
	f := func(x, y []byte, stSeed uint16) bool {
		for i := range x {
			x[i] %= byte(d.NumSymbols())
		}
		for i := range y {
			y[i] %= byte(d.NumSymbols())
		}
		st := State(int(stSeed) % d.NumStates())
		mid := d.Run(x, st)
		whole := d.Run(append(append([]byte(nil), x...), y...), st)
		return d.Run(y, mid) == whole
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}
