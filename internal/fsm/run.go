package fsm

// This file contains the sequential reference runners. Run is the
// straightforward loop of Figure 1(c) in the paper; RunUnrolled is the
// "optimized sequential baseline with optimal loop unrolling" that the
// paper's speedups are measured against (§6.1). Both exist so that the
// parallel strategies in internal/core have a precise oracle and a fair
// baseline.

// Run executes the machine sequentially from start over input and
// returns the final state (Figure 1(c)).
func (d *DFA) Run(input []byte, start State) State {
	q := start
	n := d.numStates
	t := d.trans
	for _, a := range input {
		q = t[int(a)*n+int(q)]
	}
	return q
}

// RunUnrolled is the sequential baseline with 4-way manual unrolling.
// The dependence chain through q cannot be broken sequentially, but
// unrolling removes loop overhead and lets address computation overlap;
// this is the strongest single-state baseline and is what the paper's
// single-core speedups are normalized to.
func (d *DFA) RunUnrolled(input []byte, start State) State {
	q := start
	n := d.numStates
	t := d.trans
	i := 0
	for ; i+4 <= len(input); i += 4 {
		q = t[int(input[i])*n+int(q)]
		q = t[int(input[i+1])*n+int(q)]
		q = t[int(input[i+2])*n+int(q)]
		q = t[int(input[i+3])*n+int(q)]
	}
	for ; i < len(input); i++ {
		q = t[int(input[i])*n+int(q)]
	}
	return q
}

// RunMealy executes the machine sequentially, invoking phi after each
// symbol with the position, the symbol, and the state reached. It
// returns the final state.
func (d *DFA) RunMealy(input []byte, start State, phi Phi) State {
	q := start
	n := d.numStates
	t := d.trans
	for i, a := range input {
		q = t[int(a)*n+int(q)]
		phi(i, a, q)
	}
	return q
}

// Accepts reports whether the machine accepts input starting from q0.
func (d *DFA) Accepts(input []byte) bool {
	return d.accept[d.Run(input, d.start)]
}

// Trace returns the full state trajectory q1..qm reached after each of
// the m input symbols. Intended for tests and debugging.
func (d *DFA) Trace(input []byte, start State) []State {
	out := make([]State, len(input))
	q := start
	for i, a := range input {
		q = d.Next(q, a)
		out[i] = q
	}
	return out
}
