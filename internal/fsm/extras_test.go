package fsm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	for iter := 0; iter < 30; iter++ {
		d := Random(rng, 1+rng.Intn(300), 1+rng.Intn(8), 0.3)
		var buf bytes.Buffer
		n, err := d.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d, wrote %d", n, buf.Len())
		}
		got, err := ReadDFA(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumStates() != d.NumStates() || got.NumSymbols() != d.NumSymbols() || got.Start() != d.Start() {
			t.Fatal("header mismatch after roundtrip")
		}
		if !Equivalent(d, got) {
			t.Fatal("language changed after roundtrip")
		}
		for q := 0; q < d.NumStates(); q++ {
			if d.Accepting(State(q)) != got.Accepting(State(q)) {
				t.Fatal("accept bit mismatch")
			}
			for a := 0; a < d.NumSymbols(); a++ {
				if d.Next(State(q), byte(a)) != got.Next(State(q), byte(a)) {
					t.Fatal("transition mismatch")
				}
			}
		}
	}
}

func TestReadDFARejectsGarbage(t *testing.T) {
	if _, err := ReadDFA(bytes.NewReader([]byte("not a machine at all"))); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadDFA(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	// Truncated payload.
	d := MustNew(5, 3)
	var buf bytes.Buffer
	d.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadDFA(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input should fail")
	}
}

// evenZeros/endsInOne over {0,1}: handy algebraic test machines.
func evenZeros(t *testing.T) *DFA {
	t.Helper()
	d := MustNew(2, 2)
	d.SetColumn(0, []State{1, 0})
	d.SetColumn(1, []State{0, 1})
	d.SetAccepting(0, true)
	return d
}

func endsInOne(t *testing.T) *DFA {
	t.Helper()
	d := MustNew(2, 2)
	d.SetColumn(0, []State{0, 0})
	d.SetColumn(1, []State{1, 1})
	d.SetAccepting(1, true)
	return d
}

func TestIntersectUnionDifference(t *testing.T) {
	a, b := evenZeros(t), endsInOne(t)
	inter, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := Difference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	comp := Complement(a)

	// Enumerate all strings up to length 8 and check set algebra.
	var walk func(prefix []byte, depth int)
	walk = func(prefix []byte, depth int) {
		ia, ib := a.Accepts(prefix), b.Accepts(prefix)
		if inter.Accepts(prefix) != (ia && ib) {
			t.Fatalf("intersect wrong on %v", prefix)
		}
		if uni.Accepts(prefix) != (ia || ib) {
			t.Fatalf("union wrong on %v", prefix)
		}
		if diff.Accepts(prefix) != (ia && !ib) {
			t.Fatalf("difference wrong on %v", prefix)
		}
		if comp.Accepts(prefix) != !ia {
			t.Fatalf("complement wrong on %v", prefix)
		}
		if depth == 0 {
			return
		}
		for s := byte(0); s < 2; s++ {
			walk(append(prefix, s), depth-1)
		}
	}
	walk(nil, 8)
}

func TestProductAlphabetMismatch(t *testing.T) {
	a := MustNew(1, 2)
	b := MustNew(1, 3)
	if _, err := Intersect(a, b); err == nil {
		t.Error("alphabet mismatch should fail")
	}
}

func TestProductAlgebraRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for iter := 0; iter < 30; iter++ {
		a := Random(rng, 1+rng.Intn(8), 2, 0.4)
		b := Random(rng, 1+rng.Intn(8), 2, 0.4)
		uni, err := Union(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// De Morgan: A ∪ B == ¬(¬A ∩ ¬B).
		viaDeMorgan, err := Intersect(Complement(a), Complement(b))
		if err != nil {
			t.Fatal(err)
		}
		if !Equivalent(uni, Complement(viaDeMorgan)) {
			t.Fatalf("iter %d: De Morgan identity failed", iter)
		}
		// A \ B == A ∩ ¬B.
		diff, err := Difference(a, b)
		if err != nil {
			t.Fatal(err)
		}
		alt, err := Intersect(a, Complement(b))
		if err != nil {
			t.Fatal(err)
		}
		if !Equivalent(diff, alt) {
			t.Fatalf("iter %d: difference identity failed", iter)
		}
	}
}

func TestComplementInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	for iter := 0; iter < 20; iter++ {
		d := Random(rng, 1+rng.Intn(15), 2, 0.5)
		if !Equivalent(d, Complement(Complement(d))) {
			t.Fatal("double complement changed the language")
		}
	}
}

func TestWriteDot(t *testing.T) {
	d := fig1(t)
	var buf bytes.Buffer
	if err := d.WriteDot(&buf, "fig1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"digraph \"fig1\"", "start -> q0", "doublecircle", "q0 -> q1", "}",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("dot output missing %q:\n%s", frag, out)
		}
	}
}

func TestWriteDotByteAlphabet(t *testing.T) {
	d := MustNew(2, 256)
	for s := 0; s < 256; s++ {
		d.SetTransition(0, byte(s), 0)
	}
	for s := 'a'; s <= 'z'; s++ {
		d.SetTransition(0, byte(s), 1)
	}
	var buf bytes.Buffer
	if err := d.WriteDot(&buf, "bytes"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a-z") {
		t.Errorf("expected range label a-z in:\n%s", out)
	}
	if !strings.Contains(out, "~(") {
		t.Errorf("expected complement label for the near-total edge in:\n%s", out)
	}
}

func TestSymbolSetLabel(t *testing.T) {
	if got := symbolSetLabel([]byte{'a', 'b', 'c'}, 256); got != "a-c" {
		t.Errorf("label = %q", got)
	}
	all := make([]byte, 256)
	for i := range all {
		all[i] = byte(i)
	}
	if got := symbolSetLabel(all, 256); got != "Σ" {
		t.Errorf("full set label = %q", got)
	}
	if got := runLabel([]byte{0, 1, 'x'}); got != `\\x00\\x01x` {
		t.Errorf("escape label = %q", got)
	}
	if got := runLabel([]byte{'a', 'b'}); got != "ab" {
		t.Errorf("two-run label = %q", got)
	}
}
