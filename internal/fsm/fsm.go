// Package fsm provides the deterministic finite-state machine substrate
// used throughout this repository: the machine representation, sequential
// reference runners, structural statistics, minimization, language
// equivalence, k-step unrolling, and random-machine generation.
//
// A machine is the classic tuple (Q, Σ, q0, δ, F). The transition
// function is stored column-major by symbol — δ for a symbol a is the
// contiguous vector T[a] with T[a][q] = δ(q, a) — because the paper's
// enumerative algorithms consume whole per-symbol transition vectors as
// gather tables (Mytkowicz et al., ASPLOS 2014, §2.1).
package fsm

import (
	"errors"
	"fmt"
)

// State identifies a machine state. States are dense integers in
// [0, NumStates). uint16 bounds machines at 65536 states, which covers
// the paper's corpus (the largest Snort-derived machine has 4020 states)
// while keeping transition tables compact for gather kernels.
type State uint16

// MaxStates is the largest number of states a DFA may have.
const MaxStates = 1 << 16

// Phi is the Mealy output callback invoked with the position of an input
// symbol, the symbol itself, and the state reached *after* consuming it
// (paper §2.1). Parallel runners may invoke Phi out of order; callers
// that need ordered output should buffer by pos.
type Phi func(pos int, sym byte, state State)

// DFA is a deterministic finite-state machine over a byte(-subset)
// alphabet. The zero value is not usable; construct with New.
type DFA struct {
	numStates  int
	numSymbols int
	start      State
	accept     []bool
	// trans holds the transition function column-major by symbol:
	// trans[a*numStates + q] = δ(q, a).
	trans []State
}

// New returns a DFA with numStates states and numSymbols input symbols
// (symbols are bytes in [0, numSymbols)). All transitions initially lead
// to state 0 and no state accepts.
func New(numStates, numSymbols int) (*DFA, error) {
	if numStates <= 0 || numStates > MaxStates {
		return nil, fmt.Errorf("fsm: numStates %d out of range [1, %d]", numStates, MaxStates)
	}
	if numSymbols <= 0 || numSymbols > 256 {
		return nil, fmt.Errorf("fsm: numSymbols %d out of range [1, 256]", numSymbols)
	}
	return &DFA{
		numStates:  numStates,
		numSymbols: numSymbols,
		accept:     make([]bool, numStates),
		trans:      make([]State, numStates*numSymbols),
	}, nil
}

// MustNew is New but panics on error; intended for static machines and
// tests.
func MustNew(numStates, numSymbols int) *DFA {
	d, err := New(numStates, numSymbols)
	if err != nil {
		panic(err)
	}
	return d
}

// NumStates reports |Q|.
func (d *DFA) NumStates() int { return d.numStates }

// NumSymbols reports |Σ|.
func (d *DFA) NumSymbols() int { return d.numSymbols }

// Start reports the initial state q0.
func (d *DFA) Start() State { return d.start }

// SetStart sets the initial state q0.
func (d *DFA) SetStart(q State) {
	d.checkState(q)
	d.start = q
}

// Accepting reports whether q ∈ F.
func (d *DFA) Accepting(q State) bool { return d.accept[q] }

// ValidState reports whether q ∈ Q, for surfaces (HTTP handlers, the
// batch engine) that accept caller-supplied start states and must
// reject out-of-range values without panicking.
func (d *DFA) ValidState(q State) bool { return int(q) < d.numStates }

// SetAccepting marks q as accepting (or not).
func (d *DFA) SetAccepting(q State, ok bool) {
	d.checkState(q)
	d.accept[q] = ok
}

// AcceptingStates returns the set F as a fresh slice, in state order.
func (d *DFA) AcceptingStates() []State {
	var f []State
	for q := 0; q < d.numStates; q++ {
		if d.accept[q] {
			f = append(f, State(q))
		}
	}
	return f
}

// Next applies the transition function: Next(q, a) = δ(q, a).
func (d *DFA) Next(q State, sym byte) State {
	return d.trans[int(sym)*d.numStates+int(q)]
}

// SetTransition sets δ(q, a) = r.
func (d *DFA) SetTransition(q State, sym byte, r State) {
	d.checkState(q)
	d.checkState(r)
	d.checkSymbol(sym)
	d.trans[int(sym)*d.numStates+int(q)] = r
}

// Column returns the transition vector T[a] with T[a][q] = δ(q, a).
// The returned slice aliases the machine's internal storage and must be
// treated as read-only; it is exactly the gather table the enumerative
// algorithms consume.
func (d *DFA) Column(sym byte) []State {
	d.checkSymbol(sym)
	off := int(sym) * d.numStates
	return d.trans[off : off+d.numStates : off+d.numStates]
}

// SetColumn replaces the whole transition vector for sym.
func (d *DFA) SetColumn(sym byte, col []State) error {
	d.checkSymbol(sym)
	if len(col) != d.numStates {
		return fmt.Errorf("fsm: column length %d != numStates %d", len(col), d.numStates)
	}
	for _, r := range col {
		if int(r) >= d.numStates {
			return fmt.Errorf("fsm: column target %d out of range", r)
		}
	}
	copy(d.trans[int(sym)*d.numStates:], col)
	return nil
}

// Clone returns a deep copy of the machine.
func (d *DFA) Clone() *DFA {
	c := &DFA{
		numStates:  d.numStates,
		numSymbols: d.numSymbols,
		start:      d.start,
		accept:     append([]bool(nil), d.accept...),
		trans:      append([]State(nil), d.trans...),
	}
	return c
}

// Validate checks the structural invariants of the machine: every
// transition target and the start state are within [0, NumStates).
func (d *DFA) Validate() error {
	if int(d.start) >= d.numStates {
		return fmt.Errorf("fsm: start state %d out of range", d.start)
	}
	if len(d.accept) != d.numStates {
		return errors.New("fsm: accept vector length mismatch")
	}
	if len(d.trans) != d.numStates*d.numSymbols {
		return errors.New("fsm: transition table length mismatch")
	}
	for i, r := range d.trans {
		if int(r) >= d.numStates {
			return fmt.Errorf("fsm: transition %d target %d out of range", i, r)
		}
	}
	return nil
}

// String summarizes the machine for diagnostics.
func (d *DFA) String() string {
	return fmt.Sprintf("DFA{states: %d, symbols: %d, start: %d, accepting: %d}",
		d.numStates, d.numSymbols, d.start, len(d.AcceptingStates()))
}

func (d *DFA) checkState(q State) {
	if int(q) >= d.numStates {
		panic(fmt.Sprintf("fsm: state %d out of range [0, %d)", q, d.numStates))
	}
}

func (d *DFA) checkSymbol(sym byte) {
	if int(sym) >= d.numSymbols {
		panic(fmt.Sprintf("fsm: symbol %d out of range [0, %d)", sym, d.numSymbols))
	}
}
