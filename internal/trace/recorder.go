package trace

import (
	"sync/atomic"
)

// Sink consumes completed traces. The engine and HTTP layers take a
// Sink rather than a concrete Recorder so tests (and future exporters)
// can substitute their own destination.
type Sink interface {
	Record(*Trace)
}

// DefaultRecorderCapacity sizes NewRecorder(0).
const DefaultRecorderCapacity = 256

// Recorder is the flight recorder: a fixed-capacity, lock-free ring
// buffer of the most recently completed traces. Record is a single
// atomic fetch-add plus one pointer store, so it sits on the request
// completion path of every traced job without contention; readers
// (Snapshot, Find) walk the slots with atomic loads and never block
// writers.
//
// Consistency is deliberately relaxed: a Snapshot taken during heavy
// writing may miss a trace that is being overwritten at that instant.
// That is the right trade for a diagnostic surface — the recorder must
// never become the bottleneck it exists to explain.
type Recorder struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
	total atomic.Int64
}

// NewRecorder builds a flight recorder holding up to capacity traces
// (capacity <= 0 means DefaultRecorderCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{slots: make([]atomic.Pointer[Trace], capacity)}
}

// Record stores a completed trace, evicting the oldest once the ring
// is full. Unfinished traces are finished first so their durations are
// fixed. Nil traces are ignored.
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	t.Finish()
	idx := r.next.Add(1) - 1
	r.slots[idx%uint64(len(r.slots))].Store(t)
	r.total.Add(1)
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Total returns how many traces have ever been recorded (including
// evicted ones).
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// Snapshot returns the retained traces, newest first.
func (r *Recorder) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	head := r.next.Load()
	n := uint64(len(r.slots))
	count := head
	if count > n {
		count = n
	}
	out := make([]*Trace, 0, count)
	for i := uint64(0); i < count; i++ {
		// head-1 is the most recently written slot.
		t := r.slots[(head-1-i)%n].Load()
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Find returns the retained trace with the given ID, or nil. A linear
// scan: the ring holds a few hundred entries, and Find serves the
// interactive /v1/traces/{id} path, not a hot loop.
func (r *Recorder) Find(id string) *Trace {
	if r == nil || id == "" {
		return nil
	}
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil && t.id == id {
			return t
		}
	}
	return nil
}
