// Package trace is the request-scoped execution-trace layer of the
// data-parallel FSM runtime. Where internal/telemetry answers aggregate
// questions (total shuffles, convergence high-water marks, phase wall
// time), a Trace answers "why was *this* job slow": it carries a W3C
// trace ID through one job's whole lifecycle and collects timestamped
// spans — engine enqueue, dispatch-lane decision, per-chunk phase-1
// convergence profiles — into a tree a human or a frontend can read
// back.
//
// The layer composes with, and never replaces, the aggregate
// telemetry: the same stack locals the hot loops flush into
// telemetry.Metrics are also flushed into the active span's attributes
// when — and only when — a Trace rides the context.
//
// Design constraints, in order:
//
//  1. Zero cost when absent. FromContext on a context without a trace
//     is one Value lookup and no allocation; Start then returns a nil
//     *Span whose every method is a no-op, so instrumented code is
//     written unconditionally and pays nothing untraced.
//
//  2. Safe under the runtime's concurrency. Phase-1 chunk goroutines
//     start and end spans concurrently; span allocation is a single
//     mutex-protected append (traces hold tens of spans, not
//     thousands), and a per-trace span cap bounds memory even when a
//     batch request attaches thousands of jobs to one trace.
//
//  3. Interoperable IDs. Inbound W3C `traceparent` headers are
//     honored, so a dpfsm service slots into an existing distributed
//     trace; otherwise a random 16-byte ID is generated.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxSpans bounds the spans one trace retains; starts past the
// cap are dropped (counted, reported in the JSON form) so a huge batch
// cannot turn its request trace into an allocation bomb.
const DefaultMaxSpans = 1024

// Attr is one typed key/value attribute on a span or trace.
type Attr struct {
	Key  string
	kind attrKind
	num  int64
	flt  float64
	str  string
}

type attrKind uint8

const (
	kindInt attrKind = iota
	kindStr
	kindBool
	kindFloat
)

// Int makes an int64 attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, num: v} }

// Str makes a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: kindStr, str: v} }

// Bool makes a boolean attribute.
func Bool(key string, v bool) Attr {
	var n int64
	if v {
		n = 1
	}
	return Attr{Key: key, kind: kindBool, num: n}
}

// Float makes a float64 attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: kindFloat, flt: v} }

// Value returns the attribute's value as the matching Go type, for
// JSON encoding and generic consumers.
func (a Attr) Value() any {
	switch a.kind {
	case kindStr:
		return a.str
	case kindBool:
		return a.num != 0
	case kindFloat:
		return a.flt
	default:
		return a.num
	}
}

// Int64 returns the attribute as an int64 (0 for non-numeric kinds).
func (a Attr) Int64() int64 {
	if a.kind == kindFloat {
		return int64(a.flt)
	}
	return a.num
}

// Text returns the attribute as a string ("" for non-string kinds).
func (a Attr) Text() string { return a.str }

// FindAttr returns the first attribute with the given key.
func FindAttr(attrs []Attr, key string) (Attr, bool) {
	for _, a := range attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// attrMap renders attrs as a JSON-encodable map.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// Span is one timestamped operation within a Trace. A nil *Span is the
// disabled form: every method returns immediately, which is what lets
// instrumentation run unconditionally on untraced paths.
//
// A span is owned by the goroutine that started it until End; SetAttrs
// and End must not race with each other, but distinct spans of one
// trace may start, annotate and end fully concurrently.
type Span struct {
	tr     *Trace
	id     int32
	parent int32 // 0 = root-level
	name   string
	start  time.Time
	dur    atomic.Int64 // ns; 0 while open
	attrs  []Attr
}

// SetAttrs appends attributes to the span.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End closes the span, fixing its duration. Idempotent; later calls
// keep the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.dur.CompareAndSwap(0, int64(time.Since(s.start)))
}

// Child starts a sub-span of s. Nil-safe: a nil receiver returns a nil
// child, so fan-out goroutines can capture their parent handle without
// checking whether tracing is on.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.startSpan(s.id, name)
}

// Trace is one request-scoped execution trace. Construct with New or
// FromParent, attach to a context with NewContext, Finish when the
// request completes, then hand it to a Recorder.
type Trace struct {
	id        string // 32 lowercase hex chars (16 bytes)
	parent    string // inbound parent span ID (16 hex chars), "" if locally rooted
	spanID    string // this trace's own propagation span ID (16 hex chars)
	start     time.Time
	maxSpans  int
	nextSpan  atomic.Int32
	dropped   atomic.Int64
	endNs     atomic.Int64 // duration at Finish; 0 while live
	mu        sync.Mutex
	name      string
	attrs     []Attr
	spans     []*Span
	errString string
}

// New starts a trace with a freshly generated random ID.
func New() *Trace {
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to
		// a time-derived ID rather than panicking in a hot service.
		binary.LittleEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
	}
	return &Trace{
		id:       hex.EncodeToString(b[:16]),
		spanID:   hex.EncodeToString(b[16:24]),
		start:    time.Now(),
		maxSpans: DefaultMaxSpans,
	}
}

// FromParent starts a trace continuing an inbound W3C traceparent
// header ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>").
// A missing or malformed header falls back to New, so callers can pass
// the header through unconditionally.
func FromParent(traceparent string) *Trace {
	id, parent, err := ParseTraceparent(traceparent)
	if err != nil {
		return New()
	}
	t := New()
	t.id = id
	t.parent = parent
	return t
}

// ParseTraceparent validates a W3C traceparent header and returns its
// trace-id and parent-id fields.
func ParseTraceparent(h string) (traceID, parentID string, err error) {
	// version(2) "-" trace-id(32) "-" parent-id(16) "-" flags(2)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", fmt.Errorf("trace: malformed traceparent %q", h)
	}
	if h[:2] == "ff" {
		return "", "", fmt.Errorf("trace: invalid traceparent version %q", h[:2])
	}
	traceID, parentID = h[3:35], h[36:52]
	if !isHex(h[:2]) || !isHex(traceID) || !isHex(parentID) || !isHex(h[53:55]) {
		return "", "", fmt.Errorf("trace: non-hex traceparent %q", h)
	}
	if allZero(traceID) || allZero(parentID) {
		return "", "", fmt.Errorf("trace: all-zero traceparent field in %q", h)
	}
	return traceID, parentID, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// ID returns the 32-hex-char trace ID.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Traceparent renders the outbound W3C traceparent header for
// propagating this trace to a downstream service.
func (t *Trace) Traceparent() string {
	return "00-" + t.id + "-" + t.spanID + "-01"
}

// SpanID returns the trace's own 16-hex-char propagation span ID —
// the ID a downstream service sees as its parent, and the ID an
// exporter should use for this trace's synthesized root span.
func (t *Trace) SpanID() string {
	if t == nil {
		return ""
	}
	return t.spanID
}

// ParentSpanID returns the inbound parent span ID when this trace
// joined a distributed trace via traceparent, "" when locally rooted.
func (t *Trace) ParentSpanID() string {
	if t == nil {
		return ""
	}
	return t.parent
}

// SetName names the trace (e.g. "POST /v1/run").
func (t *Trace) SetName(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.name = name
	t.mu.Unlock()
}

// Name returns the trace's name.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.name
}

// SetAttrs appends trace-level attributes (machine, route, bytes, …).
func (t *Trace) SetAttrs(attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs = append(t.attrs, attrs...)
	t.mu.Unlock()
}

// Attrs returns a copy of the trace-level attributes.
func (t *Trace) Attrs() []Attr {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Attr(nil), t.attrs...)
}

// Attr returns the trace-level attribute with the given key.
func (t *Trace) Attr(key string) (Attr, bool) {
	if t == nil {
		return Attr{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return FindAttr(t.attrs, key)
}

// SetError records a request-level error string on the trace.
func (t *Trace) SetError(msg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.errString = msg
	t.mu.Unlock()
}

// Error returns the request-level error string ("" when none).
func (t *Trace) Error() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.errString
}

// StartSpan opens a root-level span.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.startSpan(0, name)
}

func (t *Trace) startSpan(parent int32, name string) *Span {
	id := t.nextSpan.Add(1)
	if int(id) > t.maxSpans {
		t.dropped.Add(1)
		return nil
	}
	s := &Span{tr: t, id: id, parent: parent, name: name, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Finish closes the trace, fixing its duration. Idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.endNs.CompareAndSwap(0, int64(time.Since(t.start)))
}

// Finished reports whether Finish has been called.
func (t *Trace) Finished() bool { return t != nil && t.endNs.Load() != 0 }

// StartTime returns when the trace began.
func (t *Trace) StartTime() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Duration returns the trace's total duration — final after Finish,
// the live elapsed time before.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	if ns := t.endNs.Load(); ns != 0 {
		return time.Duration(ns)
	}
	return time.Since(t.start)
}

// Dropped returns how many span starts the cap discarded.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// SpanView is a read-only copy of one span, for explain builders and
// tests. Spans still open have Duration 0.
type SpanView struct {
	ID       int32
	Parent   int32
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// Spans returns copies of every span in start order. Attribute slices
// are shared with ended spans; callers must not mutate them.
func (t *Trace) Spans() []SpanView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanView, len(t.spans))
	for i, s := range t.spans {
		out[i] = SpanView{
			ID:       s.id,
			Parent:   s.parent,
			Name:     s.name,
			Start:    s.start,
			Duration: time.Duration(s.dur.Load()),
			Attrs:    s.attrs,
		}
	}
	return out
}

// spanJSON is the wire form of one span-tree node.
type spanJSON struct {
	Name       string         `json:"name"`
	StartNs    int64          `json:"start_ns"` // offset from trace start
	DurationNs int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*spanJSON    `json:"children,omitempty"`
}

// traceJSON is the wire form of GET /v1/traces/{id}.
type traceJSON struct {
	TraceID      string         `json:"trace_id"`
	ParentSpan   string         `json:"parent_span,omitempty"`
	Name         string         `json:"name,omitempty"`
	Error        string         `json:"error,omitempty"`
	StartUnixNs  int64          `json:"start_unix_ns"`
	DurationNs   int64          `json:"duration_ns"`
	Attrs        map[string]any `json:"attrs,omitempty"`
	DroppedSpans int64          `json:"dropped_spans,omitempty"`
	Spans        []*spanJSON    `json:"spans"`
}

// MarshalJSON renders the trace with its spans nested into a tree.
func (t *Trace) MarshalJSON() ([]byte, error) {
	t.mu.Lock()
	nodes := make(map[int32]*spanJSON, len(t.spans))
	order := make([]int32, 0, len(t.spans))
	parents := make(map[int32]int32, len(t.spans))
	for _, s := range t.spans {
		nodes[s.id] = &spanJSON{
			Name:       s.name,
			StartNs:    s.start.Sub(t.start).Nanoseconds(),
			DurationNs: s.dur.Load(),
			Attrs:      attrMap(s.attrs),
		}
		order = append(order, s.id)
		parents[s.id] = s.parent
	}
	doc := traceJSON{
		TraceID:      t.id,
		ParentSpan:   t.parent,
		Name:         t.name,
		Error:        t.errString,
		StartUnixNs:  t.start.UnixNano(),
		DurationNs:   int64(t.Duration()),
		Attrs:        attrMap(t.attrs),
		DroppedSpans: t.dropped.Load(),
		Spans:        []*spanJSON{},
	}
	t.mu.Unlock()
	for _, id := range order {
		n := nodes[id]
		if p, ok := nodes[parents[id]]; ok && parents[id] != id {
			p.Children = append(p.Children, n)
		} else {
			doc.Spans = append(doc.Spans, n)
		}
	}
	return json.Marshal(doc)
}

// Context plumbing. Two keys: the trace itself and the current span,
// so Start can parent nested instrumentation correctly across package
// boundaries without threading span handles through every signature.

type traceKey struct{}
type spanKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace attached to ctx, or nil. Nil-safe on a
// nil ctx, and allocation-free either way.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// ContextWithSpan returns ctx with s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start opens a span named name under the context's current span (or
// at the root) and returns a context carrying it as the new current
// span. When ctx has no trace it returns (ctx, nil) untouched with no
// allocation — the universal instrumentation pattern:
//
//	ctx, sp := trace.Start(ctx, "engine.exec")
//	defer sp.End()
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	var parent int32
	if cur := SpanFromContext(ctx); cur != nil {
		parent = cur.id
	}
	s := t.startSpan(parent, name)
	if s == nil { // span cap hit
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, s), s
}
