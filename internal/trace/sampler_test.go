package trace

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives the token bucket deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestSampler(cfg SamplerConfig) (*Sampler, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	cfg.now = clk.now
	return NewSampler(cfg), clk
}

func finished(opts ...func(*Trace)) *Trace {
	t := New()
	for _, o := range opts {
		o(t)
	}
	t.Finish()
	return t
}

func TestSamplerNilKeepsEverything(t *testing.T) {
	var s *Sampler
	if v := s.Sample(finished(), 200); !v.Keep {
		t.Fatalf("nil sampler dropped a trace: %+v", v)
	}
	if st := s.Stats(); st != (SamplerStats{}) {
		t.Fatalf("nil sampler stats = %+v", st)
	}
}

func TestSamplerHeadTokenBucket(t *testing.T) {
	s, clk := newTestSampler(SamplerConfig{HeadPerSec: 2, HeadBurst: 3})
	kept := 0
	for i := 0; i < 10; i++ {
		if s.Sample(finished(), 200).Keep {
			kept++
		}
	}
	if kept != 3 {
		t.Fatalf("burst: kept %d, want 3", kept)
	}
	// One second refills 2 tokens.
	clk.advance(time.Second)
	kept = 0
	for i := 0; i < 10; i++ {
		if s.Sample(finished(), 200).Keep {
			kept++
		}
	}
	if kept != 2 {
		t.Fatalf("refill: kept %d, want 2", kept)
	}
	st := s.Stats()
	if st.Kept != 5 || st.Head != 5 || st.Dropped != 15 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSamplerTailsBypassRateLimit is the acceptance property: with the
// head budget exhausted, every slow/error/shed/mispredict trace is
// still kept.
func TestSamplerTailsBypassRateLimit(t *testing.T) {
	s, _ := newTestSampler(SamplerConfig{
		HeadPerSec:    1,
		HeadBurst:     1,
		SlowThreshold: 50 * time.Millisecond,
		KeepAttrs:     []string{"mispredict"},
	})
	// Exhaust the head budget.
	s.Sample(finished(), 200)
	if s.Sample(finished(), 200).Keep {
		t.Fatal("head budget not exhausted")
	}

	cases := []struct {
		name   string
		tr     *Trace
		status int
		reason string
	}{
		{"error string", finished(func(tr *Trace) { tr.SetError("boom") }), 200, "error"},
		{"5xx status", finished(), 500, "error"},
		{"shed", finished(), 429, "shed"},
		{"slow", func() *Trace {
			tr := New()
			tr.start = tr.start.Add(-time.Second) // fake a 1s trace
			tr.Finish()
			return tr
		}(), 200, "slow"},
		{"trace attr", finished(func(tr *Trace) { tr.SetAttrs(Bool("mispredict", true)) }), 200, "mispredict"},
		{"span attr", func() *Trace {
			tr := New()
			sp := tr.StartSpan("exec")
			sp.SetAttrs(Bool("mispredict", true))
			sp.End()
			tr.Finish()
			return tr
		}(), 200, "mispredict"},
	}
	for _, tc := range cases {
		v := s.Sample(tc.tr, tc.status)
		if !v.Keep {
			t.Errorf("%s: dropped, want kept", tc.name)
		}
		if v.Reason != tc.reason {
			t.Errorf("%s: reason %q, want %q", tc.name, v.Reason, tc.reason)
		}
	}
	st := s.Stats()
	if st.TailError != 2 || st.TailShed != 1 || st.TailSlow != 1 || st.TailAttr != 2 {
		t.Fatalf("tail stats = %+v", st)
	}
}

func TestSamplerFalseAttrDoesNotKeep(t *testing.T) {
	s, _ := newTestSampler(SamplerConfig{HeadPerSec: 1, HeadBurst: 1, KeepAttrs: []string{"mispredict"}})
	s.Sample(finished(), 200) // drain head budget
	tr := finished(func(tr *Trace) { tr.SetAttrs(Bool("mispredict", false)) })
	if v := s.Sample(tr, 200); v.Keep {
		t.Fatalf("false keep-attr retained the trace: %+v", v)
	}
}

func TestSamplerDefaults(t *testing.T) {
	s := NewSampler(SamplerConfig{})
	st := s.Stats()
	if st.HeadPerSec != DefaultHeadPerSec {
		t.Fatalf("HeadPerSec = %g", st.HeadPerSec)
	}
	if st.SlowThresholdNs != int64(DefaultSlowThreshold) {
		t.Fatalf("SlowThresholdNs = %d", st.SlowThresholdNs)
	}
}

func TestSamplerConcurrent(t *testing.T) {
	s, _ := newTestSampler(SamplerConfig{HeadPerSec: 5, HeadBurst: 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				status := 200
				if i%10 == 0 {
					status = 429
				}
				s.Sample(finished(), status)
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if total := st.Kept + st.Dropped; total != 400 {
		t.Fatalf("decisions = %d, want 400", total)
	}
	if st.TailShed != 40 {
		t.Fatalf("shed tails = %d, want 40", st.TailShed)
	}
}

func TestTraceSpanIDAccessors(t *testing.T) {
	tr := New()
	if len(tr.SpanID()) != 16 || !isHex(tr.SpanID()) {
		t.Fatalf("SpanID = %q", tr.SpanID())
	}
	if tr.ParentSpanID() != "" {
		t.Fatalf("local root has parent %q", tr.ParentSpanID())
	}
	joined := FromParent("00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01")
	if joined.ParentSpanID() != "00f067aa0ba902b7" {
		t.Fatalf("joined parent = %q", joined.ParentSpanID())
	}
	var nilT *Trace
	if nilT.SpanID() != "" || nilT.ParentSpanID() != "" {
		t.Fatal("nil trace accessors not empty")
	}
}
