package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewIDsAreDistinctHex(t *testing.T) {
	a, b := New(), New()
	if a.ID() == b.ID() {
		t.Fatalf("two traces share ID %s", a.ID())
	}
	if len(a.ID()) != 32 || !isHex(a.ID()) {
		t.Fatalf("bad trace ID %q", a.ID())
	}
	if !strings.HasPrefix(a.Traceparent(), "00-"+a.ID()+"-") {
		t.Fatalf("traceparent %q does not carry trace ID", a.Traceparent())
	}
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	id, parent, err := ParseTraceparent(valid)
	if err != nil {
		t.Fatal(err)
	}
	if id != "4bf92f3577b34da6a3ce929d0e0e4736" || parent != "00f067aa0ba902b7" {
		t.Fatalf("got id=%s parent=%s", id, parent)
	}

	invalid := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"00-4bf92f3577b34da6a3ce929d0e0e47ZZ-00f067aa0ba902b7-01",
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	}
	for _, h := range invalid {
		if _, _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed header", h)
		}
	}
}

func TestFromParentContinuesInboundTrace(t *testing.T) {
	h := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tr := FromParent(h)
	if tr.ID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("FromParent kept ID %s", tr.ID())
	}
	if tr.parent != "00f067aa0ba902b7" {
		t.Fatalf("FromParent parent %s", tr.parent)
	}
	// A malformed header falls back to a fresh trace instead of failing.
	if got := FromParent("garbage"); got == nil || got.ID() == "" {
		t.Fatal("FromParent(garbage) did not fall back to New")
	}
}

func TestSpanTreeJSON(t *testing.T) {
	tr := New()
	tr.SetName("POST /v1/run")
	tr.SetAttrs(Str("machine", "sqli"), Int("bytes", 4096))

	root := tr.StartSpan("engine.exec")
	root.SetAttrs(Str("lane", "multicore"), Bool("ok", true), Float("mbps", 123.5))
	c1 := root.Child("core.phase1.chunk")
	c1.SetAttrs(Int("chunk", 0))
	c1.End()
	c2 := root.Child("core.phase1.chunk")
	c2.SetAttrs(Int("chunk", 1))
	c2.End()
	root.End()
	tr.Finish()

	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceID    string         `json:"trace_id"`
		Name       string         `json:"name"`
		DurationNs int64          `json:"duration_ns"`
		Attrs      map[string]any `json:"attrs"`
		Spans      []struct {
			Name     string         `json:"name"`
			Attrs    map[string]any `json:"attrs"`
			Children []struct {
				Name  string         `json:"name"`
				Attrs map[string]any `json:"attrs"`
			} `json:"children"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != tr.ID() || doc.Name != "POST /v1/run" {
		t.Fatalf("doc header %+v", doc)
	}
	if doc.DurationNs <= 0 {
		t.Fatalf("finished trace has duration %d", doc.DurationNs)
	}
	if doc.Attrs["machine"] != "sqli" || doc.Attrs["bytes"] != float64(4096) {
		t.Fatalf("trace attrs %v", doc.Attrs)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "engine.exec" {
		t.Fatalf("root spans %+v", doc.Spans)
	}
	if got := doc.Spans[0].Attrs["ok"]; got != true {
		t.Fatalf("bool attr %v", got)
	}
	if len(doc.Spans[0].Children) != 2 {
		t.Fatalf("children %+v", doc.Spans[0].Children)
	}
	if doc.Spans[0].Children[1].Attrs["chunk"] != float64(1) {
		t.Fatalf("child attrs %v", doc.Spans[0].Children[1].Attrs)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New()
	root := tr.StartSpan("root")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := root.Child("worker")
			s.SetAttrs(Int("i", int64(i)))
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	tr.Finish()
	if got := len(tr.Spans()); got != 33 {
		t.Fatalf("got %d spans, want 33", got)
	}
	if _, err := json.Marshal(tr); err != nil {
		t.Fatal(err)
	}
}

func TestSpanCapDrops(t *testing.T) {
	tr := New()
	tr.maxSpans = 4
	for i := 0; i < 10; i++ {
		tr.StartSpan("s").End()
	}
	if got := len(tr.Spans()); got != 4 {
		t.Fatalf("retained %d spans, want 4", got)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", tr.Dropped())
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	var sp *Span
	// None of these may panic.
	tr.SetName("x")
	tr.SetAttrs(Int("a", 1))
	tr.Finish()
	tr.SetError("boom")
	sp = tr.StartSpan("s")
	sp.SetAttrs(Str("k", "v"))
	sp.End()
	if c := sp.Child("c"); c != nil {
		t.Fatal("nil span produced non-nil child")
	}
	if tr.ID() != "" || tr.Duration() != 0 || tr.Spans() != nil {
		t.Fatal("nil trace reads are not zero")
	}
}

func TestContextPlumbing(t *testing.T) {
	// No trace: Start is an identity with a nil span.
	ctx := context.Background()
	ctx2, sp := Start(ctx, "x")
	if sp != nil || ctx2 != ctx {
		t.Fatal("Start without a trace was not a no-op")
	}
	if FromContext(ctx) != nil || FromContext(nil) != nil {
		t.Fatal("FromContext invented a trace")
	}

	tr := New()
	ctx = NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext lost the trace")
	}
	ctx, outer := Start(ctx, "outer")
	if outer == nil {
		t.Fatal("Start returned nil span with trace attached")
	}
	_, inner := Start(ctx, "inner")
	inner.End()
	outer.End()
	views := tr.Spans()
	if len(views) != 2 {
		t.Fatalf("spans %d", len(views))
	}
	if views[1].Parent != views[0].ID {
		t.Fatalf("inner span parent %d, want %d", views[1].Parent, views[0].ID)
	}
}

func TestUntracedPathAllocatesNothing(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		ctx2, sp := Start(ctx, "hot")
		sp.SetAttrs(Int("n", 1))
		sp.End()
		_ = ctx2
	})
	if allocs != 0 {
		t.Fatalf("untraced Start allocated %v times per run", allocs)
	}
}

func TestRecorderRingAndFind(t *testing.T) {
	r := NewRecorder(4)
	var ids []string
	for i := 0; i < 6; i++ {
		tr := New()
		tr.SetName(fmt.Sprintf("t%d", i))
		r.Record(tr)
		ids = append(ids, tr.ID())
	}
	if r.Total() != 6 || r.Cap() != 4 {
		t.Fatalf("total %d cap %d", r.Total(), r.Cap())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot %d traces, want 4", len(snap))
	}
	// Newest first: t5, t4, t3, t2.
	for i, want := range []string{"t5", "t4", "t3", "t2"} {
		if snap[i].Name() != want {
			t.Fatalf("snapshot[%d] = %s, want %s", i, snap[i].Name(), want)
		}
	}
	// Evicted traces are gone; retained ones findable.
	if r.Find(ids[0]) != nil {
		t.Fatal("evicted trace still findable")
	}
	if got := r.Find(ids[5]); got == nil || got.ID() != ids[5] {
		t.Fatal("retained trace not findable")
	}
	if r.Find("") != nil || r.Find("nope") != nil {
		t.Fatal("Find invented a trace")
	}
	// Record finishes unfinished traces.
	if !snap[0].Finished() {
		t.Fatal("recorded trace left unfinished")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr := New()
				tr.Finish()
				r.Record(tr)
				r.Snapshot()
				r.Find(tr.ID())
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("total %d", r.Total())
	}
}

func TestDurationLiveAndFinished(t *testing.T) {
	tr := New()
	time.Sleep(time.Millisecond)
	live := tr.Duration()
	if live <= 0 {
		t.Fatal("live duration not positive")
	}
	tr.Finish()
	d1 := tr.Duration()
	time.Sleep(time.Millisecond)
	if tr.Duration() != d1 {
		t.Fatal("duration moved after Finish")
	}
}
