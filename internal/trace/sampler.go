package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Sampling. The flight recorder and the OTLP exporter both consume
// completed traces; under sustained load "trace everything, keep
// everything" turns the diagnostic layer into the workload. The
// Sampler is the retention policy between the two: every request can
// be traced (the per-request cost is tens of small allocations), but
// only a bounded-rate head sample plus the traces worth keeping — the
// slow, the erroring, the shed, the mispredicted — survive to the
// recorder and the exporter.
//
// The split follows the two classic modes:
//
//   - head sampling: a token bucket admits at most HeadPerSec traces
//     per second on no other grounds than "recent, representative".
//     This bounds the steady-state retention cost regardless of
//     traffic.
//   - tail keeping: decided at completion, when the interesting facts
//     (duration, error, HTTP status, span attributes) exist. Tails are
//     never rate-limited — an incident is exactly when the limiter
//     must not censor the evidence.
//
// The Sampler never decides whether a request is *traced* — callers
// own that — only whether a completed trace is *retained*.

// Default sampling thresholds.
const (
	DefaultHeadPerSec    = 10.0
	DefaultHeadBurst     = 20
	DefaultSlowThreshold = 100 * time.Millisecond
)

// SamplerConfig configures a Sampler. The zero value gets the
// defaults above; KeepAttrs is the set of boolean span/trace attribute
// keys that force retention when true (e.g. the engine's "mispredict").
type SamplerConfig struct {
	// HeadPerSec is the sustained head-sample admission rate; <= 0
	// means DefaultHeadPerSec. HeadBurst is the token-bucket burst
	// (<= 0 means DefaultHeadBurst).
	HeadPerSec float64
	HeadBurst  int
	// SlowThreshold is the duration at or above which a trace is kept
	// unconditionally; <= 0 means DefaultSlowThreshold.
	SlowThreshold time.Duration
	// KeepAttrs lists attribute keys (trace-level or on any span)
	// whose true boolean value forces retention.
	KeepAttrs []string

	// now overrides the clock in tests.
	now func() time.Time
}

// Verdict is one retention decision.
type Verdict struct {
	Keep bool
	// Reason is "head", "slow", "error", "shed", a KeepAttrs key, or
	// "rate" for head-sample drops.
	Reason string
}

// SamplerStats counts decisions, for the status surface.
type SamplerStats struct {
	Kept            int64   `json:"kept"`
	Dropped         int64   `json:"dropped"`
	Head            int64   `json:"head"`
	TailSlow        int64   `json:"tail_slow"`
	TailError       int64   `json:"tail_error"`
	TailShed        int64   `json:"tail_shed"`
	TailAttr        int64   `json:"tail_attr"`
	HeadPerSec      float64 `json:"head_per_sec"`
	SlowThresholdNs int64   `json:"slow_threshold_ns"`
}

// Sampler applies a SamplerConfig to completed traces. Safe for
// concurrent use; a nil *Sampler keeps everything (sampling disabled).
type Sampler struct {
	cfg SamplerConfig

	mu     sync.Mutex
	tokens float64
	last   time.Time

	kept, dropped                               atomic.Int64
	head, tailSlow, tailErr, tailShed, tailAttr atomic.Int64
}

// NewSampler builds a Sampler, applying defaults to unset fields.
func NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.HeadPerSec <= 0 {
		cfg.HeadPerSec = DefaultHeadPerSec
	}
	if cfg.HeadBurst <= 0 {
		cfg.HeadBurst = DefaultHeadBurst
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Sampler{cfg: cfg, tokens: float64(cfg.HeadBurst), last: cfg.now()}
}

// Sample decides whether a completed trace is retained. status is the
// request's HTTP status code when known (0 otherwise): 5xx classifies
// as an error tail, 429 as a shed tail. Tail checks run before the
// head limiter, so interesting traces are never rate-limited away.
func (s *Sampler) Sample(t *Trace, status int) Verdict {
	if s == nil {
		return Verdict{Keep: true, Reason: "unsampled"}
	}
	if t == nil {
		return Verdict{Keep: false, Reason: "nil"}
	}
	if v, ok := s.tail(t, status); ok {
		s.kept.Add(1)
		return v
	}
	if s.admitHead() {
		s.kept.Add(1)
		s.head.Add(1)
		return Verdict{Keep: true, Reason: "head"}
	}
	s.dropped.Add(1)
	return Verdict{Keep: false, Reason: "rate"}
}

// tail checks the always-keep conditions.
func (s *Sampler) tail(t *Trace, status int) (Verdict, bool) {
	if t.Error() != "" || status >= 500 {
		s.tailErr.Add(1)
		return Verdict{Keep: true, Reason: "error"}, true
	}
	if status == 429 {
		s.tailShed.Add(1)
		return Verdict{Keep: true, Reason: "shed"}, true
	}
	if t.Duration() >= s.cfg.SlowThreshold {
		s.tailSlow.Add(1)
		return Verdict{Keep: true, Reason: "slow"}, true
	}
	for _, key := range s.cfg.KeepAttrs {
		if a, ok := t.Attr(key); ok && a.Value() == true {
			s.tailAttr.Add(1)
			return Verdict{Keep: true, Reason: key}, true
		}
		for _, sp := range t.Spans() {
			if a, ok := FindAttr(sp.Attrs, key); ok && a.Value() == true {
				s.tailAttr.Add(1)
				return Verdict{Keep: true, Reason: key}, true
			}
		}
	}
	return Verdict{}, false
}

// admitHead is the token bucket: HeadPerSec refills, HeadBurst cap.
func (s *Sampler) admitHead() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.now()
	s.tokens += now.Sub(s.last).Seconds() * s.cfg.HeadPerSec
	s.last = now
	if burst := float64(s.cfg.HeadBurst); s.tokens > burst {
		s.tokens = burst
	}
	if s.tokens < 1 {
		return false
	}
	s.tokens--
	return true
}

// Stats returns the decision counters. Nil-safe.
func (s *Sampler) Stats() SamplerStats {
	if s == nil {
		return SamplerStats{}
	}
	return SamplerStats{
		Kept:            s.kept.Load(),
		Dropped:         s.dropped.Load(),
		Head:            s.head.Load(),
		TailSlow:        s.tailSlow.Load(),
		TailError:       s.tailErr.Load(),
		TailShed:        s.tailShed.Load(),
		TailAttr:        s.tailAttr.Load(),
		HeadPerSec:      s.cfg.HeadPerSec,
		SlowThresholdNs: int64(s.cfg.SlowThreshold),
	}
}
