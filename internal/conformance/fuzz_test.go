package conformance

import (
	"math/rand"
	"testing"

	"dpfsm/internal/core"
)

// Fuzz targets. The fuzzer owns three degrees of freedom: the machine
// seed, the regime index, and the raw input bytes (clamped into the
// machine's alphabet). Machines are derived deterministically from
// (seed, regime), so every crash artifact is replayable from its
// corpus entry alone. Both targets run under QuickConfig — oracle and
// metamorphic checks only — so one execution stays cheap enough for
// the mutation loop to make progress.

// fuzzMachine derives the machine for one fuzz execution.
func fuzzMachine(seed int64, regime int) GeneratedMachine {
	rng := rand.New(rand.NewSource(seed))
	if regime < 0 {
		regime = -regime
	}
	return RandomMachine(rng, regime)
}

// FuzzDifferential runs the full QuickConfig differential check —
// every strategy, both lanes, chunked-vs-whole, split invariance —
// on a fuzzer-chosen (machine, input) pair.
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), 0, []byte(""))
	f.Add(int64(2), 3, []byte("abab"))
	f.Add(int64(3), 6, []byte("\x00\x01\x02\x03\x04\x05\x06\x07"))
	f.Add(int64(20260805), 9, []byte("mississippi"))
	cfg := QuickConfig()
	f.Fuzz(func(t *testing.T, seed int64, regime int, data []byte) {
		if len(data) > 1<<12 {
			data = data[:1<<12] // bound one execution's work
		}
		gm := fuzzMachine(seed, regime)
		in := ClampInput(gm.D, data)
		if dv := CheckInput(gm.D, in, cfg); dv != nil {
			dv.MachineLabel = gm.Label
			t.Fatalf("seed=%d regime=%d: %v", seed, regime, Shrink(dv, cfg))
		}
	})
}

// FuzzSplitInvariance checks the paper's associativity argument in
// isolation: for a fuzzer-chosen split point, running the two halves
// through the Auto-resolved strategy composes to the oracle's answer.
func FuzzSplitInvariance(f *testing.F) {
	f.Add(int64(1), 0, uint16(0), []byte("aa"))
	f.Add(int64(5), 4, uint16(3), []byte("abcabc"))
	f.Add(int64(9), 11, uint16(64), []byte("zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz"))
	f.Fuzz(func(t *testing.T, seed int64, regime int, split uint16, data []byte) {
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		gm := fuzzMachine(seed, regime)
		in := ClampInput(gm.D, data)
		r, err := core.New(gm.D) // Auto strategy
		if err != nil {
			t.Fatalf("seed=%d regime=%d: compile: %v", seed, regime, err)
		}
		start := gm.D.Start()
		want := OracleFinal(gm.D, in, start)
		k := int(split)
		if k > len(in) {
			k = len(in)
		}
		mid := r.Final(in[:k], start)
		if got := r.Final(in[k:], mid); got != want {
			t.Fatalf("seed=%d regime=%d %s: split at %d of %d: got %d, want %d (mid %d)",
				seed, regime, gm.Label, k, len(in), got, want, mid)
		}
		if got := r.Final(in, start); got != want {
			t.Fatalf("seed=%d regime=%d %s: whole input: got %d, want %d",
				seed, regime, gm.Label, got, want)
		}
	})
}
