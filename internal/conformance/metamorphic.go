package conformance

import (
	"context"
	"fmt"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/telemetry"
	"dpfsm/internal/trace"
)

// Metamorphic properties: relations between runs of the system under
// test that must hold for *any* correct implementation, checked
// without consulting the oracle at all. The first two are the
// associativity argument the whole multicore decomposition rests on;
// the third cross-checks the observability layer against itself.

// checkSplit verifies split-point invariance: for every strategy and a
// handful of split points s, Final(x) == Final(x[s:], Final(x[:s])).
func (c *checker) checkSplit(input []byte) *Divergence {
	n := len(input)
	if n < 2 {
		return nil
	}
	splits := []int{1, n / 2, n - 1}
	for _, s := range c.strategies {
		r := c.singles[s]
		for _, start := range c.starts() {
			whole := r.Final(input, start)
			for _, k := range splits {
				mid := r.Final(input[:k], start)
				if got := r.Final(input[k:], mid); got != whole {
					return c.divergence("split-invariance", s.String(), input, start, whole, got,
						fmt.Sprintf("split at %d of %d", k, n))
				}
			}
		}
	}
	return nil
}

// checkConcat verifies concatenation consistency across distinct
// generated inputs: Final(a‖b, q) == Final(b, Final(a, q)). Unlike
// checkSplit, the two halves here have unrelated structure (repetition
// joined to random fill, boundary lengths joined to empty), so the
// composed run crosses texture changes a single generated input never
// contains.
func (c *checker) checkConcat(inputs [][]byte) *Divergence {
	if len(inputs) < 2 {
		return nil
	}
	start := c.d.Start()
	pairs := len(inputs)
	if pairs > 4 {
		pairs = 4
	}
	for i := 0; i < pairs; i++ {
		a := inputs[i]
		b := inputs[(i+1)%len(inputs)]
		ab := make([]byte, 0, len(a)+len(b))
		ab = append(append(ab, a...), b...)
		for _, s := range c.strategies {
			r := c.singles[s]
			whole := r.Final(ab, start)
			if got := r.Final(b, r.Final(a, start)); got != whole {
				return c.divergence("concatenation", s.String(), ab, start, whole, got,
					fmt.Sprintf("a=%d bytes, b=%d bytes", len(a), len(b)))
			}
		}
	}
	return nil
}

// checkTrace runs one traced, telemetered multicore execution and
// cross-checks the three accounts the runtime keeps of the same run:
// the span tree, the aggregate telemetry, and the input itself. The
// multicore span's chunk count must equal the number of per-chunk
// phase-1 spans and the telemetry Chunks delta; the per-chunk byte
// attributes must tile the input exactly; the active-width attributes
// must be internally consistent and their maximum must equal the
// ActiveHighWater gauge the same run flushed.
func (c *checker) checkTrace(input []byte) *Divergence {
	if len(input) < 2*c.cfg.MinChunk {
		return nil // multicore would not engage; nothing to cross-check
	}
	var s core.Strategy
	found := false
	for _, cand := range c.strategies {
		if cand == core.Sequential {
			continue // routed to RunUnrolled: no enumerative accounting
		}
		s = cand
		found = true
		if cand == core.Convergence {
			break
		}
	}
	if !found {
		return nil
	}
	fail := func(detail string, got fsm.State, want fsm.State) *Divergence {
		return c.divergence("trace-consistency", s.String(), input, c.d.Start(), want, got, detail)
	}

	tel := new(telemetry.Metrics)
	r, err := core.NewFromPlan(c.singles[s].PlanRef(),
		core.WithStrategy(s), core.WithMinChunk(c.cfg.MinChunk),
		core.WithProcs(c.cfg.Procs), core.WithTelemetry(tel))
	if err != nil {
		return fail("building telemetered runner: "+err.Error(), 0, 0)
	}

	start := c.d.Start()
	want := OracleFinal(c.d, input, start)
	tr := trace.New()
	ctx := trace.NewContext(context.Background(), tr)
	got, err := r.FinalCtx(ctx, input, start)
	if err != nil {
		return fail("traced run error: "+err.Error(), got, want)
	}
	if got != want {
		return fail("traced run final state", got, want)
	}

	snap := tel.Snapshot()
	spans := tr.Spans()
	var declaredChunks, chunkSpans, chunkBytes int64
	var maxWidthStart int64
	for _, sv := range spans {
		switch sv.Name {
		case core.SpanMulticore:
			if a, ok := trace.FindAttr(sv.Attrs, core.AttrChunks); ok {
				declaredChunks = a.Int64()
			}
			if a, ok := trace.FindAttr(sv.Attrs, core.AttrBytes); !ok || a.Int64() != int64(len(input)) {
				return fail(fmt.Sprintf("multicore span bytes=%v, input is %d bytes", a.Int64(), len(input)), got, want)
			}
		case core.SpanSingle:
			return fail("run took the single-core lane despite multicore-sized input", got, want)
		case core.SpanPhase1Chunk:
			chunkSpans++
			if a, ok := trace.FindAttr(sv.Attrs, core.AttrBytes); ok {
				chunkBytes += a.Int64()
			}
			ws, okS := trace.FindAttr(sv.Attrs, core.AttrWidthStart)
			wf, okF := trace.FindAttr(sv.Attrs, core.AttrWidthFinal)
			if !okS || !okF {
				return fail("phase-1 chunk span missing width attributes", got, want)
			}
			if wf.Int64() < 1 || wf.Int64() > ws.Int64() || ws.Int64() > int64(c.d.NumStates()) {
				return fail(fmt.Sprintf("chunk widths inconsistent: start=%d final=%d states=%d",
					ws.Int64(), wf.Int64(), c.d.NumStates()), got, want)
			}
			if ws.Int64() > maxWidthStart {
				maxWidthStart = ws.Int64()
			}
		}
	}
	if declaredChunks == 0 {
		return fail("no core.multicore span with a chunks attribute", got, want)
	}
	if chunkSpans != declaredChunks {
		return fail(fmt.Sprintf("multicore span declares %d chunks, trace has %d phase-1 chunk spans",
			declaredChunks, chunkSpans), got, want)
	}
	if chunkBytes != int64(len(input)) {
		return fail(fmt.Sprintf("phase-1 chunk spans cover %d bytes, input is %d", chunkBytes, len(input)), got, want)
	}
	if snap.Chunks != declaredChunks {
		return fail(fmt.Sprintf("telemetry counted %d chunks, span declares %d", snap.Chunks, declaredChunks), got, want)
	}
	if snap.MulticoreRuns != 1 {
		return fail(fmt.Sprintf("telemetry counted %d multicore runs for one execution", snap.MulticoreRuns), got, want)
	}
	if snap.ActiveHighWater != maxWidthStart {
		return fail(fmt.Sprintf("telemetry high-water %d, max span width_start %d",
			snap.ActiveHighWater, maxWidthStart), got, want)
	}
	return nil
}
