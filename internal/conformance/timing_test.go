package conformance

import (
	"reflect"
	"testing"
)

// TestSoakTimedMatchesSoak: timing is a pure observer — the Report is
// byte-identical to the untimed path for the same (n, seed, cfg).
func TestSoakTimedMatchesSoak(t *testing.T) {
	cfg := QuickConfig()
	plain := Soak(3, 11, cfg, nil)
	timed, tm := SoakTimed(3, 11, cfg, nil)
	if !reflect.DeepEqual(plain, timed) {
		t.Fatalf("timed report diverges:\nplain %+v\ntimed %+v", plain, timed)
	}
	if tm.Compile.Calls != timed.MachinesRun {
		t.Errorf("compile calls = %d, machines run = %d", tm.Compile.Calls, timed.MachinesRun)
	}
	if tm.Oracle.Calls != timed.Inputs {
		t.Errorf("oracle calls = %d, inputs = %d", tm.Oracle.Calls, timed.Inputs)
	}
	if tm.Split.Calls != timed.Inputs {
		t.Errorf("split calls = %d, inputs = %d", tm.Split.Calls, timed.Inputs)
	}
	if tm.Concat.Calls != timed.MachinesRun {
		t.Errorf("concat calls = %d, machines run = %d", tm.Concat.Calls, timed.MachinesRun)
	}
	// QuickConfig skips the trace and fold phases entirely.
	if tm.Trace.Calls != 0 || tm.Fold.Calls != 0 {
		t.Errorf("skipped phases ran: trace=%d fold=%d", tm.Trace.Calls, tm.Fold.Calls)
	}
	if tm.Oracle.TotalNs <= 0 || tm.Oracle.MaxNs <= 0 {
		t.Errorf("oracle phase unmeasured: %+v", tm.Oracle)
	}
	if tm.Oracle.MaxNs > tm.Oracle.TotalNs {
		t.Errorf("max %d exceeds total %d", tm.Oracle.MaxNs, tm.Oracle.TotalNs)
	}
}

func TestPhaseTimingMean(t *testing.T) {
	var p PhaseTiming
	if p.MeanNs() != 0 {
		t.Fatalf("empty mean = %d", p.MeanNs())
	}
	p.observe(10)
	p.observe(30)
	if p.Calls != 2 || p.TotalNs != 40 || p.MaxNs != 30 {
		t.Fatalf("accumulation: %+v", p)
	}
	if p.MeanNs() != 20 {
		t.Fatalf("mean = %d", p.MeanNs())
	}
}
