package conformance

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
)

// suiteMachines is how many random machines the differential property
// suite checks per run: one full round-robin pass over every generator
// regime, twice that when not in -short mode.
func suiteMachines(t *testing.T) int {
	if testing.Short() {
		return NumRegimes()
	}
	return 2 * NumRegimes()
}

// TestDifferentialSuite is the tier-1 face of the harness: every
// regime at least once, full checks (engine lanes, plan round trips,
// trace consistency, fold probes included).
func TestDifferentialSuite(t *testing.T) {
	cfg := DefaultConfig()
	if testing.Short() {
		cfg.SkipFold = true
		cfg.SkipCluster = true
	}
	rng := rand.New(rand.NewSource(20260805))
	n := suiteMachines(t)
	for i := 0; i < n; i++ {
		gm := RandomMachine(rng, i)
		inputs := Inputs(rng, gm.D, cfg)
		if dv := Check(gm, inputs, cfg); dv != nil {
			dv = Shrink(dv, cfg)
			t.Fatalf("machine %d: %v", i, dv)
		}
	}
}

// TestOracleAgainstScalarRunner pins the oracle itself to the fsm
// package's independent scalar loop, so a typo in the oracle cannot
// silently define correctness.
func TestOracleAgainstScalarRunner(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < NumRegimes(); i++ {
		gm := RandomMachine(rng, i)
		in := gm.D.RandomInput(rng, 200)
		if got, want := OracleFinal(gm.D, in, gm.D.Start()), gm.D.Run(in, gm.D.Start()); got != want {
			t.Fatalf("%s: oracle %d, fsm.Run %d", gm.Label, got, want)
		}
		vec := OracleVector(gm.D, in)
		if len(vec) != gm.D.NumStates() {
			t.Fatalf("%s: vector length %d, states %d", gm.Label, len(vec), gm.D.NumStates())
		}
		for q, w := range vec {
			if got := gm.D.Run(in, fsm.State(q)); got != w {
				t.Fatalf("%s: vector[%d] = %d, fsm.Run = %d", gm.Label, q, w, got)
			}
		}
	}
}

// TestGeneratorRegimes verifies each regime delivers the shape it
// advertises — the bias is the whole point of the generator.
func TestGeneratorRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < NumRegimes(); i++ {
		gm := RandomMachine(rng, i)
		if err := gm.D.Validate(); err != nil {
			t.Fatalf("%s: invalid machine: %v", gm.Label, err)
		}
		switch gm.Label {
		case "single-state":
			if gm.D.NumStates() != 1 {
				t.Errorf("single-state: %d states", gm.D.NumStates())
			}
		case "range-at-width":
			if mr := gm.D.MaxRangeSize(); mr > gather.Width {
				t.Errorf("range-at-width: max range %d > %d", mr, gather.Width)
			}
		case "range-above-width":
			if mr := gm.D.MaxRangeSize(); mr > gather.Width+1 {
				t.Errorf("range-above-width: max range %d > %d", mr, gather.Width+1)
			}
		case "alphabet-1":
			if gm.D.NumSymbols() != 1 {
				t.Errorf("alphabet-1: %d symbols", gm.D.NumSymbols())
			}
		case "wide", "wide-permutation":
			if gm.D.NumStates() <= 256 {
				t.Errorf("%s: only %d states", gm.Label, gm.D.NumStates())
			}
		}
	}
	// Round-robin coverage: any NumRegimes window hits every regime.
	seen := map[string]bool{}
	for i := 100; i < 100+NumRegimes(); i++ {
		seen[RandomMachine(rng, i).Label] = true
	}
	if len(seen) != NumRegimes() {
		t.Errorf("round-robin window covered %d of %d regimes", len(seen), NumRegimes())
	}
}

// TestInputsBoundaries verifies the generated input set straddles the
// chunking thresholds it claims to.
func TestInputsBoundaries(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(13))
	d := fsm.Random(rng, 5, 7, 0.3)
	lengths := map[int]bool{}
	for _, in := range Inputs(rng, d, cfg) {
		lengths[len(in)] = true
		for _, b := range in {
			if int(b) >= d.NumSymbols() {
				t.Fatalf("input symbol %d outside alphabet %d", b, d.NumSymbols())
			}
		}
	}
	for _, want := range []int{0, 1, cfg.MinChunk - 1, cfg.MinChunk, cfg.MinChunk + 1,
		2*cfg.MinChunk - 1, 2 * cfg.MinChunk, 2*cfg.MinChunk + 1, cfg.LargeInput, cfg.LargeInput + 1} {
		if !lengths[want] {
			t.Errorf("no generated input of boundary length %d", want)
		}
	}
}

// TestClampInput maps arbitrary bytes into the alphabet.
func TestClampInput(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := fsm.Random(rng, 4, 10, 0.5)
	in := ClampInput(d, []byte{0, 9, 10, 11, 255})
	want := []byte{0, 9, 0, 1, 5}
	if !bytes.Equal(in, want) {
		t.Fatalf("ClampInput = %v, want %v", in, want)
	}
	wide := fsm.Random(rng, 4, 256, 0.5)
	raw := []byte{0, 128, 255}
	if got := ClampInput(wide, raw); !bytes.Equal(got, raw) {
		t.Fatalf("full alphabet should pass through, got %v", got)
	}
}

// TestShrinkWith drives the shrink loop with a synthetic bug — the
// divergence "reproduces" iff the input still contains symbol 3 and
// the machine still has at least two states — and checks the loop
// lands on the minimal form of both.
func TestShrinkWith(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	d := fsm.Random(rng, 8, 5, 0.3)
	in := make([]byte, 64)
	for i := range in {
		in[i] = byte(i % 3) // no 3s or 4s
	}
	in[41] = 3
	attempts := 0
	repro := func(cd *fsm.DFA, cin []byte) *Divergence {
		attempts++
		if cd.NumStates() >= 2 && bytes.Contains(cin, []byte{3}) {
			return &Divergence{Check: "synthetic", Machine: cd, Input: cin}
		}
		return nil
	}
	dv := &Divergence{Check: "synthetic", Machine: d, Input: in, MachineLabel: "test"}
	out := shrinkWith(dv, 500, repro)
	if !out.Shrunk {
		t.Fatal("shrink made no progress")
	}
	if !bytes.Equal(out.Input, []byte{3}) {
		t.Errorf("shrunk input = %v, want [3]", out.Input)
	}
	if out.Machine.NumStates() != 2 {
		t.Errorf("shrunk machine has %d states, want 2", out.Machine.NumStates())
	}
	if out.MachineLabel != "test" {
		t.Errorf("regime label lost: %q", out.MachineLabel)
	}
	if attempts > 500 {
		t.Errorf("budget exceeded: %d attempts", attempts)
	}
}

// TestShrinkBudgetExhaustion: a zero budget returns the original.
func TestShrinkBudgetExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := fsm.Random(rng, 4, 4, 0.3)
	dv := &Divergence{Machine: d, Input: []byte{1, 2, 3}}
	out := shrinkWith(dv, 0, func(*fsm.DFA, []byte) *Divergence {
		t.Fatal("predicate called with zero budget")
		return nil
	})
	if out != dv {
		t.Fatal("zero budget should return the original divergence")
	}
}

// TestRemoveState checks the renumbering keeps the machine valid and
// redirects edges into the removed state.
func TestRemoveState(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 20; trial++ {
		d := fsm.Random(rng, 2+rng.Intn(10), 1+rng.Intn(6), 0.4)
		q := rng.Intn(d.NumStates())
		nd := removeState(d, q)
		if nd.NumStates() != d.NumStates()-1 {
			t.Fatalf("states %d, want %d", nd.NumStates(), d.NumStates()-1)
		}
		if err := nd.Validate(); err != nil {
			t.Fatalf("removeState(%d) produced invalid machine: %v", q, err)
		}
	}
	// Removing down to one state stays valid.
	d := fsm.Random(rng, 3, 2, 0.5)
	d = removeState(removeState(d, 2), 1)
	if d.NumStates() != 1 {
		t.Fatalf("states = %d, want 1", d.NumStates())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSoakDeterministic: same (n, seed, cfg) → byte-identical reports.
func TestSoakDeterministic(t *testing.T) {
	cfg := QuickConfig()
	n := NumRegimes()
	if testing.Short() {
		n = 4
	}
	a := Soak(n, 42, cfg, nil)
	b := Soak(n, 42, cfg, nil)
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("soak not deterministic:\n%s\n%s", ja, jb)
	}
	if !a.OK {
		t.Fatalf("soak found a divergence: %s", ja)
	}
	if a.MachinesRun != n || a.FailedIndex != -1 {
		t.Fatalf("report shape: %s", ja)
	}
	if len(a.Regimes) == 0 || a.Inputs == 0 {
		t.Fatalf("empty accounting: %s", ja)
	}
}

// TestReportDivergenceRoundTrip: the machine embedded in a JSON report
// decodes back to an equivalent DFA.
func TestReportDivergenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := fsm.Random(rng, 6, 4, 0.3)
	dv := &Divergence{Check: "strategy-final", Strategy: "base",
		Machine: d, MachineLabel: "uniform", Input: []byte{1, 2, 3}, Want: 2, Got: 4}
	rep := reportDivergence(dv)
	if rep.Summary == "" || rep.States != 6 || rep.Symbols != 4 {
		t.Fatalf("report fields: %+v", rep)
	}
	back, err := DecodeMachine(rep.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumStates() != 6 || back.NumSymbols() != 4 {
		t.Fatalf("decoded machine %dx%d", back.NumStates(), back.NumSymbols())
	}
	for q := 0; q < 6; q++ {
		for a := 0; a < 4; a++ {
			if back.Next(fsm.State(q), byte(a)) != d.Next(fsm.State(q), byte(a)) {
				t.Fatalf("transition (%d,%d) drifted", q, a)
			}
		}
	}
}

// TestDivergenceError covers the one-line formatter.
func TestDivergenceError(t *testing.T) {
	var nilDv *Divergence
	if nilDv.Error() == "" {
		t.Fatal("nil divergence should render")
	}
	rng := rand.New(rand.NewSource(37))
	dv := &Divergence{Check: "ctx-final", Strategy: "convergence",
		Machine: fsm.Random(rng, 3, 2, 0.5), MachineLabel: "tiny",
		Input: []byte{0, 1}, Start: 1, Want: 2, Got: 0, Detail: "multicore fold"}
	msg := dv.Error()
	for _, frag := range []string{"ctx-final", "convergence", "tiny", "multicore fold", "got state 0, want 2"} {
		if !bytes.Contains([]byte(msg), []byte(frag)) {
			t.Errorf("error %q missing %q", msg, frag)
		}
	}
}
